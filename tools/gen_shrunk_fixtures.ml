(* Regenerates the checked-in repro fixtures under test/fixtures/shrunk/.

   The fixtures capture what the fuzzer leaves behind when a real
   silent-wrong-answer bug is present: we re-inject the Sherman-Morrison
   denominator-guard bug through the Fastsim chaos hook, let the
   rank1-updates oracle catch it on three different topology families,
   shrink each failure, and persist the (netlist, expected-oracle)
   pairs. The regression suite replays them with the bug absent (must
   pass) and re-injected (must fail again).

   Usage: dune exec tools/gen_shrunk_fixtures.exe -- [DIR]
   (DIR defaults to test/fixtures/shrunk) *)

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "test/fixtures/shrunk" in
  let oracle =
    match Conformance.Oracle.find "rank1-updates" with
    | Some o -> o
    | None -> failwith "rank1-updates oracle missing"
  in
  Testability.Fastsim.set_chaos (`Smw_denominator 1.25);
  Fun.protect
    ~finally:(fun () -> Testability.Fastsim.set_chaos `None)
    (fun () ->
      let families =
        [ Conformance.Gen.Ladder; Conformance.Gen.Active_chain; Conformance.Gen.Near_singular ]
      in
      List.iter
        (fun family ->
          (* first seed whose subject trips the oracle under the bug *)
          let rec hunt seed =
            if seed > 99 then
              failwith
                (Printf.sprintf "no failing %s subject in seeds 0..99"
                   (Conformance.Gen.family_name family))
            else
              let subject = Conformance.Gen.generate family ~seed in
              match Conformance.Oracle.run oracle subject with
              | Conformance.Oracle.Fail message -> (subject, message)
              | _ -> hunt (seed + 1)
          in
          let subject, message = hunt 0 in
          let shrunk = Conformance.Shrink.minimize ~oracle subject in
          let cir, json = Conformance.Shrink.save ~dir ~oracle ~message shrunk in
          Printf.printf "%s: %d -> %d elements\n  %s\n  %s\n"
            subject.Conformance.Gen.label
            (Circuit.Netlist.size subject.Conformance.Gen.netlist)
            (Circuit.Netlist.size shrunk.Conformance.Gen.netlist)
            cir json)
        families)
