(* Analog analyses around the DFT flow: adjoint sensitivities, thermal
   noise, and the quantitative test-time model.

     dune exec examples/sensitivity_and_noise.exe

   Sensitivity is where the paper's testability metric comes from
   (Slamani & Kaminska's fault observability, its ref [11]); noise and
   settling time bound what a real tester can resolve and how long a
   schedule takes. All three come from the same MNA machinery — the
   sensitivities and the noise even share the adjoint solve. *)

let () =
  let b = Circuits.Tow_thomas.make () in
  let netlist = b.Circuits.Benchmark.netlist in
  let f0 = b.Circuits.Benchmark.center_hz in

  (* 1. normalized component sensitivities at f0: which components the
     output actually watches in the functional configuration *)
  Printf.printf "normalized sensitivities |S| of |H| at %g Hz (C0):\n" f0;
  let sens =
    Mna.Sensitivity.at_omega ~source:"Vin" ~output:"v2" netlist
      ~omega:(2.0 *. Float.pi *. f0)
  in
  List.iter
    (fun (s : Mna.Sensitivity.t) ->
      Printf.printf "  %-4s %.3f\n" s.Mna.Sensitivity.element
        (Complex.norm s.Mna.Sensitivity.normalized))
    sens;

  (* 2. output thermal noise: per-resistor contributions and the total
     integrated noise — the measurement floor any epsilon must beat *)
  let contributions, psd_f0 =
    Mna.Noise.at_omega ~output:"v2" netlist ~omega:(2.0 *. Float.pi *. f0)
  in
  Printf.printf "\noutput noise PSD at f0: %.3g V^2/Hz, dominated by:\n" psd_f0;
  List.iter
    (fun (c : Mna.Noise.contribution) ->
      Printf.printf "  %-4s %5.1f%%\n" c.Mna.Noise.element
        (100.0 *. c.Mna.Noise.psd /. psd_f0))
    (List.sort
       (fun (a : Mna.Noise.contribution) b -> compare b.Mna.Noise.psd a.Mna.Noise.psd)
       contributions);
  let freqs = Util.Floatx.linspace 1.0 (300.0 *. f0) 20_000 in
  let rms = Mna.Noise.integrated_rms ~output:"v2" netlist ~freqs_hz:freqs in
  Printf.printf "integrated output noise: %.2f uVrms\n" (rms *. 1e6);

  (* 3. what the optimized test costs in seconds *)
  let t = Mcdft_core.Pipeline.run b in
  let plan = Mcdft_core.Test_plan.build t in
  Printf.printf "\noptimized schedule: %d measurements, estimated %.0f ms\n"
    (List.length plan.Mcdft_core.Test_plan.measurements)
    (1e3 *. Mcdft_core.Test_time.estimate_s t plan);
  let diag = Mcdft_core.Test_plan.build_diagnostic t in
  Printf.printf "diagnostic schedule: %d measurements, estimated %.0f ms\n"
    (List.length diag.Mcdft_core.Test_plan.measurements)
    (1e3 *. Mcdft_core.Test_time.estimate_s t diag)
