(* A per-fault "atlas": where in the frequency axis each fault is
   visible, and how the multi-configuration DFT moves those regions.

     dune exec examples/fault_atlas.exe

   Uses the Tow-Thomas notch filter with both soft (±20%) and
   catastrophic (open/short) faults, and prints the detectability
   regions as log-frequency interval sets plus a deviation sparkline. *)

module Detect = Testability.Detect

let () =
  let b = Circuits.Notch.make () in
  let netlist = b.Circuits.Benchmark.netlist in
  let probe =
    { Detect.source = b.Circuits.Benchmark.source; output = b.Circuits.Benchmark.output }
  in
  let grid =
    Testability.Grid.around ~points_per_decade:20
      ~center_hz:b.Circuits.Benchmark.center_hz ()
  in
  let faults = Fault.both_deviations netlist @ Fault.catastrophic_faults netlist in
  Printf.printf "circuit: %s\n" b.Circuits.Benchmark.description;
  Printf.printf "faults: %d (±20%% deviations + opens/shorts), grid %g..%g Hz\n\n"
    (List.length faults) (Testability.Grid.f_lo grid) (Testability.Grid.f_hi grid);

  let nominal = Detect.nominal_response probe grid netlist in
  let results = Detect.analyze probe grid netlist faults in
  Printf.printf "coverage %.1f%%, <w-det> %.1f%%\n\n"
    (100.0 *. Detect.fault_coverage results)
    (100.0 *. Detect.average_omega_det results);

  List.iter
    (fun (r : Detect.result) ->
      let fault = r.Detect.fault in
      let deviation =
        let faulty =
          Mna.Ac.sweep ~source:probe.Detect.source ~output:probe.Detect.output
            (Fault.inject fault netlist)
            ~freqs_hz:(Testability.Grid.freqs_hz grid)
        in
        Detect.response_deviation ~nominal ~faulty
      in
      Printf.printf "%-10s %s  w-det %5.1f%%  dev|%s|\n" fault.Fault.id
        (if r.Detect.detectable then "DET  " else "     ")
        (100.0 *. r.Detect.omega_det)
        (Report.Chart.sparkline (Array.map (fun d -> Float.min d 2.0) deviation));
      if not (Util.Interval.Set.is_empty r.Detect.regions) then
        Printf.printf "           regions (log10 Hz): %s\n"
          (Format.asprintf "%a" Util.Interval.Set.pp r.Detect.regions))
    results
