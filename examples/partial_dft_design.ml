(* Design-space exploration of the partial DFT (paper Section 4.3).

     dune exec examples/partial_dft_design.exe

   For the KHN state-variable filter, every subset of opamps is made
   configurable in turn and the resulting (silicon cost, coverage,
   <w-det>) point is reported — the full trade-off curve behind the
   paper's "best cost/performance trade-off" argument. *)

module P = Mcdft_core.Pipeline
module O = Mcdft_core.Optimizer

let subsets n =
  List.init (1 lsl n) (fun mask ->
      List.filter (fun k -> mask land (1 lsl k) <> 0) (List.init n Fun.id))

let () =
  let khn = Circuits.Khn.make () in
  let t = P.run khn in
  let input = t.P.input in
  let n = Multiconfig.Transform.n_opamps t.P.dft in
  Printf.printf "circuit: %s\n" khn.Circuits.Benchmark.description;
  Printf.printf "maximum coverage with full DFT: %.1f%%\n\n"
    (100.0
    *. (let all_rows = List.init (Array.length input.O.detect) Fun.id in
        let m = Array.length input.O.detect.(0) in
        float_of_int
          (List.length
             (List.filter
                (fun j -> List.exists (fun i -> input.O.detect.(i).(j)) all_rows)
                (List.init m Fun.id)))
        /. float_of_int m));

  let rows =
    List.map
      (fun subset ->
        let mask = List.fold_left (fun m k -> m lor (1 lsl k)) 0 subset in
        let reachable =
          List.filter
            (fun i -> i land lnot mask = 0)
            (List.init (Array.length input.O.detect) Fun.id)
        in
        let m = Array.length input.O.detect.(0) in
        let covered =
          List.length
            (List.filter
               (fun j -> List.exists (fun i -> input.O.detect.(i).(j)) reachable)
               (List.init m Fun.id))
        in
        let names =
          if subset = [] then "(none)"
          else
            String.concat "+"
              (List.map (Multiconfig.Transform.opamp_label t.P.dft) subset)
        in
        [
          names;
          string_of_int (List.length subset);
          string_of_int (List.length reachable);
          Printf.sprintf "%.1f" (100.0 *. float_of_int covered /. float_of_int m);
          Printf.sprintf "%.1f" (O.avg_omega_of input reachable);
        ])
      (subsets n)
  in
  print_endline
    (Report.Table.render
       ~header:[ "configurable opamps"; "cost"; "configs"; "coverage %"; "<w-det> %" ]
       rows);

  let r = P.optimize t in
  Printf.printf
    "\noptimizer's pick: %s — the cheapest subset that keeps maximum coverage\n"
    (String.concat ", "
       (List.map (Multiconfig.Transform.opamp_label t.P.dft) r.O.choice_b.O.opamps))
