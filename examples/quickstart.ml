(* Quickstart: evaluate and optimize the DFT of the paper's biquad.

     dune exec examples/quickstart.exe

   Walks the full flow of the paper on the Tow-Thomas biquadratic
   filter: testability of the functional circuit, the 2^3
   configurations of the multi-configuration DFT, and the
   ordered-requirements optimization. *)

module P = Mcdft_core.Pipeline
module O = Mcdft_core.Optimizer

let () =
  (* 1. pick a circuit (here a built-in benchmark; see custom_netlist.ml
     for user-defined circuits) *)
  let biquad = Circuits.Tow_thomas.make () in
  Printf.printf "circuit: %s\n%!" biquad.Circuits.Benchmark.description;

  (* 2. run the fault-simulation campaign over every test configuration *)
  let t = P.run biquad in
  Printf.printf "simulated %d configurations x %d faults on a %d-point grid\n\n%!"
    (Testability.Matrix.n_views t.P.matrix)
    (Testability.Matrix.n_faults t.P.matrix)
    (Testability.Grid.n_points t.P.grid);

  (* 3. look at the functional circuit first (the paper's Section 2) *)
  let functional = P.functional_results t in
  Printf.printf "without DFT: fault coverage %.1f%%, <w-det> %.1f%%\n"
    (100.0 *. Testability.Detect.fault_coverage functional)
    (100.0 *. Testability.Detect.average_omega_det functional);
  List.iter
    (fun (r : Testability.Detect.result) ->
      Printf.printf "  %-8s %s  w-det %.1f%%\n" r.Testability.Detect.fault.Fault.id
        (if r.Testability.Detect.detectable then "detectable    " else "NOT detectable")
        (100.0 *. r.Testability.Detect.omega_det))
    functional;

  (* 4. optimize (the paper's Section 4) *)
  let r = P.optimize t in
  Printf.printf "\nwith DFT: maximum fault coverage %.1f%%\n" (100.0 *. r.O.max_coverage);
  Printf.printf "essential configurations: %s\n"
    (String.concat ", " (List.map (Printf.sprintf "C%d") r.O.essential));
  Printf.printf "minimal test-configuration set: %s  (<w-det> %.1f%%)\n"
    (String.concat ", " (List.map (Printf.sprintf "C%d") r.O.choice_a.O.configs))
    r.O.choice_a.O.avg_omega;
  Printf.printf "partial DFT: make %s configurable  (<w-det> %.1f%%)\n"
    (String.concat ", "
       (List.map (Multiconfig.Transform.opamp_label t.P.dft) r.O.choice_b.O.opamps))
    r.O.choice_b.O.avg_omega_reachable
