(* Time-domain view of the multi-configuration DFT.

     dune exec examples/transient_switching.exe

   The AC fault-simulation flow treats each configuration as a separate
   linear circuit; this example shows what a tester would actually
   observe. Two things stand out:

   - not every emulated configuration is open-loop stable — breaking a
     feedback loop with a follower can push poles into the right half
     plane. The symbolic engine flags this per configuration; AC fault
     simulation is still well-defined there (as in HSPICE), but a
     transient measurement needs a stable configuration or a bounded
     burst;
   - in a stable test configuration, a fault that hides inside the
     good-circuit tolerance envelope at the functional output becomes a
     large, unambiguous amplitude shift. *)

module T = Mna.Transient

let steady_state_peak netlist ~freq_hz =
  let periods = 14.0 in
  let trace =
    T.simulate
      ~waveforms:[ ("Vin", T.Sine { amplitude = 1.0; freq_hz; phase = 0.0 }) ]
      ~record:[ "v2" ]
      ~t_stop:(periods /. freq_hz)
      ~dt:(1.0 /. (freq_hz *. 300.0))
      netlist
  in
  let out = List.assoc "v2" trace.T.signals in
  let n = Array.length out in
  (* (max - min)/2 over the tail: insensitive to the DC offset a
     marginal (integrating) configuration accumulates *)
  let hi = ref neg_infinity and lo = ref infinity in
  for i = n - (n / 7) to n - 1 do
    hi := Float.max !hi out.(i);
    lo := Float.min !lo out.(i)
  done;
  (!hi -. !lo) /. 2.0

let () =
  let b = Circuits.Tow_thomas.make () in
  let dft =
    Multiconfig.Transform.make ~source:"Vin" ~output:"v2" b.Circuits.Benchmark.netlist
  in
  (* 1. stability of every emulated configuration *)
  Printf.printf "open-loop stability of the emulated configurations:\n";
  let stable =
    List.filter_map
      (fun config ->
        let view = Multiconfig.Transform.emulate dft config in
        let poles = Mna.Symbolic.poles ~source:"Vin" ~output:"v2" view in
        let max_re = Array.fold_left (fun acc p -> Float.max acc p.Complex.re) neg_infinity poles in
        let verdict =
          if max_re < -1e-6 then "stable"
          else if max_re < 1e-6 then "marginal (integrating)"
          else "UNSTABLE"
        in
        Printf.printf "  %s (%s): max Re(pole) = %+.3g  %s\n"
          (Multiconfig.Configuration.label config)
          (Multiconfig.Configuration.vector config)
          max_re verdict;
        if max_re < 1e-6 then Some config else None)
      (Multiconfig.Transform.test_configurations dft)
  in
  Printf.printf "  -> %d of 7 test configurations usable for steady-state measurement\n\n"
    (List.length stable);

  (* 2. the R4 fault, functional vs test configuration *)
  let fault = Fault.deviation ~element:"R4" 1.2 in
  let freq_hz = 1000.0 in
  let grid = Testability.Grid.make ~points_per_decade:4 ~f_lo:900.0 ~f_hi:1100.0 () in
  let probe = { Testability.Detect.source = "Vin"; output = "v2" } in
  Printf.printf "sine burst at %g Hz, %s injected:\n\n" freq_hz fault.Fault.id;
  List.iter
    (fun config_index ->
      let config = Multiconfig.Configuration.make ~n_opamps:3 config_index in
      let view = Multiconfig.Transform.emulate dft config in
      let good = steady_state_peak view ~freq_hz in
      let bad = steady_state_peak (Fault.inject fault view) ~freq_hz in
      let deviation = 100.0 *. Float.abs (bad -. good) /. good in
      (* what a good circuit could legitimately show at this frequency *)
      let mc =
        Testability.Montecarlo.run ~samples:100 ~component_tol:0.04 probe grid view
      in
      let envelope =
        100.0 *. Array.fold_left Float.max 0.0 mc.Testability.Montecarlo.max_dev
      in
      Printf.printf
        "  %s (%s): fault-free %.4f V, faulty %.4f V -> deviation %5.1f%%  \
         (good-circuit variation up to %.1f%%)\n"
        (Multiconfig.Configuration.label config)
        (Multiconfig.Configuration.vector config)
        good bad deviation envelope)
    [ 0; 1 ];
  Printf.printf
    "\nIn C0 the fault's signature barely clears what process variation can\n\
     produce; in C1 (OP1 in follower mode) the integrator is measured almost\n\
     in isolation, the good-circuit envelope shrinks, and the same fault\n\
     stands at twice the envelope.\n";

  (* 3. cross-check the transient amplitude against the AC engine *)
  let c1 = Multiconfig.Configuration.make ~n_opamps:3 1 in
  let view = Multiconfig.Transform.emulate dft c1 in
  let ac =
    Complex.norm
      (Mna.Ac.transfer ~source:"Vin" ~output:"v2" view ~omega:(2.0 *. Float.pi *. freq_hz))
  in
  Printf.printf "\n(AC cross-check in C1: |H| = %.4f vs transient %.4f)\n" ac
    (steady_state_peak view ~freq_hz)
