(* Applying the flow to a user-defined circuit.

     dune exec examples/custom_netlist.exe

   The circuit is written in the SPICE-flavoured netlist format, parsed,
   validated, and pushed through the same pipeline as the built-in
   benchmarks.  The example circuit is a two-stage loop: an inverting
   gain stage followed by a buffered RC lowpass, with a global feedback
   resistor crossing both stages — the "complex block with feedback
   links" situation the paper targets. *)

module P = Mcdft_core.Pipeline
module O = Mcdft_core.Optimizer

let netlist_text =
  {|two-stage amplifier with cross-stage feedback
Vin in 0 AC 1
R1 in a 10k
R2 a mid 22k      ; first-stage feedback
XOP1 0 a mid OPAMP
R3 mid b 10k
C1 b 0 15n        ; pole of the buffered lowpass
XOP2 b out out OPAMP
R5 out a 100k     ; global feedback closes the outer loop
.end|}

let () =
  let netlist =
    match Spice.Parser.parse_string netlist_text with
    | Ok n -> n
    | Error e -> failwith (Spice.Parser.error_to_string e)
  in
  Circuit.Validate.check_exn netlist;
  Printf.printf "parsed %d elements, %d opamps\n" (Circuit.Netlist.size netlist)
    (List.length (Circuit.Netlist.opamps netlist));

  (* the symbolic engine gives the exact transfer function and a
     characteristic frequency for grid placement *)
  let h = Mna.Symbolic.transfer ~source:"Vin" ~output:"out" netlist in
  Format.printf "H(s) = %a@." Linalg.Ratfunc.pp h;
  let poles = Linalg.Ratfunc.poles h in
  Array.iter
    (fun p ->
      Format.printf "pole at %.4g %+.4gi (%.1f Hz)@." p.Complex.re p.Complex.im
        (Complex.norm p /. (2.0 *. Float.pi)))
    poles;
  let center_hz =
    Array.fold_left (fun acc p -> Float.max acc (Complex.norm p)) 0.0 poles
    /. (2.0 *. Float.pi)
  in

  let benchmark =
    {
      Circuits.Benchmark.name = "two-stage";
      description = Circuit.Netlist.title netlist;
      netlist;
      source = "Vin";
      output = "out";
      center_hz;
    }
  in
  let t = P.run benchmark in
  let r = P.optimize t in
  Printf.printf "\nfunctional coverage %.1f%% -> DFT coverage %.1f%%\n"
    (100.0 *. r.O.functional_coverage)
    (100.0 *. r.O.max_coverage);
  Printf.printf "optimal test configurations: %s\n"
    (String.concat ", " (List.map (Printf.sprintf "C%d") r.O.choice_a.O.configs));
  Printf.printf "partial DFT opamps: %s\n"
    (String.concat ", "
       (List.map (Multiconfig.Transform.opamp_label t.P.dft) r.O.choice_b.O.opamps));

  (* round-trip: write the DFT view of the best single configuration *)
  match r.O.choice_a.O.configs with
  | [] -> ()
  | c :: _ ->
      let config =
        Multiconfig.Configuration.make ~n_opamps:(Multiconfig.Transform.n_opamps t.P.dft) c
      in
      let view = Multiconfig.Transform.emulate t.P.dft config in
      Printf.printf "\nnetlist as emulated in C%d:\n%s" c (Spice.Writer.to_string view)
