module Netlist := Circuit.Netlist

(** Fault models for analog circuits.

    The paper's fault universe is the set of soft (parametric) faults:
    a ±x % deviation of each passive component value. Catastrophic
    faults (opens and shorts) are provided as an extension; they are
    modelled by replacing the element with an extreme but finite
    resistance so the circuit stays solvable. *)

type kind =
  | Deviation of float
      (** Multiplicative factor applied to the nominal value:
          [Deviation 1.2] is a +20 % soft fault. *)
  | Open_circuit  (** Element replaced by a 1 GΩ resistance. *)
  | Short_circuit  (** Element replaced by a 1 mΩ resistance. *)

type t = { id : string; element : string; kind : kind }
(** A single fault: [element] names the component affected, [id] is a
    stable human-readable identifier such as ["R1+20%"]. *)

exception Unknown_element of string
(** A fault names an element absent from the analyzed netlist. Carried
    through to the CLI's typed error router (exit 4). *)

val open_resistance : float
val short_resistance : float

val deviation : element:string -> float -> t
(** [deviation ~element:"R1" 1.2] is the +20 % fault on R1. *)

val deviation_faults : ?factor:float -> Netlist.t -> t list
(** One [Deviation factor] fault per passive component, in netlist
    order. [factor] defaults to 1.2 (+20 %), matching the paper. *)

val both_deviations : ?factor:float -> Netlist.t -> t list
(** Both +x % and -x % faults per passive component. *)

val catastrophic_faults : Netlist.t -> t list
(** Open and short faults for every passive component. *)

val inject : t -> Netlist.t -> Netlist.t
(** Apply the fault to a netlist. Works on any netlist containing an
    element with the fault's name — in particular on every DFT
    configuration view, since the multi-configuration transform
    preserves passive elements. Raises {!Unknown_element} when the
    element is absent. *)

val pp : Format.formatter -> t -> unit
