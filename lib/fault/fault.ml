module Netlist = Circuit.Netlist
module Element = Circuit.Element

type kind = Deviation of float | Open_circuit | Short_circuit

type t = { id : string; element : string; kind : kind }

exception Unknown_element of string

let open_resistance = 1e9
let short_resistance = 1e-3

let deviation_id element factor =
  let pct = (factor -. 1.0) *. 100.0 in
  Printf.sprintf "%s%+g%%" element pct

let deviation ~element factor =
  { id = deviation_id element factor; element; kind = Deviation factor }

let deviation_faults ?(factor = 1.2) netlist =
  List.map
    (fun e -> deviation ~element:(Element.name e) factor)
    (Netlist.passives netlist)

let both_deviations ?(factor = 1.2) netlist =
  List.concat_map
    (fun e ->
      let name = Element.name e in
      [ deviation ~element:name factor; deviation ~element:name (2.0 -. factor) ])
    (Netlist.passives netlist)

let catastrophic_faults netlist =
  List.concat_map
    (fun e ->
      let element = Element.name e in
      [
        { id = element ^ "-open"; element; kind = Open_circuit };
        { id = element ^ "-short"; element; kind = Short_circuit };
      ])
    (Netlist.passives netlist)

(* An open or short keeps the element's terminals but swaps in an
   extreme resistance, so node connectivity (and hence the MNA index
   shape) is preserved. *)
let replace_with_resistance netlist element r =
  match Netlist.find netlist element with
  | None -> raise (Unknown_element element)
  | Some e -> (
      match Element.nodes e with
      | [ n1; n2 ] ->
          Netlist.add
            (Element.Resistor { name = element; n1; n2; value = r })
            (Netlist.remove element netlist)
      | _ ->
          invalid_arg
            (Printf.sprintf "Fault.inject: %s is not a two-terminal element" element))

let inject fault netlist =
  match fault.kind with
  | Deviation factor ->
      if not (Netlist.mem netlist fault.element) then
        raise (Unknown_element fault.element);
      Netlist.map_value ~name:fault.element ~f:(fun v -> v *. factor) netlist
  | Open_circuit -> replace_with_resistance netlist fault.element open_resistance
  | Short_circuit -> replace_with_resistance netlist fault.element short_resistance

let pp ppf f = Format.fprintf ppf "%s" f.id
