(** Golden snapshots: the paper's published Tow-Thomas tables and our
    simulated reproduction of them, rendered to canonical JSON and
    byte-compared against versioned files.

    Rendering is deterministic on a given platform/code state
    ({!Report.Json} prints integral floats without a fraction and
    everything else through [%.17g]), so any drift — a changed
    published constant, an optimizer regression, a numeric change in
    the campaign engine — fails the comparison at the byte level. The
    companion test refuses to pass until the snapshot is regenerated
    deliberately via [mcdft fuzz --update-snapshots]. *)

val all : (string * (unit -> string)) list
(** The snapshot registry: [(file_name, render)] pairs.
    ["paper_tables.json"] embeds the published Figure 5 / Table 2 data
    and the optimizer's §4 results on them; ["tow_thomas_simulated.json"]
    the full simulated pipeline (jobs:1) on the Tow-Thomas benchmark. *)

val check : dir:string -> (unit, string) result
(** Render every snapshot and byte-compare against [dir]. [Error]
    lists each missing or drifted file. *)

val update : dir:string -> string list
(** (Re)write every snapshot under [dir] (created if needed); returns
    the paths written. *)
