(** The differential fuzzing campaign: generate → check every oracle →
    shrink and persist failures.

    Determinism contract: case [i] of a campaign with base seed [S] is
    always the subject [Gen.generate families.(i mod n) ~seed:(S + i)],
    and every oracle verdict is a pure function of the subject — so two
    campaigns with the same seed agree case-by-case regardless of
    wall-clock budget (a budget only truncates the sequence earlier)
    or of the [--jobs] setting of the enclosing CLI (cases run
    sequentially; parallelism is exercised {e inside} the
    jobs-invariance oracle, never across cases). *)

type config = {
  seed : int;
  budget_s : float option;  (** Wall-clock stop condition. *)
  max_cases : int option;  (** Exact-count stop condition (deterministic reports). *)
  families : Gen.family list;  (** Rotation, default {!Gen.families}. *)
  oracles : Oracle.t list;  (** Default {!Oracle.all}. *)
  shrink_dir : string option;  (** Where failure repros are written. *)
  log : string -> unit;  (** Progress sink (one line per event). *)
}

val default : config
(** seed 0, no budget, 50 cases, all families, all oracles, no shrink
    dir, silent log. *)

type failure = {
  case : int;
  oracle : string;
  message : string;  (** Failure message on the {e original} subject. *)
  subject : Gen.subject;
  shrunk : Gen.subject;
  repro : (string * string) option;  (** [(cir, json)] paths when persisted. *)
}

type outcome = {
  cases : int;  (** Cases completed. *)
  checks : int;  (** Oracle verdicts collected. *)
  passes : int;
  skips : int;
  failures : failure list;  (** In case order. *)
}

val run : config -> outcome
(** Stops at whichever of [budget_s]/[max_cases] hits first (at least
    one case always runs). A failing (subject, oracle) pair is
    minimized with {!Shrink.minimize} before being reported, and
    persisted under [shrink_dir] when set. *)

val summary : outcome -> string
(** Human-readable one-paragraph summary, stable across runs with the
    same verdicts (no timings). *)
