module Netlist = Circuit.Netlist

type family = Ladder | Soup | Active_chain | Near_singular | Bigladder

(* the default fuzzing rotation: [Bigladder] is opt-in (hundreds of
   nodes per subject — a scale stressor, not a per-seed quick check) *)
let families = [ Ladder; Soup; Active_chain; Near_singular ]
let all_families = families @ [ Bigladder ]

let family_name = function
  | Ladder -> "ladder"
  | Soup -> "soup"
  | Active_chain -> "active"
  | Near_singular -> "near-singular"
  | Bigladder -> "bigladder"

let family_of_string = function
  | "ladder" -> Some Ladder
  | "soup" -> Some Soup
  | "active" -> Some Active_chain
  | "near-singular" -> Some Near_singular
  | "bigladder" -> Some Bigladder
  | _ -> None

type subject = {
  label : string;
  netlist : Netlist.t;
  source : string;
  output : string;
}

(* Primitive draws, deliberately mirroring the QCheck.Gen combinators
   the original in-test generators used: [int_bound] is inclusive. *)
let int_bound n rng = Random.State.int rng (n + 1)
let float_range lo hi rng = lo +. Random.State.float rng (hi -. lo)

(* magnitudes log-uniform over [lo, lo*10^decades) *)
let mag ?(decades = 2.0) lo rng = lo *. (10.0 ** float_range 0.0 decades rng)

let node k = Printf.sprintf "n%d" k

(* A ladder skeleton shared by {!ladder} and {!near_singular}: series
   resistor then shunt R/C/L per stage, all values drawn through
   [draw] so the two families differ only in value spread. *)
let ladder_with ~title ~stages ~draw rng =
  let netlist =
    ref (Netlist.empty ~title () |> Netlist.vsource ~name:"V1" "n0" "0" 1.0)
  in
  for k = 1 to stages do
    let prev = node (k - 1) and here = node k in
    netlist :=
      Netlist.resistor ~name:(Printf.sprintf "RS%d" k) prev here
        (draw 100.0 rng) !netlist;
    netlist :=
      (match int_bound 2 rng with
      | 0 -> Netlist.resistor ~name:(Printf.sprintf "RP%d" k) here "0" (draw 100.0 rng)
      | 1 -> Netlist.capacitor ~name:(Printf.sprintf "CP%d" k) here "0" (draw 1e-9 rng)
      | _ -> Netlist.inductor ~name:(Printf.sprintf "LP%d" k) here "0" (draw 1e-4 rng))
        !netlist
  done;
  (!netlist, node stages)

let ladder rng =
  let stages = 1 + int_bound 4 rng in
  ladder_with ~title:"random ladder" ~stages ~draw:(mag ~decades:2.0) rng

let near_singular rng =
  (* up to 12 decades between neighbouring impedances: solvable in
     exact arithmetic, hostile to fixed pivot/residual thresholds *)
  let stages = 2 + int_bound 3 rng in
  ladder_with ~title:"near-singular ladder" ~stages
    ~draw:(fun lo rng -> lo *. (10.0 ** float_range (-6.0) 6.0 rng))
    rng

let soup rng =
  let stages = 1 + int_bound 3 rng in
  let netlist, out =
    ladder_with ~title:"soup" ~stages ~draw:(mag ~decades:2.0) rng
  in
  let netlist = ref netlist in
  (if int_bound 2 rng = 0 then
     let a = int_bound stages rng and b = int_bound stages rng in
     if a <> b then
       netlist :=
         Netlist.resistor ~name:"RB" (node a) (node b)
           (mag ~decades:2.0 100.0 rng)
           !netlist);
  (match int_bound 5 rng with
  | 0 ->
      (* V loop: second source in parallel with V1 *)
      netlist := Netlist.vsource ~name:"V2" "n0" "0" 1.0 !netlist
  | 1 ->
      (* nullor with both inputs on one node: zero row *)
      let m = node (int_bound stages rng) in
      netlist :=
        !netlist
        |> Netlist.opamp ~name:"OP1" ~inp:m ~inn:m ~out:"oo"
        |> Netlist.resistor ~name:"RF" "oo" m 1_000.0
  | 2 ->
      (* healthy inverting stage around a ladder node *)
      let m = node (int_bound stages rng) in
      netlist :=
        !netlist
        |> Netlist.opamp ~name:"OP1" ~inp:"0" ~inn:m ~out:"oo"
        |> Netlist.resistor ~name:"RF" "oo" m
             (1_000.0 *. (1.0 +. float_range 0.0 9.0 rng))
  | _ -> ());
  (!netlist, out)

let inverting_amp rng =
  let r1 = mag 1_000.0 rng and rf = mag 1_000.0 rng in
  let netlist =
    Netlist.empty ~title:"inverting amplifier" ()
    |> Netlist.vsource ~name:"V1" "n0" "0" 1.0
    |> Netlist.resistor ~name:"R1" "n0" "m1" r1
    |> Netlist.resistor ~name:"RF" "o1" "m1" rf
    |> Netlist.opamp ~name:"OP1" ~inp:"0" ~inn:"m1" ~out:"o1"
  in
  (netlist, "o1")

let integrator_cascade rng =
  let stages = 1 + int_bound 1 rng in
  let netlist =
    ref
      (Netlist.empty ~title:"lossy integrator cascade" ()
      |> Netlist.vsource ~name:"V1" "n0" "0" 1.0)
  in
  for k = 1 to stages do
    let prev = if k = 1 then "n0" else Printf.sprintf "o%d" (k - 1) in
    let m = Printf.sprintf "m%d" k and o = Printf.sprintf "o%d" k in
    netlist :=
      !netlist
      |> Netlist.resistor ~name:(Printf.sprintf "R%d" k) prev m (mag 10_000.0 rng)
      |> Netlist.resistor ~name:(Printf.sprintf "RF%d" k) o m (mag 10_000.0 rng)
      |> Netlist.capacitor ~name:(Printf.sprintf "C%d" k) o m (mag 1e-9 rng)
      |> Netlist.opamp ~name:(Printf.sprintf "OP%d" k) ~inp:"0" ~inn:m ~out:o
  done;
  (!netlist, Printf.sprintf "o%d" stages)

let tow_thomas rng =
  let f0_hz = mag ~decades:3.0 100.0 rng in
  let q = 0.5 +. float_range 0.0 4.5 rng in
  let gain = 0.5 +. float_range 0.0 2.5 rng in
  let params = Circuits.Tow_thomas.params_for ~q ~gain ~f0_hz () in
  let tap =
    match int_bound 2 rng with
    | 0 -> Circuits.Tow_thomas.Lowpass
    | 1 -> Circuits.Tow_thomas.Bandpass
    | _ -> Circuits.Tow_thomas.Inverted_lowpass
  in
  let b = Circuits.Tow_thomas.make ~params ~tap () in
  (b.Circuits.Benchmark.netlist, b.Circuits.Benchmark.output)

let active_chain rng =
  match int_bound 2 rng with
  | 0 -> inverting_amp rng
  | 1 -> integrator_cascade rng
  | _ -> tow_thomas rng

(* Two long RC ladders bridged by a three-buffer chain — hundreds of
   MNA unknowns, a handful of nonzeros per row: the sparse back-end's
   scale stressor. The buffer chain also showcases campaign pruning:
   U2 and U3 buffer the previous opamp's output, which is exactly the
   chained test input {!Multiconfig.Transform.test_input} gives them,
   so their follower-mode Vcvs row is the sign-flip of their
   functional nullor row and every test view agrees on those equations
   value-exactly; only U1 (buffering the far end of ladder A, not the
   circuit input) genuinely switches. The 7 test views fall into 2
   equivalence classes. *)
let bigladder ?stages rng =
  let stages =
    match stages with Some s -> Int.max 2 s | None -> 100 + (50 * int_bound 7 rng)
  in
  let ka = stages / 2 in
  let kb = stages - ka in
  let r_draw rng = mag ~decades:1.0 1_000.0 rng in
  let c_draw rng = mag ~decades:1.0 1e-9 rng in
  let netlist =
    ref
      (Netlist.empty ~title:"big RC double ladder" ()
      |> Netlist.vsource ~name:"V1" "n0" "0" 1.0)
  in
  (* a [count]-stage RC section from [first]: series R into each new
     node, alternating shunt C / shunt R to ground (every node keeps a
     DC path through the series chain); returns the section's end node *)
  let section prefix first count =
    let nd k = if k = 0 then first else Printf.sprintf "%s%d" prefix k in
    for k = 1 to count do
      netlist :=
        Netlist.resistor
          ~name:(Printf.sprintf "R%s%d" prefix k)
          (nd (k - 1)) (nd k) (r_draw rng) !netlist;
      netlist :=
        (if k land 1 = 0 then
           Netlist.resistor
             ~name:(Printf.sprintf "RG%s%d" prefix k)
             (nd k) "0"
             (10.0 *. r_draw rng)
         else
           Netlist.capacitor ~name:(Printf.sprintf "C%s%d" prefix k) (nd k) "0"
             (c_draw rng))
          !netlist
    done;
    nd count
  in
  let a_end = section "a" "n0" ka in
  netlist :=
    !netlist
    |> Netlist.opamp ~name:"U1" ~inp:a_end ~inn:"b0" ~out:"b0"
    |> Netlist.opamp ~name:"U2" ~inp:"b0" ~inn:"c0" ~out:"c0"
    |> Netlist.opamp ~name:"U3" ~inp:"c0" ~inn:"d0" ~out:"d0";
  let out = section "e" "d0" kb in
  (!netlist, out)

let source_of netlist =
  match
    List.find_opt
      (function Circuit.Element.Vsource _ -> true | _ -> false)
      (Netlist.elements netlist)
  with
  | Some e -> Circuit.Element.name e
  | None -> "V1"

let generate family ~seed =
  let findex =
    match family with
    | Ladder -> 0
    | Soup -> 1
    | Active_chain -> 2
    | Near_singular -> 3
    | Bigladder -> 4
  in
  (* the constant keys the stream so [generate] never collides with a
     test that seeds Random.State.make [| seed |] directly *)
  let rng = Random.State.make [| 0x4d43_4446; findex; seed |] in
  let netlist, output =
    match family with
    | Ladder -> ladder rng
    | Soup -> soup rng
    | Active_chain -> active_chain rng
    | Near_singular -> near_singular rng
    | Bigladder ->
        (* seed-parameterized size: 100–450 ladder stages *)
        bigladder ~stages:(100 + (50 * (seed mod 8))) rng
  in
  {
    label = Printf.sprintf "%s#%d" (family_name family) seed;
    netlist;
    source = source_of netlist;
    output;
  }
