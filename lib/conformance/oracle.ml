module Netlist = Circuit.Netlist
open Testability

type verdict = Pass | Fail of string | Skip of string

type t = { name : string; doc : string; check : Gen.subject -> verdict }

let verdict_to_string = function
  | Pass -> "pass"
  | Fail m -> "FAIL: " ^ m
  | Skip m -> "skip: " ^ m

(* One shared grid for every differential sweep: five decades at two
   points per decade. Coarse on purpose — oracles compare two
   implementations point-by-point, they do not need resolution, and a
   fuzzing campaign runs thousands of sweeps. *)
let grid = Grid.make ~points_per_decade:2 ~f_lo:10.0 ~f_hi:1e6 ()
let freqs_hz = Grid.freqs_hz grid

let close ?(tol = 1e-12) a b =
  Complex.norm (Complex.sub a b) <= tol *. Float.max 1.0 (Complex.norm b)

let family_of (s : Gen.subject) =
  match String.index_opt s.label '#' with
  | Some i -> Gen.family_of_string (String.sub s.label 0 i)
  | None -> None

let is_near_singular s = family_of s = Some Gen.Near_singular

(* The independent reference path: boxed functor assembly over the
   Complex field, solved by the general Cmat entry point. Shares no
   code with the split-stamp planar path Fastsim uses (the assembly
   functor predates it and is kept precisely as this reference). *)
let reference_solve ~source netlist ~omega =
  let module F =
    (val Mna.Field.complex ~omega : Mna.Field.S with type t = Complex.t)
  in
  let module A = Mna.Assemble.Make (F) in
  let index = Mna.Index.build netlist in
  let { A.matrix; rhs } = A.assemble ~sources:(Mna.Assemble.Only source) index netlist in
  (index, Linalg.Cmat.solve (Linalg.Cmat.of_arrays matrix) rhs)

let reference_transfer ~source ~output netlist ~omega =
  let index, x = reference_solve ~source netlist ~omega in
  match Mna.Index.node index output with None -> Complex.zero | Some i -> x.(i)

let reference_sweep ~source ~output netlist =
  Array.map
    (fun f ->
      let omega = 2.0 *. Float.pi *. f in
      match reference_transfer ~source ~output netlist ~omega with
      | v -> Some v
      | exception Linalg.Cmat.Singular -> None)
    freqs_hz

let pp_complex c = Printf.sprintf "%g%+gi" c.Complex.re c.Complex.im

(* --- ac-reference: planar nominal sweep vs boxed assembly --------- *)

(* Near-singular ladders spread impedances over ~12 decades; both
   paths solve the same ill-conditioned system and each carries a
   forward error of order kappa * eps, so cross-path agreement
   degrades with conditioning. The relaxed envelopes stay orders of
   magnitude below any silent-wrong-answer bug. *)
let nominal_tol s = if is_near_singular s then 1e-6 else 1e-9
let fault_tol s (fault : Fault.t) =
  match (fault.Fault.kind, is_near_singular s) with
  | Fault.Deviation _, false -> 1e-9
  | Fault.Deviation _, true -> 1e-3
  | _, false -> 1e-6
  | _, true -> 1e-3

let ac_reference (s : Gen.subject) =
  match Fastsim.create ~source:s.source ~output:s.output ~freqs_hz s.netlist with
  | exception Mna.Ac.Singular_circuit msg -> Skip ("nominal singular: " ^ msg)
  | sim ->
      let nominal = Fastsim.nominal sim in
      let reference = reference_sweep ~source:s.source ~output:s.output s.netlist in
      let tol = nominal_tol s in
      let failure = ref None in
      Array.iteri
        (fun i r ->
          if !failure = None then
            match r with
            | None ->
                failure :=
                  Some
                    (Printf.sprintf "%g Hz: planar solvable, boxed singular"
                       freqs_hz.(i))
            | Some b ->
                if not (close ~tol nominal.(i) b) then
                  failure :=
                    Some
                      (Printf.sprintf "%g Hz: planar %s, boxed %s" freqs_hz.(i)
                         (pp_complex nominal.(i)) (pp_complex b)))
        reference;
      (match !failure with Some m -> Fail m | None -> Pass)

(* --- rank1-updates: Sherman–Morrison vs inject-and-resolve -------- *)

let faults_for s =
  (* catastrophic opens/shorts rescale one conductance by ~1e7; on a
     near-singular ladder that pushes cross-path agreement past any
     useful envelope, so that family checks deviations only *)
  if is_near_singular s then Fault.both_deviations s.Gen.netlist
  else
    Fault.both_deviations s.Gen.netlist @ Fault.catastrophic_faults s.Gen.netlist

let rank1_updates (s : Gen.subject) =
  match Fastsim.create ~source:s.source ~output:s.output ~freqs_hz s.netlist with
  | exception Mna.Ac.Singular_circuit msg -> Skip ("nominal singular: " ^ msg)
  | sim ->
      (* near-singular family: a faulted system can sit exactly at the
         LU's relative pivot threshold, where one path legitimately
         declares Singular and the other solves — skip those points
         (still scanning the rest for value disagreements) instead of
         failing on the threshold itself *)
      let lenient_singularity = is_near_singular s in
      let check_fault failure (fault : Fault.t) =
        if failure <> None then failure
        else
          let fast = Fastsim.response sim fault in
          let faulty = Fault.inject fault s.netlist in
          let naive = reference_sweep ~source:s.source ~output:s.output faulty in
          let tol = fault_tol s fault in
          let f = ref None in
          Array.iteri
            (fun i fo ->
              if !f = None then
                match (fo, naive.(i)) with
                | None, None -> ()
                | Some a, Some b ->
                    if not (close ~tol a b) then
                      f :=
                        Some
                          (Printf.sprintf "%s at %g Hz: fast %s, reference %s"
                             fault.Fault.id freqs_hz.(i) (pp_complex a)
                             (pp_complex b))
                | Some _, None ->
                    if not lenient_singularity then
                      f :=
                        Some
                          (Printf.sprintf
                             "%s at %g Hz: fast solvable, reference singular"
                             fault.Fault.id freqs_hz.(i))
                | None, Some _ ->
                    if not lenient_singularity then
                      f :=
                        Some
                          (Printf.sprintf
                             "%s at %g Hz: fast singular, reference solvable"
                             fault.Fault.id freqs_hz.(i)))
            fast;
          !f
      in
      (match List.fold_left check_fault None (faults_for s) with
      | Some m -> Fail m
      | None -> Pass)

(* --- sparse-vs-dense: the two fault-free factorizations ----------- *)

(* Forcing the two {!Fastsim} back-ends onto one subject checks the
   whole sparse stack end-to-end — sparse stamps, Markowitz analysis,
   per-frequency refactorization, back-solves, and the
   Sherman–Morrison machinery running over sparse factors — against
   the dense planar path, nominal and per-fault, cell by cell within
   the family's tolerance envelope. Unlike [ac-reference] this also
   covers the faulty solves, where the backends share the residual
   gate but nothing below it. *)

(* big subjects would pay |faults| ∝ stages; a spread sample keeps the
   oracle O(1)-ish per subject while still touching both ladders *)
let sample_faults limit faults =
  let n = List.length faults in
  if n <= limit then faults
  else
    let step = ((n + limit - 1) / limit) + 1 in
    List.filteri (fun i _ -> i mod step = 0) faults

let sparse_vs_dense (s : Gen.subject) =
  let mk backend =
    Fastsim.create ~backend ~source:s.source ~output:s.output ~freqs_hz s.netlist
  in
  match mk Fastsim.Dense with
  | exception Mna.Ac.Singular_circuit msg -> Skip ("nominal singular: " ^ msg)
  | dense -> (
      match mk Fastsim.Sparse with
      | exception Mna.Ac.Singular_circuit msg ->
          if is_near_singular s then
            (* the two pivot strategies may legitimately disagree at
               the singularity threshold on this family *)
            Skip ("sparse pivoting declares singular: " ^ msg)
          else Fail ("sparse backend singular where dense solves: " ^ msg)
      | sparse ->
          let nd = Fastsim.nominal dense and ns = Fastsim.nominal sparse in
          let failure = ref None in
          let tol = nominal_tol s in
          Array.iteri
            (fun i a ->
              if !failure = None && not (close ~tol a ns.(i)) then
                failure :=
                  Some
                    (Printf.sprintf "nominal at %g Hz: dense %s, sparse %s"
                       freqs_hz.(i) (pp_complex a) (pp_complex ns.(i))))
            nd;
          let lenient = is_near_singular s in
          let check_fault failure (fault : Fault.t) =
            if failure <> None then failure
            else
              let rd = Fastsim.response dense fault in
              let rs = Fastsim.response sparse fault in
              let tol = fault_tol s fault in
              let f = ref None in
              Array.iteri
                (fun i d ->
                  if !f = None then
                    match (d, rs.(i)) with
                    | None, None -> ()
                    | Some a, Some b ->
                        if not (close ~tol a b) then
                          f :=
                            Some
                              (Printf.sprintf "%s at %g Hz: dense %s, sparse %s"
                                 fault.Fault.id freqs_hz.(i) (pp_complex a)
                                 (pp_complex b))
                    | Some _, None ->
                        if not lenient then
                          f :=
                            Some
                              (Printf.sprintf
                                 "%s at %g Hz: dense solvable, sparse singular"
                                 fault.Fault.id freqs_hz.(i))
                    | None, Some _ ->
                        if not lenient then
                          f :=
                            Some
                              (Printf.sprintf
                                 "%s at %g Hz: dense singular, sparse solvable"
                                 fault.Fault.id freqs_hz.(i)))
                rd;
              !f
          in
          (match
             List.fold_left check_fault !failure (sample_faults 24 (faults_for s))
           with
          | Some m -> Fail m
          | None -> Pass))

(* --- jobs-invariance: parallel campaign = sequential campaign ----- *)

(* Every subject gets a multi-view campaign: opamp circuits through
   the real multi-configuration pipeline, passive ones through
   per-node probe views (any view family works for Matrix.build). *)
let campaign ~jobs (s : Gen.subject) =
  if Netlist.opamps s.netlist <> [] then
    let b =
      {
        Circuits.Benchmark.name = s.label;
        description = "conformance fuzz subject";
        netlist = s.netlist;
        source = s.source;
        output = s.output;
        center_hz = 1_000.0;
      }
    in
    (Mcdft_core.Pipeline.run ~points_per_decade:3 ~jobs b).Mcdft_core.Pipeline.matrix
  else
    let views =
      List.map
        (fun node ->
          {
            Matrix.label = "probe:" ^ node;
            netlist = s.netlist;
            probe = { Detect.source = s.source; output = node };
          })
        (Netlist.internal_nodes s.netlist)
    in
    Matrix.build ~jobs grid views (Fault.both_deviations s.netlist)

let counters_excluding_parallel snap =
  List.filter
    (fun (name, _) ->
      not (String.length name >= 9 && String.sub name 0 9 = "parallel."))
    snap.Obs.Metrics.counters

let jobs_invariance (s : Gen.subject) =
  (* when the registry is live (e.g. the fuzz run itself was started
     with --metrics) we must not reset it, so only the matrix halves of
     the property are checked *)
  let check_counters = not (Obs.Metrics.enabled ()) in
  let snapshot_run jobs =
    if check_counters then begin
      Obs.Metrics.set_enabled true;
      Obs.Metrics.reset ()
    end;
    let m = campaign ~jobs s in
    let snap = if check_counters then Some (Obs.Metrics.snapshot ()) else None in
    if check_counters then begin
      Obs.Metrics.reset ();
      Obs.Metrics.set_enabled false
    end;
    (m, snap)
  in
  match snapshot_run 1 with
  | exception Mna.Ac.Singular_circuit msg ->
      if check_counters then begin
        Obs.Metrics.reset ();
        Obs.Metrics.set_enabled false
      end;
      Skip ("a view is singular: " ^ msg)
  | m1, snap1 -> (
      match snapshot_run 4 with
      | exception Mna.Ac.Singular_circuit msg ->
          if check_counters then begin
            Obs.Metrics.reset ();
            Obs.Metrics.set_enabled false
          end;
          Fail ("jobs:4 singular where jobs:1 was not: " ^ msg)
      | m4, snap4 ->
          if m1.Matrix.detect <> m4.Matrix.detect then
            Fail "detect matrices differ between jobs:1 and jobs:4"
          else if m1.Matrix.omega <> m4.Matrix.omega then
            Fail "omega matrices differ between jobs:1 and jobs:4"
          else
            let c1 = Option.map counters_excluding_parallel snap1
            and c4 = Option.map counters_excluding_parallel snap4 in
            if c1 <> c4 then
              Fail "Obs.Metrics counter totals differ between jobs:1 and jobs:4"
            else Pass)

(* --- structural-vs-lu: pattern rank vs numeric factorization ------ *)

let lu_solvable netlist ~omega =
  let module F =
    (val Mna.Field.complex ~omega : Mna.Field.S with type t = Complex.t)
  in
  let module A = Mna.Assemble.Make (F) in
  let index = Mna.Index.build netlist in
  let { A.matrix; _ } = A.assemble index netlist in
  match Linalg.Cmat.lu_factor (Linalg.Cmat.of_arrays matrix) with
  | _ -> true
  | exception Linalg.Cmat.Singular -> false

(* deliberately non-round frequencies: a full-rank circuit is singular
   at a given omega only on a measure-zero set of component values, and
   generated values are continuous draws *)
let probe_omegas =
  List.map (fun f -> 2.0 *. Float.pi *. f) [ 37.0; 3_700.0; 370_000.0 ]

let structural_vs_lu (s : Gen.subject) =
  let verdict = Analysis.Structural.is_singular (Analysis.Structural.analyse s.netlist) in
  if verdict then
    match List.find_opt (fun omega -> lu_solvable s.netlist ~omega) probe_omegas with
    | Some omega ->
        Fail
          (Printf.sprintf
             "structurally singular yet LU succeeds at omega = %g rad/s" omega)
    | None -> Pass
  else if is_near_singular s then
    (* extreme value spreads can push true pivots under the LU's
       relative threshold: the converse direction is only guaranteed
       for exact arithmetic *)
    Skip "full-rank converse not checked on near-singular values"
  else
    match List.find_opt (fun omega -> not (lu_solvable s.netlist ~omega)) probe_omegas with
    | Some omega ->
        Fail
          (Printf.sprintf
             "structurally full-rank yet LU singular at omega = %g rad/s" omega)
    | None -> Pass

(* --- block-backsolve: blocked campaign scoring vs per-fault path -- *)

(* Matrix.build scores through immutable plans, planar response rows
   and multi-RHS block back-solves on a warmed engine; analyze_prepared
   on an unwarmed view boxes one response per fault and fills its
   cache through single-column solves. The block kernel promises
   bitwise equality with scalar solves, so the two paths must agree
   exactly — every detect verdict and every omega measure, not just
   within tolerance. *)
let block_backsolve (s : Gen.subject) =
  let faults = Fault.both_deviations s.netlist @ Fault.catastrophic_faults s.netlist in
  let views =
    List.map
      (fun node ->
        {
          Matrix.label = "probe:" ^ node;
          netlist = s.netlist;
          probe = { Detect.source = s.source; output = node };
        })
      (Netlist.internal_nodes s.netlist)
  in
  if views = [] || faults = [] then Skip "no views or no faults to score"
  else
    match Matrix.build ~jobs:1 grid views faults with
    | exception Mna.Ac.Singular_circuit msg -> Skip ("a view is singular: " ^ msg)
    | m ->
        let failure = ref None in
        List.iteri
          (fun i v ->
            if !failure = None then
              let pv = Detect.prepare_view v.Matrix.probe grid v.Matrix.netlist in
              List.iteri
                (fun j fault ->
                  if !failure = None then begin
                    let r = Detect.analyze_prepared pv grid fault in
                    if r.Detect.detectable <> m.Matrix.detect.(i).(j) then
                      failure :=
                        Some
                          (Printf.sprintf "%s / %s: detect verdicts differ"
                             v.Matrix.label fault.Fault.id)
                    else if r.Detect.omega_det <> m.Matrix.omega.(i).(j) then
                      failure :=
                        Some
                          (Printf.sprintf
                             "%s / %s: per-fault omega %.17g, blocked %.17g"
                             v.Matrix.label fault.Fault.id r.Detect.omega_det
                             m.Matrix.omega.(i).(j))
                  end)
                faults)
          views;
        (match !failure with Some msg -> Fail msg | None -> Pass)

(* --- cover-minimality: branch-and-bound vs exhaustive covers ------ *)

let cover_minimality (s : Gen.subject) =
  match campaign ~jobs:1 s with
  | exception Mna.Ac.Singular_circuit msg -> Skip ("a view is singular: " ^ msg)
  | m ->
      let clause = Cover.Clause.of_matrix m.Matrix.detect in
      let n_candidates = Cover.Clause.IntSet.cardinal (Cover.Clause.candidates clause) in
      if n_candidates = 0 then Skip "no fault is detectable in any view"
      else if n_candidates > 20 then
        Skip (Printf.sprintf "%d candidates exceed brute-force range" n_candidates)
      else
        let exact = Cover.Solver.exact clause in
        let brute = Cover.Solver.brute_force clause in
        let greedy = Cover.Solver.greedy clause in
        let cost = Cover.Solver.cost_of in
        (match (exact, brute, greedy) with
        | Cover exact, Cover brute, Cover greedy ->
            if not (Cover.Clause.is_cover clause exact) then
              Fail "exact returned a non-cover"
            else if not (Cover.Clause.is_cover clause brute) then
              Fail "brute_force returned a non-cover"
            else if not (Cover.Clause.is_cover clause greedy) then
              Fail "greedy returned a non-cover"
            else if cost exact <> cost brute then
              Fail
                (Printf.sprintf "exact cost %g <> brute-force optimum %g" (cost exact)
                   (cost brute))
            else if cost greedy < cost brute then
              Fail
                (Printf.sprintf "greedy cost %g beats the exhaustive optimum %g"
                   (cost greedy) (cost brute))
            else Pass
        | _ ->
            (* of_matrix skips empty columns, so the system is feasible
               by construction — any Infeasible here is a solver bug *)
            Fail "a solver reported an of_matrix system infeasible")

(* --- n-detect: multiplicity covers vs exhaustive enumeration ------ *)

(* The n = 2 instance exercises every multiplicity-specific code path:
   capped needs, residual decrements in the branch-and-bound, and the
   short-fault accounting. Feasibility verdicts on the strict instance
   are checked against the detect-matrix column counts directly, not
   against the solvers' own precheck. *)
let n_detect (s : Gen.subject) =
  match campaign ~jobs:1 s with
  | exception Mna.Ac.Singular_circuit msg -> Skip ("a view is singular: " ^ msg)
  | m ->
      let capped = Cover.Clause.of_matrix ~n:2 m.Matrix.detect in
      let n_candidates = Cover.Clause.IntSet.cardinal (Cover.Clause.candidates capped) in
      if n_candidates = 0 then Skip "no fault is detectable in any view"
      else if n_candidates > 20 then
        Skip (Printf.sprintf "%d candidates exceed brute-force range" n_candidates)
      else
        let cost = Cover.Solver.cost_of in
        (match
           ( Cover.Solver.exact capped,
             Cover.Solver.brute_force capped,
             Cover.Solver.greedy capped,
             Cover.Solver.greedy (Cover.Clause.of_matrix ~n:1 m.Matrix.detect),
             Cover.Solver.greedy (Cover.Clause.of_matrix m.Matrix.detect) )
         with
        | Cover exact, Cover brute, Cover greedy, Cover greedy_n1, Cover greedy_legacy
          ->
            if not (Cover.Clause.is_cover capped exact) then
              Fail "exact violates a multiplicity clause"
            else if not (Cover.Clause.is_cover capped brute) then
              Fail "brute_force violates a multiplicity clause"
            else if not (Cover.Clause.is_cover capped greedy) then
              Fail "greedy violates a multiplicity clause"
            else if cost exact <> cost brute then
              Fail
                (Printf.sprintf "n=2 exact cost %g <> brute-force optimum %g"
                   (cost exact) (cost brute))
            else if cost greedy < cost brute then
              Fail
                (Printf.sprintf "n=2 greedy cost %g beats the exhaustive optimum %g"
                   (cost greedy) (cost brute))
            else if not (Cover.Clause.IntSet.equal greedy_n1 greedy_legacy) then
              Fail "greedy at n=1 differs bitwise from the default covering"
            else
              (* strict instance: every solver must call infeasibility
                 exactly when some column holds fewer than 2 views *)
              let strict = Cover.Clause.of_matrix_exact ~n:2 m.Matrix.detect in
              let expected =
                List.sort_uniq Int.compare
                  (Cover.Clause.uncoverable_faults m.Matrix.detect
                  @ List.map fst (Cover.Clause.short_faults ~n:2 m.Matrix.detect))
              in
              let verdict solver =
                match solver strict with
                | Cover.Solver.Cover _ -> None
                | Cover.Solver.Infeasible tags ->
                    Some (List.sort_uniq Int.compare tags)
              in
              let expected = if expected = [] then None else Some expected in
              if verdict (fun t -> Cover.Solver.greedy t) <> expected then
                Fail "greedy feasibility verdict contradicts the column counts"
              else if verdict (fun t -> Cover.Solver.exact t) <> expected then
                Fail "exact feasibility verdict contradicts the column counts"
              else if verdict (fun t -> Cover.Solver.brute_force t) <> expected then
                Fail "brute_force feasibility verdict contradicts the column counts"
              else Pass
        | _ -> Fail "a solver reported the capped of_matrix system infeasible")

(* --- diagnosis: trajectory self-test round-trip -------------------- *)

(* For every fault in the universe, the trajectory its own simulator
   produces must classify back to that fault — or land in an ambiguity
   set containing it, when another fault's trajectory collides within
   the tolerance envelope. *)
let diagnosis (s : Gen.subject) =
  let faults = Fault.both_deviations s.netlist in
  if faults = [] then Skip "no deviation faults to diagnose"
  else
    let traj =
      if Netlist.opamps s.netlist <> [] then
        let b =
          {
            Circuits.Benchmark.name = s.label;
            description = "conformance fuzz subject";
            netlist = s.netlist;
            source = s.source;
            output = s.output;
            center_hz = 1_000.0;
          }
        in
        match Mcdft_core.Pipeline.run ~points_per_decade:3 ~faults ~jobs:1 b with
        | t -> Ok (Diagnosis.Trajectory.of_pipeline t)
        | exception Mna.Ac.Singular_circuit msg -> Error msg
      else
        let views =
          List.map
            (fun node ->
              {
                Matrix.label = "probe:" ^ node;
                netlist = s.netlist;
                probe = { Detect.source = s.source; output = node };
              })
            (Netlist.internal_nodes s.netlist)
        in
        if views = [] then Error "no probe views"
        else
          match Diagnosis.Trajectory.build grid views faults with
          | t -> Ok t
          | exception Mna.Ac.Singular_circuit msg -> Error msg
    in
    match traj with
    | Error msg -> Skip ("cannot build a trajectory dictionary: " ^ msg)
    | Ok traj ->
        let module T = Diagnosis.Trajectory in
        let failure = ref None in
        List.iter
          (fun (f : Fault.t) ->
            if !failure = None then
              let v = T.classify traj (T.simulate traj f) in
              let hit =
                v.T.fault.Fault.id = f.Fault.id
                || List.exists (fun g -> g.Fault.id = f.Fault.id) v.T.ambiguous
              in
              if not hit then
                failure :=
                  Some
                    (Printf.sprintf
                       "%s classified as %s (distance %g) outside its ambiguity set"
                       f.Fault.id v.T.fault.Fault.id v.T.distance))
          faults;
        (match !failure with Some m -> Fail m | None -> Pass)

(* --- certify-soundness: interval certificates vs the numeric engine *)

(* The adversarial check on {!Analysis.Certify}: build the same
   detectability matrix twice — fully numeric, and with the certified
   verdict cube short-circuiting every proved point — under the
   criterion the certificates were issued for. Soundness promises the
   two are bitwise identical: any certified point that contradicts the
   engine's own |ΔT|/|T| computation flips a detect verdict or moves an
   omega measure, and every grid point contributes nonzero log-measure,
   so a single wrong certificate cannot hide. Runs on every generator
   family, near-singular included (where poles crossing the sweep are
   exactly what the den-comfort guard must survive). *)
let certify_soundness (s : Gen.subject) =
  let eps = 0.10 in
  let faults = sample_faults 16 (Fault.both_deviations s.netlist) in
  let views =
    if Netlist.opamps s.netlist <> [] then
      match
        Multiconfig.Transform.make ~source:s.source ~output:s.output s.netlist
      with
      | exception Invalid_argument msg -> Error ("no DFT transform: " ^ msg)
      | dft ->
          Ok
            (List.map
               (fun config ->
                 {
                   Matrix.label = Multiconfig.Configuration.label config;
                   netlist = Multiconfig.Transform.emulate dft config;
                   probe = { Detect.source = s.source; output = s.output };
                 })
               (Multiconfig.Transform.test_configurations dft))
    else
      Ok
        (List.map
           (fun node ->
             {
               Matrix.label = "probe:" ^ node;
               netlist = s.netlist;
               probe = { Detect.source = s.source; output = node };
             })
           (Netlist.internal_nodes s.netlist))
  in
  match views with
  | Error msg -> Skip msg
  | Ok [] -> Skip "no views to certify"
  | Ok views ->
      if faults = [] then Skip "no faults to certify"
      else begin
        let specs =
          List.map
            (fun (v : Matrix.view) ->
              {
                Analysis.Certify.label = v.Matrix.label;
                netlist = v.Matrix.netlist;
                source = v.Matrix.probe.Detect.source;
                output = v.Matrix.probe.Detect.output;
              })
            views
        in
        let c = Analysis.Certify.certify ~eps ~freqs_hz specs faults in
        let criterion = Detect.Fixed_tolerance eps in
        match Matrix.build ~criterion ~jobs:1 grid views faults with
        | exception Mna.Ac.Singular_circuit msg -> Skip ("a view is singular: " ^ msg)
        | plain -> (
            match
              Matrix.build ~criterion
                ~certified:(Analysis.Certify.verdict_cube c)
                ~jobs:1 grid views faults
            with
            | exception Mna.Ac.Singular_circuit msg ->
                Fail ("certified build singular where the numeric one solved: " ^ msg)
            | certified ->
                if certified.Matrix.detect <> plain.Matrix.detect then
                  Fail
                    "a certified verdict contradicts the numeric engine: detect \
                     matrices differ"
                else if certified.Matrix.omega <> plain.Matrix.omega then
                  Fail
                    "a certified verdict contradicts the numeric engine: omega \
                     matrices differ"
                else Pass)
      end

(* --- adaptive-vs-exhaustive: coarse-to-fine refinement bitwise ----- *)

(* The adversarial check on {!Mcdft_core.Adaptive}: the refinement's
   skip rule is a calibrated slope bound, not a certificate, so every
   family — near-singular included, where failed solves and
   measurement-floor masking interleave — must produce detect/omega
   matrices bitwise identical to the exhaustive sweep, and the
   adaptive.* counters must be jobs-invariant (they are accumulated in
   the sequential reduce, so any divergence means scoring itself
   raced). *)
let adaptive_vs_exhaustive (s : Gen.subject) =
  let module A = Mcdft_core.Adaptive in
  if Netlist.opamps s.netlist <> [] then
    let b =
      {
        Circuits.Benchmark.name = s.label;
        description = "conformance fuzz subject";
        netlist = s.netlist;
        source = s.source;
        output = s.output;
        center_hz = 1_000.0;
      }
    in
    match Mcdft_core.Pipeline.run ~points_per_decade:3 ~jobs:1 ~adaptive:false b with
    | exception Mna.Ac.Singular_circuit msg -> Skip ("a view is singular: " ^ msg)
    | exhaustive -> (
        let run_adaptive jobs =
          Mcdft_core.Pipeline.run ~points_per_decade:3 ~jobs ~adaptive:true b
        in
        match run_adaptive 1 with
        | exception Mna.Ac.Singular_circuit msg ->
            Fail ("adaptive campaign singular where the exhaustive one solved: " ^ msg)
        | t1 -> (
            match run_adaptive 4 with
            | exception Mna.Ac.Singular_circuit msg ->
                Fail ("adaptive jobs:4 singular where jobs:1 solved: " ^ msg)
            | t4 ->
                let m = exhaustive.Mcdft_core.Pipeline.matrix in
                let m1 = t1.Mcdft_core.Pipeline.matrix in
                let m4 = t4.Mcdft_core.Pipeline.matrix in
                if m1.Matrix.detect <> m.Matrix.detect then
                  Fail "adaptive detect matrix differs from the exhaustive sweep"
                else if m1.Matrix.omega <> m.Matrix.omega then
                  Fail "adaptive omega matrix differs from the exhaustive sweep"
                else if
                  m4.Matrix.detect <> m.Matrix.detect
                  || m4.Matrix.omega <> m.Matrix.omega
                then Fail "adaptive jobs:4 matrices differ from the exhaustive sweep"
                else if t1.Mcdft_core.Pipeline.adaptive <> t4.Mcdft_core.Pipeline.adaptive
                then Fail "adaptive.* counters differ between jobs:1 and jobs:4"
                else Pass))
  else
    let views =
      List.map
        (fun node ->
          {
            Matrix.label = "probe:" ^ node;
            netlist = s.netlist;
            probe = { Detect.source = s.source; output = node };
          })
        (Netlist.internal_nodes s.netlist)
    in
    let faults = Fault.both_deviations s.netlist in
    if views = [] || faults = [] then Skip "no views or no faults to score"
    else
      match Matrix.build ~jobs:1 grid views faults with
      | exception Mna.Ac.Singular_circuit msg -> Skip ("a view is singular: " ^ msg)
      | plain -> (
          match A.build ~jobs:1 grid views faults with
          | exception Mna.Ac.Singular_circuit msg ->
              Fail ("adaptive build singular where the exhaustive one solved: " ^ msg)
          | m1, s1 -> (
              match A.build ~jobs:4 grid views faults with
              | exception Mna.Ac.Singular_circuit msg ->
                  Fail ("adaptive jobs:4 singular where jobs:1 solved: " ^ msg)
              | m4, s4 ->
                  if m1.Matrix.detect <> plain.Matrix.detect then
                    Fail "adaptive detect matrix differs from the exhaustive sweep"
                  else if m1.Matrix.omega <> plain.Matrix.omega then
                    Fail "adaptive omega matrix differs from the exhaustive sweep"
                  else if
                    m4.Matrix.detect <> plain.Matrix.detect
                    || m4.Matrix.omega <> plain.Matrix.omega
                  then Fail "adaptive jobs:4 matrices differ from the exhaustive sweep"
                  else if s1 <> s4 then
                    Fail "adaptive.* counters differ between jobs:1 and jobs:4"
                  else Pass))

let all =
  [
    {
      name = "ac-reference";
      doc = "planar nominal AC sweep vs boxed functor assembly + Cmat.solve";
      check = ac_reference;
    };
    {
      name = "rank1-updates";
      doc = "Sherman-Morrison faulty responses vs inject-and-resolve reference";
      check = rank1_updates;
    };
    {
      name = "jobs-invariance";
      doc = "campaign matrices and Obs.Metrics totals identical for jobs:1 and jobs:4";
      check = jobs_invariance;
    };
    {
      name = "block-backsolve";
      doc = "blocked matrix scoring bitwise-equal to per-fault analyze_prepared";
      check = block_backsolve;
    };
    {
      name = "structural-vs-lu";
      doc = "structural rank verdict consistent with numeric LU factorization";
      check = structural_vs_lu;
    };
    {
      name = "cover-minimality";
      doc = "exact/greedy covers validated against exhaustive enumeration";
      check = cover_minimality;
    };
    {
      name = "n-detect";
      doc = "multiplicity (n=2) covers optimal, feasibility matching column counts";
      check = n_detect;
    };
    {
      name = "diagnosis";
      doc = "trajectory self-test: every simulated fault classifies back to itself";
      check = diagnosis;
    };
    {
      name = "sparse-vs-dense";
      doc = "forced-Sparse Fastsim nominal + faulty responses vs forced-Dense";
      check = sparse_vs_dense;
    };
    {
      name = "certify-soundness";
      doc = "interval-certified verdict cube leaves campaign matrices bitwise intact";
      check = certify_soundness;
    };
    {
      name = "adaptive-vs-exhaustive";
      doc =
        "coarse-to-fine campaign matrices bitwise equal to the exhaustive \
         sweep, adaptive counters jobs-invariant";
      check = adaptive_vs_exhaustive;
    };
  ]

let find name = List.find_opt (fun o -> o.name = name) all

(* bigladder subjects carry hundreds of unknowns: running the campaign
   or cover oracles on them costs minutes each without exercising
   anything the small families don't. Only the direct sweep checks are
   worth the scale. *)
let bigladder_oracles = [ "ac-reference"; "sparse-vs-dense" ]

let run o (s : Gen.subject) =
  if not (Netlist.mem s.netlist s.source) then Skip "source element absent"
  else if not (List.mem s.output (Netlist.nodes s.netlist)) then
    Skip "output node absent"
  else if
    family_of s = Some Gen.Bigladder && not (List.mem o.name bigladder_oracles)
  then Skip "bigladder subjects check the sweep/differential oracles only"
  else
    match o.check s with
    | v -> v
    | exception e -> Fail ("unexpected exception: " ^ Printexc.to_string e)
