module Netlist = Circuit.Netlist
module Element = Circuit.Element

let fails ~oracle subject =
  match Oracle.run oracle subject with Oracle.Fail _ -> true | _ -> false

(* one pass over the current elements, dropping each one whose removal
   keeps the oracle failing; later removals see earlier ones *)
let removal_pass ~oracle (subject : Gen.subject) =
  List.fold_left
    (fun (s : Gen.subject) e ->
      let name = Element.name e in
      if name = s.Gen.source || not (Netlist.mem s.netlist name) then s
      else
        let candidate = { s with Gen.netlist = Netlist.remove name s.netlist } in
        if fails ~oracle candidate then candidate else s)
    subject
    (Netlist.elements subject.Gen.netlist)

let round_1sig v =
  if v = 0.0 || not (Float.is_finite v) then v
  else
    let e = Float.floor (Float.log10 (Float.abs v)) in
    let scale = 10.0 ** e in
    let r = Float.round (v /. scale) *. scale in
    if r = 0.0 then v else r

let rounding_pass ~oracle (subject : Gen.subject) =
  List.fold_left
    (fun (s : Gen.subject) e ->
      let name = Element.name e in
      match Element.value e with
      | None -> s
      | Some v ->
          let r = round_1sig v in
          if r = v then s
          else
            let candidate =
              { s with Gen.netlist = Netlist.map_value ~name ~f:(fun _ -> r) s.netlist }
            in
            if fails ~oracle candidate then candidate else s)
    subject
    (Netlist.passives subject.Gen.netlist)

let minimize ~oracle subject =
  if not (fails ~oracle subject) then subject
  else begin
    let current = ref subject in
    let continue = ref true in
    while !continue do
      let next = removal_pass ~oracle !current in
      continue := Netlist.size next.Gen.netlist < Netlist.size !current.Gen.netlist;
      current := next
    done;
    rounding_pass ~oracle !current
  end

(* --- repro fixtures ----------------------------------------------- *)

type repro = {
  label : string;
  family : string;
  oracle : string;
  message : string;
  source : string;
  output : string;
  netlist : Netlist.t;
}

(* the label's family prefix ("bigladder#3" → "bigladder") — kept as a
   first-class field so replay tooling can branch on family (e.g. the
   bigladder oracle guard) without re-parsing labels *)
let family_of_label label =
  match String.index_opt label '#' with
  | Some i -> String.sub label 0 i
  | None -> label

let slug_of label oracle_name =
  let sanitize s =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
        | _ -> '-')
      s
  in
  sanitize label ^ "--" ^ sanitize oracle_name

let save ~dir ~oracle ~message (subject : Gen.subject) =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let slug = slug_of subject.Gen.label oracle.Oracle.name in
  let cir_path = Filename.concat dir (slug ^ ".cir") in
  let json_path = Filename.concat dir (slug ^ ".expected.json") in
  Spice.Writer.to_file cir_path subject.netlist;
  let json =
    Report.Json.Object
      [
        ("label", Report.Json.String subject.label);
        ("family", Report.Json.String (family_of_label subject.label));
        ("cir", Report.Json.String (slug ^ ".cir"));
        ("oracle", Report.Json.String oracle.Oracle.name);
        ("verdict", Report.Json.String "fail");
        ("message", Report.Json.String message);
        ("source", Report.Json.String subject.source);
        ("output", Report.Json.String subject.output);
        ("elements", Report.Json.int (Netlist.size subject.netlist));
      ]
  in
  let oc = open_out json_path in
  output_string oc (Report.Json.to_string ~indent:2 json);
  output_string oc "\n";
  close_out oc;
  (cir_path, json_path)

let load ~expected =
  let read_all path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  match Report.Json.of_string (read_all expected) with
  | Error e -> Error (Printf.sprintf "%s: bad JSON: %s" expected e)
  | Ok json -> (
      let str field =
        match Report.Json.member field json with
        | Some (Report.Json.String s) -> Ok s
        | _ -> Error (Printf.sprintf "%s: missing string field %S" expected field)
      in
      let ( let* ) = Result.bind in
      let* label = str "label" in
      (* fixtures predating the field fall back to the label prefix *)
      let family =
        match str "family" with Ok f -> f | Error _ -> family_of_label label
      in
      let* cir = str "cir" in
      let* oracle = str "oracle" in
      let* message = str "message" in
      let* source = str "source" in
      let* output = str "output" in
      let cir_path = Filename.concat (Filename.dirname expected) cir in
      match Spice.Parser.parse_file cir_path with
      | Error e ->
          Error (Printf.sprintf "%s: %s" cir_path (Spice.Parser.error_to_string e))
      | Ok netlist -> Ok { label; family; oracle; message; source; output; netlist })

let replay (r : repro) =
  match Oracle.find r.oracle with
  | None -> Error (Printf.sprintf "unknown oracle %S" r.oracle)
  | Some oracle ->
      Ok
        (Oracle.run oracle
           {
             Gen.label = r.label;
             netlist = r.netlist;
             source = r.source;
             output = r.output;
           })
