type config = {
  seed : int;
  budget_s : float option;
  max_cases : int option;
  families : Gen.family list;
  oracles : Oracle.t list;
  shrink_dir : string option;
  log : string -> unit;
}

let default =
  {
    seed = 0;
    budget_s = None;
    max_cases = Some 50;
    families = Gen.families;
    oracles = Oracle.all;
    shrink_dir = None;
    log = ignore;
  }

type failure = {
  case : int;
  oracle : string;
  message : string;
  subject : Gen.subject;
  shrunk : Gen.subject;
  repro : (string * string) option;
}

type outcome = {
  cases : int;
  checks : int;
  passes : int;
  skips : int;
  failures : failure list;
}

let subject_of config i =
  let n = List.length config.families in
  let family = List.nth config.families (i mod n) in
  Gen.generate family ~seed:(config.seed + i)

let run config =
  if config.families = [] then invalid_arg "Fuzz.run: no families";
  if config.oracles = [] then invalid_arg "Fuzz.run: no oracles";
  let t0 = Obs.Metrics.now () in
  let over_budget () =
    match config.budget_s with
    | None -> false
    | Some b -> Obs.Metrics.now () -. t0 >= b
  in
  let done_cases i =
    match config.max_cases with None -> false | Some m -> i >= m
  in
  let checks = ref 0 and passes = ref 0 and skips = ref 0 in
  let failures = ref [] in
  let i = ref 0 in
  while (not (done_cases !i)) && not (!i > 0 && over_budget ()) do
    let subject = subject_of config !i in
    config.log
      (Printf.sprintf "case %d: %s (%d elements)" !i subject.Gen.label
         (Circuit.Netlist.size subject.Gen.netlist));
    List.iter
      (fun oracle ->
        incr checks;
        match Oracle.run oracle subject with
        | Oracle.Pass -> incr passes
        | Oracle.Skip why ->
            incr skips;
            config.log
              (Printf.sprintf "  %s: skip (%s)" oracle.Oracle.name why)
        | Oracle.Fail message ->
            config.log
              (Printf.sprintf "  %s: FAIL %s — shrinking" oracle.Oracle.name
                 message);
            let shrunk = Shrink.minimize ~oracle subject in
            config.log
              (Printf.sprintf "  shrunk %d -> %d elements"
                 (Circuit.Netlist.size subject.Gen.netlist)
                 (Circuit.Netlist.size shrunk.Gen.netlist));
            let repro =
              Option.map
                (fun dir -> Shrink.save ~dir ~oracle ~message shrunk)
                config.shrink_dir
            in
            failures :=
              { case = !i; oracle = oracle.Oracle.name; message; subject; shrunk; repro }
              :: !failures)
      config.oracles;
    incr i
  done;
  {
    cases = !i;
    checks = !checks;
    passes = !passes;
    skips = !skips;
    failures = List.rev !failures;
  }

let summary o =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%d cases, %d oracle checks: %d pass, %d skip, %d fail\n"
       o.cases o.checks o.passes o.skips (List.length o.failures));
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "FAIL case %d [%s] %s\n  %s\n  shrunk to %d elements%s\n"
           f.case f.subject.Gen.label f.oracle f.message
           (Circuit.Netlist.size f.shrunk.Gen.netlist)
           (match f.repro with
           | Some (cir, _) -> ": " ^ cir
           | None -> "")))
    o.failures;
  Buffer.contents buf
