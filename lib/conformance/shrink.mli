(** Greedy delta-debugging of failing subjects, and the repro fixture
    format the fuzzer leaves behind.

    A shrink step is accepted when the {e same oracle} still returns
    [Fail] on the candidate (any failure message — the bug's exact
    evidence may move as the circuit shrinks). Oracles [Skip] subjects
    that stop exercising them (missing output node, singular nominal),
    so a destructive removal is rejected automatically. *)

val minimize : oracle:Oracle.t -> Gen.subject -> Gen.subject
(** Element-removal passes to a fixpoint (never removing the driving
    source), then one value-rounding pass snapping surviving component
    values to one significant digit. Returns the original subject
    unchanged when the oracle does not [Fail] on it. *)

type repro = {
  label : string;
  family : string;
      (** The generator family tag ("ladder", "bigladder", …) —
          persisted in the fixture so replay tooling need not re-parse
          the label; derived from the label prefix when loading
          fixtures written before the field existed. *)
  oracle : string;  (** Name in the {!Oracle.all} registry. *)
  message : string;  (** The failure message at save time. *)
  source : string;
  output : string;
  netlist : Circuit.Netlist.t;
}

val save : dir:string -> oracle:Oracle.t -> message:string -> Gen.subject -> string * string
(** Write [<slug>.cir] (SPICE netlist) and [<slug>.expected.json]
    (oracle name, probe, failure message) under [dir], creating it if
    needed; the slug combines the subject label and the oracle name.
    Returns the two paths. *)

val load : expected:string -> (repro, string) result
(** Read a repro from its [.expected.json] path (the [.cir] sits next
    to it, named by the json's ["cir"] field). *)

val replay : repro -> (Oracle.verdict, string) result
(** Re-run the repro's oracle on its netlist. [Error] when the oracle
    name is no longer registered. A regression harness asserts the
    verdict is [Fail] for known-bug repros — or [Pass]/[Skip] once the
    underlying bug is fixed and the fixture is retired. *)
