(** The differential oracle registry.

    An oracle checks one agreement property between two independent
    implementations of the same quantity — the redundancy the repo
    already pays for (boxed functor assembly vs planar split stamps,
    rank-1 updates vs re-assembly, parallel vs sequential campaigns,
    structural vs numeric rank, exhaustive vs branch-and-bound covers)
    turned into an executable contract. Oracles never consult each
    other and recompute everything from the subject netlist, so a
    verdict depends only on the subject — the property the shrinker
    and [--replay] rely on.

    A [Skip] is a non-verdict: the subject does not exercise the
    property (e.g. a genuinely singular soup cannot be fault-simulated)
    or sits outside the oracle's validity envelope. Skips are counted
    and reported but never fail a run. *)

type verdict =
  | Pass
  | Fail of string  (** Disagreement, with the evidence. *)
  | Skip of string  (** Property not exercised by this subject. *)

type t = private {
  name : string;  (** Stable CLI identifier, e.g. ["rank1-updates"]. *)
  doc : string;
  check : Gen.subject -> verdict;
}

val all : t list
(** Registry, in execution order:
    ["ac-reference"], ["rank1-updates"], ["jobs-invariance"],
    ["structural-vs-lu"], ["cover-minimality"]. *)

val find : string -> t option

val run : t -> Gen.subject -> verdict
(** [check] behind guard rails: subjects missing their source element
    or output node are [Skip]ped (shrinking may ask for them), and an
    exception escaping the oracle is a [Fail], not a crash. *)

val verdict_to_string : verdict -> string
