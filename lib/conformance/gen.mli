module Netlist := Circuit.Netlist

(** Seeded random-circuit generation — the fuzzer's topology families.

    The raw generators ([ladder], [soup], …) take a [Random.State.t]
    so property tests can drive them from their own seeds; {!generate}
    wraps them into a self-describing {!subject} derived purely from a
    [(family, seed)] pair, the unit of deterministic replay. All
    generated netlists drive node ["n0"] from source ["V1"] (actives
    use dedicated stage nodes) and name elements with the conventions
    the original ad-hoc test generators used (RS/RP/CP/LP per ladder
    stage), so shrunk repro fixtures read like the test fixtures that
    predate them. *)

type family =
  | Ladder  (** Series/shunt R-C-L ladders, always solvable. *)
  | Soup
      (** Ladder + optional bridge + one of three hazards: a
          voltage-source loop, a nullor with shorted inputs, or a
          healthy feedback opamp — the structural-analysis stressor. *)
  | Active_chain
      (** Randomized opamp stages (inverting amp, lossy-integrator
          cascade, or a full Tow-Thomas loop) — the multiconfig /
          campaign stressor. *)
  | Near_singular
      (** Ladders with pathological value spreads (up to ~12 decades
          between neighbouring impedances) — the LU-threshold and
          refinement stressor. *)
  | Bigladder
      (** Two long RC ladders (hundreds of stages, seed-parameterized)
          bridged by a three-buffer opamp chain — the sparse back-end
          scale stressor and the campaign-pruning showcase. Not in the
          default rotation; request it explicitly. *)

val families : family list
(** The default fuzzing rotation ({!Bigladder} excluded — it is
    opt-in). *)

val all_families : family list
(** Every family, including the opt-in ones. *)

val family_name : family -> string
val family_of_string : string -> family option

type subject = {
  label : string;  (** e.g. ["ladder#417"] — family and seed. *)
  netlist : Netlist.t;
  source : string;  (** Driving voltage source. *)
  output : string;  (** Observed output node. *)
}

val ladder : Random.State.t -> Netlist.t * string
(** A random 1-5 stage series/shunt ladder; returns the netlist and
    its output node. Every node keeps a DC path to ground through the
    series resistors, so the system is solvable at every frequency. *)

val soup : Random.State.t -> Netlist.t * string
(** A random connected soup: ladder + optional bridge + at most one
    opamp hazard (see {!Soup}). May be genuinely singular. *)

val active_chain : Random.State.t -> Netlist.t * string
(** A random 1-3 opamp active circuit, solvable in the functional
    configuration and built from topologies whose DFT configuration
    views are well-posed. *)

val near_singular : Random.State.t -> Netlist.t * string
(** A ladder with extreme value spreads; solvable in exact arithmetic
    but hostile to fixed pivot/residual thresholds. *)

val bigladder : ?stages:int -> Random.State.t -> Netlist.t * string
(** Two RC ladder sections of [stages] total stages (default: drawn in
    100–450) bridged by a three-buffer opamp chain; always solvable,
    hundreds of MNA unknowns with a handful of nonzeros per row. *)

val generate : family -> seed:int -> subject
(** Deterministic: the same [(family, seed)] pair always yields the
    same subject, independent of any global RNG state. *)
