module J = Report.Json
module IntSet = Cover.Clause.IntSet

let json_bool_matrix m =
  J.List (Array.to_list (Array.map (fun row -> J.List (Array.to_list (Array.map (fun b -> J.Bool b) row))) m))

let json_float_matrix m =
  J.List (Array.to_list (Array.map (fun row -> J.List (Array.to_list (Array.map (fun x -> J.Number x) row))) m))

let json_ints l = J.List (List.map J.int l)
let json_sets sets = J.List (List.map (fun s -> json_ints (IntSet.elements s)) sets)

let json_config_choice (c : Mcdft_core.Optimizer.config_choice) =
  J.Object
    [ ("configs", json_ints c.configs); ("avg_omega", J.Number c.avg_omega) ]

let json_opamp_choice (c : Mcdft_core.Optimizer.opamp_choice) =
  J.Object
    [
      ("opamps", json_ints c.opamps);
      ("reachable_configs", json_ints c.reachable_configs);
      ("avg_omega_reachable", J.Number c.avg_omega_reachable);
    ]

let json_report (r : Mcdft_core.Optimizer.report) =
  J.Object
    [
      ("uncoverable", json_ints r.uncoverable);
      ("max_coverage", J.Number r.max_coverage);
      ("functional_coverage", J.Number r.functional_coverage);
      ("functional_avg_omega", J.Number r.functional_avg_omega);
      ("brute_force_avg_omega", J.Number r.brute_force_avg_omega);
      ("essential", json_ints r.essential);
      ( "xi_terms_min",
        match r.xi_terms_min with None -> J.Null | Some t -> json_sets t );
      ("min_config_sets", json_sets r.min_config_sets);
      ("choice_a", json_config_choice r.choice_a);
      ("min_opamp_sets", json_sets r.min_opamp_sets);
      ("choice_b", json_opamp_choice r.choice_b);
    ]

let render_paper_tables () =
  let module P = Mcdft_core.Paper_data in
  let input =
    Mcdft_core.Optimizer.input_of_matrices ~n_opamps:P.n_opamps
      P.detectability_matrix P.omega_table
  in
  let report = Mcdft_core.Optimizer.optimize input in
  let doc =
    J.Object
      [
        ("schema", J.int 1);
        ( "published",
          J.Object
            [
              ( "fault_names",
                J.List
                  (Array.to_list (Array.map (fun s -> J.String s) P.fault_names))
              );
              ("n_opamps", J.int P.n_opamps);
              ("detectability_matrix", json_bool_matrix P.detectability_matrix);
              ("omega_table", json_float_matrix P.omega_table);
              ("functional_coverage", J.Number P.functional_coverage);
              ("functional_avg_omega", J.Number P.functional_avg_omega);
              ("dft_avg_omega", J.Number P.dft_avg_omega);
              ("optimal_config_set", json_ints P.optimal_config_set);
              ("optimal_config_avg_omega", J.Number P.optimal_config_avg_omega);
              ("rejected_config_avg_omega", J.Number P.rejected_config_avg_omega);
              ("optimal_opamp_set", json_ints P.optimal_opamp_set);
              ("partial_dft_avg_omega", J.Number P.partial_dft_avg_omega);
            ] );
        ("optimizer", json_report report);
      ]
  in
  J.to_string ~indent:2 doc ^ "\n"

(* Coarser than the default 30 points/decade: the snapshot's job is to
   pin the detect/omega tables and the optimizer's decisions, and 12
   points per decade keeps `dune runtest` re-rendering cheap while
   still resolving every detectability region edge to the same grid
   points run after run. *)
let simulated_ppd = 12

let render_tow_thomas () =
  let b = Circuits.Tow_thomas.make () in
  let t = Mcdft_core.Pipeline.run ~points_per_decade:simulated_ppd ~jobs:1 b in
  let report = Mcdft_core.Pipeline.optimize t in
  let m = t.Mcdft_core.Pipeline.matrix in
  let doc =
    J.Object
      [
        ("schema", J.int 1);
        ("benchmark", J.String b.Circuits.Benchmark.name);
        ("points_per_decade", J.int simulated_ppd);
        ("jobs", J.int 1);
        ( "views",
          J.List
            (Array.to_list
               (Array.map
                  (fun (v : Testability.Matrix.view) -> J.String v.label)
                  m.Testability.Matrix.views)) );
        ( "faults",
          J.List
            (Array.to_list
               (Array.map
                  (fun (f : Fault.t) -> J.String f.Fault.id)
                  m.Testability.Matrix.faults)) );
        ("detect", json_bool_matrix m.Testability.Matrix.detect);
        ("omega", json_float_matrix m.Testability.Matrix.omega);
        ("optimizer", json_report report);
      ]
  in
  J.to_string ~indent:2 doc ^ "\n"

let all =
  [
    ("paper_tables.json", render_paper_tables);
    ("tow_thomas_simulated.json", render_tow_thomas);
  ]

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let check ~dir =
  let drifts =
    List.filter_map
      (fun (name, render) ->
        let path = Filename.concat dir name in
        if not (Sys.file_exists path) then
          Some (Printf.sprintf "%s: missing (run with --update-snapshots)" path)
        else
          let want = render () and have = read_file path in
          if String.equal want have then None
          else
            Some
              (Printf.sprintf
                 "%s: drift (%d bytes on disk, %d rendered); inspect and rerun \
                  with --update-snapshots if intended"
                 path (String.length have) (String.length want)))
      all
  in
  match drifts with [] -> Ok () | ds -> Error (String.concat "\n" ds)

let update ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.map
    (fun (name, render) ->
      let path = Filename.concat dir name in
      let oc = open_out_bin path in
      output_string oc (render ());
      close_out oc;
      path)
    all
