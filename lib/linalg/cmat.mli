(** Dense complex matrices and vectors with LU-based solving.

    This is the numeric kernel behind the MNA AC analysis: systems are
    small (tens of unknowns) and dense, so a straightforward
    partial-pivoting LU is both simple and adequate.

    Storage is planar ("split complex"): the real and imaginary planes
    of a matrix are separate unboxed [float array]s, so the O(n³)
    factorization and O(n²) solve/matvec kernels never allocate and
    never chase a [Complex.t] box. The boxed [Complex.t] API remains at
    the edges ([get]/[set]/[of_arrays]/[to_arrays] and the
    [vec]-returning solvers); allocation-free callers use {!Pvec}
    workspaces with the [_into] variants. *)

type vec = Complex.t array

type t
(** A dense [rows x cols] complex matrix. *)

exception Singular
(** Raised by factorization/solve when the matrix is numerically
    singular. *)

val norm2 : float -> float -> float
(** [norm2 re im] is the magnitude of the complex number [re + i·im],
    computed with the same overflow-safe scaling as [Complex.norm].
    Exposed so allocation-free callers score planar components without
    boxing an intermediate [Complex.t]. *)

(** Preallocated planar complex vectors: the workspace type of the
    allocation-free solve API. The [re]/[im] fields are exposed on
    purpose — hot loops index the raw planes directly. Both arrays
    always have the same length. *)
module Pvec : sig
  type t = { re : float array; im : float array }

  val create : int -> t
  (** [create n] is the zero vector of length [n]. *)

  val length : t -> int
  val get : t -> int -> Complex.t
  val set : t -> int -> Complex.t -> unit
  val fill_zero : t -> unit

  val of_complex : Complex.t array -> t
  val to_complex : t -> Complex.t array

  val blit : src:t -> dst:t -> unit
  (** Copy [src] over [dst]; both must have the same length. *)

  val norm_inf : t -> float
  (** Largest element magnitude ([Complex.norm] semantics). *)
end

val create : int -> int -> t
(** [create rows cols] is the zero matrix. *)

val identity : int -> t
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> Complex.t
val set : t -> int -> int -> Complex.t -> unit

val add_to : t -> int -> int -> Complex.t -> unit
(** [add_to m i j v] accumulates [v] into [m.(i).(j)] — the stamping
    primitive used by MNA. *)

val copy : t -> t
val of_arrays : Complex.t array array -> t
val to_arrays : t -> Complex.t array array
val transpose : t -> t
val map : (Complex.t -> Complex.t) -> t -> t
val mul : t -> t -> t
val mul_vec : t -> vec -> vec

val mul_vec_into : t -> x:Pvec.t -> y:Pvec.t -> unit
(** [mul_vec_into a ~x ~y] writes [a·x] into [y] without allocating.
    [x] and [y] must be distinct workspaces of matching dimensions. *)

val scale : Complex.t -> t -> t
val add : t -> t -> t
val sub : t -> t -> t

type lu
(** A partial-pivoting LU factorization of a square matrix. *)

val lu_factor : t -> lu
(** Factorize; raises {!Singular} when a pivot is (numerically) zero.
    The input matrix is not modified. *)

val lu_solve : lu -> vec -> vec
(** Solve [A x = b] for a previously factorized [A]. *)

val lu_solve_into : lu -> b:Pvec.t -> x:Pvec.t -> unit
(** Allocation-free [lu_solve]: solves into the caller-supplied
    workspace [x]. [b] is not modified; [b] and [x] must be distinct
    (aliasing them corrupts the permutation step). Arithmetic is
    identical to {!lu_solve} — both share one substitution core. *)

val solve : t -> vec -> vec
(** One-shot [solve a b]; factorizes internally. *)

val determinant : t -> Complex.t
(** Determinant via LU; [Complex.zero] for singular matrices. *)

val inverse : t -> t
(** Matrix inverse; raises {!Singular}. *)

val residual_norm : t -> vec -> vec -> float
(** [residual_norm a x b] is the infinity norm of [a*x - b]; used by
    tests and by the solver's optional iterative refinement. *)

val norm_inf : t -> float
(** Maximum absolute row sum. *)

val fill_parts : t -> re:float array -> im_scale:float -> im:float array -> unit
(** [fill_parts m ~re ~im_scale ~im] overwrites every entry of [m]
    (row-major) with [re.(k) + i * im_scale * im.(k)] in one fused
    pass. This is the hot path of the split MNA assembly, forming
    A(jω) = G + jωC from two real stamp planes without touching the
    stamping code. Both arrays must have exactly [rows * cols]
    elements. With planar storage this is a blit of the real plane and
    one scaling pass over the imaginary plane. *)

val pp : Format.formatter -> t -> unit

(** Off-heap planar kernels: the same split re/im layout and the exact
    same arithmetic as the float-array kernels above, but with the
    planes stored in [Bigarray.Array1] (C layout, float64) outside the
    OCaml heap. The GC never scans them, so a campaign whose hot state
    lives here adds nothing to the marking work of a collection and
    gives OCaml 5's stop-the-world minor GC nothing to stop the world
    for. All kernels are verbatim ports of the float-array versions —
    same formulas, same loop order, same pivoting — and therefore
    produce bitwise-identical results (enforced by qcheck equivalence
    tests); the float-array path remains the differential reference. *)
module Big : sig
  type plane = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

  (** Off-heap planar vectors; the [Big] analogue of {!Pvec}. *)
  module Vec : sig
    type t = { re : plane; im : plane }

    val create : int -> t
    (** [create n] is the zero vector of length [n]. *)

    val length : t -> int
    val get : t -> int -> Complex.t
    val set : t -> int -> Complex.t -> unit
    val fill_zero : t -> unit
    val blit : src:t -> dst:t -> unit
    val of_complex : Complex.t array -> t
    val to_complex : t -> Complex.t array
    val of_pvec : Pvec.t -> t
    val to_pvec : t -> Pvec.t

    val norm_inf : t -> float
    (** Largest element magnitude ([Complex.norm] semantics). *)
  end

  type t
  (** A dense [rows x cols] off-heap complex matrix. *)

  val create : int -> int -> t
  (** [create rows cols] is the zero matrix. *)

  val rows : t -> int
  val cols : t -> int

  val re_plane : t -> plane
  val im_plane : t -> plane
  (** The raw row-major storage planes — for kernels outside this
      module (the sparse back-end) that stream whole blocks. *)

  val get : t -> int -> int -> Complex.t
  val set : t -> int -> int -> Complex.t -> unit

  val add_to : t -> int -> int -> Complex.t -> unit
  (** Accumulate — the stamping primitive, as in the heap API. *)

  val blit : src:t -> dst:t -> unit
  val copy : t -> t

  val fill_parts : t -> re:float array -> im_scale:float -> im:float array -> unit
  (** As the heap {!fill_parts}: overwrite row-major with
      [re.(k) + i·im_scale·im.(k)] in one fused pass. *)

  val col_into : t -> c:int -> Vec.t -> unit
  (** [col_into m ~c v] copies column [c] of [m] into [v] — extracts
      one right-hand side / solution from a multi-RHS block. *)

  val norm_inf : t -> float

  val mul_vec_into : t -> x:Vec.t -> y:Vec.t -> unit
  (** [y <- A·x], zero allocation; [x] and [y] must be distinct. *)

  type lu
  (** A reusable LU workspace. Unlike the heap {!lu_factor} (which
      allocates a fresh factor per call), a [Big.lu] owns its factor
      storage: sweeps call {!lu_factor_into} once per frequency point
      on the same workspace and allocate nothing. *)

  val lu_create : int -> lu
  (** Workspace for [n x n] factorizations. *)

  val lu_dim : lu -> int

  val lu_factor_into : lu -> t -> unit
  (** Factorize [a] into the workspace (the input is not modified).
      Raises {!Singular} exactly when the heap kernel would. *)

  val lu_factor : t -> lu
  (** One-shot convenience: [lu_create] + [lu_factor_into]. *)

  val lu_solve_into : lu -> b:Vec.t -> x:Vec.t -> unit
  (** Allocation-free solve into [x]; [b] unmodified, [b] and [x]
      distinct. Bitwise-identical to the heap {!lu_solve_into}. *)

  val lu_solve_block_into : lu -> b:t -> x:t -> unit
  (** Multi-RHS back-solve: [b] and [x] are [n x k] blocks whose
      columns are the right-hand sides / solutions ([n] = system
      dimension, [k] = block width, element [(i, r)] at offset
      [i*k + r]). One pass over the factor serves all [k] columns —
      the factor stays hot in cache and the innermost loop runs
      contiguously over the block — while each column's operation
      order (hence every rounding) is exactly {!lu_solve_into}'s, so
      results are bitwise-equal to [k] scalar solves. [b] and [x] must
      be distinct. *)

  val determinant : t -> Complex.t
  (** Determinant via LU; [Complex.zero] for singular matrices. *)
end
