(** Dense complex matrices and vectors with LU-based solving.

    This is the numeric kernel behind the MNA AC analysis: systems are
    small (tens of unknowns) and dense, so a straightforward
    partial-pivoting LU is both simple and adequate. *)

type vec = Complex.t array
type t
(** A dense [rows x cols] complex matrix. *)

exception Singular
(** Raised by factorization/solve when the matrix is numerically
    singular. *)

val create : int -> int -> t
(** [create rows cols] is the zero matrix. *)

val identity : int -> t
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> Complex.t
val set : t -> int -> int -> Complex.t -> unit

val add_to : t -> int -> int -> Complex.t -> unit
(** [add_to m i j v] accumulates [v] into [m.(i).(j)] — the stamping
    primitive used by MNA. *)

val copy : t -> t
val of_arrays : Complex.t array array -> t
val to_arrays : t -> Complex.t array array
val transpose : t -> t
val map : (Complex.t -> Complex.t) -> t -> t
val mul : t -> t -> t
val mul_vec : t -> vec -> vec
val scale : Complex.t -> t -> t
val add : t -> t -> t
val sub : t -> t -> t

type lu
(** A partial-pivoting LU factorization of a square matrix. *)

val lu_factor : t -> lu
(** Factorize; raises {!Singular} when a pivot is (numerically) zero.
    The input matrix is not modified. *)

val lu_solve : lu -> vec -> vec
(** Solve [A x = b] for a previously factorized [A]. *)

val solve : t -> vec -> vec
(** One-shot [solve a b]; factorizes internally. *)

val determinant : t -> Complex.t
(** Determinant via LU; [Complex.zero] for singular matrices. *)

val inverse : t -> t
(** Matrix inverse; raises {!Singular}. *)

val residual_norm : t -> vec -> vec -> float
(** [residual_norm a x b] is the infinity norm of [a*x - b]; used by
    tests and by the solver's optional iterative refinement. *)

val norm_inf : t -> float
(** Maximum absolute row sum. *)

val fill_parts : t -> re:float array -> im_scale:float -> im:float array -> unit
(** [fill_parts m ~re ~im_scale ~im] overwrites every entry of [m]
    (row-major) with [re.(k) + i * im_scale * im.(k)] in one fused
    pass. This is the hot path of the split MNA assembly, forming
    A(jω) = G + jωC from two real stamp planes without touching the
    stamping code. Both arrays must have exactly [rows * cols]
    elements. *)

val pp : Format.formatter -> t -> unit
