(** Rational functions of the Laplace variable s — transfer functions.

    A value represents H(s) = num(s) / den(s). Produced by the symbolic
    MNA path and consumed by pole/zero and frequency-response
    analyses. *)

type t = { num : Poly.t; den : Poly.t }

val make : Poly.t -> Poly.t -> t
(** [make num den]; raises [Invalid_argument] when [den] is the zero
    polynomial. The representation is normalized so the denominator is
    monic. *)

val const : float -> t
val eval : t -> Complex.t -> Complex.t
(** Evaluate H at a complex frequency point. *)

val eval_jw : t -> float -> Complex.t
(** [eval_jw h w] is H(jω) for the angular frequency [w]. *)

val magnitude_jw : t -> float -> float
(** |H(jω)|. *)

val magnitude_jw_box : t -> Util.Interval.t -> Util.Interval.t
(** Sound enclosure of |H(jω)| for ω ranging over the given interval
    (a subset of [[0, inf]]). When the denominator enclosure touches
    zero the upper bound is [infinity] — no detectability conclusion
    can be drawn across a possible pole. *)

val den_magnitude_jw_box : t -> Util.Interval.t -> Util.Interval.t
(** Enclosure of |den(jω)| over the interval — the certification
    pass's guard against certifying through a near-singular
    denominator. *)

val poles : t -> Complex.t array
val zeros : t -> Complex.t array
val dc_gain : t -> float
(** H(0); infinite when the denominator vanishes at 0. *)

val add : t -> t -> t
val mul : t -> t -> t

val simplify : ?tol:float -> t -> t
(** Cancel numerator/denominator root pairs closer than [tol] relative
    to their magnitude (default 1e-6), rebuilding both polynomials from
    the surviving roots. Evaluations are preserved up to rounding;
    useful after {!add}/{!mul} or a symbolic extraction left common
    factors behind. *)

val group_delay : t -> float -> float
(** Group delay −d(arg H(jω))/dω at angular frequency [w], computed
    analytically from the logarithmic derivative H'/H at s = jω (in
    seconds). *)

val equal_at : ?points:int -> ?tol:float -> t -> t -> bool
(** Probabilistic equality: compare evaluations on a fixed fan of
    complex sample points. Robust to non-canceled common factors. *)

val pp : Format.formatter -> t -> unit
