(** Real-coefficient univariate polynomials in the Laplace variable s.

    Used by the symbolic transfer-function extractor ([Mna.Symbolic]) and
    for pole/zero analysis. Coefficients are stored lowest degree
    first; the zero polynomial has an empty coefficient list. *)

type t

val zero : t
val one : t
val s : t
(** The monomial [s]. *)

val const : float -> t
val of_coeffs : float array -> t
(** [of_coeffs [|c0; c1; ...|]] is [c0 + c1 s + ...]; trailing zeros are
    trimmed. *)

val coeffs : t -> float array
(** Coefficients, lowest degree first; empty for the zero polynomial. *)

val coeff : t -> int -> float
(** [coeff p k] is the coefficient of [s^k] (0 beyond the degree). *)

val degree : t -> int
(** Degree; [-1] for the zero polynomial. *)

val is_zero : t -> bool
val equal : ?tol:float -> t -> t -> bool
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val scale : float -> t -> t

val div_exact : t -> t -> t
(** [div_exact a b] is the quotient when [b] divides [a] (numerically);
    used by the fraction-free elimination. Raises [Invalid_argument] on
    division by zero; a non-negligible remainder indicates accumulated
    round-off and is tolerated (the remainder is dropped). *)

val eval : t -> Complex.t -> Complex.t
(** Evaluate at a complex point by Horner's rule. *)

val eval_jw_box : t -> Util.Interval.t -> Util.Interval.Complex_box.t
(** Sound enclosure of [p(jω)] for ω ranging over the given interval:
    the even/odd coefficient split evaluated by outward-rounded
    interval Horner in u = ω². Every point value [eval p (jω)] with ω
    in the input is contained in the returned box. *)

val eval_real : t -> float -> float
val derivative : t -> t
val normalize : t -> t
(** Divide by the leading coefficient (monic form); zero stays zero. *)

val roots : ?max_iter:int -> ?tol:float -> t -> Complex.t array
(** All complex roots via the Aberth–Ehrlich simultaneous iteration.
    Returns the empty array for constant polynomials. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
