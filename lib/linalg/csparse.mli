(** Sparse complex linear algebra on split re/im off-heap planes.

    Built for MNA sweeps: a netlist's occurrence {!pattern} is fixed
    while the entry values change per frequency, so the factorization
    follows the classic SPICE split — {!analyze} picks a
    Markowitz-style (minimum fill-in, threshold-pivoted) elimination
    order once per pattern, and {!refactor} re-runs the numeric
    factorization over the recorded static fill pattern per frequency
    into reusable workspaces, O(flops(fill)) with no searching and no
    allocation.

    Storage follows {!Cmat.Big}: every payload is a pair of
    [Bigarray.Array1] float64 planes off the OCaml heap. Numeric
    conventions are the dense kernels' exactly — {!Cmat.norm2}
    magnitudes, Smith division for every complex quotient, and the
    growth-aware [1e-300 + scale·n·4·ε] singularity threshold raising
    {!Cmat.Singular}. Pivot {e order} differs from the dense partial
    pivoting, so results agree to rounding (not bitwise). *)

type plane = Cmat.Big.plane

val plane : int -> plane
(** Zero-filled off-heap plane of the given length. *)

(** {1 Pattern} *)

type pattern
(** Immutable CSC occupancy: [n]×[n] with [nnz] stored positions, rows
    ascending within each column. Value planes of length [nnz] are
    owned by the caller and aligned with the pattern's slot order. *)

val pattern : n:int -> (int * int) array -> pattern
(** Build from [(row, col)] coordinates. Raises [Invalid_argument] on
    out-of-bounds or duplicate entries. *)

val n : pattern -> int
val nnz : pattern -> int

val slot : pattern -> row:int -> col:int -> int
(** Index of [(row, col)] in the value planes; raises [Not_found] when
    the position is not stored. *)

val values : pattern -> plane * plane
(** Freshly allocated zero [(re, im)] value planes of length [nnz]. *)

val norm_inf : pattern -> re:plane -> im:plane -> float
(** Row-sum infinity norm; equals {!Cmat.Big.norm_inf} of the
    densified matrix. *)

val mul_vec_into :
  pattern -> re:plane -> im:plane -> x:Cmat.Big.Vec.t -> y:Cmat.Big.Vec.t -> unit
(** [y <- A x], column-wise over the stored entries: O(nnz), no
    allocation. *)

val dense_into : pattern -> re:plane -> im:plane -> Cmat.Big.t -> unit
(** Densify into an off-heap matrix (zeroing it first) — the bridge to
    the dense fallback paths. *)

(** {1 Symbolic analysis} *)

type symbolic
(** Elimination order plus the filled L/U patterns, computed once per
    pattern and shared read-only across frequencies and solves. *)

val analyze : pattern -> re:plane -> im:plane -> symbolic
(** Right-looking elimination with Markowitz pivoting (minimize
    [(row_count−1)·(col_count−1)]) under threshold partial pivoting
    (candidates within 1e-3 of their column's maximum magnitude) on the
    given representative values; records the pivot order and the filled
    pattern for {!refactor}. Raises {!Cmat.Singular} when no acceptable
    pivot above the dense singularity threshold exists (structural or
    numeric singularity at the representative values). *)

val symbolic_nnz : symbolic -> int
(** Stored entries of the analyzed matrix. *)

val fill_nnz : symbolic -> int
(** Entries of the filled factors L + U (diagonal included). *)

(** {1 Numeric factorization} *)

type numeric
(** Reusable factor workspace bound to one {!symbolic}. One [numeric]
    per frequency; {!refactor} is single-writer, solves on a factored
    workspace are read-only and safe from concurrent domains. *)

val numeric : symbolic -> numeric
val numeric_dim : numeric -> int

val refactor : numeric -> re:plane -> im:plane -> unit
(** Factor the values over the static pattern (left-looking, static
    pivots). Raises {!Cmat.Singular} when a pivot falls below the
    dense singularity threshold; the workspace is left clean for a
    retry with different values. *)

val solve_into : numeric -> b:Cmat.Big.Vec.t -> x:Cmat.Big.Vec.t -> unit
(** [x <- A⁻¹ b] through the sparse factors. [b] and [x] must not
    alias. Uses per-domain scratch for the permuted intermediate, so
    concurrent solves from several domains are safe. *)

val solve_block_into : numeric -> b:Cmat.Big.t -> x:Cmat.Big.t -> unit
(** Multi-RHS variant mirroring {!Cmat.Big.lu_solve_block_into}: [b]
    and [x] are n×k row-major blocks, column r the r-th right-hand
    side/solution; per column the operation order is exactly
    {!solve_into}'s. *)

val determinant : numeric -> Complex.t
(** Determinant of the last refactored matrix: permutation sign times
    the product of the U diagonal. *)
