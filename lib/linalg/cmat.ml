type vec = Complex.t array

(* Planar ("split complex") storage: the real and imaginary planes are
   separate unboxed float arrays. A Complex.t is a boxed 2-float
   record, so Complex.t array kernels chase one pointer per element
   read and allocate one record per element write; under OCaml 5
   domains that allocation rate makes every worker hammer the shared
   minor/major heaps and a multicore campaign anti-scales. The planar
   layout keeps the O(n³)/O(n²) kernels on flat float arrays — no
   pointer chasing, no per-element allocation — while the boxed
   Complex.t API survives at the edges (get/set/of_arrays/to_arrays
   and the vec-returning solvers) for report/export/symbolic code.
   Element (i, j) of both planes lives at [i * ncols + j]. *)
type t = { nrows : int; ncols : int; re : float array; im : float array }

exception Singular

(* Stdlib-identical scaled magnitude on raw components. Keeping the
   formula bit-identical to Complex.norm means the planar rewrite
   cannot shift a pivot choice or a residual-threshold decision
   relative to the boxed implementation it replaces. Inlined so the
   float arguments and result stay unboxed in the hot loops (the
   non-flambda backend boxes floats across out-of-line calls). *)
let[@inline always] norm2 re im =
  let r = Float.abs re and i = Float.abs im in
  if r = 0.0 then i
  else if i = 0.0 then r
  else if r >= i then
    let q = i /. r in
    r *. sqrt (1.0 +. (q *. q))
  else
    let q = r /. i in
    i *. sqrt (1.0 +. (q *. q))

module Pvec = struct
  type t = { re : float array; im : float array }

  let create n = { re = Array.make n 0.0; im = Array.make n 0.0 }
  let length v = Array.length v.re
  let get v i =
    let re = v.re.(i) and im = v.im.(i) in
    Complex.{ re; im }

  let set v i (z : Complex.t) =
    v.re.(i) <- z.Complex.re;
    v.im.(i) <- z.Complex.im

  let fill_zero v =
    Array.fill v.re 0 (Array.length v.re) 0.0;
    Array.fill v.im 0 (Array.length v.im) 0.0

  let of_complex (x : Complex.t array) =
    {
      re = Array.map (fun z -> z.Complex.re) x;
      im = Array.map (fun z -> z.Complex.im) x;
    }

  let to_complex v =
    let vre = v.re and vim = v.im in
    Array.init (length v) (fun k ->
        let re = Array.unsafe_get vre k and im = Array.unsafe_get vim k in
        Complex.{ re; im })

  let blit ~src ~dst =
    Array.blit src.re 0 dst.re 0 (Array.length src.re);
    Array.blit src.im 0 dst.im 0 (Array.length src.im)

  let norm_inf v =
    let acc = ref 0.0 in
    for i = 0 to length v - 1 do
      let m = norm2 (Array.unsafe_get v.re i) (Array.unsafe_get v.im i) in
      if m > !acc then acc := m
    done;
    !acc
end

let create nrows ncols =
  if nrows < 0 || ncols < 0 then invalid_arg "Cmat.create: negative dimension";
  let len = nrows * ncols in
  { nrows; ncols; re = Array.make len 0.0; im = Array.make len 0.0 }

let rows m = m.nrows
let cols m = m.ncols

let check_bounds m i j =
  if i < 0 || i >= m.nrows || j < 0 || j >= m.ncols then
    invalid_arg
      (Printf.sprintf "Cmat: index (%d, %d) out of bounds for %dx%d" i j m.nrows m.ncols)

let get m i j =
  check_bounds m i j;
  let k = (i * m.ncols) + j in
  let re = m.re.(k) and im = m.im.(k) in
  Complex.{ re; im }

let set m i j (v : Complex.t) =
  check_bounds m i j;
  let k = (i * m.ncols) + j in
  m.re.(k) <- v.Complex.re;
  m.im.(k) <- v.Complex.im

let add_to m i j (v : Complex.t) =
  check_bounds m i j;
  let k = (i * m.ncols) + j in
  m.re.(k) <- m.re.(k) +. v.Complex.re;
  m.im.(k) <- m.im.(k) +. v.Complex.im

let identity n =
  let m = create n n in
  for i = 0 to n - 1 do
    m.re.((i * n) + i) <- 1.0
  done;
  m

let copy m = { m with re = Array.copy m.re; im = Array.copy m.im }

let of_arrays a =
  let nrows = Array.length a in
  let ncols = if nrows = 0 then 0 else Array.length a.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> ncols then invalid_arg "Cmat.of_arrays: ragged rows")
    a;
  let m = create nrows ncols in
  Array.iteri (fun i row -> Array.iteri (fun j v -> set m i j v) row) a;
  m

let to_arrays m =
  Array.init m.nrows (fun i -> Array.init m.ncols (fun j -> get m i j))

let transpose m =
  let r = create m.ncols m.nrows in
  for i = 0 to m.nrows - 1 do
    let row = i * m.ncols in
    for j = 0 to m.ncols - 1 do
      let k = (j * m.nrows) + i in
      r.re.(k) <- m.re.(row + j);
      r.im.(k) <- m.im.(row + j)
    done
  done;
  r

let map f m =
  let r = create m.nrows m.ncols in
  for k = 0 to Array.length m.re - 1 do
    let re = m.re.(k) and im = m.im.(k) in
    let v = f Complex.{ re; im } in
    r.re.(k) <- v.Complex.re;
    r.im.(k) <- v.Complex.im
  done;
  r

let mul a b =
  if a.ncols <> b.nrows then invalid_arg "Cmat.mul: dimension mismatch";
  let r = create a.nrows b.ncols in
  let nc = a.ncols and bc = b.ncols in
  for i = 0 to a.nrows - 1 do
    let row = i * nc in
    for j = 0 to bc - 1 do
      let acc_re = ref 0.0 and acc_im = ref 0.0 in
      for k = 0 to nc - 1 do
        let are = Array.unsafe_get a.re (row + k)
        and aim = Array.unsafe_get a.im (row + k)
        and bre = Array.unsafe_get b.re ((k * bc) + j)
        and bim = Array.unsafe_get b.im ((k * bc) + j) in
        acc_re := !acc_re +. ((are *. bre) -. (aim *. bim));
        acc_im := !acc_im +. ((are *. bim) +. (aim *. bre))
      done;
      r.re.((i * bc) + j) <- !acc_re;
      r.im.((i * bc) + j) <- !acc_im
    done
  done;
  r

(* Hot kernel: y <- A x entirely on the planes, zero allocation. *)
let mul_vec_into a ~(x : Pvec.t) ~(y : Pvec.t) =
  if a.ncols <> Pvec.length x || a.nrows <> Pvec.length y then
    invalid_arg "Cmat.mul_vec_into: dimension mismatch";
  let nc = a.ncols in
  let xre = x.Pvec.re and xim = x.Pvec.im in
  for i = 0 to a.nrows - 1 do
    let row = i * nc in
    let acc_re = ref 0.0 and acc_im = ref 0.0 in
    for k = 0 to nc - 1 do
      let are = Array.unsafe_get a.re (row + k)
      and aim = Array.unsafe_get a.im (row + k)
      and vre = Array.unsafe_get xre k
      and vim = Array.unsafe_get xim k in
      acc_re := !acc_re +. ((are *. vre) -. (aim *. vim));
      acc_im := !acc_im +. ((are *. vim) +. (aim *. vre))
    done;
    Array.unsafe_set y.Pvec.re i !acc_re;
    Array.unsafe_set y.Pvec.im i !acc_im
  done

let mul_vec a x =
  if a.ncols <> Array.length x then invalid_arg "Cmat.mul_vec: dimension mismatch";
  let xp = Pvec.of_complex x in
  let y = Pvec.create a.nrows in
  mul_vec_into a ~x:xp ~y;
  Pvec.to_complex y

let scale s m = map (Complex.mul s) m

let elementwise op a b =
  if a.nrows <> b.nrows || a.ncols <> b.ncols then
    invalid_arg "Cmat: dimension mismatch";
  let r = create a.nrows a.ncols in
  for k = 0 to Array.length a.re - 1 do
    let are = a.re.(k) and aim = a.im.(k) and bre = b.re.(k) and bim = b.im.(k) in
    let v = op Complex.{ re = are; im = aim } Complex.{ re = bre; im = bim } in
    r.re.(k) <- v.Complex.re;
    r.im.(k) <- v.Complex.im
  done;
  r

let add a b = elementwise Complex.add a b
let sub a b = elementwise Complex.sub a b

type lu = { mat : t; perm : int array; sign : int }

(* Partial-pivoting LU (Doolittle) on the planes. Pivots on the largest
   |.| in the column; a pivot below [tiny] relative to the matrix norm
   signals a singular system. The elimination loops are unsafe-indexed
   with the complex arithmetic written out on the float components
   (bit-identical to the Complex module's naive formulas); the
   bounds-checked API above guards every entry point. *)
let lu_factor a =
  if a.nrows <> a.ncols then invalid_arg "Cmat.lu_factor: non-square matrix";
  let n = a.nrows in
  let m = copy a in
  let dre = m.re and dim = m.im in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1 in
  let scale_norm = ref 0.0 in
  for k = 0 to (n * n) - 1 do
    let v = norm2 (Array.unsafe_get dre k) (Array.unsafe_get dim k) in
    if v > !scale_norm then scale_norm := v
  done;
  (* Growth-aware threshold: a pivot at the round-off floor of the
     elimination, n * eps * ||A||, is numerically zero. *)
  let tiny = 1e-300 +. (!scale_norm *. float_of_int n *. 4.0 *. epsilon_float) in
  for k = 0 to n - 1 do
    (* find pivot *)
    let pivot_row = ref k
    and pivot_mag =
      ref
        (norm2
           (Array.unsafe_get dre ((k * n) + k))
           (Array.unsafe_get dim ((k * n) + k)))
    in
    for i = k + 1 to n - 1 do
      let mag =
        norm2 (Array.unsafe_get dre ((i * n) + k)) (Array.unsafe_get dim ((i * n) + k))
      in
      if mag > !pivot_mag then begin
        pivot_mag := mag;
        pivot_row := i
      end
    done;
    if !pivot_mag <= tiny then raise Singular;
    if !pivot_row <> k then begin
      sign := - !sign;
      let p = !pivot_row in
      let rk = k * n and rp = p * n in
      for j = 0 to n - 1 do
        let tr = Array.unsafe_get dre (rk + j) in
        Array.unsafe_set dre (rk + j) (Array.unsafe_get dre (rp + j));
        Array.unsafe_set dre (rp + j) tr;
        let ti = Array.unsafe_get dim (rk + j) in
        Array.unsafe_set dim (rk + j) (Array.unsafe_get dim (rp + j));
        Array.unsafe_set dim (rp + j) ti
      done;
      let tmp = perm.(k) in
      perm.(k) <- perm.(p);
      perm.(p) <- tmp
    end;
    let rk = k * n in
    let p_re = Array.unsafe_get dre (rk + k) and p_im = Array.unsafe_get dim (rk + k) in
    for i = k + 1 to n - 1 do
      let ri = i * n in
      let a_re = Array.unsafe_get dre (ri + k) and a_im = Array.unsafe_get dim (ri + k) in
      (* factor = a / pivot — Smith's algorithm, exactly Complex.div.
         Results are written straight to the planes (a tuple returned
         from the conditional would be boxed without flambda). *)
      if Float.abs p_re >= Float.abs p_im then begin
        let r = p_im /. p_re in
        let d = p_re +. (r *. p_im) in
        Array.unsafe_set dre (ri + k) ((a_re +. (r *. a_im)) /. d);
        Array.unsafe_set dim (ri + k) ((a_im -. (r *. a_re)) /. d)
      end
      else begin
        let r = p_re /. p_im in
        let d = p_im +. (r *. p_re) in
        Array.unsafe_set dre (ri + k) (((r *. a_re) +. a_im) /. d);
        Array.unsafe_set dim (ri + k) (((r *. a_im) -. a_re) /. d)
      end;
      let f_re = Array.unsafe_get dre (ri + k) and f_im = Array.unsafe_get dim (ri + k) in
      if f_re <> 0.0 || f_im <> 0.0 then
        for j = k + 1 to n - 1 do
          let akj_re = Array.unsafe_get dre (rk + j)
          and akj_im = Array.unsafe_get dim (rk + j) in
          Array.unsafe_set dre (ri + j)
            (Array.unsafe_get dre (ri + j) -. ((f_re *. akj_re) -. (f_im *. akj_im)));
          Array.unsafe_set dim (ri + j)
            (Array.unsafe_get dim (ri + j) -. ((f_re *. akj_im) +. (f_im *. akj_re)))
        done
    done
  done;
  { mat = m; perm; sign = !sign }

(* In-place substitution core: [x] must already hold P·b; on return it
   holds the solution. Shared by every solve entry point so the boxed
   and planar paths are arithmetically identical. *)
let lu_substitute { mat = m; _ } (x : Pvec.t) =
  let n = m.nrows in
  let dre = m.re and dim = m.im in
  let xre = x.Pvec.re and xim = x.Pvec.im in
  (* forward substitution: L y = P b, with unit diagonal L *)
  for i = 1 to n - 1 do
    let ri = i * n in
    let acc_re = ref (Array.unsafe_get xre i) and acc_im = ref (Array.unsafe_get xim i) in
    for j = 0 to i - 1 do
      let l_re = Array.unsafe_get dre (ri + j) and l_im = Array.unsafe_get dim (ri + j) in
      let v_re = Array.unsafe_get xre j and v_im = Array.unsafe_get xim j in
      acc_re := !acc_re -. ((l_re *. v_re) -. (l_im *. v_im));
      acc_im := !acc_im -. ((l_re *. v_im) +. (l_im *. v_re))
    done;
    Array.unsafe_set xre i !acc_re;
    Array.unsafe_set xim i !acc_im
  done;
  (* back substitution: U x = y *)
  for i = n - 1 downto 0 do
    let ri = i * n in
    let acc_re = ref (Array.unsafe_get xre i) and acc_im = ref (Array.unsafe_get xim i) in
    for j = i + 1 to n - 1 do
      let u_re = Array.unsafe_get dre (ri + j) and u_im = Array.unsafe_get dim (ri + j) in
      let v_re = Array.unsafe_get xre j and v_im = Array.unsafe_get xim j in
      acc_re := !acc_re -. ((u_re *. v_re) -. (u_im *. v_im));
      acc_im := !acc_im -. ((u_re *. v_im) +. (u_im *. v_re))
    done;
    let p_re = Array.unsafe_get dre (ri + i) and p_im = Array.unsafe_get dim (ri + i) in
    let a_re = !acc_re and a_im = !acc_im in
    if Float.abs p_re >= Float.abs p_im then begin
      let r = p_im /. p_re in
      let d = p_re +. (r *. p_im) in
      Array.unsafe_set xre i ((a_re +. (r *. a_im)) /. d);
      Array.unsafe_set xim i ((a_im -. (r *. a_re)) /. d)
    end
    else begin
      let r = p_re /. p_im in
      let d = p_im +. (r *. p_re) in
      Array.unsafe_set xre i (((r *. a_re) +. a_im) /. d);
      Array.unsafe_set xim i (((r *. a_im) -. a_re) /. d)
    end
  done

let lu_solve_into ({ mat = m; perm; _ } as lu) ~(b : Pvec.t) ~(x : Pvec.t) =
  let n = m.nrows in
  if Pvec.length b <> n || Pvec.length x <> n then
    invalid_arg "Cmat.lu_solve_into: dimension mismatch";
  for i = 0 to n - 1 do
    let p = Array.unsafe_get perm i in
    Array.unsafe_set x.Pvec.re i (Array.unsafe_get b.Pvec.re p);
    Array.unsafe_set x.Pvec.im i (Array.unsafe_get b.Pvec.im p)
  done;
  lu_substitute lu x

let lu_solve ({ mat = m; perm; _ } as lu) b =
  let n = m.nrows in
  if Array.length b <> n then invalid_arg "Cmat.lu_solve: dimension mismatch";
  let x = Pvec.create n in
  for i = 0 to n - 1 do
    let v = b.(perm.(i)) in
    x.Pvec.re.(i) <- v.Complex.re;
    x.Pvec.im.(i) <- v.Complex.im
  done;
  lu_substitute lu x;
  Pvec.to_complex x

let solve a b = lu_solve (lu_factor a) b

let determinant a =
  if a.nrows <> a.ncols then invalid_arg "Cmat.determinant: non-square matrix";
  match lu_factor a with
  | exception Singular -> Complex.zero
  | { mat = m; sign; _ } ->
      let n = a.nrows in
      let acc_re = ref (if sign >= 0 then 1.0 else -1.0) and acc_im = ref 0.0 in
      for i = 0 to n - 1 do
        let d_re = m.re.((i * n) + i) and d_im = m.im.((i * n) + i) in
        let r = (!acc_re *. d_re) -. (!acc_im *. d_im) in
        acc_im := (!acc_re *. d_im) +. (!acc_im *. d_re);
        acc_re := r
      done;
      Complex.{ re = !acc_re; im = !acc_im }

let inverse a =
  let n = a.nrows in
  let lu = lu_factor a in
  let r = create n n in
  let e = Pvec.create n and col = Pvec.create n in
  for j = 0 to n - 1 do
    e.Pvec.re.(j) <- 1.0;
    lu_solve_into lu ~b:e ~x:col;
    e.Pvec.re.(j) <- 0.0;
    for i = 0 to n - 1 do
      r.re.((i * n) + j) <- col.Pvec.re.(i);
      r.im.((i * n) + j) <- col.Pvec.im.(i)
    done
  done;
  r

let residual_norm a x b =
  if a.nrows <> Array.length b then invalid_arg "Cmat.residual_norm: dimension mismatch";
  let ax = mul_vec a x in
  let acc = ref 0.0 in
  for i = 0 to Array.length b - 1 do
    let m =
      norm2 (ax.(i).Complex.re -. b.(i).Complex.re) (ax.(i).Complex.im -. b.(i).Complex.im)
    in
    if m > !acc then acc := m
  done;
  !acc

let norm_inf m =
  let acc = ref 0.0 in
  for i = 0 to m.nrows - 1 do
    let row = i * m.ncols in
    let row_sum = ref 0.0 in
    for j = 0 to m.ncols - 1 do
      row_sum :=
        !row_sum +. norm2 (Array.unsafe_get m.re (row + j)) (Array.unsafe_get m.im (row + j))
    done;
    if !row_sum > !acc then acc := !row_sum
  done;
  !acc

let fill_parts m ~re ~im_scale ~im =
  let len = Array.length m.re in
  if Array.length re <> len || Array.length im <> len then
    invalid_arg "Cmat.fill_parts: part length mismatch";
  Array.blit re 0 m.re 0 len;
  let dst = m.im in
  for k = 0 to len - 1 do
    Array.unsafe_set dst k (im_scale *. Array.unsafe_get im k)
  done

let pp ppf m =
  for i = 0 to m.nrows - 1 do
    Format.fprintf ppf "[";
    for j = 0 to m.ncols - 1 do
      let v = get m i j in
      Format.fprintf ppf " %8.3g%+8.3gi" v.Complex.re v.Complex.im
    done;
    Format.fprintf ppf " ]@."
  done

(* ---- off-heap planar kernels -------------------------------------

   Same split re/im layout and bit-identical arithmetic as the float
   array kernels above, but the planes live in Bigarray storage outside
   the OCaml heap. A [float array] is already unboxed, yet it still
   sits on the major heap: every campaign worker's live numeric state
   adds to the marking work of each GC cycle, and under OCaml 5 every
   stop-the-world minor collection synchronizes all domains. Bigarray
   planes are invisible to the GC — a warmed campaign's numeric state
   contributes nothing to collection, so the domains have nothing to
   stop the world for. The float-array path above is kept verbatim as
   the differential reference; every [Big] kernel must match it
   bitwise (same formulas, same loop order, same pivot decisions). *)

module Big = struct
  open Bigarray

  type plane = (float, float64_elt, c_layout) Array1.t

  let plane len : plane =
    let p = Array1.create Float64 C_layout len in
    Array1.fill p 0.0;
    p

  module Vec = struct
    type t = { re : plane; im : plane }

    let create n = { re = plane n; im = plane n }
    let length v = Array1.dim v.re

    let get v i =
      let re = Array1.get v.re i and im = Array1.get v.im i in
      Complex.{ re; im }

    let set v i (z : Complex.t) =
      Array1.set v.re i z.Complex.re;
      Array1.set v.im i z.Complex.im

    let fill_zero v =
      Array1.fill v.re 0.0;
      Array1.fill v.im 0.0

    let blit ~src ~dst =
      Array1.blit src.re dst.re;
      Array1.blit src.im dst.im

    let of_complex (x : Complex.t array) =
      let v = create (Array.length x) in
      Array.iteri (fun i z -> set v i z) x;
      v

    let to_complex v = Array.init (length v) (fun i -> get v i)

    let of_pvec (p : Pvec.t) =
      let n = Pvec.length p in
      let v = create n in
      for i = 0 to n - 1 do
        Array1.unsafe_set v.re i (Array.unsafe_get p.Pvec.re i);
        Array1.unsafe_set v.im i (Array.unsafe_get p.Pvec.im i)
      done;
      v

    let to_pvec v =
      let n = length v in
      let p = Pvec.create n in
      for i = 0 to n - 1 do
        Array.unsafe_set p.Pvec.re i (Array1.unsafe_get v.re i);
        Array.unsafe_set p.Pvec.im i (Array1.unsafe_get v.im i)
      done;
      p

    let norm_inf v =
      let vre = v.re and vim = v.im in
      let acc = ref 0.0 in
      for i = 0 to Array1.dim vre - 1 do
        let m = norm2 (Array1.unsafe_get vre i) (Array1.unsafe_get vim i) in
        if m > !acc then acc := m
      done;
      !acc
  end

  type mat = { nrows : int; ncols : int; re : plane; im : plane }
  type nonrec t = mat

  let create nrows ncols =
    if nrows < 0 || ncols < 0 then invalid_arg "Cmat.Big.create: negative dimension";
    let len = nrows * ncols in
    { nrows; ncols; re = plane len; im = plane len }

  let rows m = m.nrows
  let cols m = m.ncols
  let re_plane m = m.re
  let im_plane m = m.im

  let check_bounds m i j =
    if i < 0 || i >= m.nrows || j < 0 || j >= m.ncols then
      invalid_arg
        (Printf.sprintf "Cmat.Big: index (%d, %d) out of bounds for %dx%d" i j m.nrows
           m.ncols)

  let get m i j =
    check_bounds m i j;
    let k = (i * m.ncols) + j in
    let re = Array1.get m.re k and im = Array1.get m.im k in
    Complex.{ re; im }

  let set m i j (v : Complex.t) =
    check_bounds m i j;
    let k = (i * m.ncols) + j in
    Array1.set m.re k v.Complex.re;
    Array1.set m.im k v.Complex.im

  let add_to m i j (v : Complex.t) =
    check_bounds m i j;
    let k = (i * m.ncols) + j in
    Array1.set m.re k (Array1.get m.re k +. v.Complex.re);
    Array1.set m.im k (Array1.get m.im k +. v.Complex.im)

  let blit ~src ~dst =
    if src.nrows <> dst.nrows || src.ncols <> dst.ncols then
      invalid_arg "Cmat.Big.blit: dimension mismatch";
    Array1.blit src.re dst.re;
    Array1.blit src.im dst.im

  let copy m =
    let r = create m.nrows m.ncols in
    blit ~src:m ~dst:r;
    r

  let fill_parts m ~re ~im_scale ~im =
    let len = m.nrows * m.ncols in
    if Array.length re <> len || Array.length im <> len then
      invalid_arg "Cmat.Big.fill_parts: part length mismatch";
    let dre = m.re and dim = m.im in
    for k = 0 to len - 1 do
      Array1.unsafe_set dre k (Array.unsafe_get re k);
      Array1.unsafe_set dim k (im_scale *. Array.unsafe_get im k)
    done

  let col_into m ~c (v : Vec.t) =
    if c < 0 || c >= m.ncols || Vec.length v <> m.nrows then
      invalid_arg "Cmat.Big.col_into: dimension mismatch";
    let nc = m.ncols in
    for i = 0 to m.nrows - 1 do
      Array1.unsafe_set v.Vec.re i (Array1.unsafe_get m.re ((i * nc) + c));
      Array1.unsafe_set v.Vec.im i (Array1.unsafe_get m.im ((i * nc) + c))
    done

  let norm_inf m =
    let acc = ref 0.0 in
    for i = 0 to m.nrows - 1 do
      let row = i * m.ncols in
      let row_sum = ref 0.0 in
      for j = 0 to m.ncols - 1 do
        row_sum :=
          !row_sum
          +. norm2 (Array1.unsafe_get m.re (row + j)) (Array1.unsafe_get m.im (row + j))
      done;
      if !row_sum > !acc then acc := !row_sum
    done;
    !acc

  (* y <- A x on the off-heap planes, zero visible allocation. *)
  let mul_vec_into a ~(x : Vec.t) ~(y : Vec.t) =
    if a.ncols <> Vec.length x || a.nrows <> Vec.length y then
      invalid_arg "Cmat.Big.mul_vec_into: dimension mismatch";
    let nc = a.ncols in
    let mre = a.re and mim = a.im in
    let xre = x.Vec.re and xim = x.Vec.im in
    for i = 0 to a.nrows - 1 do
      let row = i * nc in
      let acc_re = ref 0.0 and acc_im = ref 0.0 in
      for k = 0 to nc - 1 do
        let are = Array1.unsafe_get mre (row + k)
        and aim = Array1.unsafe_get mim (row + k)
        and vre = Array1.unsafe_get xre k
        and vim = Array1.unsafe_get xim k in
        acc_re := !acc_re +. ((are *. vre) -. (aim *. vim));
        acc_im := !acc_im +. ((are *. vim) +. (aim *. vre))
      done;
      Array1.unsafe_set y.Vec.re i !acc_re;
      Array1.unsafe_set y.Vec.im i !acc_im
    done

  (* The LU workspace owns its factor storage, so a sweep reuses one
     workspace across every frequency point instead of allocating a
     fresh factor per factorization (the float-array [lu_factor] copies
     its input each call). *)
  type lu = { mat : mat; perm : int array; mutable sign : int }

  let lu_create n = { mat = create n n; perm = Array.make (Int.max n 1) 0; sign = 1 }
  let lu_dim lu = lu.mat.nrows

  (* Identical algorithm to the float-array [lu_factor] above: same
     scale norm, same growth-aware threshold, same pivot comparisons,
     same Smith division — bitwise-equal factors and the same Singular
     verdicts, with the storage off-heap. *)
  let lu_factor_into ws a =
    if a.nrows <> a.ncols then invalid_arg "Cmat.Big.lu_factor_into: non-square matrix";
    if ws.mat.nrows <> a.nrows then
      invalid_arg "Cmat.Big.lu_factor_into: workspace dimension mismatch";
    let n = a.nrows in
    blit ~src:a ~dst:ws.mat;
    let dre = ws.mat.re and dim = ws.mat.im in
    let perm = ws.perm in
    for i = 0 to n - 1 do
      perm.(i) <- i
    done;
    let sign = ref 1 in
    let scale_norm = ref 0.0 in
    for k = 0 to (n * n) - 1 do
      let v = norm2 (Array1.unsafe_get dre k) (Array1.unsafe_get dim k) in
      if v > !scale_norm then scale_norm := v
    done;
    let tiny = 1e-300 +. (!scale_norm *. float_of_int n *. 4.0 *. epsilon_float) in
    for k = 0 to n - 1 do
      let pivot_row = ref k
      and pivot_mag =
        ref
          (norm2
             (Array1.unsafe_get dre ((k * n) + k))
             (Array1.unsafe_get dim ((k * n) + k)))
      in
      for i = k + 1 to n - 1 do
        let mag =
          norm2
            (Array1.unsafe_get dre ((i * n) + k))
            (Array1.unsafe_get dim ((i * n) + k))
        in
        if mag > !pivot_mag then begin
          pivot_mag := mag;
          pivot_row := i
        end
      done;
      if !pivot_mag <= tiny then raise Singular;
      if !pivot_row <> k then begin
        sign := - !sign;
        let p = !pivot_row in
        let rk = k * n and rp = p * n in
        for j = 0 to n - 1 do
          let tr = Array1.unsafe_get dre (rk + j) in
          Array1.unsafe_set dre (rk + j) (Array1.unsafe_get dre (rp + j));
          Array1.unsafe_set dre (rp + j) tr;
          let ti = Array1.unsafe_get dim (rk + j) in
          Array1.unsafe_set dim (rk + j) (Array1.unsafe_get dim (rp + j));
          Array1.unsafe_set dim (rp + j) ti
        done;
        let tmp = perm.(k) in
        perm.(k) <- perm.(p);
        perm.(p) <- tmp
      end;
      let rk = k * n in
      let p_re = Array1.unsafe_get dre (rk + k)
      and p_im = Array1.unsafe_get dim (rk + k) in
      for i = k + 1 to n - 1 do
        let ri = i * n in
        let a_re = Array1.unsafe_get dre (ri + k)
        and a_im = Array1.unsafe_get dim (ri + k) in
        if Float.abs p_re >= Float.abs p_im then begin
          let r = p_im /. p_re in
          let d = p_re +. (r *. p_im) in
          Array1.unsafe_set dre (ri + k) ((a_re +. (r *. a_im)) /. d);
          Array1.unsafe_set dim (ri + k) ((a_im -. (r *. a_re)) /. d)
        end
        else begin
          let r = p_re /. p_im in
          let d = p_im +. (r *. p_re) in
          Array1.unsafe_set dre (ri + k) (((r *. a_re) +. a_im) /. d);
          Array1.unsafe_set dim (ri + k) (((r *. a_im) -. a_re) /. d)
        end;
        let f_re = Array1.unsafe_get dre (ri + k)
        and f_im = Array1.unsafe_get dim (ri + k) in
        if f_re <> 0.0 || f_im <> 0.0 then
          for j = k + 1 to n - 1 do
            let akj_re = Array1.unsafe_get dre (rk + j)
            and akj_im = Array1.unsafe_get dim (rk + j) in
            Array1.unsafe_set dre (ri + j)
              (Array1.unsafe_get dre (ri + j) -. ((f_re *. akj_re) -. (f_im *. akj_im)));
            Array1.unsafe_set dim (ri + j)
              (Array1.unsafe_get dim (ri + j) -. ((f_re *. akj_im) +. (f_im *. akj_re)))
          done
      done
    done;
    ws.sign <- !sign

  let lu_factor a =
    let ws = lu_create a.nrows in
    lu_factor_into ws a;
    ws

  (* In-place substitution core on one off-heap vector; mirrors
     [lu_substitute] exactly. *)
  let lu_substitute { mat = m; _ } (x : Vec.t) =
    let n = m.nrows in
    let dre = m.re and dim = m.im in
    let xre = x.Vec.re and xim = x.Vec.im in
    for i = 1 to n - 1 do
      let ri = i * n in
      let acc_re = ref (Array1.unsafe_get xre i)
      and acc_im = ref (Array1.unsafe_get xim i) in
      for j = 0 to i - 1 do
        let l_re = Array1.unsafe_get dre (ri + j)
        and l_im = Array1.unsafe_get dim (ri + j) in
        let v_re = Array1.unsafe_get xre j and v_im = Array1.unsafe_get xim j in
        acc_re := !acc_re -. ((l_re *. v_re) -. (l_im *. v_im));
        acc_im := !acc_im -. ((l_re *. v_im) +. (l_im *. v_re))
      done;
      Array1.unsafe_set xre i !acc_re;
      Array1.unsafe_set xim i !acc_im
    done;
    for i = n - 1 downto 0 do
      let ri = i * n in
      let acc_re = ref (Array1.unsafe_get xre i)
      and acc_im = ref (Array1.unsafe_get xim i) in
      for j = i + 1 to n - 1 do
        let u_re = Array1.unsafe_get dre (ri + j)
        and u_im = Array1.unsafe_get dim (ri + j) in
        let v_re = Array1.unsafe_get xre j and v_im = Array1.unsafe_get xim j in
        acc_re := !acc_re -. ((u_re *. v_re) -. (u_im *. v_im));
        acc_im := !acc_im -. ((u_re *. v_im) +. (u_im *. v_re))
      done;
      let p_re = Array1.unsafe_get dre (ri + i)
      and p_im = Array1.unsafe_get dim (ri + i) in
      let a_re = !acc_re and a_im = !acc_im in
      if Float.abs p_re >= Float.abs p_im then begin
        let r = p_im /. p_re in
        let d = p_re +. (r *. p_im) in
        Array1.unsafe_set xre i ((a_re +. (r *. a_im)) /. d);
        Array1.unsafe_set xim i ((a_im -. (r *. a_re)) /. d)
      end
      else begin
        let r = p_re /. p_im in
        let d = p_im +. (r *. p_re) in
        Array1.unsafe_set xre i (((r *. a_re) +. a_im) /. d);
        Array1.unsafe_set xim i (((r *. a_im) -. a_re) /. d)
      end
    done

  let lu_solve_into ({ mat = m; perm; _ } as lu) ~(b : Vec.t) ~(x : Vec.t) =
    let n = m.nrows in
    if Vec.length b <> n || Vec.length x <> n then
      invalid_arg "Cmat.Big.lu_solve_into: dimension mismatch";
    for i = 0 to n - 1 do
      let p = Array.unsafe_get perm i in
      Array1.unsafe_set x.Vec.re i (Array1.unsafe_get b.Vec.re p);
      Array1.unsafe_set x.Vec.im i (Array1.unsafe_get b.Vec.im p)
    done;
    lu_substitute lu x

  (* Multi-RHS back-solve: [b] and [x] are n×k blocks whose column [r]
     is the r-th right-hand side / solution. The substitution recurrence
     accumulates in place row by row with the RHS index in the innermost
     loop, so for each (i, j) the k column updates read two contiguous
     runs — SIMD-amenable and one pass of the factor per block instead
     of one pass per right-hand side. Per column the operation sequence
     (and so every rounding) is exactly {!lu_solve_into}'s. *)
  let lu_solve_block_into { mat = m; perm; _ } ~b ~x =
    let n = m.nrows in
    let k = b.ncols in
    if b.nrows <> n || x.nrows <> n || x.ncols <> k then
      invalid_arg "Cmat.Big.lu_solve_block_into: dimension mismatch";
    let dre = m.re and dim = m.im in
    let xre = x.re and xim = x.im in
    (* x <- P b *)
    for i = 0 to n - 1 do
      let p = Array.unsafe_get perm i in
      let ri = i * k and rp = p * k in
      for r = 0 to k - 1 do
        Array1.unsafe_set xre (ri + r) (Array1.unsafe_get b.re (rp + r));
        Array1.unsafe_set xim (ri + r) (Array1.unsafe_get b.im (rp + r))
      done
    done;
    (* forward substitution: L y = P b, unit diagonal *)
    for i = 1 to n - 1 do
      let mi = i * n and ri = i * k in
      for j = 0 to i - 1 do
        let l_re = Array1.unsafe_get dre (mi + j)
        and l_im = Array1.unsafe_get dim (mi + j) in
        if l_re <> 0.0 || l_im <> 0.0 then begin
          let rj = j * k in
          for r = 0 to k - 1 do
            let v_re = Array1.unsafe_get xre (rj + r)
            and v_im = Array1.unsafe_get xim (rj + r) in
            Array1.unsafe_set xre (ri + r)
              (Array1.unsafe_get xre (ri + r) -. ((l_re *. v_re) -. (l_im *. v_im)));
            Array1.unsafe_set xim (ri + r)
              (Array1.unsafe_get xim (ri + r) -. ((l_re *. v_im) +. (l_im *. v_re)))
          done
        end
      done
    done;
    (* back substitution: U x = y *)
    for i = n - 1 downto 0 do
      let mi = i * n and ri = i * k in
      for j = i + 1 to n - 1 do
        let u_re = Array1.unsafe_get dre (mi + j)
        and u_im = Array1.unsafe_get dim (mi + j) in
        if u_re <> 0.0 || u_im <> 0.0 then begin
          let rj = j * k in
          for r = 0 to k - 1 do
            let v_re = Array1.unsafe_get xre (rj + r)
            and v_im = Array1.unsafe_get xim (rj + r) in
            Array1.unsafe_set xre (ri + r)
              (Array1.unsafe_get xre (ri + r) -. ((u_re *. v_re) -. (u_im *. v_im)));
            Array1.unsafe_set xim (ri + r)
              (Array1.unsafe_get xim (ri + r) -. ((u_re *. v_im) +. (u_im *. v_re)))
          done
        end
      done;
      let p_re = Array1.unsafe_get dre (mi + i)
      and p_im = Array1.unsafe_get dim (mi + i) in
      if Float.abs p_re >= Float.abs p_im then begin
        let r = p_im /. p_re in
        let d = p_re +. (r *. p_im) in
        for c = 0 to k - 1 do
          let a_re = Array1.unsafe_get xre (ri + c)
          and a_im = Array1.unsafe_get xim (ri + c) in
          Array1.unsafe_set xre (ri + c) ((a_re +. (r *. a_im)) /. d);
          Array1.unsafe_set xim (ri + c) ((a_im -. (r *. a_re)) /. d)
        done
      end
      else begin
        let r = p_re /. p_im in
        let d = p_im +. (r *. p_re) in
        for c = 0 to k - 1 do
          let a_re = Array1.unsafe_get xre (ri + c)
          and a_im = Array1.unsafe_get xim (ri + c) in
          Array1.unsafe_set xre (ri + c) (((r *. a_re) +. a_im) /. d);
          Array1.unsafe_set xim (ri + c) (((r *. a_im) -. a_re) /. d)
        done
      end
    done

  let determinant a =
    if a.nrows <> a.ncols then invalid_arg "Cmat.Big.determinant: non-square matrix";
    match lu_factor a with
    | exception Singular -> Complex.zero
    | { mat = m; sign; _ } ->
        let n = a.nrows in
        let acc_re = ref (if sign >= 0 then 1.0 else -1.0) and acc_im = ref 0.0 in
        for i = 0 to n - 1 do
          let d_re = Array1.get m.re ((i * n) + i)
          and d_im = Array1.get m.im ((i * n) + i) in
          let r = (!acc_re *. d_re) -. (!acc_im *. d_im) in
          acc_im := (!acc_re *. d_im) +. (!acc_im *. d_re);
          acc_re := r
        done;
        Complex.{ re = !acc_re; im = !acc_im }
end
