type vec = Complex.t array

type t = { nrows : int; ncols : int; data : Complex.t array }
(* Row-major storage; element (i, j) lives at [i * ncols + j]. *)

exception Singular

let create nrows ncols =
  if nrows < 0 || ncols < 0 then invalid_arg "Cmat.create: negative dimension";
  { nrows; ncols; data = Array.make (nrows * ncols) Complex.zero }

let rows m = m.nrows
let cols m = m.ncols

let check_bounds m i j =
  if i < 0 || i >= m.nrows || j < 0 || j >= m.ncols then
    invalid_arg
      (Printf.sprintf "Cmat: index (%d, %d) out of bounds for %dx%d" i j m.nrows m.ncols)

let get m i j =
  check_bounds m i j;
  m.data.((i * m.ncols) + j)

let set m i j v =
  check_bounds m i j;
  m.data.((i * m.ncols) + j) <- v

let add_to m i j v =
  check_bounds m i j;
  let k = (i * m.ncols) + j in
  m.data.(k) <- Complex.add m.data.(k) v

let identity n =
  let m = create n n in
  for i = 0 to n - 1 do
    set m i i Complex.one
  done;
  m

let copy m = { m with data = Array.copy m.data }

let of_arrays a =
  let nrows = Array.length a in
  let ncols = if nrows = 0 then 0 else Array.length a.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> ncols then invalid_arg "Cmat.of_arrays: ragged rows")
    a;
  let m = create nrows ncols in
  Array.iteri (fun i row -> Array.iteri (fun j v -> set m i j v) row) a;
  m

let to_arrays m =
  Array.init m.nrows (fun i -> Array.init m.ncols (fun j -> get m i j))

let transpose m =
  let r = create m.ncols m.nrows in
  for i = 0 to m.nrows - 1 do
    for j = 0 to m.ncols - 1 do
      set r j i (get m i j)
    done
  done;
  r

let map f m = { m with data = Array.map f m.data }

let mul a b =
  if a.ncols <> b.nrows then invalid_arg "Cmat.mul: dimension mismatch";
  let r = create a.nrows b.ncols in
  for i = 0 to a.nrows - 1 do
    for j = 0 to b.ncols - 1 do
      let acc = ref Complex.zero in
      for k = 0 to a.ncols - 1 do
        acc := Complex.add !acc (Complex.mul (get a i k) (get b k j))
      done;
      set r i j !acc
    done
  done;
  r

let mul_vec a x =
  if a.ncols <> Array.length x then invalid_arg "Cmat.mul_vec: dimension mismatch";
  Array.init a.nrows (fun i ->
      let acc = ref Complex.zero in
      for k = 0 to a.ncols - 1 do
        acc := Complex.add !acc (Complex.mul (get a i k) x.(k))
      done;
      !acc)

let scale s m = map (Complex.mul s) m

let elementwise op a b =
  if a.nrows <> b.nrows || a.ncols <> b.ncols then
    invalid_arg "Cmat: dimension mismatch";
  { a with data = Array.init (Array.length a.data) (fun k -> op a.data.(k) b.data.(k)) }

let add a b = elementwise Complex.add a b
let sub a b = elementwise Complex.sub a b

type lu = { mat : t; perm : int array; sign : int }

(* Partial-pivoting LU (Doolittle).  Pivots on the largest |.| in the
   column; a pivot below [tiny] relative to the matrix norm signals a
   singular system. *)
let lu_factor a =
  if a.nrows <> a.ncols then invalid_arg "Cmat.lu_factor: non-square matrix";
  let n = a.nrows in
  let m = copy a in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1 in
  let scale_norm =
    Array.fold_left (fun acc v -> Float.max acc (Complex.norm v)) 0.0 m.data
  in
  let tiny = 1e-300 +. (scale_norm *. 1e-14 *. epsilon_float) in
  for k = 0 to n - 1 do
    (* find pivot *)
    let pivot_row = ref k and pivot_mag = ref (Complex.norm (get m k k)) in
    for i = k + 1 to n - 1 do
      let mag = Complex.norm (get m i k) in
      if mag > !pivot_mag then begin
        pivot_mag := mag;
        pivot_row := i
      end
    done;
    if !pivot_mag <= tiny then raise Singular;
    if !pivot_row <> k then begin
      sign := - !sign;
      let p = !pivot_row in
      for j = 0 to n - 1 do
        let tmp = get m k j in
        set m k j (get m p j);
        set m p j tmp
      done;
      let tmp = perm.(k) in
      perm.(k) <- perm.(p);
      perm.(p) <- tmp
    end;
    let pivot = get m k k in
    for i = k + 1 to n - 1 do
      let factor = Complex.div (get m i k) pivot in
      set m i k factor;
      for j = k + 1 to n - 1 do
        set m i j (Complex.sub (get m i j) (Complex.mul factor (get m k j)))
      done
    done
  done;
  { mat = m; perm; sign = !sign }

let lu_solve { mat = m; perm; _ } b =
  let n = m.nrows in
  if Array.length b <> n then invalid_arg "Cmat.lu_solve: dimension mismatch";
  let x = Array.init n (fun i -> b.(perm.(i))) in
  (* forward substitution: L y = P b, with unit diagonal L *)
  for i = 1 to n - 1 do
    let acc = ref x.(i) in
    for j = 0 to i - 1 do
      acc := Complex.sub !acc (Complex.mul (get m i j) x.(j))
    done;
    x.(i) <- !acc
  done;
  (* back substitution: U x = y *)
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := Complex.sub !acc (Complex.mul (get m i j) x.(j))
    done;
    x.(i) <- Complex.div !acc (get m i i)
  done;
  x

let solve a b = lu_solve (lu_factor a) b

let determinant a =
  if a.nrows <> a.ncols then invalid_arg "Cmat.determinant: non-square matrix";
  match lu_factor a with
  | exception Singular -> Complex.zero
  | { mat = m; sign; _ } ->
      let acc = ref (if sign >= 0 then Complex.one else Complex.{ re = -1.0; im = 0.0 }) in
      for i = 0 to a.nrows - 1 do
        acc := Complex.mul !acc (get m i i)
      done;
      !acc

let inverse a =
  let n = a.nrows in
  let lu = lu_factor a in
  let r = create n n in
  for j = 0 to n - 1 do
    let e = Array.make n Complex.zero in
    e.(j) <- Complex.one;
    let col = lu_solve lu e in
    Array.iteri (fun i v -> set r i j v) col
  done;
  r

let residual_norm a x b =
  let ax = mul_vec a x in
  Util.Floatx.fold_range (Array.length b) ~init:0.0 ~f:(fun acc i ->
      Float.max acc (Complex.norm (Complex.sub ax.(i) b.(i))))

let norm_inf m =
  Util.Floatx.fold_range m.nrows ~init:0.0 ~f:(fun acc i ->
      let row_sum =
        Util.Floatx.fold_range m.ncols ~init:0.0 ~f:(fun s j ->
            s +. Complex.norm (get m i j))
      in
      Float.max acc row_sum)

let pp ppf m =
  for i = 0 to m.nrows - 1 do
    Format.fprintf ppf "[";
    for j = 0 to m.ncols - 1 do
      let v = get m i j in
      Format.fprintf ppf " %8.3g%+8.3gi" v.Complex.re v.Complex.im
    done;
    Format.fprintf ppf " ]@."
  done
