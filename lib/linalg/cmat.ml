type vec = Complex.t array

type t = { nrows : int; ncols : int; data : Complex.t array }
(* Row-major storage; element (i, j) lives at [i * ncols + j]. *)

exception Singular

let create nrows ncols =
  if nrows < 0 || ncols < 0 then invalid_arg "Cmat.create: negative dimension";
  { nrows; ncols; data = Array.make (nrows * ncols) Complex.zero }

let rows m = m.nrows
let cols m = m.ncols

let check_bounds m i j =
  if i < 0 || i >= m.nrows || j < 0 || j >= m.ncols then
    invalid_arg
      (Printf.sprintf "Cmat: index (%d, %d) out of bounds for %dx%d" i j m.nrows m.ncols)

let get m i j =
  check_bounds m i j;
  m.data.((i * m.ncols) + j)

let set m i j v =
  check_bounds m i j;
  m.data.((i * m.ncols) + j) <- v

let add_to m i j v =
  check_bounds m i j;
  let k = (i * m.ncols) + j in
  m.data.(k) <- Complex.add m.data.(k) v

let identity n =
  let m = create n n in
  for i = 0 to n - 1 do
    set m i i Complex.one
  done;
  m

let copy m = { m with data = Array.copy m.data }

let of_arrays a =
  let nrows = Array.length a in
  let ncols = if nrows = 0 then 0 else Array.length a.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> ncols then invalid_arg "Cmat.of_arrays: ragged rows")
    a;
  let m = create nrows ncols in
  Array.iteri (fun i row -> Array.iteri (fun j v -> set m i j v) row) a;
  m

let to_arrays m =
  Array.init m.nrows (fun i -> Array.init m.ncols (fun j -> get m i j))

let transpose m =
  let r = create m.ncols m.nrows in
  for i = 0 to m.nrows - 1 do
    for j = 0 to m.ncols - 1 do
      set r j i (get m i j)
    done
  done;
  r

let map f m = { m with data = Array.map f m.data }

let mul a b =
  if a.ncols <> b.nrows then invalid_arg "Cmat.mul: dimension mismatch";
  let r = create a.nrows b.ncols in
  for i = 0 to a.nrows - 1 do
    for j = 0 to b.ncols - 1 do
      let acc = ref Complex.zero in
      for k = 0 to a.ncols - 1 do
        acc := Complex.add !acc (Complex.mul (get a i k) (get b k j))
      done;
      set r i j !acc
    done
  done;
  r

(* Hot kernel: unsafe-indexed with the complex products inlined on the
   float components (bit-identical to Complex.mul / Complex.add, which
   use the same naive formulas). Bounds are established once up front. *)
let mul_vec a x =
  if a.ncols <> Array.length x then invalid_arg "Cmat.mul_vec: dimension mismatch";
  let d = a.data and nc = a.ncols in
  Array.init a.nrows (fun i ->
      let row = i * nc in
      let acc_re = ref 0.0 and acc_im = ref 0.0 in
      for k = 0 to nc - 1 do
        let m = Array.unsafe_get d (row + k) in
        let v = Array.unsafe_get x k in
        acc_re := !acc_re +. ((m.Complex.re *. v.Complex.re) -. (m.Complex.im *. v.Complex.im));
        acc_im := !acc_im +. ((m.Complex.re *. v.Complex.im) +. (m.Complex.im *. v.Complex.re))
      done;
      Complex.{ re = !acc_re; im = !acc_im })

let scale s m = map (Complex.mul s) m

let elementwise op a b =
  if a.nrows <> b.nrows || a.ncols <> b.ncols then
    invalid_arg "Cmat: dimension mismatch";
  { a with data = Array.init (Array.length a.data) (fun k -> op a.data.(k) b.data.(k)) }

let add a b = elementwise Complex.add a b
let sub a b = elementwise Complex.sub a b

type lu = { mat : t; perm : int array; sign : int }

(* Partial-pivoting LU (Doolittle).  Pivots on the largest |.| in the
   column; a pivot below [tiny] relative to the matrix norm signals a
   singular system. The elimination loops are unsafe-indexed on the
   flat data array with the complex arithmetic inlined (bit-identical
   to the Complex module's naive formulas); the bounds-checked API
   above guards every entry point. *)
let lu_factor a =
  if a.nrows <> a.ncols then invalid_arg "Cmat.lu_factor: non-square matrix";
  let n = a.nrows in
  let m = copy a in
  let d = m.data in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1 in
  let scale_norm =
    Array.fold_left (fun acc v -> Float.max acc (Complex.norm v)) 0.0 d
  in
  (* Growth-aware threshold: a pivot at the round-off floor of the
     elimination, n * eps * ||A||, is numerically zero. The previous
     [1e-14 *. epsilon_float] double-counted epsilon (~1e-30 * ||A||)
     and let near-singular systems through undetected. *)
  let tiny = 1e-300 +. (scale_norm *. float_of_int n *. 4.0 *. epsilon_float) in
  for k = 0 to n - 1 do
    (* find pivot *)
    let pivot_row = ref k
    and pivot_mag = ref (Complex.norm (Array.unsafe_get d ((k * n) + k))) in
    for i = k + 1 to n - 1 do
      let mag = Complex.norm (Array.unsafe_get d ((i * n) + k)) in
      if mag > !pivot_mag then begin
        pivot_mag := mag;
        pivot_row := i
      end
    done;
    if !pivot_mag <= tiny then raise Singular;
    if !pivot_row <> k then begin
      sign := - !sign;
      let p = !pivot_row in
      let rk = k * n and rp = p * n in
      for j = 0 to n - 1 do
        let tmp = Array.unsafe_get d (rk + j) in
        Array.unsafe_set d (rk + j) (Array.unsafe_get d (rp + j));
        Array.unsafe_set d (rp + j) tmp
      done;
      let tmp = perm.(k) in
      perm.(k) <- perm.(p);
      perm.(p) <- tmp
    end;
    let rk = k * n in
    let pivot = Array.unsafe_get d (rk + k) in
    for i = k + 1 to n - 1 do
      let ri = i * n in
      let factor = Complex.div (Array.unsafe_get d (ri + k)) pivot in
      Array.unsafe_set d (ri + k) factor;
      let f_re = factor.Complex.re and f_im = factor.Complex.im in
      if f_re <> 0.0 || f_im <> 0.0 then
        for j = k + 1 to n - 1 do
          let akj = Array.unsafe_get d (rk + j) in
          let aij = Array.unsafe_get d (ri + j) in
          Array.unsafe_set d (ri + j)
            Complex.
              {
                re = aij.re -. ((f_re *. akj.re) -. (f_im *. akj.im));
                im = aij.im -. ((f_re *. akj.im) +. (f_im *. akj.re));
              }
        done
    done
  done;
  { mat = m; perm; sign = !sign }

let lu_solve { mat = m; perm; _ } b =
  let n = m.nrows in
  if Array.length b <> n then invalid_arg "Cmat.lu_solve: dimension mismatch";
  let d = m.data in
  let x = Array.init n (fun i -> b.(perm.(i))) in
  (* forward substitution: L y = P b, with unit diagonal L *)
  for i = 1 to n - 1 do
    let ri = i * n in
    let v = Array.unsafe_get x i in
    let acc_re = ref v.Complex.re and acc_im = ref v.Complex.im in
    for j = 0 to i - 1 do
      let l = Array.unsafe_get d (ri + j) in
      let xj = Array.unsafe_get x j in
      acc_re := !acc_re -. ((l.Complex.re *. xj.Complex.re) -. (l.Complex.im *. xj.Complex.im));
      acc_im := !acc_im -. ((l.Complex.re *. xj.Complex.im) +. (l.Complex.im *. xj.Complex.re))
    done;
    Array.unsafe_set x i Complex.{ re = !acc_re; im = !acc_im }
  done;
  (* back substitution: U x = y *)
  for i = n - 1 downto 0 do
    let ri = i * n in
    let v = Array.unsafe_get x i in
    let acc_re = ref v.Complex.re and acc_im = ref v.Complex.im in
    for j = i + 1 to n - 1 do
      let u = Array.unsafe_get d (ri + j) in
      let xj = Array.unsafe_get x j in
      acc_re := !acc_re -. ((u.Complex.re *. xj.Complex.re) -. (u.Complex.im *. xj.Complex.im));
      acc_im := !acc_im -. ((u.Complex.re *. xj.Complex.im) +. (u.Complex.im *. xj.Complex.re))
    done;
    Array.unsafe_set x i
      (Complex.div Complex.{ re = !acc_re; im = !acc_im } (Array.unsafe_get d (ri + i)))
  done;
  x

let solve a b = lu_solve (lu_factor a) b

let determinant a =
  if a.nrows <> a.ncols then invalid_arg "Cmat.determinant: non-square matrix";
  match lu_factor a with
  | exception Singular -> Complex.zero
  | { mat = m; sign; _ } ->
      let acc = ref (if sign >= 0 then Complex.one else Complex.{ re = -1.0; im = 0.0 }) in
      for i = 0 to a.nrows - 1 do
        acc := Complex.mul !acc (get m i i)
      done;
      !acc

let inverse a =
  let n = a.nrows in
  let lu = lu_factor a in
  let r = create n n in
  for j = 0 to n - 1 do
    let e = Array.make n Complex.zero in
    e.(j) <- Complex.one;
    let col = lu_solve lu e in
    Array.iteri (fun i v -> set r i j v) col
  done;
  r

let residual_norm a x b =
  let ax = mul_vec a x in
  Util.Floatx.fold_range (Array.length b) ~init:0.0 ~f:(fun acc i ->
      Float.max acc (Complex.norm (Complex.sub ax.(i) b.(i))))

let norm_inf m =
  Util.Floatx.fold_range m.nrows ~init:0.0 ~f:(fun acc i ->
      let row_sum =
        Util.Floatx.fold_range m.ncols ~init:0.0 ~f:(fun s j ->
            s +. Complex.norm (get m i j))
      in
      Float.max acc row_sum)

let fill_parts m ~re ~im_scale ~im =
  let len = Array.length m.data in
  if Array.length re <> len || Array.length im <> len then
    invalid_arg "Cmat.fill_parts: part length mismatch";
  let d = m.data in
  for k = 0 to len - 1 do
    Array.unsafe_set d k
      Complex.
        { re = Array.unsafe_get re k; im = im_scale *. Array.unsafe_get im k }
  done

let pp ppf m =
  for i = 0 to m.nrows - 1 do
    Format.fprintf ppf "[";
    for j = 0 to m.ncols - 1 do
      let v = get m i j in
      Format.fprintf ppf " %8.3g%+8.3gi" v.Complex.re v.Complex.im
    done;
    Format.fprintf ppf " ]@."
  done
