type t = { num : Poly.t; den : Poly.t }

let make num den =
  if Poly.is_zero den then invalid_arg "Ratfunc.make: zero denominator";
  let lead = Poly.coeff den (Poly.degree den) in
  { num = Poly.scale (1.0 /. lead) num; den = Poly.scale (1.0 /. lead) den }

let const c = make (Poly.const c) Poly.one

let eval { num; den } z = Complex.div (Poly.eval num z) (Poly.eval den z)
let eval_jw h w = eval h Complex.{ re = 0.0; im = w }
let magnitude_jw h w = Complex.norm (eval_jw h w)

let den_magnitude_jw_box { den; _ } w =
  Util.Interval.Complex_box.abs (Poly.eval_jw_box den w)

(* |H| over a frequency interval as the quotient of the modulus
   enclosures: both are subsets of [0, inf], so the quotient bounds are
   |num|_lo / |den|_hi and |num|_hi / |den|_lo. When the denominator
   enclosure touches zero [Interval.div] returns [whole]; clamping the
   low bound at zero then yields [0, inf] — "no information", exactly
   right near a pole. *)
let magnitude_jw_box h w =
  let module I = Util.Interval in
  let nm = I.Complex_box.abs (Poly.eval_jw_box h.num w) in
  let dm = den_magnitude_jw_box h w in
  let q = I.div nm dm in
  { I.lo = Float.max 0.0 q.I.lo; hi = q.I.hi }

let poles { den; _ } = Poly.roots den
let zeros { num; _ } = Poly.roots num

let dc_gain { num; den } =
  let d0 = Poly.coeff den 0 in
  if d0 = 0.0 then infinity else Poly.coeff num 0 /. d0

let add a b =
  make
    (Poly.add (Poly.mul a.num b.den) (Poly.mul b.num a.den))
    (Poly.mul a.den b.den)

let mul a b = make (Poly.mul a.num b.num) (Poly.mul a.den b.den)

let equal_at ?(points = 16) ?(tol = 1e-7) a b =
  (* Sample along a spiral avoiding poles sitting exactly on the grid. *)
  let ok = ref true in
  for k = 0 to points - 1 do
    let angle = 0.7 +. (float_of_int k *. 0.9) in
    let radius = 10.0 ** (float_of_int k /. 3.0 -. 2.0) in
    let z = Complex.{ re = radius *. cos angle; im = radius *. sin angle } in
    let va = eval a z and vb = eval b z in
    let scale = Float.max 1.0 (Float.max (Complex.norm va) (Complex.norm vb)) in
    if Complex.norm (Complex.sub va vb) > tol *. scale then ok := false
  done;
  !ok

(* rebuild a (real-coefficient) polynomial from its roots: conjugate
   pairs combine into real quadratics, stray imaginary dust is
   dropped *)
let poly_of_roots ~lead roots =
  let rec build acc = function
    | [] -> acc
    | r :: rest when Float.abs r.Complex.im <= 1e-9 *. Float.max 1.0 (Complex.norm r) ->
        build (Poly.mul acc (Poly.of_coeffs [| -.r.Complex.re; 1.0 |])) rest
    | r :: rest -> (
        (* find and consume the conjugate partner *)
        let is_conj x =
          Float.abs (x.Complex.re -. r.Complex.re)
            <= 1e-6 *. Float.max 1.0 (Complex.norm r)
          && Float.abs (x.Complex.im +. r.Complex.im)
             <= 1e-6 *. Float.max 1.0 (Complex.norm r)
        in
        match List.partition is_conj rest with
        | _partner :: extra, others ->
            let quad =
              Poly.of_coeffs
                [| Complex.norm2 r; -2.0 *. r.Complex.re; 1.0 |]
            in
            build (Poly.mul acc quad) (extra @ others)
        | [], _ ->
            (* unpaired complex root: treat as real part only *)
            build (Poly.mul acc (Poly.of_coeffs [| -.r.Complex.re; 1.0 |])) rest)
  in
  Poly.scale lead (build Poly.one roots)

let simplify ?(tol = 1e-6) h =
  let zs = ref (Array.to_list (Poly.roots h.num)) in
  let ps = ref (Array.to_list (Poly.roots h.den)) in
  let close a b =
    Complex.norm (Complex.sub a b) <= tol *. Float.max 1.0 (Complex.norm a)
  in
  let surviving_zeros =
    List.filter
      (fun z ->
        match List.partition (close z) !ps with
        | cancelled :: rest_cancelled, others ->
            ignore cancelled;
            ps := rest_cancelled @ others;
            false
        | [], _ -> true)
      !zs
  in
  zs := surviving_zeros;
  let lead_num = Poly.coeff h.num (Poly.degree h.num) in
  let lead_den = Poly.coeff h.den (Poly.degree h.den) in
  if Poly.is_zero h.num then h
  else
    make (poly_of_roots ~lead:lead_num !zs) (poly_of_roots ~lead:lead_den !ps)

let group_delay h w =
  (* -d arg H / dw at s = jw equals -Im(H'/H) there, with
     H'/H = num'/num - den'/den *)
  let s = Complex.{ re = 0.0; im = w } in
  let ratio p =
    let v = Poly.eval p s in
    if Complex.norm v = 0.0 then Complex.zero
    else Complex.div (Poly.eval (Poly.derivative p) s) v
  in
  let logderiv = Complex.sub (ratio h.num) (ratio h.den) in
  (* d/dw = j d/ds on the imaginary axis *)
  -.(Complex.mul Complex.i logderiv).Complex.im

let pp ppf { num; den } =
  Format.fprintf ppf "(%a) / (%a)" Poly.pp num Poly.pp den
