type t = float array
(* Invariant: either empty (the zero polynomial) or the last
   coefficient is non-zero. *)

let trim a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0.0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let zero = [||]
let of_coeffs a = trim (Array.copy a)
let const c = if c = 0.0 then zero else [| c |]
let one = const 1.0
let s = [| 0.0; 1.0 |]
let coeffs p = Array.copy p
let coeff p k = if k >= 0 && k < Array.length p then p.(k) else 0.0
let degree p = Array.length p - 1
let is_zero p = Array.length p = 0

let add a b =
  let n = Int.max (Array.length a) (Array.length b) in
  trim (Array.init n (fun i -> coeff a i +. coeff b i))

let neg a = Array.map (fun c -> -.c) a

let sub a b =
  let n = Int.max (Array.length a) (Array.length b) in
  trim (Array.init n (fun i -> coeff a i -. coeff b i))

let mul a b =
  if is_zero a || is_zero b then zero
  else begin
    let r = Array.make (Array.length a + Array.length b - 1) 0.0 in
    Array.iteri
      (fun i ai -> Array.iteri (fun j bj -> r.(i + j) <- r.(i + j) +. (ai *. bj)) b)
      a;
    trim r
  end

let scale k a = if k = 0.0 then zero else trim (Array.map (fun c -> k *. c) a)

let infnorm p = Array.fold_left (fun acc c -> Float.max acc (Float.abs c)) 0.0 p

let equal ?(tol = 1e-9) a b =
  let d = sub a b in
  let scale_ref = Float.max (infnorm a) (infnorm b) in
  infnorm d <= tol *. Float.max 1.0 scale_ref

(* Long division keeping only the quotient.  The Bareiss elimination
   guarantees exact divisibility over the rationals; in floating point
   a small remainder remains and is discarded. *)
let div_exact a b =
  if is_zero b then invalid_arg "Poly.div_exact: division by zero polynomial";
  if is_zero a then zero
  else begin
    let da = degree a and db = degree b in
    if da < db then zero
    else begin
      let rem = Array.copy a in
      let q = Array.make (da - db + 1) 0.0 in
      let lead_b = b.(db) in
      for k = da - db downto 0 do
        let factor = rem.(k + db) /. lead_b in
        q.(k) <- factor;
        for j = 0 to db do
          rem.(k + j) <- rem.(k + j) -. (factor *. b.(j))
        done
      done;
      trim q
    end
  end

let eval p (z : Complex.t) =
  let acc = ref Complex.zero in
  for i = Array.length p - 1 downto 0 do
    acc := Complex.add (Complex.mul !acc z) { Complex.re = p.(i); im = 0.0 }
  done;
  !acc

(* Interval enclosure of p(jω) over ω ∈ [w]. Splitting into even/odd
   parts turns the complex evaluation into two real polynomials in
   u = ω²:  Re p(jω) = Σ (-1)^m c_{2m} u^m  and
   Im p(jω) = ω · Σ (-1)^m c_{2m+1} u^m, each evaluated by interval
   Horner. This keeps the dependency problem to one variable (u) per
   part instead of compounding through complex products, so the boxes
   stay usable at the degrees the symbolic extractor produces. *)
let eval_jw_box p w =
  let module I = Util.Interval in
  let horner cs u =
    let acc = ref (I.point 0.0) in
    for i = Array.length cs - 1 downto 0 do
      acc := I.add (I.mul !acc u) (I.point cs.(i))
    done;
    !acc
  in
  let n = Array.length p in
  let signed m c = if m land 1 = 1 then -.c else c in
  let even = Array.init ((n + 1) / 2) (fun m -> signed m (coeff p (2 * m))) in
  let odd = Array.init (n / 2) (fun m -> signed m (coeff p ((2 * m) + 1))) in
  let u = I.sqr w in
  I.Complex_box.make (horner even u) (I.mul w (horner odd u))

let eval_real p x =
  let acc = ref 0.0 in
  for i = Array.length p - 1 downto 0 do
    acc := (!acc *. x) +. p.(i)
  done;
  !acc

let derivative p =
  if Array.length p <= 1 then zero
  else trim (Array.init (Array.length p - 1) (fun i -> float_of_int (i + 1) *. p.(i + 1)))

let normalize p =
  if is_zero p then zero else scale (1.0 /. p.(degree p)) p

(* Aberth--Ehrlich simultaneous root refinement.  Initial guesses are
   placed on a circle of radius given by the Cauchy bound, slightly
   perturbed off the real axis so complex-conjugate pairs separate. *)
let roots ?(max_iter = 200) ?(tol = 1e-12) p =
  let p = trim p in
  let n = degree p in
  if n <= 0 then [||]
  else begin
    let monic = normalize p in
    let cauchy_bound =
      1.0
      +. Array.fold_left
           (fun acc c -> Float.max acc (Float.abs c))
           0.0
           (Array.sub monic 0 n)
    in
    let radius = Float.max 1e-3 (Float.min cauchy_bound 1e12) in
    let pi = 4.0 *. atan 1.0 in
    let z =
      Array.init n (fun k ->
          let angle = (2.0 *. pi *. float_of_int k /. float_of_int n) +. 0.4 in
          Complex.{ re = radius *. cos angle; im = radius *. sin angle })
    in
    let p' = derivative monic in
    let converged = Array.make n false in
    let iter = ref 0 in
    let all_done () = Array.for_all Fun.id converged in
    while (not (all_done ())) && !iter < max_iter do
      incr iter;
      for i = 0 to n - 1 do
        if not converged.(i) then begin
          let pz = eval monic z.(i) in
          let dpz = eval p' z.(i) in
          if Complex.norm pz <= tol *. Float.max 1.0 (Complex.norm dpz) then
            converged.(i) <- true
          else begin
            let newton =
              if Complex.norm dpz = 0.0 then Complex.{ re = tol; im = tol }
              else Complex.div pz dpz
            in
            let repulsion = ref Complex.zero in
            for j = 0 to n - 1 do
              if j <> i then begin
                let diff = Complex.sub z.(i) z.(j) in
                let d =
                  if Complex.norm diff < 1e-30 then Complex.{ re = 1e-30; im = 0.0 }
                  else diff
                in
                repulsion := Complex.add !repulsion (Complex.div Complex.one d)
              end
            done;
            let denom = Complex.sub Complex.one (Complex.mul newton !repulsion) in
            let step =
              if Complex.norm denom < 1e-30 then newton
              else Complex.div newton denom
            in
            z.(i) <- Complex.sub z.(i) step;
            if Complex.norm step <= tol *. Float.max 1.0 (Complex.norm z.(i)) then
              converged.(i) <- true
          end
        end
      done
    done;
    (* Snap near-real roots onto the real axis for cleaner reporting. *)
    Array.map
      (fun r ->
        if Float.abs r.Complex.im <= 1e-8 *. Float.max 1.0 (Float.abs r.Complex.re)
        then { r with Complex.im = 0.0 }
        else r)
      z
  end

let pp ppf p =
  if is_zero p then Format.fprintf ppf "0"
  else begin
    let first = ref true in
    Array.iteri
      (fun i c ->
        if c <> 0.0 then begin
          if !first then Format.fprintf ppf "%g" c
          else if c > 0.0 then Format.fprintf ppf " + %g" c
          else Format.fprintf ppf " - %g" (Float.abs c);
          if i = 1 then Format.fprintf ppf "*s"
          else if i > 1 then Format.fprintf ppf "*s^%d" i;
          first := false
        end)
      p
  end

let to_string p = Format.asprintf "%a" pp p
