(* Sparse complex linear algebra on split re/im off-heap planes.

   The storage discipline follows {!Cmat.Big}: every numeric payload is
   a pair of [Bigarray.Array1] float64 planes the GC never scans or
   moves, and the boxed [Complex.t] API survives only at the edges.

   An MNA matrix A(jω) = G + jωC has one {e pattern} (the stamped
   occupancy, fixed per netlist) and per-frequency {e values}, so the
   factorization splits the classic SPICE way:

   - {!analyze} runs once per pattern: a right-looking Markowitz-style
     elimination with threshold partial pivoting on representative
     values picks the (row, column) pivot order and records the filled
     L/U patterns. Fill is simulated for real — the recorded pattern is
     closed under the left-looking update rule by construction.
   - {!refactor} runs once per frequency: a static-pivot left-looking
     pass over the recorded pattern into reusable factor planes. No
     searching, no allocation, O(flops(fill)).

   The numeric conventions are the dense kernels' exactly: the same
   {!Cmat.norm2} magnitudes, the same Smith division for every complex
   quotient, and the same growth-aware singularity threshold
   [1e-300 + scale_norm · n · 4 · ε] raising {!Cmat.Singular} — so a
   matrix the dense path calls singular is rejected here by the same
   yardstick (the pivot {e order} differs, so rounding and borderline
   verdicts may differ within that envelope; the differential oracles
   compare through a tolerance, not bitwise). *)

module Big = Cmat.Big
module Bvec = Big.Vec
open Bigarray

type plane = Big.plane

let plane len : plane =
  let p = Array1.create Float64 C_layout len in
  Array1.fill p 0.0;
  p

(* ---- pattern ---- *)

type pattern = {
  n : int;
  nnz : int;
  colptr : int array;  (* length n+1 *)
  rowind : int array;  (* length nnz; rows ascending within a column *)
}

let n p = p.n
let nnz p = p.nnz

let pattern ~n entries =
  if n < 0 then invalid_arg "Csparse.pattern: negative dimension";
  let entries = Array.copy entries in
  Array.sort
    (fun (r1, c1) (r2, c2) -> if c1 <> c2 then compare c1 c2 else compare r1 r2)
    entries;
  let nnz = Array.length entries in
  let colptr = Array.make (n + 1) 0 in
  let rowind = Array.make nnz 0 in
  Array.iteri
    (fun k (r, c) ->
      if r < 0 || r >= n || c < 0 || c >= n then
        invalid_arg "Csparse.pattern: entry out of bounds";
      if k > 0 && entries.(k - 1) = (r, c) then
        invalid_arg "Csparse.pattern: duplicate entry";
      rowind.(k) <- r;
      colptr.(c + 1) <- colptr.(c + 1) + 1)
    entries;
  for c = 1 to n do
    colptr.(c) <- colptr.(c) + colptr.(c - 1)
  done;
  { n; nnz; colptr; rowind }

let slot p ~row ~col =
  if col < 0 || col >= p.n then invalid_arg "Csparse.slot: column out of bounds";
  let lo = ref p.colptr.(col) and hi = ref (p.colptr.(col + 1) - 1) in
  let found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let r = p.rowind.(mid) in
    if r = row then found := mid else if r < row then lo := mid + 1 else hi := mid - 1
  done;
  if !found < 0 then raise Not_found;
  !found

let values p = (plane p.nnz, plane p.nnz)

(* ---- whole-matrix helpers on (pattern, value planes) ---- *)

let check_values p (re : plane) (im : plane) =
  if Array1.dim re <> p.nnz || Array1.dim im <> p.nnz then
    invalid_arg "Csparse: value planes do not match the pattern"

(* Same row-sum norm the dense [Cmat.Big.norm_inf] computes: absent
   entries contribute the zero their dense counterparts would. *)
let norm_inf p ~re ~im =
  check_values p re im;
  let sums = Array.make (Int.max p.n 1) 0.0 in
  for c = 0 to p.n - 1 do
    for k = p.colptr.(c) to p.colptr.(c + 1) - 1 do
      let i = Array.unsafe_get p.rowind k in
      Array.unsafe_set sums i
        (Array.unsafe_get sums i
        +. Cmat.norm2 (Array1.unsafe_get re k) (Array1.unsafe_get im k))
    done
  done;
  Array.fold_left Float.max 0.0 sums

(* y <- A x, column-wise: O(nnz), no allocation. *)
let mul_vec_into p ~re ~im ~(x : Bvec.t) ~(y : Bvec.t) =
  check_values p re im;
  if Bvec.length x <> p.n || Bvec.length y <> p.n then
    invalid_arg "Csparse.mul_vec_into: dimension mismatch";
  Bvec.fill_zero y;
  let xre = x.Bvec.re and xim = x.Bvec.im in
  let yre = y.Bvec.re and yim = y.Bvec.im in
  for c = 0 to p.n - 1 do
    let vre = Array1.unsafe_get xre c and vim = Array1.unsafe_get xim c in
    if vre <> 0.0 || vim <> 0.0 then
      for k = p.colptr.(c) to p.colptr.(c + 1) - 1 do
        let i = Array.unsafe_get p.rowind k in
        let are = Array1.unsafe_get re k and aim = Array1.unsafe_get im k in
        Array1.unsafe_set yre i
          (Array1.unsafe_get yre i +. ((are *. vre) -. (aim *. vim)));
        Array1.unsafe_set yim i
          (Array1.unsafe_get yim i +. ((are *. vim) +. (aim *. vre)))
      done
  done

(* Densify into an off-heap matrix — the bridge to the dense fallback
   paths (full refactorization on a perturbed copy). *)
let dense_into p ~re ~im (m : Big.t) =
  check_values p re im;
  if Big.rows m <> p.n || Big.cols m <> p.n then
    invalid_arg "Csparse.dense_into: dimension mismatch";
  let mre = Big.re_plane m and mim = Big.im_plane m in
  Array1.fill mre 0.0;
  Array1.fill mim 0.0;
  let nc = p.n in
  for c = 0 to p.n - 1 do
    for k = p.colptr.(c) to p.colptr.(c + 1) - 1 do
      let i = Array.unsafe_get p.rowind k in
      Array1.unsafe_set mre ((i * nc) + c) (Array1.unsafe_get re k);
      Array1.unsafe_set mim ((i * nc) + c) (Array1.unsafe_get im k)
    done
  done

(* ---- symbolic analysis ---- *)

type symbolic = {
  pat : pattern;
  roworder : int array;  (* roworder.(k) = original row pivoted at step k *)
  colorder : int array;  (* colorder.(k) = original column eliminated at step k *)
  rowpos : int array;  (* inverse of roworder *)
  colpos : int array;  (* inverse of colorder *)
  (* Filled factor patterns in permuted coordinates, CSC per permuted
     column; L is strictly lower with implicit unit diagonal, U is
     strictly upper (the diagonal lives in its own planes). Row indices
     ascend within each column. *)
  l_colptr : int array;
  l_rowind : int array;
  u_colptr : int array;
  u_rowind : int array;
  perm_sign : int;  (* sign(P)·sign(Q) *)
}

let symbolic_nnz s = s.pat.nnz
let fill_nnz s = Array.length s.l_rowind + Array.length s.u_rowind + s.pat.n

(* Parity of the permutation [k -> p.(k)] by cycle decomposition. *)
let permutation_sign p =
  let n = Array.length p in
  let seen = Array.make n false in
  let sign = ref 1 in
  for k = 0 to n - 1 do
    if not seen.(k) then begin
      let len = ref 0 and i = ref k in
      while not seen.(!i) do
        seen.(!i) <- true;
        i := p.(!i);
        incr len
      done;
      if !len land 1 = 0 then sign := - !sign
    end
  done;
  !sign

(* Markowitz threshold: a candidate pivot must be at least this
   fraction of the largest magnitude in its column. The classic SPICE
   default trades a little growth for a lot less fill. *)
let pivot_threshold = 0.001

let tiny_of ~n ~scale_norm =
  1e-300 +. (scale_norm *. float_of_int n *. 4.0 *. epsilon_float)

let analyze p ~re ~im =
  check_values p re im;
  let n = p.n in
  if n = 0 then
    {
      pat = p;
      roworder = [||];
      colorder = [||];
      rowpos = [||];
      colpos = [||];
      l_colptr = [| 0 |];
      l_rowind = [||];
      u_colptr = [| 0 |];
      u_rowind = [||];
      perm_sign = 1;
    }
  else begin
    (* Working sparse matrix with dynamic fill: per-row and per-column
       active-index sets plus a value table keyed by flat index. One-time
       cost per netlist pattern, so hash overhead is acceptable. *)
    let row_set = Array.init n (fun _ -> Hashtbl.create 8) in
    let col_set = Array.init n (fun _ -> Hashtbl.create 8) in
    let value : (int, float ref * float ref) Hashtbl.t =
      Hashtbl.create (4 * p.nnz)
    in
    let scale_norm = ref 0.0 in
    for c = 0 to n - 1 do
      for k = p.colptr.(c) to p.colptr.(c + 1) - 1 do
        let i = p.rowind.(k) in
        Hashtbl.replace row_set.(i) c ();
        Hashtbl.replace col_set.(c) i ();
        Hashtbl.replace value ((i * n) + c) (ref (Array1.get re k), ref (Array1.get im k));
        let m = Cmat.norm2 (Array1.get re k) (Array1.get im k) in
        if m > !scale_norm then scale_norm := m
      done
    done;
    let tiny = tiny_of ~n ~scale_norm:!scale_norm in
    let mag i c =
      match Hashtbl.find_opt value ((i * n) + c) with
      | None -> 0.0
      | Some (vr, vi) -> Cmat.norm2 !vr !vi
    in
    let row_active = Array.make n true and col_active = Array.make n true in
    let roworder = Array.make n 0 and colorder = Array.make n 0 in
    let lcols = Array.make n [] and urows = Array.make n [] in
    for k = 0 to n - 1 do
      (* Pivot search: among every acceptable entry (magnitude at least
         [pivot_threshold] of its column's maximum, column maximum above
         [tiny]) minimize the Markowitz count
         (row_len − 1)·(col_len − 1); break ties toward the larger
         magnitude, then the smaller (row, column) pair for
         determinism. *)
      let best_cost = ref max_int
      and best_mag = ref 0.0
      and best_r = ref (-1)
      and best_c = ref (-1) in
      for c = 0 to n - 1 do
        if col_active.(c) then begin
          let colmax = ref 0.0 in
          Hashtbl.iter
            (fun i () ->
              let m = mag i c in
              if m > !colmax then colmax := m)
            col_set.(c);
          if !colmax > tiny then begin
            let acceptable = pivot_threshold *. !colmax in
            let clen = Hashtbl.length col_set.(c) in
            Hashtbl.iter
              (fun i () ->
                let m = mag i c in
                if m >= acceptable && m > tiny then begin
                  let cost = (Hashtbl.length row_set.(i) - 1) * (clen - 1) in
                  if
                    cost < !best_cost
                    || (cost = !best_cost && m > !best_mag)
                    || cost = !best_cost && m = !best_mag
                       && (i < !best_r || (i = !best_r && c < !best_c))
                  then begin
                    best_cost := cost;
                    best_mag := m;
                    best_r := i;
                    best_c := c
                  end
                end)
              col_set.(c)
          end
        end
      done;
      if !best_r < 0 then raise Cmat.Singular;
      let r = !best_r and c = !best_c in
      roworder.(k) <- r;
      colorder.(k) <- c;
      row_active.(r) <- false;
      col_active.(c) <- false;
      (* Record the factor patterns before the update mutates the sets. *)
      let lrows = Hashtbl.fold (fun i () acc -> if i <> r then i :: acc else acc) col_set.(c) [] in
      let ucols = Hashtbl.fold (fun j () acc -> if j <> c then j :: acc else acc) row_set.(r) [] in
      lcols.(k) <- lrows;
      urows.(k) <- ucols;
      (* Detach the pivot row and column from the active structure. *)
      List.iter (fun j -> Hashtbl.remove col_set.(j) r) ucols;
      List.iter (fun i -> Hashtbl.remove row_set.(i) c) lrows;
      Hashtbl.remove col_set.(c) r;
      Hashtbl.remove row_set.(r) c;
      (* Numeric right-looking update, so later pivot choices see real
         magnitudes (fill entries are created here — this is the fill
         simulation the static pattern records). *)
      let pr, pi =
        match Hashtbl.find_opt value ((r * n) + c) with
        | Some (vr, vi) -> (!vr, !vi)
        | None -> (0.0, 0.0)
      in
      List.iter
        (fun i ->
          match Hashtbl.find_opt value ((i * n) + c) with
          | None -> ()
          | Some (ar, ai) ->
              (* f = a_ic / pivot, Smith division. *)
              let f_re, f_im =
                if Float.abs pr >= Float.abs pi then begin
                  let q = pi /. pr in
                  let d = pr +. (q *. pi) in
                  ((!ar +. (q *. !ai)) /. d, (!ai -. (q *. !ar)) /. d)
                end
                else begin
                  let q = pr /. pi in
                  let d = pi +. (q *. pr) in
                  (((q *. !ar) +. !ai) /. d, ((q *. !ai) -. !ar) /. d)
                end
              in
              List.iter
                (fun j ->
                  let rr, ri =
                    match Hashtbl.find_opt value ((r * n) + j) with
                    | Some (vr, vi) -> (!vr, !vi)
                    | None -> (0.0, 0.0)
                  in
                  let key = (i * n) + j in
                  match Hashtbl.find_opt value key with
                  | Some (vr, vi) ->
                      vr := !vr -. ((f_re *. rr) -. (f_im *. ri));
                      vi := !vi -. ((f_re *. ri) +. (f_im *. rr))
                  | None ->
                      (* fill *)
                      Hashtbl.replace value key
                        (ref (-.((f_re *. rr) -. (f_im *. ri))),
                         ref (-.((f_re *. ri) +. (f_im *. rr))));
                      Hashtbl.replace row_set.(i) j ();
                      Hashtbl.replace col_set.(j) i ())
                ucols)
        lrows
    done;
    let rowpos = Array.make n 0 and colpos = Array.make n 0 in
    for k = 0 to n - 1 do
      rowpos.(roworder.(k)) <- k;
      colpos.(colorder.(k)) <- k
    done;
    (* L column k: eliminated rows in permuted coordinates, ascending. *)
    let l_cols =
      Array.map (fun rows -> List.map (fun i -> rowpos.(i)) rows |> List.sort compare) lcols
    in
    (* U is recorded by pivot row; regroup per permuted column. *)
    let u_cols = Array.make n [] in
    for k = n - 1 downto 0 do
      List.iter (fun j -> u_cols.(colpos.(j)) <- k :: u_cols.(colpos.(j))) urows.(k)
    done;
    let u_cols = Array.map (List.sort compare) u_cols in
    let compress cols =
      let colptr = Array.make (n + 1) 0 in
      Array.iteri (fun j l -> colptr.(j + 1) <- colptr.(j) + List.length l) cols;
      let rowind = Array.make colptr.(n) 0 in
      Array.iteri
        (fun j l -> List.iteri (fun o i -> rowind.(colptr.(j) + o) <- i) l)
        cols;
      (colptr, rowind)
    in
    let l_colptr, l_rowind = compress l_cols in
    let u_colptr, u_rowind = compress u_cols in
    {
      pat = p;
      roworder;
      colorder;
      rowpos;
      colpos;
      l_colptr;
      l_rowind;
      u_colptr;
      u_rowind;
      perm_sign = permutation_sign roworder * permutation_sign colorder;
    }
  end

(* ---- numeric refactorization ---- *)

type numeric = {
  sym : symbolic;
  lre : plane;  (* aligned with sym.l_rowind *)
  lim : plane;
  ure : plane;  (* aligned with sym.u_rowind *)
  uim : plane;
  dre : plane;  (* U diagonal, length n *)
  dim_ : plane;
  wre : plane;  (* scatter workspace, length n, zero between columns *)
  wim : plane;
}

let numeric sym =
  {
    sym;
    lre = plane (Array.length sym.l_rowind);
    lim = plane (Array.length sym.l_rowind);
    ure = plane (Array.length sym.u_rowind);
    uim = plane (Array.length sym.u_rowind);
    dre = plane sym.pat.n;
    dim_ = plane sym.pat.n;
    wre = plane sym.pat.n;
    wim = plane sym.pat.n;
  }

let numeric_dim num = num.sym.pat.n

(* Left-looking refactorization over the static filled pattern. The
   workspace planes are owned by the [numeric] value, so refactoring is
   single-writer — concurrent {!solve_into}/{!solve_block_into} readers
   are only safe once this returns (the engine factors per frequency at
   construction time, before any parallel phase). *)
let refactor num ~re ~im =
  let s = num.sym in
  let p = s.pat in
  check_values p re im;
  let n = p.n in
  let scale_norm = ref 0.0 in
  for k = 0 to p.nnz - 1 do
    let m = Cmat.norm2 (Array1.unsafe_get re k) (Array1.unsafe_get im k) in
    if m > !scale_norm then scale_norm := m
  done;
  let tiny = tiny_of ~n ~scale_norm:!scale_norm in
  let wre = num.wre and wim = num.wim in
  let lre = num.lre and lim = num.lim in
  let ure = num.ure and uim = num.uim in
  for j = 0 to n - 1 do
    let c = s.colorder.(j) in
    (* scatter A's column c into permuted positions *)
    for k = p.colptr.(c) to p.colptr.(c + 1) - 1 do
      let pi = Array.unsafe_get s.rowpos (Array.unsafe_get p.rowind k) in
      Array1.unsafe_set wre pi (Array1.unsafe_get re k);
      Array1.unsafe_set wim pi (Array1.unsafe_get im k)
    done;
    (* eliminate with the already-computed columns k < j *)
    for uix = s.u_colptr.(j) to s.u_colptr.(j + 1) - 1 do
      let k = Array.unsafe_get s.u_rowind uix in
      let uk_re = Array1.unsafe_get wre k and uk_im = Array1.unsafe_get wim k in
      Array1.unsafe_set ure uix uk_re;
      Array1.unsafe_set uim uix uk_im;
      if uk_re <> 0.0 || uk_im <> 0.0 then
        for lix = s.l_colptr.(k) to s.l_colptr.(k + 1) - 1 do
          let i = Array.unsafe_get s.l_rowind lix in
          let l_re = Array1.unsafe_get lre lix and l_im = Array1.unsafe_get lim lix in
          Array1.unsafe_set wre i
            (Array1.unsafe_get wre i -. ((l_re *. uk_re) -. (l_im *. uk_im)));
          Array1.unsafe_set wim i
            (Array1.unsafe_get wim i -. ((l_re *. uk_im) +. (l_im *. uk_re)))
        done
    done;
    let p_re = Array1.unsafe_get wre j and p_im = Array1.unsafe_get wim j in
    let clear () =
      for uix = s.u_colptr.(j) to s.u_colptr.(j + 1) - 1 do
        let k = Array.unsafe_get s.u_rowind uix in
        Array1.unsafe_set wre k 0.0;
        Array1.unsafe_set wim k 0.0
      done;
      Array1.unsafe_set wre j 0.0;
      Array1.unsafe_set wim j 0.0;
      for lix = s.l_colptr.(j) to s.l_colptr.(j + 1) - 1 do
        let i = Array.unsafe_get s.l_rowind lix in
        Array1.unsafe_set wre i 0.0;
        Array1.unsafe_set wim i 0.0
      done
    in
    if Cmat.norm2 p_re p_im <= tiny then begin
      (* leave the workspace clean for the next refactor attempt *)
      clear ();
      raise Cmat.Singular
    end;
    Array1.unsafe_set num.dre j p_re;
    Array1.unsafe_set num.dim_ j p_im;
    for lix = s.l_colptr.(j) to s.l_colptr.(j + 1) - 1 do
      let i = Array.unsafe_get s.l_rowind lix in
      let a_re = Array1.unsafe_get wre i and a_im = Array1.unsafe_get wim i in
      if Float.abs p_re >= Float.abs p_im then begin
        let r = p_im /. p_re in
        let d = p_re +. (r *. p_im) in
        Array1.unsafe_set lre lix ((a_re +. (r *. a_im)) /. d);
        Array1.unsafe_set lim lix ((a_im -. (r *. a_re)) /. d)
      end
      else begin
        let r = p_re /. p_im in
        let d = p_im +. (r *. p_re) in
        Array1.unsafe_set lre lix (((r *. a_re) +. a_im) /. d);
        Array1.unsafe_set lim lix (((r *. a_im) -. a_re) /. d)
      end
    done;
    clear ()
  done

let determinant num =
  let n = num.sym.pat.n in
  let acc_re = ref (if num.sym.perm_sign >= 0 then 1.0 else -1.0)
  and acc_im = ref 0.0 in
  for j = 0 to n - 1 do
    let d_re = Array1.get num.dre j and d_im = Array1.get num.dim_ j in
    let r = (!acc_re *. d_re) -. (!acc_im *. d_im) in
    acc_im := (!acc_re *. d_im) +. (!acc_im *. d_re);
    acc_re := r
  done;
  Complex.{ re = !acc_re; im = !acc_im }

(* ---- triangular solves ----

   Shared factors are read-only here, so concurrent solves from several
   domains are safe; the permuted intermediate lives in per-domain
   scratch (DLS), mirroring the engine-wide scratch discipline. *)

type solve_scratch = { mutable len : int; mutable yre : plane; mutable yim : plane }

let solve_key =
  Domain.DLS.new_key (fun () -> { len = -1; yre = plane 0; yim = plane 0 })

let solve_scratch_for n =
  let s = Domain.DLS.get solve_key in
  if s.len <> n then begin
    s.len <- n;
    s.yre <- plane n;
    s.yim <- plane n
  end;
  s

(* Forward/back substitution in permuted coordinates, column-oriented:
   processing columns in order finalizes y.(k) before it is used. [k]
   is the number of interleaved right-hand sides (stride). *)
let substitute_stride s ~lre ~lim ~ure ~uim ~dre ~dim_ (yre : plane) (yim : plane) ~k =
  let n = s.pat.n in
  (* L y = Pb, unit diagonal *)
  for kk = 0 to n - 1 do
    let rk = kk * k in
    for lix = s.l_colptr.(kk) to s.l_colptr.(kk + 1) - 1 do
      let i = Array.unsafe_get s.l_rowind lix in
      let l_re = Array1.unsafe_get lre lix and l_im = Array1.unsafe_get lim lix in
      if l_re <> 0.0 || l_im <> 0.0 then begin
        let ri = i * k in
        for r = 0 to k - 1 do
          let v_re = Array1.unsafe_get yre (rk + r)
          and v_im = Array1.unsafe_get yim (rk + r) in
          Array1.unsafe_set yre (ri + r)
            (Array1.unsafe_get yre (ri + r) -. ((l_re *. v_re) -. (l_im *. v_im)));
          Array1.unsafe_set yim (ri + r)
            (Array1.unsafe_get yim (ri + r) -. ((l_re *. v_im) +. (l_im *. v_re)))
        done
      end
    done
  done;
  (* U x = y; the diagonal divide lands first, then the column's
     entries update the rows above. *)
  for j = n - 1 downto 0 do
    let rj = j * k in
    let p_re = Array1.unsafe_get dre j and p_im = Array1.unsafe_get dim_ j in
    if Float.abs p_re >= Float.abs p_im then begin
      let r = p_im /. p_re in
      let d = p_re +. (r *. p_im) in
      for c = 0 to k - 1 do
        let a_re = Array1.unsafe_get yre (rj + c)
        and a_im = Array1.unsafe_get yim (rj + c) in
        Array1.unsafe_set yre (rj + c) ((a_re +. (r *. a_im)) /. d);
        Array1.unsafe_set yim (rj + c) ((a_im -. (r *. a_re)) /. d)
      done
    end
    else begin
      let r = p_re /. p_im in
      let d = p_im +. (r *. p_re) in
      for c = 0 to k - 1 do
        let a_re = Array1.unsafe_get yre (rj + c)
        and a_im = Array1.unsafe_get yim (rj + c) in
        Array1.unsafe_set yre (rj + c) (((r *. a_re) +. a_im) /. d);
        Array1.unsafe_set yim (rj + c) (((r *. a_im) -. a_re) /. d)
      done
    end;
    for uix = s.u_colptr.(j) to s.u_colptr.(j + 1) - 1 do
      let i = Array.unsafe_get s.u_rowind uix in
      let u_re = Array1.unsafe_get ure uix and u_im = Array1.unsafe_get uim uix in
      if u_re <> 0.0 || u_im <> 0.0 then begin
        let ri = i * k in
        for r = 0 to k - 1 do
          let v_re = Array1.unsafe_get yre (rj + r)
          and v_im = Array1.unsafe_get yim (rj + r) in
          Array1.unsafe_set yre (ri + r)
            (Array1.unsafe_get yre (ri + r) -. ((u_re *. v_re) -. (u_im *. v_im)));
          Array1.unsafe_set yim (ri + r)
            (Array1.unsafe_get yim (ri + r) -. ((u_re *. v_im) +. (u_im *. v_re)))
        done
      end
    done
  done

let solve_into num ~(b : Bvec.t) ~(x : Bvec.t) =
  let s = num.sym in
  let n = s.pat.n in
  if Bvec.length b <> n || Bvec.length x <> n then
    invalid_arg "Csparse.solve_into: dimension mismatch";
  let sc = solve_scratch_for n in
  let yre = sc.yre and yim = sc.yim in
  for kk = 0 to n - 1 do
    let p = Array.unsafe_get s.roworder kk in
    Array1.unsafe_set yre kk (Array1.unsafe_get b.Bvec.re p);
    Array1.unsafe_set yim kk (Array1.unsafe_get b.Bvec.im p)
  done;
  substitute_stride s ~lre:num.lre ~lim:num.lim ~ure:num.ure ~uim:num.uim ~dre:num.dre
    ~dim_:num.dim_ yre yim ~k:1;
  for j = 0 to n - 1 do
    let c = Array.unsafe_get s.colorder j in
    Array1.unsafe_set x.Bvec.re c (Array1.unsafe_get yre j);
    Array1.unsafe_set x.Bvec.im c (Array1.unsafe_get yim j)
  done

(* Multi-RHS back-solve mirroring {!Cmat.Big.lu_solve_block_into}: [b]
   and [x] are n×k row-major blocks whose column r is the r-th
   right-hand side / solution, and per column the operation sequence is
   exactly {!solve_into}'s. Allocates its own permuted block — callers
   use this at cache-warming time, not in the per-point hot loop. *)
let solve_block_into num ~(b : Big.t) ~(x : Big.t) =
  let s = num.sym in
  let n = s.pat.n in
  let k = Big.cols b in
  if Big.rows b <> n || Big.rows x <> n || Big.cols x <> k then
    invalid_arg "Csparse.solve_block_into: dimension mismatch";
  if k > 0 then begin
    let bre = Big.re_plane b and bim = Big.im_plane b in
    let xre = Big.re_plane x and xim = Big.im_plane x in
    let yre = plane (n * k) and yim = plane (n * k) in
    for kk = 0 to n - 1 do
      let p = Array.unsafe_get s.roworder kk in
      let rk = kk * k and rp = p * k in
      for r = 0 to k - 1 do
        Array1.unsafe_set yre (rk + r) (Array1.unsafe_get bre (rp + r));
        Array1.unsafe_set yim (rk + r) (Array1.unsafe_get bim (rp + r))
      done
    done;
    substitute_stride s ~lre:num.lre ~lim:num.lim ~ure:num.ure ~uim:num.uim
      ~dre:num.dre ~dim_:num.dim_ yre yim ~k;
    for j = 0 to n - 1 do
      let c = Array.unsafe_get s.colorder j in
      let rj = j * k and rc = c * k in
      for r = 0 to k - 1 do
        Array1.unsafe_set xre (rc + r) (Array1.unsafe_get yre (rj + r));
        Array1.unsafe_set xim (rc + r) (Array1.unsafe_get yim (rj + r))
      done
    done
  end
