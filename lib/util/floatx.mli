(** Floating-point helpers shared across the project. *)

val approx_eq : ?rel:float -> ?abs:float -> float -> float -> bool
(** [approx_eq a b] is true when [a] and [b] are equal up to a relative
    tolerance [rel] (default 1e-9) or an absolute tolerance [abs]
    (default 1e-12), whichever is laxer. *)

val clamp : lo:float -> hi:float -> float -> float
(** [clamp ~lo ~hi x] restricts [x] to the closed interval [lo, hi].
    Requires [lo <= hi]. *)

val is_finite : float -> bool
(** True when the float is neither infinite nor NaN. *)

val log10_safe : float -> float
(** [log10_safe x] is [log10 x] for positive [x]; raises
    [Invalid_argument] otherwise. *)

val linspace : float -> float -> int -> float array
(** [linspace a b n] is [n] evenly spaced points from [a] to [b]
    inclusive. Requires [n >= 2]. *)

val logspace : float -> float -> int -> float array
(** [logspace a b n] is [n] logarithmically spaced points from [a] to
    [b] inclusive. Requires [0 < a], [0 < b], [n >= 2]. *)

val mean : float array -> float
(** Arithmetic mean; raises [Invalid_argument] on the empty array. *)

val fold_range : int -> init:'a -> f:('a -> int -> 'a) -> 'a
(** [fold_range n ~init ~f] folds [f] over [0 .. n-1]. *)
