(** A small chunked work-stealing scheduler over OCaml domains.

    One shared atomic cursor hands out index chunks; [jobs - 1] helper
    domains plus the calling domain drain it until the range is
    exhausted. Chunks keep the cursor contention low while the dynamic
    hand-out balances uneven per-index work (the classic failure mode
    of static striping on fault-simulation campaigns, where one view
    can be much more expensive than another).

    The body must be safe to run concurrently for distinct indices —
    the usual pattern is "each index writes its own slot of a
    pre-allocated array", which needs no further synchronization. *)

val for_ : ?jobs:int -> int -> (int -> unit) -> unit
(** [for_ ~jobs n f] runs [f i] for every [i] in [0 .. n-1].
    [jobs <= 1] (the default) runs sequentially in the calling domain,
    in index order. Exceptions raised by [f] in a helper domain are
    re-raised in the caller on join. *)

val map : ?jobs:int -> int -> (int -> 'a) -> 'a array
(** [map ~jobs n f] is [| f 0; ...; f (n-1) |], computed like {!for_}.
    The result is deterministic: slot [i] always holds [f i]. *)
