(** A small chunked work-stealing scheduler over OCaml domains.

    One shared atomic cursor hands out index chunks; [jobs - 1] helper
    domains plus the calling domain drain it until the range is
    exhausted. Chunks keep the cursor contention low while the dynamic
    hand-out balances uneven per-index work (the classic failure mode
    of static striping on fault-simulation campaigns, where one view
    can be much more expensive than another).

    The body must be safe to run concurrently for distinct indices —
    the usual pattern is "each index writes its own slot of a
    pre-allocated array", which needs no further synchronization. *)

val for_ : ?jobs:int -> int -> (int -> unit) -> unit
(** [for_ ~jobs n f] runs [f i] for every [i] in [0 .. n-1].
    [jobs <= 1] (the default) runs sequentially in the calling domain,
    in index order. [jobs] is clamped to
    [Domain.recommended_domain_count ()]: an OCaml 5 domain must join
    every stop-the-world minor collection, so running more domains
    than cores makes every GC sync wait on a descheduled worker and
    the whole campaign anti-scales.

    If [f] raises — in the calling domain or in a helper — the cursor
    is drained (workers stop claiming new chunks, in-flight chunks
    finish), every helper domain is joined, and then the exception
    recorded by the lowest-indexed failing worker is re-raised with
    its backtrace. No helper is ever left running against the shared
    buffers.

    When {!Obs.Metrics} is enabled, each worker counts the chunks it
    claimed ([parallel.chunks]) and its busy wall-clock
    ([parallel.worker_busy_s]); each worker's drain is an
    {!Obs.Trace} span ([parallel.worker]), so scheduler idle shows as
    gaps between lanes in the exported trace. *)

val map : ?jobs:int -> int -> (int -> 'a) -> 'a array
(** [map ~jobs n f] is [| f 0; ...; f (n-1) |], computed like {!for_}.
    The result is deterministic: slot [i] always holds [f i]. *)
