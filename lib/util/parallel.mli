(** A work-stealing scheduler over OCaml domains.

    Each worker (the calling domain plus [jobs - 1] helpers) owns a
    range of indices packed into a single atomic; the owner pops small
    chunks off the front of its own range — an uncontended CAS in the
    common case — and when it runs dry it steals the back half of the
    largest remaining range. Dynamic migration balances uneven
    per-index work (the classic failure mode of static striping on
    fault-simulation campaigns, where one view can be much more
    expensive than another) without funnelling every claim through one
    shared cursor.

    The body must be safe to run concurrently for distinct indices —
    the usual pattern is "each index writes its own slot of a
    pre-allocated array", which needs no further synchronization. *)

val effective_jobs : int -> int
(** [effective_jobs jobs] is the worker count {!for_} actually uses:
    [jobs] clamped to [Domain.recommended_domain_count ()] (and to at
    least 1). An OCaml 5 domain must join every stop-the-world minor
    collection, so running more domains than cores makes every GC sync
    wait on a descheduled worker and the whole campaign anti-scales.
    Exposed so benchmarks can normalize parallel efficiency by the
    worker count that really ran rather than the one requested. *)

val sequential_cutoff_ns : float
(** Workloads whose [est_ns] falls below this run inline on the
    calling domain: spawning helpers costs ~100µs each plus a GC-sync
    tax for their lifetime, which swamps small campaigns (the
    tow-thomas smoke campaign was {e slower} at jobs=4 than jobs=1
    before this cutoff existed). *)

val for_ : ?jobs:int -> ?est_ns:float -> int -> (int -> unit) -> unit
(** [for_ ~jobs n f] runs [f i] for every [i] in [0 .. n-1].
    [jobs <= 1] (the default) runs sequentially in the calling domain,
    in index order; [jobs] is clamped to {!effective_jobs}.

    [est_ns] is the caller's estimate of the {e total} work in the
    loop, in nanoseconds. When it is below {!sequential_cutoff_ns} the
    loop runs inline — sequentially, in index order — regardless of
    [jobs]. It also sizes the owner chunk: chunks target ~1 ms of
    estimated work each (clamped so every worker's initial slice still
    splits into at least 4 chunks for thieves), so cheap indexes are
    claimed in bulk instead of one CAS each. Callers that can size
    their work should pass it; omitting it preserves the old
    always-spawn, 8-chunks-per-worker behavior.

    If [f] raises — in the calling domain or in a helper — every range
    is drained (workers stop claiming new chunks; chunks and stolen
    ranges already claimed finish), every helper domain is joined, and
    then the exception recorded by the lowest-indexed failing worker
    is re-raised with its backtrace. No helper is ever left running
    against the shared buffers.

    When {!Obs.Metrics} is enabled, each worker counts the chunks it
    claimed ([parallel.chunks]), its successful steals
    ([parallel.steals]) and its busy wall-clock
    ([parallel.worker_busy_s]); each worker's drain is an
    {!Obs.Trace} span ([parallel.worker]), so scheduler idle shows as
    gaps between lanes in the exported trace. *)

val map : ?jobs:int -> ?est_ns:float -> int -> (int -> 'a) -> 'a array
(** [map ~jobs n f] is [| f 0; ...; f (n-1) |], computed like {!for_}.
    The result is deterministic: slot [i] always holds [f i]. *)
