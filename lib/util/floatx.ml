let approx_eq ?(rel = 1e-9) ?(abs = 1e-12) a b =
  let diff = Float.abs (a -. b) in
  diff <= abs || diff <= rel *. Float.max (Float.abs a) (Float.abs b)

let clamp ~lo ~hi x =
  assert (lo <= hi);
  if x < lo then lo else if x > hi then hi else x

let is_finite x = Float.is_finite x

let log10_safe x =
  if x <= 0.0 then invalid_arg "Floatx.log10_safe: non-positive argument"
  else log10 x

let linspace a b n =
  if n < 2 then invalid_arg "Floatx.linspace: need at least two points";
  let step = (b -. a) /. float_of_int (n - 1) in
  Array.init n (fun i -> a +. (float_of_int i *. step))

let logspace a b n =
  if a <= 0.0 || b <= 0.0 then
    invalid_arg "Floatx.logspace: bounds must be positive";
  let la = log10 a and lb = log10 b in
  Array.map (fun e -> 10.0 ** e) (linspace la lb n)

let mean xs =
  if Array.length xs = 0 then invalid_arg "Floatx.mean: empty array";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let fold_range n ~init ~f =
  let rec loop acc i = if i >= n then acc else loop (f acc i) (i + 1) in
  loop init 0
