let sequential n f =
  for i = 0 to n - 1 do
    f i
  done

let for_ ?(jobs = 1) n f =
  (* Never spawn more domains than the hardware can run: every OCaml 5
     domain must join every stop-the-world minor collection, so an
     oversubscribed domain that is descheduled by the OS stalls all
     the others at each GC sync — requesting jobs=4 on a smaller
     machine makes the campaign slower than jobs=1, not merely
     no faster. *)
  let jobs = Int.min jobs (Domain.recommended_domain_count ()) in
  if n <= 0 then ()
  else if jobs <= 1 || n = 1 then sequential n f
  else begin
    let jobs = Int.min jobs n in
    (* A few chunks per worker: big enough to amortize the atomic,
       small enough that a slow chunk cannot strand the tail. *)
    let chunk = Int.max 1 (n / (jobs * 4)) in
    let next = Atomic.make 0 in
    (* One failure slot per worker (slot 0 is the calling domain).
       Every worker traps its own exception so the join loop below
       always runs — a raise must never leak helper domains that are
       still writing into shared buffers. *)
    let failures = Array.make jobs None in
    let worker k () =
      let claimed = ref 0 in
      let t_busy = if Obs.Metrics.enabled () then Obs.Metrics.now () else 0.0 in
      (try
         let rec loop () =
           let start = Atomic.fetch_and_add next chunk in
           if start < n then begin
             incr claimed;
             let stop = Int.min n (start + chunk) in
             for i = start to stop - 1 do
               f i
             done;
             loop ()
           end
         in
         Obs.Trace.span "parallel.worker" loop
       with e ->
         failures.(k) <- Some (e, Printexc.get_raw_backtrace ());
         (* Drain the cursor so the other workers stop claiming new
            chunks instead of finishing a doomed campaign. *)
         Atomic.set next n);
      if Obs.Metrics.enabled () then begin
        Obs.Metrics.incr "parallel.chunks" ~by:!claimed;
        Obs.Metrics.observe "parallel.worker_busy_s" (Obs.Metrics.now () -. t_busy)
      end
    in
    let helpers = List.init (jobs - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1) ())) in
    worker 0 ();
    List.iter Domain.join helpers;
    (* Deterministic choice among racing failures: the lowest worker
       index that recorded one. *)
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      failures
  end

let map ?jobs n f =
  if n <= 0 then [||]
  else begin
    let results = Array.make n None in
    for_ ?jobs n (fun i -> results.(i) <- Some (f i));
    Array.map
      (function Some v -> v | None -> assert false (* for_ covers 0..n-1 *))
      results
  end
