let sequential n f =
  for i = 0 to n - 1 do
    f i
  done

let effective_jobs jobs =
  (* Never run more domains than the hardware can: every OCaml 5
     domain must join every stop-the-world minor collection, so an
     oversubscribed domain that is descheduled by the OS stalls all
     the others at each GC sync — requesting jobs=4 on a smaller
     machine makes the campaign slower than jobs=1, not merely
     no faster. *)
  Int.max 1 (Int.min jobs (Domain.recommended_domain_count ()))

(* Spawning helper domains costs ~100µs each plus a GC-sync tax for
   the rest of their lifetime; below this much total work the calling
   domain finishes faster alone. *)
let sequential_cutoff_ns = 5e6

(* Owner chunk hand-out targets about this much work per claim: big
   enough that the CAS and the thieves' range scans disappear next to
   the work itself, small enough that uneven per-index cost still
   migrates to idle workers. *)
let target_chunk_ns = 1e6

(* Without a cost estimate, fall back to the fixed 8-chunks-per-worker
   split; with one, size chunks by [target_chunk_ns] but never so
   coarse that a worker's initial slice is fewer than 4 chunks —
   stealing needs a divisible back half to take. Cheap indexes on
   small ranges (a few hundred sub-millisecond rows at jobs=4) used to
   get grain 1 here, and the per-index CAS plus steal-scan churn cost
   more than the rows themselves. *)
let grain_for ~jobs ?est_ns n =
  let balance_cap = Int.max 1 (n / (jobs * 4)) in
  match est_ns with
  | Some total when total > 0.0 ->
      let per_index = Float.max 1.0 (total /. float_of_int n) in
      Int.max 1 (Int.min balance_cap (int_of_float (target_chunk_ns /. per_index)))
  | _ -> Int.max 1 (n / (jobs * 8))

(* A worker's pending index range [lo, hi) packed into one immediate
   int — lo in the upper 31 bits, hi in the lower 31 — so both bounds
   move under a single CAS with no allocation. The owner pops small
   chunks from the front; thieves take the back half in one step. *)
let pack lo hi = (lo lsl 31) lor hi
let range_lo v = v lsr 31
let range_hi v = v land 0x7FFFFFFF
let max_n = 1 lsl 31

let for_ ?(jobs = 1) ?est_ns n f =
  if n >= max_n then invalid_arg "Parallel.for_: range too large";
  let jobs = Int.min (effective_jobs jobs) n in
  let tiny = match est_ns with Some e -> e < sequential_cutoff_ns | None -> false in
  if n <= 0 then ()
  else if jobs <= 1 || n = 1 || tiny then sequential n f
  else begin
    (* Work stealing over per-worker ranges. Each worker starts with an
       even slice; the owner pops [grain]-sized chunks off the front of
       its own range (an uncontended CAS in the common case) and, when
       empty, steals the back half of the largest remaining range. This
       keeps the hand-out dynamic — uneven per-index work migrates to
       idle workers — without funnelling every claim through one shared
       cursor. *)
    let grain = grain_for ~jobs ?est_ns n in
    let ranges =
      Array.init jobs (fun k -> Atomic.make (pack (k * n / jobs) ((k + 1) * n / jobs)))
    in
    let failed = Atomic.make false in
    (* One failure slot per worker (slot 0 is the calling domain).
       Every worker traps its own exception so the join loop below
       always runs — a raise must never leak helper domains that are
       still writing into shared buffers. *)
    let failures = Array.make jobs None in
    let pop_own k =
      let r = ranges.(k) in
      let rec go () =
        let v = Atomic.get r in
        let lo = range_lo v and hi = range_hi v in
        if lo >= hi then None
        else
          let stop = Int.min hi (lo + grain) in
          if Atomic.compare_and_set r v (pack stop hi) then Some (lo, stop) else go ()
      in
      go ()
    in
    (* Scan for the largest other range; [`Got] installs its back half
       as our own, [`Retry] lost a CAS race, [`Empty] means every range
       was empty at scan time (a concurrent thief may still be holding
       claimed work — that is its to finish, not ours to wait for). *)
    let try_steal k steals =
      let victim = ref (-1) and victim_v = ref 0 and best = ref 0 in
      for j = 0 to jobs - 1 do
        if j <> k then begin
          let v = Atomic.get ranges.(j) in
          let len = range_hi v - range_lo v in
          if len > !best then begin
            best := len;
            victim := j;
            victim_v := v
          end
        end
      done;
      if !victim < 0 then `Empty
      else begin
        let v = !victim_v in
        let lo = range_lo v and hi = range_hi v in
        let mid = hi - ((hi - lo + 1) / 2) in
        if Atomic.compare_and_set ranges.(!victim) v (pack lo mid) then begin
          incr steals;
          Atomic.set ranges.(k) (pack mid hi);
          `Got
        end
        else `Retry
      end
    in
    let worker k () =
      let claimed = ref 0 and steals = ref 0 in
      let t_busy = if Obs.Metrics.enabled () then Obs.Metrics.now () else 0.0 in
      (try
         let rec loop () =
           if not (Atomic.get failed) then
             match pop_own k with
             | Some (start, stop) ->
                 incr claimed;
                 for i = start to stop - 1 do
                   f i
                 done;
                 loop ()
             | None -> (
                 match try_steal k steals with
                 | `Got | `Retry -> loop ()
                 | `Empty -> ())
         in
         Obs.Trace.span "parallel.worker" loop
       with e ->
         failures.(k) <- Some (e, Printexc.get_raw_backtrace ());
         (* Drain every range so the other workers stop claiming new
            chunks instead of finishing a doomed campaign. *)
         Atomic.set failed true;
         Array.iter (fun r -> Atomic.set r 0) ranges);
      if Obs.Metrics.enabled () then begin
        Obs.Metrics.incr "parallel.chunks" ~by:!claimed;
        if !steals > 0 then Obs.Metrics.incr "parallel.steals" ~by:!steals;
        Obs.Metrics.observe "parallel.worker_busy_s" (Obs.Metrics.now () -. t_busy)
      end
    in
    let helpers =
      List.init (jobs - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1) ()))
    in
    worker 0 ();
    List.iter Domain.join helpers;
    (* Deterministic choice among racing failures: the lowest worker
       index that recorded one. *)
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      failures
  end

let map ?jobs ?est_ns n f =
  if n <= 0 then [||]
  else begin
    let results = Array.make n None in
    for_ ?jobs ?est_ns n (fun i -> results.(i) <- Some (f i));
    Array.map
      (function Some v -> v | None -> assert false (* for_ covers 0..n-1 *))
      results
  end
