let sequential n f =
  for i = 0 to n - 1 do
    f i
  done

let for_ ?(jobs = 1) n f =
  if n <= 0 then ()
  else if jobs <= 1 || n = 1 then sequential n f
  else begin
    let jobs = Int.min jobs n in
    (* A few chunks per worker: big enough to amortize the atomic,
       small enough that a slow chunk cannot strand the tail. *)
    let chunk = Int.max 1 (n / (jobs * 4)) in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let start = Atomic.fetch_and_add next chunk in
        if start < n then begin
          let stop = Int.min n (start + chunk) in
          for i = start to stop - 1 do
            f i
          done;
          loop ()
        end
      in
      loop ()
    in
    let helpers = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join helpers
  end

let map ?jobs n f =
  if n <= 0 then [||]
  else begin
    let results = Array.make n None in
    for_ ?jobs n (fun i -> results.(i) <- Some (f i));
    Array.map
      (function Some v -> v | None -> assert false (* for_ covers 0..n-1 *))
      results
  end
