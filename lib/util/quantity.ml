let is_digit c = c >= '0' && c <= '9'
let is_num_char c = is_digit c || c = '.' || c = '+' || c = '-' || c = 'e' || c = 'E'

(* Split "4.7kOhm" into the numeric prefix and the alphabetic tail.
   SPICE treats 'e' as part of the mantissa only when followed by a
   digit or sign, so "1e3" parses as 1000 while "1end" has tail "end". *)
let split_numeric s =
  let n = String.length s in
  let rec scan i =
    if i >= n then i
    else
      let c = s.[i] in
      if is_digit c || c = '.' then scan (i + 1)
      else if (c = '+' || c = '-') && i = 0 then scan (i + 1)
      else if
        (c = 'e' || c = 'E')
        && i + 1 < n
        && (is_digit s.[i + 1]
           || ((s.[i + 1] = '+' || s.[i + 1] = '-') && i + 2 < n && is_digit s.[i + 2]))
      then scan_exp (i + 1)
      else i
  and scan_exp i =
    (* after 'e': optional sign then digits *)
    let i = if i < n && (s.[i] = '+' || s.[i] = '-') then i + 1 else i in
    let rec digits j = if j < n && is_digit s.[j] then digits (j + 1) else j in
    digits i
  in
  let cut = scan 0 in
  (String.sub s 0 cut, String.sub s cut (n - cut))

let suffix_scale tail =
  let t = String.lowercase_ascii tail in
  let starts p = String.length t >= String.length p && String.sub t 0 (String.length p) = p in
  if t = "" then Some 1.0
  else if starts "meg" then Some 1e6
  else if starts "mil" then Some 25.4e-6
  else
    match t.[0] with
    | 'f' -> Some 1e-15
    | 'p' -> Some 1e-12
    | 'n' -> Some 1e-9
    | 'u' -> Some 1e-6
    | 'm' -> Some 1e-3
    | 'k' -> Some 1e3
    | 'g' -> Some 1e9
    | 't' -> Some 1e12
    | c when (c >= 'a' && c <= 'z') || c = '_' -> Some 1.0 (* bare unit like "ohm" *)
    | _ -> None

let parse s =
  let s = String.trim s in
  if s = "" then Error "empty value"
  else
    let num, tail = split_numeric s in
    if num = "" || not (String.exists is_num_char num) then
      Error (Printf.sprintf "no numeric prefix in %S" s)
    else
      match float_of_string_opt num with
      | None -> Error (Printf.sprintf "malformed number %S" num)
      | Some v -> (
          match suffix_scale tail with
          | Some scale -> Ok (v *. scale)
          | None -> Error (Printf.sprintf "unknown suffix %S" tail))

let parse_exn s =
  match parse s with Ok v -> v | Error msg -> invalid_arg ("Quantity.parse: " ^ msg)

let suffixes =
  [ (1e12, "t"); (1e9, "g"); (1e6, "meg"); (1e3, "k"); (1.0, "");
    (1e-3, "m"); (1e-6, "u"); (1e-9, "n"); (1e-12, "p"); (1e-15, "f") ]

let to_string v =
  if v = 0.0 then "0"
  else if not (Float.is_finite v) then Printf.sprintf "%g" v
  else
    let mag = Float.abs v in
    match List.find_opt (fun (scale, _) -> mag >= scale) suffixes with
    | Some (scale, suffix) when mag < 1e15 ->
        let scaled = v /. scale in
        (* %g keeps the representation short and exact enough for reparsing. *)
        Printf.sprintf "%g%s" scaled suffix
    | _ -> Printf.sprintf "%g" v
