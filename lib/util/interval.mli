(** Closed intervals on the real line and finite unions thereof.

    Used by the testability analysis to represent frequency regions
    (in log-frequency space) where a fault is detectable. *)

type t = { lo : float; hi : float }
(** A closed interval [lo, hi] with [lo <= hi]. *)

val make : float -> float -> t
(** [make lo hi] builds the interval; raises [Invalid_argument] when
    [lo > hi] or either bound is not finite. *)

val length : t -> float
(** [length i] is [i.hi -. i.lo]. *)

val contains : t -> float -> bool
(** [contains i x] is true when [i.lo <= x <= i.hi]. *)

val overlaps : t -> t -> bool
(** True when the two intervals share at least one point. *)

val intersect : t -> t -> t option
(** Intersection, when non-empty. *)

val hull : t -> t -> t
(** Smallest interval containing both arguments. *)

val pp : Format.formatter -> t -> unit

(** {1 Unions of intervals} *)

module Set : sig
  type interval := t

  type t
  (** A finite union of disjoint closed intervals, kept normalized
      (sorted, non-overlapping, non-adjacent merged). *)

  val empty : t
  val is_empty : t -> bool

  val of_intervals : interval list -> t
  (** Normalizing constructor: merges overlapping or touching
      intervals (touching up to a 1e-9 relative slack, so intervals
      produced by adjacent grid points coalesce despite rounding). *)

  val to_intervals : t -> interval list
  (** The disjoint intervals in increasing order. *)

  val add : interval -> t -> t
  val union : t -> t -> t
  val inter : t -> t -> t
  val measure : t -> float
  (** Total length of the union. *)

  val contains : t -> float -> bool
  val pp : Format.formatter -> t -> unit
end
