(** Closed intervals on the real line and finite unions thereof.

    Used by the testability analysis to represent frequency regions
    (in log-frequency space) where a fault is detectable. *)

type t = { lo : float; hi : float }
(** A closed interval [lo, hi] with [lo <= hi]. *)

val make : float -> float -> t
(** [make lo hi] builds the interval; raises [Invalid_argument] when
    [lo > hi] or either bound is not finite. *)

val length : t -> float
(** [length i] is [i.hi -. i.lo]. *)

val contains : t -> float -> bool
(** [contains i x] is true when [i.lo <= x <= i.hi]. *)

val overlaps : t -> t -> bool
(** True when the two intervals share at least one point. *)

val intersect : t -> t -> t option
(** Intersection, when non-empty. *)

val hull : t -> t -> t
(** Smallest interval containing both arguments. *)

val pp : Format.formatter -> t -> unit

(** {1 Extended interval arithmetic}

    Sound enclosures for the certification pass: every operation
    rounds its bounds outward by one ulp, bounds may be infinite, and
    any indeterminate form (inf - inf, 0 * inf, division through an
    interval containing zero, NaN input) widens to {!whole} rather
    than producing a NaN bound. Bounds are never NaN. *)

val whole : t
(** The whole extended real line, [[-inf, inf]] — the "don't know"
    element. *)

val point : float -> t
(** Degenerate interval [[x, x]]; {!whole} when [x] is NaN. *)

val is_bounded : t -> bool
(** True when both bounds are finite. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t

val mul : t -> t -> t
(** Endpoint products, outward-rounded; [0 * inf] widens to {!whole}. *)

val inv : t -> t
(** Reciprocal; {!whole} when the argument contains zero. *)

val div : t -> t -> t
(** [div a b] is {!whole} when [b] contains zero (including a bound
    exactly at zero) — division is never trusted near a pole. *)

val abs : t -> t
(** Absolute-value image, always a subset of [[0, inf]]; exact (no
    outward rounding — negation and max of floats are exact). *)

val sqr : t -> t
(** Square, range-aware: the result's lower bound is clamped at 0 for
    zero-straddling inputs. *)

val sqrt : t -> t
(** Square root of the non-negative part; the lower bound is clamped
    at 0. Raises [Invalid_argument] on intervals entirely below 0. *)

val scale : float -> t -> t

(** {1 Rectangular complex intervals}

    A box [re + i im] in the complex plane; the arithmetic is the
    usual rectangular complex interval arithmetic built from the
    outward-rounded real ops above. *)

module Complex_box : sig
  type interval := t

  type t = { re : interval; im : interval }

  val make : interval -> interval -> t
  val of_complex : Complex.t -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val mul : t -> t -> t
  val scale : float -> t -> t

  val abs : t -> interval
  (** Enclosure of the modulus [|z|] over the box; a subset of
      [[0, inf]]. *)

  val contains : t -> Complex.t -> bool
  val pp : Format.formatter -> t -> unit
end

(** {1 Unions of intervals} *)

module Set : sig
  type interval := t

  type t
  (** A finite union of disjoint closed intervals, kept normalized
      (sorted, non-overlapping, non-adjacent merged). *)

  val empty : t
  val is_empty : t -> bool

  val of_intervals : interval list -> t
  (** Normalizing constructor: merges overlapping or touching
      intervals (touching up to a 1e-9 relative slack, so intervals
      produced by adjacent grid points coalesce despite rounding). *)

  val to_intervals : t -> interval list
  (** The disjoint intervals in increasing order. *)

  val add : interval -> t -> t
  val union : t -> t -> t
  val inter : t -> t -> t
  val measure : t -> float
  (** Total length of the union. *)

  val contains : t -> float -> bool
  val pp : Format.formatter -> t -> unit
end
