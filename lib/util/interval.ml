type t = { lo : float; hi : float }

let make lo hi =
  if not (Float.is_finite lo && Float.is_finite hi) then
    invalid_arg "Interval.make: bounds must be finite";
  if lo > hi then invalid_arg "Interval.make: lo > hi";
  { lo; hi }

let length i = i.hi -. i.lo
let contains i x = i.lo <= x && x <= i.hi
let overlaps a b = a.lo <= b.hi && b.lo <= a.hi

let intersect a b =
  if overlaps a b then Some { lo = Float.max a.lo b.lo; hi = Float.min a.hi b.hi }
  else None

let hull a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }
let pp ppf i = Format.fprintf ppf "[%g, %g]" i.lo i.hi

module Set = struct
  type interval = t

  (* Invariant: sorted by [lo], pairwise disjoint and non-touching. *)
  type t = interval list

  let empty = []
  let is_empty s = s = []

  let of_intervals is =
    let sorted = List.sort (fun a b -> Float.compare a.lo b.lo) is in
    (* merge with a small relative slack so intervals that touch up to
       floating-point rounding coalesce *)
    let touches last i =
      i.lo <= last.hi +. (1e-9 *. Float.max 1.0 (Float.abs last.hi))
    in
    let merge acc i =
      match acc with
      | last :: rest when touches last i ->
          { last with hi = Float.max last.hi i.hi } :: rest
      | _ -> i :: acc
    in
    List.rev (List.fold_left merge [] sorted)

  let to_intervals s = s
  let add i s = of_intervals (i :: s)
  let union a b = of_intervals (a @ b)

  let inter a b =
    let pairwise i = List.filter_map (intersect i) b in
    of_intervals (List.concat_map pairwise a)

  let measure s = List.fold_left (fun acc i -> acc +. length i) 0.0 s
  let contains s x = List.exists (fun i -> contains i x) s

  let pp ppf s =
    Format.fprintf ppf "{%a}" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " u ") pp) s
end
