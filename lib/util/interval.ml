type t = { lo : float; hi : float }

let make lo hi =
  if not (Float.is_finite lo && Float.is_finite hi) then
    invalid_arg "Interval.make: bounds must be finite";
  if lo > hi then invalid_arg "Interval.make: lo > hi";
  { lo; hi }

let length i = i.hi -. i.lo
let contains i x = i.lo <= x && x <= i.hi
let overlaps a b = a.lo <= b.hi && b.lo <= a.hi

let intersect a b =
  if overlaps a b then Some { lo = Float.max a.lo b.lo; hi = Float.min a.hi b.hi }
  else None

let hull a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }
let pp ppf i = Format.fprintf ppf "[%g, %g]" i.lo i.hi

(* --- Extended (possibly unbounded) intervals with outward rounding.

   The certification pass needs a sound enclosure, not a tight one:
   every op rounds its bounds outward by one ulp and any NaN arising
   from an indeterminate form (inf - inf, 0 * inf, division through
   zero) widens to [whole]. Bounds are never NaN — [whole] plays the
   role of "don't know". [Float.pred neg_infinity] and
   [Float.succ infinity] are identities, so no extra guards are needed
   at the ends of the line. *)

let whole = { lo = neg_infinity; hi = infinity }
let point x = if Float.is_nan x then whole else { lo = x; hi = x }
let is_bounded i = Float.is_finite i.lo && Float.is_finite i.hi

let down x = if Float.is_nan x then neg_infinity else Float.pred x
let up x = if Float.is_nan x then infinity else Float.succ x

let out lo hi =
  if Float.is_nan lo || Float.is_nan hi then whole
  else { lo = down lo; hi = up hi }

let add a b = out (a.lo +. b.lo) (a.hi +. b.hi)
let neg a = { lo = -.a.hi; hi = -.a.lo }
let sub a b = out (a.lo -. b.hi) (a.hi -. b.lo)

let mul a b =
  let p1 = a.lo *. b.lo and p2 = a.lo *. b.hi in
  let p3 = a.hi *. b.lo and p4 = a.hi *. b.hi in
  (* Float.min/max propagate NaN, which [out] then widens to [whole];
     0 * inf therefore costs precision, never soundness. *)
  out
    (Float.min (Float.min p1 p2) (Float.min p3 p4))
    (Float.max (Float.max p1 p2) (Float.max p3 p4))

let inv b =
  if b.lo <= 0.0 && b.hi >= 0.0 then whole
  else out (1.0 /. b.hi) (1.0 /. b.lo)

let div a b = if b.lo <= 0.0 && b.hi >= 0.0 then whole else mul a (inv b)

let abs a =
  if a.lo >= 0.0 then a
  else if a.hi <= 0.0 then neg a
  else { lo = 0.0; hi = Float.max (-.a.lo) a.hi }

let sqr a =
  let m = abs a in
  let lo = Float.max 0.0 (down (m.lo *. m.lo)) and hi = up (m.hi *. m.hi) in
  if Float.is_nan lo || Float.is_nan hi then whole else { lo; hi }

let sqrt a =
  if a.hi < 0.0 then invalid_arg "Interval.sqrt: negative interval"
  else
    {
      lo = Float.max 0.0 (down (Float.sqrt (Float.max 0.0 a.lo)));
      hi = up (Float.sqrt a.hi);
    }

let scale c a =
  if c >= 0.0 then out (c *. a.lo) (c *. a.hi) else out (c *. a.hi) (c *. a.lo)

module Complex_box = struct
  type interval = t

  let radd = add
  let rsub = sub
  let rmul = mul
  let rneg = neg
  let rsqr = sqr
  let rsqrt = sqrt
  let rscale = scale
  let rcontains = contains
  let rpp = pp

  type t = { re : interval; im : interval }

  let make re im = { re; im }
  let of_complex (z : Complex.t) = { re = point z.Complex.re; im = point z.Complex.im }
  let add a b = { re = radd a.re b.re; im = radd a.im b.im }
  let sub a b = { re = rsub a.re b.re; im = rsub a.im b.im }
  let neg a = { re = rneg a.re; im = rneg a.im }

  let mul a b =
    {
      re = rsub (rmul a.re b.re) (rmul a.im b.im);
      im = radd (rmul a.re b.im) (rmul a.im b.re);
    }

  let scale c a = { re = rscale c a.re; im = rscale c a.im }
  let abs a = rsqrt (radd (rsqr a.re) (rsqr a.im))

  let contains a (z : Complex.t) =
    rcontains a.re z.Complex.re && rcontains a.im z.Complex.im

  let pp ppf a = Format.fprintf ppf "(%a + i%a)" rpp a.re rpp a.im
end

module Set = struct
  type interval = t

  (* Invariant: sorted by [lo], pairwise disjoint and non-touching. *)
  type t = interval list

  let empty = []
  let is_empty s = s = []

  let of_intervals is =
    let sorted = List.sort (fun a b -> Float.compare a.lo b.lo) is in
    (* merge with a small relative slack so intervals that touch up to
       floating-point rounding coalesce *)
    let touches last i =
      i.lo <= last.hi +. (1e-9 *. Float.max 1.0 (Float.abs last.hi))
    in
    let merge acc i =
      match acc with
      | last :: rest when touches last i ->
          { last with hi = Float.max last.hi i.hi } :: rest
      | _ -> i :: acc
    in
    List.rev (List.fold_left merge [] sorted)

  let to_intervals s = s
  let add i s = of_intervals (i :: s)
  let union a b = of_intervals (a @ b)

  let inter a b =
    let pairwise i = List.filter_map (intersect i) b in
    of_intervals (List.concat_map pairwise a)

  let measure s = List.fold_left (fun acc i -> acc +. length i) 0.0 s
  let contains s x = List.exists (fun i -> contains i x) s

  let pp ppf s =
    Format.fprintf ppf "{%a}" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " u ") pp) s
end
