(** Engineering-notation values, as used in SPICE netlists.

    Supports the classical suffixes: f, p, n, u, m, k, meg, g, t
    (case-insensitive), e.g. ["10k"] = 1e4, ["2.2u"] = 2.2e-6,
    ["1meg"] = 1e6. Trailing unit letters after the suffix are ignored,
    as in SPICE (["10kOhm"] parses as 1e4). *)

val parse : string -> (float, string) result
(** Parse an engineering-notation value; [Error msg] on malformed
    input. *)

val parse_exn : string -> float
(** Like {!parse} but raises [Invalid_argument]. *)

val to_string : float -> string
(** Render a value using the closest engineering suffix, e.g.
    [to_string 4700.0 = "4.7k"]. Values outside the suffix range fall
    back to scientific notation. *)
