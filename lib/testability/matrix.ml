module Netlist = Circuit.Netlist

type view = { label : string; netlist : Netlist.t; probe : Detect.probe }

type t = {
  views : view array;
  faults : Fault.t array;
  detect : bool array array;
  omega : float array array;
}

let build ?criterion ?(jobs = 1) grid views faults =
  Obs.Trace.span "matrix.build" @@ fun () ->
  let views = Array.of_list views in
  let faults = Array.of_list faults in
  let n = Array.length views and m = Array.length faults in
  let detect = Array.make_matrix n m false in
  let omega = Array.make_matrix n m 0.0 in
  let analyse_view i =
    let view = views.(i) in
    let results =
      Obs.Trace.span ("matrix.view " ^ view.label) @@ fun () ->
      Detect.analyze ?criterion view.probe grid view.netlist (Array.to_list faults)
    in
    List.iteri
      (fun j (r : Detect.result) ->
        detect.(i).(j) <- r.Detect.detectable;
        omega.(i).(j) <- r.Detect.omega_det)
      results
  in
  (* each view writes a distinct row, so the scheduler's workers share
     nothing but its cursor *)
  Util.Parallel.for_ ~jobs n analyse_view;
  { views; faults; detect; omega }

let n_views t = Array.length t.views
let n_faults t = Array.length t.faults

let detectable_anywhere t j =
  Util.Floatx.fold_range (n_views t) ~init:false ~f:(fun acc i -> acc || t.detect.(i).(j))

let max_fault_coverage t =
  let m = n_faults t in
  if m = 0 then 0.0
  else
    let covered =
      Util.Floatx.fold_range m ~init:0 ~f:(fun acc j ->
          if detectable_anywhere t j then acc + 1 else acc)
    in
    float_of_int covered /. float_of_int m

let coverage_of_view t i =
  let m = n_faults t in
  if m = 0 then 0.0
  else
    let covered =
      Util.Floatx.fold_range m ~init:0 ~f:(fun acc j ->
          if t.detect.(i).(j) then acc + 1 else acc)
    in
    float_of_int covered /. float_of_int m

let best_omega_det_over t views j =
  List.fold_left (fun acc i -> Float.max acc t.omega.(i).(j)) 0.0 views

let best_omega_det t j =
  best_omega_det_over t (List.init (n_views t) Fun.id) j

let average_best_omega_det ?views t =
  let views = Option.value views ~default:(List.init (n_views t) Fun.id) in
  let m = n_faults t in
  if m = 0 then 0.0
  else
    Util.Floatx.fold_range m ~init:0.0 ~f:(fun acc j ->
        acc +. best_omega_det_over t views j)
    /. float_of_int m

let column t j = Array.init (n_views t) (fun i -> t.detect.(i).(j))
let row t i = Array.copy t.detect.(i)
