module Netlist = Circuit.Netlist

type view = { label : string; netlist : Netlist.t; probe : Detect.probe }

type t = {
  views : view array;
  faults : Fault.t array;
  detect : bool array array;
  omega : float array array;
}

(* Task shape of the scoring phase: a few faults per task keeps the
   view's per-frequency LU factor hot across the faults that reuse it,
   and a bounded frequency block caps each task's working set while
   letting one cached factor serve a contiguous run of back-solves. *)
let fault_chunk = 8
let freq_block = 16

(* Rough per-point cost of a warmed rank-1 solve (two O(n²) passes:
   the update and the residual matvec) — feeds the scheduler's
   sequential cutoff, so only the order of magnitude matters. *)
let point_ns dim = (3.0 *. float_of_int (dim * dim)) +. 250.0

let build ?backend ?certified ?criterion ?(jobs = 1) grid views faults =
  Obs.Trace.span "matrix.build" @@ fun () ->
  let views = Array.of_list views in
  let faults = Array.of_list faults in
  let n = Array.length views and m = Array.length faults in
  let nf = Grid.n_points grid in
  (match certified with
  | None -> ()
  | Some cube ->
      if
        Array.length cube <> n
        || Array.exists
             (fun row ->
               Array.length row <> m
               || Array.exists
                    (function
                      | Some v -> Bytes.length v <> nf | None -> false)
                    row)
             cube
      then invalid_arg "Matrix.build: certified verdict cube shape mismatch");
  let cert i j =
    match certified with None -> None | Some cube -> cube.(i).(j)
  in
  let has_unknown v = Bytes.exists (fun b -> b = '?') v in
  (* Certified-cell accounting, sequential and ahead of the parallel
     phases so the counters are jobs-invariant by construction. *)
  (match certified with
  | None -> ()
  | Some cube ->
      Array.iter
        (fun row ->
          Array.iter
            (function
              | None -> ()
              | Some v ->
                  let proved = ref 0 in
                  Bytes.iter (fun b -> if b <> '?' then incr proved) v;
                  if !proved > 0 then begin
                    Obs.Metrics.incr ~by:!proved "certify.solves_skipped";
                    if !proved = nf then Obs.Metrics.incr "certify.cells_proved"
                  end)
            row)
        cube);
  let detect = Array.make_matrix n m false in
  let omega = Array.make_matrix n m 0.0 in
  let fault_list = Array.to_list faults in
  (* Phase 1 — per-view preparation: build each view's engine and
     thresholds, pre-warm its back-solve cache for the fault list
     (block back-solves, one per frequency), and classify every fault
     into an immutable plan — so phase 2 never mutates an engine.
     Parallel over views. The work estimate only needs the order of
     magnitude, so the element count stands in for the unknown MNA
     dimension. *)
  let prep_est =
    let dim_proxy i = List.length (Netlist.elements views.(i).netlist) in
    Util.Floatx.fold_range n ~init:0.0 ~f:(fun acc i ->
        let d = float_of_int (dim_proxy i) in
        acc +. (float_of_int nf *. d *. d *. (d +. (6.0 *. float_of_int m))))
  in
  let prepared =
    Util.Parallel.map ~jobs ~est_ns:prep_est n (fun i ->
        let view = views.(i) in
        Obs.Trace.span ("matrix.prepare " ^ view.label) @@ fun () ->
        (* Fully certified faults need neither a warmed back-solve
           cache nor a plan — their rows are never scored. *)
        let warm =
          if certified = None then fault_list
          else
            List.filteri
              (fun j _ ->
                match cert i j with Some v -> has_unknown v | None -> true)
              fault_list
        in
        let pv =
          Detect.prepare_view ?backend ?criterion ~warm view.probe grid
            view.netlist
        in
        let plans =
          Array.mapi
            (fun j fault ->
              match cert i j with
              | Some v when not (has_unknown v) -> None
              | _ -> Some (Detect.plan_fault pv fault))
            faults
        in
        (pv, plans))
  in
  (* Phase 2 — score the matrix over (view × fault-chunk ×
     frequency-block) tasks. Each task fills one frequency block of a
     handful of response rows; rows are per-(view, fault) planar
     buffers, so tasks touching the same row write disjoint index
     ranges and workers share nothing but the scheduler state, the
     read-only prepared views and plans. Work-stealing balances the
     uneven task costs (structural faults and full fallbacks cost
     O(n³) per point, warmed rank-1 solves O(n²)). *)
  let rows =
    Array.init n (fun _ ->
        Array.init m (fun _ ->
            (Array.make nf 0.0, Array.make nf 0.0, Bytes.make nf '\000')))
  in
  let n_fc = if m = 0 then 0 else (m + fault_chunk - 1) / fault_chunk in
  let n_fb = if nf = 0 then 0 else (nf + freq_block - 1) / freq_block in
  let score_est =
    Util.Floatx.fold_range n ~init:0.0 ~f:(fun acc i ->
        let pv, _ = prepared.(i) in
        acc +. (float_of_int (m * nf) *. point_ns (Detect.view_dim pv)))
  in
  Util.Parallel.for_ ~jobs ~est_ns:score_est
    (n * n_fc * n_fb)
    (fun item ->
      let i = item / (n_fc * n_fb) in
      let rem = item mod (n_fc * n_fb) in
      let c = rem / n_fb and bq = rem mod n_fb in
      let pv, plans = prepared.(i) in
      let lo = bq * freq_block in
      let hi = Int.min nf (lo + freq_block) in
      let j1 = Int.min m ((c * fault_chunk) + fault_chunk) - 1 in
      for j = c * fault_chunk to j1 do
        match plans.(j) with
        | None -> () (* fully certified: nothing to solve *)
        | Some plan -> (
            let re, im, ok = rows.(i).(j) in
            match cert i j with
            | None -> Detect.score_range pv plan ~lo ~hi ~re ~im ~ok
            | Some v ->
                (* Score only the maximal runs of uncertified points
                   inside this frequency block; certified slots keep
                   their (never-read) zero row entries. *)
                let p = ref lo in
                while !p < hi do
                  if Bytes.get v !p <> '?' then incr p
                  else begin
                    let q = ref !p in
                    while !q < hi && Bytes.get v !q = '?' do
                      incr q
                    done;
                    Detect.score_range pv plan ~lo:!p ~hi:!q ~re ~im ~ok;
                    p := !q
                  end
                done)
      done);
  (* Phase 3 — sequential reduce: each completed planar row becomes a
     detectability verdict. Cheap (interval bookkeeping), and keeping
     it sequential keeps the reduction order — hence the matrix —
     trivially jobs-deterministic. *)
  Obs.Trace.span "matrix.reduce" (fun () ->
      for i = 0 to n - 1 do
        let pv, _ = prepared.(i) in
        for j = 0 to m - 1 do
          let re, im, ok = rows.(i).(j) in
          let r =
            Detect.result_of_rows ?verdicts:(cert i j) pv grid faults.(j) ~re
              ~im ~ok
          in
          detect.(i).(j) <- r.Detect.detectable;
          omega.(i).(j) <- r.Detect.omega_det
        done
      done);
  { views; faults; detect; omega }

let n_views t = Array.length t.views
let n_faults t = Array.length t.faults

let detectable_anywhere t j =
  Util.Floatx.fold_range (n_views t) ~init:false ~f:(fun acc i -> acc || t.detect.(i).(j))

let max_fault_coverage t =
  let m = n_faults t in
  if m = 0 then 0.0
  else
    let covered =
      Util.Floatx.fold_range m ~init:0 ~f:(fun acc j ->
          if detectable_anywhere t j then acc + 1 else acc)
    in
    float_of_int covered /. float_of_int m

let coverage_of_view t i =
  let m = n_faults t in
  if m = 0 then 0.0
  else
    let covered =
      Util.Floatx.fold_range m ~init:0 ~f:(fun acc j ->
          if t.detect.(i).(j) then acc + 1 else acc)
    in
    float_of_int covered /. float_of_int m

let best_omega_det_over t views j =
  List.fold_left (fun acc i -> Float.max acc t.omega.(i).(j)) 0.0 views

let best_omega_det t j =
  best_omega_det_over t (List.init (n_views t) Fun.id) j

let average_best_omega_det ?views t =
  let views = Option.value views ~default:(List.init (n_views t) Fun.id) in
  let m = n_faults t in
  if m = 0 then 0.0
  else
    Util.Floatx.fold_range m ~init:0.0 ~f:(fun acc j ->
        acc +. best_omega_det_over t views j)
    /. float_of_int m

let column t j = Array.init (n_views t) (fun i -> t.detect.(i).(j))
let row t i = Array.copy t.detect.(i)
