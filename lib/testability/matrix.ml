module Netlist = Circuit.Netlist

type view = { label : string; netlist : Netlist.t; probe : Detect.probe }

type t = {
  views : view array;
  faults : Fault.t array;
  detect : bool array array;
  omega : float array array;
}

let build ?criterion ?(jobs = 1) grid views faults =
  Obs.Trace.span "matrix.build" @@ fun () ->
  let views = Array.of_list views in
  let faults = Array.of_list faults in
  let n = Array.length views and m = Array.length faults in
  let detect = Array.make_matrix n m false in
  let omega = Array.make_matrix n m 0.0 in
  let fault_list = Array.to_list faults in
  (* Phase 1 — per-view preparation: build each view's engine and
     thresholds and pre-warm its back-solve cache for the fault list,
     so phase 2 never mutates an engine. Parallel over views. *)
  let prepared =
    Util.Parallel.map ~jobs n (fun i ->
        let view = views.(i) in
        Obs.Trace.span ("matrix.prepare " ^ view.label) @@ fun () ->
        Detect.prepare_view ?criterion ~warm:fault_list view.probe grid view.netlist)
  in
  (* Phase 2 — score the (view, fault) matrix in per-(view, fault-chunk)
     work items: a campaign often has fewer views than workers want
     (#configurations < jobs×4), so chunking the fault axis restores
     load balance on large fault lists. Each item writes a disjoint
     span of one row, so workers share nothing but the cursor and the
     read-only prepared views; results land in fixed cells, keeping
     the matrix jobs-deterministic. *)
  let chunks_per_view =
    if n = 0 || m = 0 then 0 else Int.min m (Int.max 1 ((jobs * 4) / Int.max 1 n))
  in
  let chunk = if chunks_per_view = 0 then 1 else (m + chunks_per_view - 1) / chunks_per_view in
  let n_chunks = if chunks_per_view = 0 then 0 else (m + chunk - 1) / chunk in
  Util.Parallel.for_ ~jobs (n * n_chunks) (fun item ->
      let i = item / n_chunks and c = item mod n_chunks in
      let pv = prepared.(i) in
      let j0 = c * chunk in
      let j1 = Int.min m (j0 + chunk) - 1 in
      for j = j0 to j1 do
        let r = Detect.analyze_prepared pv grid faults.(j) in
        detect.(i).(j) <- r.Detect.detectable;
        omega.(i).(j) <- r.Detect.omega_det
      done);
  { views; faults; detect; omega }

let n_views t = Array.length t.views
let n_faults t = Array.length t.faults

let detectable_anywhere t j =
  Util.Floatx.fold_range (n_views t) ~init:false ~f:(fun acc i -> acc || t.detect.(i).(j))

let max_fault_coverage t =
  let m = n_faults t in
  if m = 0 then 0.0
  else
    let covered =
      Util.Floatx.fold_range m ~init:0 ~f:(fun acc j ->
          if detectable_anywhere t j then acc + 1 else acc)
    in
    float_of_int covered /. float_of_int m

let coverage_of_view t i =
  let m = n_faults t in
  if m = 0 then 0.0
  else
    let covered =
      Util.Floatx.fold_range m ~init:0 ~f:(fun acc j ->
          if t.detect.(i).(j) then acc + 1 else acc)
    in
    float_of_int covered /. float_of_int m

let best_omega_det_over t views j =
  List.fold_left (fun acc i -> Float.max acc t.omega.(i).(j)) 0.0 views

let best_omega_det t j =
  best_omega_det_over t (List.init (n_views t) Fun.id) j

let average_best_omega_det ?views t =
  let views = Option.value views ~default:(List.init (n_views t) Fun.id) in
  let m = n_faults t in
  if m = 0 then 0.0
  else
    Util.Floatx.fold_range m ~init:0.0 ~f:(fun acc j ->
        acc +. best_omega_det_over t views j)
    /. float_of_int m

let column t j = Array.init (n_views t) (fun i -> t.detect.(i).(j))
let row t i = Array.copy t.detect.(i)
