module Netlist = Circuit.Netlist
module Element = Circuit.Element

type stats = {
  samples : int;
  component_tol : float;
  max_dev : float array;
  mean_dev : float array;
  per_sample_peak : float array;
}

let drift_all rng ~component_tol netlist =
  List.fold_left
    (fun acc e ->
      let factor = 1.0 +. (component_tol *. ((Random.State.float rng 2.0) -. 1.0)) in
      Netlist.map_value ~name:(Element.name e) ~f:(fun v -> v *. factor) acc)
    netlist (Netlist.passives netlist)

let run ?(seed = 42) ?(samples = 200) ?jobs ~component_tol probe grid netlist =
  if samples <= 0 then invalid_arg "Montecarlo.run: samples must be positive";
  Obs.Trace.span "montecarlo.run" @@ fun () ->
  let rng = Random.State.make [| seed |] in
  let nominal = Detect.nominal_response probe grid netlist in
  let n = Grid.n_points grid in
  let max_dev = Array.make n 0.0 in
  let sum_dev = Array.make n 0.0 in
  let per_sample_peak = Array.make samples 0.0 in
  (* Draw every sample netlist sequentially so the RNG stream — and
     hence the result — is independent of the worker count, then sweep
     them on the scheduler and reduce sequentially in sample order. *)
  let drifted = Array.make samples netlist in
  Obs.Trace.span "montecarlo.draw" (fun () ->
      for s = 0 to samples - 1 do
        drifted.(s) <- drift_all rng ~component_tol netlist
      done);
  let deviations =
    (* One sweep per sample: nf LU factorizations of the MNA system —
       the element count stands in for the dimension; the estimate
       only feeds the scheduler's sequential cutoff. *)
    let est_ns =
      let d = float_of_int (List.length (Netlist.elements netlist)) in
      float_of_int (samples * n) *. d *. d *. d
    in
    Obs.Trace.span "montecarlo.sweep" (fun () ->
        Util.Parallel.map ?jobs ~est_ns samples (fun s ->
            let response = Detect.nominal_response probe grid drifted.(s) in
            Detect.response_deviation ~nominal ~faulty:response))
  in
  Obs.Trace.span "montecarlo.reduce" (fun () ->
      for s = 0 to samples - 1 do
        let peak = ref 0.0 in
        Array.iteri
          (fun i d ->
            max_dev.(i) <- Float.max max_dev.(i) d;
            sum_dev.(i) <- sum_dev.(i) +. d;
            peak := Float.max !peak d)
          deviations.(s);
        per_sample_peak.(s) <- !peak
      done);
  {
    samples;
    component_tol;
    max_dev;
    mean_dev = Array.map (fun s -> s /. float_of_int samples) sum_dev;
    per_sample_peak;
  }

let false_alarm_rate stats ~epsilon =
  let rejected =
    Array.fold_left
      (fun acc peak -> if peak > epsilon then acc + 1 else acc)
      0 stats.per_sample_peak
  in
  float_of_int rejected /. float_of_int stats.samples
