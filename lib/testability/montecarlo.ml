module Netlist = Circuit.Netlist
module Element = Circuit.Element

type stats = {
  samples : int;
  component_tol : float;
  max_dev : float array;
  mean_dev : float array;
  per_sample_peak : float array;
}

let drift_all rng ~component_tol netlist =
  List.fold_left
    (fun acc e ->
      let factor = 1.0 +. (component_tol *. ((Random.State.float rng 2.0) -. 1.0)) in
      Netlist.map_value ~name:(Element.name e) ~f:(fun v -> v *. factor) acc)
    netlist (Netlist.passives netlist)

let run ?(seed = 42) ?(samples = 200) ?jobs ~component_tol probe grid netlist =
  if samples <= 0 then invalid_arg "Montecarlo.run: samples must be positive";
  Obs.Trace.span "montecarlo.run" @@ fun () ->
  let rng = Random.State.make [| seed |] in
  let nominal = Detect.nominal_response probe grid netlist in
  let n = Grid.n_points grid in
  let max_dev = Array.make n 0.0 in
  let sum_dev = Array.make n 0.0 in
  let per_sample_peak = Array.make samples 0.0 in
  (* Draw every sample netlist sequentially so the RNG stream — and
     hence the result — is independent of the worker count, then sweep
     them on the scheduler and reduce sequentially in sample order. *)
  let drifted = Array.make samples netlist in
  Obs.Trace.span "montecarlo.draw" (fun () ->
      for s = 0 to samples - 1 do
        drifted.(s) <- drift_all rng ~component_tol netlist
      done);
  let deviations =
    (* One sweep per sample: nf LU factorizations of the MNA system —
       the element count stands in for the dimension; the estimate
       only feeds the scheduler's sequential cutoff. *)
    let est_ns =
      let d = float_of_int (List.length (Netlist.elements netlist)) in
      float_of_int (samples * n) *. d *. d *. d
    in
    Obs.Trace.span "montecarlo.sweep" (fun () ->
        Util.Parallel.map ?jobs ~est_ns samples (fun s ->
            let response = Detect.nominal_response probe grid drifted.(s) in
            Detect.response_deviation ~nominal ~faulty:response))
  in
  Obs.Trace.span "montecarlo.reduce" (fun () ->
      for s = 0 to samples - 1 do
        let peak = ref 0.0 in
        Array.iteri
          (fun i d ->
            max_dev.(i) <- Float.max max_dev.(i) d;
            sum_dev.(i) <- sum_dev.(i) +. d;
            peak := Float.max !peak d)
          deviations.(s);
        per_sample_peak.(s) <- !peak
      done);
  {
    samples;
    component_tol;
    max_dev;
    mean_dev = Array.map (fun s -> s /. float_of_int samples) sum_dev;
    per_sample_peak;
  }

type coverage = {
  samples : int;
  strata : int;
  component_tol : float;
  epsilon : float;
  boundary_radius : float;
  stratum_samples : int array;
  stratum_accept : float array;
  worst_case : float;
  average_case : float;
}

(* One draw on the shell of ∞-norm radius [radius] of the tolerance
   cube: a uniform direction normalized to ∞-norm 1, scaled by the
   radius. [drift_all] above samples the cube's interior uniformly;
   this samples a chosen shell, which is what the stratified coverage
   estimator needs. *)
let drift_directed rng ~component_tol ~radius netlist =
  let passives = Netlist.passives netlist in
  let n = List.length passives in
  if n = 0 then netlist
  else begin
    let u = Array.make n 0.0 in
    for i = 0 to n - 1 do
      u.(i) <- Random.State.float rng 2.0 -. 1.0
    done;
    let mx = Array.fold_left (fun a x -> Float.max a (Float.abs x)) 0.0 u in
    if mx = 0.0 then u.(0) <- 1.0;
    let mx = Float.max mx 1e-300 in
    let _, drifted =
      List.fold_left
        (fun (i, acc) e ->
          let factor = 1.0 +. (component_tol *. radius *. (u.(i) /. mx)) in
          ( i + 1,
            Netlist.map_value ~name:(Element.name e)
              ~f:(fun v -> v *. factor)
              acc ))
        (0, netlist) passives
    in
    drifted
  end

let coverage_run ?(seed = 42) ?(samples = 200) ?(strata = 8) ?jobs ~component_tol
    ~epsilon probe grid netlist =
  if strata <= 0 then invalid_arg "Montecarlo.coverage_run: strata must be positive";
  if samples < 2 * strata then
    invalid_arg "Montecarlo.coverage_run: samples must be at least 2*strata";
  if epsilon <= 0.0 then
    invalid_arg "Montecarlo.coverage_run: epsilon must be positive";
  Obs.Trace.span "montecarlo.coverage" @@ fun () ->
  let rng = Random.State.make [| seed |] in
  let nominal = Detect.nominal_response probe grid netlist in
  let n = Grid.n_points grid in
  let est_ns count =
    let d = float_of_int (List.length (Netlist.elements netlist)) in
    float_of_int (count * n) *. d *. d *. d
  in
  let peak_of drifted_netlist =
    let response = Detect.nominal_response probe grid drifted_netlist in
    let dev = Detect.response_deviation ~nominal ~faulty:response in
    Array.fold_left Float.max 0.0 dev
  in
  (* Phase 1: probe the full-spread shell (radius 1) to locate the ε
     boundary. Deviation scales near-linearly with the spread radius
     for small tolerances, so the radius at which a typical draw first
     crosses ε is about ε divided by the full-spread peak. *)
  let n_probe = Int.max 4 (Int.min 16 (samples / 16)) in
  let probes = Array.make n_probe netlist in
  Obs.Trace.span "montecarlo.coverage_draw" (fun () ->
      for s = 0 to n_probe - 1 do
        probes.(s) <- drift_directed rng ~component_tol ~radius:1.0 netlist
      done);
  let probe_peaks =
    Obs.Trace.span "montecarlo.coverage_probe" (fun () ->
        Util.Parallel.map ?jobs ~est_ns:(est_ns n_probe) n_probe (fun s ->
            peak_of probes.(s)))
  in
  let full_peak = Array.fold_left Float.max 0.0 probe_peaks in
  let boundary_radius =
    if full_peak <= 0.0 then 1.0
    else
      Float.min 1.0
        (Float.max (1.0 /. float_of_int strata) (epsilon /. full_peak))
  in
  (* Phase 2: allocate the remaining draws over the radius strata,
     steered toward the stratum holding the boundary — that is where
     the accept/reject verdict actually varies; deep-interior and
     far-exterior shells are near-deterministic and get the floor of
     one draw each. *)
  let remaining = samples - n_probe in
  let weights =
    Array.init strata (fun s ->
        let center = (float_of_int s +. 0.5) /. float_of_int strata in
        1.0
        /. (1.0 +. (float_of_int strata *. Float.abs (center -. boundary_radius))))
  in
  let wsum = Array.fold_left ( +. ) 0.0 weights in
  let alloc =
    Array.map
      (fun w ->
        Int.max 1 (int_of_float (float_of_int remaining *. w /. wsum)))
      weights
  in
  let boundary_stratum =
    Int.min (strata - 1)
      (Int.max 0 (int_of_float (boundary_radius *. float_of_int strata)))
  in
  let allocated = Array.fold_left ( + ) 0 alloc in
  alloc.(boundary_stratum) <-
    Int.max 1 (alloc.(boundary_stratum) + remaining - allocated);
  let total = Array.fold_left ( + ) 0 alloc in
  let draws = Array.make total netlist in
  let stratum_of = Array.make total 0 in
  Obs.Trace.span "montecarlo.coverage_draw" (fun () ->
      let idx = ref 0 in
      for s = 0 to strata - 1 do
        let lo = float_of_int s /. float_of_int strata in
        let hi = float_of_int (s + 1) /. float_of_int strata in
        for _ = 1 to alloc.(s) do
          let radius = lo +. ((hi -. lo) *. Random.State.float rng 1.0) in
          draws.(!idx) <- drift_directed rng ~component_tol ~radius netlist;
          stratum_of.(!idx) <- s;
          incr idx
        done
      done);
  let peaks =
    Obs.Trace.span "montecarlo.coverage_sweep" (fun () ->
        Util.Parallel.map ?jobs ~est_ns:(est_ns total) total (fun s ->
            peak_of draws.(s)))
  in
  (* Sequential reduce in draw order; the probe draws sit on the outer
     surface of the outermost shell and sharpen its estimate for free. *)
  let count = Array.make strata 0 in
  let accepted = Array.make strata 0 in
  Array.iter
    (fun peak ->
      count.(strata - 1) <- count.(strata - 1) + 1;
      if peak <= epsilon then accepted.(strata - 1) <- accepted.(strata - 1) + 1)
    probe_peaks;
  for s = 0 to total - 1 do
    let st = stratum_of.(s) in
    count.(st) <- count.(st) + 1;
    if peaks.(s) <= epsilon then accepted.(st) <- accepted.(st) + 1
  done;
  let stratum_accept =
    Array.init strata (fun s ->
        float_of_int accepted.(s) /. float_of_int (Int.max 1 count.(s)))
  in
  let worst_case = stratum_accept.(strata - 1) in
  let dims = List.length (Netlist.passives netlist) in
  let average_case =
    if dims = 0 then worst_case
    else begin
      (* Shell volume fractions of the ∞-norm ball: ((s+1)/K)^d - (s/K)^d.
         With many passives the outer shells dominate, as they should —
         a uniform cube draw almost surely lands near the surface. *)
      let acc = ref 0.0 in
      for s = 0 to strata - 1 do
        let outer = (float_of_int (s + 1) /. float_of_int strata) ** float_of_int dims in
        let inner = (float_of_int s /. float_of_int strata) ** float_of_int dims in
        acc := !acc +. ((outer -. inner) *. stratum_accept.(s))
      done;
      !acc
    end
  in
  {
    samples = n_probe + total;
    strata;
    component_tol;
    epsilon;
    boundary_radius;
    stratum_samples = count;
    stratum_accept;
    worst_case;
    average_case;
  }

let false_alarm_rate stats ~epsilon =
  let rejected =
    Array.fold_left
      (fun acc peak -> if peak > epsilon then acc + 1 else acc)
      0 stats.per_sample_peak
  in
  float_of_int rejected /. float_of_int stats.samples
