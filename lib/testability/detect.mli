module Netlist := Circuit.Netlist

(** Fault detectability analysis (paper Definitions 1 and 2).

    For each fault, the fault-free and faulty frequency responses are
    compared point-wise on a grid. A fault is {e detectable} when its
    response deviation exceeds a threshold at some frequency; its
    {e ω-detectability} is the log-frequency measure of the region
    where it does, normalized by the full grid width.

    Criteria combine a deviation metric with a threshold model:
    - {!Fixed_tolerance} is the paper's Definition 1 verbatim — the
      relative magnitude deviation against a frequency-independent ε;
    - {!Process_envelope} refines the paper's stated intent for ε
      ("take into account possible fluctuations in the process
      environment"): at each frequency the threshold is the worst-case
      deviation a {e good} circuit can exhibit when every component
      drifts by the process tolerance, plus a measurement floor.
      Reconfiguration then helps for a structural reason the fixed-ε
      model cannot express: follower-mode opamps isolate sub-networks,
      which both shrinks the good-circuit envelope and amplifies the
      fault's signature;
    - {!Phase_fixed} / {!Phase_envelope} are the same two models on the
      phase response (radians) — an extension for phase-sensitive test
      setups;
    - {!Any_of} declares a fault detectable wherever any sub-criterion
      fires (region union), e.g. magnitude-or-phase testing.

    Every criterion is subject to the {e measurement floor}: a grid
    point whose nominal response magnitude falls below the view's floor
    ({!measurement_mask} — 1e-12 of the view's peak response, with an
    absolute backstop) has no usable reference, so its relative
    deviation is a ratio of floating-point residues and any verdict
    computed from it would be numerical noise, not testability. Such
    points are {e undetectable by definition} in every scoring path —
    a reconfiguration that disconnects the probed output yields an
    all-['u'] row deterministically instead of verdict flicker (DESIGN
    §15). *)

type probe = { source : string; output : string }
(** Where the test stimulus enters and where the response is read. *)

type criterion =
  | Fixed_tolerance of float
      (** Definition 1: detectable where |ΔT|/|T| > ε. *)
  | Process_envelope of { component_tol : float; floor : float }
      (** Detectable where |ΔT|/|T| exceeds the linear worst-case
          good-circuit envelope plus [floor]. *)
  | Phase_fixed of float
      (** Detectable where the wrapped phase deviation exceeds the
          given angle (radians). *)
  | Phase_envelope of { component_tol : float; floor_rad : float }
      (** Envelope model on the phase deviation. *)
  | Any_of of criterion list
      (** Union of the sub-criteria's detectability regions. *)

type result = {
  fault : Fault.t;
  detectable : bool;  (** Definition 1. *)
  omega_det : float;  (** Definition 2, in [0, 1]. *)
  regions : Util.Interval.Set.t;
      (** Detectability region Ω_detection, in log10(Hz) coordinates. *)
}

val default_tolerance : float
(** ε = 0.10, the paper's setting. *)

val default_criterion : criterion
(** [Fixed_tolerance default_tolerance]. *)

val response_deviation : nominal:Complex.t array -> faulty:Complex.t array -> float array
(** Point-wise relative magnitude deviation | |Tf| - |T0| | / |T0|.
    Infinite when the nominal response is exactly zero at a point and
    the faulty one is not. *)

val phase_deviation : nominal:Complex.t array -> faulty:Complex.t array -> float array
(** Point-wise wrapped phase difference |∠Tf - ∠T0| in [0, π]. *)

val nominal_response : probe -> Grid.t -> Netlist.t -> Complex.t array
(** The fault-free sweep; exposed so callers can reuse it across many
    faults. *)

type prepared
(** A criterion instantiated for one circuit view: per-frequency
    thresholds (envelope criteria cost one sweep per passive
    component), reusable across the whole fault list of that view. *)

val prepare :
  ?backend:Fastsim.backend ->
  criterion -> probe -> Grid.t -> Netlist.t -> nominal:Complex.t array -> prepared

val analyze_fault :
  ?backend:Fastsim.backend ->
  ?criterion:criterion ->
  ?nominal:Complex.t array ->
  ?prepared:prepared ->
  probe -> Grid.t -> Netlist.t -> Fault.t -> result
(** Simulate one fault. [nominal] and [prepared] avoid recomputation
    when analyzing many faults of one view ([prepared] must come from
    the same criterion/view). A frequency where the faulty circuit has
    no solution (singular system) counts as detectable — the response
    is wildly wrong, not merely deviated — unless the point sits below
    the measurement floor ({!measurement_mask}), which overrides
    everything. *)

type prepared_view
(** One circuit view readied for a fault campaign: the fault-simulation
    engine, its nominal response and the instantiated thresholds. *)

val prepare_view :
  ?backend:Fastsim.backend ->
  ?criterion:criterion ->
  ?warm:Fault.t list ->
  probe -> Grid.t -> Netlist.t -> prepared_view
(** Build the engine and thresholds for one view (default criterion
    {!default_criterion}). When [warm] is given, the engine's
    back-solve cache is prepopulated for those faults
    ({!Fastsim.warm_cache}) so that {!analyze_prepared} calls never
    mutate the engine and the view can be scored from several domains
    concurrently. Raises like {!analyze}. *)

val analyze_prepared : prepared_view -> Grid.t -> Fault.t -> result
(** Score one fault against a prepared view. Thread-safe once the view
    was prepared with a [warm] list containing the fault. *)

val view_dim : prepared_view -> int
(** The view engine's MNA dimension ({!Fastsim.dim}) — for sizing
    campaign work estimates. *)

val view_uses_sparse : prepared_view -> bool
(** Whether the view's engine factored through the sparse back-end
    ({!Fastsim.uses_sparse}). *)

val plan_fault : prepared_view -> Fault.t -> Fastsim.plan
(** Classify and prepare one fault against the view's engine
    ({!Fastsim.plan_of}); build each (view, fault) plan exactly once.
    Raises {!Fault.Unknown_element} when the fault's element is
    absent. *)

val score_range :
  prepared_view ->
  Fastsim.plan ->
  lo:int ->
  hi:int ->
  re:float array ->
  im:float array ->
  ok:Bytes.t ->
  unit
(** Fill grid slots [lo .. hi-1] of one fault's planar response row —
    {!Fastsim.response_range_into} on the view's engine. Disjoint
    ranges of one row may be filled concurrently. *)

val result_of_rows :
  ?verdicts:Bytes.t ->
  prepared_view ->
  Grid.t ->
  Fault.t ->
  re:float array ->
  im:float array ->
  ok:Bytes.t ->
  result
(** Reduce one completed planar response row to a {!result}: the same
    deviation/threshold comparisons as {!analyze_prepared} (an
    [ok]=['\000'] point counts as detectable, like a [None] response,
    except below the measurement floor where the point is
    undetectable by definition). When [verdicts] is given, a point whose byte is ['d']
    (certified detectable) or ['u'] (certified undetectable) takes
    that verdict without consulting the row — such points need never
    have been scored; ['?'] bytes fall through to the numeric
    comparison. *)

val point_verdict :
  prepared_view -> re:float array -> im:float array -> ok:Bytes.t -> int -> bool
(** The verdict of one scored grid point: [true] (detectable) when the
    point's solve failed ([ok] byte ['\000']) or its deviation exceeds
    some prepared threshold — exactly the per-point comparison inside
    {!result_of_rows}, exposed so a grid-subset driver (the adaptive
    campaign) can turn individually solved points into verdict bytes
    that reduce through {!result_of_verdicts} bitwise-identically. The
    slot [i] must have been filled by {!score_range}. *)

val point_margin :
  prepared_view -> re:float array -> im:float array -> ok:Bytes.t -> int -> float
(** The verdict's strength at one scored grid point, in nepers: the
    natural log of the worst deviation-to-threshold ratio across the
    prepared criteria. Positive exactly when {!point_verdict} is
    [true], except for a failed solve (verdict [true]) which returns
    [nan] — a refinement driver must treat such a point as carrying no
    margin information ([-∞] marks a zero deviation or a point below
    the measurement floor). The adaptive driver steers refinement with
    it — an interval whose endpoint margins are jointly far from zero
    relative to its width cannot hide a threshold crossing under the
    driver's slope bound. Steering only: verdicts always come from
    {!point_verdict}. *)

val steering_profiles : prepared_view -> float array list
(** Per prepared sub-criterion, the statically known part of the
    {!point_margin} log at every grid point: [-log threshold], plus
    [-log |H₀|] for magnitude deviations (they normalize by the
    nominal). The residual — the margin minus its profile — moves as
    slowly as the faulty response itself, so a refinement driver can
    bound margin excursions by a response slope bound {e plus} the
    profile's exactly-known variation. [-∞]/[+∞] entries mark
    zero-threshold points or points below the measurement floor (a
    notch, a dead band), where the numeric margin is meaningless or
    moves arbitrarily fast — the infinite profile variation forces a
    driver to refine into such a region rather than skip across it.
    Do not mutate the returned arrays. *)

val measurement_mask : Complex.t array -> Bytes.t
(** The measurement floor of a nominal response row: byte ['\001'] at
    every grid point whose nominal magnitude falls below
    [max (1e-12 × peak, 1e-13)]. Those points have no usable reference
    — every criterion declares them undetectable by definition, in
    every scoring path ({!analyze}, {!result_of_rows},
    {!point_verdict}), failed solves included. The verdict there is
    therefore a {e static} ['u']: a campaign driver may fill it without
    solving, and {!prepare_view} clamps the prepared thresholds to
    [+∞] (and steering to [-∞]) accordingly. ['\000'] everywhere on a
    healthy view. *)

val view_measurement_mask : prepared_view -> Bytes.t
(** {!measurement_mask} of the view's nominal response, computed once
    at preparation time. Do not mutate. *)

val result_of_verdicts : Grid.t -> Fault.t -> Bytes.t -> result
(** Reduce a fully certified verdict row (every byte ['d'] or ['u'],
    one per grid point) to a {!result} without any simulation — the
    same interval bookkeeping as {!result_of_rows}. Raises
    [Invalid_argument] on a length mismatch or a residual ['?']
    byte. *)

val analyze :
  ?backend:Fastsim.backend ->
  ?criterion:criterion -> probe -> Grid.t -> Netlist.t -> Fault.t list -> result list
(** Analyze a fault list against one circuit, sharing the nominal sweep
    and prepared thresholds ([prepare_view] + [analyze_prepared]). *)

val minimal_detectable_deviation :
  ?backend:Fastsim.backend ->
  ?criterion:criterion -> ?max_factor:float ->
  probe -> Grid.t -> Netlist.t -> element:string -> float option
(** The smallest multiplicative deviation factor above 1 whose fault on
    [element] is detectable, found by bisection on the log-factor (20
    iterations, ~1e-4 relative resolution); [None] when even
    [max_factor] (default 10, i.e. +900 %) stays undetected. Assumes
    detectability is monotone in the deviation size, which holds for
    the circuits of this library away from exact response crossings. *)

val fault_coverage : result list -> float
(** Fraction of faults with [detectable = true]; 0 on the empty list. *)

val average_omega_det : result list -> float
(** Mean ω-detectability over the fault list; 0 on the empty list. *)
