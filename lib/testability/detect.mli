module Netlist := Circuit.Netlist

(** Fault detectability analysis (paper Definitions 1 and 2).

    For each fault, the fault-free and faulty frequency responses are
    compared point-wise on a grid. A fault is {e detectable} when its
    response deviation exceeds a threshold at some frequency; its
    {e ω-detectability} is the log-frequency measure of the region
    where it does, normalized by the full grid width.

    Criteria combine a deviation metric with a threshold model:
    - {!Fixed_tolerance} is the paper's Definition 1 verbatim — the
      relative magnitude deviation against a frequency-independent ε;
    - {!Process_envelope} refines the paper's stated intent for ε
      ("take into account possible fluctuations in the process
      environment"): at each frequency the threshold is the worst-case
      deviation a {e good} circuit can exhibit when every component
      drifts by the process tolerance, plus a measurement floor.
      Reconfiguration then helps for a structural reason the fixed-ε
      model cannot express: follower-mode opamps isolate sub-networks,
      which both shrinks the good-circuit envelope and amplifies the
      fault's signature;
    - {!Phase_fixed} / {!Phase_envelope} are the same two models on the
      phase response (radians) — an extension for phase-sensitive test
      setups;
    - {!Any_of} declares a fault detectable wherever any sub-criterion
      fires (region union), e.g. magnitude-or-phase testing. *)

type probe = { source : string; output : string }
(** Where the test stimulus enters and where the response is read. *)

type criterion =
  | Fixed_tolerance of float
      (** Definition 1: detectable where |ΔT|/|T| > ε. *)
  | Process_envelope of { component_tol : float; floor : float }
      (** Detectable where |ΔT|/|T| exceeds the linear worst-case
          good-circuit envelope plus [floor]. *)
  | Phase_fixed of float
      (** Detectable where the wrapped phase deviation exceeds the
          given angle (radians). *)
  | Phase_envelope of { component_tol : float; floor_rad : float }
      (** Envelope model on the phase deviation. *)
  | Any_of of criterion list
      (** Union of the sub-criteria's detectability regions. *)

type result = {
  fault : Fault.t;
  detectable : bool;  (** Definition 1. *)
  omega_det : float;  (** Definition 2, in [0, 1]. *)
  regions : Util.Interval.Set.t;
      (** Detectability region Ω_detection, in log10(Hz) coordinates. *)
}

val default_tolerance : float
(** ε = 0.10, the paper's setting. *)

val default_criterion : criterion
(** [Fixed_tolerance default_tolerance]. *)

val response_deviation : nominal:Complex.t array -> faulty:Complex.t array -> float array
(** Point-wise relative magnitude deviation | |Tf| - |T0| | / |T0|.
    Infinite when the nominal response is exactly zero at a point and
    the faulty one is not. *)

val phase_deviation : nominal:Complex.t array -> faulty:Complex.t array -> float array
(** Point-wise wrapped phase difference |∠Tf - ∠T0| in [0, π]. *)

val nominal_response : probe -> Grid.t -> Netlist.t -> Complex.t array
(** The fault-free sweep; exposed so callers can reuse it across many
    faults. *)

type prepared
(** A criterion instantiated for one circuit view: per-frequency
    thresholds (envelope criteria cost one sweep per passive
    component), reusable across the whole fault list of that view. *)

val prepare :
  ?backend:Fastsim.backend ->
  criterion -> probe -> Grid.t -> Netlist.t -> nominal:Complex.t array -> prepared

val analyze_fault :
  ?backend:Fastsim.backend ->
  ?criterion:criterion ->
  ?nominal:Complex.t array ->
  ?prepared:prepared ->
  probe -> Grid.t -> Netlist.t -> Fault.t -> result
(** Simulate one fault. [nominal] and [prepared] avoid recomputation
    when analyzing many faults of one view ([prepared] must come from
    the same criterion/view). A frequency where the faulty circuit has
    no solution (singular system) counts as detectable — the response
    is wildly wrong, not merely deviated. *)

type prepared_view
(** One circuit view readied for a fault campaign: the fault-simulation
    engine, its nominal response and the instantiated thresholds. *)

val prepare_view :
  ?backend:Fastsim.backend ->
  ?criterion:criterion ->
  ?warm:Fault.t list ->
  probe -> Grid.t -> Netlist.t -> prepared_view
(** Build the engine and thresholds for one view (default criterion
    {!default_criterion}). When [warm] is given, the engine's
    back-solve cache is prepopulated for those faults
    ({!Fastsim.warm_cache}) so that {!analyze_prepared} calls never
    mutate the engine and the view can be scored from several domains
    concurrently. Raises like {!analyze}. *)

val analyze_prepared : prepared_view -> Grid.t -> Fault.t -> result
(** Score one fault against a prepared view. Thread-safe once the view
    was prepared with a [warm] list containing the fault. *)

val view_dim : prepared_view -> int
(** The view engine's MNA dimension ({!Fastsim.dim}) — for sizing
    campaign work estimates. *)

val view_uses_sparse : prepared_view -> bool
(** Whether the view's engine factored through the sparse back-end
    ({!Fastsim.uses_sparse}). *)

val plan_fault : prepared_view -> Fault.t -> Fastsim.plan
(** Classify and prepare one fault against the view's engine
    ({!Fastsim.plan_of}); build each (view, fault) plan exactly once.
    Raises {!Fault.Unknown_element} when the fault's element is
    absent. *)

val score_range :
  prepared_view ->
  Fastsim.plan ->
  lo:int ->
  hi:int ->
  re:float array ->
  im:float array ->
  ok:Bytes.t ->
  unit
(** Fill grid slots [lo .. hi-1] of one fault's planar response row —
    {!Fastsim.response_range_into} on the view's engine. Disjoint
    ranges of one row may be filled concurrently. *)

val result_of_rows :
  ?verdicts:Bytes.t ->
  prepared_view ->
  Grid.t ->
  Fault.t ->
  re:float array ->
  im:float array ->
  ok:Bytes.t ->
  result
(** Reduce one completed planar response row to a {!result}: the same
    deviation/threshold comparisons as {!analyze_prepared} (an
    [ok]=['\000'] point counts as detectable, like a [None]
    response). When [verdicts] is given, a point whose byte is ['d']
    (certified detectable) or ['u'] (certified undetectable) takes
    that verdict without consulting the row — such points need never
    have been scored; ['?'] bytes fall through to the numeric
    comparison. *)

val result_of_verdicts : Grid.t -> Fault.t -> Bytes.t -> result
(** Reduce a fully certified verdict row (every byte ['d'] or ['u'],
    one per grid point) to a {!result} without any simulation — the
    same interval bookkeeping as {!result_of_rows}. Raises
    [Invalid_argument] on a length mismatch or a residual ['?']
    byte. *)

val analyze :
  ?backend:Fastsim.backend ->
  ?criterion:criterion -> probe -> Grid.t -> Netlist.t -> Fault.t list -> result list
(** Analyze a fault list against one circuit, sharing the nominal sweep
    and prepared thresholds ([prepare_view] + [analyze_prepared]). *)

val minimal_detectable_deviation :
  ?backend:Fastsim.backend ->
  ?criterion:criterion -> ?max_factor:float ->
  probe -> Grid.t -> Netlist.t -> element:string -> float option
(** The smallest multiplicative deviation factor above 1 whose fault on
    [element] is detectable, found by bisection on the log-factor (20
    iterations, ~1e-4 relative resolution); [None] when even
    [max_factor] (default 10, i.e. +900 %) stays undetected. Assumes
    detectability is monotone in the deviation size, which holds for
    the circuits of this library away from exact response crossings. *)

val fault_coverage : result list -> float
(** Fraction of faults with [detectable = true]; 0 on the empty list. *)

val average_omega_det : result list -> float
(** Mean ω-detectability over the fault list; 0 on the empty list. *)
