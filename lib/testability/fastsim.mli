module Netlist := Circuit.Netlist

(** The fault-simulation campaign engine.

    A campaign evaluates one circuit view against many faults on a
    shared frequency grid. The naive cost is a full assembly and an
    O(n³) factorization per (fault, frequency); this engine removes
    both levels of redundancy:

    - the fault-free system is split-assembled once ({!Mna.Stamps})
      and LU-factorized once per frequency, yielding the nominal
      response as a by-product;
    - a single-element deviation (or open/short replacement) of a
      passive R, C or L perturbs the MNA matrix by a rank-1 term
      α(ω)·uvᵀ with u, v sparse ±1 patterns, so each faulty solve is
      a Sherman–Morrison update against the cached LU — O(n²),
      polished by one step of iterative refinement — and the A⁻¹u
      back-solves are cached across faults sharing a stamp pattern
      (e.g. the ±20 % pair on one component);
    - every update is verified by a cheap residual check; an
      ill-conditioned update falls back to a full refactorization of
      the perturbed matrix, and a structural fault (e.g. an inductor
      open, which changes the system dimension) falls back to a fresh
      split assembly. Either way the result matches the naive path to
      round-off.

    The engine state is planar and off-heap ({!Linalg.Cmat.Big}: re/im
    planes in Bigarray storage the GC never scans), and the rank-1 hot
    path allocates zero GC-visible words proportional to the system:
    solve buffers live in a per-domain scratch workspace (domain-local
    storage), so an engine may be shared by several workers — stats
    counters are atomic and cached back-solves are read under a
    freshness CAS. Under OCaml 5's stop-the-world minor GC this is
    what lets campaign domains scale: a warmed campaign's numeric
    state contributes nothing to any collection. The one mutating
    operation is the w-cache insertion on a cache miss, which is only
    safe while the engine is confined to a single domain; parallel
    analysis must call {!warm_cache} with its fault list first so that
    every lookup during the parallel phase is read-only. *)

type t

type backend = Dense | Sparse | Auto
(** Which factorization serves the fault-free system. [Dense]: the
    planar off-heap LU ({!Linalg.Cmat.Big}) — O(n²) state and O(n³)
    factorization per frequency. [Sparse]: Markowitz-ordered sparse LU
    ({!Linalg.Csparse}) — one symbolic analysis per netlist, a numeric
    refactorization per frequency, state proportional to the stamped
    entries plus fill. [Auto] (the default) picks sparse only when the
    dimension reaches the crossover (n ≥ 64) {e and} the stamped
    density stays below n²/8 — in particular every circuit below the
    crossover keeps the dense path and its exact bitwise behaviour.
    Either way results agree to solver rounding: the Sherman–Morrison
    update, its residual gate and the full-refactorization fallback
    are backend-independent. *)

val create :
  ?backend:backend ->
  source:string ->
  output:string ->
  freqs_hz:float array ->
  Netlist.t ->
  t
(** Build the engine for one view: index, split stamps, and one
    factorization + nominal solve per frequency. Raises
    {!Mna.Ac.Singular_circuit} if the fault-free system is singular at
    some grid frequency, like {!Mna.Ac.sweep}. *)

val uses_sparse : t -> bool
(** Whether the engine factored through the sparse back-end (resolves
    [Auto]); for benches, metrics and tests. *)

val nominal : t -> Complex.t array
(** The fault-free transfer at every grid frequency (equal to
    {!Mna.Ac.sweep} on the same grid). *)

val warm_cache : t -> Fault.t list -> unit
(** Precompute the cached A⁻¹u back-solve for every rank-1 fault in
    the list at every grid frequency, so subsequent {!response} calls
    never insert into the cache and the engine can be shared across
    domains. Warmed entries do not disturb the [wcache_hits/misses]
    accounting: each warmed entry books exactly one miss when it is
    first read, just as the lazy path books one at insertion — totals
    are identical to single-domain lazy operation and invariant under
    the parallel schedule. Unknown elements are skipped (the matching
    {!response} call still raises). *)

val response : t -> Fault.t -> Complex.t option array
(** The faulty transfer at every grid frequency; [None] where the
    faulty system is singular (the naive path's
    [Singular_circuit]-per-point outcome). Raises
    {!Fault.Unknown_element} when the fault's element is absent from
    the netlist, like {!Fault.inject}. Equivalent to {!plan_of} + a
    full-range {!response_range_into}. *)

val dim : t -> int
(** The MNA system dimension — for callers sizing work estimates. *)

val n_freqs : t -> int
(** Number of grid frequencies (the length of {!nominal} and of
    response rows). *)

type plan
(** A fault prepared for simulation: classification (unchanged /
    rank-1 / structural) plus any per-fault state (a structural
    fault's split-assembled stamps). Plans are immutable and safe to
    share across domains; all mutable solve state is per-domain. *)

val plan_of : t -> Fault.t -> plan
(** Classify and prepare one fault. Structural faults book their
    [fastsim.structural_faults] increment (and their assembly) here,
    once per plan — so build each (engine, fault) plan once. Raises
    {!Fault.Unknown_element} like {!response}. *)

val response_range_into :
  t ->
  plan ->
  lo:int ->
  hi:int ->
  re:float array ->
  im:float array ->
  ok:Bytes.t ->
  unit
(** [response_range_into t plan ~lo ~hi ~re ~im ~ok] writes the faulty
    transfer for grid indices [lo .. hi-1] into slots [lo .. hi-1] of
    the planar row buffers: [re]/[im] hold the response, [ok.(i)] is
    ['\001'] for a valid point and ['\000'] where the faulty system is
    singular ({!response}'s [None]). Buffers must extend to at least
    [hi]; slots outside the range are untouched, so campaign workers
    can fill disjoint frequency blocks of one row concurrently. Values
    are bitwise-identical to {!response} — this is the same solver
    walked over a sub-range, writing planar output instead of boxing
    per-point [Complex.t option]s. *)

val set_chaos : [ `None | `Smw_denominator of float ] -> unit
(** Conformance-testing hook. [`Smw_denominator k] multiplies the
    Sherman–Morrison update denominator by [k] {e and} bypasses the
    residual guard, simulating the silent-wrong-answer bug class the
    differential oracles must catch (see {!Conformance.Oracle}).
    [`None] — the default — restores correct behaviour. Tests that
    enable it must restore [`None] before returning. *)

val stats : t -> int * int
(** [(smw, full)]: faulty point-solves served by the rank-1 update vs
    by a full assembly/refactorization (fallbacks and structural
    faults). For benches and tests.

    When {!Obs.Metrics} is enabled the same events are mirrored into
    the global registry — [fastsim.smw_solves] and
    [fastsim.full_solves] totals across all engines equal the
    per-engine [stats] sums exactly — alongside
    [fastsim.refine_steps], [fastsim.structural_faults],
    [fastsim.wcache_hits] and [fastsim.wcache_misses]. Increments are
    batched in per-domain locals and flushed (into the atomics and the
    registry together) when each {!response} /
    {!response_range_into} / {!warm_cache} call returns, so totals are
    exact at every call boundary without paying one sharded-counter
    operation per solve. *)
