module Netlist = Circuit.Netlist
module Element = Circuit.Element

type probe = { source : string; output : string }

type criterion =
  | Fixed_tolerance of float
  | Process_envelope of { component_tol : float; floor : float }
  | Phase_fixed of float
  | Phase_envelope of { component_tol : float; floor_rad : float }
  | Any_of of criterion list

type result = {
  fault : Fault.t;
  detectable : bool;
  omega_det : float;
  regions : Util.Interval.Set.t;
}

let default_tolerance = 0.10
let default_criterion = Fixed_tolerance default_tolerance

let magnitude_dev t0 tf =
  let m0 = Complex.norm t0 and mf = Complex.norm tf in
  if m0 = 0.0 then if mf = 0.0 then 0.0 else infinity
  else Float.abs (mf -. m0) /. m0

let phase_dev t0 tf =
  if Complex.norm t0 = 0.0 || Complex.norm tf = 0.0 then 0.0
  else begin
    let d = Float.abs (Complex.arg tf -. Complex.arg t0) in
    if d > Float.pi then (2.0 *. Float.pi) -. d else d
  end

let response_deviation ~nominal ~faulty =
  if Array.length nominal <> Array.length faulty then
    invalid_arg "Detect.response_deviation: length mismatch";
  Array.map2 magnitude_dev nominal faulty

let phase_deviation ~nominal ~faulty =
  if Array.length nominal <> Array.length faulty then
    invalid_arg "Detect.phase_deviation: length mismatch";
  Array.map2 phase_dev nominal faulty

let nominal_response probe grid netlist =
  Mna.Ac.sweep ~source:probe.source ~output:probe.output netlist
    ~freqs_hz:(Grid.freqs_hz grid)

let make_sim ?backend probe grid netlist =
  Fastsim.create ?backend ~source:probe.source ~output:probe.output
    ~freqs_hz:(Grid.freqs_hz grid) netlist

(* One instantiated sub-criterion: which deviation to measure and the
   per-frequency threshold it must exceed. [steer] is the statically
   known part of the point margin's log — everything in
   log(deviation/threshold) that does not involve the faulty response:
   −log threshold, plus −log |H₀| for the magnitude deviations (which
   normalize by the nominal). The adaptive campaign driver subtracts
   it to bound how fast margins can move between grid points; it never
   affects a verdict. *)
type prepared_one = {
  deviation : Complex.t -> Complex.t -> float;
  thresholds : float array;
  steer : float array;
}

type prepared = prepared_one list

(* Envelope accumulation over the per-component process drifts. Each
   drift is a single-passive deviation — exactly a rank-1 fault for
   the campaign engine, so the whole envelope costs one back-solve per
   (passive, frequency) instead of a full sweep per passive. A grid
   point where a drifted good circuit has no solution mirrors the
   naive path's Singular_circuit. *)
let envelope_thresholds ~deviation ~floor ~respond grid netlist ~nominal
    ~component_tol =
  let envelope = Array.make (Grid.n_points grid) floor in
  List.iter
    (fun e ->
      let element = Element.name e in
      let response = respond (Fault.deviation ~element (1.0 +. component_tol)) in
      Array.iteri
        (fun i tf ->
          match tf with
          | Some tf -> envelope.(i) <- envelope.(i) +. deviation nominal.(i) tf
          | None ->
              raise
                (Mna.Ac.Singular_circuit
                   (Printf.sprintf "MNA matrix singular at f = %g Hz for %S"
                      (Grid.freqs_hz grid).(i) (Netlist.title netlist))))
        response)
    (Netlist.passives netlist);
  envelope

(* The measurement floor: a grid point whose nominal response magnitude
   sits below it has no usable reference — the relative deviation there
   is a ratio of floating-point residues (a dead view output, the
   bottom of a notch), and any verdict computed from it is numerical
   noise, not testability. Such points are undetectable by definition:
   every criterion's threshold is clamped to +∞ there and the
   failed-solve escape hatch is bypassed, so the verdict is a
   deterministic 'u' in every scoring path. The floor is relative to
   the view's own response scale, with an absolute backstop for views
   that are dead across the whole band. *)
let measurement_floor nominal =
  let mmax =
    Array.fold_left (fun a c -> Float.max a (Complex.norm c)) 0.0 nominal
  in
  Float.max (1e-12 *. mmax) 1e-13

let measurement_mask nominal =
  let floor_abs = measurement_floor nominal in
  Bytes.init (Array.length nominal) (fun k ->
      if Complex.norm nominal.(k) < floor_abs then '\001' else '\000')

let rec prepare_raw ~respond criterion grid netlist ~nominal =
  let magnitude_steer thresholds =
    Array.mapi
      (fun i thr -> -.(log thr +. log (Complex.norm nominal.(i))))
      thresholds
  in
  let phase_steer thresholds = Array.map (fun thr -> -.log thr) thresholds in
  match criterion with
  | Fixed_tolerance eps ->
      let thresholds = Array.make (Grid.n_points grid) eps in
      [
        { deviation = magnitude_dev; thresholds;
          steer = magnitude_steer thresholds };
      ]
  | Phase_fixed rad ->
      let thresholds = Array.make (Grid.n_points grid) rad in
      [ { deviation = phase_dev; thresholds; steer = phase_steer thresholds } ]
  | Process_envelope { component_tol; floor } ->
      let thresholds =
        envelope_thresholds ~deviation:magnitude_dev ~floor ~respond grid netlist
          ~nominal ~component_tol
      in
      [
        { deviation = magnitude_dev; thresholds;
          steer = magnitude_steer thresholds };
      ]
  | Phase_envelope { component_tol; floor_rad } ->
      let thresholds =
        envelope_thresholds ~deviation:phase_dev ~floor:floor_rad ~respond grid
          netlist ~nominal ~component_tol
      in
      [ { deviation = phase_dev; thresholds; steer = phase_steer thresholds } ]
  | Any_of criteria ->
      List.concat_map (fun c -> prepare_raw ~respond c grid netlist ~nominal) criteria

let prepare_with ~respond criterion grid netlist ~nominal =
  let prepared = prepare_raw ~respond criterion grid netlist ~nominal in
  let mask = measurement_mask nominal in
  List.iter
    (fun p ->
      Bytes.iteri
        (fun k b ->
          if b = '\001' then begin
            p.thresholds.(k) <- infinity;
            p.steer.(k) <- neg_infinity
          end)
        mask)
    prepared;
  prepared

let prepare ?backend criterion probe grid netlist ~nominal =
  (* Lazy: criteria without an envelope never pay for the engine. *)
  let sim = lazy (make_sim ?backend probe grid netlist) in
  let respond fault = Fastsim.response (Lazy.force sim) fault in
  prepare_with ~respond criterion grid netlist ~nominal

let result_of ~nominal ~prepared grid fault faulty =
  let mask = measurement_mask nominal in
  let deviates i =
    (* Below the measurement floor there is no verdict to salvage from
       a failed solve either — the point is undetectable by
       definition. *)
    match faulty.(i) with
    | None -> Bytes.get mask i = '\000'
    | Some tf ->
        List.exists (fun p -> p.deviation nominal.(i) tf > p.thresholds.(i)) prepared
  in
  let intervals = ref [] in
  for i = 0 to Grid.n_points grid - 1 do
    if deviates i then intervals := Grid.point_interval grid i :: !intervals
  done;
  let regions = Util.Interval.Set.of_intervals !intervals in
  let measure = Util.Interval.Set.measure regions in
  let omega_det = measure /. Grid.log_measure grid in
  { fault; detectable = not (Util.Interval.Set.is_empty regions); omega_det; regions }

let analyze_fault ?backend ?(criterion = default_criterion) ?nominal ?prepared probe
    grid netlist fault =
  let sim = lazy (make_sim ?backend probe grid netlist) in
  let respond f = Fastsim.response (Lazy.force sim) f in
  let nominal =
    match nominal with Some n -> n | None -> Fastsim.nominal (Lazy.force sim)
  in
  let prepared =
    match prepared with
    | Some p -> p
    | None -> prepare_with ~respond criterion grid netlist ~nominal
  in
  result_of ~nominal ~prepared grid fault (respond fault)

(* A fully-prepared view: engine, nominal response and instantiated
   thresholds, ready to score any number of faults. When [warm] is
   given, the engine's back-solve cache is prepopulated for those
   faults, after which {!analyze_prepared} never mutates the engine
   cache and the prepared view may be shared across domains. *)
type prepared_view = {
  sim : Fastsim.t;
  nominal : Complex.t array;
  prepared : prepared;
  mask : Bytes.t;
      (* measurement_mask of [nominal]: '\001' where the point is below
         the floor and therefore undetectable by definition *)
}

let prepare_view ?backend ?(criterion = default_criterion) ?(warm = []) probe grid
    netlist =
  (* One engine for the whole view: the fault-free factors are built
     once per frequency and shared by the envelope preparation and by
     every fault's rank-1 solve. *)
  let sim = make_sim ?backend probe grid netlist in
  let respond f = Fastsim.response sim f in
  let nominal = Fastsim.nominal sim in
  let prepared = prepare_with ~respond criterion grid netlist ~nominal in
  if warm <> [] then Fastsim.warm_cache sim warm;
  { sim; nominal; prepared; mask = measurement_mask nominal }

let analyze_prepared pv grid fault =
  result_of ~nominal:pv.nominal ~prepared:pv.prepared grid fault
    (Fastsim.response pv.sim fault)

(* ---- blocked scoring (the campaign matrix path) ----

   {!Testability.Matrix} decomposes scoring into (view × fault-chunk ×
   frequency-block) tasks: plans are built once per (view, fault),
   each task fills a frequency block of planar response rows, and a
   sequential reduce turns each completed row into a {!result}. The
   arithmetic is exactly {!analyze_prepared}'s — same solver, same
   deviation/threshold comparisons — just restructured so one cached
   LU factor serves a contiguous block of back-solves and workers
   never box per-point responses. *)

let view_dim pv = Fastsim.dim pv.sim
let view_uses_sparse pv = Fastsim.uses_sparse pv.sim
let plan_fault pv fault = Fastsim.plan_of pv.sim fault

let score_range pv plan ~lo ~hi ~re ~im ~ok =
  Fastsim.response_range_into pv.sim plan ~lo ~hi ~re ~im ~ok

let result_of_rows ?verdicts pv grid fault ~re ~im ~ok =
  let nominal = pv.nominal and prepared = pv.prepared in
  let deviates i =
    (* The measurement floor comes first — a sub-floor point is
       undetectable by definition, before any certificate or solve is
       consulted. A certified verdict byte then overrides the numeric
       comparison — the point was never scored. Soundness of the
       certification pass guarantees the byte equals what the
       comparison would have produced, which the tier-1
       bitwise-identity assertions and the certify-soundness oracle
       re-check from the outside. *)
    if Bytes.get pv.mask i = '\001' then false
    else
    match verdicts with
    | Some v when Bytes.get v i = 'd' -> true
    | Some v when Bytes.get v i = 'u' -> false
    | _ ->
        if Bytes.get ok i = '\000' then true
        else
          let tf = { Complex.re = re.(i); im = im.(i) } in
          List.exists
            (fun p -> p.deviation nominal.(i) tf > p.thresholds.(i))
            prepared
  in
  let intervals = ref [] in
  for i = 0 to Grid.n_points grid - 1 do
    if deviates i then intervals := Grid.point_interval grid i :: !intervals
  done;
  let regions = Util.Interval.Set.of_intervals !intervals in
  let measure = Util.Interval.Set.measure regions in
  let omega_det = measure /. Grid.log_measure grid in
  { fault; detectable = not (Util.Interval.Set.is_empty regions); omega_det; regions }

let point_verdict pv ~re ~im ~ok i =
  if Bytes.get pv.mask i = '\001' then false
  else if Bytes.get ok i = '\000' then true
  else
    let tf = { Complex.re = re.(i); im = im.(i) } in
    List.exists
      (fun p -> p.deviation pv.nominal.(i) tf > p.thresholds.(i))
      pv.prepared

let steering_profiles pv = List.map (fun p -> p.steer) pv.prepared
let view_measurement_mask pv = pv.mask

let point_margin pv ~re ~im ~ok i =
  if Bytes.get pv.mask i = '\001' then Float.neg_infinity
  else if Bytes.get ok i = '\000' then Float.nan
  else
    let tf = { Complex.re = re.(i); im = im.(i) } in
    let ratio =
      List.fold_left
        (fun acc p ->
          let dev = p.deviation pv.nominal.(i) tf in
          let thr = p.thresholds.(i) in
          let r =
            if thr > 0.0 then dev /. thr
            else if dev > 0.0 then infinity
            else 1.0
          in
          Float.max acc r)
        0.0 pv.prepared
    in
    log ratio

let result_of_verdicts grid fault verdicts =
  if Bytes.length verdicts <> Grid.n_points grid then
    invalid_arg "Detect.result_of_verdicts: verdict length mismatch";
  if Bytes.exists (fun b -> b = '?') verdicts then
    invalid_arg "Detect.result_of_verdicts: uncertified point";
  let intervals = ref [] in
  for i = 0 to Grid.n_points grid - 1 do
    if Bytes.get verdicts i = 'd' then
      intervals := Grid.point_interval grid i :: !intervals
  done;
  let regions = Util.Interval.Set.of_intervals !intervals in
  let measure = Util.Interval.Set.measure regions in
  let omega_det = measure /. Grid.log_measure grid in
  { fault; detectable = not (Util.Interval.Set.is_empty regions); omega_det; regions }

let analyze ?backend ?criterion probe grid netlist faults =
  let pv = prepare_view ?backend ?criterion probe grid netlist in
  List.map (fun fault -> analyze_prepared pv grid fault) faults

let minimal_detectable_deviation ?backend ?(criterion = default_criterion)
    ?(max_factor = 10.0) probe grid netlist ~element =
  if max_factor <= 1.0 then
    invalid_arg "Detect.minimal_detectable_deviation: max_factor must exceed 1";
  let sim = make_sim ?backend probe grid netlist in
  let respond f = Fastsim.response sim f in
  let nominal = Fastsim.nominal sim in
  let prepared = prepare_with ~respond criterion grid netlist ~nominal in
  let detectable factor =
    let fault = Fault.deviation ~element factor in
    (result_of ~nominal ~prepared grid fault (respond fault)).detectable
  in
  if not (detectable max_factor) then None
  else begin
    (* bisect on log(factor) in (0, log max_factor] *)
    let lo = ref 0.0 and hi = ref (log max_factor) in
    for _ = 1 to 20 do
      let mid = (!lo +. !hi) /. 2.0 in
      if detectable (exp mid) then hi := mid else lo := mid
    done;
    Some (exp !hi)
  end

let fault_coverage results =
  match results with
  | [] -> 0.0
  | _ ->
      let detected = List.length (List.filter (fun r -> r.detectable) results) in
      float_of_int detected /. float_of_int (List.length results)

let average_omega_det results =
  match results with
  | [] -> 0.0
  | _ ->
      List.fold_left (fun acc r -> acc +. r.omega_det) 0.0 results
      /. float_of_int (List.length results)
