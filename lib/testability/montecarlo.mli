module Netlist := Circuit.Netlist

(** Monte-Carlo analysis of good-circuit response variation.

    Samples circuits whose passive components drift uniformly within
    ±[component_tol] and records the response deviation from nominal.
    Two uses:
    - validating the {!Detect.Process_envelope} threshold (the linear
      worst-case envelope should dominate sampled good circuits);
    - quantifying the false-alarm rate of the paper's fixed-ε test: a
      good circuit whose natural variation exceeds ε somewhere would be
      rejected as faulty. *)

type stats = {
  samples : int;
  component_tol : float;
  max_dev : float array;
      (** Per grid frequency: the largest deviation any sample showed. *)
  mean_dev : float array;  (** Per grid frequency: mean deviation. *)
  per_sample_peak : float array;
      (** Per sample: its worst deviation over the whole grid. *)
}

val run :
  ?seed:int -> ?samples:int -> ?jobs:int -> component_tol:float ->
  Detect.probe -> Grid.t -> Netlist.t -> stats
(** Defaults: [seed] 42, [samples] 200, [jobs] 1. Deterministic for a
    fixed seed: the sample netlists are drawn from one sequential RNG
    stream and only the independent per-sample sweeps run on the
    [jobs]-domain scheduler ({!Util.Parallel}), so the statistics do
    not depend on the worker count. *)

val false_alarm_rate : stats -> epsilon:float -> float
(** Fraction of sampled good circuits a fixed-ε magnitude test would
    reject (their peak deviation exceeds [epsilon]). *)
