module Netlist := Circuit.Netlist

(** Monte-Carlo analysis of good-circuit response variation.

    Samples circuits whose passive components drift uniformly within
    ±[component_tol] and records the response deviation from nominal.
    Two uses:
    - validating the {!Detect.Process_envelope} threshold (the linear
      worst-case envelope should dominate sampled good circuits);
    - quantifying the false-alarm rate of the paper's fixed-ε test: a
      good circuit whose natural variation exceeds ε somewhere would be
      rejected as faulty. *)

type stats = {
  samples : int;
  component_tol : float;
  max_dev : float array;
      (** Per grid frequency: the largest deviation any sample showed. *)
  mean_dev : float array;  (** Per grid frequency: mean deviation. *)
  per_sample_peak : float array;
      (** Per sample: its worst deviation over the whole grid. *)
}

val run :
  ?seed:int -> ?samples:int -> ?jobs:int -> component_tol:float ->
  Detect.probe -> Grid.t -> Netlist.t -> stats
(** Defaults: [seed] 42, [samples] 200, [jobs] 1. Deterministic for a
    fixed seed: the sample netlists are drawn from one sequential RNG
    stream and only the independent per-sample sweeps run on the
    [jobs]-domain scheduler ({!Util.Parallel}), so the statistics do
    not depend on the worker count. *)

val false_alarm_rate : stats -> epsilon:float -> float
(** Fraction of sampled good circuits a fixed-ε magnitude test would
    reject (their peak deviation exceeds [epsilon]). *)

(** {2 Tolerance-space importance sampling}

    {!run} samples the tolerance cube uniformly, which wastes almost
    every draw when the ε boundary sits deep inside (every draw
    accepts) or far outside (every draw rejects) the cube.
    {!coverage_run} stratifies the cube by ∞-norm radius — the common
    spread factor scaling all component drifts — probes where the ε
    boundary falls, and steers the draw budget toward the boundary
    stratum, where the accept/reject verdict actually varies. *)

type coverage = {
  samples : int;  (** total numeric sweeps, probe draws included *)
  strata : int;
  component_tol : float;
  epsilon : float;
  boundary_radius : float;
      (** estimated ∞-norm radius (fraction of [component_tol]) at
          which a typical drift first deviates by [epsilon]; clamped
          to \[1/strata, 1\] *)
  stratum_samples : int array;
      (** draws landing in each radius shell, length [strata] *)
  stratum_accept : float array;
      (** fraction of each shell's draws whose peak deviation stays
          within [epsilon], length [strata] *)
  worst_case : float;
      (** acceptance of the outermost shell — good circuits at full
          component spread *)
  average_case : float;
      (** shell-volume-weighted acceptance: the probability a uniform
          cube draw accepts, reconstructed from the stratified
          estimates (shell volume fractions of the ∞-norm ball,
          [((s+1)/K)^d - (s/K)^d] over [d] passives) *)
}

val coverage_run :
  ?seed:int -> ?samples:int -> ?strata:int -> ?jobs:int ->
  component_tol:float -> epsilon:float ->
  Detect.probe -> Grid.t -> Netlist.t -> coverage
(** Defaults: [seed] 42, [samples] 200, [strata] 8, [jobs] 1.
    Deterministic for a fixed seed and independent of [jobs]: every
    netlist is drawn from one sequential RNG stream and only the
    per-draw sweeps run on the scheduler, exactly as {!run}. A probe
    phase (at most 16 draws) at full spread locates the boundary
    radius; the remaining draws are allocated across the radius
    strata with weights peaked at the boundary stratum (floor of one
    draw per stratum, so every [stratum_accept] entry is estimated).
    Raises [Invalid_argument] when [strata <= 0],
    [samples < 2 * strata] or [epsilon <= 0]. *)
