type t = { freqs : float array; log_lo : float; log_hi : float }

let make ?(points_per_decade = 60) ~f_lo ~f_hi () =
  if points_per_decade <= 0 then
    invalid_arg "Grid.make: points_per_decade must be positive";
  if f_lo <= 0.0 || f_hi <= 0.0 then
    invalid_arg "Grid.make: frequencies must be positive";
  if f_lo >= f_hi then invalid_arg "Grid.make: f_lo >= f_hi";
  let decades = log10 f_hi -. log10 f_lo in
  let n = Int.max 2 (1 + int_of_float (Float.round (decades *. float_of_int points_per_decade))) in
  { freqs = Util.Floatx.logspace f_lo f_hi n; log_lo = log10 f_lo; log_hi = log10 f_hi }

let around ?(decades_below = 2.0) ?(decades_above = 2.0) ?points_per_decade ~center_hz () =
  if center_hz <= 0.0 then invalid_arg "Grid.around: center must be positive";
  make ?points_per_decade
    ~f_lo:(center_hz /. (10.0 ** decades_below))
    ~f_hi:(center_hz *. (10.0 ** decades_above))
    ()

let freqs_hz t = t.freqs
let n_points t = Array.length t.freqs
let f_lo t = t.freqs.(0)
let f_hi t = t.freqs.(Array.length t.freqs - 1)
let log_measure t = t.log_hi -. t.log_lo

let point_interval t i =
  let n = Array.length t.freqs in
  if i < 0 || i >= n then invalid_arg "Grid.point_interval: index out of bounds";
  let step = (t.log_hi -. t.log_lo) /. float_of_int (n - 1) in
  let center = t.log_lo +. (float_of_int i *. step) in
  let lo = Float.max t.log_lo (center -. (step /. 2.0)) in
  let hi = Float.min t.log_hi (center +. (step /. 2.0)) in
  Util.Interval.make lo hi
