module Netlist = Circuit.Netlist
module Element = Circuit.Element
module Cmat = Linalg.Cmat

(* A sparse ±1 stamp pattern: the nonzero rows (columns) of the rank-1
   factor u (v), as (index, sign) pairs. *)
type pat = (int * float) list

(* ΔA(ω) = (alpha_g + jω alpha_c) · u vᵀ *)
type rank1 = { u : pat; v : pat; alpha_g : float; alpha_c : float }

type plan =
  | Unchanged  (* the fault does not alter the system (e.g. grounded element) *)
  | Rank_one of rank1
  | Structural of Netlist.t  (* full path on the injected netlist *)

type freq_state = {
  omega : float;
  f_hz : float;
  a : Cmat.t;  (* fault-free A(jω), kept for residual checks and fallbacks *)
  anorm : float;
  lu : Cmat.lu;
  b : Cmat.vec;
  bnorm : float;
  x0 : Cmat.vec;
  mutable wcache : (pat * Cmat.vec) list;  (* u-pattern -> A⁻¹u this frequency *)
}

type t = {
  netlist : Netlist.t;
  index : Mna.Index.t;
  source : string;
  output : string;
  out_idx : int option;
  freqs : freq_state array;
  nominal : Complex.t array;
  mutable smw_solves : int;
  mutable full_solves : int;
}

let vec_norm_inf (x : Cmat.vec) =
  Array.fold_left (fun acc z -> Float.max acc (Complex.norm z)) 0.0 x

let create ~source ~output ~freqs_hz netlist =
  Obs.Trace.span "fastsim.create" @@ fun () ->
  let index = Mna.Index.build netlist in
  let stamps = Mna.Stamps.build ~sources:(Mna.Assemble.Only source) index netlist in
  let out_idx = Mna.Index.node index output in
  let freqs =
    Array.map
      (fun f_hz ->
        let omega = 2.0 *. Float.pi *. f_hz in
        let a = Mna.Stamps.matrix stamps ~omega in
        let b = Mna.Stamps.rhs stamps ~omega in
        match Obs.Metrics.time "mna.factor_s" (fun () -> Cmat.lu_factor a) with
        | exception Cmat.Singular ->
            raise
              (Mna.Ac.Singular_circuit
                 (Printf.sprintf "MNA matrix singular at f = %g Hz for %S" f_hz
                    (Netlist.title netlist)))
        | lu ->
            {
              omega;
              f_hz;
              a;
              anorm = Cmat.norm_inf a;
              lu;
              b;
              bnorm = vec_norm_inf b;
              x0 = Cmat.lu_solve lu b;
              wcache = [];
            })
      freqs_hz
  in
  let nominal =
    Array.map
      (fun fs -> match out_idx with None -> Complex.zero | Some i -> fs.x0.(i))
      freqs
  in
  {
    netlist;
    index;
    source;
    output;
    out_idx;
    freqs;
    nominal;
    smw_solves = 0;
    full_solves = 0;
  }

let nominal t = t.nominal
let stats t = (t.smw_solves, t.full_solves)

(* ---- fault classification ---- *)

let two_node_pat index n1 n2 : pat =
  match (Mna.Index.node index n1, Mna.Index.node index n2) with
  | Some i, Some j when i = j -> []
  | Some i, Some j -> [ (i, 1.0); (j, -1.0) ]
  | Some i, None -> [ (i, 1.0) ]
  | None, Some j -> [ (j, -1.0) ]
  | None, None -> []

let rank1_if_sane r1 =
  if Float.is_finite r1.alpha_g && Float.is_finite r1.alpha_c then
    if r1.u = [] || r1.v = [] || (r1.alpha_g = 0.0 && r1.alpha_c = 0.0) then
      Some Unchanged
    else Some (Rank_one r1)
  else None

(* The admittance-style elements stamp y·uuᵀ with u the two-node
   pattern, so a value change is the rank-1 perturbation Δy·uuᵀ; an
   inductor's deviation only moves its own branch-equation diagonal
   entry, −sΔL. Anything else (dimension-changing replacements, source
   deviations, non-finite deltas) takes the structural path. *)
let classify t (fault : Fault.t) =
  match Netlist.find t.netlist fault.Fault.element with
  | None -> raise Not_found
  | Some e -> (
      let structural () = Structural (Fault.inject fault t.netlist) in
      let or_structural r1 =
        match rank1_if_sane r1 with Some p -> p | None -> structural ()
      in
      match (fault.Fault.kind, e) with
      | Fault.Deviation f, Element.Resistor { n1; n2; value; _ } ->
          let p = two_node_pat t.index n1 n2 in
          or_structural
            {
              u = p;
              v = p;
              alpha_g = (1.0 /. (f *. value)) -. (1.0 /. value);
              alpha_c = 0.0;
            }
      | Fault.Deviation f, Element.Capacitor { n1; n2; value; _ } ->
          let p = two_node_pat t.index n1 n2 in
          or_structural
            { u = p; v = p; alpha_g = 0.0; alpha_c = (f -. 1.0) *. value }
      | Fault.Deviation f, Element.Inductor { name; value; _ } ->
          let bi = Mna.Index.branch t.index name in
          or_structural
            {
              u = [ (bi, 1.0) ];
              v = [ (bi, 1.0) ];
              alpha_g = 0.0;
              alpha_c = -.((f -. 1.0) *. value);
            }
      | (Fault.Open_circuit | Fault.Short_circuit), Element.Resistor { n1; n2; value; _ }
        ->
          let r =
            match fault.Fault.kind with
            | Fault.Open_circuit -> Fault.open_resistance
            | _ -> Fault.short_resistance
          in
          let p = two_node_pat t.index n1 n2 in
          or_structural
            { u = p; v = p; alpha_g = (1.0 /. r) -. (1.0 /. value); alpha_c = 0.0 }
      | (Fault.Open_circuit | Fault.Short_circuit), Element.Capacitor { n1; n2; value; _ }
        ->
          (* the capacitor is replaced by a resistance: add 1/r, retire sC *)
          let r =
            match fault.Fault.kind with
            | Fault.Open_circuit -> Fault.open_resistance
            | _ -> Fault.short_resistance
          in
          let p = two_node_pat t.index n1 n2 in
          or_structural { u = p; v = p; alpha_g = 1.0 /. r; alpha_c = -.value }
      | _ -> structural ())

(* ---- rank-1 solves ---- *)

let dot_pat (pat : pat) (x : Cmat.vec) =
  List.fold_left
    (fun acc (i, s) ->
      Complex.add acc
        { Complex.re = s *. x.(i).Complex.re; Complex.im = s *. x.(i).Complex.im })
    Complex.zero pat

let w_for fs u =
  match List.assoc_opt u fs.wcache with
  | Some w ->
      Obs.Metrics.incr "fastsim.wcache_hits";
      w
  | None ->
      Obs.Metrics.incr "fastsim.wcache_misses";
      let n = Array.length fs.x0 in
      let uvec = Array.make n Complex.zero in
      List.iter (fun (i, s) -> uvec.(i) <- { Complex.re = s; Complex.im = 0.0 }) u;
      let w = Cmat.lu_solve fs.lu uvec in
      fs.wcache <- (u, w) :: fs.wcache;
      w

let output_of t (x : Cmat.vec) =
  match t.out_idx with None -> Complex.zero | Some i -> x.(i)

(* Full fallback at one frequency: perturb a copy of A(jω) and
   refactorize — exactly the naive path, minus the assembly. *)
let full_point_solve t fs ~alpha ~u ~v =
  t.full_solves <- t.full_solves + 1;
  Obs.Metrics.incr "fastsim.full_solves";
  let af = Cmat.copy fs.a in
  List.iter
    (fun (i, si) ->
      List.iter
        (fun (j, sj) ->
          Cmat.add_to af i j
            { Complex.re = alpha.Complex.re *. si *. sj;
              Complex.im = alpha.Complex.im *. si *. sj })
        v)
    u;
  match Obs.Metrics.time "mna.solve_s" (fun () -> Cmat.solve af fs.b) with
  | x -> Some (output_of t x)
  | exception Cmat.Singular -> None

(* After refinement a healthy update sits at ~machine-precision
   normwise relative residual; anything above this bound means the
   update genuinely struggled (wild growth, near-cancelling denom) and
   the full refactorization is worth its O(n³). *)
let smw_tolerance = 1e-9

let smw_point_solve t fs ({ u; v; alpha_g; alpha_c } : rank1) =
  let alpha = { Complex.re = alpha_g; Complex.im = fs.omega *. alpha_c } in
  if alpha.Complex.re = 0.0 && alpha.Complex.im = 0.0 then Some (output_of t fs.x0)
  else begin
    let w = w_for fs u in
    let vw = dot_pat v w in
    let denom = Complex.add Complex.one (Complex.mul alpha vw) in
    if Complex.norm denom <= 1e-12 then full_point_solve t fs ~alpha ~u ~v
    else begin
      let vx0 = dot_pat v fs.x0 in
      let coef = Complex.div (Complex.mul alpha vx0) denom in
      let n = Array.length fs.x0 in
      let xf =
        Array.init n (fun i -> Complex.sub fs.x0.(i) (Complex.mul coef w.(i)))
      in
      (* Residual of the perturbed system without forming it:
         b − A_f xf = (b − α (vᵀxf) u) − A xf. *)
      let faulty_residual xf =
        let avxf = Complex.mul alpha (dot_pat v xf) in
        let r = Cmat.mul_vec fs.a xf in
        Array.iteri (fun i axi -> r.(i) <- Complex.sub fs.b.(i) axi) r;
        List.iter
          (fun (i, s) ->
            r.(i) <-
              Complex.sub r.(i)
                { Complex.re = s *. avxf.Complex.re;
                  Complex.im = s *. avxf.Complex.im })
          u;
        r
      in
      (* One step of iterative refinement: a large |α| (a catastrophic
         open/short is a ~10⁹-fold conductance change) amplifies
         rounding in the bare update; correcting by the SMW solve of
         the residual restores direct-solve accuracy at O(n²). The
         common case — a mild deviation whose bare update already sits
         near machine-precision residual (the 1024·ε gate below) —
         skips the extra back-solve. *)
      let refine r xf =
        let d0 = Cmat.lu_solve fs.lu r in
        let dcoef = Complex.div (Complex.mul alpha (dot_pat v d0)) denom in
        Array.mapi
          (fun i x -> Complex.add x (Complex.sub d0.(i) (Complex.mul dcoef w.(i))))
          xf
      in
      let scale_of xf = (fs.anorm *. vec_norm_inf xf) +. fs.bnorm +. 1e-300 in
      let r = faulty_residual xf in
      let res = vec_norm_inf r in
      let xf, res =
        if res <= 1024.0 *. epsilon_float *. scale_of xf then (xf, res)
        else begin
          Obs.Metrics.incr "fastsim.refine_steps";
          let xf = refine r xf in
          (xf, vec_norm_inf (faulty_residual xf))
        end
      in
      if res <= smw_tolerance *. scale_of xf then begin
        t.smw_solves <- t.smw_solves + 1;
        Obs.Metrics.incr "fastsim.smw_solves";
        Some (output_of t xf)
      end
      else full_point_solve t fs ~alpha ~u ~v
    end
  end

(* ---- structural fallback: split-assemble the faulty netlist once ---- *)

let structural_response t faulty =
  Obs.Trace.span "fastsim.structural" @@ fun () ->
  let index = Mna.Index.build faulty in
  let stamps = Mna.Stamps.build ~sources:(Mna.Assemble.Only t.source) index faulty in
  let n = Mna.Stamps.size stamps in
  let out = Mna.Index.node index t.output in
  let buf = Cmat.create n n in
  Array.map
    (fun fs ->
      t.full_solves <- t.full_solves + 1;
      Obs.Metrics.incr "fastsim.full_solves";
      Mna.Stamps.fill stamps ~omega:fs.omega buf;
      match
        Obs.Metrics.time "mna.solve_s" (fun () ->
            Cmat.solve buf (Mna.Stamps.rhs stamps ~omega:fs.omega))
      with
      | x -> Some (match out with None -> Complex.zero | Some i -> x.(i))
      | exception Cmat.Singular -> None)
    t.freqs

let response t fault =
  match classify t fault with
  | Unchanged -> Array.map (fun z -> Some z) t.nominal
  | Rank_one r1 -> Array.map (fun fs -> smw_point_solve t fs r1) t.freqs
  | Structural faulty ->
      Obs.Metrics.incr "fastsim.structural_faults";
      structural_response t faulty
