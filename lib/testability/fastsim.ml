module Netlist = Circuit.Netlist
module Element = Circuit.Element
module Cmat = Linalg.Cmat
module Big = Cmat.Big
module Bvec = Big.Vec
module Csparse = Linalg.Csparse

(* Which factorization serves the fault-free system. [Auto] measures
   the view: below the crossover dimension the dense planar kernels
   win on locality and the sparse ordering overhead cannot pay for
   itself, so small circuits keep the dense path (and its bitwise
   behaviour) unconditionally. *)
type backend = Dense | Sparse | Auto

let auto_crossover_n = 64
let auto_pick ~n ~nnz = n >= auto_crossover_n && 8 * nnz <= n * n

(* A sparse ±1 stamp pattern: the nonzero rows (columns) of the rank-1
   factor u (v), as (index, sign) pairs. *)
type pat = (int * float) list

(* ΔA(ω) = (alpha_g + jω alpha_c) · u vᵀ *)
type rank1 = { u : pat; v : pat; alpha_g : float; alpha_c : float }

(* Fault classification, before any per-plan state is built. *)
type cls =
  | Unchanged  (* the fault does not alter the system (e.g. grounded element) *)
  | Rank_one of rank1
  | Structural of Netlist.t  (* full path on the injected netlist *)

(* One cached A⁻¹u back-solve. [fresh] lets {!warm_cache} prepopulate
   the table without disturbing the hit/miss accounting: a warmed
   entry is "fresh" until its first reader, who claims it with a CAS
   and books the one miss the lazy path would have booked at insertion
   time. The claim is exactly-once even when workers race, so the
   counter totals are schedule-invariant. *)
type wentry = { w : Bvec.t; fresh : bool Atomic.t }

(* The factored fault-free system at one frequency. The dense arm
   keeps the assembled A(jω) for residuals and perturbed-copy
   fallbacks; the sparse arm keeps only the nnz value planes plus the
   sparse factors — O(nnz + fill) per frequency instead of O(n²) —
   and densifies on demand for the rare full fallback. *)
type solver =
  | Dense_solver of { da : Big.t; dlu : Big.lu }
  | Sparse_solver of {
      spat : Csparse.pattern;
      sre : Csparse.plane;  (* A(jω) values, slot order of [spat] *)
      sim_ : Csparse.plane;
      num : Csparse.numeric;  (* factored; shared symbolic analysis *)
    }

type freq_state = {
  omega : float;
  f_hz : float;
  solver : solver;
  anorm : float;
  b : Bvec.t;
  bnorm : float;
  x0 : Bvec.t;
  wcache : (pat, wentry) Hashtbl.t;  (* u-pattern -> A⁻¹u this frequency *)
}

(* Backend dispatch for the four operations the solve paths need. The
   residual gate downstream makes the two arms interchangeable: both
   produce solutions the gate re-verifies against the same A(jω). *)

let solver_solve_into fs ~b ~x =
  match fs.solver with
  | Dense_solver { dlu; _ } -> Big.lu_solve_into dlu ~b ~x
  | Sparse_solver { num; _ } -> Csparse.solve_into num ~b ~x

let solver_solve_block_into fs ~b ~x =
  match fs.solver with
  | Dense_solver { dlu; _ } -> Big.lu_solve_block_into dlu ~b ~x
  | Sparse_solver { num; _ } -> Csparse.solve_block_into num ~b ~x

let solver_mul_vec_into fs ~x ~y =
  match fs.solver with
  | Dense_solver { da; _ } -> Big.mul_vec_into da ~x ~y
  | Sparse_solver { spat; sre; sim_; _ } ->
      Csparse.mul_vec_into spat ~re:sre ~im:sim_ ~x ~y

(* Materialize A(jω) into a dense workspace (the full-refactorization
   fallback's starting point). *)
let solver_dense_into fs dst =
  match fs.solver with
  | Dense_solver { da; _ } -> Big.blit ~src:da ~dst
  | Sparse_solver { spat; sre; sim_; _ } -> Csparse.dense_into spat ~re:sre ~im:sim_ dst

type t = {
  netlist : Netlist.t;
  index : Mna.Index.t;
  source : string;
  output : string;
  out_idx : int option;
  n : int;
  freqs : freq_state array;
  nominal : Complex.t array;
  nom_re : float array;  (* nominal, planar, for the Unchanged fast path *)
  nom_im : float array;
  smw_solves : int Atomic.t;
  full_solves : int Atomic.t;
}

(* A fault ready to simulate. Plans are immutable and safe to share
   across domains; all mutable solve state lives in per-domain
   scratch. *)
type plan =
  | P_unchanged
  | P_rank1 of rank1
  | P_structural of { s_stamps : Mna.Stamps.t; s_n : int; s_out : int option }

(* Counter increments batched per domain: the solver hot loop bumps
   plain mutable ints and {!flush_pending} folds them into the
   engine's atomics and the {!Obs.Metrics} registry once per response
   / range call, instead of one sharded-counter operation per solve
   (which was ~17% of a metrics-enabled campaign). [p_owner] records
   which engine the pending counts belong to so a domain interleaving
   several engines can never misattribute them. *)
type pending = {
  mutable p_owner : t option;
  mutable p_smw : int;
  mutable p_full : int;
  mutable p_refine : int;
  mutable p_hits : int;
  mutable p_misses : int;
}

(* Per-domain off-heap workspaces for the rank-1 hot path: one scratch
   record per domain (via DLS), re-sized when the engine dimension
   changes. Workers therefore share nothing but the scheduler state
   and the read-only engine/plan state. The [s*] fields are the
   fallback workspace (full refactorization and structural assembly),
   sized independently because a structural netlist can change the
   system dimension. *)
type scratch = {
  mutable dim : int;
  mutable xf : Bvec.t;  (* candidate faulty solution *)
  mutable resid : Bvec.t;  (* faulty residual b_f − A_f xf *)
  mutable d0 : Bvec.t;  (* refinement back-solve *)
  mutable uvec : Bvec.t;  (* densified u pattern for cache misses *)
  mutable sdim : int;
  mutable sm : Big.t;  (* fallback assembly / perturbed-copy target *)
  mutable slu : Big.lu;
  mutable sb : Bvec.t;
  mutable sx : Bvec.t;
  pend : pending;
}

let scratch_key =
  Domain.DLS.new_key (fun () ->
      {
        dim = -1;
        xf = Bvec.create 0;
        resid = Bvec.create 0;
        d0 = Bvec.create 0;
        uvec = Bvec.create 0;
        sdim = -1;
        sm = Big.create 0 0;
        slu = Big.lu_create 0;
        sb = Bvec.create 0;
        sx = Bvec.create 0;
        pend =
          {
            p_owner = None;
            p_smw = 0;
            p_full = 0;
            p_refine = 0;
            p_hits = 0;
            p_misses = 0;
          };
      })

let flush_pending (p : pending) =
  match p.p_owner with
  | None -> ()
  | Some t ->
      if p.p_smw > 0 then begin
        ignore (Atomic.fetch_and_add t.smw_solves p.p_smw);
        Obs.Metrics.incr "fastsim.smw_solves" ~by:p.p_smw
      end;
      if p.p_full > 0 then begin
        ignore (Atomic.fetch_and_add t.full_solves p.p_full);
        Obs.Metrics.incr "fastsim.full_solves" ~by:p.p_full
      end;
      if p.p_refine > 0 then Obs.Metrics.incr "fastsim.refine_steps" ~by:p.p_refine;
      if p.p_hits > 0 then Obs.Metrics.incr "fastsim.wcache_hits" ~by:p.p_hits;
      if p.p_misses > 0 then Obs.Metrics.incr "fastsim.wcache_misses" ~by:p.p_misses;
      p.p_smw <- 0;
      p.p_full <- 0;
      p.p_refine <- 0;
      p.p_hits <- 0;
      p.p_misses <- 0;
      p.p_owner <- None

(* The pending record for engine [t]: re-targets (flushing first) if
   the previous counts belonged to a different engine. *)
let pend_for t s =
  let p = s.pend in
  (match p.p_owner with
  | Some o when o == t -> ()
  | Some _ ->
      flush_pending p;
      p.p_owner <- Some t
  | None -> p.p_owner <- Some t);
  p

let scratch_for n =
  let s = Domain.DLS.get scratch_key in
  if s.dim <> n then begin
    s.dim <- n;
    s.xf <- Bvec.create n;
    s.resid <- Bvec.create n;
    s.d0 <- Bvec.create n;
    s.uvec <- Bvec.create n
  end;
  s

let fallback_ws s n =
  if s.sdim <> n then begin
    s.sdim <- n;
    s.sm <- Big.create n n;
    s.slu <- Big.lu_create n;
    s.sb <- Bvec.create n;
    s.sx <- Bvec.create n
  end;
  s

let create ?(backend = Auto) ~source ~output ~freqs_hz netlist =
  Obs.Trace.span "fastsim.create" @@ fun () ->
  let index = Mna.Index.build netlist in
  let n = Mna.Index.size index in
  let out_idx = Mna.Index.node index output in
  let singular_at f_hz =
    raise
      (Mna.Ac.Singular_circuit
         (Printf.sprintf "MNA matrix singular at f = %g Hz for %S" f_hz
            (Netlist.title netlist)))
  in
  (* [Auto] never pays the sparse build below the dimension crossover;
     above it the decision needs nnz, which the build provides. *)
  let sparse_stamps =
    match backend with
    | Dense -> None
    | Auto when n < auto_crossover_n || Array.length freqs_hz = 0 -> None
    | Sparse | Auto -> (
        let sp =
          Mna.Stamps.build_sparse ~sources:(Mna.Assemble.Only source) index netlist
        in
        match backend with
        | Sparse -> Some sp
        | _ -> if auto_pick ~n ~nnz:(Mna.Stamps.sparse_nnz sp) then Some sp else None)
  in
  let freqs =
    match sparse_stamps with
    | None ->
        let stamps =
          Mna.Stamps.build ~sources:(Mna.Assemble.Only source) index netlist
        in
        Array.map
          (fun f_hz ->
            let omega = 2.0 *. Float.pi *. f_hz in
            let a = Big.create n n in
            Mna.Stamps.fill_big stamps ~omega a;
            let b = Bvec.create n in
            Mna.Stamps.rhs_into_big stamps ~omega b;
            match Obs.Metrics.time "mna.factor_s" (fun () -> Big.lu_factor a) with
            | exception Cmat.Singular -> singular_at f_hz
            | lu ->
                let x0 = Bvec.create n in
                Big.lu_solve_into lu ~b ~x:x0;
                {
                  omega;
                  f_hz;
                  solver = Dense_solver { da = a; dlu = lu };
                  anorm = Big.norm_inf a;
                  b;
                  bnorm = Bvec.norm_inf b;
                  x0;
                  wcache = Hashtbl.create 16;
                })
          freqs_hz
    | Some sp ->
        let spat = Mna.Stamps.sparse_pattern sp in
        let nnz = Mna.Stamps.sparse_nnz sp in
        (* One symbolic Markowitz analysis per netlist, on the values
           at the grid's middle frequency (the pattern is fixed and
           entry magnitudes vary smoothly in ω, so one pivot order
           serves the whole sweep); per-frequency work is then a
           numeric refactorization in that fixed pattern. *)
        let sym =
          let mid_hz = freqs_hz.(Array.length freqs_hz / 2) in
          let re = Csparse.plane nnz and im = Csparse.plane nnz in
          Mna.Stamps.fill_sparse sp ~omega:(2.0 *. Float.pi *. mid_hz) ~re ~im;
          match
            Obs.Metrics.time "mna.analyze_s" (fun () -> Csparse.analyze spat ~re ~im)
          with
          | exception Cmat.Singular -> singular_at mid_hz
          | sym -> sym
        in
        Array.map
          (fun f_hz ->
            let omega = 2.0 *. Float.pi *. f_hz in
            let sre = Csparse.plane nnz and sim_ = Csparse.plane nnz in
            Mna.Stamps.fill_sparse sp ~omega ~re:sre ~im:sim_;
            let b = Bvec.create n in
            Mna.Stamps.sparse_rhs_into_big sp ~omega b;
            let num = Csparse.numeric sym in
            (match
               Obs.Metrics.time "mna.factor_s" (fun () ->
                   Csparse.refactor num ~re:sre ~im:sim_)
             with
            | exception Cmat.Singular -> singular_at f_hz
            | () -> ());
            let x0 = Bvec.create n in
            Csparse.solve_into num ~b ~x:x0;
            {
              omega;
              f_hz;
              solver = Sparse_solver { spat; sre; sim_; num };
              anorm = Csparse.norm_inf spat ~re:sre ~im:sim_;
              b;
              bnorm = Bvec.norm_inf b;
              x0;
              wcache = Hashtbl.create 16;
            })
          freqs_hz
  in
  let nominal =
    Array.map
      (fun fs -> match out_idx with None -> Complex.zero | Some i -> Bvec.get fs.x0 i)
      freqs
  in
  {
    netlist;
    index;
    source;
    output;
    out_idx;
    n;
    freqs;
    nominal;
    nom_re = Array.map (fun (z : Complex.t) -> z.Complex.re) nominal;
    nom_im = Array.map (fun (z : Complex.t) -> z.Complex.im) nominal;
    smw_solves = Atomic.make 0;
    full_solves = Atomic.make 0;
  }

let nominal t = t.nominal
let stats t = (Atomic.get t.smw_solves, Atomic.get t.full_solves)
let dim t = t.n
let n_freqs t = Array.length t.freqs

let uses_sparse t =
  Array.length t.freqs > 0
  &&
  match t.freqs.(0).solver with Sparse_solver _ -> true | Dense_solver _ -> false

(* ---- fault classification ---- *)

let two_node_pat index n1 n2 : pat =
  match (Mna.Index.node index n1, Mna.Index.node index n2) with
  | Some i, Some j when i = j -> []
  | Some i, Some j -> [ (i, 1.0); (j, -1.0) ]
  | Some i, None -> [ (i, 1.0) ]
  | None, Some j -> [ (j, -1.0) ]
  | None, None -> []

let rank1_if_sane r1 =
  if Float.is_finite r1.alpha_g && Float.is_finite r1.alpha_c then
    if r1.u = [] || r1.v = [] || (r1.alpha_g = 0.0 && r1.alpha_c = 0.0) then
      Some Unchanged
    else Some (Rank_one r1)
  else None

(* The admittance-style elements stamp y·uuᵀ with u the two-node
   pattern, so a value change is the rank-1 perturbation Δy·uuᵀ; an
   inductor's deviation only moves its own branch-equation diagonal
   entry, −sΔL. Anything else (dimension-changing replacements, source
   deviations, non-finite deltas) takes the structural path. *)
let classify t (fault : Fault.t) =
  match Netlist.find t.netlist fault.Fault.element with
  | None -> raise (Fault.Unknown_element fault.Fault.element)
  | Some e -> (
      let structural () = Structural (Fault.inject fault t.netlist) in
      let or_structural r1 =
        match rank1_if_sane r1 with Some p -> p | None -> structural ()
      in
      match (fault.Fault.kind, e) with
      | Fault.Deviation f, Element.Resistor { n1; n2; value; _ } ->
          let p = two_node_pat t.index n1 n2 in
          or_structural
            {
              u = p;
              v = p;
              alpha_g = (1.0 /. (f *. value)) -. (1.0 /. value);
              alpha_c = 0.0;
            }
      | Fault.Deviation f, Element.Capacitor { n1; n2; value; _ } ->
          let p = two_node_pat t.index n1 n2 in
          or_structural
            { u = p; v = p; alpha_g = 0.0; alpha_c = (f -. 1.0) *. value }
      | Fault.Deviation f, Element.Inductor { name; value; _ } ->
          let bi = Mna.Index.branch t.index name in
          or_structural
            {
              u = [ (bi, 1.0) ];
              v = [ (bi, 1.0) ];
              alpha_g = 0.0;
              alpha_c = -.((f -. 1.0) *. value);
            }
      | (Fault.Open_circuit | Fault.Short_circuit), Element.Resistor { n1; n2; value; _ }
        ->
          let r =
            match fault.Fault.kind with
            | Fault.Open_circuit -> Fault.open_resistance
            | _ -> Fault.short_resistance
          in
          let p = two_node_pat t.index n1 n2 in
          or_structural
            { u = p; v = p; alpha_g = (1.0 /. r) -. (1.0 /. value); alpha_c = 0.0 }
      | (Fault.Open_circuit | Fault.Short_circuit), Element.Capacitor { n1; n2; value; _ }
        ->
          (* the capacitor is replaced by a resistance: add 1/r, retire sC *)
          let r =
            match fault.Fault.kind with
            | Fault.Open_circuit -> Fault.open_resistance
            | _ -> Fault.short_resistance
          in
          let p = two_node_pat t.index n1 n2 in
          or_structural { u = p; v = p; alpha_g = 1.0 /. r; alpha_c = -.value }
      | _ -> structural ())

let plan_of t fault =
  match classify t fault with
  | Unchanged -> P_unchanged
  | Rank_one r1 -> P_rank1 r1
  | Structural faulty ->
      (* Once per (engine, fault) plan — the same accounting point the
         per-call structural path used before plans existed. *)
      Obs.Metrics.incr "fastsim.structural_faults";
      Obs.Trace.span "fastsim.structural" @@ fun () ->
      let index = Mna.Index.build faulty in
      let stamps =
        Mna.Stamps.build ~sources:(Mna.Assemble.Only t.source) index faulty
      in
      P_structural
        {
          s_stamps = stamps;
          s_n = Mna.Stamps.size stamps;
          s_out = Mna.Index.node index t.output;
        }

(* ---- rank-1 solves ---- *)

(* Pattern dot product against one plane: Σ s·plane.(i). The complex
   dot against a planar vector is two of these, one per plane. *)
let rec dot_pat (pat : pat) (plane : Big.plane) acc =
  match pat with
  | [] -> acc
  | (i, s) :: tl -> dot_pat tl plane (acc +. (s *. Bigarray.Array1.unsafe_get plane i))

let dot_pat pat plane = dot_pat pat plane 0.0

(* (nr + i·ni) / (dr + i·di) — Smith's algorithm, exactly Complex.div. *)
let div2 nr ni dr di =
  if Float.abs dr >= Float.abs di then
    let r = di /. dr in
    let d = dr +. (r *. di) in
    ((nr +. (r *. ni)) /. d, (ni -. (r *. nr)) /. d)
  else
    let r = dr /. di in
    let d = di +. (r *. dr) in
    (((r *. nr) +. ni) /. d, ((r *. ni) -. nr) /. d)

let solve_pattern fs (u : pat) (w : Bvec.t) =
  let s = scratch_for (Bvec.length fs.x0) in
  let uvec = s.uvec in
  List.iter (fun (i, sg) -> Bigarray.Array1.set uvec.Bvec.re i sg) u;
  solver_solve_into fs ~b:uvec ~x:w;
  List.iter (fun (i, _) -> Bigarray.Array1.set uvec.Bvec.re i 0.0) u

(* Cache lookup. The on-demand insertion path mutates the Hashtbl and
   is only safe while the engine is confined to one domain; parallel
   analysis must {!warm_cache} first so lookups during the parallel
   phase are read-only. *)
let w_for t fs u =
  let s = Domain.DLS.get scratch_key in
  match Hashtbl.find_opt fs.wcache u with
  | Some e ->
      let p = pend_for t s in
      if Atomic.get e.fresh && Atomic.compare_and_set e.fresh true false then
        p.p_misses <- p.p_misses + 1
      else p.p_hits <- p.p_hits + 1;
      e.w
  | None ->
      let p = pend_for t s in
      p.p_misses <- p.p_misses + 1;
      let w = Bvec.create (Bvec.length fs.x0) in
      solve_pattern fs u w;
      Hashtbl.add fs.wcache u { w; fresh = Atomic.make false };
      w

(* Warm the A⁻¹u cache with one multi-RHS block back-solve per
   frequency: every missing pattern at that frequency becomes a column
   of one n×k block, so the cached LU factor is swept once per
   frequency instead of once per (pattern, frequency). Column results
   are bitwise-identical to the per-pattern {!solve_pattern} path
   (see {!Linalg.Cmat.Big.lu_solve_block_into}). *)
let warm_cache t faults =
  Obs.Trace.span "fastsim.warm_cache" @@ fun () ->
  let pats =
    List.fold_left
      (fun acc fault ->
        match classify t fault with
        | Rank_one { u; _ } -> if List.mem u acc then acc else u :: acc
        | Unchanged | Structural _ -> acc
        | exception Fault.Unknown_element _ -> acc)
      [] faults
    |> List.rev
  in
  if pats <> [] then
    Array.iter
      (fun fs ->
        let missing = List.filter (fun u -> not (Hashtbl.mem fs.wcache u)) pats in
        let k = List.length missing in
        if k > 0 then begin
          let b = Big.create t.n k and x = Big.create t.n k in
          List.iteri
            (fun r u ->
              List.iter
                (fun (i, sg) -> Big.set b i r Complex.{ re = sg; im = 0.0 })
                u)
            missing;
          solver_solve_block_into fs ~b ~x;
          List.iteri
            (fun r u ->
              let w = Bvec.create t.n in
              Big.col_into x ~c:r w;
              Hashtbl.add fs.wcache u { w; fresh = Atomic.make true })
            missing
        end)
      t.freqs

(* ---- point solvers ----

   Each writes slot [ix] of the caller's planar response row
   ([re]/[im] plus the [ok] validity byte, '\000' = singular). Keeping
   the output planar avoids boxing a [Some Complex.t] per point in the
   campaign inner loop. *)

let write_out t (x : Bvec.t) ~re ~im ~ok ~ix =
  (match t.out_idx with
  | None ->
      Array.unsafe_set re ix 0.0;
      Array.unsafe_set im ix 0.0
  | Some oi ->
      Array.unsafe_set re ix (Bigarray.Array1.unsafe_get x.Bvec.re oi);
      Array.unsafe_set im ix (Bigarray.Array1.unsafe_get x.Bvec.im oi));
  Bytes.unsafe_set ok ix '\001'

(* Full fallback at one frequency: perturb a copy of A(jω) and
   refactorize — exactly the naive path, minus the assembly. *)
let full_point_solve t fs ~al_re ~al_im ~u ~v ~re ~im ~ok ~ix =
  let s = Domain.DLS.get scratch_key in
  let p = pend_for t s in
  p.p_full <- p.p_full + 1;
  let s = fallback_ws s t.n in
  solver_dense_into fs s.sm;
  List.iter
    (fun (i, si) ->
      List.iter
        (fun (j, sj) ->
          Big.add_to s.sm i j
            { Complex.re = al_re *. si *. sj; Complex.im = al_im *. si *. sj })
        v)
    u;
  match
    Obs.Metrics.time "mna.solve_s" (fun () ->
        Big.lu_factor_into s.slu s.sm;
        Big.lu_solve_into s.slu ~b:fs.b ~x:s.sx)
  with
  | () -> write_out t s.sx ~re ~im ~ok ~ix
  | exception Cmat.Singular ->
      Array.unsafe_set re ix 0.0;
      Array.unsafe_set im ix 0.0;
      Bytes.unsafe_set ok ix '\000'

(* After refinement a healthy update sits at ~machine-precision
   normwise relative residual; anything above this bound means the
   update genuinely struggled (wild growth, near-cancelling denom) and
   the full refactorization is worth its O(n³). *)
let smw_tolerance = 1e-9

(* Conformance-testing chaos hook: [`Smw_denominator k] scales the
   Sherman–Morrison denominator by [k] and bypasses the residual guard
   — the exact class of silent-wrong-answer bug the differential
   oracles exist to catch. Skipping the guard is the point: a real
   denominator bug shipped together with a broken guard is what makes
   the fast path return plausible-but-wrong responses. *)
let chaos : [ `None | `Smw_denominator of float ] Atomic.t = Atomic.make `None
let set_chaos c = Atomic.set chaos c

let smw_point_solve t fs ({ u; v; alpha_g; alpha_c } : rank1) ~re ~im ~ok ~ix =
  let al_re = alpha_g and al_im = fs.omega *. alpha_c in
  if al_re = 0.0 && al_im = 0.0 then write_out t fs.x0 ~re ~im ~ok ~ix
  else begin
    let w = w_for t fs u in
    let vw_re = dot_pat v w.Bvec.re and vw_im = dot_pat v w.Bvec.im in
    let den_re = 1.0 +. ((al_re *. vw_re) -. (al_im *. vw_im))
    and den_im = (al_re *. vw_im) +. (al_im *. vw_re) in
    let chaotic, den_re, den_im =
      match Atomic.get chaos with
      | `None -> (false, den_re, den_im)
      | `Smw_denominator k -> (true, den_re *. k, den_im *. k)
    in
    if Cmat.norm2 den_re den_im <= 1e-12 then
      full_point_solve t fs ~al_re ~al_im ~u ~v ~re ~im ~ok ~ix
    else begin
      let vx0_re = dot_pat v fs.x0.Bvec.re and vx0_im = dot_pat v fs.x0.Bvec.im in
      let coef_re, coef_im =
        div2
          ((al_re *. vx0_re) -. (al_im *. vx0_im))
          ((al_re *. vx0_im) +. (al_im *. vx0_re))
          den_re den_im
      in
      let n = t.n in
      let s = scratch_for n in
      let xf = s.xf and resid = s.resid in
      let xf_re = xf.Bvec.re and xf_im = xf.Bvec.im in
      let wre = w.Bvec.re and wim = w.Bvec.im in
      let x0re = fs.x0.Bvec.re and x0im = fs.x0.Bvec.im in
      let open Bigarray in
      for i = 0 to n - 1 do
        let wr = Array1.unsafe_get wre i and wi = Array1.unsafe_get wim i in
        Array1.unsafe_set xf_re i
          (Array1.unsafe_get x0re i -. ((coef_re *. wr) -. (coef_im *. wi)));
        Array1.unsafe_set xf_im i
          (Array1.unsafe_get x0im i -. ((coef_re *. wi) +. (coef_im *. wr)))
      done;
      (* Residual of the perturbed system without forming it:
         b − A_f xf = (b − α (vᵀxf) u) − A xf. *)
      let faulty_residual () =
        let vxf_re = dot_pat v xf_re and vxf_im = dot_pat v xf_im in
        let av_re = (al_re *. vxf_re) -. (al_im *. vxf_im)
        and av_im = (al_re *. vxf_im) +. (al_im *. vxf_re) in
        solver_mul_vec_into fs ~x:xf ~y:resid;
        let rre = resid.Bvec.re and rim = resid.Bvec.im in
        let bre = fs.b.Bvec.re and bim = fs.b.Bvec.im in
        for i = 0 to n - 1 do
          Array1.unsafe_set rre i (Array1.unsafe_get bre i -. Array1.unsafe_get rre i);
          Array1.unsafe_set rim i (Array1.unsafe_get bim i -. Array1.unsafe_get rim i)
        done;
        List.iter
          (fun (i, sg) ->
            Array1.set rre i (Array1.get rre i -. (sg *. av_re));
            Array1.set rim i (Array1.get rim i -. (sg *. av_im)))
          u
      in
      (* One step of iterative refinement: a large |α| (a catastrophic
         open/short is a ~10⁹-fold conductance change) amplifies
         rounding in the bare update; correcting by the SMW solve of
         the residual restores direct-solve accuracy at O(n²). The
         common case — a mild deviation whose bare update already sits
         near machine-precision residual (the 1024·ε gate below) —
         skips the extra back-solve. *)
      let refine () =
        let d0 = s.d0 in
        solver_solve_into fs ~b:resid ~x:d0;
        let d0re = d0.Bvec.re and d0im = d0.Bvec.im in
        let vd_re = dot_pat v d0re and vd_im = dot_pat v d0im in
        let dc_re, dc_im =
          div2
            ((al_re *. vd_re) -. (al_im *. vd_im))
            ((al_re *. vd_im) +. (al_im *. vd_re))
            den_re den_im
        in
        for i = 0 to n - 1 do
          let wr = Array1.unsafe_get wre i and wi = Array1.unsafe_get wim i in
          Array1.unsafe_set xf_re i
            (Array1.unsafe_get xf_re i
            +. (Array1.unsafe_get d0re i -. ((dc_re *. wr) -. (dc_im *. wi))));
          Array1.unsafe_set xf_im i
            (Array1.unsafe_get xf_im i
            +. (Array1.unsafe_get d0im i -. ((dc_re *. wi) +. (dc_im *. wr))))
        done
      in
      if chaotic then begin
        let p = pend_for t (Domain.DLS.get scratch_key) in
        p.p_smw <- p.p_smw + 1;
        write_out t xf ~re ~im ~ok ~ix
      end
      else begin
        let scale_of () = (fs.anorm *. Bvec.norm_inf xf) +. fs.bnorm +. 1e-300 in
        faulty_residual ();
        let res = Bvec.norm_inf resid in
        let res =
          if res <= 1024.0 *. epsilon_float *. scale_of () then res
          else begin
            let p = pend_for t (Domain.DLS.get scratch_key) in
            p.p_refine <- p.p_refine + 1;
            refine ();
            faulty_residual ();
            Bvec.norm_inf resid
          end
        in
        if res <= smw_tolerance *. scale_of () then begin
          let p = pend_for t (Domain.DLS.get scratch_key) in
          p.p_smw <- p.p_smw + 1;
          write_out t xf ~re ~im ~ok ~ix
        end
        else full_point_solve t fs ~al_re ~al_im ~u ~v ~re ~im ~ok ~ix
      end
    end
  end

(* ---- structural fallback: the plan holds the split-assembled
   stamps; each point assembles and factorizes in per-domain fallback
   workspaces ---- *)

let structural_point t ~s_stamps ~s_n ~s_out fs ~re ~im ~ok ~ix =
  let s = Domain.DLS.get scratch_key in
  let p = pend_for t s in
  p.p_full <- p.p_full + 1;
  let s = fallback_ws s s_n in
  Mna.Stamps.fill_big s_stamps ~omega:fs.omega s.sm;
  Mna.Stamps.rhs_into_big s_stamps ~omega:fs.omega s.sb;
  match
    Obs.Metrics.time "mna.solve_s" (fun () ->
        Big.lu_factor_into s.slu s.sm;
        Big.lu_solve_into s.slu ~b:s.sb ~x:s.sx)
  with
  | () -> (
      match s_out with
      | None ->
          Array.unsafe_set re ix 0.0;
          Array.unsafe_set im ix 0.0;
          Bytes.unsafe_set ok ix '\001'
      | Some oi ->
          Array.unsafe_set re ix (Bigarray.Array1.unsafe_get s.sx.Bvec.re oi);
          Array.unsafe_set im ix (Bigarray.Array1.unsafe_get s.sx.Bvec.im oi);
          Bytes.unsafe_set ok ix '\001')
  | exception Cmat.Singular ->
      Array.unsafe_set re ix 0.0;
      Array.unsafe_set im ix 0.0;
      Bytes.unsafe_set ok ix '\000'

(* ---- response over a frequency range ---- *)

let response_range_into t plan ~lo ~hi ~re ~im ~ok =
  if lo < 0 || hi > Array.length t.freqs || lo > hi then
    invalid_arg "Fastsim.response_range_into: bad frequency range";
  if Array.length re < hi || Array.length im < hi || Bytes.length ok < hi then
    invalid_arg "Fastsim.response_range_into: row buffers too short";
  Fun.protect ~finally:(fun () -> flush_pending (Domain.DLS.get scratch_key).pend)
  @@ fun () ->
  match plan with
  | P_unchanged ->
      for i = lo to hi - 1 do
        Array.unsafe_set re i (Array.unsafe_get t.nom_re i);
        Array.unsafe_set im i (Array.unsafe_get t.nom_im i);
        Bytes.unsafe_set ok i '\001'
      done
  | P_rank1 r1 ->
      for i = lo to hi - 1 do
        smw_point_solve t (Array.unsafe_get t.freqs i) r1 ~re ~im ~ok ~ix:i
      done
  | P_structural { s_stamps; s_n; s_out } ->
      for i = lo to hi - 1 do
        structural_point t ~s_stamps ~s_n ~s_out (Array.unsafe_get t.freqs i) ~re ~im
          ~ok ~ix:i
      done

let response t fault =
  let plan = plan_of t fault in
  let nf = Array.length t.freqs in
  let rre = Array.make nf 0.0
  and rim = Array.make nf 0.0
  and ok = Bytes.make nf '\000' in
  response_range_into t plan ~lo:0 ~hi:nf ~re:rre ~im:rim ~ok;
  Array.init nf (fun i ->
      if Bytes.get ok i = '\000' then None
      else Some { Complex.re = rre.(i); im = rim.(i) })
