module Netlist = Circuit.Netlist
module Element = Circuit.Element
module Cmat = Linalg.Cmat
module Pvec = Cmat.Pvec

(* A sparse ±1 stamp pattern: the nonzero rows (columns) of the rank-1
   factor u (v), as (index, sign) pairs. *)
type pat = (int * float) list

(* ΔA(ω) = (alpha_g + jω alpha_c) · u vᵀ *)
type rank1 = { u : pat; v : pat; alpha_g : float; alpha_c : float }

type plan =
  | Unchanged  (* the fault does not alter the system (e.g. grounded element) *)
  | Rank_one of rank1
  | Structural of Netlist.t  (* full path on the injected netlist *)

(* One cached A⁻¹u back-solve. [fresh] lets {!warm_cache} prepopulate
   the table without disturbing the hit/miss accounting: a warmed
   entry is "fresh" until its first reader, who claims it with a CAS
   and books the one miss the lazy path would have booked at insertion
   time. The claim is exactly-once even when workers race, so the
   counter totals are schedule-invariant. *)
type wentry = { w : Pvec.t; fresh : bool Atomic.t }

type freq_state = {
  omega : float;
  f_hz : float;
  a : Cmat.t;  (* fault-free A(jω), kept for residual checks and fallbacks *)
  anorm : float;
  lu : Cmat.lu;
  b : Pvec.t;
  bnorm : float;
  x0 : Pvec.t;
  wcache : (pat, wentry) Hashtbl.t;  (* u-pattern -> A⁻¹u this frequency *)
}

type t = {
  netlist : Netlist.t;
  index : Mna.Index.t;
  source : string;
  output : string;
  out_idx : int option;
  freqs : freq_state array;
  nominal : Complex.t array;
  smw_solves : int Atomic.t;
  full_solves : int Atomic.t;
}

(* Per-domain planar workspaces for the rank-1 hot path: one scratch
   record per domain (via DLS), re-sized when the engine dimension
   changes. Workers therefore share nothing but the scheduler cursor
   and the read-only engine state. *)
type scratch = {
  mutable dim : int;
  mutable xf : Pvec.t;  (* candidate faulty solution *)
  mutable resid : Pvec.t;  (* faulty residual b_f − A_f xf *)
  mutable d0 : Pvec.t;  (* refinement back-solve *)
  mutable uvec : Pvec.t;  (* densified u pattern for cache misses *)
}

let scratch_key =
  Domain.DLS.new_key (fun () ->
      { dim = -1; xf = Pvec.create 0; resid = Pvec.create 0; d0 = Pvec.create 0;
        uvec = Pvec.create 0 })

let scratch_for n =
  let s = Domain.DLS.get scratch_key in
  if s.dim <> n then begin
    s.dim <- n;
    s.xf <- Pvec.create n;
    s.resid <- Pvec.create n;
    s.d0 <- Pvec.create n;
    s.uvec <- Pvec.create n
  end;
  s

let create ~source ~output ~freqs_hz netlist =
  Obs.Trace.span "fastsim.create" @@ fun () ->
  let index = Mna.Index.build netlist in
  let stamps = Mna.Stamps.build ~sources:(Mna.Assemble.Only source) index netlist in
  let n = Mna.Stamps.size stamps in
  let out_idx = Mna.Index.node index output in
  let freqs =
    Array.map
      (fun f_hz ->
        let omega = 2.0 *. Float.pi *. f_hz in
        let a = Mna.Stamps.matrix stamps ~omega in
        let b = Pvec.create n in
        Mna.Stamps.rhs_into stamps ~omega b;
        match Obs.Metrics.time "mna.factor_s" (fun () -> Cmat.lu_factor a) with
        | exception Cmat.Singular ->
            raise
              (Mna.Ac.Singular_circuit
                 (Printf.sprintf "MNA matrix singular at f = %g Hz for %S" f_hz
                    (Netlist.title netlist)))
        | lu ->
            let x0 = Pvec.create n in
            Cmat.lu_solve_into lu ~b ~x:x0;
            {
              omega;
              f_hz;
              a;
              anorm = Cmat.norm_inf a;
              lu;
              b;
              bnorm = Pvec.norm_inf b;
              x0;
              wcache = Hashtbl.create 16;
            })
      freqs_hz
  in
  let nominal =
    Array.map
      (fun fs -> match out_idx with None -> Complex.zero | Some i -> Pvec.get fs.x0 i)
      freqs
  in
  {
    netlist;
    index;
    source;
    output;
    out_idx;
    freqs;
    nominal;
    smw_solves = Atomic.make 0;
    full_solves = Atomic.make 0;
  }

let nominal t = t.nominal
let stats t = (Atomic.get t.smw_solves, Atomic.get t.full_solves)

(* ---- fault classification ---- *)

let two_node_pat index n1 n2 : pat =
  match (Mna.Index.node index n1, Mna.Index.node index n2) with
  | Some i, Some j when i = j -> []
  | Some i, Some j -> [ (i, 1.0); (j, -1.0) ]
  | Some i, None -> [ (i, 1.0) ]
  | None, Some j -> [ (j, -1.0) ]
  | None, None -> []

let rank1_if_sane r1 =
  if Float.is_finite r1.alpha_g && Float.is_finite r1.alpha_c then
    if r1.u = [] || r1.v = [] || (r1.alpha_g = 0.0 && r1.alpha_c = 0.0) then
      Some Unchanged
    else Some (Rank_one r1)
  else None

(* The admittance-style elements stamp y·uuᵀ with u the two-node
   pattern, so a value change is the rank-1 perturbation Δy·uuᵀ; an
   inductor's deviation only moves its own branch-equation diagonal
   entry, −sΔL. Anything else (dimension-changing replacements, source
   deviations, non-finite deltas) takes the structural path. *)
let classify t (fault : Fault.t) =
  match Netlist.find t.netlist fault.Fault.element with
  | None -> raise Not_found
  | Some e -> (
      let structural () = Structural (Fault.inject fault t.netlist) in
      let or_structural r1 =
        match rank1_if_sane r1 with Some p -> p | None -> structural ()
      in
      match (fault.Fault.kind, e) with
      | Fault.Deviation f, Element.Resistor { n1; n2; value; _ } ->
          let p = two_node_pat t.index n1 n2 in
          or_structural
            {
              u = p;
              v = p;
              alpha_g = (1.0 /. (f *. value)) -. (1.0 /. value);
              alpha_c = 0.0;
            }
      | Fault.Deviation f, Element.Capacitor { n1; n2; value; _ } ->
          let p = two_node_pat t.index n1 n2 in
          or_structural
            { u = p; v = p; alpha_g = 0.0; alpha_c = (f -. 1.0) *. value }
      | Fault.Deviation f, Element.Inductor { name; value; _ } ->
          let bi = Mna.Index.branch t.index name in
          or_structural
            {
              u = [ (bi, 1.0) ];
              v = [ (bi, 1.0) ];
              alpha_g = 0.0;
              alpha_c = -.((f -. 1.0) *. value);
            }
      | (Fault.Open_circuit | Fault.Short_circuit), Element.Resistor { n1; n2; value; _ }
        ->
          let r =
            match fault.Fault.kind with
            | Fault.Open_circuit -> Fault.open_resistance
            | _ -> Fault.short_resistance
          in
          let p = two_node_pat t.index n1 n2 in
          or_structural
            { u = p; v = p; alpha_g = (1.0 /. r) -. (1.0 /. value); alpha_c = 0.0 }
      | (Fault.Open_circuit | Fault.Short_circuit), Element.Capacitor { n1; n2; value; _ }
        ->
          (* the capacitor is replaced by a resistance: add 1/r, retire sC *)
          let r =
            match fault.Fault.kind with
            | Fault.Open_circuit -> Fault.open_resistance
            | _ -> Fault.short_resistance
          in
          let p = two_node_pat t.index n1 n2 in
          or_structural { u = p; v = p; alpha_g = 1.0 /. r; alpha_c = -.value }
      | _ -> structural ())

(* ---- rank-1 solves ---- *)

(* Pattern dot product against one plane: Σ s·plane.(i). The complex
   dot against a planar vector is two of these, one per plane. *)
let dot_pat (pat : pat) (plane : float array) =
  let acc = ref 0.0 in
  List.iter (fun (i, s) -> acc := !acc +. (s *. Array.unsafe_get plane i)) pat;
  !acc

(* (nr + i·ni) / (dr + i·di) — Smith's algorithm, exactly Complex.div. *)
let div2 nr ni dr di =
  if Float.abs dr >= Float.abs di then
    let r = di /. dr in
    let d = dr +. (r *. di) in
    ((nr +. (r *. ni)) /. d, (ni -. (r *. nr)) /. d)
  else
    let r = dr /. di in
    let d = di +. (r *. dr) in
    (((r *. nr) +. ni) /. d, ((r *. ni) -. nr) /. d)

let solve_pattern fs (u : pat) (w : Pvec.t) =
  let s = scratch_for (Pvec.length fs.x0) in
  let uvec = s.uvec in
  List.iter (fun (i, sg) -> uvec.Pvec.re.(i) <- sg) u;
  Cmat.lu_solve_into fs.lu ~b:uvec ~x:w;
  List.iter (fun (i, _) -> uvec.Pvec.re.(i) <- 0.0) u

(* Cache lookup. The on-demand insertion path mutates the Hashtbl and
   is only safe while the engine is confined to one domain; parallel
   analysis must {!warm_cache} first so lookups during the parallel
   phase are read-only. *)
let w_for fs u =
  match Hashtbl.find_opt fs.wcache u with
  | Some e ->
      if Atomic.get e.fresh && Atomic.compare_and_set e.fresh true false then
        Obs.Metrics.incr "fastsim.wcache_misses"
      else Obs.Metrics.incr "fastsim.wcache_hits";
      e.w
  | None ->
      Obs.Metrics.incr "fastsim.wcache_misses";
      let w = Pvec.create (Pvec.length fs.x0) in
      solve_pattern fs u w;
      Hashtbl.add fs.wcache u { w; fresh = Atomic.make false };
      w

let warm_cache t faults =
  Obs.Trace.span "fastsim.warm_cache" @@ fun () ->
  List.iter
    (fun fault ->
      match classify t fault with
      | Rank_one { u; _ } ->
          Array.iter
            (fun fs ->
              if not (Hashtbl.mem fs.wcache u) then begin
                let w = Pvec.create (Pvec.length fs.x0) in
                solve_pattern fs u w;
                Hashtbl.add fs.wcache u { w; fresh = Atomic.make true }
              end)
            t.freqs
      | Unchanged | Structural _ -> ()
      | exception Not_found -> ())
    faults

let output_of t (x : Pvec.t) =
  match t.out_idx with None -> Complex.zero | Some i -> Pvec.get x i

(* Full fallback at one frequency: perturb a copy of A(jω) and
   refactorize — exactly the naive path, minus the assembly. *)
let full_point_solve t fs ~al_re ~al_im ~u ~v =
  Atomic.incr t.full_solves;
  Obs.Metrics.incr "fastsim.full_solves";
  let af = Cmat.copy fs.a in
  List.iter
    (fun (i, si) ->
      List.iter
        (fun (j, sj) ->
          Cmat.add_to af i j
            { Complex.re = al_re *. si *. sj; Complex.im = al_im *. si *. sj })
        v)
    u;
  match
    Obs.Metrics.time "mna.solve_s" (fun () ->
        let lu = Cmat.lu_factor af in
        let x = Pvec.create (Pvec.length fs.b) in
        Cmat.lu_solve_into lu ~b:fs.b ~x;
        x)
  with
  | x -> Some (output_of t x)
  | exception Cmat.Singular -> None

(* After refinement a healthy update sits at ~machine-precision
   normwise relative residual; anything above this bound means the
   update genuinely struggled (wild growth, near-cancelling denom) and
   the full refactorization is worth its O(n³). *)
let smw_tolerance = 1e-9

(* Conformance-testing chaos hook: [`Smw_denominator k] scales the
   Sherman–Morrison denominator by [k] and bypasses the residual guard
   — the exact class of silent-wrong-answer bug the differential
   oracles exist to catch. Skipping the guard is the point: a real
   denominator bug shipped together with a broken guard is what makes
   the fast path return plausible-but-wrong responses. *)
let chaos : [ `None | `Smw_denominator of float ] Atomic.t = Atomic.make `None
let set_chaos c = Atomic.set chaos c

let smw_point_solve t fs ({ u; v; alpha_g; alpha_c } : rank1) =
  let al_re = alpha_g and al_im = fs.omega *. alpha_c in
  if al_re = 0.0 && al_im = 0.0 then Some (output_of t fs.x0)
  else begin
    let w = w_for fs u in
    let vw_re = dot_pat v w.Pvec.re and vw_im = dot_pat v w.Pvec.im in
    let den_re = 1.0 +. ((al_re *. vw_re) -. (al_im *. vw_im))
    and den_im = (al_re *. vw_im) +. (al_im *. vw_re) in
    let chaotic, den_re, den_im =
      match Atomic.get chaos with
      | `None -> (false, den_re, den_im)
      | `Smw_denominator k -> (true, den_re *. k, den_im *. k)
    in
    if Cmat.norm2 den_re den_im <= 1e-12 then
      full_point_solve t fs ~al_re ~al_im ~u ~v
    else begin
      let vx0_re = dot_pat v fs.x0.Pvec.re and vx0_im = dot_pat v fs.x0.Pvec.im in
      let coef_re, coef_im =
        div2
          ((al_re *. vx0_re) -. (al_im *. vx0_im))
          ((al_re *. vx0_im) +. (al_im *. vx0_re))
          den_re den_im
      in
      let n = Pvec.length fs.x0 in
      let s = scratch_for n in
      let xf = s.xf and resid = s.resid in
      let xf_re = xf.Pvec.re and xf_im = xf.Pvec.im in
      let wre = w.Pvec.re and wim = w.Pvec.im in
      let x0re = fs.x0.Pvec.re and x0im = fs.x0.Pvec.im in
      for i = 0 to n - 1 do
        let wr = Array.unsafe_get wre i and wi = Array.unsafe_get wim i in
        Array.unsafe_set xf_re i
          (Array.unsafe_get x0re i -. ((coef_re *. wr) -. (coef_im *. wi)));
        Array.unsafe_set xf_im i
          (Array.unsafe_get x0im i -. ((coef_re *. wi) +. (coef_im *. wr)))
      done;
      (* Residual of the perturbed system without forming it:
         b − A_f xf = (b − α (vᵀxf) u) − A xf. *)
      let faulty_residual () =
        let vxf_re = dot_pat v xf_re and vxf_im = dot_pat v xf_im in
        let av_re = (al_re *. vxf_re) -. (al_im *. vxf_im)
        and av_im = (al_re *. vxf_im) +. (al_im *. vxf_re) in
        Cmat.mul_vec_into fs.a ~x:xf ~y:resid;
        let rre = resid.Pvec.re and rim = resid.Pvec.im in
        let bre = fs.b.Pvec.re and bim = fs.b.Pvec.im in
        for i = 0 to n - 1 do
          Array.unsafe_set rre i (Array.unsafe_get bre i -. Array.unsafe_get rre i);
          Array.unsafe_set rim i (Array.unsafe_get bim i -. Array.unsafe_get rim i)
        done;
        List.iter
          (fun (i, sg) ->
            rre.(i) <- rre.(i) -. (sg *. av_re);
            rim.(i) <- rim.(i) -. (sg *. av_im))
          u
      in
      (* One step of iterative refinement: a large |α| (a catastrophic
         open/short is a ~10⁹-fold conductance change) amplifies
         rounding in the bare update; correcting by the SMW solve of
         the residual restores direct-solve accuracy at O(n²). The
         common case — a mild deviation whose bare update already sits
         near machine-precision residual (the 1024·ε gate below) —
         skips the extra back-solve. *)
      let refine () =
        let d0 = s.d0 in
        Cmat.lu_solve_into fs.lu ~b:resid ~x:d0;
        let d0re = d0.Pvec.re and d0im = d0.Pvec.im in
        let vd_re = dot_pat v d0re and vd_im = dot_pat v d0im in
        let dc_re, dc_im =
          div2
            ((al_re *. vd_re) -. (al_im *. vd_im))
            ((al_re *. vd_im) +. (al_im *. vd_re))
            den_re den_im
        in
        for i = 0 to n - 1 do
          let wr = Array.unsafe_get wre i and wi = Array.unsafe_get wim i in
          Array.unsafe_set xf_re i
            (Array.unsafe_get xf_re i
            +. (Array.unsafe_get d0re i -. ((dc_re *. wr) -. (dc_im *. wi))));
          Array.unsafe_set xf_im i
            (Array.unsafe_get xf_im i
            +. (Array.unsafe_get d0im i -. ((dc_re *. wi) +. (dc_im *. wr))))
        done
      in
      if chaotic then begin
        Atomic.incr t.smw_solves;
        Obs.Metrics.incr "fastsim.smw_solves";
        Some (output_of t xf)
      end
      else begin
      let scale_of () = (fs.anorm *. Pvec.norm_inf xf) +. fs.bnorm +. 1e-300 in
      faulty_residual ();
      let res = Pvec.norm_inf resid in
      let res =
        if res <= 1024.0 *. epsilon_float *. scale_of () then res
        else begin
          Obs.Metrics.incr "fastsim.refine_steps";
          refine ();
          faulty_residual ();
          Pvec.norm_inf resid
        end
      in
      if res <= smw_tolerance *. scale_of () then begin
        Atomic.incr t.smw_solves;
        Obs.Metrics.incr "fastsim.smw_solves";
        Some (output_of t xf)
      end
      else full_point_solve t fs ~al_re ~al_im ~u ~v
      end
    end
  end

(* ---- structural fallback: split-assemble the faulty netlist once ---- *)

let structural_response t faulty =
  Obs.Trace.span "fastsim.structural" @@ fun () ->
  let index = Mna.Index.build faulty in
  let stamps = Mna.Stamps.build ~sources:(Mna.Assemble.Only t.source) index faulty in
  let n = Mna.Stamps.size stamps in
  let out = Mna.Index.node index t.output in
  let buf = Cmat.create n n in
  let b = Pvec.create n and x = Pvec.create n in
  Array.map
    (fun fs ->
      Atomic.incr t.full_solves;
      Obs.Metrics.incr "fastsim.full_solves";
      Mna.Stamps.fill stamps ~omega:fs.omega buf;
      Mna.Stamps.rhs_into stamps ~omega:fs.omega b;
      match
        Obs.Metrics.time "mna.solve_s" (fun () ->
            let lu = Cmat.lu_factor buf in
            Cmat.lu_solve_into lu ~b ~x)
      with
      | () -> Some (match out with None -> Complex.zero | Some i -> Pvec.get x i)
      | exception Cmat.Singular -> None)
    t.freqs

let response t fault =
  match classify t fault with
  | Unchanged -> Array.map (fun z -> Some z) t.nominal
  | Rank_one r1 -> Array.map (fun fs -> smw_point_solve t fs r1) t.freqs
  | Structural faulty ->
      Obs.Metrics.incr "fastsim.structural_faults";
      structural_response t faulty
