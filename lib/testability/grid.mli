(** Logarithmic frequency grids — the discretized reference region
    Ω_reference of the paper (Definition 2).

    The paper prescribes "about two orders of magnitude in the passband
    and two orders of magnitude in the stopband"; {!around} builds
    exactly that window centred on a circuit's characteristic
    frequency. *)

type t

val make : ?points_per_decade:int -> f_lo:float -> f_hi:float -> unit -> t
(** Log-spaced grid over [f_lo, f_hi] Hz. Defaults to 60 points per
    decade. Raises [Invalid_argument] on a non-positive or inverted
    range or a non-positive density. *)

val around :
  ?decades_below:float -> ?decades_above:float -> ?points_per_decade:int ->
  center_hz:float -> unit -> t
(** Grid spanning [decades_below] decades under and [decades_above]
    decades above [center_hz] (both default to 2.0 — the paper's
    reference region). *)

val freqs_hz : t -> float array
val n_points : t -> int
val f_lo : t -> float
val f_hi : t -> float

val log_measure : t -> float
(** Width of the grid in decades: log10(f_hi) - log10(f_lo). *)

val point_interval : t -> int -> Util.Interval.t
(** The sub-interval of the log-frequency axis owned by grid point [i]:
    half a step on each side, clipped to the grid bounds. The point
    intervals tile the full grid exactly. *)
