module Netlist := Circuit.Netlist

(** The fault detectability matrix (paper Figure 5) and its
    ω-detectability companion (paper Table 2).

    Rows are circuit {e views} — in the paper, the DFT test
    configurations C₀…C₆ — and columns are faults. The module is
    deliberately independent of how views are produced: the
    multi-configuration transform supplies them, but any family of
    netlists sharing the faulty elements works (e.g. different probe
    points). *)

type view = { label : string; netlist : Netlist.t; probe : Detect.probe }

type t = {
  views : view array;
  faults : Fault.t array;
  detect : bool array array;  (** [detect.(i).(j)]: fault j detectable in view i. *)
  omega : float array array;  (** ω-detectability of fault j in view i. *)
}

val build :
  ?backend:Fastsim.backend ->
  ?certified:Bytes.t option array array ->
  ?criterion:Detect.criterion -> ?jobs:int -> Grid.t -> view list -> Fault.t list -> t
(** Run the full fault simulation campaign: one nominal sweep plus one
    faulty sweep per (view, fault) pair. [jobs] > 1 distributes the
    views across that many domains (the per-view analyses are
    independent); results are identical to a sequential run. [backend]
    selects the per-view factorization ({!Fastsim.backend}, default
    [Auto]).

    [certified] is a per-[view][fault] cube of statically certified
    verdict bytes (['d' | 'u' | '?'] per grid point, see
    [Analysis.Certify.verdict_cube]): certified points are never
    solved — their verdicts flow straight into the reduce — and a
    fully certified (view, fault) cell skips cache warming and plan
    construction too. The caller is responsible for the cube having
    been computed against the same views, faults, grid and criterion;
    verdict soundness then makes the resulting matrices bitwise
    identical to an uncertified run. Counters:
    [certify.solves_skipped] (certified points) and
    [certify.cells_proved] (fully certified cells), incremented
    sequentially before the parallel phases so they stay
    jobs-invariant. Raises [Invalid_argument] on a shape mismatch. *)

val n_views : t -> int
val n_faults : t -> int

val detectable_anywhere : t -> int -> bool
(** Whether fault [j] is detectable in at least one view. *)

val max_fault_coverage : t -> float
(** Fraction of faults detectable in at least one view — the maximum
    fault coverage achievable by any configuration set. *)

val coverage_of_view : t -> int -> float
(** Fault coverage of a single view. *)

val best_omega_det : t -> int -> float
(** Max over views of the ω-detectability of fault [j]. *)

val best_omega_det_over : t -> int list -> int -> float
(** Max over the given view subset. *)

val average_best_omega_det : ?views:int list -> t -> float
(** The paper's ⟨ω-det⟩ figure of merit: each fault tested in its best
    view among [views] (default: all), averaged over faults. *)

val column : t -> int -> bool array
val row : t -> int -> bool array
