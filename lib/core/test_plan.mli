(** From configuration sets to a concrete test schedule.

    The paper selects {e which configurations} to use; a tester still
    has to pick {e which frequencies} to measure in each of them. Since
    the detectability analysis already produced, for every fault, the
    frequency region where it is visible in every configuration,
    choosing the measurements is one more unate covering problem: pick
    a minimum set of (configuration, frequency) points such that every
    coverable fault is caught by at least one. This is the
    frequency-domain test-generation step the paper points to through
    its references [12, 13]. *)

type measurement = { config : int; freq_hz : float }

type t = {
  measurements : measurement list;
      (** Minimal schedule, sorted by configuration then frequency. *)
  covered : int;  (** Faults detected by the schedule. *)
  total_coverable : int;
      (** Faults detectable at all within the chosen configurations. *)
  witnesses : (Fault.t * measurement) list;
      (** For each covered fault, one scheduled measurement that
          detects it. *)
}

val build : ?configs:int list -> Pipeline.t -> t
(** Build the minimal schedule over the given configuration subset
    (default: the optimizer's minimal test-configuration choice). Uses
    the pipeline's criterion, grid and fault list. *)

val build_diagnostic : ?configs:int list -> Pipeline.t -> t
(** Like {!build}, but the schedule must also {e separate} every fault
    pair that is separable within the configuration subset (some
    measurement fires for one fault and not the other) — the
    diagnosis-oriented schedule. Always at least as long as the
    detection-only schedule. Default [configs]: all test
    configurations, since diagnosis benefits from the full space (see
    the X7 bench). *)

val to_string : t -> string
(** Human-readable schedule. *)
