type parameters = {
  settle_taus : float;
  measure_periods : float;
  switch_overhead_s : float;
  fallback_settle_s : float;
}

let default_parameters =
  { settle_taus = 7.0; measure_periods = 5.0; switch_overhead_s = 1e-3;
    fallback_settle_s = 10e-3 }

let settle_time_s ?(parameters = default_parameters) (pipeline : Pipeline.t) config_index =
  let dft = pipeline.Pipeline.dft in
  let config =
    Multiconfig.Configuration.make ~n_opamps:(Multiconfig.Transform.n_opamps dft)
      config_index
  in
  let view = Multiconfig.Transform.emulate dft config in
  match
    Mna.Symbolic.poles ~source:dft.Multiconfig.Transform.source
      ~output:dft.Multiconfig.Transform.output view
  with
  | exception Mna.Symbolic.Singular_circuit _ -> parameters.fallback_settle_s
  | poles ->
      (* slowest stable pole bounds the settling; a configuration with
         no strictly stable pole gets the fallback *)
      let slowest =
        Array.fold_left
          (fun acc p ->
            if p.Complex.re < -1e-6 then Float.min acc (-.p.Complex.re) else acc)
          infinity poles
      in
      if Float.is_finite slowest then parameters.settle_taus /. slowest
      else parameters.fallback_settle_s

let estimate_s ?(parameters = default_parameters) (pipeline : Pipeline.t)
    (plan : Test_plan.t) =
  let by_config = Hashtbl.create 8 in
  List.iter
    (fun m ->
      let existing =
        Option.value ~default:[] (Hashtbl.find_opt by_config m.Test_plan.config)
      in
      Hashtbl.replace by_config m.Test_plan.config (m.Test_plan.freq_hz :: existing))
    plan.Test_plan.measurements;
  let configs = Hashtbl.fold (fun c _ acc -> c :: acc) by_config [] in
  (* visit configurations in a switching-optimized (Gray-like) order;
     each flipped selection bit costs one switch overhead *)
  let ordered = Multiconfig.Sequence.order (List.sort Int.compare configs) in
  let rec walk prev total = function
    | [] -> total
    | config :: rest ->
        let bits =
          let x = prev lxor config in
          let rec pop n acc = if n = 0 then acc else pop (n lsr 1) (acc + (n land 1)) in
          pop x 0
        in
        let settle = settle_time_s ~parameters pipeline config in
        let freqs = Hashtbl.find by_config config in
        let measures =
          List.fold_left (fun t f -> t +. (parameters.measure_periods /. f)) 0.0 freqs
        in
        walk config
          (total +. (float_of_int bits *. parameters.switch_overhead_s) +. settle +. measures)
          rest
  in
  walk 0 0.0 ordered

let compare_sets ?parameters (pipeline : Pipeline.t) candidate_sets =
  let scored =
    List.map
      (fun configs ->
        let plan = Test_plan.build ~configs pipeline in
        (configs, estimate_s ?parameters pipeline plan))
      candidate_sets
  in
  List.sort (fun (_, a) (_, b) -> Float.compare a b) scored
