module StringSet = Set.Make (String)

type t = {
  predicted : (int * string list) list;
  total_pairs : int;
  pruned_pairs : int;
}

let analyse ?follower_model ?faults (dft : Multiconfig.Transform.t) =
  let det = Analysis.Detectability.analyse ?follower_model ?faults dft in
  {
    predicted = det.Analysis.Detectability.influential;
    total_pairs = Analysis.Detectability.total_pairs det;
    pruned_pairs = Analysis.Detectability.skip_count det;
  }

let run ?(criterion = Pipeline.default_criterion) ?(points_per_decade = 30) ?faults
    ?(certify = true) ?(adaptive = true) ?solve_budget
    (benchmark : Circuits.Benchmark.t) =
  let netlist = benchmark.Circuits.Benchmark.netlist in
  Circuit.Validate.check_exn netlist;
  let dft =
    Multiconfig.Transform.make ~source:benchmark.Circuits.Benchmark.source
      ~output:benchmark.Circuits.Benchmark.output netlist
  in
  let faults = match faults with Some f -> f | None -> Fault.deviation_faults netlist in
  let plan = analyse ~faults dft in
  let grid =
    Testability.Grid.around ~points_per_decade
      ~center_hz:benchmark.Circuits.Benchmark.center_hz ()
  in
  let probe =
    {
      Testability.Detect.source = benchmark.Circuits.Benchmark.source;
      output = benchmark.Circuits.Benchmark.output;
    }
  in
  let fault_array = Array.of_list faults in
  let configs = Multiconfig.Transform.test_configurations dft in
  let n = List.length configs and m = Array.length fault_array in
  let detect = Array.make_matrix n m false in
  let omega = Array.make_matrix n m 0.0 in
  let views =
    List.map
      (fun config ->
        let view = Multiconfig.Transform.emulate dft config in
        {
          Testability.Matrix.label = Multiconfig.Configuration.label config;
          netlist = view;
          probe;
        })
      configs
  in
  (* Interval certification on top of the structural filter: where the
     static pass fully proved a (configuration, fault) cell, the
     verdict row is synthesized from the certified bytes and the
     numeric sweep is skipped entirely. Partially proved cells still
     go through the numeric path here — the per-point skipping lives
     in {!Testability.Matrix.build}, which this economical flow
     bypasses. *)
  let certification =
    match criterion with
    | Testability.Detect.Fixed_tolerance eps when certify && eps > 0.0 ->
        let specs =
          List.map
            (fun (v : Testability.Matrix.view) ->
              {
                Analysis.Certify.label = v.Testability.Matrix.label;
                netlist = v.Testability.Matrix.netlist;
                source = probe.Testability.Detect.source;
                output = probe.Testability.Detect.output;
              })
            views
        in
        Some
          (Analysis.Certify.certify ~eps
             ~freqs_hz:(Testability.Grid.freqs_hz grid)
             specs faults)
    | _ -> None
  in
  let fully_proved i j =
    match certification with
    | None -> None
    | Some c ->
        let cell = c.Analysis.Certify.views.(i).Analysis.Certify.cells.(j) in
        if
          c.Analysis.Certify.views.(i).Analysis.Certify.validated
          && not
               (Bytes.exists
                  (fun b -> b = '?')
                  cell.Analysis.Certify.verdicts)
        then Some cell.Analysis.Certify.verdicts
        else None
  in
  let index_of fault =
    let rec find k =
      if fault_array.(k).Fault.id = fault.Fault.id then k else find (k + 1)
    in
    find 0
  in
  List.iteri
    (fun i config ->
      let view = (List.nth views i).Testability.Matrix.netlist in
      let reachable =
        StringSet.of_list
          (List.assoc (Multiconfig.Configuration.index config) plan.predicted)
      in
      let wanted =
        Array.to_list fault_array
        |> List.filter (fun f -> StringSet.mem f.Fault.element reachable)
      in
      Obs.Metrics.incr ~by:(m - List.length wanted) "prefilter.structural_skips";
      let proved, numeric =
        List.partition (fun f -> fully_proved i (index_of f) <> None) wanted
      in
      List.iter
        (fun fault ->
          let j = index_of fault in
          let verdicts = Option.get (fully_proved i j) in
          let r = Testability.Detect.result_of_verdicts grid fault verdicts in
          Obs.Metrics.incr ~by:(Testability.Grid.n_points grid)
            "certify.solves_skipped";
          Obs.Metrics.incr "certify.cells_proved";
          detect.(i).(j) <- r.Testability.Detect.detectable;
          omega.(i).(j) <- r.Testability.Detect.omega_det)
        proved;
      (* one shared nominal sweep and threshold preparation per view,
         as in Matrix.build, but only the reachable, unproved faults
         simulated — adaptively by default, so even the surviving rows
         solve only around their verdict boundaries *)
      if numeric <> [] then
        if adaptive then begin
          let view_rec = List.nth views i in
          let m, _stats =
            Adaptive.build ~criterion ~jobs:1 ?solve_budget grid [ view_rec ]
              numeric
          in
          List.iteri
            (fun k fault ->
              let j = index_of fault in
              detect.(i).(j) <- m.Testability.Matrix.detect.(0).(k);
              omega.(i).(j) <- m.Testability.Matrix.omega.(0).(k))
            numeric
        end
        else begin
          let results = Testability.Detect.analyze ~criterion probe grid view numeric in
          List.iter2
            (fun fault (r : Testability.Detect.result) ->
              let j = index_of fault in
              detect.(i).(j) <- r.Testability.Detect.detectable;
              omega.(i).(j) <- r.Testability.Detect.omega_det)
            numeric results
        end)
    configs;
  ( plan,
    {
      Testability.Matrix.views = Array.of_list views;
      faults = fault_array;
      detect;
      omega;
    } )
