module StringSet = Set.Make (String)

type t = {
  predicted : (int * string list) list;
  total_pairs : int;
  pruned_pairs : int;
}

let analyse ?follower_model ?faults (dft : Multiconfig.Transform.t) =
  let det = Analysis.Detectability.analyse ?follower_model ?faults dft in
  {
    predicted = det.Analysis.Detectability.influential;
    total_pairs = Analysis.Detectability.total_pairs det;
    pruned_pairs = Analysis.Detectability.skip_count det;
  }

let run ?(criterion = Pipeline.default_criterion) ?(points_per_decade = 30) ?faults
    (benchmark : Circuits.Benchmark.t) =
  let netlist = benchmark.Circuits.Benchmark.netlist in
  Circuit.Validate.check_exn netlist;
  let dft =
    Multiconfig.Transform.make ~source:benchmark.Circuits.Benchmark.source
      ~output:benchmark.Circuits.Benchmark.output netlist
  in
  let faults = match faults with Some f -> f | None -> Fault.deviation_faults netlist in
  let plan = analyse ~faults dft in
  let grid =
    Testability.Grid.around ~points_per_decade
      ~center_hz:benchmark.Circuits.Benchmark.center_hz ()
  in
  let probe =
    {
      Testability.Detect.source = benchmark.Circuits.Benchmark.source;
      output = benchmark.Circuits.Benchmark.output;
    }
  in
  let fault_array = Array.of_list faults in
  let configs = Multiconfig.Transform.test_configurations dft in
  let n = List.length configs and m = Array.length fault_array in
  let detect = Array.make_matrix n m false in
  let omega = Array.make_matrix n m 0.0 in
  let views =
    List.map
      (fun config ->
        let view = Multiconfig.Transform.emulate dft config in
        {
          Testability.Matrix.label = Multiconfig.Configuration.label config;
          netlist = view;
          probe;
        })
      configs
  in
  List.iteri
    (fun i config ->
      let view = (List.nth views i).Testability.Matrix.netlist in
      let reachable =
        StringSet.of_list
          (List.assoc (Multiconfig.Configuration.index config) plan.predicted)
      in
      let wanted =
        Array.to_list fault_array
        |> List.filter (fun f -> StringSet.mem f.Fault.element reachable)
      in
      Obs.Metrics.incr ~by:(m - List.length wanted) "prefilter.structural_skips";
      (* one shared nominal sweep and threshold preparation per view,
         as in Matrix.build, but only the reachable faults simulated *)
      if wanted <> [] then begin
        let results = Testability.Detect.analyze ~criterion probe grid view wanted in
        List.iter2
          (fun fault (r : Testability.Detect.result) ->
            let j =
              let rec find k =
                if fault_array.(k).Fault.id = fault.Fault.id then k else find (k + 1)
              in
              find 0
            in
            detect.(i).(j) <- r.Testability.Detect.detectable;
            omega.(i).(j) <- r.Testability.Detect.omega_det)
          wanted results
      end)
    configs;
  ( plan,
    {
      Testability.Matrix.views = Array.of_list views;
      faults = fault_array;
      detect;
      omega;
    } )
