module Clause = Cover.Clause
module IntSet = Clause.IntSet

type input = {
  n_opamps : int;
  detect : bool array array;
  omega : float array array;
}

let input_of_matrices ~n_opamps detect omega =
  let expected_rows = (1 lsl n_opamps) - 1 in
  if Array.length detect <> expected_rows then
    invalid_arg
      (Printf.sprintf "Optimizer.input_of_matrices: expected %d rows, got %d"
         expected_rows (Array.length detect));
  if Array.length omega <> expected_rows then
    invalid_arg "Optimizer.input_of_matrices: omega row count mismatch";
  let cols = if expected_rows = 0 then 0 else Array.length detect.(0) in
  Array.iteri
    (fun i row ->
      if Array.length row <> cols then
        invalid_arg "Optimizer.input_of_matrices: ragged detect matrix";
      if Array.length omega.(i) <> cols then
        invalid_arg "Optimizer.input_of_matrices: ragged omega matrix";
      Array.iteri
        (fun j d ->
          if d && omega.(i).(j) <= 0.0 then
            invalid_arg
              (Printf.sprintf
                 "Optimizer.input_of_matrices: fault %d detectable in C%d but omega = 0"
                 j i))
        row)
    detect;
  { n_opamps; detect; omega }

type config_choice = { configs : int list; avg_omega : float }

type opamp_choice = {
  opamps : int list;
  reachable_configs : int list;
  avg_omega_reachable : float;
}

type detection_stats = {
  worst : int;
  average : float;
  per_fault : int array;
}

type report = {
  input : input;
  n_detect : int;
  uncoverable : int list;
  short_faults : (int * int) list;
  max_coverage : float;
  functional_coverage : float;
  functional_avg_omega : float;
  brute_force_avg_omega : float;
  essential : int list;
  xi : Clause.t;
  xi_reduced : Clause.t;
  xi_terms_raw : IntSet.t list option;
  xi_terms_min : IntSet.t list option;
  min_config_sets : IntSet.t list;
  choice_a : config_choice;
  xi_star : IntSet.t list option;
  min_opamp_sets : IntSet.t list;
  choice_b : opamp_choice;
  detection_a : detection_stats;
  detection_b : detection_stats;
}

let n_faults input =
  if Array.length input.detect = 0 then 0 else Array.length input.detect.(0)

let avg_omega_of input configs =
  let m = n_faults input in
  if m = 0 then 0.0
  else
    Util.Floatx.fold_range m ~init:0.0 ~f:(fun acc j ->
        acc
        +. List.fold_left (fun best i -> Float.max best input.omega.(i).(j)) 0.0 configs)
    /. float_of_int m

let coverage_of_rows input rows =
  let m = n_faults input in
  if m = 0 then 0.0
  else
    Util.Floatx.fold_range m ~init:0 ~f:(fun acc j ->
        if List.exists (fun i -> input.detect.(i).(j)) rows then acc + 1 else acc)
    |> fun covered -> float_of_int covered /. float_of_int m

(* ---- objective B: exact minimum configurable-opamp subsets --------

   The opamp count of a solution is the cardinality of a bit union, not
   an additive cost, so instead of weighted covering we enumerate opamp
   subsets by increasing size and keep the first size at which the
   reachable configurations still cover every coverable fault.  With
   n <= 20 opamps this is cheap. *)

(* Per-fault required detection counts: n capped at what the full
   matrix can deliver (0 for uncoverable faults). Computed once per
   input: the exponential subset search below asks this per fault for
   every candidate subset, and an O(rows) rescan there multiplies into
   the 2ⁿ enumeration. *)
let required_hits input ~n =
  let rows = Array.length input.detect in
  let m = n_faults input in
  Array.init m (fun j ->
      let avail = ref 0 in
      for i = 0 to rows - 1 do
        if input.detect.(i).(j) then incr avail
      done;
      Int.min n !avail)

let subset_covers input ~needed ~mask =
  let rows = Array.length input.detect in
  let m = n_faults input in
  let hits j target =
    let rec probe i acc =
      if acc >= target || i >= rows then acc
      else probe (i + 1) (if i land lnot mask = 0 && input.detect.(i).(j) then acc + 1 else acc)
    in
    probe 0 0
  in
  let rec check j =
    if j >= m then true
    else if hits j needed.(j) < needed.(j) then false
    else check (j + 1)
  in
  check 0

(* All k-subsets of [0 .. n-1] in lexicographic order, built onto an
   accumulator — the naive [include @ exclude] recursion re-walks the
   include branch's result at every level, which is quadratic in the
   output size. *)
let combinations n k =
  let rec go start k current acc =
    if k = 0 then List.rev current :: acc
    else if n - start < k then acc
    else
      let acc = go (start + 1) (k - 1) (start :: current) acc in
      go (start + 1) k current acc
  in
  List.rev (go 0 k [] [])

let mask_of positions = List.fold_left (fun m k -> m lor (1 lsl k)) 0 positions

let min_opamp_subsets ?(n_detect = 1) input =
  Obs.Trace.span "optimizer.min_opamp_subsets" @@ fun () ->
  let n = input.n_opamps in
  let needed = required_hits input ~n:n_detect in
  let rec search k =
    if k > n then []
    else
      let winners =
        List.filter
          (fun subset ->
            Obs.Metrics.incr "optimizer.subsets_tested";
            subset_covers input ~needed ~mask:(mask_of subset))
          (combinations n k)
      in
      if winners = [] then search (k + 1) else winners
  in
  List.map IntSet.of_list (search 0)

(* Per-fault detection counts delivered by a configuration subset;
   worst/average are taken over the detectable faults only (an
   uncoverable fault would pin worst at 0 forever). *)
let detection_stats input ~needed rows =
  let m = n_faults input in
  let counts =
    Array.init m (fun j ->
        List.fold_left (fun acc i -> if input.detect.(i).(j) then acc + 1 else acc) 0 rows)
  in
  let worst = ref max_int and sum = ref 0 and considered = ref 0 in
  Array.iteri
    (fun j c ->
      if needed.(j) > 0 then begin
        incr considered;
        sum := !sum + c;
        if c < !worst then worst := c
      end)
    counts;
  {
    worst = (if !considered = 0 then 0 else !worst);
    average =
      (if !considered = 0 then 0.0 else float_of_int !sum /. float_of_int !considered);
    per_fault = counts;
  }

let reachable_test_configs input ~mask =
  let rows = Array.length input.detect in
  List.filter (fun i -> i land lnot mask = 0) (List.init rows Fun.id)

(* ---- the full ordered-requirements flow --------------------------- *)

let optimize ?(petrick_limit = 5) ?(n_detect = 1) input =
  if n_detect < 1 then invalid_arg "Optimizer.optimize: n_detect must be at least 1";
  let xi = Clause.of_matrix ~n:n_detect input.detect in
  let uncoverable = Clause.uncoverable_faults input.detect in
  let short_faults = Clause.short_faults ~n:n_detect input.detect in
  let essential = Clause.essentials xi in
  let xi_reduced = Clause.reduce xi ~chosen:essential in
  let use_petrick = input.n_opamps <= petrick_limit in
  let with_essential terms = List.map (IntSet.union essential) terms in
  let xi_terms_raw =
    if use_petrick then Some (with_essential (Cover.Petrick.expand_raw xi_reduced))
    else None
  in
  let xi_terms_min =
    if use_petrick then
      Some
        (List.sort_uniq
           (fun a b -> List.compare Int.compare (IntSet.elements a) (IntSet.elements b))
           (with_essential (Cover.Petrick.expand xi_reduced)))
    else None
  in
  let min_config_sets =
    match xi_terms_min with
    | Some terms -> Cover.Petrick.cheapest terms
    (* xi comes from of_matrix, which caps each clause's requirement at
       its available candidates, so the system is feasible *)
    | None -> [ Cover.Solver.cover_exn (Cover.Solver.exact xi) ]
  in
  let choice_a =
    let scored =
      List.map
        (fun s ->
          let configs = IntSet.elements s in
          { configs; avg_omega = avg_omega_of input configs })
        min_config_sets
    in
    List.fold_left
      (fun best c ->
        if c.avg_omega > best.avg_omega +. 1e-12 then c
        else if
          Float.abs (c.avg_omega -. best.avg_omega) <= 1e-12
          && List.compare Int.compare c.configs best.configs < 0
        then c
        else best)
      (List.hd scored) (List.tl scored)
  in
  let xi_star = Option.map Cover.Mapping.xi_star xi_terms_raw in
  let min_opamp_sets = min_opamp_subsets ~n_detect input in
  let choice_b =
    let scored =
      List.map
        (fun s ->
          let opamps = IntSet.elements s in
          let reachable = reachable_test_configs input ~mask:(mask_of opamps) in
          {
            opamps;
            reachable_configs = reachable;
            avg_omega_reachable = avg_omega_of input reachable;
          })
        min_opamp_sets
    in
    match scored with
    | [] -> { opamps = []; reachable_configs = [ 0 ]; avg_omega_reachable = avg_omega_of input [ 0 ] }
    | first :: rest ->
        List.fold_left
          (fun best c ->
            if c.avg_omega_reachable > best.avg_omega_reachable +. 1e-12 then c
            else if
              Float.abs (c.avg_omega_reachable -. best.avg_omega_reachable) <= 1e-12
              && List.compare Int.compare c.opamps best.opamps < 0
            then c
            else best)
          first rest
  in
  let all_rows = List.init (Array.length input.detect) Fun.id in
  let needed = required_hits input ~n:n_detect in
  let detection_a = detection_stats input ~needed choice_a.configs in
  let detection_b = detection_stats input ~needed choice_b.reachable_configs in
  {
    input;
    n_detect;
    uncoverable;
    short_faults;
    max_coverage = coverage_of_rows input all_rows;
    functional_coverage = coverage_of_rows input [ 0 ];
    functional_avg_omega = avg_omega_of input [ 0 ];
    brute_force_avg_omega = avg_omega_of input all_rows;
    essential = IntSet.elements essential;
    xi;
    xi_reduced;
    xi_terms_raw;
    xi_terms_min;
    min_config_sets;
    choice_a;
    xi_star;
    min_opamp_sets;
    choice_b;
    detection_a;
    detection_b;
  }
