(** Machine-readable export of optimization results (JSON), for CI
    pipelines and external tooling. *)

val report_to_json : ?faults:Fault.t list -> Optimizer.report -> Report.Json.t
(** The full ordered-requirements report: coverages, essential
    configurations, minimal sets, both objective choices, and the
    detectability/ω matrices. [faults] labels the columns when
    given. *)

val metrics_to_json : Obs.Metrics.snapshot -> Report.Json.t
(** A metrics snapshot as [{counters: {...}, histograms: {...}}];
    non-finite histogram min/max (empty histograms) export as null. *)

val pipeline_to_json :
  ?metrics:Obs.Metrics.snapshot -> Pipeline.t -> Optimizer.report -> Report.Json.t
(** {!report_to_json} wrapped with circuit metadata (name, opamps,
    criterion, grid). [metrics] adds an optional ["metrics"] block
    ({!metrics_to_json}) capturing the campaign's solver counters and
    phase timings. *)
