(** Machine-readable export of optimization results (JSON), for CI
    pipelines and external tooling. *)

val report_to_json : ?faults:Fault.t list -> Optimizer.report -> Report.Json.t
(** The full ordered-requirements report: coverages, essential
    configurations, minimal sets, both objective choices, and the
    detectability/ω matrices. [faults] labels the columns when
    given. *)

val metrics_to_json : Obs.Metrics.snapshot -> Report.Json.t
(** A metrics snapshot as [{counters: {...}, histograms: {...}}];
    non-finite histogram min/max (empty histograms) export as null. *)

val adaptive_to_json : Adaptive.stats -> Report.Json.t
(** The adaptive refinement counters (rows, points, certified, solved,
    solves_skipped, bisections, budget_exhausted) as a JSON object. *)

val coverage_to_json : Testability.Montecarlo.coverage -> Report.Json.t
(** A {!Testability.Montecarlo.coverage_run} result: sampling
    parameters, estimated boundary radius, per-stratum sample counts
    and acceptances, and the worst/average-case coverage. *)

val pipeline_to_json :
  ?metrics:Obs.Metrics.snapshot ->
  ?coverage:Testability.Montecarlo.coverage ->
  Pipeline.t -> Optimizer.report -> Report.Json.t
(** {!report_to_json} wrapped with circuit metadata (name, opamps,
    criterion, grid). The ["campaign"] block records the pruning
    counters, plus an ["adaptive"] sub-object ({!adaptive_to_json})
    when the campaign ran coverage-directed. [coverage] adds a
    ["coverage"] block ({!coverage_to_json}); [metrics] adds a
    ["metrics"] block ({!metrics_to_json}) capturing the campaign's
    solver counters and phase timings. *)
