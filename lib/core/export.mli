(** Machine-readable export of optimization results (JSON), for CI
    pipelines and external tooling. *)

val report_to_json : ?faults:Fault.t list -> Optimizer.report -> Report.Json.t
(** The full ordered-requirements report: coverages, essential
    configurations, minimal sets, both objective choices, and the
    detectability/ω matrices. [faults] labels the columns when
    given. *)

val pipeline_to_json : Pipeline.t -> Optimizer.report -> Report.Json.t
(** {!report_to_json} wrapped with circuit metadata (name, opamps,
    criterion, grid). *)
