(** The paper's ordered-requirements optimization (Section 4).

    Input: a fault detectability matrix and its ω-detectability
    companion over the test configurations C₀ … C_{2ⁿ-2} of an n-opamp
    circuit (the transparent configuration is excluded, as in the
    paper). Whether the matrices come from our fault simulator or from
    the paper's published tables is irrelevant here.

    The flow is:
    + 1st order (fundamental): enumerate configuration sets reaching
      the maximum achievable fault coverage — essential configurations,
      matrix reduction, Petrick expansion;
    + 2nd order, objective A: minimize the number of test
      configurations (test time / BIST control simplicity);
    + 2nd order, objective B: minimize the number of configurable
      opamps (area / performance cost — partial DFT);
    + 3rd order: break remaining ties by the average best-case
      ω-detectability. *)

module IntSet := Cover.Clause.IntSet

type input = {
  n_opamps : int;
  detect : bool array array;
      (** Rows C₀ … C_{2ⁿ-2}, one column per fault. *)
  omega : float array array;
      (** Same shape; any consistent unit (the paper uses percent). *)
}

val input_of_matrices : n_opamps:int -> bool array array -> float array array -> input
(** Validates shapes: [2^n - 1] rows, consistent column counts,
    ω present wherever a fault is detectable. *)

type config_choice = {
  configs : int list;  (** Chosen configuration indices, increasing. *)
  avg_omega : float;  (** ⟨ω-det⟩: mean over all faults of the best chosen-view value. *)
}

type opamp_choice = {
  opamps : int list;  (** 0-based positions of configurable opamps. *)
  reachable_configs : int list;
      (** All test configurations usable with those opamps (followers
          within the set), including C₀. *)
  avg_omega_reachable : float;
}

type detection_stats = {
  worst : int;  (** Fewest detections any detectable fault receives. *)
  average : float;  (** Mean detection count over detectable faults. *)
  per_fault : int array;  (** Detection count per fault column. *)
}

type report = {
  input : input;
  n_detect : int;  (** Requested per-fault detection multiplicity. *)
  uncoverable : int list;  (** Fault columns no configuration detects. *)
  short_faults : (int * int) list;
      (** [(fault, available)] for faults detectable in fewer than
          [n_detect] configurations — their requirement was capped at
          the achievable count. *)
  max_coverage : float;  (** The fundamental requirement's target. *)
  functional_coverage : float;  (** Coverage of C₀ alone. *)
  functional_avg_omega : float;
  brute_force_avg_omega : float;  (** Best configuration per fault over all. *)
  essential : int list;  (** Essential configurations (paper: {C₂}). *)
  xi : Cover.Clause.t;  (** The full POS expression. *)
  xi_reduced : Cover.Clause.t;  (** After removing essential-covered faults. *)
  xi_terms_raw : IntSet.t list option;
      (** The paper-style SOP (no absorption), essential configurations
          included in every term; [None] when Petrick expansion was
          skipped for size. *)
  xi_terms_min : IntSet.t list option;
      (** All irredundant covers (with absorption), same convention. *)
  min_config_sets : IntSet.t list;  (** 2nd-order-A ties. *)
  choice_a : config_choice;  (** After the 3rd-order tie-break. *)
  xi_star : IntSet.t list option;  (** Opamp-mapped SOP terms. *)
  min_opamp_sets : IntSet.t list;  (** 2nd-order-B ties. *)
  choice_b : opamp_choice;  (** After the 3rd-order tie-break. *)
  detection_a : detection_stats;  (** Counts delivered by [choice_a.configs]. *)
  detection_b : detection_stats;
      (** Counts delivered by [choice_b.reachable_configs]. *)
}

val avg_omega_of : input -> int list -> float
(** ⟨ω-det⟩ of a configuration subset: mean over every fault of the
    best ω among the subset's rows. *)

val optimize : ?petrick_limit:int -> ?n_detect:int -> input -> report
(** Run the full flow. Petrick expansion (and the raw SOP listing) is
    only attempted when the number of opamps is at most
    [petrick_limit] (default 5); beyond that the exact
    branch-and-bound solver provides the minimum-cardinality set and
    opamp subsets are found by direct subset enumeration (which is
    exact at any size).

    [n_detect] (default 1) asks that every fault be detected in at
    least that many chosen configurations (n-detection covering,
    Pomeranz & Reddy). Requirements are capped at each fault's
    achievable count — the capped faults are listed in
    [short_faults] — so the flow always succeeds; both the
    configuration covers (objective A) and the opamp subsets
    (objective B) honor the multiplicity. Raises [Invalid_argument]
    when [n_detect < 1]. *)
