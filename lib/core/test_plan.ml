module IntSet = Cover.Clause.IntSet

type measurement = { config : int; freq_hz : float }

type t = {
  measurements : measurement list;
  covered : int;
  total_coverable : int;
  witnesses : (Fault.t * measurement) list;
}

(* Candidate encoding: measurement (config position c, grid point k)
   becomes integer c * n_points + k, where c indexes into the chosen
   configuration list. *)
let build_with ~distinguish ~configs (pipeline : Pipeline.t) =
  let grid = pipeline.Pipeline.grid in
  let n_points = Testability.Grid.n_points grid in
  let freqs = Testability.Grid.freqs_hz grid in
  let probe =
    {
      Testability.Detect.source =
        pipeline.Pipeline.benchmark.Circuits.Benchmark.source;
      output = pipeline.Pipeline.benchmark.Circuits.Benchmark.output;
    }
  in
  (* per chosen configuration: the per-fault detectability regions,
     as arrays for random access in the pair loops below *)
  let per_config_results =
    List.map
      (fun config_index ->
        let config =
          Multiconfig.Configuration.make
            ~n_opamps:(Multiconfig.Transform.n_opamps pipeline.Pipeline.dft)
            config_index
        in
        let view = Multiconfig.Transform.emulate pipeline.Pipeline.dft config in
        Array.of_list
          (Testability.Detect.analyze ~criterion:pipeline.Pipeline.criterion probe grid
             view pipeline.Pipeline.faults))
      configs
  in
  let catches k (r : Testability.Detect.result) =
    Util.Interval.Set.contains r.Testability.Detect.regions (log10 freqs.(k))
  in
  let faults = Array.of_list pipeline.Pipeline.faults in
  let n_faults = Array.length faults in
  (* clause per coverable fault: the measurements that catch it *)
  let clauses = ref [] in
  let coverable = ref 0 in
  for j = 0 to n_faults - 1 do
    let candidates = ref IntSet.empty in
    List.iteri
      (fun c results ->
        let r = results.(j) in
        for k = 0 to n_points - 1 do
          if catches k r then candidates := IntSet.add ((c * n_points) + k) !candidates
        done)
      per_config_results;
    if not (IntSet.is_empty !candidates) then begin
      incr coverable;
      clauses := !candidates :: !clauses
    end
  done;
  (* diagnosis mode: additionally, for every separable fault pair, at
     least one separating measurement must be scheduled *)
  if distinguish then begin
    for j1 = 0 to n_faults - 1 do
      for j2 = j1 + 1 to n_faults - 1 do
        let separating = ref IntSet.empty in
        List.iteri
          (fun c results ->
            let r1 = results.(j1) and r2 = results.(j2) in
            for k = 0 to n_points - 1 do
              if catches k r1 <> catches k r2 then
                separating := IntSet.add ((c * n_points) + k) !separating
            done)
          per_config_results;
        if not (IntSet.is_empty !separating) then clauses := !separating :: !clauses
      done
    done
  end;
  let problem =
    Cover.Clause.of_sets
      ~n_candidates:(List.length configs * n_points)
      (List.rev !clauses)
  in
  (* feasible by construction: only non-empty candidate sets are queued *)
  let chosen = Cover.Solver.cover_exn (Cover.Solver.exact problem) in
  let decode m =
    let c = m / n_points and k = m mod n_points in
    { config = List.nth configs c; freq_hz = freqs.(k) }
  in
  let measurements =
    List.sort
      (fun a b ->
        match Int.compare a.config b.config with
        | 0 -> Float.compare a.freq_hz b.freq_hz
        | cmp -> cmp)
      (List.map decode (IntSet.elements chosen))
  in
  (* witness: the first scheduled measurement catching each fault *)
  let witnesses = ref [] in
  let covered = ref 0 in
  for j = 0 to n_faults - 1 do
    let witness =
      List.find_opt
        (fun m ->
          List.exists2
            (fun config_index results ->
              config_index = m.config
              &&
              let r = results.(j) in
              Util.Interval.Set.contains r.Testability.Detect.regions (log10 m.freq_hz))
            configs per_config_results)
        measurements
    in
    match witness with
    | Some m ->
        incr covered;
        witnesses := (faults.(j), m) :: !witnesses
    | None -> ()
  done;
  {
    measurements;
    covered = !covered;
    total_coverable = !coverable;
    witnesses = List.rev !witnesses;
  }

let build ?configs pipeline =
  let configs =
    match configs with
    | Some c -> c
    | None -> (Pipeline.optimize pipeline).Optimizer.choice_a.Optimizer.configs
  in
  build_with ~distinguish:false ~configs pipeline

let build_diagnostic ?configs (pipeline : Pipeline.t) =
  let configs =
    match configs with
    | Some c -> c
    | None ->
        List.map Multiconfig.Configuration.index
          (Multiconfig.Transform.test_configurations pipeline.Pipeline.dft)
  in
  build_with ~distinguish:true ~configs pipeline

let to_string plan =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "test plan: %d measurements cover %d/%d coverable faults\n"
       (List.length plan.measurements) plan.covered plan.total_coverable);
  List.iter
    (fun m ->
      Buffer.add_string buf (Printf.sprintf "  C%d @ %8.1f Hz\n" m.config m.freq_hz))
    plan.measurements;
  Buffer.add_string buf "fault witnesses:\n";
  List.iter
    (fun (fault, m) ->
      Buffer.add_string buf
        (Printf.sprintf "  %-10s -> C%d @ %.1f Hz\n" fault.Fault.id m.config m.freq_hz))
    plan.witnesses;
  Buffer.contents buf
