type report = {
  but : int;
  access : Multiconfig.Configuration.t;
  faults_in_scope : string list;
  coverage_access : float;
  coverage_functional : float;
}

let coverage_of matrix ~row ~columns =
  match columns with
  | [] -> 0.0
  | _ ->
      let detected =
        List.length
          (List.filter
             (fun j -> matrix.Testability.Matrix.detect.(row).(j))
             columns)
      in
      float_of_int detected /. float_of_int (List.length columns)

let per_opamp (pipeline : Pipeline.t) =
  let dft = pipeline.Pipeline.dft in
  let n = Multiconfig.Transform.n_opamps dft in
  let matrix = pipeline.Pipeline.matrix in
  let fault_index =
    Array.to_list
      (Array.mapi (fun j f -> (f.Fault.element, j)) matrix.Testability.Matrix.faults)
  in
  List.map
    (fun k ->
      let access_index = ((1 lsl n) - 1) land lnot (1 lsl k) in
      let access = Multiconfig.Configuration.make ~n_opamps:n access_index in
      let view = Multiconfig.Transform.emulate dft access in
      let influence =
        Circuit.Influence.analyse ~output:dft.Multiconfig.Transform.output view
      in
      let in_scope_elements = Circuit.Influence.influential_passives influence in
      let columns =
        List.filter_map (fun e -> List.assoc_opt e fault_index) in_scope_elements
      in
      let faults_in_scope =
        List.map
          (fun j -> matrix.Testability.Matrix.faults.(j).Fault.id)
          columns
      in
      {
        but = k;
        access;
        faults_in_scope;
        coverage_access = coverage_of matrix ~row:access_index ~columns;
        coverage_functional = coverage_of matrix ~row:0 ~columns;
      })
    (List.init n Fun.id)
