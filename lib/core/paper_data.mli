(** The published measurements of the paper, embedded verbatim.

    Running the optimization flow on these tables reproduces every
    number of Section 4 exactly (essential configuration, ξ and ξ*
    expressions, minimal sets, ⟨ω-det⟩ percentages); running it on our
    own simulated biquad reproduces the qualitative shape. Keeping both
    separates "is the optimizer right?" from "is the simulator
    faithful?". *)

val fault_names : string array
(** fR1 fR2 fR3 fR4 fR5 fR6 fC1 fC2 — the 8 soft faults of the
    biquad. *)

val n_opamps : int
(** 3 — hence test configurations C₀ … C₆. *)

val detectability_matrix : bool array array
(** Figure 5: rows C₀…C₆, columns the 8 faults. *)

val omega_table : float array array
(** Table 2: ω-detectability in percent, same indexing. *)

val functional_coverage : float
(** 25 % — faults fR1 and fR4 only (Section 2). *)

val functional_avg_omega : float
(** 12.5 % (Graph 1). *)

val dft_avg_omega : float
(** 68.3 % — brute-force DFT, best configuration per fault (Graph 2). *)

val optimal_config_set : int list
(** {C₂, C₅} — the §4.2 optimum. *)

val optimal_config_avg_omega : float
(** 32.5 %. *)

val rejected_config_avg_omega : float
(** 30 % — the ⟨ω-det⟩ of the tied set {C₁, C₂}. *)

val optimal_opamp_set : int list
(** {OP1, OP2} as 0-based positions [0; 1] — the §4.3 optimum. *)

val partial_dft_avg_omega : float
(** 52.5 % — partial DFT over its 4 reachable configurations
    (Table 4 / Graph 4). *)
