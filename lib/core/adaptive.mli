(** Coverage-directed adaptive campaigns (ROADMAP item 5).

    A uniform points-per-decade sweep spends most of its numeric solves
    far from any detectability boundary: inside a deviation region every
    point votes ['d'], outside every point votes ['u'], and only the
    handful of grid points straddling a threshold crossing carry
    information. {!build} runs the same campaign as
    {!Testability.Matrix.build} but coarse-to-fine: each (view × fault)
    row starts at every [stride]-th grid point of the {e final} grid,
    then recursively bisects the intervals whose endpoint verdicts
    disagree (a crossing is known to be inside) {e and} the intervals
    whose endpoint margins sit too close to the threshold for their
    width — under a slope bound of [guard] nepers per decade on the
    log deviation-to-threshold ratio, an interval of width [w] decades
    whose weaker endpoint margin satisfies [min |s_lo| |s_hi| >
    guard·w] (plus the exactly-known movement of the threshold and
    nominal profile inside the interval) cannot hide a crossing.
    Points inside an interval proved crossing-free inherit the shared
    endpoint verdict without being solved. Narrow resonance spikes and
    deviation-zero dips — regions a verdict-only bisection provably
    misses at any points-per-decade — announce themselves through the
    small margins of their shoulders, which is what the guard refines
    toward; points below the view's measurement floor (dead view
    outputs, notch bottoms) are undetectable by definition
    ({!Testability.Detect.measurement_mask}) and act as free static
    ['u'] anchors, so a reconfiguration that disconnects the probed
    output costs zero solves.

    The refinement invariant — the filled-in verdict row equals the
    exhaustive one byte for byte — is empirical, not proved: the slope
    bound is a calibrated constant, not a certificate, and a response
    steeper than [guard] could still hide a crossing. The repo
    therefore treats it like the pruning and certification invariants
    before it: the detect/omega matrices must come out {e bitwise
    identical} to the exhaustive sweep, asserted by the tier-1 tests,
    the [adaptive-vs-exhaustive] fuzz oracle and the bench (DESIGN
    §15). The default guard holds with margin across the registry's
    resonant and notch families at every tested grid density, and
    coarse grids tighten automatically: the bound scales with interval
    width in decades, so fewer points per decade means wider intervals
    and earlier refinement.

    When an {!Analysis.Certify} verdict cube is supplied, its certified
    ['d']/['u'] bytes act as free anchors (they are known without
    solving, and flips against them trigger bisection) and only the
    residual ['?'] points are candidates for numeric solves — the
    static certificates seed the numeric refinement.

    A per-row solve budget bounds the refinement: a row that would
    exceed it degrades to the exhaustive sweep for that row — solving
    every remaining point — rather than ever guessing a verdict. *)

type stats = {
  rows : int;  (** scored (view × fault) rows *)
  points : int;  (** rows × grid points *)
  certified : int;  (** points taken from the certify cube, never solved *)
  solved : int;  (** points solved numerically *)
  skipped : int;
      (** points filled from equal-verdict interval endpoints —
          [points - certified - solved] *)
  bisections : int;  (** midpoint solves beyond the coarse pass *)
  budget_exhausted : int;  (** rows degraded to the exhaustive sweep *)
}

val default_stride : int
(** 8 — the coarse pass samples the final grid every 8th point, i.e. a
    ppd/8 starting grid. Coarse grids stay safe automatically: the
    slope-bound budget scales with interval width in decades, so at low
    points-per-decade nearly every interval fails the skip test and the
    sweep degrades toward exhaustive. *)

val default_guard : float
(** 12.0 nepers/decade (≈ 104 dB/decade) — the assumed bound on how
    fast the log deviation-to-threshold ratio can move along the log
    frequency axis. Calibrated against the registry's sharpest
    resonances (see DESIGN §15); raising it buys safety, lowering it
    buys skipped solves. *)

(** The pure refinement core, factored out so the tier-1 property tests
    can drive it against precomputed exhaustive verdict rows without an
    engine. *)
module Refine : sig
  type outcome = {
    verdicts : Bytes.t;
        (** every byte decided (['d'] or ['u']), length [nf] *)
    solved : int list;  (** indices solved numerically, in solve order *)
    bisections : int;  (** solves issued by interval bisection *)
    degraded : bool;  (** the budget ran out and the row went exhaustive *)
  }

  val row :
    nf:int ->
    stride:int ->
    step_dec:float ->
    guard:float ->
    steer_range:(int -> int -> float) ->
    budget:int option ->
    certified:(int -> char) ->
    solve:(int -> char * float) ->
    outcome
  (** Refine one verdict row of [nf] grid points. [certified i] is the
      static seed byte for point [i] (['d'], ['u'] or ['?'] — unknown)
      — the certify cube and the measurement mask both arrive through
      it; [solve i] performs the numeric solve and returns its verdict
      byte plus its margin in nepers ({!Testability.Detect.point_margin}
      — sign must agree with the byte; steering only). Solves the
      coarse points (every [stride]-th plus the last) that are not
      already certified, then refines every interval between adjacent
      known points whose verdicts differ or whose weaker endpoint
      margin fails the slope-bound test [min |s_lo| |s_hi| >
      guard·step_dec·(hi-lo) + steer_range lo hi]. [step_dec] is the
      grid step in decades; [steer_range lo hi] (pass
      [fun _ _ -> 0.0] for a flat profile) is the exactly-known
      variation of the margin's static profile over the closed
      interval; a certified anchor or a failed solve ([nan]) carries
      no margin and contributes zero to the test, so refinement stops
      at it rather than skipping past. [budget] caps the numeric
      solves the adaptive strategy may issue; once it would be
      exceeded the row degrades: every still-unknown point is solved
      (the row {e is} the exhaustive sweep, budget notwithstanding)
      and [degraded] is set. Raises [Invalid_argument] on [nf <= 0],
      [stride <= 0], negative [step_dec]/[guard] or a byte outside the
      verdict alphabet. *)
end

val build :
  ?backend:Testability.Fastsim.backend ->
  ?certified:Bytes.t option array array ->
  ?criterion:Testability.Detect.criterion ->
  ?jobs:int ->
  ?solve_budget:int ->
  ?stride:int ->
  ?guard:float ->
  Testability.Grid.t ->
  Testability.Matrix.view list ->
  Fault.t list ->
  Testability.Matrix.t * stats
(** Drop-in replacement for {!Testability.Matrix.build} producing
    bitwise-identical matrices from a fraction of the numeric solves.
    Same engine preparation (warmed planar/sparse plans, one per view,
    built in a parallel phase), but scoring fans out over (view ×
    fault) rows, each refined sequentially by {!Refine.row} with
    single-point {!Testability.Detect.score_range} solves against the
    warmed read-only plans.

    [certified] is the {!Analysis.Certify} verdict cube, exactly as
    {!Testability.Matrix.build} takes it (shape-checked, same
    [certify.solves_skipped]/[certify.cells_proved] accounting).
    [solve_budget] is the per-row cap handed to {!Refine.row}
    (positive; default unlimited). [stride] defaults to
    {!default_stride}, [guard] to {!default_guard}.

    Counters — incremented sequentially after the parallel scoring
    phase, so they are jobs-invariant by construction:
    [adaptive.solves_skipped] (points filled without solving),
    [adaptive.bisections], [adaptive.budget_exhausted] (degraded
    rows). *)
