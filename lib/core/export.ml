module J = Report.Json
module IntSet = Cover.Clause.IntSet

let config_set s = J.List (List.map J.int (IntSet.elements s))

let criterion_to_json (c : Testability.Detect.criterion) =
  let rec go = function
    | Testability.Detect.Fixed_tolerance e ->
        J.Object [ ("kind", J.String "fixed"); ("epsilon", J.Number e) ]
    | Testability.Detect.Process_envelope { component_tol; floor } ->
        J.Object
          [
            ("kind", J.String "envelope");
            ("component_tol", J.Number component_tol);
            ("floor", J.Number floor);
          ]
    | Testability.Detect.Phase_fixed r ->
        J.Object [ ("kind", J.String "phase"); ("radians", J.Number r) ]
    | Testability.Detect.Phase_envelope { component_tol; floor_rad } ->
        J.Object
          [
            ("kind", J.String "phase-envelope");
            ("component_tol", J.Number component_tol);
            ("floor_rad", J.Number floor_rad);
          ]
    | Testability.Detect.Any_of l -> J.List (List.map go l)
  in
  go c

let detection_stats_to_json (d : Optimizer.detection_stats) =
  J.Object
    [
      ("worst", J.int d.Optimizer.worst);
      ("average", J.Number d.Optimizer.average);
      ("per_fault", J.List (Array.to_list (Array.map J.int d.Optimizer.per_fault)));
    ]

let report_to_json ?faults (r : Optimizer.report) =
  let fault_labels =
    match faults with
    | Some fs -> List.map (fun f -> J.String f.Fault.id) fs
    | None ->
        List.init
          (if Array.length r.Optimizer.input.Optimizer.detect = 0 then 0
           else Array.length r.Optimizer.input.Optimizer.detect.(0))
          (fun j -> J.String (Printf.sprintf "f%d" j))
  in
  J.Object
    [
      ("n_opamps", J.int r.Optimizer.input.Optimizer.n_opamps);
      ("faults", J.List fault_labels);
      ("max_coverage", J.Number r.Optimizer.max_coverage);
      ("functional_coverage", J.Number r.Optimizer.functional_coverage);
      ("functional_avg_omega", J.Number r.Optimizer.functional_avg_omega);
      ("brute_force_avg_omega", J.Number r.Optimizer.brute_force_avg_omega);
      ("uncoverable_faults", J.List (List.map J.int r.Optimizer.uncoverable));
      ("n_detect", J.int r.Optimizer.n_detect);
      ( "short_faults",
        J.List
          (List.map
             (fun (fault, available) ->
               J.Object [ ("fault", J.int fault); ("available", J.int available) ])
             r.Optimizer.short_faults) );
      ("detection_configs", detection_stats_to_json r.Optimizer.detection_a);
      ("detection_opamps", detection_stats_to_json r.Optimizer.detection_b);
      ("essential_configs", J.List (List.map J.int r.Optimizer.essential));
      ("minimal_config_sets", J.List (List.map config_set r.Optimizer.min_config_sets));
      ( "choice_configs",
        J.Object
          [
            ( "configs",
              J.List (List.map J.int r.Optimizer.choice_a.Optimizer.configs) );
            ("avg_omega", J.Number r.Optimizer.choice_a.Optimizer.avg_omega);
          ] );
      ( "choice_opamps",
        J.Object
          [
            ("opamps", J.List (List.map J.int r.Optimizer.choice_b.Optimizer.opamps));
            ( "reachable_configs",
              J.List (List.map J.int r.Optimizer.choice_b.Optimizer.reachable_configs) );
            ( "avg_omega",
              J.Number r.Optimizer.choice_b.Optimizer.avg_omega_reachable );
          ] );
      ( "detect_matrix",
        J.List
          (Array.to_list
             (Array.map
                (fun row -> J.List (Array.to_list (Array.map (fun b -> J.Bool b) row)))
                r.Optimizer.input.Optimizer.detect)) );
      ( "omega_matrix",
        J.List
          (Array.to_list
             (Array.map
                (fun row -> J.List (Array.to_list (Array.map (fun w -> J.Number w) row)))
                r.Optimizer.input.Optimizer.omega)) );
    ]

let histogram_to_json (h : Obs.Metrics.histogram_stats) =
  let finite_or_null v = if Float.is_finite v then J.Number v else J.Null in
  J.Object
    [
      ("count", J.int h.Obs.Metrics.count);
      ("sum", J.Number h.Obs.Metrics.sum);
      ("min", finite_or_null h.Obs.Metrics.min);
      ("max", finite_or_null h.Obs.Metrics.max);
      ( "buckets",
        J.List
          (List.map
             (fun (ub, n) ->
               J.Object
                 [
                   ("le", if Float.is_finite ub then J.Number ub else J.String "inf");
                   ("count", J.int n);
                 ])
             h.Obs.Metrics.buckets) );
    ]

let metrics_to_json (s : Obs.Metrics.snapshot) =
  J.Object
    [
      ( "counters",
        J.Object (List.map (fun (k, v) -> (k, J.int v)) s.Obs.Metrics.counters) );
      ( "histograms",
        J.Object
          (List.map (fun (k, h) -> (k, histogram_to_json h)) s.Obs.Metrics.histograms)
      );
    ]

let adaptive_to_json (s : Adaptive.stats) =
  J.Object
    [
      ("rows", J.int s.Adaptive.rows);
      ("points", J.int s.Adaptive.points);
      ("certified", J.int s.Adaptive.certified);
      ("solved", J.int s.Adaptive.solved);
      ("solves_skipped", J.int s.Adaptive.skipped);
      ("bisections", J.int s.Adaptive.bisections);
      ("budget_exhausted", J.int s.Adaptive.budget_exhausted);
    ]

let coverage_to_json (c : Testability.Montecarlo.coverage) =
  J.Object
    [
      ("samples", J.int c.Testability.Montecarlo.samples);
      ("strata", J.int c.Testability.Montecarlo.strata);
      ("component_tol", J.Number c.Testability.Montecarlo.component_tol);
      ("epsilon", J.Number c.Testability.Montecarlo.epsilon);
      ("boundary_radius", J.Number c.Testability.Montecarlo.boundary_radius);
      ( "stratum_samples",
        J.List
          (Array.to_list
             (Array.map J.int c.Testability.Montecarlo.stratum_samples)) );
      ( "stratum_accept",
        J.List
          (Array.to_list
             (Array.map (fun a -> J.Number a) c.Testability.Montecarlo.stratum_accept))
      );
      ("worst_case", J.Number c.Testability.Montecarlo.worst_case);
      ("average_case", J.Number c.Testability.Montecarlo.average_case);
    ]

let pipeline_to_json ?metrics ?coverage (t : Pipeline.t) r =
  let b = t.Pipeline.benchmark in
  J.Object
    ([
       ("circuit", J.String b.Circuits.Benchmark.name);
       ("description", J.String b.Circuits.Benchmark.description);
       ("source", J.String b.Circuits.Benchmark.source);
       ("output", J.String b.Circuits.Benchmark.output);
       ("center_hz", J.Number b.Circuits.Benchmark.center_hz);
       ("criterion", criterion_to_json t.Pipeline.criterion);
       ("grid_points", J.int (Testability.Grid.n_points t.Pipeline.grid));
       ( "campaign",
         J.Object
           ([
              ("equivalence_groups", J.int t.Pipeline.equivalence_groups);
              ("pruned_configs", J.int t.Pipeline.pruned_configs);
            ]
           @
           match t.Pipeline.adaptive with
           | None -> []
           | Some s -> [ ("adaptive", adaptive_to_json s) ]) );
       ("report", report_to_json ~faults:t.Pipeline.faults r);
     ]
    @ (match coverage with
      | None -> []
      | Some c -> [ ("coverage", coverage_to_json c) ])
    @ match metrics with None -> [] | Some s -> [ ("metrics", metrics_to_json s) ])
