let fault_names = [| "fR1"; "fR2"; "fR3"; "fR4"; "fR5"; "fR6"; "fC1"; "fC2" |]

let n_opamps = 3

(* Figure 5 of the paper, rows C0..C6. *)
let detectability_matrix =
  let b = ( = ) 1 in
  Array.map (Array.map b)
    [|
      [| 1; 0; 0; 1; 0; 0; 0; 0 |];
      [| 0; 0; 1; 0; 1; 1; 0; 1 |];
      [| 1; 1; 0; 1; 1; 1; 1; 0 |];
      [| 0; 0; 0; 0; 1; 1; 0; 0 |];
      [| 1; 1; 1; 1; 1; 0; 0; 0 |];
      [| 0; 0; 1; 0; 0; 0; 0; 1 |];
      [| 1; 1; 0; 1; 0; 0; 0; 0 |];
    |]

(* Table 2 of the paper, percentages, rows C0..C6. *)
let omega_table =
  [|
    [| 54.0; 0.0; 0.0; 46.0; 0.0; 0.0; 0.0; 0.0 |];
    [| 0.0; 0.0; 30.0; 0.0; 30.0; 30.0; 0.0; 30.0 |];
    [| 30.0; 30.0; 0.0; 30.0; 30.0; 30.0; 30.0; 0.0 |];
    [| 0.0; 0.0; 0.0; 0.0; 100.0; 100.0; 0.0; 0.0 |];
    [| 14.0; 70.0; 70.0; 70.0; 70.0; 0.0; 0.0; 0.0 |];
    [| 0.0; 0.0; 40.0; 0.0; 0.0; 0.0; 0.0; 40.0 |];
    [| 66.0; 40.0; 0.0; 40.0; 0.0; 0.0; 0.0; 0.0 |];
  |]

let functional_coverage = 0.25
let functional_avg_omega = 12.5
let dft_avg_omega = 68.25 (* the paper rounds to 68.3 *)
let optimal_config_set = [ 2; 5 ]
let optimal_config_avg_omega = 32.5
let rejected_config_avg_omega = 30.0
let optimal_opamp_set = [ 0; 1 ]
let partial_dft_avg_omega = 52.5
