(** Embedded-block access — the paper's original motivation for the
    multi-configuration technique (§1): to test a block under test
    (BUT) buried in a multi-stage circuit, switch {e every other} opamp
    into follower mode, so the stimulus propagates transparently to the
    BUT's input and its response propagates transparently to the
    primary output.

    The access configuration of a BUT is itself one of the 2ⁿ−1 test
    configurations (all selection bits set except the BUT's), so this
    module is a structured reading of the pipeline's matrix: per block,
    which faults are in scope there (structurally observable) and how
    their coverage compares with testing the block in situ (C₀). *)

type report = {
  but : int;  (** 0-based opamp position of the block under test. *)
  access : Multiconfig.Configuration.t;
      (** All other opamps in follower mode. *)
  faults_in_scope : string list;
      (** Fault ids structurally observable in the access
          configuration — the BUT's own neighbourhood. *)
  coverage_access : float;
      (** Coverage of the in-scope faults in the access
          configuration. *)
  coverage_functional : float;
      (** Coverage of the same faults in C₀ — the in-situ baseline. *)
}

val per_opamp : Pipeline.t -> report list
(** One report per opamp of the pipeline's circuit, in chain order.
    Blocks with no in-scope fault report coverage 0/0 as 0. *)
