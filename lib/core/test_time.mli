(** Quantitative test time — turning the paper's 2nd-order objective
    from a proxy (configuration count) into seconds.

    A measurement at (configuration, frequency) costs: settling after
    the configuration switch (the emulated circuit's dominant time
    constant, from the symbolic poles), plus a number of stimulus
    periods for the amplitude measurement. Configurations are visited
    in order, so the settle cost is paid once per configuration, not
    per frequency. Marginal or unstable configurations (poles at or
    right of the imaginary axis) get a fallback settle time — a real
    tester would use a bounded burst there. *)

type parameters = {
  settle_taus : float;  (** Settling accuracy, in time constants (default 7). *)
  measure_periods : float;  (** Stimulus periods per measurement (default 5). *)
  switch_overhead_s : float;  (** Per configuration-switch fixed cost. *)
  fallback_settle_s : float;  (** Used when no stable pole bounds settling. *)
}

val default_parameters : parameters

val settle_time_s : ?parameters:parameters -> Pipeline.t -> int -> float
(** Settling time of one emulated configuration, from its slowest
    stable pole. *)

val estimate_s : ?parameters:parameters -> Pipeline.t -> Test_plan.t -> float
(** Total estimated test time of a measurement schedule, in seconds. *)

val compare_sets :
  ?parameters:parameters -> Pipeline.t -> int list list -> (int list * float) list
(** For each candidate configuration set: the estimated time of its
    minimal measurement schedule. Sorted fastest first — a quantitative
    re-ranking of the paper's 2nd-order ties. *)
