(** End-to-end flow on a benchmark circuit: multi-configuration
    transform → fault-simulation campaign over every test configuration
    → detectability matrices → ordered-requirements optimization.

    This is the programmatic equivalent of the paper's experimental
    procedure, with our MNA engine standing in for HSPICE. *)

type t = {
  benchmark : Circuits.Benchmark.t;
  dft : Multiconfig.Transform.t;
  grid : Testability.Grid.t;
  criterion : Testability.Detect.criterion;
  faults : Fault.t list;
  matrix : Testability.Matrix.t;
      (** Rows are the test configurations C₀ … C_{2ⁿ-2} in index
          order; ω values in [0, 1]. Always full-height: pruned rows
          are replicated from their group representative. *)
  input : Optimizer.input;  (** Same data, ω in percent. *)
  equivalence_groups : int;
      (** Number of value-distinct configuration classes simulated. *)
  pruned_configs : int;
      (** Configurations whose rows were replicated instead of
          simulated ([n_views − equivalence_groups]; 0 with
          [~prune:false]). *)
  certify : Analysis.Certify.t option;
      (** The interval-certification result over the representative
          views, when the criterion was certifiable
          ([Fixed_tolerance]) and certification was not disabled;
          [None] otherwise. *)
  adaptive : Adaptive.stats option;
      (** Solve accounting of the adaptive campaign driver over the
          representative rows; [None] with [~adaptive:false]. *)
}

val default_criterion : Testability.Detect.criterion
(** [Process_envelope { component_tol = 0.04; floor = 0.02 }] — the
    calibrated criterion under which our simulated biquad lands in the
    paper's regime (low functional coverage, 100 % with DFT, two
    2-configuration optima; see DESIGN.md §5). Pass
    [Fixed_tolerance 0.10] for the paper's literal Definition 1. *)

val run :
  ?criterion:Testability.Detect.criterion ->
  ?points_per_decade:int ->
  ?faults:Fault.t list ->
  ?follower_model:Circuit.Element.opamp_model ->
  ?jobs:int ->
  ?backend:Testability.Fastsim.backend ->
  ?prune:bool ->
  ?certify:bool ->
  ?adaptive:bool ->
  ?solve_budget:int ->
  Circuits.Benchmark.t ->
  t
(** Defaults: {!default_criterion}, the paper's +20 % deviation fault
    per passive component, and a grid spanning two decades either side
    of the benchmark's centre frequency with [points_per_decade]
    (default 30) points per decade. [follower_model] emulates
    follower-mode opamps as finite-GBW unity buffers instead of ideal
    ones (see {!Multiconfig.Transform.emulate}); [jobs] parallelizes
    the campaign across domains (see {!Testability.Matrix.build});
    [backend] selects the per-view factorization
    ({!Testability.Fastsim.backend}, default [Auto]).

    [prune] (default [true]) simulates one representative per class of
    configurations whose assembled systems are value-identical up to
    row sign with every fault-touched row locked
    ({!Analysis.Lint.equivalence_groups}) and replicates the
    representative's verdict rows — the resulting matrix is exactly
    the unpruned one. The skipped work is counted in
    {!field:pruned_configs} and in the [campaign.pruned_configs]
    metric; pass [~prune:false] to force every row through the
    solver.

    [certify] (default [true]) runs {!Analysis.Certify} over the
    representative views when the criterion is a [Fixed_tolerance] —
    certified (fault × frequency) points skip their numeric solves
    ([certify.solves_skipped] / [certify.cells_proved] metrics) while
    the detect/omega matrices stay bitwise identical to an
    uncertified run. Other criteria, or [~certify:false], run fully
    numeric with {!field:certify} = [None].

    [adaptive] (default [true]) drives the campaign through
    {!Adaptive.build}: coarse-grid solves plus flip-driven bisection
    (seeded by the certify cube where one exists) replace the
    exhaustive per-point sweep, with bitwise-identical matrices
    ([adaptive.solves_skipped] / [adaptive.bisections] metrics).
    [solve_budget] caps the adaptive solves per (view × fault) row;
    an exceeded row degrades to the exhaustive sweep
    ([adaptive.budget_exhausted]). Works under every criterion —
    envelope and phase criteria refine with no certify seed. *)

val optimize : ?petrick_limit:int -> ?n_detect:int -> t -> Optimizer.report

val functional_results : t -> Testability.Detect.result list
(** Per-fault results in the functional configuration C₀ alone —
    the paper's Section 2 analysis (Graph 1). *)
