module Grid = Testability.Grid
module Detect = Testability.Detect
module Matrix = Testability.Matrix
module Netlist = Circuit.Netlist

type stats = {
  rows : int;
  points : int;
  certified : int;
  solved : int;
  skipped : int;
  bisections : int;
  budget_exhausted : int;
}

let default_stride = 8
let default_guard = 12.0

module Refine = struct
  type outcome = {
    verdicts : Bytes.t;
    solved : int list;
    bisections : int;
    degraded : bool;
  }

  let row ~nf ~stride ~step_dec ~guard ~steer_range ~budget ~certified ~solve =
    if nf <= 0 then invalid_arg "Adaptive.Refine.row: empty grid";
    if stride <= 0 then invalid_arg "Adaptive.Refine.row: stride must be positive";
    if not (step_dec >= 0.0) then
      invalid_arg "Adaptive.Refine.row: step_dec must be non-negative";
    if not (guard >= 0.0) then
      invalid_arg "Adaptive.Refine.row: guard must be non-negative";
    let v = Bytes.init nf certified in
    Bytes.iter
      (fun b ->
        if b <> 'd' && b <> 'u' && b <> '?' then
          invalid_arg "Adaptive.Refine.row: certified byte outside 'd'/'u'/'?'")
      v;
    let margins = Array.make nf Float.nan in
    let solved = ref [] and n_solved = ref 0 in
    let bisections = ref 0 in
    let degraded = ref false in
    let budget_left () =
      match budget with None -> max_int | Some b -> b - !n_solved
    in
    let do_solve i =
      let b, m = solve i in
      if b <> 'd' && b <> 'u' then
        invalid_arg "Adaptive.Refine.row: solve returned a byte outside 'd'/'u'";
      Bytes.set v i b;
      margins.(i) <- m;
      solved := i :: !solved;
      incr n_solved
    in
    (* Coarse pass: every [stride]-th point plus the final one, so
       every eventual '?' run is bracketed by known anchors. Certified
       points are free anchors and are never re-solved. *)
    let coarse = ref [] in
    for i = nf - 1 downto 0 do
      if Bytes.get v i = '?' && (i mod stride = 0 || i = nf - 1) then
        coarse := i :: !coarse
    done;
    let coarse = !coarse in
    if budget_left () < List.length coarse then degraded := true
    else List.iter do_solve coarse;
    (* Refinement between adjacent known points. Disagreeing endpoint
       verdicts are bisected down to adjacency unconditionally — the
       crossing is known to be inside. Agreeing endpoints may still
       hide a narrow crossing (a resonance spike or a deviation-zero
       dip poking through the threshold between samples), so the
       interval is skipped only when the margin slope bound rules one
       out: under |ds/dx| ≤ guard nepers/decade, a crossing at any
       interior point x is within width·step of {e both} endpoints, so
       it forces |s| ≤ guard·width·step (+ the known profile movement)
       at each of them, and an interval whose {e weaker} endpoint
       margin beats that budget cannot hide one. Only the weaker
       endpoint counts: a fat margin may come from sitting next to a
       deviation zero (where log dev moves arbitrarily fast in both
       directions) and must never subsidize the other end.
       [steer_range lo hi] is the exactly-known variation of the
       margin's static profile inside the interval (threshold and
       nominal-magnitude movement — see
       {!Testability.Detect.steering_profiles}): near a notch the
       profile swings by decades, forcing refinement no matter how
       comfortable the endpoint margins look. A certified anchor
       carries no margin and contributes zero — the guard then refines
       toward it, never past it. *)
    let margin_of k =
      (* [nan] marks a point that carries no margin information — a
         certified anchor (never solved), a failed solve, or a
         degenerate point whose caller withheld trust. It anchors a
         verdict but certifies nothing about its neighbourhood. *)
      let m = margins.(k) in
      if Float.is_nan m then 0.0 else Float.abs m
    in
    let rec refine lo hi =
      if (not !degraded) && hi - lo > 1 then begin
        let flip = Bytes.get v lo <> Bytes.get v hi in
        let safe =
          (not flip)
          && Float.min (margin_of lo) (margin_of hi)
             > (guard *. step_dec *. float_of_int (hi - lo))
               +. steer_range lo hi
        in
        if not safe then
          if budget_left () < 1 then degraded := true
          else begin
            let mid = (lo + hi) / 2 in
            do_solve mid;
            incr bisections;
            refine lo mid;
            refine mid hi
          end
      end
    in
    if not !degraded then begin
      let prev = ref (-1) in
      for i = 0 to nf - 1 do
        if Bytes.get v i <> '?' then begin
          if !prev >= 0 then refine !prev i;
          prev := i
        end
      done
    end;
    if !degraded then
      (* The budget ran out: degrade to the exhaustive sweep — solve
         every still-unknown point rather than guess any verdict. *)
      for i = 0 to nf - 1 do
        if Bytes.get v i = '?' then do_solve i
      done
    else begin
      (* Fill: each remaining '?' run is bracketed by anchors whose
         verdicts agree (a disagreement would have been bisected down
         to adjacency), so the interior inherits the shared verdict. *)
      let p = ref 0 in
      while !p < nf do
        if Bytes.get v !p <> '?' then incr p
        else begin
          let q = ref !p in
          while !q < nf && Bytes.get v !q = '?' do
            incr q
          done;
          let b = Bytes.get v (!p - 1) in
          assert (!q < nf && Bytes.get v !q = b);
          Bytes.fill v !p (!q - !p) b;
          p := !q
        end
      done
    end;
    { verdicts = v; solved = List.rev !solved; bisections = !bisections;
      degraded = !degraded }
end

(* Same order-of-magnitude cost model as Matrix.build: a warmed rank-1
   solve is two O(n²) passes per point. The scoring estimate assumes
   roughly a third of the points get solved — it only feeds the
   scheduler's sequential cutoff and chunk sizing. *)
let point_ns dim = (3.0 *. float_of_int (dim * dim)) +. 250.0

let build ?backend ?certified ?criterion ?(jobs = 1) ?solve_budget
    ?(stride = default_stride) ?(guard = default_guard) grid views faults =
  Obs.Trace.span "adaptive.build" @@ fun () ->
  (match solve_budget with
  | Some b when b <= 0 ->
      invalid_arg "Adaptive.build: solve budget must be positive"
  | _ -> ());
  if stride <= 0 then invalid_arg "Adaptive.build: stride must be positive";
  if not (guard >= 0.0) then
    invalid_arg "Adaptive.build: guard must be non-negative";
  let views = Array.of_list views in
  let faults = Array.of_list faults in
  let n = Array.length views and m = Array.length faults in
  let nf = Grid.n_points grid in
  (match certified with
  | None -> ()
  | Some cube ->
      if
        Array.length cube <> n
        || Array.exists
             (fun row ->
               Array.length row <> m
               || Array.exists
                    (function
                      | Some v -> Bytes.length v <> nf | None -> false)
                    row)
             cube
      then invalid_arg "Adaptive.build: certified verdict cube shape mismatch");
  let cert i j =
    match certified with None -> None | Some cube -> cube.(i).(j)
  in
  (* Uniform log grid: one step in decades, the unit of the margin
     slope bound. A single-point grid refines nothing, so 0 is fine. *)
  let step_dec =
    if nf <= 1 then 0.0
    else
      let f = Grid.freqs_hz grid in
      Float.abs (log10 (f.(nf - 1) /. f.(0))) /. float_of_int (nf - 1)
  in
  let has_unknown v = Bytes.exists (fun b -> b = '?') v in
  (* Certified-cell accounting identical to Matrix.build — sequential
     and ahead of the parallel phases, so an adaptive campaign reports
     the same certify.* counters as the exhaustive one. *)
  let certified_points = ref 0 in
  (match certified with
  | None -> ()
  | Some cube ->
      Array.iter
        (fun row ->
          Array.iter
            (function
              | None -> ()
              | Some v ->
                  let proved = ref 0 in
                  Bytes.iter (fun b -> if b <> '?' then incr proved) v;
                  certified_points := !certified_points + !proved;
                  if !proved > 0 then begin
                    Obs.Metrics.incr ~by:!proved "certify.solves_skipped";
                    if !proved = nf then Obs.Metrics.incr "certify.cells_proved"
                  end)
            row)
        cube);
  (* Phase 1 — per-view preparation, exactly as Matrix.build: engine,
     thresholds, warmed back-solve cache and immutable plans, so the
     refinement phase never mutates an engine and single-point solves
     at any grid index hit the warmed cache. *)
  let fault_list = Array.to_list faults in
  let prep_est =
    let dim_proxy i = List.length (Netlist.elements views.(i).Matrix.netlist) in
    Util.Floatx.fold_range n ~init:0.0 ~f:(fun acc i ->
        let d = float_of_int (dim_proxy i) in
        acc +. (float_of_int nf *. d *. d *. (d +. (6.0 *. float_of_int m))))
  in
  let prepared =
    Util.Parallel.map ~jobs ~est_ns:prep_est n (fun i ->
        let view = views.(i) in
        Obs.Trace.span ("adaptive.prepare " ^ view.Matrix.label) @@ fun () ->
        let warm =
          if certified = None then fault_list
          else
            List.filteri
              (fun j _ ->
                match cert i j with Some v -> has_unknown v | None -> true)
              fault_list
        in
        let pv =
          Detect.prepare_view ?backend ?criterion ~warm view.Matrix.probe grid
            view.Matrix.netlist
        in
        let plans =
          Array.mapi
            (fun j fault ->
              match cert i j with
              | Some v when not (has_unknown v) -> None
              | _ -> Some (Detect.plan_fault pv fault))
            faults
        in
        (pv, plans))
  in
  (* Phase 2 — refine each (view × fault) row independently. A row's
     refinement is inherently sequential (each bisection depends on the
     verdicts before it), so the unit of parallelism is the whole row;
     work-stealing balances rows whose boundary structure differs.
     Per-row tallies land in caller-indexed slots — counters are
     booked sequentially in phase 3. *)
  let verdict_rows = Array.make_matrix n m Bytes.empty in
  let row_solved = Array.make_matrix n m 0 in
  let row_bisections = Array.make_matrix n m 0 in
  let row_degraded = Array.make_matrix n m false in
  let score_est =
    Util.Floatx.fold_range n ~init:0.0 ~f:(fun acc i ->
        let pv, _ = prepared.(i) in
        acc +. (float_of_int (m * nf) *. 0.4 *. point_ns (Detect.view_dim pv)))
  in
  Util.Parallel.for_ ~jobs ~est_ns:score_est (n * m) (fun item ->
      let i = item / m and j = item mod m in
      let pv, plans = prepared.(i) in
      match plans.(j) with
      | None ->
          (* fully certified cell: the cube row is already the verdict
             row, nothing to solve *)
          verdict_rows.(i).(j) <- Option.get (cert i j)
      | Some plan ->
          let re = Array.make nf 0.0
          and im = Array.make nf 0.0
          and ok = Bytes.make nf '\000' in
          let steers = Detect.steering_profiles pv in
          let mask = Detect.view_measurement_mask pv in
          let solve k =
            Detect.score_range pv plan ~lo:k ~hi:(k + 1) ~re ~im ~ok;
            let b = if Detect.point_verdict pv ~re ~im ~ok k then 'd' else 'u' in
            (b, Detect.point_margin pv ~re ~im ~ok k)
          in
          (* A point below the view's measurement floor is undetectable
             by definition ({!Detect.measurement_mask}) — a static 'u'
             anchor exactly like a certified byte, known without
             solving. It carries no margin, so refinement stops at it
             rather than skipping past; a dead view (a reconfiguration
             that disconnects the probed output) costs zero solves. *)
          let certified_byte k =
            if Bytes.get mask k = '\001' then 'u'
            else match cert i j with None -> '?' | Some v -> Bytes.get v k
          in
          let steer_range lo hi =
            List.fold_left
              (fun acc profile ->
                let mn = ref infinity and mx = ref neg_infinity in
                for k = lo to hi do
                  let x = profile.(k) in
                  if x < !mn then mn := x;
                  if x > !mx then mx := x
                done;
                Float.max acc (!mx -. !mn))
              0.0 steers
          in
          let o =
            Refine.row ~nf ~stride ~step_dec ~guard ~steer_range
              ~budget:solve_budget ~certified:certified_byte ~solve
          in
          verdict_rows.(i).(j) <- o.Refine.verdicts;
          row_solved.(i).(j) <- List.length o.Refine.solved;
          row_bisections.(i).(j) <- o.Refine.bisections;
          row_degraded.(i).(j) <- o.Refine.degraded);
  (* Phase 3 — sequential reduce and counter booking, in row order:
     the matrix and the adaptive.* totals are jobs-deterministic. *)
  let detect = Array.make_matrix n m false in
  let omega = Array.make_matrix n m 0.0 in
  let solved = ref 0 and bisections = ref 0 and degraded_rows = ref 0 in
  Obs.Trace.span "adaptive.reduce" (fun () ->
      for i = 0 to n - 1 do
        for j = 0 to m - 1 do
          let r = Detect.result_of_verdicts grid faults.(j) verdict_rows.(i).(j) in
          detect.(i).(j) <- r.Detect.detectable;
          omega.(i).(j) <- r.Detect.omega_det;
          solved := !solved + row_solved.(i).(j);
          bisections := !bisections + row_bisections.(i).(j);
          if row_degraded.(i).(j) then incr degraded_rows
        done
      done);
  let points = n * m * nf in
  let skipped = points - !certified_points - !solved in
  if skipped > 0 then Obs.Metrics.incr ~by:skipped "adaptive.solves_skipped";
  if !bisections > 0 then Obs.Metrics.incr ~by:!bisections "adaptive.bisections";
  if !degraded_rows > 0 then
    Obs.Metrics.incr ~by:!degraded_rows "adaptive.budget_exhausted";
  ( { Matrix.views; faults; detect; omega },
    {
      rows = n * m;
      points;
      certified = !certified_points;
      solved = !solved;
      skipped;
      bisections = !bisections;
      budget_exhausted = !degraded_rows;
    } )
