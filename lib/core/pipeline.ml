type t = {
  benchmark : Circuits.Benchmark.t;
  dft : Multiconfig.Transform.t;
  grid : Testability.Grid.t;
  criterion : Testability.Detect.criterion;
  faults : Fault.t list;
  matrix : Testability.Matrix.t;
  input : Optimizer.input;
  equivalence_groups : int;
  pruned_configs : int;
  certify : Analysis.Certify.t option;
  adaptive : Adaptive.stats option;
}

let default_criterion =
  Testability.Detect.Process_envelope { component_tol = 0.04; floor = 0.02 }

let run ?(criterion = default_criterion) ?(points_per_decade = 30) ?faults
    ?follower_model ?jobs ?backend ?(prune = true) ?(certify = true)
    ?(adaptive = true) ?solve_budget (benchmark : Circuits.Benchmark.t) =
  Obs.Trace.span "pipeline.run" @@ fun () ->
  let netlist = benchmark.Circuits.Benchmark.netlist in
  Circuit.Validate.check_exn netlist;
  let dft =
    Obs.Trace.span "pipeline.transform" @@ fun () ->
    Multiconfig.Transform.make ~source:benchmark.Circuits.Benchmark.source
      ~output:benchmark.Circuits.Benchmark.output netlist
  in
  let grid =
    Testability.Grid.around ~points_per_decade
      ~center_hz:benchmark.Circuits.Benchmark.center_hz ()
  in
  let faults = match faults with Some f -> f | None -> Fault.deviation_faults netlist in
  let probe =
    {
      Testability.Detect.source = benchmark.Circuits.Benchmark.source;
      output = benchmark.Circuits.Benchmark.output;
    }
  in
  let views =
    Obs.Trace.span "pipeline.views" @@ fun () ->
    List.map
      (fun config ->
        {
          Testability.Matrix.label = Multiconfig.Configuration.label config;
          netlist = Multiconfig.Transform.emulate ?follower_model dft config;
          probe;
        })
      (Multiconfig.Transform.test_configurations dft)
  in
  let n_views = List.length views in
  (* Equivalence pruning: views whose assembled systems agree
     value-exactly (up to row sign, with every fault-touched row
     locked — see {!Analysis.Lint.value_signature}) produce identical
     verdict rows, so the campaign simulates one representative per
     group and replicates its row. The grouping locks the rows of
     every faulted element under the campaign's own source mode, which
     is what makes the replication exact rather than heuristic. *)
  let groups =
    Obs.Trace.span "pipeline.prune" @@ fun () ->
    if not prune then List.init n_views (fun i -> [ i ])
    else
      let locked_elements =
        List.sort_uniq String.compare
          (List.map (fun f -> f.Fault.element) faults)
      in
      Analysis.Lint.equivalence_groups
        ~sources:(Mna.Assemble.Only probe.Testability.Detect.source)
        ~locked_elements
        (List.map (fun v -> v.Testability.Matrix.netlist) views)
  in
  let n_groups = List.length groups in
  let pruned = n_views - n_groups in
  Obs.Metrics.incr "campaign.equivalence_groups" ~by:n_groups;
  if pruned > 0 then Obs.Metrics.incr "campaign.pruned_configs" ~by:pruned;
  (* representative (first member) of each group, and each view's
     position in the representative list *)
  let rep_of = Array.make n_views 0 in
  List.iteri
    (fun g members -> List.iter (fun i -> rep_of.(i) <- g) members)
    groups;
  let views_arr = Array.of_list views in
  let rep_views =
    List.map (fun members -> views_arr.(List.hd members)) groups
  in
  (* Interval certification: a static pass over the representative
     views proving (fault × frequency-point) verdicts from the
     symbolic transfer functions, so the campaign only solves what the
     intervals could not decide. Only the paper's Definition 1
     criterion is certifiable — the deviation the intervals bound is
     exactly the fixed-ε magnitude comparison; envelope and phase
     criteria run fully numeric. *)
  let certification =
    match criterion with
    | Testability.Detect.Fixed_tolerance eps when certify && eps > 0.0 ->
        Obs.Trace.span "pipeline.certify" @@ fun () ->
        let specs =
          List.map
            (fun (v : Testability.Matrix.view) ->
              {
                Analysis.Certify.label = v.Testability.Matrix.label;
                netlist = v.Testability.Matrix.netlist;
                source = probe.Testability.Detect.source;
                output = probe.Testability.Detect.output;
              })
            rep_views
        in
        Some
          (Analysis.Certify.certify ~eps
             ~freqs_hz:(Testability.Grid.freqs_hz grid)
             specs faults)
    | _ -> None
  in
  (* The adaptive driver (default) spends numeric solves only where
     verdicts can flip; its matrices are bitwise identical to the
     exhaustive Matrix.build — asserted by the tier-1 tests and the
     adaptive-vs-exhaustive oracle, like pruning and certification
     before it. *)
  let certified = Option.map Analysis.Certify.verdict_cube certification in
  let rep_matrix, adaptive_stats =
    if adaptive then
      let matrix, stats =
        Adaptive.build ?backend ?certified ~criterion ?jobs ?solve_budget grid
          rep_views faults
      in
      (matrix, Some stats)
    else
      ( Testability.Matrix.build ?backend ?certified ~criterion ?jobs grid
          rep_views faults,
        None )
  in
  (* Expand back to the full view list: row i is a copy of its
     representative's row, so the matrix is indistinguishable from an
     unpruned build. *)
  let matrix =
    {
      Testability.Matrix.views = views_arr;
      faults = rep_matrix.Testability.Matrix.faults;
      detect =
        Array.init n_views (fun i ->
            Array.copy rep_matrix.Testability.Matrix.detect.(rep_of.(i)));
      omega =
        Array.init n_views (fun i ->
            Array.copy rep_matrix.Testability.Matrix.omega.(rep_of.(i)));
    }
  in
  let omega_percent =
    Array.map (Array.map (fun v -> v *. 100.0)) matrix.Testability.Matrix.omega
  in
  let input =
    Optimizer.input_of_matrices ~n_opamps:(Multiconfig.Transform.n_opamps dft)
      matrix.Testability.Matrix.detect omega_percent
  in
  {
    benchmark;
    dft;
    grid;
    criterion;
    faults;
    matrix;
    input;
    equivalence_groups = n_groups;
    pruned_configs = pruned;
    certify = certification;
    adaptive = adaptive_stats;
  }

let optimize ?petrick_limit ?n_detect t =
  Obs.Trace.span "pipeline.optimize" @@ fun () ->
  Optimizer.optimize ?petrick_limit ?n_detect t.input

let functional_results t =
  let probe =
    {
      Testability.Detect.source = t.benchmark.Circuits.Benchmark.source;
      output = t.benchmark.Circuits.Benchmark.output;
    }
  in
  Testability.Detect.analyze ~criterion:t.criterion probe t.grid
    t.benchmark.Circuits.Benchmark.netlist t.faults
