type t = {
  benchmark : Circuits.Benchmark.t;
  dft : Multiconfig.Transform.t;
  grid : Testability.Grid.t;
  criterion : Testability.Detect.criterion;
  faults : Fault.t list;
  matrix : Testability.Matrix.t;
  input : Optimizer.input;
}

let default_criterion =
  Testability.Detect.Process_envelope { component_tol = 0.04; floor = 0.02 }

let run ?(criterion = default_criterion) ?(points_per_decade = 30) ?faults
    ?follower_model ?jobs (benchmark : Circuits.Benchmark.t) =
  Obs.Trace.span "pipeline.run" @@ fun () ->
  let netlist = benchmark.Circuits.Benchmark.netlist in
  Circuit.Validate.check_exn netlist;
  let dft =
    Obs.Trace.span "pipeline.transform" @@ fun () ->
    Multiconfig.Transform.make ~source:benchmark.Circuits.Benchmark.source
      ~output:benchmark.Circuits.Benchmark.output netlist
  in
  let grid =
    Testability.Grid.around ~points_per_decade
      ~center_hz:benchmark.Circuits.Benchmark.center_hz ()
  in
  let faults = match faults with Some f -> f | None -> Fault.deviation_faults netlist in
  let probe =
    {
      Testability.Detect.source = benchmark.Circuits.Benchmark.source;
      output = benchmark.Circuits.Benchmark.output;
    }
  in
  let views =
    Obs.Trace.span "pipeline.views" @@ fun () ->
    List.map
      (fun config ->
        {
          Testability.Matrix.label = Multiconfig.Configuration.label config;
          netlist = Multiconfig.Transform.emulate ?follower_model dft config;
          probe;
        })
      (Multiconfig.Transform.test_configurations dft)
  in
  let matrix = Testability.Matrix.build ~criterion ?jobs grid views faults in
  let omega_percent =
    Array.map (Array.map (fun v -> v *. 100.0)) matrix.Testability.Matrix.omega
  in
  let input =
    Optimizer.input_of_matrices ~n_opamps:(Multiconfig.Transform.n_opamps dft)
      matrix.Testability.Matrix.detect omega_percent
  in
  { benchmark; dft; grid; criterion; faults; matrix; input }

let optimize ?petrick_limit ?n_detect t =
  Obs.Trace.span "pipeline.optimize" @@ fun () ->
  Optimizer.optimize ?petrick_limit ?n_detect t.input

let functional_results t =
  let probe =
    {
      Testability.Detect.source = t.benchmark.Circuits.Benchmark.source;
      output = t.benchmark.Circuits.Benchmark.output;
    }
  in
  Testability.Detect.analyze ~criterion:t.criterion probe t.grid
    t.benchmark.Circuits.Benchmark.netlist t.faults
