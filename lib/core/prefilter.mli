(** Structural fault-simulation pruning — the paper's future-work
    proposal, implemented.

    Fault simulation of all 2ⁿ−1 test configurations is the flow's
    bottleneck. {!Circuit.Influence} gives, per configuration, a sound
    over-approximation of the elements that can affect the output
    there; a fault on an element outside that set is {e guaranteed}
    undetectable in that configuration, so its faulty sweep can be
    skipped with a free "0" entry. Unlike dropping whole
    configurations (structural reachability does not imply
    detectability!), pair-level pruning never changes the resulting
    matrix — verified by tests. *)

type t = {
  predicted : (int * string list) list;
      (** Per test configuration: the passive elements that could
          possibly affect the output there. *)
  total_pairs : int;  (** (configuration, fault) sweeps without pruning. *)
  pruned_pairs : int;  (** Sweeps skipped as structurally impossible. *)
}

val analyse :
  ?follower_model:Circuit.Element.opamp_model ->
  ?faults:Fault.t list ->
  Multiconfig.Transform.t ->
  t
(** Run the structural pass over every test configuration. [faults]
    defaults to one +20 % deviation per passive. *)

val run :
  ?criterion:Testability.Detect.criterion ->
  ?points_per_decade:int ->
  ?faults:Fault.t list ->
  ?certify:bool ->
  ?adaptive:bool ->
  ?solve_budget:int ->
  Circuits.Benchmark.t ->
  t * Testability.Matrix.t
(** The economical campaign: the same matrix {!Pipeline.run} would
    produce (same criterion default, same grid), but with structurally
    impossible (configuration, fault) pairs skipped instead of
    simulated. [certify] (default [true]) additionally skips the
    sweeps of cells the interval certification pass
    ({!Analysis.Certify}) fully proved — only under a
    [Fixed_tolerance] criterion; the matrix stays identical either
    way. [adaptive] (default [true]) solves the surviving rows through
    {!Adaptive.build} (flip-driven refinement, [solve_budget] per-row
    cap) instead of the exhaustive per-fault sweep. *)
