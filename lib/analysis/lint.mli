(** The multi-pass netlist linter.

    Orchestrates the analysis passes into one sorted finding list:

    - {e validation} — every {!Circuit.Validate} issue becomes a V0xx
      finding (V001 empty netlist … V008 opamp drive conflict);
    - {e structural rank} — {!Structural} findings S001–S003 on the
      functional netlist;
    - {e configuration space} — every configuration of the DFT view is
      emulated and checked: validation failures (C001), structural
      singularity (C002), broken test-input chains (C003), and
      structurally equivalent configuration pairs (C004, info);
    - {e detectability} — faults no test configuration can structurally
      observe (F001), plus a summary of the prunable
      (configuration, fault) pairs (P001, info).

    The configuration-space passes only run when the netlist is free of
    error-severity findings — cascading diagnostics out of a broken
    netlist helps nobody. *)

type src = { file : string; lines : (string * int) list }
(** Where the netlist came from: [lines] maps element names to the
    1-based source line that declared them (see
    {!Spice.Parser.parse_file_with_lines}). *)

val loc_of : src option -> string -> Finding.loc option
(** Look an element name up in the source table. *)

val netlist_findings : ?src:src -> Circuit.Netlist.t -> Finding.t list
(** Validation plus structural-rank findings on one netlist. *)

val configuration_findings :
  ?src:src ->
  ?follower_model:Circuit.Element.opamp_model ->
  ?max_opamps:int ->
  Multiconfig.Transform.t ->
  Finding.t list
(** The configuration-space and detectability passes. When the circuit
    has more than [max_opamps] opamps (default 10, i.e. 1024
    configurations) the pass is skipped with an info finding instead of
    exploding. *)

val run :
  ?src:src ->
  ?follower_model:Circuit.Element.opamp_model ->
  ?source:string ->
  ?output:string ->
  Circuit.Netlist.t ->
  Finding.t list
(** The whole pipeline, sorted by severity then source line. The
    configuration-space passes need a driving [source] and an observed
    [output] and a netlist with at least one opamp and no
    error-severity finding; otherwise they are skipped silently. *)
