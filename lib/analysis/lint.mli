(** The multi-pass netlist linter.

    Orchestrates the analysis passes into one sorted finding list:

    - {e validation} — every {!Circuit.Validate} issue becomes a V0xx
      finding (V001 empty netlist … V008 opamp drive conflict);
    - {e structural rank} — {!Structural} findings S001–S003 on the
      functional netlist;
    - {e configuration space} — every configuration of the DFT view is
      emulated and checked: validation failures (C001), structural
      singularity (C002), broken test-input chains (C003), and
      structurally equivalent configuration pairs (C004, info);
    - {e detectability} — faults no test configuration can structurally
      observe (F001), plus a summary of the prunable
      (configuration, fault) pairs (P001, info);
    - {e interval certification} — faults whose undetectability at the
      paper's fixed ε = 0.1 is {e certified} by the interval abstract
      interpreter ({!Certify}) at every probed frequency in every test
      configuration (F002), plus a summary of the statically provable
      verdict fraction (P002, info). Gated by the certification work
      cap so lint stays fast on large configuration spaces.

    The configuration-space passes only run when the netlist is free of
    error-severity findings — cascading diagnostics out of a broken
    netlist helps nobody. *)

type src = { file : string; lines : (string * int) list }
(** Where the netlist came from: [lines] maps element names to the
    1-based source line that declared them (see
    {!Spice.Parser.parse_file_with_lines}). *)

val loc_of : src option -> string -> Finding.loc option
(** Look an element name up in the source table. *)

val netlist_findings : ?src:src -> Circuit.Netlist.t -> Finding.t list
(** Validation plus structural-rank findings on one netlist. *)

val value_signature :
  ?sources:Mna.Assemble.source_mode ->
  ?locked_elements:string list ->
  Circuit.Netlist.t ->
  string
(** A value-exact signature of the netlist's assembled MNA system,
    canonical up to per-row sign: two netlists with equal signatures
    assemble the same A(s)x = b(s) after negating some equations, so
    every response derived from either is identical — negating an
    equation (both matrix row and excitation entry) is exact in IEEE
    arithmetic and does not move the solution.

    [locked_elements] names elements whose equations must match
    {e without} any sign flip — rows they stamp into
    ({!Mna.Assemble.Make.row_occupancy}) keep their assembled sign and
    are marked in the signature. A campaign pruner passes its fault
    universe here: with those rows locked, equal signatures imply
    equal {e faulty} responses too (a rank-1 perturbation or a
    structural re-assembly lands in sign-identical equations).
    [sources] (default [Nominal]) must match the assembly mode of the
    consumer. Coefficients are rendered bit-exactly (hex floats). *)

val equivalence_groups :
  ?sources:Mna.Assemble.source_mode ->
  ?locked_elements:string list ->
  Circuit.Netlist.t list ->
  int list list
(** Partition views (by position) into classes of equal
    {!value_signature}: each group lists member indices ascending,
    groups ordered by first member. Simulating one representative per
    group and replicating its verdicts is exact under the conditions
    above. *)

val configuration_findings :
  ?src:src ->
  ?follower_model:Circuit.Element.opamp_model ->
  ?max_opamps:int ->
  Multiconfig.Transform.t ->
  Finding.t list
(** The configuration-space and detectability passes. When the circuit
    has more than [max_opamps] opamps (default 10, i.e. 1024
    configurations) the pass is skipped with an info finding instead of
    exploding. *)

val run :
  ?src:src ->
  ?follower_model:Circuit.Element.opamp_model ->
  ?source:string ->
  ?output:string ->
  Circuit.Netlist.t ->
  Finding.t list
(** The whole pipeline, sorted by severity then source line. The
    configuration-space passes need a driving [source] and an observed
    [output] and a netlist with at least one opamp and no
    error-severity finding; otherwise they are skipped silently. *)
