module Netlist := Circuit.Netlist

(** Interval-certified detectability — a static analysis that proves
    campaign verdicts without solving.

    For each (configuration view × fault) cell the exact symbolic
    transfer functions H₀(s) and H_f(s) ({!Mna.Symbolic}) are evaluated
    over whole frequency intervals with outward-rounded interval
    arithmetic ({!Util.Interval}, {!Linalg.Ratfunc.magnitude_jw_box}).
    Recursive bisection of the log-frequency axis classifies each
    region: where the enclosure of the relative magnitude deviation
    |‖H_f‖ − ‖H₀‖| / ‖H₀‖ provably clears the ε threshold (with a
    safety margin) the region is {!Certified_detectable}; where it
    provably stays under (and both denominators are bounded away from
    zero) it is {!Certified_undetectable}; residual regions —
    threshold crossings, poles, exhausted budget — stay {!Unknown}.

    Soundness chain: interval evaluation encloses every real point
    value of the float-coefficient rational form; a relative widening
    of each band's ω enclosure covers the engine's actual float
    evaluation points; the classification margin absorbs the numeric
    engine's own round-off; and each extracted transfer is validated
    against the independent {!Mna.Ac} reference at spread probe points
    (a failed validation degrades the whole view to Unknown rather
    than risking a wrong certificate). The certify-soundness
    conformance oracle adversarially re-checks all of this against the
    numeric engine on every generator family. *)

type view_spec = {
  label : string;  (** e.g. a configuration label such as ["C3"]. *)
  netlist : Netlist.t;  (** The emulated view, faults injectable. *)
  source : string;
  output : string;
}

type verdict = Certified_detectable | Certified_undetectable | Unknown

type region = {
  band : Util.Interval.t;  (** In log10(Hz), a bisection leaf. *)
  verdict : verdict;
}

type cell = {
  fault : Fault.t;
  regions : region list;
      (** Bisection leaves in ascending band order, tiling the whole
          (slightly widened) grid range. *)
  verdicts : Bytes.t;
      (** One byte per grid point: ['d' | 'u' | '?'] — the verdict of
          the first leaf containing the point's log-frequency. *)
}

type view_result = {
  spec : view_spec;
  validated : bool;
      (** False when the view was gated out (dimension cap, singular
          symbolic extraction, failed probe validation); all its cells
          are then Unknown. *)
  cells : cell array;  (** One per fault, in input order. *)
}

type stats = {
  cells : int;
  cells_proved : int;  (** Cells with no ['?'] point left. *)
  points : int;
  points_proved : int;  (** Grid points certified across all cells. *)
  skipped_views : int;
}

type t = {
  eps : float;
  margin : float;
  n_points : int;
  freqs_hz : float array;
  views : view_result array;
  stats : stats;
}

val default_budget : int
(** 256 interval evaluations per cell. *)

val default_max_dim : int
(** 40 MNA unknowns — symbolic extraction beyond this is gated out. *)

val default_margin : float
(** 0.02: certificates must clear ε by a 2 % relative margin, the
    room left for the numeric engine's own rounding. *)

val default_work_cap : int
(** 256 symbolic extractions per {!certify} call — the knob bounding
    the pass's cost on circuits with hundreds of configuration
    views. *)

val certify :
  ?budget:int ->
  ?max_dim:int ->
  ?margin:float ->
  ?work_cap:int ->
  eps:float ->
  freqs_hz:float array ->
  view_spec list ->
  Fault.t list ->
  t
(** Run the abstract interpreter over every (view × fault) cell for
    the {!Fixed_tolerance}-style criterion |ΔT|/|T| > [eps] on the
    given frequency grid (Hz, ascending). Never raises on singular or
    ill-posed views — they degrade to Unknown. Raises
    [Invalid_argument] when [eps <= 0]. *)

val verdict_cube : t -> Bytes.t option array array
(** Per-[view][fault] verdict bytes for the campaign engine — [Some]
    only for validated cells with at least one certified point. *)

val byte_of_verdict : verdict -> char
val verdict_of_byte : char -> verdict
val pp_verdict : Format.formatter -> verdict -> unit
