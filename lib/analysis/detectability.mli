(** Structural detectability pre-pass over the configuration space.

    {!Circuit.Influence} gives, per emulated configuration, a sound
    over-approximation of the elements able to affect the output there.
    This module lifts that per-configuration pass into a
    (configuration x fault) boolean matrix — [true] meaning "fault f is
    {e structurally undetectable} in configuration C_i, skip its
    simulation" — which {!Mcdft_core.Prefilter} consumes to prune the
    fault-simulation campaign. Soundness: a pruned pair is guaranteed a
    "not detected" matrix entry, so pruning never changes the campaign
    result (pinned by tests). *)

type t = {
  configs : Multiconfig.Configuration.t array;
      (** The test configurations, in index order. *)
  faults : Fault.t array;
  undetectable : bool array array;
      (** [undetectable.(i).(j)]: fault [j] cannot affect the output in
          configuration [configs.(i)]. *)
  influential : (int * string list) list;
      (** Per configuration index: the passive elements that could
          affect the output there (the complement view, kept for
          reporting). *)
}

val analyse :
  ?follower_model:Circuit.Element.opamp_model ->
  ?faults:Fault.t list ->
  Multiconfig.Transform.t ->
  t
(** [faults] defaults to one +20 % deviation per passive. *)

val skip_count : t -> int
(** Number of [true] entries — the (configuration, fault) sweeps the
    campaign can skip. *)

val total_pairs : t -> int

val undetectable_everywhere : t -> Fault.t list
(** Faults no test configuration can structurally detect — reported by
    lint as warnings (the DFT cannot reach them at all). *)
