module Netlist = Circuit.Netlist
module I = Util.Interval
module Ratfunc = Linalg.Ratfunc
module Metrics = Obs.Metrics

type view_spec = {
  label : string;
  netlist : Netlist.t;
  source : string;
  output : string;
}

type verdict = Certified_detectable | Certified_undetectable | Unknown

type region = { band : I.t; verdict : verdict }

type cell = { fault : Fault.t; regions : region list; verdicts : Bytes.t }

type view_result = { spec : view_spec; validated : bool; cells : cell array }

type stats = {
  cells : int;
  cells_proved : int;
  points : int;
  points_proved : int;
  skipped_views : int;
}

type t = {
  eps : float;
  margin : float;
  n_points : int;
  freqs_hz : float array;
  views : view_result array;
  stats : stats;
}

let default_budget = 256
let default_max_dim = 40
let default_margin = 0.02
let default_work_cap = 256
let min_band_width = 1e-4 (* decades *)

let byte_of_verdict = function
  | Certified_detectable -> 'd'
  | Certified_undetectable -> 'u'
  | Unknown -> '?'

let verdict_of_byte = function
  | 'd' -> Certified_detectable
  | 'u' -> Certified_undetectable
  | _ -> Unknown

(* ω enclosure of a log10-Hz band. The campaign engine evaluates at
   ω̂ = fl(2π̂ · f_i) for grid floats f_i whose log10 lies in the band;
   the relative widening (1e-12 on the frequency, one ulp on 2π) makes
   the enclosure cover both those evaluation floats and the exact real
   ω they approximate, with orders of magnitude to spare over the few
   ulps the float chain can actually drift. *)
let omega_box band =
  let slack = 1e-12 in
  let f_lo = (10.0 ** band.I.lo) *. (1.0 -. slack) in
  let f_hi = (10.0 ** band.I.hi) *. (1.0 +. slack) in
  let two_pi = 2.0 *. Float.pi in
  I.mul { I.lo = f_lo; hi = f_hi }
    { I.lo = Float.pred two_pi; hi = Float.succ two_pi }

(* Enclosure of the engine's deviation |‖Hf‖ - ‖H0‖| / ‖H0‖ over the
   band. A nominal-magnitude enclosure touching zero yields [0, inf] —
   matching the engine's m0 = 0 special cases, which an interval can
   never separate from its neighbourhood. *)
let dev_box ~h0 ~hf w =
  let m0 = Ratfunc.magnitude_jw_box h0 w in
  let mf = Ratfunc.magnitude_jw_box hf w in
  let d = I.div (I.abs (I.sub mf m0)) m0 in
  { I.lo = Float.max 0.0 d.I.lo; hi = d.I.hi }

(* An undetectability certificate additionally requires both
   denominators to stay relatively far from zero across the band: a
   near-singular solve makes the engine count the point as detectable
   (wildly wrong response), which must never contradict a 'u' cell. *)
let den_comfortable h w =
  let dm = Ratfunc.den_magnitude_jw_box h w in
  dm.I.lo > 0.0 && dm.I.lo > 1e-9 *. dm.I.hi

let classify ~eps ~margin ~h0 ~hf band =
  let w = omega_box band in
  let d = dev_box ~h0 ~hf w in
  if d.I.lo > eps *. (1.0 +. margin) then Some Certified_detectable
  else if
    d.I.hi < eps *. (1.0 -. margin)
    && den_comfortable h0 w && den_comfortable hf w
  then Some Certified_undetectable
  else None

let bisect ~eps ~margin ~budget ~h0 ~hf root =
  let leaves = ref [] in
  let evals = ref 0 in
  let rec go band =
    if !evals >= budget then leaves := { band; verdict = Unknown } :: !leaves
    else begin
      incr evals;
      match classify ~eps ~margin ~h0 ~hf band with
      | Some verdict -> leaves := { band; verdict } :: !leaves
      | None ->
          if I.length band <= min_band_width then
            leaves := { band; verdict = Unknown } :: !leaves
          else begin
            let mid = 0.5 *. (band.I.lo +. band.I.hi) in
            go { I.lo = band.I.lo; hi = mid };
            go { I.lo = mid; hi = band.I.hi }
          end
    end
  in
  go root;
  List.rev !leaves

let verdicts_of_leaves leaves log_freqs =
  let b = Bytes.make (Array.length log_freqs) '?' in
  Array.iteri
    (fun i l ->
      match List.find_opt (fun r -> I.contains r.band l) leaves with
      | Some r -> Bytes.set b i (byte_of_verdict r.verdict)
      | None -> ())
    log_freqs;
  b

(* Spot-check the extracted rational form against the independent
   numeric AC path at a few spread grid points. This is a validation,
   not a proof: the Bareiss elimination is exact over the reals but its
   float coefficients carry round-off the interval evaluation cannot
   see. A view whose symbolic transfer drifts past [tol] from the
   numeric reference (ill-conditioned extraction) contributes only
   Unknown cells; the classification margin absorbs what a passing
   validation can still hide. *)
let probe_tol = 1e-7

let validates ~source ~output netlist h freqs_hz =
  let n = Array.length freqs_hz in
  n = 0
  ||
  let idx = List.sort_uniq compare [ 0; n / 4; n / 2; 3 * n / 4; n - 1 ] in
  let fs = Array.of_list (List.map (fun i -> freqs_hz.(i)) idx) in
  match Mna.Ac.sweep ~source ~output netlist ~freqs_hz:fs with
  | exception Mna.Ac.Singular_circuit _ -> false
  | reference ->
      let ok = ref true in
      Array.iteri
        (fun k f ->
          let sym = Ratfunc.eval_jw h (2.0 *. Float.pi *. f) in
          let r = reference.(k) in
          let err = Complex.norm (Complex.sub sym r) in
          if
            not
              (Float.is_finite err
              && err <= probe_tol *. Float.max 1.0 (Complex.norm r))
          then ok := false)
        fs;
      !ok

let certify ?(budget = default_budget) ?(max_dim = default_max_dim)
    ?(margin = default_margin) ?(work_cap = default_work_cap) ~eps ~freqs_hz
    specs faults =
  if eps <= 0.0 then invalid_arg "Certify.certify: eps must be positive";
  let n = Array.length freqs_hz in
  let log_freqs = Array.map log10 freqs_hz in
  let root =
    if n = 0 then { I.lo = 0.0; hi = 0.0 }
    else begin
      let lo = log_freqs.(0) and hi = log_freqs.(n - 1) in
      let slack v = 1e-9 *. Float.max 1.0 (Float.abs v) in
      { I.lo = lo -. slack lo; hi = hi +. slack hi }
    end
  in
  let unknown_cell fault =
    {
      fault;
      regions = (if n = 0 then [] else [ { band = root; verdict = Unknown } ]);
      verdicts = Bytes.make n '?';
    }
  in
  let faults = Array.of_list faults in
  (* Symbolic extraction is the expensive step (one Bareiss elimination
     per view plus one per cell); the work cap bounds it so campaigns
     with hundreds of configuration views pay a fixed, predictable
     certification cost. Views are charged in order, so which views
     end up certified is deterministic and jobs-invariant; capped-out
     views just stay Unknown — soundness is unaffected. *)
  let extractions_left = ref work_cap in
  let view_of spec =
    Metrics.incr "certify.views";
    let h0 =
      if
        n = 0
        || !extractions_left < 1 + Array.length faults
        || Mna.Index.size (Mna.Index.build spec.netlist) > max_dim
      then None
      else begin
        decr extractions_left;
        match
          Mna.Symbolic.transfer ~source:spec.source ~output:spec.output
            spec.netlist
        with
        | exception (Mna.Symbolic.Singular_circuit _ | Invalid_argument _) ->
            None
        | h ->
            if validates ~source:spec.source ~output:spec.output spec.netlist h
                 freqs_hz
            then Some h
            else None
      end
    in
    match h0 with
    | None ->
        Metrics.incr "certify.views_skipped";
        { spec; validated = false; cells = Array.map unknown_cell faults }
    | Some h0 ->
        let cell_of fault =
          match
            let faulty = Fault.inject fault spec.netlist in
            decr extractions_left;
            let hf =
              Mna.Symbolic.transfer ~source:spec.source ~output:spec.output
                faulty
            in
            if validates ~source:spec.source ~output:spec.output faulty hf
                 freqs_hz
            then Some hf
            else None
          with
          | exception
              ( Mna.Symbolic.Singular_circuit _ | Fault.Unknown_element _
              | Invalid_argument _ ) ->
              unknown_cell fault
          | None -> unknown_cell fault
          | Some hf ->
              let regions = bisect ~eps ~margin ~budget ~h0 ~hf root in
              { fault; regions; verdicts = verdicts_of_leaves regions log_freqs }
        in
        { spec; validated = true; cells = Array.map cell_of faults }
  in
  let views =
    Metrics.time "certify.seconds" (fun () ->
        Array.of_list (List.map view_of specs))
  in
  let stats =
    let cells = ref 0
    and cells_proved = ref 0
    and points = ref 0
    and points_proved = ref 0
    and skipped = ref 0 in
    Array.iter
      (fun v ->
        if not v.validated then incr skipped;
        Array.iter
          (fun c ->
            incr cells;
            points := !points + n;
            let proved = ref 0 in
            Bytes.iter (fun b -> if b <> '?' then incr proved) c.verdicts;
            points_proved := !points_proved + !proved;
            if n > 0 && !proved = n then incr cells_proved)
          v.cells)
      views;
    {
      cells = !cells;
      cells_proved = !cells_proved;
      points = !points;
      points_proved = !points_proved;
      skipped_views = !skipped;
    }
  in
  { eps; margin; n_points = n; freqs_hz; views; stats }

let verdict_cube t =
  Array.map
    (fun v ->
      Array.map
        (fun c ->
          if v.validated && Bytes.exists (fun b -> b <> '?') c.verdicts then
            Some c.verdicts
          else None)
        v.cells)
    t.views

let pp_verdict ppf v =
  Format.pp_print_string ppf
    (match v with
    | Certified_detectable -> "detectable"
    | Certified_undetectable -> "undetectable"
    | Unknown -> "unknown")
