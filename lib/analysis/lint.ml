module Netlist = Circuit.Netlist
module Validate = Circuit.Validate
module Poly = Linalg.Poly
module Transform = Multiconfig.Transform
module Configuration = Multiconfig.Configuration

type src = { file : string; lines : (string * int) list }

let loc_of src name =
  Option.bind src (fun s ->
      Option.map
        (fun line -> { Finding.file = s.file; line })
        (List.assoc_opt name s.lines))

(* ---- validation pass ---- *)

let finding_of_issue ?src issue =
  let severity =
    match Validate.severity issue with
    | `Error -> Finding.Error
    | `Warning -> Finding.Warning
  in
  let code, element, node =
    match issue with
    | Validate.Empty_netlist -> ("V001", None, None)
    | Validate.No_ground -> ("V002", None, None)
    | Validate.Disconnected ns -> ("V003", None, (match ns with n :: _ -> Some n | [] -> None))
    | Validate.Nonpositive_value e -> ("V004", Some e, None)
    | Validate.Missing_sense { element; _ } -> ("V005", Some element, None)
    | Validate.Self_loop e -> ("V006", Some e, None)
    | Validate.Dangling_node { node; element } -> ("V007", Some element, Some node)
    | Validate.Opamp_drive_conflict { opamp; _ } -> ("V008", Some opamp, None)
  in
  let loc = Option.bind element (loc_of src) in
  Finding.make ?element ?node ?loc ~code ~severity (Validate.issue_to_string issue)

let netlist_findings ?src netlist =
  let validation =
    match Validate.check netlist with
    | Ok () -> []
    | Error issues -> List.map (finding_of_issue ?src) issues
  in
  let structural =
    if List.exists (fun f -> f.Finding.severity = Finding.Error) validation then []
    else Structural.findings ~loc_of:(loc_of src) (Structural.analyse netlist)
  in
  validation @ structural

(* ---- configuration-space pass ---- *)

module A = Mna.Assemble.Make (Mna.Field.Polynomial)

(* The value-exact signature of a configuration view's MNA system,
   canonicalized up to per-row sign. Two views with equal signatures
   assemble — entry for entry, coefficient for coefficient — the same
   A(s)x = b(s) after multiplying some equations by −1, so every
   derived response is identical and a campaign needs to simulate only
   one of them. (The index layout is name-driven, hence stable across
   views of one circuit.)

   Row flips are canonicalized because emulation produces them: an
   ideal opamp's test-mode nullor row [v(inp) − v(out) = 0] is the
   exact negation of the follower Vcvs row [v(out) − v(cpos) = 0] when
   they connect the same nodes. A flipped equation changes nothing
   about the solution — scaling row i of both A and b by σᵢ = ±1
   leaves x bitwise-identical under IEEE arithmetic (negation is
   exact, and the LU pivot choice sees identical magnitudes).

   The canonicalization must NOT cross fault injection, though: a
   Sherman–Morrison rank-1 update α·uvᵀ added to a σ-flipped row would
   no longer commute with the flip. [locked_elements] therefore names
   the elements a campaign will perturb; every row any of them stamps
   into (matrix or excitation, per {!Mna.Assemble.Make.row_occupancy})
   keeps σ = +1 and is marked in the signature, so views only group
   together when their fault-reachable equations agree without any
   flip — faulty responses then coincide too, for rank-1 updates and
   for structural re-assemblies alike.

   Coefficients are rendered in hex (%h) — bit-exact, no rounding
   collisions. [sources] must match the mode the campaign assembles
   with (the signature of the driven system, not just the nominal
   one). *)
let value_signature ?(sources = Mna.Assemble.Nominal) ?(locked_elements = []) view =
  let index = Mna.Index.build view in
  let n = Mna.Index.size index in
  let { A.matrix; rhs } = A.assemble ~sources index view in
  let locked = Array.make n false in
  if locked_elements <> [] then
    List.iter
      (fun (name, rows) ->
        if List.mem name locked_elements then
          List.iter (fun i -> locked.(i) <- true) rows)
      (A.row_occupancy ~sources index view);
  let lowest_nonzero p =
    let rec go k =
      if k > Poly.degree p then 0.0
      else
        let c = Poly.coeff p k in
        if c <> 0.0 then c else go (k + 1)
    in
    go 0
  in
  let row_sign i =
    if locked.(i) then 1.0
    else begin
      let rec first j =
        if j >= n then lowest_nonzero rhs.(i)
        else
          let c = lowest_nonzero matrix.(i).(j) in
          if c <> 0.0 then c else first (j + 1)
      in
      let c = first 0 in
      if c < 0.0 then -1.0 else 1.0
    end
  in
  let buf = Buffer.create (32 * n) in
  let add_poly sigma p =
    for k = 0 to Poly.degree p do
      let c = Poly.coeff p k in
      if c <> 0.0 then Buffer.add_string buf (Printf.sprintf "%d=%h," k (sigma *. c))
    done
  in
  for i = 0 to n - 1 do
    let sigma = row_sign i in
    if locked.(i) then Buffer.add_char buf 'L';
    for j = 0 to n - 1 do
      if not (Poly.is_zero matrix.(i).(j)) then begin
        Buffer.add_string buf (Printf.sprintf "%d,%d:" i j);
        add_poly sigma matrix.(i).(j);
        Buffer.add_char buf ';'
      end
    done;
    if not (Poly.is_zero rhs.(i)) then begin
      Buffer.add_string buf (Printf.sprintf "r%d:" i);
      add_poly sigma rhs.(i);
      Buffer.add_char buf ';'
    end
  done;
  Buffer.contents buf

(* Group the index list [0 .. len-1] of [keys] by equal key,
   order-preserving: each group lists its member indices ascending,
   groups ordered by first member. *)
let group_by_key keys =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iteri
    (fun i key ->
      match Hashtbl.find_opt tbl key with
      | Some members -> members := i :: !members
      | None ->
          let members = ref [ i ] in
          Hashtbl.add tbl key members;
          order := members :: !order)
    keys;
  List.rev_map (fun members -> List.rev !members) !order

let equivalence_groups ?sources ?locked_elements views =
  group_by_key (List.map (value_signature ?sources ?locked_elements) views)

let anchor config = "configuration " ^ Configuration.label config

let configuration_findings ?src ?follower_model ?(max_opamps = 10) dft =
  let n_opamps = Transform.n_opamps dft in
  if n_opamps > max_opamps then
    [
      Finding.make ~code:"C000" ~severity:Finding.Info
        (Printf.sprintf
           "configuration-space lint skipped: %d opamps give 2^%d configurations \
            (limit %d opamps)"
           n_opamps n_opamps max_opamps);
    ]
  else begin
    let findings = ref [] in
    let push f = findings := f :: !findings in
    let views =
      List.map
        (fun config -> (config, Transform.emulate ?follower_model dft config))
        (Transform.configurations dft)
    in
    (* per-configuration validation and structural rank *)
    List.iter
      (fun (config, view) ->
        let config_anchor = anchor config in
        (match Validate.check view with
        | Ok () -> ()
        | Error issues ->
            List.iter
              (fun issue ->
                if Validate.severity issue = `Error then
                  push
                    (Finding.make ~config:config_anchor ~code:"C001"
                       ~severity:Finding.Error
                       (Printf.sprintf "%s fails validation: %s" config_anchor
                          (Validate.issue_to_string issue))))
              issues);
        match (Structural.analyse view).Structural.generic with
        | None -> ()
        | Some d ->
            let element =
              match d.Structural.elements with e :: _ -> Some e | [] -> None
            in
            let loc = Option.bind element (loc_of src) in
            push
              (Finding.make ?element ?loc ~config:config_anchor ~code:"C002"
                 ~severity:Finding.Error
                 (Printf.sprintf "%s is %s" config_anchor
                    (Structural.deficiency_message d))))
      views;
    (* broken test-input chains: in a view where the source cannot
       structurally influence the output, the configuration measures
       nothing *)
    let test = Transform.test_configurations dft in
    let view_of config =
      let i = Configuration.index config in
      snd (List.find (fun (c, _) -> Configuration.index c = i) views)
    in
    let broken =
      List.filter
        (fun config ->
          let view = view_of config in
          let influence = Circuit.Influence.analyse ~output:dft.Transform.output view in
          not
            (List.mem dft.Transform.input_node
               (Circuit.Influence.influential_nodes influence)))
        test
    in
    (match broken with
    | [] -> ()
    | [ config ] ->
        push
          (Finding.make ~node:dft.Transform.input_node ~config:(anchor config)
             ~code:"C003" ~severity:Finding.Warning
             (Printf.sprintf
                "broken test-input chain: in %s the input node %s cannot structurally \
                 affect the output %s"
                (anchor config) dft.Transform.input_node dft.Transform.output))
    | first :: _ ->
        let labels = List.map Configuration.label broken in
        let shown, ellipsis =
          if List.length labels > 8 then
            (List.filteri (fun i _ -> i < 8) labels, ", ...")
          else (labels, "")
        in
        push
          (Finding.make ~node:dft.Transform.input_node ~config:(anchor first)
             ~code:"C003" ~severity:Finding.Warning
             (Printf.sprintf
                "broken test-input chain: in %d of %d test configurations (%s%s) the \
                 input node %s cannot structurally affect the output %s"
                (List.length broken) (List.length test)
                (String.concat ", " shown)
                ellipsis dft.Transform.input_node dft.Transform.output)));
    (* equivalent configurations: identical assembled systems up to
       row sign (value-exact) — the same grouping the campaign pruner
       uses, minus its fault-row locking (lint has no fault list) *)
    let groups = Hashtbl.create 16 in
    List.iter
      (fun (config, view) ->
        let key = value_signature view in
        let existing = Option.value ~default:[] (Hashtbl.find_opt groups key) in
        Hashtbl.replace groups key (config :: existing))
      views;
    Hashtbl.iter
      (fun _ configs ->
        match List.rev configs with
        | first :: _ :: _ as group ->
            push
              (Finding.make ~config:(anchor first) ~code:"C004" ~severity:Finding.Info
                 (Printf.sprintf
                    "configurations %s assemble to identical MNA systems (up to row \
                     sign) — candidates for campaign deduplication"
                    (String.concat ", " (List.map Configuration.label group))))
        | _ -> ())
      groups;
    (* structural detectability over the fault universe *)
    let det = Detectability.analyse ?follower_model dft in
    List.iter
      (fun fault ->
        push
          (Finding.make ~element:fault.Fault.element
             ?loc:(loc_of src fault.Fault.element) ~code:"F001"
             ~severity:Finding.Warning
             (Printf.sprintf
                "fault %s is structurally undetectable in every test configuration"
                fault.Fault.id)))
      (Detectability.undetectable_everywhere det);
    let skips = Detectability.skip_count det in
    if skips > 0 then
      push
        (Finding.make ~code:"P001" ~severity:Finding.Info
           (Printf.sprintf
              "structural detectability: %d of %d (configuration, fault) simulations \
               provably yield no detection and can be pruned"
              skips
              (Detectability.total_pairs det)));
    (* interval certification at the paper's fixed ε = 0.1: a fault
       whose undetectability is *certified* at every probed frequency
       in every test configuration (F002) is a stronger fact than the
       structural F001, and the provable fraction (P002) summarizes
       what a campaign at this criterion gets for free. The linter has
       no campaign grid, so the probed frequencies span two decades
       either side of the geometric pole centre; the pass is gated by
       the certification work cap so lint stays fast when the
       configuration space is large. *)
    let faults = Fault.deviation_faults dft.Transform.base in
    if
      faults <> []
      && List.length test * (1 + List.length faults) <= Certify.default_work_cap
    then begin
      let center_hz =
        match
          Mna.Symbolic.poles ~source:dft.Transform.source
            ~output:dft.Transform.output dft.Transform.base
        with
        | exception Mna.Symbolic.Singular_circuit _ -> 1000.0
        | [||] -> 1000.0
        | poles ->
            let ms =
              Array.to_list (Array.map Complex.norm poles)
              |> List.filter (fun m -> m > 1e-3)
            in
            if ms = [] then 1000.0
            else
              exp
                (List.fold_left (fun a m -> a +. log m) 0.0 ms
                /. float_of_int (List.length ms))
              /. (2.0 *. Float.pi)
      in
      let freqs_hz =
        let lo = log10 center_hz -. 2.0 and n = 33 in
        Array.init n (fun i ->
            10.0 ** (lo +. (4.0 *. float_of_int i /. float_of_int (n - 1))))
      in
      let specs =
        List.map
          (fun config ->
            {
              Certify.label = Configuration.label config;
              netlist = view_of config;
              source = dft.Transform.source;
              output = dft.Transform.output;
            })
          test
      in
      let c = Certify.certify ~eps:0.1 ~freqs_hz specs faults in
      let stats = c.Certify.stats in
      if stats.Certify.skipped_views = 0 then
        List.iteri
          (fun j fault ->
            let everywhere_u =
              Array.for_all
                (fun (v : Certify.view_result) ->
                  let cell = v.Certify.cells.(j) in
                  not
                    (Bytes.exists
                       (fun b -> b <> 'u')
                       cell.Certify.verdicts))
                c.Certify.views
            in
            if everywhere_u then
              push
                (Finding.make ~element:fault.Fault.element
                   ?loc:(loc_of src fault.Fault.element) ~code:"F002"
                   ~severity:Finding.Warning
                   (Printf.sprintf
                      "fault %s is certified undetectable (|dT|/|T| <= 0.1) at \
                       every probed frequency in every test configuration"
                      fault.Fault.id)))
          faults;
      if stats.Certify.points_proved > 0 then
        push
          (Finding.make ~code:"P002" ~severity:Finding.Info
             (Printf.sprintf
                "interval certification: %d of %d (configuration, fault, frequency) \
                 verdicts at fixed eps = 0.1 are provable statically (%d of %d \
                 cells whole)"
                stats.Certify.points_proved stats.Certify.points
                stats.Certify.cells_proved stats.Certify.cells))
    end;
    List.rev !findings
  end

let run ?src ?follower_model ?source ?output netlist =
  let base = netlist_findings ?src netlist in
  let configuration =
    match (source, output) with
    | Some source, Some output
      when Netlist.opamps netlist <> []
           && not (List.exists (fun f -> f.Finding.severity = Finding.Error) base) -> (
        match Transform.make ~source ~output netlist with
        | dft -> configuration_findings ?src ?follower_model dft
        | exception Invalid_argument msg ->
            [
              Finding.make ~code:"C000" ~severity:Finding.Info
                ("configuration-space lint skipped: " ^ msg);
            ])
    | _ -> []
  in
  List.sort Finding.compare (base @ configuration)
