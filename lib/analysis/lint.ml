module Netlist = Circuit.Netlist
module Validate = Circuit.Validate
module Poly = Linalg.Poly
module Transform = Multiconfig.Transform
module Configuration = Multiconfig.Configuration

type src = { file : string; lines : (string * int) list }

let loc_of src name =
  Option.bind src (fun s ->
      Option.map
        (fun line -> { Finding.file = s.file; line })
        (List.assoc_opt name s.lines))

(* ---- validation pass ---- *)

let finding_of_issue ?src issue =
  let severity =
    match Validate.severity issue with
    | `Error -> Finding.Error
    | `Warning -> Finding.Warning
  in
  let code, element, node =
    match issue with
    | Validate.Empty_netlist -> ("V001", None, None)
    | Validate.No_ground -> ("V002", None, None)
    | Validate.Disconnected ns -> ("V003", None, (match ns with n :: _ -> Some n | [] -> None))
    | Validate.Nonpositive_value e -> ("V004", Some e, None)
    | Validate.Missing_sense { element; _ } -> ("V005", Some element, None)
    | Validate.Self_loop e -> ("V006", Some e, None)
    | Validate.Dangling_node { node; element } -> ("V007", Some element, Some node)
    | Validate.Opamp_drive_conflict { opamp; _ } -> ("V008", Some opamp, None)
  in
  let loc = Option.bind element (loc_of src) in
  Finding.make ?element ?node ?loc ~code ~severity (Validate.issue_to_string issue)

let netlist_findings ?src netlist =
  let validation =
    match Validate.check netlist with
    | Ok () -> []
    | Error issues -> List.map (finding_of_issue ?src) issues
  in
  let structural =
    if List.exists (fun f -> f.Finding.severity = Finding.Error) validation then []
    else Structural.findings ~loc_of:(loc_of src) (Structural.analyse netlist)
  in
  validation @ structural

(* ---- configuration-space pass ---- *)

module A = Mna.Assemble.Make (Mna.Field.Polynomial)

(* The MNA occurrence pattern of a configuration view: which (row,
   column) entries are nonzero, and at which polynomial degrees. Two
   configurations with the same signature solve structurally identical
   systems — the index layout is name-driven, hence stable across
   views of one circuit. *)
let pattern_signature view =
  let index = Mna.Index.build view in
  let n = Mna.Index.size index in
  let { A.matrix; rhs } = A.assemble index view in
  let buf = Buffer.create (16 * n) in
  let add_poly p =
    for k = 0 to Poly.degree p do
      if Poly.coeff p k <> 0.0 then Buffer.add_string buf (string_of_int k)
    done
  in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if not (Poly.is_zero matrix.(i).(j)) then begin
        Buffer.add_string buf (Printf.sprintf "%d,%d:" i j);
        add_poly matrix.(i).(j);
        Buffer.add_char buf ';'
      end
    done;
    if not (Poly.is_zero rhs.(i)) then begin
      Buffer.add_string buf (Printf.sprintf "r%d:" i);
      add_poly rhs.(i);
      Buffer.add_char buf ';'
    end
  done;
  Buffer.contents buf

let anchor config = "configuration " ^ Configuration.label config

let configuration_findings ?src ?follower_model ?(max_opamps = 10) dft =
  let n_opamps = Transform.n_opamps dft in
  if n_opamps > max_opamps then
    [
      Finding.make ~code:"C000" ~severity:Finding.Info
        (Printf.sprintf
           "configuration-space lint skipped: %d opamps give 2^%d configurations \
            (limit %d opamps)"
           n_opamps n_opamps max_opamps);
    ]
  else begin
    let findings = ref [] in
    let push f = findings := f :: !findings in
    let views =
      List.map
        (fun config -> (config, Transform.emulate ?follower_model dft config))
        (Transform.configurations dft)
    in
    (* per-configuration validation and structural rank *)
    List.iter
      (fun (config, view) ->
        let config_anchor = anchor config in
        (match Validate.check view with
        | Ok () -> ()
        | Error issues ->
            List.iter
              (fun issue ->
                if Validate.severity issue = `Error then
                  push
                    (Finding.make ~config:config_anchor ~code:"C001"
                       ~severity:Finding.Error
                       (Printf.sprintf "%s fails validation: %s" config_anchor
                          (Validate.issue_to_string issue))))
              issues);
        match (Structural.analyse view).Structural.generic with
        | None -> ()
        | Some d ->
            let element =
              match d.Structural.elements with e :: _ -> Some e | [] -> None
            in
            let loc = Option.bind element (loc_of src) in
            push
              (Finding.make ?element ?loc ~config:config_anchor ~code:"C002"
                 ~severity:Finding.Error
                 (Printf.sprintf "%s is %s" config_anchor
                    (Structural.deficiency_message d))))
      views;
    (* broken test-input chains: in a view where the source cannot
       structurally influence the output, the configuration measures
       nothing *)
    let test = Transform.test_configurations dft in
    let view_of config =
      let i = Configuration.index config in
      snd (List.find (fun (c, _) -> Configuration.index c = i) views)
    in
    let broken =
      List.filter
        (fun config ->
          let view = view_of config in
          let influence = Circuit.Influence.analyse ~output:dft.Transform.output view in
          not
            (List.mem dft.Transform.input_node
               (Circuit.Influence.influential_nodes influence)))
        test
    in
    (match broken with
    | [] -> ()
    | [ config ] ->
        push
          (Finding.make ~node:dft.Transform.input_node ~config:(anchor config)
             ~code:"C003" ~severity:Finding.Warning
             (Printf.sprintf
                "broken test-input chain: in %s the input node %s cannot structurally \
                 affect the output %s"
                (anchor config) dft.Transform.input_node dft.Transform.output))
    | first :: _ ->
        let labels = List.map Configuration.label broken in
        let shown, ellipsis =
          if List.length labels > 8 then
            (List.filteri (fun i _ -> i < 8) labels, ", ...")
          else (labels, "")
        in
        push
          (Finding.make ~node:dft.Transform.input_node ~config:(anchor first)
             ~code:"C003" ~severity:Finding.Warning
             (Printf.sprintf
                "broken test-input chain: in %d of %d test configurations (%s%s) the \
                 input node %s cannot structurally affect the output %s"
                (List.length broken) (List.length test)
                (String.concat ", " shown)
                ellipsis dft.Transform.input_node dft.Transform.output)));
    (* structurally equivalent configurations *)
    let groups = Hashtbl.create 16 in
    List.iter
      (fun (config, view) ->
        let key = pattern_signature view in
        let existing = Option.value ~default:[] (Hashtbl.find_opt groups key) in
        Hashtbl.replace groups key (config :: existing))
      views;
    Hashtbl.iter
      (fun _ configs ->
        match List.rev configs with
        | first :: _ :: _ as group ->
            push
              (Finding.make ~config:(anchor first) ~code:"C004" ~severity:Finding.Info
                 (Printf.sprintf
                    "configurations %s assemble to identical MNA occurrence patterns \
                     — candidates for campaign deduplication"
                    (String.concat ", " (List.map Configuration.label group))))
        | _ -> ())
      groups;
    (* structural detectability over the fault universe *)
    let det = Detectability.analyse ?follower_model dft in
    List.iter
      (fun fault ->
        push
          (Finding.make ~element:fault.Fault.element
             ?loc:(loc_of src fault.Fault.element) ~code:"F001"
             ~severity:Finding.Warning
             (Printf.sprintf
                "fault %s is structurally undetectable in every test configuration"
                fault.Fault.id)))
      (Detectability.undetectable_everywhere det);
    let skips = Detectability.skip_count det in
    if skips > 0 then
      push
        (Finding.make ~code:"P001" ~severity:Finding.Info
           (Printf.sprintf
              "structural detectability: %d of %d (configuration, fault) simulations \
               provably yield no detection and can be pruned"
              skips
              (Detectability.total_pairs det)));
    List.rev !findings
  end

let run ?src ?follower_model ?source ?output netlist =
  let base = netlist_findings ?src netlist in
  let configuration =
    match (source, output) with
    | Some source, Some output
      when Netlist.opamps netlist <> []
           && not (List.exists (fun f -> f.Finding.severity = Finding.Error) base) -> (
        match Transform.make ~source ~output netlist with
        | dft -> configuration_findings ?src ?follower_model dft
        | exception Invalid_argument msg ->
            [
              Finding.make ~code:"C000" ~severity:Finding.Info
                ("configuration-space lint skipped: " ^ msg);
            ])
    | _ -> []
  in
  List.sort Finding.compare (base @ configuration)
