module StringSet = Set.Make (String)

type t = {
  configs : Multiconfig.Configuration.t array;
  faults : Fault.t array;
  undetectable : bool array array;
  influential : (int * string list) list;
}

let analyse ?follower_model ?faults (dft : Multiconfig.Transform.t) =
  Obs.Metrics.time "analysis.detectability_s" @@ fun () ->
  let faults =
    match faults with
    | Some f -> Array.of_list f
    | None -> Array.of_list (Fault.deviation_faults dft.Multiconfig.Transform.base)
  in
  let configs = Array.of_list (Multiconfig.Transform.test_configurations dft) in
  let influential =
    Array.to_list
      (Array.map
         (fun config ->
           let view = Multiconfig.Transform.emulate ?follower_model dft config in
           let influence =
             Circuit.Influence.analyse ~output:dft.Multiconfig.Transform.output view
           in
           ( Multiconfig.Configuration.index config,
             Circuit.Influence.influential_passives influence ))
         configs)
  in
  let undetectable =
    Array.map
      (fun config ->
        let reachable =
          StringSet.of_list
            (List.assoc (Multiconfig.Configuration.index config) influential)
        in
        Array.map (fun f -> not (StringSet.mem f.Fault.element reachable)) faults)
      configs
  in
  { configs; faults; undetectable; influential }

let skip_count t =
  Array.fold_left
    (fun acc row -> Array.fold_left (fun a skip -> if skip then a + 1 else a) acc row)
    0 t.undetectable

let total_pairs t = Array.length t.configs * Array.length t.faults

let undetectable_everywhere t =
  let n_configs = Array.length t.configs in
  List.filter_map
    (fun j ->
      let everywhere = ref true in
      for i = 0 to n_configs - 1 do
        if not t.undetectable.(i).(j) then everywhere := false
      done;
      if !everywhere && n_configs > 0 then Some t.faults.(j) else None)
    (List.init (Array.length t.faults) Fun.id)
