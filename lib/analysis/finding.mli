(** Structured diagnostics produced by the netlist static analyzer.

    A finding is one fact about a netlist: a stable code (see the
    finding-code table in docs/TUTORIAL.md), a severity, a message, and
    optional anchors — the element or node at fault, the configuration
    it was observed in, and a [file:line] location when the netlist was
    parsed from a [.cir] file. *)

type severity = Error | Warning | Info

type loc = { file : string; line : int }

type t = {
  code : string;  (** Stable identifier, e.g. ["S001"]. *)
  severity : severity;
  message : string;
  element : string option;
  node : string option;
  config : string option;  (** Configuration label, e.g. ["C5"]. *)
  loc : loc option;
}

val make :
  ?element:string ->
  ?node:string ->
  ?config:string ->
  ?loc:loc ->
  code:string ->
  severity:severity ->
  string ->
  t

val severity_to_string : severity -> string

val compare : t -> t -> int
(** Orders errors before warnings before infos; ties break on source
    line (anchored findings first), then code, then message. *)

val errors : t list -> t list
val warnings : t list -> t list

val to_string : ?fallback:string -> t -> string
(** One compiler-style line:
    [file.cir:12: error S001: message (element V2, C3)]. [fallback]
    replaces the [file:line] prefix for findings without a location
    (e.g. the circuit name). *)

val summary : t list -> string
(** ["2 errors, 1 warning"]-style tally. *)
