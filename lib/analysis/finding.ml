type severity = Error | Warning | Info

type loc = { file : string; line : int }

type t = {
  code : string;
  severity : severity;
  message : string;
  element : string option;
  node : string option;
  config : string option;
  loc : loc option;
}

let make ?element ?node ?config ?loc ~code ~severity message =
  { code; severity; message; element; node; config; loc }

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare a b =
  match Int.compare (severity_rank a.severity) (severity_rank b.severity) with
  | 0 -> (
      let line f = match f.loc with Some l -> l.line | None -> max_int in
      match Int.compare (line a) (line b) with
      | 0 -> (
          match String.compare a.code b.code with
          | 0 -> String.compare a.message b.message
          | c -> c)
      | c -> c)
  | c -> c

let errors l = List.filter (fun f -> f.severity = Error) l
let warnings l = List.filter (fun f -> f.severity = Warning) l

let to_string ?fallback f =
  let where =
    match (f.loc, fallback) with
    | Some { file; line }, _ -> Printf.sprintf "%s:%d: " file line
    | None, Some name -> name ^ ": "
    | None, None -> ""
  in
  let anchors =
    List.filter_map Fun.id
      [
        Option.map (fun e -> "element " ^ e) f.element;
        Option.map (fun n -> "node " ^ n) f.node;
        f.config;
      ]
  in
  let suffix =
    if anchors = [] then "" else Printf.sprintf " (%s)" (String.concat ", " anchors)
  in
  Printf.sprintf "%s%s %s: %s%s" where (severity_to_string f.severity) f.code
    f.message suffix

let summary findings =
  let count sev = List.length (List.filter (fun f -> f.severity = sev) findings) in
  let plural n word = Printf.sprintf "%d %s%s" n word (if n = 1 then "" else "s") in
  String.concat ", "
    [
      plural (count Error) "error";
      plural (count Warning) "warning";
      plural (count Info) "info";
    ]
