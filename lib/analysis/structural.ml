module Netlist = Circuit.Netlist
module Element = Circuit.Element
module Poly = Linalg.Poly

type regime = Generic | Dc | High_frequency

type deficiency = {
  regime : regime;
  rank : int;
  size : int;
  equations : string list;
  unknowns : string list;
  elements : string list;
}

type t = {
  size : int;
  generic : deficiency option;
  dc : deficiency option;
  hf : deficiency option;
  hf_floating : string list;
  disconnected : string list;
}

(* ---- bipartite maximum matching (Kuhn's augmenting paths) ----

   Systems are tens of unknowns, so the O(V·E) bound is far below the
   cost of a single LU; no need for Hopcroft–Karp here. *)

let max_matching n adj =
  let match_of_col = Array.make n (-1) in
  let match_of_row = Array.make n (-1) in
  let rec augment visited i =
    List.exists
      (fun j ->
        if visited.(j) then false
        else begin
          visited.(j) <- true;
          if match_of_col.(j) = -1 || augment visited match_of_col.(j) then begin
            match_of_col.(j) <- i;
            match_of_row.(i) <- j;
            true
          end
          else false
        end)
      adj.(i)
  in
  let rank = ref 0 in
  for i = 0 to n - 1 do
    if augment (Array.make n false) i then incr rank
  done;
  (!rank, match_of_row, match_of_col)

(* Hall violator: rows reachable from the unmatched rows by alternating
   paths form a set R* whose whole neighborhood C* is matched inside
   R*, so |C*| = |R*| - deficiency — a witness that |R*| equations
   constrain only |C*| unknowns. *)
let hall_violator n adj match_of_row match_of_col =
  let row_seen = Array.make n false and col_seen = Array.make n false in
  let rec visit_row i =
    if not row_seen.(i) then begin
      row_seen.(i) <- true;
      List.iter
        (fun j ->
          if not col_seen.(j) then begin
            col_seen.(j) <- true;
            if match_of_col.(j) >= 0 then visit_row match_of_col.(j)
          end)
        adj.(i)
    end
  in
  for i = 0 to n - 1 do
    if match_of_row.(i) = -1 then visit_row i
  done;
  (row_seen, col_seen)

(* ---- naming rows and columns of the MNA system ---- *)

type naming = {
  n_nodes : int;
  node_names : string array;
  branch_names : string array;  (* indexed from n_nodes *)
}

let naming_of index netlist =
  let node_names = Mna.Index.node_names index in
  let n_nodes = Array.length node_names in
  let branch_names = Array.make (Mna.Index.size index - n_nodes) "" in
  List.iter
    (fun e ->
      let name = Element.name e in
      if Mna.Index.has_branch index name then
        branch_names.(Mna.Index.branch index name - n_nodes) <- name)
    (Netlist.elements netlist);
  { n_nodes; node_names; branch_names }

let equation_name nm i =
  if i < nm.n_nodes then Printf.sprintf "KCL at node %s" nm.node_names.(i)
  else Printf.sprintf "branch equation of %s" nm.branch_names.(i - nm.n_nodes)

let unknown_name nm j =
  if j < nm.n_nodes then Printf.sprintf "V(%s)" nm.node_names.(j)
  else Printf.sprintf "I(%s)" nm.branch_names.(j - nm.n_nodes)

let violator_elements nm netlist row_seen col_seen =
  let names = ref [] in
  let push n = if not (List.mem n !names) then names := n :: !names in
  Array.iteri
    (fun i seen -> if seen && i >= nm.n_nodes then push nm.branch_names.(i - nm.n_nodes))
    row_seen;
  Array.iteri
    (fun j seen -> if seen && j >= nm.n_nodes then push nm.branch_names.(j - nm.n_nodes))
    col_seen;
  (* elements touching a violator node are part of the story too, but
     keep the anchor list to branch elements plus passives on violator
     nodes — enough for file:line attribution without drowning it *)
  let violator_nodes =
    Array.to_list
      (Array.of_seq
         (Seq.filter_map
            (fun i -> if i < nm.n_nodes && row_seen.(i) then Some nm.node_names.(i) else None)
            (Seq.init (Array.length row_seen) Fun.id)))
  in
  List.iter
    (fun e ->
      if List.exists (fun n -> List.mem n violator_nodes) (Element.nodes e) then
        push (Element.name e))
    (Netlist.elements netlist);
  List.rev !names

(* ---- pattern extraction ---- *)

module A = Mna.Assemble.Make (Mna.Field.Polynomial)

(* [present] decides whether a polynomial entry is structurally nonzero
   in the regime: the whole polynomial (generic) or its constant
   coefficient (DC). Exact symbolic cancellations (an opamp with both
   inputs on one node assembles +1 - 1 = 0) disappear before the
   pattern is built, which is what makes the verdict sound. *)
let check_pattern ~regime ~present netlist =
  match Netlist.internal_nodes netlist with
  | [] -> None
  | _ ->
      let index = Mna.Index.build netlist in
      let n = Mna.Index.size index in
      let { A.matrix; rhs = _ } = A.assemble index netlist in
      let adj =
        Array.init n (fun i ->
            let cols = ref [] in
            for j = n - 1 downto 0 do
              if present matrix.(i).(j) then cols := j :: !cols
            done;
            !cols)
      in
      let rank, match_of_row, match_of_col = max_matching n adj in
      if rank = n then None
      else begin
        let row_seen, col_seen = hall_violator n adj match_of_row match_of_col in
        let nm = naming_of index netlist in
        let collect seen name =
          List.filter_map
            (fun i -> if seen.(i) then Some (name nm i) else None)
            (List.init n Fun.id)
        in
        Some
          {
            regime;
            rank;
            size = n;
            equations = collect row_seen equation_name;
            unknowns = collect col_seen unknown_name;
            elements = violator_elements nm netlist row_seen col_seen;
          }
      end

(* ω→∞ limit netlist: capacitors become shorts (a 0 V source keeps the
   branch-current structure of a short), inductors become opens, a
   finite-GBW opamp's gain rolls off to zero so its output collapses
   to ground. Ideal opamps (nullors) are frequency-independent. *)
let hf_limit netlist =
  List.fold_left
    (fun acc e ->
      match e with
      | Element.Capacitor { name; n1; n2; _ } ->
          Netlist.add (Element.Vsource { name; npos = n1; nneg = n2; value = 0.0 }) acc
      | Element.Inductor _ -> acc
      | Element.Opamp { name; out; model = Element.Single_pole _; _ } ->
          Netlist.add
            (Element.Vsource { name; npos = out; nneg = Element.ground; value = 0.0 })
            acc
      | e -> Netlist.add e acc)
    (Netlist.empty ~title:(Netlist.title netlist) ())
    (Netlist.elements netlist)

let disconnected_nodes netlist =
  match Circuit.Validate.check netlist with
  | Ok () -> []
  | Error issues ->
      List.concat_map
        (function
          | Circuit.Validate.Disconnected ns -> ns
          | Circuit.Validate.No_ground -> Netlist.internal_nodes netlist
          | _ -> [])
        issues

let analyse netlist =
  let size =
    match Netlist.internal_nodes netlist with
    | [] -> 0
    | _ -> Mna.Index.size (Mna.Index.build netlist)
  in
  let generic =
    check_pattern ~regime:Generic ~present:(fun p -> not (Poly.is_zero p)) netlist
  in
  let dc = check_pattern ~regime:Dc ~present:(fun p -> Poly.coeff p 0 <> 0.0) netlist in
  let hf_netlist = hf_limit netlist in
  let hf =
    check_pattern ~regime:High_frequency
      ~present:(fun p -> not (Poly.is_zero p))
      hf_netlist
  in
  let hf_floating =
    let surviving = Netlist.nodes hf_netlist in
    List.filter (fun n -> not (List.mem n surviving)) (Netlist.internal_nodes netlist)
  in
  { size; generic; dc; hf; hf_floating; disconnected = disconnected_nodes netlist }

let is_singular t = t.generic <> None || t.disconnected <> []

let regime_to_string = function
  | Generic -> "at every frequency"
  | Dc -> "at DC (omega = 0)"
  | High_frequency -> "in the omega -> infinity limit"

let deficiency_message d =
  let list l = String.concat ", " l in
  let plural n word = Printf.sprintf "%d %s%s" n word (if n = 1 then "" else "s") in
  Printf.sprintf
    "structurally singular %s: %s constrain only %s — {%s} vs {%s} (structural rank %d \
     of %d)"
    (regime_to_string d.regime)
    (plural (List.length d.equations) "equation")
    (plural (List.length d.unknowns) "unknown")
    (list d.equations) (list d.unknowns) d.rank d.size

let findings ?config ~loc_of t =
  let finding code severity (d : deficiency) =
    let element = match d.elements with e :: _ -> Some e | [] -> None in
    let loc = Option.bind element loc_of in
    Finding.make ?element ?config ?loc ~code ~severity (deficiency_message d)
  in
  List.filter_map Fun.id
    [
      Option.map (finding "S001" Finding.Error) t.generic;
      Option.map (finding "S002" Finding.Warning) t.dc;
      Option.map (finding "S003" Finding.Warning) t.hf;
      (match t.hf_floating with
      | [] -> None
      | ns ->
          Some
            (Finding.make ?config ~node:(List.hd ns) ~code:"S003"
               ~severity:Finding.Warning
               (Printf.sprintf
                  "node%s %s connect%s to the circuit only through inductors — \
                   floating in the omega -> infinity limit"
                  (if List.length ns = 1 then "" else "s")
                  (String.concat ", " ns)
                  (if List.length ns = 1 then "s" else ""))));
    ]
