(** Structural (pattern-only) rank analysis of the MNA system.

    The MNA matrix A(s) of a netlist has polynomial entries; its
    determinant is identically zero — i.e. [Linalg.Cmat.Singular] at
    {e every} frequency, regardless of component values — whenever the
    bipartite occurrence graph (equations x unknowns, an edge per
    nonzero entry) has no perfect matching. Maximum matching over that
    pattern therefore predicts a whole class of runtime solver failures
    statically: voltage-source loops, current-source cutsets,
    nullor-degenerate opamp wirings, zero rows/columns.

    Three regimes are checked:
    - {e generic} — the pattern of A(s) itself. A deficiency here is an
      error: the system is singular at every frequency.
    - {e DC} — the pattern of A(0) (capacitor stamps vanish). A
      deficiency means the circuit has no DC solution (e.g. a pure
      integrator outside a resistive feedback loop, a node reached only
      through capacitors); the AC sweep never evaluates ω = 0, so this
      is a warning about near-DC conditioning, not a campaign stopper.
    - {e ω→∞} — the pattern of the high-frequency limit netlist
      (capacitors shorted, inductors opened, finite-GBW opamp outputs
      collapsed to ground). A deficiency means the system degenerates
      as ω grows (e.g. an inductor-only cutset).

    A matching can exist while the matrix is still numerically singular
    (a ground-disconnected island has full structural rank but a zero
    eigenvalue), so the verdict also folds in ground reachability: the
    {!is_singular} predicate is sound — [true] guarantees
    [Cmat.Singular] — and on randomly-valued netlists the converse
    holds with probability one (pinned by a qcheck property). *)

type regime = Generic | Dc | High_frequency

type deficiency = {
  regime : regime;
  rank : int;  (** Size of the maximum matching. *)
  size : int;  (** Dimension of the MNA system in this regime. *)
  equations : string list;
      (** A Hall violator: human-readable names of structurally
          dependent equations ("KCL at node m1", "branch equation of
          V2"). *)
  unknowns : string list;
      (** The unknowns those equations constrain — strictly fewer of
          them than equations ("V(in)", "I(V1)"). *)
  elements : string list;
      (** Netlist elements appearing in the violator, for anchoring
          diagnostics to source lines. *)
}

type t = {
  size : int;  (** MNA dimension of the full netlist. *)
  generic : deficiency option;
  dc : deficiency option;
  hf : deficiency option;
  hf_floating : string list;
      (** Nodes whose every connection is an inductor — floating in the
          ω→∞ limit. *)
  disconnected : string list;
      (** Nodes with no path to ground (from {!Circuit.Validate});
          structurally matched but numerically singular. *)
}

val analyse : Circuit.Netlist.t -> t

val is_singular : t -> bool
(** [true] iff the netlist is guaranteed to raise [Cmat.Singular] at
    every frequency: a generic-pattern deficiency or a
    ground-disconnected island. *)

val deficiency_message : deficiency -> string

val findings : ?config:string -> loc_of:(string -> Finding.loc option) -> t -> Finding.t list
(** Findings S001 (generic, error), S002 (DC, warning), S003 (ω→∞,
    warning). Ground-disconnection is {e not} re-reported here — it is
    already a validation finding. [loc_of] maps an element name to its
    source location, if known. *)
