module Netlist := Circuit.Netlist

(** The multi-configuration netlist transform.

    Every opamp of the circuit is (conceptually) replaced by a
    configurable opamp whose test input is chained from the primary
    input towards the primary output: In_test(OP₁) is the circuit input
    node and In_test(OPₖ) is the output node of OPₖ₋₁. Emulating a
    configuration rewrites each follower-mode opamp into a unity-gain
    VCVS driven by its chained test input — exactly the behavioural
    model of the configurable opamp of the paper ([14], [15]). Normal-
    mode opamps and the whole passive network are left untouched, so
    fault injection by element name works uniformly across all
    configuration views. *)

type t = {
  base : Netlist.t;  (** The original (functional) circuit. *)
  opamp_names : string array;  (** Opamps in chain order. *)
  input_node : string;  (** Head of the test-input chain. *)
  source : string;  (** The driving voltage source. *)
  output : string;  (** The observed output node. *)
}

val make : ?chain:string list -> source:string -> output:string -> Netlist.t -> t
(** Build the DFT view of a circuit. The chain defaults to the opamps
    in netlist insertion order; pass [chain] to override. The input
    node is the positive terminal of [source]. Raises
    [Invalid_argument] when [source] is not a voltage source of the
    netlist, when the circuit has no opamp, or when [chain] is not a
    permutation of the circuit's opamps. *)

val n_opamps : t -> int

val configurations : t -> Configuration.t list
(** All 2ⁿ configurations of this circuit. *)

val test_configurations : t -> Configuration.t list
(** All but the transparent one — the rows of the paper's matrices. *)

val emulate : ?follower_model:Circuit.Element.opamp_model -> t -> Configuration.t -> Netlist.t
(** The circuit as seen in a given configuration. Raises
    [Invalid_argument] when the configuration's opamp count differs
    from the circuit's.

    By default follower-mode opamps become ideal unity buffers, the
    paper's "bandwidth limitation not reached" assumption. Pass
    [follower_model] (e.g. [Single_pole {dc_gain; pole_hz}]) to emulate
    them as real unity-feedback buffers instead and study how finite
    GBW degrades the emulated configurations. *)

val opamp_label : t -> int -> string
(** Name of the opamp at 0-based chain position [k]. *)
