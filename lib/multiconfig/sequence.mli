(** Ordering of test configurations for application on a tester or in
    BIST.

    Each differing selection bit between consecutive configurations is
    a switch event that disturbs the circuit and forces a new settling
    period, so a good test schedule visits configurations in an order
    minimizing total Hamming switching distance — the Gray-code idea
    applied to the chosen configuration subset. The exact minimum is an
    open-path TSP; for the handful of configurations a real schedule
    contains, nearest-neighbour followed by 2-opt refinement is
    optimal or near-optimal and fast. *)

val switch_cost : int list -> int
(** Total Hamming distance between consecutive configuration indices
    (the functional configuration C₀ is implicitly the starting state).
    0 for lists of length <= 0. *)

val order : int list -> int list
(** A permutation of the given configuration indices with low total
    switching cost, starting from C₀'s all-normal state. Deterministic.
    Never worse than the input order. *)
