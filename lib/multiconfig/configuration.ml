type t = { index : int; n_opamps : int }

let make ~n_opamps i =
  if n_opamps < 0 || n_opamps > 30 then
    invalid_arg "Configuration.make: n_opamps out of range";
  if i < 0 || i >= 1 lsl n_opamps then
    invalid_arg
      (Printf.sprintf "Configuration.make: index %d out of range for %d opamps" i
         n_opamps);
  { index = i; n_opamps }

let index c = c.index
let n_opamps c = c.n_opamps

let all ~n_opamps = List.init (1 lsl n_opamps) (fun i -> make ~n_opamps i)

let functional ~n_opamps = make ~n_opamps 0
let transparent ~n_opamps = make ~n_opamps ((1 lsl n_opamps) - 1)
let is_functional c = c.index = 0
let is_transparent c = c.index = (1 lsl c.n_opamps) - 1

let test_configurations ~n_opamps =
  List.filter (fun c -> not (is_transparent c)) (all ~n_opamps)

let follower c k =
  if k < 0 || k >= c.n_opamps then invalid_arg "Configuration.follower: bad opamp index";
  c.index land (1 lsl k) <> 0

let followers c =
  List.filter (fun k -> follower c k) (List.init c.n_opamps Fun.id)

let n_followers c = List.length (followers c)

let restricted_to ~subset c =
  List.for_all (fun k -> List.mem k subset) (followers c)

let reachable ~subset ~n_opamps =
  List.filter (restricted_to ~subset) (all ~n_opamps)

let label c = Printf.sprintf "C%d" c.index

let vector c =
  String.init c.n_opamps (fun k -> if follower c k then '1' else '0')

let vector_partial ~subset c =
  String.init c.n_opamps (fun k ->
      if List.mem k subset then if follower c k then '1' else '0' else '-')

let equal a b = a.index = b.index && a.n_opamps = b.n_opamps
let compare a b =
  match Int.compare a.n_opamps b.n_opamps with
  | 0 -> Int.compare a.index b.index
  | c -> c

let pp ppf c = Format.fprintf ppf "%s(%s)" (label c) (vector c)
