module Netlist = Circuit.Netlist
module Element = Circuit.Element

type t = {
  base : Netlist.t;
  opamp_names : string array;
  input_node : string;
  source : string;
  output : string;
}

let make ?chain ~source ~output netlist =
  let input_node =
    match Netlist.find netlist source with
    | Some (Element.Vsource { npos; _ }) -> npos
    | Some _ ->
        invalid_arg
          (Printf.sprintf "Transform.make: %S is not a voltage source" source)
    | None -> invalid_arg (Printf.sprintf "Transform.make: no source %S" source)
  in
  let default_chain = List.map Element.name (Netlist.opamps netlist) in
  let chain = Option.value chain ~default:default_chain in
  if chain = [] then invalid_arg "Transform.make: circuit has no opamp";
  if List.sort String.compare chain <> List.sort String.compare default_chain then
    invalid_arg "Transform.make: chain is not a permutation of the circuit's opamps";
  { base = netlist; opamp_names = Array.of_list chain; input_node; source; output }

let n_opamps t = Array.length t.opamp_names

let configurations t = Configuration.all ~n_opamps:(n_opamps t)
let test_configurations t = Configuration.test_configurations ~n_opamps:(n_opamps t)

let opamp_label t k =
  if k < 0 || k >= n_opamps t then invalid_arg "Transform.opamp_label: bad position";
  t.opamp_names.(k)

let output_node_of_opamp t k =
  match Netlist.find_exn t.base t.opamp_names.(k) with
  | Element.Opamp { out; _ } -> out
  | _ -> assert false

(* In_test(OP_k): the circuit input for the chain head, the output node
   of the previous opamp otherwise.  The previous opamp's *node* is
   used (not its mode), so chained followers compose naturally: with
   everything in follower mode the input propagates node by node to the
   primary output — the transparent configuration. *)
let test_input t k = if k = 0 then t.input_node else output_node_of_opamp t (k - 1)

let emulate ?follower_model t config =
  if Configuration.n_opamps config <> n_opamps t then
    invalid_arg "Transform.emulate: configuration arity mismatch";
  Util.Floatx.fold_range (n_opamps t) ~init:t.base ~f:(fun acc k ->
      if not (Configuration.follower config k) then acc
      else
        let name = t.opamp_names.(k) in
        match Netlist.find_exn acc name with
        | Element.Opamp { out; _ } ->
            let follower_stage =
              match follower_model with
              | None ->
                  (* ideal buffer of the chained test input *)
                  Element.Vcvs
                    {
                      name;
                      npos = out;
                      nneg = Element.ground;
                      cpos = test_input t k;
                      cneg = Element.ground;
                      gain = 1.0;
                    }
              | Some model ->
                  (* real unity-feedback buffer: finite gain/bandwidth *)
                  Element.Opamp
                    { name; inp = test_input t k; inn = out; out; model }
            in
            Netlist.replace follower_stage acc
        | _ -> assert false)
