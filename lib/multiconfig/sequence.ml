let popcount n =
  let rec loop n acc = if n = 0 then acc else loop (n lsr 1) (acc + (n land 1)) in
  loop n 0

let hamming a b = popcount (a lxor b)

let switch_cost path =
  let rec walk prev = function
    | [] -> 0
    | c :: rest -> hamming prev c + walk c rest
  in
  walk 0 path

let nearest_neighbour configs =
  let rec pick prev remaining acc =
    match remaining with
    | [] -> List.rev acc
    | _ ->
        let best =
          List.fold_left
            (fun acc_best c ->
              match acc_best with
              | None -> Some c
              | Some b ->
                  let dc = hamming prev c and db = hamming prev b in
                  if dc < db || (dc = db && c < b) then Some c else acc_best)
            None remaining
        in
        let c = Option.get best in
        pick c (List.filter (fun x -> x <> c) remaining) (c :: acc)
  in
  pick 0 configs []

(* 2-opt: reverse any sub-segment that shortens the path, to a fixed
   point. Paths here have at most a few dozen nodes. *)
let two_opt path =
  let arr = Array.of_list path in
  let n = Array.length arr in
  let improved = ref true in
  while !improved do
    improved := false;
    for i = 0 to n - 2 do
      for j = i + 1 to n - 1 do
        let before_i = if i = 0 then 0 else arr.(i - 1) in
        let old_cost =
          hamming before_i arr.(i)
          + if j + 1 < n then hamming arr.(j) arr.(j + 1) else 0
        in
        let new_cost =
          hamming before_i arr.(j)
          + if j + 1 < n then hamming arr.(i) arr.(j + 1) else 0
        in
        if new_cost < old_cost then begin
          (* reverse arr[i..j] *)
          let lo = ref i and hi = ref j in
          while !lo < !hi do
            let tmp = arr.(!lo) in
            arr.(!lo) <- arr.(!hi);
            arr.(!hi) <- tmp;
            incr lo;
            decr hi
          done;
          improved := true
        end
      done
    done
  done;
  Array.to_list arr

let order configs =
  match configs with
  | [] | [ _ ] -> configs
  | _ ->
      let candidate = two_opt (nearest_neighbour configs) in
      if switch_cost candidate <= switch_cost configs then candidate else configs
