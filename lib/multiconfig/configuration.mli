(** Test configurations of the multi-configuration DFT technique.

    A circuit with n configurable opamps has 2ⁿ configurations. In
    configuration C_i, opamp k (1-based, in chain order) is in follower
    mode iff bit (k-1) of i is set — i.e. sel₁ is the least significant
    bit. This resolves the paper's notation (Table 3 maps C₁ ↦ Op1 and
    §4.3 writes C₅ = (1 0 1) = followers {OP1, OP3}). C₀ is the
    functional configuration; C_{2ⁿ-1} is the transparent one. *)

type t
(** A configuration of a circuit with a fixed number of opamps. *)

val make : n_opamps:int -> int -> t
(** [make ~n_opamps i] is C_i. Raises [Invalid_argument] unless
    [0 <= i < 2^n_opamps] and [0 <= n_opamps <= 30]. *)

val index : t -> int
val n_opamps : t -> int

val all : n_opamps:int -> t list
(** C₀ … C_{2ⁿ-1} in index order. *)

val test_configurations : n_opamps:int -> t list
(** The configurations used for passive-fault testing: all except the
    transparent one (the paper's C₀…C₆ for n = 3). Includes the
    functional configuration C₀. *)

val functional : n_opamps:int -> t
val transparent : n_opamps:int -> t
val is_functional : t -> bool
val is_transparent : t -> bool

val follower : t -> int -> bool
(** [follower c k] is true when opamp [k] (0-based) is in follower
    mode. *)

val followers : t -> int list
(** 0-based positions of opamps in follower mode, increasing. *)

val n_followers : t -> int

val restricted_to : subset:int list -> t -> bool
(** True when every follower of the configuration lies in [subset]
    (0-based opamp positions) — i.e. the configuration is reachable
    with only those opamps made configurable (partial DFT). *)

val reachable : subset:int list -> n_opamps:int -> t list
(** All configurations reachable when only [subset] opamps are
    configurable, in index order. Includes the functional
    configuration. *)

val label : t -> string
(** ["C5"]. *)

val vector : t -> string
(** The selection vector written sel₁ sel₂ … selₙ, e.g. C₅ with n = 3
    is ["101"]. *)

val vector_partial : subset:int list -> t -> string
(** Like {!vector} but positions outside [subset] print as ['-'],
    matching the paper's "C₁ (10-)" notation. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
