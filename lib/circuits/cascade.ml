module Netlist = Circuit.Netlist

let sallen_key_chain ?(sections = 3) ?(f0_hz = 1000.0) () =
  if sections < 1 then invalid_arg "Cascade.sallen_key_chain: need at least one section";
  let r = 10_000.0 in
  let add_section netlist k input =
    let f0 = f0_hz *. (1.2 ** float_of_int k) in
    let c = 1.0 /. (2.0 *. Float.pi *. f0 *. r) in
    let suffix = string_of_int (k + 1) in
    let a = "a" ^ suffix and b = "b" ^ suffix and out = "o" ^ suffix in
    let netlist =
      netlist
      |> Netlist.resistor ~name:("R1" ^ suffix) input a r
      |> Netlist.resistor ~name:("R2" ^ suffix) a b r
      |> Netlist.capacitor ~name:("C1" ^ suffix) a out (2.0 *. c)
      |> Netlist.capacitor ~name:("C2" ^ suffix) b "0" (c /. 2.0)
      |> Netlist.opamp ~name:("OP" ^ suffix) ~inp:b ~inn:out ~out
    in
    (netlist, out)
  in
  let netlist0 =
    Netlist.empty ~title:(Printf.sprintf "%d-section Sallen-Key cascade" sections) ()
    |> Netlist.vsource ~name:"Vin" "in" "0" 1.0
  in
  let netlist, output =
    Util.Floatx.fold_range sections ~init:(netlist0, "in") ~f:(fun (nl, input) k ->
        add_section nl k input)
  in
  {
    Benchmark.name = Printf.sprintf "sk-cascade-%d" sections;
    description =
      Printf.sprintf "Cascade of %d unity-gain Sallen-Key lowpass sections" sections;
    netlist;
    source = "Vin";
    output;
    center_hz = f0_hz;
  }

(* Two Tow-Thomas biquads with staggered tuning; the second section's
   input resistor hangs off the first section's lowpass output. *)
let tow_thomas_pair ?(f0_hz = 1000.0) () =
  let add_biquad netlist ~suffix ~input ~params =
    let p : Tow_thomas.params = params in
    let n s = s ^ suffix in
    netlist
    |> Netlist.resistor ~name:(n "R1") input (n "m1") p.Tow_thomas.r1
    |> Netlist.resistor ~name:(n "R2") (n "m1") (n "v1") p.Tow_thomas.r2
    |> Netlist.capacitor ~name:(n "C1") (n "m1") (n "v1") p.Tow_thomas.c1
    |> Netlist.resistor ~name:(n "R3") (n "v3") (n "m1") p.Tow_thomas.r3
    |> Netlist.opamp ~name:(n "OP1") ~inp:"0" ~inn:(n "m1") ~out:(n "v1")
    |> Netlist.resistor ~name:(n "R4") (n "v1") (n "m2") p.Tow_thomas.r4
    |> Netlist.capacitor ~name:(n "C2") (n "m2") (n "v2") p.Tow_thomas.c2
    |> Netlist.opamp ~name:(n "OP2") ~inp:"0" ~inn:(n "m2") ~out:(n "v2")
    |> Netlist.resistor ~name:(n "R5") (n "v2") (n "m3") p.Tow_thomas.r5
    |> Netlist.resistor ~name:(n "R6") (n "m3") (n "v3") p.Tow_thomas.r6
    |> Netlist.opamp ~name:(n "OP3") ~inp:"0" ~inn:(n "m3") ~out:(n "v3")
  in
  let pa = Tow_thomas.params_for ~q:0.54 ~f0_hz () in
  let pb = Tow_thomas.params_for ~q:1.31 ~f0_hz () in
  let netlist =
    Netlist.empty ~title:"Cascaded Tow-Thomas pair (4th order)" ()
    |> Netlist.vsource ~name:"Vin" "in" "0" 1.0
  in
  let netlist = add_biquad netlist ~suffix:"A" ~input:"in" ~params:pa in
  let netlist = add_biquad netlist ~suffix:"B" ~input:"v2A" ~params:pb in
  {
    Benchmark.name = "tt-pair";
    description = "Two cascaded Tow-Thomas biquads (6 opamps, 4th-order lowpass)";
    netlist;
    source = "Vin";
    output = "v2B";
    center_hz = f0_hz;
  }
