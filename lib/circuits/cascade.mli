(** Cascaded multi-stage filters — the larger benchmarks used to study
    how the optimization scales with the number of opamps (the paper's
    "more complex analog circuits" future-work direction). *)

val sallen_key_chain : ?sections:int -> ?f0_hz:float -> unit -> Benchmark.t
(** [sections] unity-gain Sallen–Key lowpass sections in cascade
    (default 3 → 3 opamps, 12 passives). Section k is tuned to
    f₀·(1.2)ᵏ to stagger the poles. *)

val tow_thomas_pair : ?f0_hz:float -> unit -> Benchmark.t
(** Two Tow–Thomas biquads in cascade — 6 opamps, 16 passives, the
    2⁶-configuration stress case. *)
