(** First-order active allpass: unity magnitude at every frequency,
    phase swinging from 0 to -180 degrees around f₀. The pathological
    benchmark for magnitude-only detectability — several faults barely
    move |H| and only phase-based criteria see them. *)

val first_order : ?f0_hz:float -> unit -> Benchmark.t
