module Netlist = Circuit.Netlist

(* Delyiannis-Friend bandpass with equal capacitors C:
     Vin -R1- a ; R2 a-0 ; C1 a-b ; C2 a-out ; R3 b-out ;
     opamp inp = ground, inn = b, out = out.
   With C1 = C2 = C:  w0 = 1/(C sqrt(R3 Rp)) where Rp = R1 || R2,
   Q = (1/2) sqrt(R3/Rp). *)
let bandpass ?(f0_hz = 1000.0) ?(q = 2.0) () =
  if f0_hz <= 0.0 || q <= 0.0 then invalid_arg "Mfb.bandpass: positive parameters";
  let c = 10e-9 in
  let w0 = 2.0 *. Float.pi *. f0_hz in
  let r3 = 2.0 *. q /. (w0 *. c) in
  let rp = r3 /. (4.0 *. q *. q) in
  (* split Rp into R1 = 2 Rp and R2 = 2 Rp *)
  let r1 = 2.0 *. rp and r2 = 2.0 *. rp in
  let netlist =
    Netlist.empty ~title:"MFB bandpass" ()
    |> Netlist.vsource ~name:"Vin" "in" "0" 1.0
    |> Netlist.resistor ~name:"R1" "in" "a" r1
    |> Netlist.resistor ~name:"R2" "a" "0" r2
    |> Netlist.capacitor ~name:"C1" "a" "b" c
    |> Netlist.capacitor ~name:"C2" "a" "out" c
    |> Netlist.resistor ~name:"R3" "b" "out" r3
    |> Netlist.opamp ~name:"OP1" ~inp:"0" ~inn:"b" ~out:"out"
  in
  {
    Benchmark.name = "mfb-bp";
    description = "Multiple-feedback (Delyiannis-Friend) bandpass section (1 opamp)";
    netlist;
    source = "Vin";
    output = "out";
    center_hz = f0_hz;
  }
