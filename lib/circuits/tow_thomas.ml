module Netlist = Circuit.Netlist

type params = {
  r1 : float;
  r2 : float;
  r3 : float;
  r4 : float;
  r5 : float;
  r6 : float;
  c1 : float;
  c2 : float;
}

let params_for ?(q = 1.0) ?(gain = 1.0) ~f0_hz () =
  if f0_hz <= 0.0 || q <= 0.0 || gain <= 0.0 then
    invalid_arg "Tow_thomas.params_for: parameters must be positive";
  let c = 10e-9 in
  let r = 1.0 /. (2.0 *. Float.pi *. f0_hz *. c) in
  (* With R3 = R4 = R5 = R6 = R and C1 = C2 = C: w0 = 1/(RC),
     Q = R2/R, DC gain = R/R1. *)
  { r1 = r /. gain; r2 = q *. r; r3 = r; r4 = r; r5 = r; r6 = r; c1 = c; c2 = c }

let default_params = params_for ~f0_hz:1000.0 ()

let f0_hz p =
  sqrt (p.r6 /. (p.r3 *. p.r4 *. p.r5 *. p.c1 *. p.c2)) /. (2.0 *. Float.pi)

let quality p = 2.0 *. Float.pi *. f0_hz p *. p.r2 *. p.c1

type output_tap = Lowpass | Bandpass | Inverted_lowpass

let make ?(params = default_params) ?(tap = Lowpass) () =
  let p = params in
  let netlist =
    Netlist.empty ~title:"Tow-Thomas biquadratic filter" ()
    |> Netlist.vsource ~name:"Vin" "in" "0" 1.0
    (* stage 1: lossy integrator *)
    |> Netlist.resistor ~name:"R1" "in" "m1" p.r1
    |> Netlist.resistor ~name:"R2" "m1" "v1" p.r2
    |> Netlist.capacitor ~name:"C1" "m1" "v1" p.c1
    |> Netlist.resistor ~name:"R3" "v3" "m1" p.r3
    |> Netlist.opamp ~name:"OP1" ~inp:"0" ~inn:"m1" ~out:"v1"
    (* stage 2: integrator *)
    |> Netlist.resistor ~name:"R4" "v1" "m2" p.r4
    |> Netlist.capacitor ~name:"C2" "m2" "v2" p.c2
    |> Netlist.opamp ~name:"OP2" ~inp:"0" ~inn:"m2" ~out:"v2"
    (* stage 3: inverter *)
    |> Netlist.resistor ~name:"R5" "v2" "m3" p.r5
    |> Netlist.resistor ~name:"R6" "m3" "v3" p.r6
    |> Netlist.opamp ~name:"OP3" ~inp:"0" ~inn:"m3" ~out:"v3"
  in
  let output =
    match tap with Lowpass -> "v2" | Bandpass -> "v1" | Inverted_lowpass -> "v3"
  in
  {
    Benchmark.name = "tow-thomas";
    description =
      "Tow-Thomas biquadratic filter (paper Fig. 1): 3 opamps, R1-R6, C1-C2";
    netlist;
    source = "Vin";
    output;
    center_hz = f0_hz p;
  }
