(** Active leapfrog simulation of a doubly-terminated 5th-order
    Butterworth LC ladder.

    Five inverting integrators realize the ladder state equations; the
    sign pattern of the leapfrog flow graph requires three additional
    unit inverters, giving eight opamps in total — the largest
    benchmark in the zoo (2⁸ configurations) and a block with feedback
    links spanning non-adjacent stages. Passband gain is 1/2 (the
    doubly-terminated ladder's flat-loss). *)

val make : ?cutoff_hz:float -> unit -> Benchmark.t
(** Default cutoff: 1 kHz. Output: the load-end state V₅. *)
