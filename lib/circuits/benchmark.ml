module Netlist = Circuit.Netlist

type t = {
  name : string;
  description : string;
  netlist : Netlist.t;
  source : string;
  output : string;
  center_hz : float;
}

let opamp_count t = List.length (Netlist.opamps t.netlist)
let passive_count t = List.length (Netlist.passives t.netlist)
