module Netlist = Circuit.Netlist

(* Q-enhanced Wien bandpass: the Wien divider's series RC branch is
   driven from the amplifier output (positive feedback), the input is
   injected into the divider node through R3, and a non-inverting stage
   of gain G = 1 + RB/RA closes the loop:

     out - R1 - C1 - vp        (series branch, feedback)
     vp  - R2 || C2 - ground   (parallel branch)
     in  - R3 - vp             (input injection)
     out = G vp

   The Wien divider peaks at 1/3 at f0 = 1/(2 pi R C), so the loop gain
   is G/3 and the circuit oscillates at G = 3; below that the pole pair
   Q rises as G approaches 3. *)
let bandpass ?(f0_hz = 1000.0) ?(gain = 2.0) () =
  if gain >= 3.0 then invalid_arg "Wien.bandpass: gain must stay below 3";
  if gain <= 1.0 then invalid_arg "Wien.bandpass: non-inverting gain must exceed 1";
  let c = 10e-9 in
  let r = 1.0 /. (2.0 *. Float.pi *. f0_hz *. c) in
  let ra = 10_000.0 in
  let rb = (gain -. 1.0) *. ra in
  let netlist =
    Netlist.empty ~title:"Wien-bridge bandpass" ()
    |> Netlist.vsource ~name:"Vin" "in" "0" 1.0
    |> Netlist.resistor ~name:"R1" "out" "x" r
    |> Netlist.capacitor ~name:"C1" "x" "vp" c
    |> Netlist.resistor ~name:"R2" "vp" "0" r
    |> Netlist.capacitor ~name:"C2" "vp" "0" c
    |> Netlist.resistor ~name:"R3" "in" "vp" (10.0 *. r)
    |> Netlist.resistor ~name:"RA" "vm" "0" ra
    |> Netlist.resistor ~name:"RB" "vm" "out" rb
    |> Netlist.opamp ~name:"OP1" ~inp:"vp" ~inn:"vm" ~out:"out"
  in
  {
    Benchmark.name = "wien-bp";
    description = "Q-enhanced Wien-bridge bandpass (1 opamp, positive feedback)";
    netlist;
    source = "Vin";
    output = "out";
    center_hz = f0_hz;
  }
