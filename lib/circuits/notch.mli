(** Notch filter: a Tow–Thomas biquad whose bandpass output is summed
    back with the input so the s-term cancels, leaving a transmission
    zero at f₀. Four opamps — a circuit where feedback crosses stage
    boundaries, the situation the paper's multi-configuration technique
    is designed for. *)

val make : ?f0_hz:float -> ?q:float -> unit -> Benchmark.t
(** Defaults: f₀ = 1 kHz, Q = 1. Output is the summing stage. *)
