let all () =
  [
    Sallen_key.lowpass ();
    Sallen_key.highpass ();
    Mfb.bandpass ();
    Allpass.first_order ();
    Wien.bandpass ();
    Tow_thomas.make ();
    Khn.make ();
    Notch.make ();
    Universal.make ();
    Universal.make ~response:Universal.Allpass ();
    Cascade.sallen_key_chain ();
    Cascade.tow_thomas_pair ();
    Leapfrog.make ();
  ]

let find name = List.find_opt (fun b -> b.Benchmark.name = name) (all ())
let names () = List.map (fun b -> b.Benchmark.name) (all ())
