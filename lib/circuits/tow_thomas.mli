(** The Tow–Thomas biquadratic filter — the paper's case-study circuit
    (Figure 1): three opamps, six resistors R1–R6 and two capacitors
    C1, C2.

    Topology (standard Tow–Thomas):
    - OP1 is a lossy inverting integrator: input through R1, feedback
      C1 ∥ R2 (damping), plus global feedback from OP3's output through
      R3.
    - OP2 is an inverting integrator: input through R4, feedback C2.
    - OP3 is a unity-scale inverter: input through R5, feedback R6.

    The lowpass transfer function at OP2's output is
    H(s) = (1/(R1 R4 C1 C2)) / (s² + s/(R2 C1) + R6/(R3 R4 R5 C1 C2)),
    so ω₀² = R6/(R3 R4 R5 C1 C2) and Q = ω₀ R2 C1. *)

type params = {
  r1 : float;
  r2 : float;
  r3 : float;
  r4 : float;
  r5 : float;
  r6 : float;
  c1 : float;
  c2 : float;
}

val default_params : params
(** f₀ = 1 kHz, Q ≈ 1, unity DC gain: R = 15.915 kΩ all around,
    C = 10 nF. *)

val params_for : ?q:float -> ?gain:float -> f0_hz:float -> unit -> params
(** Equal-R/equal-C design for a given centre frequency, quality factor
    (default 1) and DC gain (default 1). *)

val f0_hz : params -> float
val quality : params -> float

type output_tap = Lowpass  (** OP2's output (node "v2"). *)
                | Bandpass  (** OP1's output (node "v1"). *)
                | Inverted_lowpass  (** OP3's output (node "v3"). *)

val make : ?params:params -> ?tap:output_tap -> unit -> Benchmark.t
(** The biquad driven by source "Vin" at node "in"; opamps are named
    OP1, OP2, OP3 in chain order. Default tap: {!Lowpass}. *)
