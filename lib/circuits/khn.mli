(** KHN (Kerwin–Huelsman–Newcomb) state-variable filter: a summing
    amplifier followed by two inverting integrators, with simultaneous
    highpass, bandpass and lowpass outputs. Three opamps, nine passive
    components — a second, structurally different 3-opamp block for the
    multi-configuration experiments. *)

type output_tap = Highpass | Bandpass | Lowpass

val make : ?f0_hz:float -> ?q:float -> ?tap:output_tap -> unit -> Benchmark.t
(** Defaults: f₀ = 1 kHz, Q = 1, lowpass tap. *)
