module Netlist := Circuit.Netlist

(** A benchmark circuit: a netlist plus the information needed to drive
    the testability flow on it (stimulus entry, observation point, and
    a characteristic frequency for grid placement). *)

type t = {
  name : string;
  description : string;
  netlist : Netlist.t;
  source : string;  (** Name of the driving voltage source. *)
  output : string;  (** Observed output node. *)
  center_hz : float;  (** Characteristic frequency (f₀ or cutoff). *)
}

val opamp_count : t -> int
val passive_count : t -> int
