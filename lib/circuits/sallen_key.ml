module Netlist = Circuit.Netlist

(* Unity-gain Sallen-Key with equal resistors: Q is set by the
   capacitor ratio, C1 = 2 Q C and C2 = C / (2 Q), giving
   w0 = 1/(R C) with C = sqrt(C1 C2). *)
let lowpass ?(f0_hz = 1000.0) ?(q = 1.0) () =
  if f0_hz <= 0.0 || q <= 0.0 then invalid_arg "Sallen_key.lowpass: positive parameters";
  let r = 10_000.0 in
  let c = 1.0 /. (2.0 *. Float.pi *. f0_hz *. r) in
  let c1 = 2.0 *. q *. c and c2 = c /. (2.0 *. q) in
  let netlist =
    Netlist.empty ~title:"Sallen-Key lowpass" ()
    |> Netlist.vsource ~name:"Vin" "in" "0" 1.0
    |> Netlist.resistor ~name:"R1" "in" "a" r
    |> Netlist.resistor ~name:"R2" "a" "b" r
    |> Netlist.capacitor ~name:"C1" "a" "out" c1
    |> Netlist.capacitor ~name:"C2" "b" "0" c2
    |> Netlist.opamp ~name:"OP1" ~inp:"b" ~inn:"out" ~out:"out"
  in
  {
    Benchmark.name = "sallen-key-lp";
    description = "Unity-gain Sallen-Key lowpass section (1 opamp)";
    netlist;
    source = "Vin";
    output = "out";
    center_hz = f0_hz;
  }

let highpass ?(f0_hz = 1000.0) ?(q = 1.0) () =
  if f0_hz <= 0.0 || q <= 0.0 then invalid_arg "Sallen_key.highpass: positive parameters";
  let c = 10e-9 in
  let r = 1.0 /. (2.0 *. Float.pi *. f0_hz *. c) in
  (* dual of the lowpass: R1 = R/(2Q) to ground path swap *)
  let r1 = r /. (2.0 *. q) and r2 = r *. 2.0 *. q in
  let netlist =
    Netlist.empty ~title:"Sallen-Key highpass" ()
    |> Netlist.vsource ~name:"Vin" "in" "0" 1.0
    |> Netlist.capacitor ~name:"C1" "in" "a" c
    |> Netlist.capacitor ~name:"C2" "a" "b" c
    |> Netlist.resistor ~name:"R1" "a" "out" r1
    |> Netlist.resistor ~name:"R2" "b" "0" r2
    |> Netlist.opamp ~name:"OP1" ~inp:"b" ~inn:"out" ~out:"out"
  in
  {
    Benchmark.name = "sallen-key-hp";
    description = "Unity-gain Sallen-Key highpass section (1 opamp)";
    netlist;
    source = "Vin";
    output = "out";
    center_hz = f0_hz;
  }
