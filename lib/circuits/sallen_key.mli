(** Unity-gain Sallen–Key second-order sections (one opamp each).

    The smallest members of the benchmark zoo: with a single opamp the
    multi-configuration space has just 2 configurations, which makes
    them handy for exhaustive hand-checked tests. *)

val lowpass : ?f0_hz:float -> ?q:float -> unit -> Benchmark.t
(** Unity-gain lowpass: Vin -R1- a -R2- b, C1 from a to the output,
    C2 from b to ground, follower opamp. Defaults: f₀ = 1 kHz, Q = 1. *)

val highpass : ?f0_hz:float -> ?q:float -> unit -> Benchmark.t
(** The RC-CR dual of {!lowpass}. *)
