module Netlist = Circuit.Netlist

type response = Notch | Allpass

(* KHN states (equal-R summer, unity integrators):
     HP = v1 = -s^2 T(s),  BP = v2 = s w0 T(s) /?,  LP = v3
   with v2 = -v1/(s tau) and v3 = -v2/(s tau), tau = 1/w0:
     v1/vin = -s^2 tau^2 / D,  v2/vin = s tau / D,  v3/vin = -1 / D
   where D = s^2 tau^2 + (s tau)/Q + 1.

   The summer  sum = -(v1 + a v2 + v3) * (Rf/Ri ratios)  then gives
     notch  (a = 0):      sum/vin =  (s^2 tau^2 + 1) / D
     allpass(a = 1/Q):    sum/vin =  (s^2 tau^2 - s tau/Q + 1) / D. *)
let make ?(f0_hz = 1000.0) ?(q = 1.0) ?(response = Notch) () =
  let khn = Khn.make ~f0_hz ~q () in
  let rf = 10_000.0 in
  let netlist = khn.Benchmark.netlist in
  let netlist =
    netlist
    |> Netlist.resistor ~name:"RS1" "v1" "ms" rf
    |> Netlist.resistor ~name:"RS3" "v3" "ms" rf
  in
  let netlist =
    match response with
    | Notch -> netlist
    | Allpass -> Netlist.resistor ~name:"RS2" "v2" "ms" (rf *. q) netlist
  in
  let netlist =
    netlist
    |> Netlist.resistor ~name:"RSF" "ms" "sum" rf
    |> Netlist.opamp ~name:"OP4" ~inp:"0" ~inn:"ms" ~out:"sum"
  in
  {
    Benchmark.name =
      (match response with Notch -> "universal-notch" | Allpass -> "universal-ap");
    description =
      (match response with
      | Notch -> "Universal biquad, notch output (KHN + summing amp, 4 opamps)"
      | Allpass -> "Universal biquad, allpass output (KHN + summing amp, 4 opamps)");
    netlist;
    source = "Vin";
    output = "sum";
    center_hz = f0_hz;
  }
