(** Universal (four-opamp) filter: a KHN core plus an output summing
    amplifier that recombines the HP/BP/LP states into a notch or an
    allpass response — the classic "universal biquad" configuration.
    The richest small benchmark: 4 opamps, 12 passives, and an output
    stage whose faults are invisible at the internal taps. *)

type response = Notch | Allpass

val make : ?f0_hz:float -> ?q:float -> ?response:response -> unit -> Benchmark.t
(** Defaults: f₀ = 1 kHz, Q = 1, {!Notch}. Output: the summing stage
    ("sum"). *)
