module Netlist = Circuit.Netlist

(* The Tow-Thomas bandpass output (OP1, node v1) is
   H_BP = -(s / (R1 C1)) / (s^2 + s/(R2 C1) + w0^2).
   Summing  out = -(vin + (R1/R2) v1)  cancels the s-term of the
   numerator against the denominator's, producing the notch
   H = -(s^2 + w0^2) / (s^2 + s/(R2 C1) + w0^2). *)
let make ?(f0_hz = 1000.0) ?(q = 1.0) () =
  let p = Tow_thomas.params_for ~q ~f0_hz () in
  let biquad = (Tow_thomas.make ~params:p ()).Benchmark.netlist in
  let rf = 10_000.0 in
  let rb = rf *. p.Tow_thomas.r2 /. p.Tow_thomas.r1 in
  let netlist =
    biquad
    |> Netlist.resistor ~name:"RA" "in" "m4" rf
    |> Netlist.resistor ~name:"RB" "v1" "m4" rb
    |> Netlist.resistor ~name:"RF" "m4" "notch" rf
    |> Netlist.opamp ~name:"OP4" ~inp:"0" ~inn:"m4" ~out:"notch"
  in
  {
    Benchmark.name = "tt-notch";
    description = "Tow-Thomas based notch filter (4 opamps, cross-stage feedback)";
    netlist;
    source = "Vin";
    output = "notch";
    center_hz = f0_hz;
  }
