module Netlist = Circuit.Netlist

(* Ladder prototype g-values for a 5th-order Butterworth with 1 Ohm
   terminations. State equations (V1, I2, V3, I4, V5):

     V1 (s g1 + 1) = Vin - I2
     I2  s g2      = V1  - V3
     V3  s g3      = I2  - I4
     I4  s g4      = V3  - V5
     V5 (s g5 + 1) = I4

   Realized with inverting integrators on the states
   y1 = -V1, y2 = I2, y3 = V3, y4 = -I4, y5 = V5:

     y1 = -(Vin + y2n) / (s g1 + 1)      y2n = -y2   (INV6)
     y2 = -(y1 + y3) / (s g2)
     y3 = -(y2n + y4n) / (s g3)          y4n = -y4   (INV7)
     y4 = -(y3 + y5n) / (s g4)           y5n = -y5   (INV8)
     y5 = -(y4) / (s g5 + 1)

   Each integrator uses unit input resistors R and C_k = g_k/(R w_c);
   the lossy ones add a feedback resistor R. *)
let g_values = [| 0.618; 1.618; 2.0; 1.618; 0.618 |]

let make ?(cutoff_hz = 1000.0) () =
  if cutoff_hz <= 0.0 then invalid_arg "Leapfrog.make: positive cutoff";
  let r = 10_000.0 in
  let wc = 2.0 *. Float.pi *. cutoff_hz in
  let cap k = g_values.(k - 1) /. (r *. wc) in
  let integrator ~name ~inputs ~lossy ~out netlist =
    let m = "m_" ^ name in
    let netlist =
      List.fold_left
        (fun nl (rname, from_node) -> Netlist.resistor ~name:rname from_node m r nl)
        netlist inputs
    in
    let netlist =
      if lossy then Netlist.resistor ~name:("RF_" ^ name) m out r netlist else netlist
    in
    netlist
    |> Netlist.capacitor ~name:("C_" ^ name) m out (cap (int_of_string (String.sub name 1 1)))
    |> Netlist.opamp ~name:("OP" ^ String.sub name 1 1) ~inp:"0" ~inn:m ~out
  in
  let inverter ~idx ~input ~out netlist =
    let m = Printf.sprintf "m_inv%d" idx in
    netlist
    |> Netlist.resistor ~name:(Printf.sprintf "RI%da" idx) input m r
    |> Netlist.resistor ~name:(Printf.sprintf "RI%db" idx) m out r
    |> Netlist.opamp ~name:(Printf.sprintf "OP%d" idx) ~inp:"0" ~inn:m ~out
  in
  let netlist =
    Netlist.empty ~title:"Leapfrog 5th-order Butterworth ladder" ()
    |> Netlist.vsource ~name:"Vin" "in" "0" 1.0
    |> integrator ~name:"y1" ~inputs:[ ("R1a", "in"); ("R1b", "y2n") ] ~lossy:true ~out:"y1"
    |> integrator ~name:"y2" ~inputs:[ ("R2a", "y1"); ("R2b", "y3") ] ~lossy:false ~out:"y2"
    |> integrator ~name:"y3" ~inputs:[ ("R3a", "y2n"); ("R3b", "y4n") ] ~lossy:false ~out:"y3"
    |> integrator ~name:"y4" ~inputs:[ ("R4a", "y3"); ("R4b", "y5n") ] ~lossy:false ~out:"y4"
    |> integrator ~name:"y5" ~inputs:[ ("R5a", "y4") ] ~lossy:true ~out:"y5"
    |> inverter ~idx:6 ~input:"y2" ~out:"y2n"
    |> inverter ~idx:7 ~input:"y4" ~out:"y4n"
    |> inverter ~idx:8 ~input:"y5" ~out:"y5n"
  in
  {
    Benchmark.name = "leapfrog5";
    description =
      "Active leapfrog simulation of a doubly-terminated 5th-order Butterworth ladder \
       (8 opamps)";
    netlist;
    source = "Vin";
    output = "y5";
    center_hz = cutoff_hz;
  }
