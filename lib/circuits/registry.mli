(** The benchmark registry: every circuit in the zoo under its stable
    name, for the CLI and the benches. *)

val all : unit -> Benchmark.t list
(** Every benchmark with default parameters, smallest first. *)

val find : string -> Benchmark.t option
(** Look up by {!Benchmark.t.name}, e.g. ["tow-thomas"]. *)

val names : unit -> string list
