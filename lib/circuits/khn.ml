module Netlist = Circuit.Netlist

type output_tap = Highpass | Bandpass | Lowpass

(* Classic KHN with R1 = R2 = R3 = R: the non-inverting divider
   R4/R5 sets Q = (R4 + R5) / (3 R5); integrators give
   w0 = 1/(R6 C1) = 1/(R7 C2). *)
let make ?(f0_hz = 1000.0) ?(q = 1.0) ?(tap = Lowpass) () =
  if f0_hz <= 0.0 || q <= 0.0 then invalid_arg "Khn.make: positive parameters";
  let r = 10_000.0 in
  let c = 10e-9 in
  let ri = 1.0 /. (2.0 *. Float.pi *. f0_hz *. c) in
  let r5 = r in
  let r4 = ((3.0 *. q) -. 1.0) *. r5 in
  if r4 <= 0.0 then invalid_arg "Khn.make: q must exceed 1/3";
  let netlist =
    Netlist.empty ~title:"KHN state-variable filter" ()
    |> Netlist.vsource ~name:"Vin" "in" "0" 1.0
    (* summing stage *)
    |> Netlist.resistor ~name:"R1" "in" "na" r
    |> Netlist.resistor ~name:"R2" "v3" "na" r
    |> Netlist.resistor ~name:"R3" "v1" "na" r
    |> Netlist.resistor ~name:"R4" "v2" "nb" r4
    |> Netlist.resistor ~name:"R5" "nb" "0" r5
    |> Netlist.opamp ~name:"OP1" ~inp:"nb" ~inn:"na" ~out:"v1"
    (* integrator 1: v2 = -v1 / (s R6 C1) *)
    |> Netlist.resistor ~name:"R6" "v1" "m2" ri
    |> Netlist.capacitor ~name:"C1" "m2" "v2" c
    |> Netlist.opamp ~name:"OP2" ~inp:"0" ~inn:"m2" ~out:"v2"
    (* integrator 2: v3 = -v2 / (s R7 C2) *)
    |> Netlist.resistor ~name:"R7" "v2" "m3" ri
    |> Netlist.capacitor ~name:"C2" "m3" "v3" c
    |> Netlist.opamp ~name:"OP3" ~inp:"0" ~inn:"m3" ~out:"v3"
  in
  let output = match tap with Highpass -> "v1" | Bandpass -> "v2" | Lowpass -> "v3" in
  {
    Benchmark.name = "khn";
    description = "KHN state-variable filter (3 opamps, HP/BP/LP outputs)";
    netlist;
    source = "Vin";
    output;
    center_hz = f0_hz;
  }
