(** Wien-bridge bandpass: the series-RC / parallel-RC divider buffered
    by a non-inverting amplifier of gain below the oscillation limit.
    One opamp, six passives; peak gain G/3 at f₀ = 1/(2πRC). *)

val bandpass : ?f0_hz:float -> ?gain:float -> unit -> Benchmark.t
(** [gain] is the amplifier gain (default 2.0; must stay below 3, the
    Wien oscillation threshold). *)
