(** Multiple-feedback (Delyiannis–Friend) bandpass section — one opamp,
    two capacitors, three resistors. *)

val bandpass : ?f0_hz:float -> ?q:float -> unit -> Benchmark.t
(** Inverting bandpass with centre frequency [f0_hz] (default 1 kHz)
    and quality factor [q] (default 2). *)
