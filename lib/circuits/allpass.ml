module Netlist = Circuit.Netlist

(* Classic one-opamp allpass: equal resistors R1 = R2 from input to the
   inverting path, RC phase shifter on the non-inverting input:
   H(s) = (1 - s R C) / (1 + s R C). *)
let first_order ?(f0_hz = 1000.0) () =
  let c = 10e-9 in
  let r = 1.0 /. (2.0 *. Float.pi *. f0_hz *. c) in
  let rg = 10_000.0 in
  let netlist =
    Netlist.empty ~title:"First-order allpass" ()
    |> Netlist.vsource ~name:"Vin" "in" "0" 1.0
    |> Netlist.resistor ~name:"R1" "in" "vm" rg
    |> Netlist.resistor ~name:"R2" "vm" "out" rg
    |> Netlist.resistor ~name:"R3" "in" "vp" r
    |> Netlist.capacitor ~name:"C1" "vp" "0" c
    |> Netlist.opamp ~name:"OP1" ~inp:"vp" ~inn:"vm" ~out:"out"
  in
  {
    Benchmark.name = "allpass1";
    description = "First-order active allpass (flat magnitude, phase-only faults)";
    netlist;
    source = "Vin";
    output = "out";
    center_hz = f0_hz;
  }
