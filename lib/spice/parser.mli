module Netlist := Circuit.Netlist

(** A SPICE-flavoured netlist reader.

    Supported cards (case-insensitive leading letter, engineering
    suffixes on values):
    - [R/C/L name n1 n2 value]
    - [V/I name n+ n- [AC] value] — independent sources
    - [E name n+ n- c+ c- gain] — VCVS; [G ... gm] — VCCS
    - [H name n+ n- vsense r] — CCVS; [F name n+ n- vsense gain] — CCCS
    - [X name inp inn out OPAMP [A0=val] [FP=val]] — opamp macro;
      ideal when A0/FP are omitted
    - [.subckt NAME port...] … [.ends] — subcircuit definition;
      [Xinst node... NAME] instantiates it. Instances are flattened:
      element names and internal nodes get the instance prefix
      ("inst.R1", "inst.n1"), ports map to the instance terminals,
      ground stays global, and definitions may instantiate other
      definitions (nesting depth is bounded to catch recursion).
      Current-sense references (H/F cards) must stay within the same
      subcircuit.
    - [.title ...], [.end], blank lines, [*] comment lines, [;] inline
      comments, [+] continuation lines.

    The first line is the title, as in SPICE. *)

type error = { line : int; message : string }

val error_to_string : error -> string

val parse_string : string -> (Netlist.t, error) result
val parse_file : string -> (Netlist.t, error) result
(** Raises [Sys_error] when the file cannot be read. *)

val parse_string_with_lines : string -> (Netlist.t * (string * int) list, error) result
(** Like {!parse_string}, additionally returning a side table mapping
    each element name to the 1-based source line of the card that
    declared it. Continuation lines map to their opening line; elements
    flattened out of a subcircuit instance keep the line of the
    definition body card, under their prefixed instance name
    ("inst.R1"). The table feeds diagnostics — the netlist itself is
    unchanged, so writer round-trips are unaffected. *)

val parse_file_with_lines : string -> (Netlist.t * (string * int) list, error) result
(** Raises [Sys_error] when the file cannot be read. *)
