module Netlist = Circuit.Netlist
module Element = Circuit.Element

let card e =
  let q = Util.Quantity.to_string in
  match e with
  | Element.Resistor { name; n1; n2; value } -> Printf.sprintf "%s %s %s %s" name n1 n2 (q value)
  | Element.Capacitor { name; n1; n2; value } -> Printf.sprintf "%s %s %s %s" name n1 n2 (q value)
  | Element.Inductor { name; n1; n2; value } -> Printf.sprintf "%s %s %s %s" name n1 n2 (q value)
  | Element.Vsource { name; npos; nneg; value } -> Printf.sprintf "%s %s %s AC %g" name npos nneg value
  | Element.Isource { name; npos; nneg; value } -> Printf.sprintf "%s %s %s AC %g" name npos nneg value
  | Element.Vcvs { name; npos; nneg; cpos; cneg; gain } ->
      Printf.sprintf "%s %s %s %s %s %g" name npos nneg cpos cneg gain
  | Element.Vccs { name; npos; nneg; cpos; cneg; gm } ->
      Printf.sprintf "%s %s %s %s %s %g" name npos nneg cpos cneg gm
  | Element.Ccvs { name; npos; nneg; vsense; r } ->
      Printf.sprintf "%s %s %s %s %g" name npos nneg vsense r
  | Element.Cccs { name; npos; nneg; vsense; gain } ->
      Printf.sprintf "%s %s %s %s %g" name npos nneg vsense gain
  | Element.Opamp { name; inp; inn; out; model } -> (
      match model with
      | Element.Ideal -> Printf.sprintf "%s %s %s %s OPAMP" name inp inn out
      | Element.Single_pole { dc_gain; pole_hz } ->
          Printf.sprintf "%s %s %s %s OPAMP A0=%g FP=%g" name inp inn out dc_gain pole_hz)

let to_string netlist =
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("* " ^ Netlist.title netlist ^ "\n");
  List.iter
    (fun e ->
      Buffer.add_string buf (card e);
      Buffer.add_char buf '\n')
    (Netlist.elements netlist);
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

let to_file path netlist =
  let oc = open_out path in
  output_string oc (to_string netlist);
  close_out oc
