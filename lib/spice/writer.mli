module Netlist := Circuit.Netlist

(** Render a netlist back to the SPICE-flavoured format accepted by
    {!Parser} — [Parser.parse_string (Writer.to_string n)] reproduces
    [n] up to value formatting. *)

val to_string : Netlist.t -> string
val to_file : string -> Netlist.t -> unit
