module Netlist = Circuit.Netlist
module Element = Circuit.Element

type error = { line : int; message : string }

let error_to_string { line; message } = Printf.sprintf "line %d: %s" line message

exception Parse_error of error

let fail line fmt = Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

let strip_inline_comment s =
  match String.index_opt s ';' with
  | Some i -> String.sub s 0 i
  | None -> s

(* Join '+' continuation lines onto their opening line, remembering the
   original line number of the opening line for error reporting. *)
let logical_lines text =
  let raw = String.split_on_char '\n' text in
  let numbered = List.mapi (fun i l -> (i + 1, strip_inline_comment l)) raw in
  let rec join acc = function
    | [] -> List.rev acc
    | (n, line) :: rest ->
        let line = String.trim line in
        if String.length line > 0 && line.[0] = '+' then
          match acc with
          | (n0, prev) :: acc_rest ->
              join ((n0, prev ^ " " ^ String.sub line 1 (String.length line - 1)) :: acc_rest) rest
          | [] -> fail n "continuation line with nothing to continue"
        else join ((n, line) :: acc) rest
  in
  join [] numbered

let tokens line = String.split_on_char ' ' line |> List.filter (fun t -> t <> "")

let value_of line s =
  match Util.Quantity.parse s with
  | Ok v -> v
  | Error msg -> fail line "bad value %S: %s" s msg

(* source cards allow an optional AC keyword before the value *)
let source_value line = function
  | [ v ] -> value_of line v
  | [ kw; v ] when String.uppercase_ascii kw = "AC" -> value_of line v
  | [] -> 1.0 (* a bare source defaults to unit AC amplitude *)
  | extra -> fail line "unexpected source parameters: %s" (String.concat " " extra)

let keyed_params line params =
  List.map
    (fun p ->
      match String.index_opt p '=' with
      | Some i ->
          ( String.uppercase_ascii (String.sub p 0 i),
            value_of line (String.sub p (i + 1) (String.length p - i - 1)) )
      | None -> fail line "expected KEY=VALUE, got %S" p)
    params

(* --- hierarchy ---------------------------------------------------------

   `.subckt NAME port...` collects raw cards until `.ends`; an instance
   card `Xinst node... NAME` flattens the definition with the instance
   name prefixed onto element names and internal nodes ("inst.n1"),
   ports mapped to the instance terminals and ground left global.
   Definitions may instantiate other definitions; a depth limit guards
   against recursion. *)

type subckt = { ports : string list; body : (int * string) list }

type renaming = {
  prefix : string;  (** "" at top level, "inst." inside. *)
  port_map : (string * string) list;  (** formal port -> actual node. *)
}

let top_level = { prefix = ""; port_map = [] }

let rename_node env n =
  if n = Element.ground then n
  else
    match List.assoc_opt n env.port_map with
    | Some actual -> actual
    | None -> env.prefix ^ n

let rename_name env n = env.prefix ^ n

let max_depth = 20

let rec parse_card ~subckts ~env ~depth ~record line_no card netlist =
  match tokens card with
  | [] -> netlist
  | name :: rest -> (
      let kind = Char.uppercase_ascii name.[0] in
      let name' = rename_name env name in
      let n = rename_node env in
      (* record after the add so duplicate names (which Netlist.add
         rejects) never enter the line table *)
      let add e =
        let netlist = Netlist.add e netlist in
        record (Element.name e) line_no;
        netlist
      in
      match (kind, rest) with
      | 'R', [ n1; n2; v ] ->
          add (Element.Resistor { name = name'; n1 = n n1; n2 = n n2; value = value_of line_no v })
      | 'C', [ n1; n2; v ] ->
          add (Element.Capacitor { name = name'; n1 = n n1; n2 = n n2; value = value_of line_no v })
      | 'L', [ n1; n2; v ] ->
          add (Element.Inductor { name = name'; n1 = n n1; n2 = n n2; value = value_of line_no v })
      | 'V', npos :: nneg :: params ->
          add
            (Element.Vsource
               { name = name'; npos = n npos; nneg = n nneg; value = source_value line_no params })
      | 'I', npos :: nneg :: params ->
          add
            (Element.Isource
               { name = name'; npos = n npos; nneg = n nneg; value = source_value line_no params })
      | 'E', [ npos; nneg; cpos; cneg; g ] ->
          add
            (Element.Vcvs
               { name = name'; npos = n npos; nneg = n nneg; cpos = n cpos; cneg = n cneg;
                 gain = value_of line_no g })
      | 'G', [ npos; nneg; cpos; cneg; g ] ->
          add
            (Element.Vccs
               { name = name'; npos = n npos; nneg = n nneg; cpos = n cpos; cneg = n cneg;
                 gm = value_of line_no g })
      | 'H', [ npos; nneg; vsense; r ] ->
          add
            (Element.Ccvs
               { name = name'; npos = n npos; nneg = n nneg; vsense = rename_name env vsense;
                 r = value_of line_no r })
      | 'F', [ npos; nneg; vsense; g ] ->
          add
            (Element.Cccs
               { name = name'; npos = n npos; nneg = n nneg; vsense = rename_name env vsense;
                 gain = value_of line_no g })
      | ('X' | 'O'), inp :: inn :: out :: macro :: params
        when String.uppercase_ascii macro = "OPAMP" ->
          let keyed = keyed_params line_no params in
          let model =
            match (List.assoc_opt "A0" keyed, List.assoc_opt "FP" keyed) with
            | None, None -> Element.Ideal
            | a0, fp ->
                Element.Single_pole
                  {
                    dc_gain = Option.value a0 ~default:1e5;
                    pole_hz = Option.value fp ~default:10.0;
                  }
          in
          add (Element.Opamp { name = name'; inp = n inp; inn = n inn; out = n out; model })
      | ('X' | 'O'), _ :: _
        when Hashtbl.mem subckts
               (String.uppercase_ascii (List.nth rest (List.length rest - 1))) ->
          let subckt_name = String.uppercase_ascii (List.nth rest (List.length rest - 1)) in
          let actuals = List.filteri (fun i _ -> i < List.length rest - 1) rest in
          instantiate ~subckts ~env ~depth ~record line_no ~instance:name ~subckt_name
            ~actuals netlist
      | ('X' | 'O'), _ ->
          fail line_no
            "opamp card must be: Xname inp inn out OPAMP [A0=..] [FP=..], or the last \
             token must name a .subckt"
      | ('R' | 'C' | 'L' | 'V' | 'I' | 'E' | 'G' | 'H' | 'F'), _ ->
          fail line_no "malformed %c card: %s" kind card
      | _ -> fail line_no "unknown element card %S" name)

and instantiate ~subckts ~env ~depth ~record line_no ~instance ~subckt_name ~actuals netlist =
  if depth >= max_depth then
    fail line_no "subcircuit nesting deeper than %d (recursive definition?)" max_depth;
  let def = Hashtbl.find subckts subckt_name in
  if List.length actuals <> List.length def.ports then
    fail line_no "subcircuit %s expects %d ports, got %d" subckt_name
      (List.length def.ports) (List.length actuals);
  let actuals = List.map (rename_node env) actuals in
  let inner_env =
    {
      prefix = rename_name env instance ^ ".";
      port_map = List.combine def.ports actuals;
    }
  in
  List.fold_left
    (fun acc (body_line, card) ->
      parse_card ~subckts ~env:inner_env ~depth:(depth + 1) ~record body_line card acc)
    netlist def.body

let parse_string_with_lines text =
  (* counted so the CLI can assert it parses each netlist exactly once
     per invocation (pre-flight lint reuses the campaign's parse) *)
  Obs.Metrics.incr "spice.parse";
  try
    let lines = logical_lines text in
    (* standard SPICE: the first line is always the title *)
    let title, body =
      match lines with
      | (_, first) :: rest ->
          let t =
            if first <> "" && first.[0] = '*' then
              String.trim (String.sub first 1 (String.length first - 1))
            else first
          in
          ((if t = "" then "untitled" else t), rest)
      | [] -> ("untitled", [])
    in
    (* first pass: split out .subckt definitions *)
    let subckts : (string, subckt) Hashtbl.t = Hashtbl.create 4 in
    let top = ref [] in
    let rec split = function
      | [] -> ()
      | (n, line) :: rest when line = "" || line.[0] = '*' -> ignore n; split rest
      | (n, line) :: rest when String.length line > 0 && line.[0] = '.' -> (
          match tokens line with
          | directive :: args when String.uppercase_ascii directive = ".SUBCKT" -> (
              match args with
              | sub_name :: ports when ports <> [] ->
                  let key = String.uppercase_ascii sub_name in
                  if Hashtbl.mem subckts key then
                    fail n "duplicate subcircuit definition %s" sub_name;
                  let rec collect acc = function
                    | [] -> fail n "unterminated .subckt %s" sub_name
                    | (n', l') :: rest'
                      when String.length l' > 0 && l'.[0] = '.'
                           && String.uppercase_ascii (List.hd (tokens l')) = ".ENDS" ->
                        ignore n';
                        (List.rev acc, rest')
                    | (n', l') :: _
                      when String.length l' > 0 && l'.[0] = '.'
                           && String.uppercase_ascii (List.hd (tokens l')) = ".SUBCKT" ->
                        fail n' "nested .subckt definitions are not supported"
                    | (_, l') :: rest' when l' = "" || l'.[0] = '*' -> collect acc rest'
                    | item :: rest' -> collect (item :: acc) rest'
                  in
                  let body, rest' = collect [] rest in
                  Hashtbl.replace subckts key { ports; body };
                  split rest'
              | _ -> fail n ".subckt needs a name and at least one port")
          | directive :: _ -> (
              match String.uppercase_ascii directive with
              | ".END" | ".TITLE" | ".AC" | ".OP" | ".ENDS" -> split rest
              | d -> fail n "unsupported directive %s" d)
          | [] -> split rest)
      | item :: rest ->
          top := item :: !top;
          split rest
    in
    split body;
    let table = ref [] in
    let record name line = table := (name, line) :: !table in
    let netlist =
      List.fold_left
        (fun acc (n, line) ->
          try parse_card ~subckts ~env:top_level ~depth:0 ~record n line acc
          with Invalid_argument msg -> fail n "%s" msg)
        (Netlist.empty ~title ())
        (List.rev !top)
    in
    Ok (netlist, List.rev !table)
  with Parse_error e -> Error e

let parse_string text = Result.map fst (parse_string_with_lines text)

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  content

let parse_file_with_lines path = parse_string_with_lines (read_file path)
let parse_file path = parse_string (read_file path)
