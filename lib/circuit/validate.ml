type issue =
  | No_ground
  | Disconnected of string list
  | Nonpositive_value of string
  | Missing_sense of { element : string; vsense : string }
  | Self_loop of string
  | Empty_netlist
  | Dangling_node of { node : string; element : string }
  | Opamp_drive_conflict of { opamp : string; vsource : string }

let severity = function
  | Dangling_node _ -> `Warning
  | No_ground | Disconnected _ | Nonpositive_value _ | Missing_sense _ | Self_loop _
  | Empty_netlist | Opamp_drive_conflict _ ->
      `Error

let issue_to_string = function
  | No_ground -> "no element is connected to the ground node \"0\""
  | Disconnected ns ->
      Printf.sprintf "nodes not connected to ground: %s" (String.concat ", " ns)
  | Nonpositive_value n ->
      Printf.sprintf "element %s has a non-positive value" n
  | Missing_sense { element; vsense } ->
      Printf.sprintf "element %s senses current through unknown voltage source %s"
        element vsense
  | Self_loop n -> Printf.sprintf "element %s has both terminals on the same node" n
  | Empty_netlist -> "netlist contains no elements"
  | Dangling_node { node; element } ->
      Printf.sprintf "node %s touches only element %s, which therefore carries no current"
        node element
  | Opamp_drive_conflict { opamp; vsource } ->
      Printf.sprintf
        "output of opamp %s is also a terminal of voltage source %s: two ideal drivers \
         contend for the node"
        opamp vsource

module StringSet = Set.Make (String)

(* Connectivity from ground across element terminals.  An opamp couples
   all three of its terminals for this purpose (its output drives a
   node even though no passive path may exist). *)
let connected_component netlist =
  let adjacency = Hashtbl.create 16 in
  let link a b =
    let push x y =
      let existing = Option.value ~default:[] (Hashtbl.find_opt adjacency x) in
      Hashtbl.replace adjacency x (y :: existing)
    in
    push a b;
    push b a
  in
  List.iter
    (fun e ->
      match Element.nodes e with
      | [] | [ _ ] -> ()
      | first :: rest -> List.iter (link first) rest)
    (Netlist.elements netlist);
  let visited = ref StringSet.empty in
  let rec dfs n =
    if not (StringSet.mem n !visited) then begin
      visited := StringSet.add n !visited;
      List.iter dfs (Option.value ~default:[] (Hashtbl.find_opt adjacency n))
    end
  in
  dfs Element.ground;
  !visited

let check netlist =
  let issues = ref [] in
  let push i = issues := i :: !issues in
  let elements = Netlist.elements netlist in
  if elements = [] then push Empty_netlist
  else begin
    let nodes = Netlist.nodes netlist in
    let grounded =
      if not (List.mem Element.ground nodes) then begin
        push No_ground;
        StringSet.empty
      end
      else begin
        let reachable = connected_component netlist in
        let stranded = List.filter (fun n -> not (StringSet.mem n reachable)) nodes in
        if stranded <> [] then push (Disconnected stranded);
        reachable
      end
    in
    (* Degree-1 internal nodes: record which elements touch each node
       (once per element) and flag grounded nodes whose only neighbour
       is a passive — disconnected nodes are already errors above. *)
    let touching = Hashtbl.create 16 in
    List.iter
      (fun e ->
        List.iter
          (fun n ->
            let existing = Option.value ~default:[] (Hashtbl.find_opt touching n) in
            if not (List.memq e existing) then Hashtbl.replace touching n (e :: existing))
          (Element.nodes e))
      elements;
    List.iter
      (fun n ->
        if StringSet.mem n grounded then
          match Hashtbl.find_opt touching n with
          | Some [ e ] when Element.is_passive e ->
              push (Dangling_node { node = n; element = Element.name e })
          | _ -> ())
      (Netlist.internal_nodes netlist);
    List.iter
      (fun e ->
        match e with
        | Element.Opamp { name; out; _ } ->
            List.iter
              (fun e' ->
                match e' with
                | Element.Vsource { name = vname; npos; nneg; _ }
                  when out <> Element.ground && (npos = out || nneg = out) ->
                    push (Opamp_drive_conflict { opamp = name; vsource = vname })
                | _ -> ())
              elements
        | _ -> ())
      elements;
    List.iter
      (fun e ->
        (match e with
        | Element.Resistor { name; value; _ }
        | Element.Capacitor { name; value; _ }
        | Element.Inductor { name; value; _ } ->
            if value <= 0.0 then push (Nonpositive_value name)
        | Element.Vsource _ | Element.Isource _ | Element.Vcvs _ | Element.Vccs _
        | Element.Ccvs _ | Element.Cccs _ | Element.Opamp _ -> ());
        (match e with
        | Element.Ccvs { name; vsense; _ } | Element.Cccs { name; vsense; _ } -> (
            match Netlist.find netlist vsense with
            | Some (Element.Vsource _) -> ()
            | Some _ | None -> push (Missing_sense { element = name; vsense }))
        | Element.Resistor _ | Element.Capacitor _ | Element.Inductor _
        | Element.Vsource _ | Element.Isource _ | Element.Vcvs _ | Element.Vccs _
        | Element.Opamp _ -> ());
        match Element.nodes e with
        | [ a; b ] when a = b -> push (Self_loop (Element.name e))
        | _ -> ())
      elements
  end;
  match List.rev !issues with [] -> Ok () | l -> Error l

let check_exn netlist =
  match check netlist with
  | Ok () -> ()
  | Error issues -> (
      match List.filter (fun i -> severity i = `Error) issues with
      | [] -> ()
      | errors ->
          let msg = String.concat "; " (List.map issue_to_string errors) in
          invalid_arg ("Validate.check_exn: " ^ msg))
