(** Immutable netlists and a builder API.

    A netlist is an ordered collection of {!Element.t} with unique
    names. Fault injection and the multi-configuration DFT transform
    are expressed as pure netlist-to-netlist functions. *)

type t

val empty : ?title:string -> unit -> t
val title : t -> string
val elements : t -> Element.t list
(** In insertion order. *)

val add : Element.t -> t -> t
(** Raises [Invalid_argument] if an element with the same name already
    exists. *)

val of_elements : ?title:string -> Element.t list -> t

(** {1 Convenience builders} — each appends one element. *)

val resistor : name:string -> string -> string -> float -> t -> t
val capacitor : name:string -> string -> string -> float -> t -> t
val inductor : name:string -> string -> string -> float -> t -> t
val vsource : name:string -> string -> string -> float -> t -> t
val isource : name:string -> string -> string -> float -> t -> t
val vcvs : name:string -> string -> string -> string -> string -> float -> t -> t
val vccs : name:string -> string -> string -> string -> string -> float -> t -> t
val opamp : ?model:Element.opamp_model -> name:string -> inp:string -> inn:string -> out:string -> t -> t

(** {1 Queries} *)

val find : t -> string -> Element.t option
val find_exn : t -> string -> Element.t
(** Raises [Not_found]. *)

val mem : t -> string -> bool
val nodes : t -> string list
(** All nodes, sorted, ground included when referenced. *)

val internal_nodes : t -> string list
(** Nodes excluding ground. *)

val opamps : t -> Element.t list
(** Opamp elements in insertion order. *)

val passives : t -> Element.t list
(** R, L, C elements in insertion order — the default fault universe. *)

val size : t -> int

(** {1 Transforms} *)

val replace : Element.t -> t -> t
(** Replace the element with the same name; raises [Not_found] when
    absent. *)

val remove : string -> t -> t
(** Remove by name; raises [Not_found] when absent. *)

val map_value : name:string -> f:(float -> float) -> t -> t
(** Apply [f] to the scalar parameter of element [name]; raises
    [Not_found] when absent, [Invalid_argument] when the element has no
    scalar parameter. *)

val fresh_node : t -> prefix:string -> string
(** A node name not yet used in the netlist. *)

val pp : Format.formatter -> t -> unit
