module StringSet = Set.Make (String)

type t = {
  netlist : Netlist.t;
  influential : StringSet.t;  (* nodes *)
  stiff : StringSet.t;  (* ideally driven nodes *)
}

(* A node is stiff when an ideal source pins its voltage against
   ground: the positive terminal of a ground-referenced V source or
   VCVS, or an opamp output (always ground-referenced here). Elements
   hanging on a stiff node cannot influence it. *)
let stiff_nodes netlist =
  List.fold_left
    (fun acc e ->
      match e with
      | Element.Vsource { npos; nneg; _ } | Element.Vcvs { npos; nneg; _ } ->
          if nneg = Element.ground then StringSet.add npos acc
          else if npos = Element.ground then StringSet.add nneg acc
          else acc
      | Element.Ccvs { npos; nneg; _ } ->
          if nneg = Element.ground then StringSet.add npos acc
          else if npos = Element.ground then StringSet.add nneg acc
          else acc
      | Element.Opamp { out; _ } -> StringSet.add out acc
      | Element.Resistor _ | Element.Capacitor _ | Element.Inductor _
      | Element.Isource _ | Element.Vccs _ | Element.Cccs _ -> acc)
    StringSet.empty
    (Netlist.elements netlist)

let analyse ~output netlist =
  let stiff = stiff_nodes netlist in
  let influential = ref (StringSet.singleton output) in
  let add n =
    if n <> Element.ground && not (StringSet.mem n !influential) then begin
      influential := StringSet.add n !influential;
      true
    end
    else false
  in
  let in_set n = StringSet.mem n !influential in
  let soft n = in_set n && not (StringSet.mem n stiff) in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun e ->
        let step =
          match e with
          | Element.Resistor { n1; n2; _ } | Element.Capacitor { n1; n2; _ }
          | Element.Inductor { n1; n2; _ } ->
              (* conduction couples the terminals wherever the node is
                 not ideally driven *)
              (if soft n1 then add n2 else false) || if soft n2 then add n1 else false
          | Element.Opamp { inp; inn; out; _ } ->
              if in_set out then (add inp || add inn) else false
          | Element.Vcvs { npos; cpos; cneg; _ } ->
              if in_set npos then (add cpos || add cneg) else false
          | Element.Vccs { npos; nneg; cpos; cneg; _ } ->
              if soft npos || soft nneg then (add cpos || add cneg) else false
          | Element.Ccvs { npos; vsense; _ } ->
              if in_set npos then
                match Netlist.find netlist vsense with
                | Some (Element.Vsource { npos = sp; nneg = sn; _ }) ->
                    add sp || add sn
                | _ -> false
              else false
          | Element.Cccs { npos; nneg; vsense; _ } ->
              if soft npos || soft nneg then
                match Netlist.find netlist vsense with
                | Some (Element.Vsource { npos = sp; nneg = sn; _ }) ->
                    add sp || add sn
                | _ -> false
              else false
          | Element.Vsource _ | Element.Isource _ -> false
        in
        if step then changed := true)
      (Netlist.elements netlist)
  done;
  { netlist; influential = !influential; stiff }

let influential_nodes t = StringSet.elements t.influential

let can_affect_output t element =
  let e = Netlist.find_exn t.netlist element in
  List.exists
    (fun n ->
      n <> Element.ground
      && StringSet.mem n t.influential
      && not (StringSet.mem n t.stiff))
    (Element.nodes e)

let influential_passives t =
  List.filter_map
    (fun e ->
      let name = Element.name e in
      if can_affect_output t name then Some name else None)
    (Netlist.passives t.netlist)
