(** Structural sanity checks on netlists.

    Catching modelling mistakes before they reach the solver: missing
    ground, floating subcircuits, non-positive passive values, dangling
    current-sense references, self-looped two-terminal elements. *)

type issue =
  | No_ground  (** No element touches node "0". *)
  | Disconnected of string list
      (** Nodes not connected to ground through any element. *)
  | Nonpositive_value of string  (** R, L or C with value <= 0. *)
  | Missing_sense of { element : string; vsense : string }
      (** CCVS/CCCS referencing an unknown or non-V element. *)
  | Self_loop of string  (** Two-terminal element with both ends on one node. *)
  | Empty_netlist
  | Dangling_node of { node : string; element : string }
      (** Internal node touched by exactly one passive element: that
          element carries no current, almost always a mistyped node
          name. A warning — the system is still solvable. *)
  | Opamp_drive_conflict of { opamp : string; vsource : string }
      (** An opamp output node is also a terminal of an independent
          voltage source: two ideal drivers contend for the node. *)

val severity : issue -> [ `Error | `Warning ]
(** Every issue is an error except {!Dangling_node}. *)

val issue_to_string : issue -> string

val check : Netlist.t -> (unit, issue list) result
(** [Ok ()] when the netlist passes every check; otherwise all issues
    found, warnings included. *)

val check_exn : Netlist.t -> unit
(** Raises [Invalid_argument] with a readable message when {!check}
    reports any error-severity issue. Warnings alone do not raise, so
    solver pipelines tolerate lint-level concerns. *)
