(** Structural sanity checks on netlists.

    Catching modelling mistakes before they reach the solver: missing
    ground, floating subcircuits, non-positive passive values, dangling
    current-sense references, self-looped two-terminal elements. *)

type issue =
  | No_ground  (** No element touches node "0". *)
  | Disconnected of string list
      (** Nodes not connected to ground through any element. *)
  | Nonpositive_value of string  (** R, L or C with value <= 0. *)
  | Missing_sense of { element : string; vsense : string }
      (** CCVS/CCCS referencing an unknown or non-V element. *)
  | Self_loop of string  (** Two-terminal element with both ends on one node. *)
  | Empty_netlist

val issue_to_string : issue -> string

val check : Netlist.t -> (unit, issue list) result
(** [Ok ()] when the netlist passes every check; otherwise all issues
    found. *)

val check_exn : Netlist.t -> unit
(** Raises [Invalid_argument] with a readable message on failure. *)
