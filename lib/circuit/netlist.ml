module StringSet = Set.Make (String)

type t = { title : string; rev_elements : Element.t list; names : StringSet.t }
(* Elements kept in reverse insertion order; [names] caches uniqueness. *)

let empty ?(title = "untitled") () =
  { title; rev_elements = []; names = StringSet.empty }

let title t = t.title
let elements t = List.rev t.rev_elements

let add e t =
  let n = Element.name e in
  if StringSet.mem n t.names then
    invalid_arg (Printf.sprintf "Netlist.add: duplicate element name %S" n);
  { t with rev_elements = e :: t.rev_elements; names = StringSet.add n t.names }

let of_elements ?title es =
  List.fold_left (fun acc e -> add e acc) (empty ?title ()) es

let resistor ~name n1 n2 value t = add (Element.Resistor { name; n1; n2; value }) t
let capacitor ~name n1 n2 value t = add (Element.Capacitor { name; n1; n2; value }) t
let inductor ~name n1 n2 value t = add (Element.Inductor { name; n1; n2; value }) t
let vsource ~name npos nneg value t = add (Element.Vsource { name; npos; nneg; value }) t
let isource ~name npos nneg value t = add (Element.Isource { name; npos; nneg; value }) t

let vcvs ~name npos nneg cpos cneg gain t =
  add (Element.Vcvs { name; npos; nneg; cpos; cneg; gain }) t

let vccs ~name npos nneg cpos cneg gm t =
  add (Element.Vccs { name; npos; nneg; cpos; cneg; gm }) t

let opamp ?(model = Element.Ideal) ~name ~inp ~inn ~out t =
  add (Element.Opamp { name; inp; inn; out; model }) t

let find t n = List.find_opt (fun e -> Element.name e = n) t.rev_elements
let find_exn t n = match find t n with Some e -> e | None -> raise Not_found
let mem t n = StringSet.mem n t.names

let nodes t =
  let all =
    List.fold_left
      (fun acc e -> List.fold_left (fun acc n -> StringSet.add n acc) acc (Element.nodes e))
      StringSet.empty t.rev_elements
  in
  StringSet.elements all

let internal_nodes t = List.filter (fun n -> n <> Element.ground) (nodes t)

let opamps t =
  List.filter (function Element.Opamp _ -> true | _ -> false) (elements t)

let passives t = List.filter Element.is_passive (elements t)
let size t = List.length t.rev_elements

let replace e t =
  let n = Element.name e in
  if not (StringSet.mem n t.names) then raise Not_found;
  let swap e' = if Element.name e' = n then e else e' in
  { t with rev_elements = List.map swap t.rev_elements }

let remove n t =
  if not (StringSet.mem n t.names) then raise Not_found;
  { t with
    rev_elements = List.filter (fun e -> Element.name e <> n) t.rev_elements;
    names = StringSet.remove n t.names }

let map_value ~name ~f t =
  let e = find_exn t name in
  match Element.value e with
  | None ->
      invalid_arg
        (Printf.sprintf "Netlist.map_value: element %S has no scalar parameter" name)
  | Some v -> replace (Element.with_value e (f v)) t

let fresh_node t ~prefix =
  let used = StringSet.of_list (nodes t) in
  let rec search k =
    let candidate = Printf.sprintf "%s%d" prefix k in
    if StringSet.mem candidate used then search (k + 1) else candidate
  in
  if StringSet.mem prefix used then search 1 else prefix

let pp ppf t =
  Format.fprintf ppf "* %s@." t.title;
  List.iter (fun e -> Format.fprintf ppf "%a@." Element.pp e) (elements t)
