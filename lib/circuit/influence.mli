(** Structural influence analysis: which elements can affect an output
    at all.

    The paper's conclusion names its bottleneck — "the fault
    detectability matrix construction that implies extensive fault
    simulation" — and proposes "using structural information to select
    a first subset of configurations" as future work. This module is
    that structural pass: a backward reachability over the netlist
    graph that soundly over-approximates the set of elements able to
    influence the output voltage. An element outside the set is
    {e guaranteed} undetectable (its faults cannot move the output);
    elements inside may or may not be detectable, which fault
    simulation then decides.

    Propagation rules (ideal elements):
    - a passive element couples its two terminals symmetrically, but
      only through terminals that are not {e stiff} (driven by an ideal
      source: a V source's positive node or a VCVS/opamp output, with
      the other terminal grounded);
    - an opamp or VCVS propagates influence from its output to its
      controlling nodes;
    - current-controlled sources propagate to the terminals of their
      sensing source. *)

type t

val analyse : output:string -> Netlist.t -> t

val influential_nodes : t -> string list
(** Nodes whose voltage can affect the output, sorted. *)

val can_affect_output : t -> string -> bool
(** [can_affect_output t element] — false means faults on [element]
    are structurally undetectable at the output. Raises [Not_found]
    for an unknown element. *)

val influential_passives : t -> string list
(** The passive elements that can affect the output, in netlist
    order — the candidate fault set worth simulating. *)
