type node = string

type opamp_model =
  | Ideal
  | Single_pole of { dc_gain : float; pole_hz : float }

type t =
  | Resistor of { name : string; n1 : node; n2 : node; value : float }
  | Capacitor of { name : string; n1 : node; n2 : node; value : float }
  | Inductor of { name : string; n1 : node; n2 : node; value : float }
  | Vsource of { name : string; npos : node; nneg : node; value : float }
  | Isource of { name : string; npos : node; nneg : node; value : float }
  | Vcvs of { name : string; npos : node; nneg : node; cpos : node; cneg : node; gain : float }
  | Vccs of { name : string; npos : node; nneg : node; cpos : node; cneg : node; gm : float }
  | Ccvs of { name : string; npos : node; nneg : node; vsense : string; r : float }
  | Cccs of { name : string; npos : node; nneg : node; vsense : string; gain : float }
  | Opamp of { name : string; inp : node; inn : node; out : node; model : opamp_model }

let ground = "0"

let name = function
  | Resistor { name; _ }
  | Capacitor { name; _ }
  | Inductor { name; _ }
  | Vsource { name; _ }
  | Isource { name; _ }
  | Vcvs { name; _ }
  | Vccs { name; _ }
  | Ccvs { name; _ }
  | Cccs { name; _ }
  | Opamp { name; _ } -> name

let nodes = function
  | Resistor { n1; n2; _ } | Capacitor { n1; n2; _ } | Inductor { n1; n2; _ } ->
      [ n1; n2 ]
  | Vsource { npos; nneg; _ } | Isource { npos; nneg; _ } -> [ npos; nneg ]
  | Vcvs { npos; nneg; cpos; cneg; _ } | Vccs { npos; nneg; cpos; cneg; _ } ->
      [ npos; nneg; cpos; cneg ]
  | Ccvs { npos; nneg; _ } | Cccs { npos; nneg; _ } -> [ npos; nneg ]
  | Opamp { inp; inn; out; _ } -> [ inp; inn; out ]

let value = function
  | Resistor { value; _ } | Capacitor { value; _ } | Inductor { value; _ }
  | Vsource { value; _ } | Isource { value; _ } -> Some value
  | Vcvs { gain; _ } -> Some gain
  | Vccs { gm; _ } -> Some gm
  | Ccvs { r; _ } -> Some r
  | Cccs { gain; _ } -> Some gain
  | Opamp { model = Single_pole { dc_gain; _ }; _ } -> Some dc_gain
  | Opamp { model = Ideal; _ } -> None

let with_value e v =
  match e with
  | Resistor r -> Resistor { r with value = v }
  | Capacitor c -> Capacitor { c with value = v }
  | Inductor l -> Inductor { l with value = v }
  | Vsource s -> Vsource { s with value = v }
  | Isource s -> Isource { s with value = v }
  | Vcvs s -> Vcvs { s with gain = v }
  | Vccs s -> Vccs { s with gm = v }
  | Ccvs s -> Ccvs { s with r = v }
  | Cccs s -> Cccs { s with gain = v }
  | Opamp ({ model = Single_pole sp; _ } as o) ->
      Opamp { o with model = Single_pole { sp with dc_gain = v } }
  | Opamp { model = Ideal; _ } ->
      invalid_arg "Element.with_value: ideal opamp has no scalar parameter"

let is_passive = function
  | Resistor _ | Capacitor _ | Inductor _ -> true
  | Vsource _ | Isource _ | Vcvs _ | Vccs _ | Ccvs _ | Cccs _ | Opamp _ -> false

let kind_letter = function
  | Resistor _ -> 'R'
  | Capacitor _ -> 'C'
  | Inductor _ -> 'L'
  | Vsource _ -> 'V'
  | Isource _ -> 'I'
  | Vcvs _ -> 'E'
  | Vccs _ -> 'G'
  | Ccvs _ -> 'H'
  | Cccs _ -> 'F'
  | Opamp _ -> 'X'

let pp ppf e =
  match e with
  | Resistor { name; n1; n2; value } ->
      Format.fprintf ppf "%s %s %s %s" name n1 n2 (Util.Quantity.to_string value)
  | Capacitor { name; n1; n2; value } ->
      Format.fprintf ppf "%s %s %s %s" name n1 n2 (Util.Quantity.to_string value)
  | Inductor { name; n1; n2; value } ->
      Format.fprintf ppf "%s %s %s %s" name n1 n2 (Util.Quantity.to_string value)
  | Vsource { name; npos; nneg; value } ->
      Format.fprintf ppf "%s %s %s AC %g" name npos nneg value
  | Isource { name; npos; nneg; value } ->
      Format.fprintf ppf "%s %s %s AC %g" name npos nneg value
  | Vcvs { name; npos; nneg; cpos; cneg; gain } ->
      Format.fprintf ppf "%s %s %s %s %s %g" name npos nneg cpos cneg gain
  | Vccs { name; npos; nneg; cpos; cneg; gm } ->
      Format.fprintf ppf "%s %s %s %s %s %g" name npos nneg cpos cneg gm
  | Ccvs { name; npos; nneg; vsense; r } ->
      Format.fprintf ppf "%s %s %s %s %g" name npos nneg vsense r
  | Cccs { name; npos; nneg; vsense; gain } ->
      Format.fprintf ppf "%s %s %s %s %g" name npos nneg vsense gain
  | Opamp { name; inp; inn; out; model } -> (
      match model with
      | Ideal -> Format.fprintf ppf "%s %s %s %s OPAMP" name inp inn out
      | Single_pole { dc_gain; pole_hz } ->
          Format.fprintf ppf "%s %s %s %s OPAMP A0=%g FP=%g" name inp inn out dc_gain
            pole_hz)
