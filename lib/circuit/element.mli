(** Circuit elements.

    Nodes are named by strings; the ground node is ["0"]. Controlled
    sources that sense a current (CCVS, CCCS) reference the name of a
    voltage source whose branch current is the controlling quantity,
    following SPICE conventions. *)

type node = string

type opamp_model =
  | Ideal  (** Nullor: infinite gain, the solver enforces v+ = v-. *)
  | Single_pole of { dc_gain : float; pole_hz : float }
      (** A(s) = dc_gain / (1 + s / (2 pi pole_hz)). *)

type t =
  | Resistor of { name : string; n1 : node; n2 : node; value : float }
  | Capacitor of { name : string; n1 : node; n2 : node; value : float }
  | Inductor of { name : string; n1 : node; n2 : node; value : float }
  | Vsource of { name : string; npos : node; nneg : node; value : float }
      (** Independent voltage source; [value] is the AC amplitude. *)
  | Isource of { name : string; npos : node; nneg : node; value : float }
  | Vcvs of { name : string; npos : node; nneg : node; cpos : node; cneg : node; gain : float }
  | Vccs of { name : string; npos : node; nneg : node; cpos : node; cneg : node; gm : float }
  | Ccvs of { name : string; npos : node; nneg : node; vsense : string; r : float }
  | Cccs of { name : string; npos : node; nneg : node; vsense : string; gain : float }
  | Opamp of { name : string; inp : node; inn : node; out : node; model : opamp_model }
      (** Single-ended opamp: output referenced to ground. *)

val ground : node

val name : t -> string
val nodes : t -> node list
(** All terminals of the element, in declaration order. *)

val value : t -> float option
(** The scalar parameter of the element (resistance, capacitance,
    gain, ...); [None] for elements without one (ideal opamps). *)

val with_value : t -> float -> t
(** Replace the scalar parameter; raises [Invalid_argument] for
    elements without one. *)

val is_passive : t -> bool
(** True for R, L, C — the fault universe of the paper. *)

val kind_letter : t -> char
(** SPICE-style leading letter: 'R', 'C', 'L', 'V', 'I', 'E', 'G',
    'H', 'F', 'X' (opamp). *)

val pp : Format.formatter -> t -> unit
