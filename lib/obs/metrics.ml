(* Named counters and histograms, sharded per domain (see Sharded) and
   merged on read. The registry is process-global: the campaign layers
   increment by name from any domain without threading handles. *)

(* Log-spaced duration buckets in seconds; the last bucket is the
   overflow. Values are generic floats, so the same bounds double as
   decade buckets for any positive quantity. *)
let bucket_bounds = [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.0; 10.0 |]
let n_buckets = Array.length bucket_bounds + 1

type histogram_stats = {
  count : int;
  sum : float;
  min : float;
  max : float;
  buckets : (float * int) list;
}

type snapshot = {
  counters : (string * int) list;
  histograms : (string * histogram_stats) list;
}

type hist = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  bucket_counts : int array;
}

type shard = {
  c_tbl : (string, int ref) Hashtbl.t;
  h_tbl : (string, hist) Hashtbl.t;
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let shards : shard Sharded.t =
  Sharded.create (fun () -> { c_tbl = Hashtbl.create 16; h_tbl = Hashtbl.create 16 })

let incr ?(by = 1) name =
  if enabled () then begin
    let s = Sharded.get shards in
    match Hashtbl.find_opt s.c_tbl name with
    | Some r -> r := !r + by
    | None -> Hashtbl.add s.c_tbl name (ref by)
  end

let observe name v =
  if enabled () then begin
    let s = Sharded.get shards in
    let h =
      match Hashtbl.find_opt s.h_tbl name with
      | Some h -> h
      | None ->
          let h =
            {
              h_count = 0;
              h_sum = 0.0;
              h_min = infinity;
              h_max = neg_infinity;
              bucket_counts = Array.make n_buckets 0;
            }
          in
          Hashtbl.add s.h_tbl name h;
          h
    in
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v;
    let rec slot i =
      if i >= Array.length bucket_bounds || v <= bucket_bounds.(i) then i
      else slot (i + 1)
    in
    let i = slot 0 in
    h.bucket_counts.(i) <- h.bucket_counts.(i) + 1
  end

let now () = Unix.gettimeofday ()

let time name f =
  if not (enabled ()) then f ()
  else begin
    let t0 = now () in
    Fun.protect ~finally:(fun () -> observe name (now () -. t0)) f
  end

module SMap = Map.Make (String)

let stats_of_hist h =
  {
    count = h.h_count;
    sum = h.h_sum;
    min = h.h_min;
    max = h.h_max;
    buckets =
      List.init n_buckets (fun i ->
          ( (if i < Array.length bucket_bounds then bucket_bounds.(i) else infinity),
            h.bucket_counts.(i) ));
  }

let merge_stats a b =
  {
    count = a.count + b.count;
    sum = a.sum +. b.sum;
    min = Float.min a.min b.min;
    max = Float.max a.max b.max;
    buckets = List.map2 (fun (ub, n) (_, m) -> (ub, n + m)) a.buckets b.buckets;
  }

let snapshot () =
  let counters =
    Sharded.fold shards ~init:SMap.empty ~f:(fun acc s ->
        Hashtbl.fold
          (fun name r acc ->
            SMap.update name
              (function None -> Some !r | Some v -> Some (v + !r))
              acc)
          s.c_tbl acc)
  in
  let histograms =
    Sharded.fold shards ~init:SMap.empty ~f:(fun acc s ->
        Hashtbl.fold
          (fun name h acc ->
            let st = stats_of_hist h in
            SMap.update name
              (function None -> Some st | Some prev -> Some (merge_stats prev st))
              acc)
          s.h_tbl acc)
  in
  { counters = SMap.bindings counters; histograms = SMap.bindings histograms }

let counter snap name =
  match List.assoc_opt name snap.counters with Some v -> v | None -> 0

let reset () =
  Sharded.iter shards ~f:(fun s ->
      Hashtbl.reset s.c_tbl;
      Hashtbl.reset s.h_tbl)
