(* Per-domain sharding for observability state.

   Each domain lazily materializes its own shard via DLS on first use,
   registering it in a mutex-protected list so a reader can fold over
   every shard ever created (shards of terminated domains stay
   registered — their accumulated values must survive the join). A
   shard is only ever written by its owning domain; [fold] reads other
   domains' shards without synchronization, which in the OCaml 5 memory
   model can observe slightly stale values but never tears or faults.
   Reads are exact whenever the writing domains have been joined, which
   is when snapshots are taken. *)

type 'a t = {
  mutex : Mutex.t;
  mutable shards : 'a list;
  key : 'a Domain.DLS.key;
}

let create (make : unit -> 'a) : 'a t =
  let cell = ref None in
  let key =
    Domain.DLS.new_key (fun () ->
        let s = make () in
        (match !cell with
        | Some t ->
            Mutex.lock t.mutex;
            t.shards <- s :: t.shards;
            Mutex.unlock t.mutex
        | None -> assert false (* the key is first used after [create] returns *));
        s)
  in
  let t = { mutex = Mutex.create (); shards = []; key } in
  cell := Some t;
  t

let get t = Domain.DLS.get t.key

let fold t ~init ~f =
  Mutex.lock t.mutex;
  let shards = t.shards in
  Mutex.unlock t.mutex;
  List.fold_left f init shards

let iter t ~f = fold t ~init:() ~f:(fun () s -> f s)
