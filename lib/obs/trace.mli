(** Span-based phase timing with a Chrome-trace-format JSON exporter.

    Disabled (the default), every operation is a no-op behind one
    atomic load. Enabled, each completed span records one "complete"
    event tagged with its domain id, so a multi-domain campaign shows
    one lane per worker — scheduler idle is the gap between spans on a
    lane. Load the exported file in [chrome://tracing] or
    {{:https://ui.perfetto.dev}Perfetto}. *)

type event = { name : string; ts_us : float; dur_us : float; tid : int }
(** One completed span: microseconds since process start, duration,
    and the owning domain's id. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val span : string -> (unit -> 'a) -> 'a
(** [span name f] times [f ()] as one event (recorded even on raise);
    nests by call structure. Exactly [f ()] when disabled. *)

val begin_ : string -> unit
(** Open a span on this domain's stack — for phases that do not fit a
    closure. Must be closed by {!end_} on the same domain. *)

val end_ : unit -> unit
(** Close the innermost {!begin_} span; no-op on an empty stack. *)

val events : unit -> event list
(** All completed spans from every domain, sorted by start time. *)

val export_chrome : unit -> string
(** The Chrome trace-event JSON document for {!events}. *)

val write : string -> unit
(** Write {!export_chrome} to a file. *)

val reset : unit -> unit
(** Drop all recorded events and any open begin/end stacks. *)
