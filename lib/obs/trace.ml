(* Span-based phase timing with a Chrome-trace-format exporter.

   Spans nest by call structure ([span]) or by an explicit per-domain
   begin/end stack. Completed spans are recorded as Chrome "complete"
   events (ph:"X"); viewers (chrome://tracing, Perfetto) reconstruct
   the nesting per thread id from ts/dur containment, so one flat
   buffer per domain suffices. *)

type event = { name : string; ts_us : float; dur_us : float; tid : int }

type buffer = {
  mutable events : event list;
  mutable stack : (string * float) list;  (* open begin_/end_ spans *)
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* All timestamps are microseconds since process start, so a trace
   merged from several domains shares one time base. *)
let epoch = Unix.gettimeofday ()

let buffers : buffer Sharded.t =
  Sharded.create (fun () -> { events = []; stack = [] })

let tid () = (Domain.self () :> int)

let record name ~t0 ~t1 =
  let buf = Sharded.get buffers in
  buf.events <-
    {
      name;
      ts_us = (t0 -. epoch) *. 1e6;
      dur_us = (t1 -. t0) *. 1e6;
      tid = tid ();
    }
    :: buf.events

let span name f =
  if not (enabled ()) then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    Fun.protect ~finally:(fun () -> record name ~t0 ~t1:(Unix.gettimeofday ())) f
  end

let begin_ name =
  if enabled () then begin
    let buf = Sharded.get buffers in
    buf.stack <- (name, Unix.gettimeofday ()) :: buf.stack
  end

let end_ () =
  if enabled () then begin
    let buf = Sharded.get buffers in
    match buf.stack with
    | [] -> ()  (* unmatched end_: ignore rather than poison the campaign *)
    | (name, t0) :: rest ->
        buf.stack <- rest;
        record name ~t0 ~t1:(Unix.gettimeofday ())
  end

let events () =
  Sharded.fold buffers ~init:[] ~f:(fun acc b -> List.rev_append b.events acc)
  |> List.sort (fun a b -> Float.compare a.ts_us b.ts_us)

(* Minimal JSON string escape — span names are code-controlled, but a
   stray quote must not corrupt the trace file. *)
let escape s =
  let buf = Buffer.create (String.length s + 4) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let export_chrome () =
  let evs = events () in
  let buf = Buffer.create (256 + (96 * List.length evs)) in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n{\"name\":\"%s\",\"cat\":\"mcdft\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f}"
           (escape e.name) e.tid e.ts_us e.dur_us))
    evs;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let write path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (export_chrome ()))

let reset () =
  Sharded.iter buffers ~f:(fun b ->
      b.events <- [];
      b.stack <- [])
