(** Process-global registry of named counters and histograms.

    Writes go to a per-domain shard (no cross-domain contention on the
    hot path); {!snapshot} merges every shard on read. All operations
    are no-ops while the registry is disabled (the default), so
    instrumented code pays one atomic load and a branch per call site —
    the "no-op sink" the campaign bench holds to within noise.

    Counter totals are deterministic: the same campaign run with any
    worker count accumulates identical counts, only attributed to
    different shards. Timings ({!observe}/{!time}) are not.

    {!reset} and exact {!snapshot}s assume quiescence — call them when
    no worker domain is mid-campaign (the scheduler joins its helpers
    before returning, so call sites outside {!Util.Parallel.for_} are
    safe). *)

type histogram_stats = {
  count : int;
  sum : float;
  min : float;  (** [infinity] when [count = 0] *)
  max : float;  (** [neg_infinity] when [count = 0] *)
  buckets : (float * int) list;
      (** [(upper_bound, count)] per log-spaced bucket; the last bound
          is [infinity] (overflow). *)
}

type snapshot = {
  counters : (string * int) list;
  histograms : (string * histogram_stats) list;
}
(** Both lists are sorted by name. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val incr : ?by:int -> string -> unit
(** Add [by] (default 1) to the named counter in this domain's shard. *)

val observe : string -> float -> unit
(** Record one value into the named histogram. *)

val now : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]); the time base used by
    {!time}. *)

val time : string -> (unit -> 'a) -> 'a
(** [time name f] runs [f ()] and records its wall-clock duration in
    seconds into the [name] histogram; when disabled it is exactly
    [f ()]. The duration is recorded even if [f] raises. *)

val snapshot : unit -> snapshot
(** Merge every shard. *)

val counter : snapshot -> string -> int
(** Counter value by name, 0 when absent. *)

val reset : unit -> unit
(** Clear every shard (the enabled flag is left as-is). *)
