module IntSet = Set.Make (Int)

type t = { n_candidates : int; clauses : IntSet.t list }

let column_candidates d j =
  let n = Array.length d in
  let rec collect i acc =
    if i >= n then acc
    else collect (i + 1) (if d.(i).(j) then IntSet.add i acc else acc)
  in
  collect 0 IntSet.empty

let of_matrix d =
  let n = Array.length d in
  let m = if n = 0 then 0 else Array.length d.(0) in
  let clauses =
    List.filter_map
      (fun j ->
        let c = column_candidates d j in
        if IntSet.is_empty c then None else Some c)
      (List.init m Fun.id)
  in
  { n_candidates = n; clauses }

let uncoverable_faults d =
  let m = if Array.length d = 0 then 0 else Array.length d.(0) in
  List.filter (fun j -> IntSet.is_empty (column_candidates d j)) (List.init m Fun.id)

let essentials t =
  List.fold_left
    (fun acc clause ->
      if IntSet.cardinal clause = 1 then IntSet.union acc clause else acc)
    IntSet.empty t.clauses

let reduce t ~chosen =
  {
    t with
    clauses = List.filter (fun c -> IntSet.is_empty (IntSet.inter c chosen)) t.clauses;
  }

let is_cover t set =
  List.for_all (fun c -> not (IntSet.is_empty (IntSet.inter c set))) t.clauses

let candidates t = List.fold_left IntSet.union IntSet.empty t.clauses

let pp ppf t =
  let pp_clause ppf c =
    Format.fprintf ppf "(%s)"
      (String.concat "+" (List.map (Printf.sprintf "C%d") (IntSet.elements c)))
  in
  match t.clauses with
  | [] -> Format.fprintf ppf "1"
  | clauses ->
      Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ".") pp_clause ppf
        clauses
