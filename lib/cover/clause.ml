module IntSet = Set.Make (Int)

type clause = { lits : IntSet.t; need : int; tag : int }

type t = { n_candidates : int; clauses : clause list }

let clause ?(need = 1) ?(tag = -1) lits =
  if need < 1 then invalid_arg "Clause.clause: need must be at least 1";
  { lits; need; tag }

let of_sets ~n_candidates sets =
  { n_candidates; clauses = List.mapi (fun i s -> clause ~tag:i s) sets }

let column_candidates d j =
  let n = Array.length d in
  let rec collect i acc =
    if i >= n then acc
    else collect (i + 1) (if d.(i).(j) then IntSet.add i acc else acc)
  in
  collect 0 IntSet.empty

let of_matrix ?(n = 1) d =
  if n < 1 then invalid_arg "Clause.of_matrix: n must be at least 1";
  let rows = Array.length d in
  let m = if rows = 0 then 0 else Array.length d.(0) in
  let clauses =
    List.filter_map
      (fun j ->
        let c = column_candidates d j in
        let avail = IntSet.cardinal c in
        (* the fundamental requirement is the *maximum achievable*
           coverage: a fault detectable in fewer than [n] views keeps
           its achievable multiplicity rather than poisoning the whole
           instance; short columns are reported via short_faults *)
        if avail = 0 then None else Some (clause ~need:(Int.min n avail) ~tag:j c))
      (List.init m Fun.id)
  in
  { n_candidates = rows; clauses }

let of_matrix_exact ~n d =
  if n < 1 then invalid_arg "Clause.of_matrix_exact: n must be at least 1";
  let rows = Array.length d in
  let m = if rows = 0 then 0 else Array.length d.(0) in
  let clauses =
    List.map (fun j -> clause ~need:n ~tag:j (column_candidates d j)) (List.init m Fun.id)
  in
  { n_candidates = rows; clauses }

let uncoverable_faults d =
  let m = if Array.length d = 0 then 0 else Array.length d.(0) in
  List.filter (fun j -> IntSet.is_empty (column_candidates d j)) (List.init m Fun.id)

let short_faults ~n d =
  let m = if Array.length d = 0 then 0 else Array.length d.(0) in
  List.filter_map
    (fun j ->
      let avail = IntSet.cardinal (column_candidates d j) in
      if avail > 0 && avail < n then Some (j, avail) else None)
    (List.init m Fun.id)

let essentials t =
  (* every literal of a clause with zero slack is forced into every
     solution (for need = 1 these are the singleton clauses) *)
  List.fold_left
    (fun acc c ->
      if IntSet.cardinal c.lits = c.need then IntSet.union acc c.lits else acc)
    IntSet.empty t.clauses

let reduce t ~chosen =
  {
    t with
    clauses =
      List.filter_map
        (fun c ->
          let hit = IntSet.cardinal (IntSet.inter c.lits chosen) in
          if hit >= c.need then None
          else Some { c with lits = IntSet.diff c.lits chosen; need = c.need - hit })
        t.clauses;
  }

let satisfied c set = IntSet.cardinal (IntSet.inter c.lits set) >= c.need

let is_cover t set = List.for_all (fun c -> satisfied c set) t.clauses

let infeasible_tags t =
  List.filter_map
    (fun c -> if IntSet.cardinal c.lits < c.need then Some c.tag else None)
    t.clauses

let candidates t =
  List.fold_left (fun acc c -> IntSet.union acc c.lits) IntSet.empty t.clauses

let max_need t = List.fold_left (fun acc c -> Int.max acc c.need) 1 t.clauses

let pp ppf t =
  let pp_clause ppf c =
    Format.fprintf ppf "(%s)%s"
      (String.concat "+" (List.map (Printf.sprintf "C%d") (IntSet.elements c.lits)))
      (if c.need = 1 then "" else Printf.sprintf ">=%d" c.need)
  in
  match t.clauses with
  | [] -> Format.fprintf ppf "1"
  | clauses ->
      Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ".") pp_clause ppf
        clauses
