(** The covering problem ξ = ∏_faults (Σ_configs d_ij · C_i) in
    product-of-sums form (paper §4.1).

    Candidates are identified by integers (configuration indices); each
    clause is the set of candidates that detect one fault. A solution
    is a candidate set hitting every clause. *)

module IntSet : Set.S with type elt = int

type t = {
  n_candidates : int;
  clauses : IntSet.t list;
      (** One clause per coverable fault, in fault order. Empty clauses
          are never present (uncoverable faults are reported
          separately). *)
}

val of_matrix : bool array array -> t
(** [of_matrix d] where [d.(i).(j)] says candidate [i] covers fault
    [j]. Faults covered by no candidate are skipped (they do not
    constrain the fundamental requirement, which is to reach the
    {e maximum achievable} coverage). *)

val uncoverable_faults : bool array array -> int list
(** Fault columns with no covering candidate. *)

val essentials : t -> IntSet.t
(** Candidates appearing in singleton clauses — the paper's essential
    configurations, forced into every solution. *)

val reduce : t -> chosen:IntSet.t -> t
(** Drop every clause already hit by [chosen] — the paper's reduced
    fault detectability matrix. *)

val is_cover : t -> IntSet.t -> bool
(** Does the candidate set hit every clause? True on the empty clause
    list. *)

val candidates : t -> IntSet.t
(** All candidates appearing in at least one clause. *)

val pp : Format.formatter -> t -> unit
(** Render as the paper does: (C0+C2+C4+C6).(C2+C4+C6)... *)
