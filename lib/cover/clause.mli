(** The covering problem ξ = ∏_faults (Σ_configs d_ij · C_i) in
    product-of-sums form (paper §4.1), generalized to {e multiplicity}
    covering in the spirit of n-detection test generation (Pomeranz &
    Reddy, arXiv:0710.4735): each clause carries a required count
    [need], and a solution must pick at least [need] distinct
    candidates from every clause. [need = 1] is the paper's classical
    unate covering.

    Candidates are identified by integers (configuration indices); each
    clause is the set of candidates that detect one fault. *)

module IntSet : Set.S with type elt = int

type clause = {
  lits : IntSet.t;  (** Candidates that detect this fault. *)
  need : int;  (** How many distinct [lits] a solution must include (≥ 1). *)
  tag : int;
      (** Caller-meaningful identity, reported on infeasibility — the
          fault column for matrix-built systems, the list position for
          {!of_sets}, -1 when unset. *)
}

type t = { n_candidates : int; clauses : clause list }

val clause : ?need:int -> ?tag:int -> IntSet.t -> clause
(** [need] defaults to 1, [tag] to -1. Raises [Invalid_argument] when
    [need < 1]. *)

val of_sets : n_candidates:int -> IntSet.t list -> t
(** Classical (need = 1) system from plain candidate sets; clause [i]
    gets [tag = i]. *)

val of_matrix : ?n:int -> bool array array -> t
(** [of_matrix ~n d] where [d.(i).(j)] says candidate [i] covers fault
    [j]; clause [j] requires [min n (detecting candidates)] hits
    ([n] defaults to 1). Faults covered by no candidate are skipped and
    faults with fewer than [n] detecting candidates keep their
    achievable multiplicity — the fundamental requirement is to reach
    the {e maximum achievable} coverage; see {!uncoverable_faults} and
    {!short_faults} for the report. *)

val of_matrix_exact : n:int -> bool array array -> t
(** Like {!of_matrix} but every clause requires exactly [n] hits, with
    no capping and no skipping — columns with fewer than [n] detecting
    candidates (including zero) yield unsatisfiable clauses, which the
    solvers report as [Infeasible] naming those tags. *)

val uncoverable_faults : bool array array -> int list
(** Fault columns with no covering candidate. *)

val short_faults : n:int -> bool array array -> (int * int) list
(** [(fault, available)] for columns detectable in at least one but
    fewer than [n] candidates — the faults whose multiplicity
    {!of_matrix} had to cap. *)

val essentials : t -> IntSet.t
(** Candidates forced into every solution: all literals of any clause
    with zero slack ([cardinal lits = need]) — for need = 1 exactly the
    paper's essential configurations from singleton clauses. *)

val reduce : t -> chosen:IntSet.t -> t
(** Subtract [chosen] from the system: clauses already hit ≥ [need]
    times are dropped, the rest lose the chosen literals and keep the
    residual requirement — the paper's reduced fault detectability
    matrix, generalized to residual multiplicities. *)

val satisfied : clause -> IntSet.t -> bool
(** Does the candidate set hit this clause at least [need] times? *)

val is_cover : t -> IntSet.t -> bool
(** Does the candidate set satisfy every clause? True on the empty
    clause list. *)

val infeasible_tags : t -> int list
(** Tags of clauses no candidate set can satisfy ([cardinal lits <
    need]), in clause order — empty exactly when the system is
    feasible. *)

val candidates : t -> IntSet.t
(** All candidates appearing in at least one clause. *)

val max_need : t -> int
(** The largest clause requirement (1 on the empty system). *)

val pp : Format.formatter -> t -> unit
(** Render as the paper does: (C0+C2+C4+C6).(C2+C4+C6)...; clauses with
    need > 1 carry a [>=n] suffix. *)
