(** Petrick's method: expand the product-of-sums ξ into a sum of
    products. Every product term is a configuration set satisfying the
    fundamental requirement (maximum fault coverage).

    Multiplicity clauses (need > 1) distribute over their
    [need]-element literal subsets: any solution contains at least one
    such subset in full. An unsatisfiable clause ([cardinal lits <
    need]) has no subsets, so both expansions return [] — ξ ≡ 0;
    feasibility should be checked up front via
    {!Clause.infeasible_tags} where that matters.

    Two variants are exposed because the paper's worked example (§4.1)
    develops ξ applying idempotence but {e not} absorption — its five
    product terms include absorbable ones like C1·C2·C5 ⊃ C1·C2. *)

val expand_raw : Clause.t -> Clause.IntSet.t list
(** Distribute, apply idempotence (x·x = x) and drop duplicate terms,
    but keep absorbable terms — reproduces the paper's ξ expression
    verbatim. Terms are ordered by the derivation (clause order), then
    deduplicated keeping first occurrences. Exponential in the worst
    case; intended for paper-scale instances. *)

val expand : Clause.t -> Clause.IntSet.t list
(** Full Petrick expansion with absorption: the result is the antichain
    of all minimal (irredundant) covers, sorted by cardinality then
    lexicographically. *)

val cheapest : ?cost:(int -> float) -> Clause.IntSet.t list -> Clause.IntSet.t list
(** The terms of minimum total cost (default cost: 1 per candidate,
    i.e. cardinality) — the paper's 2nd-order selection. Returns all
    ties. *)
