module IntSet = Clause.IntSet

let cost_of ?(cost = fun _ -> 1.0) set = IntSet.fold (fun c acc -> acc +. cost c) set 0.0

let greedy ?(cost = fun _ -> 1.0) (t : Clause.t) =
  let rec loop clauses chosen =
    match clauses with
    | [] -> chosen
    | _ ->
        let candidates =
          List.fold_left IntSet.union IntSet.empty clauses |> IntSet.elements
        in
        let gain c =
          let hits =
            List.length (List.filter (fun clause -> IntSet.mem c clause) clauses)
          in
          float_of_int hits /. Float.max 1e-12 (cost c)
        in
        let best =
          List.fold_left
            (fun acc c ->
              match acc with
              | None -> Some (c, gain c)
              | Some (_, g) -> if gain c > g then Some (c, gain c) else acc)
            None candidates
        in
        let c = match best with Some (c, _) -> c | None -> assert false in
        let remaining = List.filter (fun clause -> not (IntSet.mem c clause)) clauses in
        loop remaining (IntSet.add c chosen)
  in
  loop t.Clause.clauses IntSet.empty

(* Lower bound: greedily pick pairwise-disjoint clauses; any cover
   needs one candidate per picked clause, each costing at least the
   clause's cheapest literal. *)
let lower_bound ~cost clauses =
  let rec loop clauses acc =
    match clauses with
    | [] -> acc
    | clause :: rest ->
        let min_cost =
          IntSet.fold (fun c m -> Float.min m (cost c)) clause infinity
        in
        let disjoint =
          List.filter (fun c -> IntSet.is_empty (IntSet.inter c clause)) rest
        in
        loop disjoint (acc +. min_cost)
  in
  (* sorting small-first strengthens the bound *)
  let sorted =
    List.sort (fun a b -> Int.compare (IntSet.cardinal a) (IntSet.cardinal b)) clauses
  in
  loop sorted 0.0

(* Essential literals and clause-dominance reductions, applied to a
   fixed point. Returns the forced choices and the residual clauses. *)
let preprocess ~clauses =
  let rec loop clauses forced =
    let singletons =
      List.fold_left
        (fun acc c -> if IntSet.cardinal c = 1 then IntSet.union acc c else acc)
        IntSet.empty clauses
    in
    if not (IntSet.is_empty singletons) then begin
      Obs.Metrics.incr "cover.preprocess_forced" ~by:(IntSet.cardinal singletons);
      let remaining =
        List.filter (fun c -> IntSet.is_empty (IntSet.inter c singletons)) clauses
      in
      loop remaining (IntSet.union forced singletons)
    end
    else begin
      (* clause dominance: a superset clause is implied by its subset *)
      let arr = Array.of_list clauses in
      let n = Array.length arr in
      let keep = Array.make n true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if i <> j && keep.(i) && keep.(j) && IntSet.subset arr.(j) arr.(i)
             && (not (IntSet.equal arr.(i) arr.(j)) || j < i)
          then keep.(i) <- false
        done
      done;
      let reduced = List.filteri (fun i _ -> keep.(i)) (Array.to_list arr) in
      Obs.Metrics.incr "cover.preprocess_dominated" ~by:(n - List.length reduced);
      (forced, reduced)
    end
  in
  loop clauses IntSet.empty

let brute_force ?(cost = fun _ -> 1.0) (t : Clause.t) =
  let candidates = Array.of_list (IntSet.elements (Clause.candidates t)) in
  let k = Array.length candidates in
  if k > 20 then
    invalid_arg
      (Printf.sprintf "Solver.brute_force: %d candidates (limit 20; use exact)" k);
  let best = ref IntSet.empty and best_cost = ref infinity and found = ref false in
  for mask = 0 to (1 lsl k) - 1 do
    let chosen = ref IntSet.empty in
    for i = 0 to k - 1 do
      if mask land (1 lsl i) <> 0 then chosen := IntSet.add candidates.(i) !chosen
    done;
    let chosen = !chosen in
    if Clause.is_cover t chosen then begin
      let c = cost_of ~cost chosen in
      let better =
        (not !found)
        || c < !best_cost -. 1e-12
        || (Float.abs (c -. !best_cost) <= 1e-12
           && List.compare Int.compare (IntSet.elements chosen)
                (IntSet.elements !best)
              < 0)
      in
      if better then begin
        found := true;
        best := chosen;
        best_cost := c
      end
    end
  done;
  !best

let exact ?(cost = fun _ -> 1.0) (t : Clause.t) =
  Obs.Trace.span "cover.exact" @@ fun () ->
  let best = ref None in
  let best_cost = ref infinity in
  let consider chosen =
    let c = cost_of ~cost chosen in
    let better =
      c < !best_cost -. 1e-12
      || (Float.abs (c -. !best_cost) <= 1e-12
         && match !best with
            | Some b -> List.compare Int.compare (IntSet.elements chosen) (IntSet.elements b) < 0
            | None -> true)
    in
    if better then begin
      best := Some chosen;
      best_cost := c
    end
  in
  let rec branch clauses chosen chosen_cost =
    Obs.Metrics.incr "cover.bnb_nodes";
    let forced, clauses = preprocess ~clauses in
    let chosen = IntSet.union chosen forced in
    let chosen_cost = chosen_cost +. cost_of ~cost forced in
    match clauses with
    | [] -> consider chosen
    | _ when chosen_cost +. lower_bound ~cost clauses >= !best_cost -. 1e-12 -> ()
    | clause :: _ ->
        (* branch on the literals of a smallest clause *)
        let smallest =
          List.fold_left
            (fun acc c -> if IntSet.cardinal c < IntSet.cardinal acc then c else acc)
            clause clauses
        in
        IntSet.iter
          (fun c ->
            let remaining =
              List.filter (fun cl -> not (IntSet.mem c cl)) clauses
            in
            branch remaining (IntSet.add c chosen) (chosen_cost +. cost c))
          smallest
  in
  branch t.Clause.clauses IntSet.empty 0.0;
  match !best with Some b -> b | None -> IntSet.empty
