module IntSet = Clause.IntSet

type outcome = Cover of IntSet.t | Infeasible of int list

exception Infeasible_cover of int list

let cover_exn = function
  | Cover s -> s
  | Infeasible tags -> raise (Infeasible_cover tags)

let cost_of ?(cost = fun _ -> 1.0) set = IntSet.fold (fun c acc -> acc +. cost c) set 0.0

(* Residual clause during a solve: the original requirement minus the
   literals already chosen. The [need <= cardinal lits] invariant is
   established by the feasibility precheck and preserved by every
   reduction step (removing a chosen literal decrements both sides). *)
let residuals (t : Clause.t) =
  List.map (fun c -> (c.Clause.lits, c.Clause.need)) t.Clause.clauses

let reduce_by clauses c =
  List.filter_map
    (fun (lits, need) ->
      if IntSet.mem c lits then
        if need = 1 then None else Some (IntSet.remove c lits, need - 1)
      else Some (lits, need))
    clauses

let greedy ?(cost = fun _ -> 1.0) (t : Clause.t) =
  match Clause.infeasible_tags t with
  | _ :: _ as tags -> Infeasible tags
  | [] ->
      let rec loop clauses chosen =
        match clauses with
        | [] -> Cover chosen
        | _ ->
            let candidates =
              List.fold_left (fun acc (lits, _) -> IntSet.union acc lits) IntSet.empty
                clauses
              |> IntSet.elements
            in
            let gain c =
              let hits =
                List.length (List.filter (fun (lits, _) -> IntSet.mem c lits) clauses)
              in
              float_of_int hits /. Float.max 1e-12 (cost c)
            in
            Obs.Metrics.incr "cover.greedy_gain_evals" ~by:(List.length candidates);
            (* one gain evaluation per candidate: the fold carries the
               evaluated score instead of recomputing it on comparison *)
            let best =
              List.fold_left
                (fun acc c ->
                  let g = gain c in
                  match acc with
                  | None -> Some (c, g)
                  | Some (_, gb) -> if g > gb then Some (c, g) else acc)
                None candidates
            in
            (* candidates is non-empty: every live clause kept need <=
               cardinal lits through the reductions, so an unsatisfied
               clause still holds literals *)
            let c = match best with Some (c, _) -> c | None -> assert false in
            loop (reduce_by clauses c) (IntSet.add c chosen)
      in
      loop (residuals t) IntSet.empty

(* Lower bound: greedily pick clauses with pairwise-disjoint literal
   sets; any cover needs [need] distinct candidates per picked clause,
   each block costing at least the clause's [need] cheapest literals. *)
let cheapest_need_sum ~cost lits need =
  let sorted = List.sort Float.compare (List.map cost (IntSet.elements lits)) in
  let rec take k = function
    | _ when k = 0 -> 0.0
    | [] -> 0.0
    | c :: rest -> c +. take (k - 1) rest
  in
  take need sorted

let lower_bound ~cost clauses =
  let rec loop clauses acc =
    match clauses with
    | [] -> acc
    | (lits, need) :: rest ->
        let disjoint =
          List.filter (fun (l, _) -> IntSet.is_empty (IntSet.inter l lits)) rest
        in
        loop disjoint (acc +. cheapest_need_sum ~cost lits need)
  in
  (* sorting small-first strengthens the bound *)
  let sorted =
    List.sort
      (fun (a, _) (b, _) -> Int.compare (IntSet.cardinal a) (IntSet.cardinal b))
      clauses
  in
  loop sorted 0.0

(* Essential literals and clause-dominance reductions, applied to a
   fixed point. Returns the forced choices and the residual clauses. A
   zero-slack clause (cardinal lits = need) forces all its literals;
   clause i is dominated by j when lits_j ⊆ lits_i with need_j >=
   need_i — any set hitting j often enough hits i often enough. *)
let preprocess ~clauses =
  let rec loop clauses forced =
    let zero_slack =
      List.fold_left
        (fun acc (lits, need) ->
          if IntSet.cardinal lits = need then IntSet.union acc lits else acc)
        IntSet.empty clauses
    in
    if not (IntSet.is_empty zero_slack) then begin
      Obs.Metrics.incr "cover.preprocess_forced" ~by:(IntSet.cardinal zero_slack);
      let remaining =
        List.filter_map
          (fun (lits, need) ->
            let hit = IntSet.cardinal (IntSet.inter lits zero_slack) in
            if hit >= need then None
            else Some (IntSet.diff lits zero_slack, need - hit))
          clauses
      in
      loop remaining (IntSet.union forced zero_slack)
    end
    else begin
      let arr = Array.of_list clauses in
      let n = Array.length arr in
      let keep = Array.make n true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let il, ineed = arr.(i) and jl, jneed = arr.(j) in
          if i <> j && keep.(i) && keep.(j) && IntSet.subset jl il && jneed >= ineed
             && (not (IntSet.equal il jl && ineed = jneed) || j < i)
          then keep.(i) <- false
        done
      done;
      let reduced = List.filteri (fun i _ -> keep.(i)) (Array.to_list arr) in
      Obs.Metrics.incr "cover.preprocess_dominated" ~by:(n - List.length reduced);
      (forced, reduced)
    end
  in
  loop clauses IntSet.empty

let brute_force ?(cost = fun _ -> 1.0) (t : Clause.t) =
  match Clause.infeasible_tags t with
  | _ :: _ as tags -> Infeasible tags
  | [] ->
      let candidates = Array.of_list (IntSet.elements (Clause.candidates t)) in
      let k = Array.length candidates in
      if k > 20 then
        invalid_arg
          (Printf.sprintf "Solver.brute_force: %d candidates (limit 20; use exact)" k);
      let best = ref IntSet.empty and best_cost = ref infinity and found = ref false in
      for mask = 0 to (1 lsl k) - 1 do
        let chosen = ref IntSet.empty in
        for i = 0 to k - 1 do
          if mask land (1 lsl i) <> 0 then chosen := IntSet.add candidates.(i) !chosen
        done;
        let chosen = !chosen in
        if Clause.is_cover t chosen then begin
          let c = cost_of ~cost chosen in
          let better =
            (not !found)
            || c < !best_cost -. 1e-12
            || (Float.abs (c -. !best_cost) <= 1e-12
               && List.compare Int.compare (IntSet.elements chosen)
                    (IntSet.elements !best)
                  < 0)
          in
          if better then begin
            found := true;
            best := chosen;
            best_cost := c
          end
        end
      done;
      (* a feasible system is always covered by the full candidate set *)
      Cover !best

let exact ?(cost = fun _ -> 1.0) (t : Clause.t) =
  Obs.Trace.span "cover.exact" @@ fun () ->
  match Clause.infeasible_tags t with
  | _ :: _ as tags -> Infeasible tags
  | [] -> (
      let best = ref None in
      let best_cost = ref infinity in
      let consider chosen =
        let c = cost_of ~cost chosen in
        let better =
          c < !best_cost -. 1e-12
          || (Float.abs (c -. !best_cost) <= 1e-12
             && match !best with
                | Some b ->
                    List.compare Int.compare (IntSet.elements chosen) (IntSet.elements b)
                    < 0
                | None -> true)
        in
        if better then begin
          best := Some chosen;
          best_cost := c
        end
      in
      let rec branch clauses chosen chosen_cost =
        Obs.Metrics.incr "cover.bnb_nodes";
        let forced, clauses = preprocess ~clauses in
        let chosen = IntSet.union chosen forced in
        let chosen_cost = chosen_cost +. cost_of ~cost forced in
        match clauses with
        | [] -> consider chosen
        | _ when chosen_cost +. lower_bound ~cost clauses >= !best_cost -. 1e-12 -> ()
        | clause :: _ ->
            (* branch on the literals of a smallest clause: every
               solution includes one of them, and the recursion on the
               reduced residuals enumerates the rest of its quota *)
            let smallest =
              List.fold_left
                (fun ((accl, _) as acc) ((l, _) as c) ->
                  if IntSet.cardinal l < IntSet.cardinal accl then c else acc)
                clause clauses
            in
            IntSet.iter
              (fun c ->
                branch (reduce_by clauses c) (IntSet.add c chosen)
                  (chosen_cost +. cost c))
              (fst smallest)
      in
      branch (residuals t) IntSet.empty 0.0;
      (* a feasible system always yields at least one leaf solution *)
      match !best with Some b -> Cover b | None -> Infeasible [])
