(** Unate-covering solvers.

    {!exact} is a branch-and-bound search with essential/dominance
    reductions and an independent-set lower bound — optimal, used for
    the headline results. {!greedy} is the classical largest-gain
    heuristic, kept as the baseline the benches compare against.
    Both accept an additive candidate cost (default: cardinality). *)

val greedy : ?cost:(int -> float) -> Clause.t -> Clause.IntSet.t
(** Repeatedly pick the candidate with the best
    (covered clauses / cost) ratio. Always returns a valid cover of the
    coverable clauses. *)

val exact : ?cost:(int -> float) -> Clause.t -> Clause.IntSet.t
(** A minimum-cost cover. Ties are broken deterministically (prefer
    smaller candidate indices). *)

val brute_force : ?cost:(int -> float) -> Clause.t -> Clause.IntSet.t
(** Exhaustive minimum-cost cover by subset enumeration over the
    candidates appearing in the clauses — the conformance fuzzer's
    reference implementation for {!exact}. Same deterministic
    tie-break as {!exact}. Raises [Invalid_argument] beyond 20
    candidates. *)

val cost_of : ?cost:(int -> float) -> Clause.IntSet.t -> float
