(** Multiplicity-covering solvers.

    {!exact} is a branch-and-bound search with zero-slack/dominance
    reductions and a disjoint-clause lower bound summing each clause's
    [need] cheapest literals — optimal, used for the headline results.
    {!greedy} is the classical largest-gain heuristic, kept as the
    baseline the benches compare against. Both accept an additive
    candidate cost (default: cardinality).

    All solvers agree on feasibility: a system containing a clause with
    fewer literals than its requirement (in particular an empty clause
    from an undetectable fault) yields [Infeasible] naming the clause
    tags, never a crash or a silent empty cover. *)

type outcome =
  | Cover of Clause.IntSet.t  (** A set satisfying every clause. *)
  | Infeasible of int list
      (** Tags of the unsatisfiable clauses ([cardinal lits < need]),
          in clause order. *)

exception Infeasible_cover of int list
(** Carried tags as in {!Infeasible}. *)

val cover_exn : outcome -> Clause.IntSet.t
(** Unwrap a {!Cover}; raises {!Infeasible_cover} otherwise — for call
    sites whose systems are feasible by construction. *)

val greedy : ?cost:(int -> float) -> Clause.t -> outcome
(** Repeatedly pick the candidate with the best
    (residual clause hits / cost) ratio until every clause is hit
    [need] times. Each candidate's gain is evaluated exactly once per
    round (counted in the [cover.greedy_gain_evals] metric). *)

val exact : ?cost:(int -> float) -> Clause.t -> outcome
(** A minimum-cost cover. Ties are broken deterministically (prefer
    smaller candidate indices). *)

val brute_force : ?cost:(int -> float) -> Clause.t -> outcome
(** Exhaustive minimum-cost cover by subset enumeration over the
    candidates appearing in the clauses — the conformance fuzzer's
    reference implementation for {!exact}. Same deterministic
    tie-break as {!exact}. Raises [Invalid_argument] beyond 20
    candidates. *)

val cost_of : ?cost:(int -> float) -> Clause.IntSet.t -> float
