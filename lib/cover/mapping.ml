module IntSet = Clause.IntSet

let opamps_of_config i =
  if i < 0 then invalid_arg "Mapping.opamps_of_config: negative index";
  let rec bits k acc =
    if 1 lsl k > i then acc
    else bits (k + 1) (if i land (1 lsl k) <> 0 then IntSet.add k acc else acc)
  in
  bits 0 IntSet.empty

let opamps_of_term term =
  IntSet.fold (fun c acc -> IntSet.union acc (opamps_of_config c)) term IntSet.empty

let xi_star terms = List.map opamps_of_term terms

let minimal_opamp_sets terms =
  let mapped = xi_star terms in
  match mapped with
  | [] -> []
  | _ ->
      let best =
        List.fold_left (fun acc s -> Int.min acc (IntSet.cardinal s)) max_int mapped
      in
      let minimal = List.filter (fun s -> IntSet.cardinal s = best) mapped in
      List.sort_uniq (fun a b -> List.compare Int.compare (IntSet.elements a) (IntSet.elements b)) minimal
