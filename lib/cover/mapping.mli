(** Configuration → opamp mapping for the partial-DFT optimization
    (paper §4.3, Table 3).

    Configuration index [i] puts opamp [k] (0-based) in follower mode
    iff bit [k] of [i] is set; a configuration therefore {e requires}
    exactly the configurable opamps named by its set bits. Substituting
    each configuration of a ξ product term by its opamp set turns ξ
    into ξ*, whose terms count configurable opamps instead of test
    configurations. *)

val opamps_of_config : int -> Clause.IntSet.t
(** The 0-based opamp positions a configuration requires — the set bits
    of its index. C₀ needs none. *)

val opamps_of_term : Clause.IntSet.t -> Clause.IntSet.t
(** Union over the configurations of a product term. *)

val xi_star : Clause.IntSet.t list -> Clause.IntSet.t list
(** Map every ξ term, keeping duplicates — the paper's raw ξ*
    expression. *)

val minimal_opamp_sets : Clause.IntSet.t list -> Clause.IntSet.t list
(** The distinct opamp sets of minimum cardinality among the mapped
    terms — the partial-DFT optima. *)
