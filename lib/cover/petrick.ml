module IntSet = Clause.IntSet

let dedup terms =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun t ->
      let key = IntSet.elements t in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    terms

(* One distribution step: multiply the running sum of products by a
   clause (a sum of literals). *)
let distribute products clause =
  List.concat_map
    (fun p -> List.map (fun c -> IntSet.add c p) (IntSet.elements clause))
    products

let expand_raw (t : Clause.t) =
  List.fold_left
    (fun products clause -> dedup (distribute products clause))
    [ IntSet.empty ] t.Clause.clauses

let absorb terms =
  (* keep only minimal terms: t is dropped when some other term is a
     proper subset (or an equal earlier term) *)
  let arr = Array.of_list (dedup terms) in
  let n = Array.length arr in
  let keep = Array.make n true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && keep.(i) && keep.(j) && IntSet.subset arr.(j) arr.(i) && not (IntSet.equal arr.(i) arr.(j))
      then keep.(i) <- false
    done
  done;
  List.filteri (fun i _ -> keep.(i)) (Array.to_list arr)

let compare_terms a b =
  match Int.compare (IntSet.cardinal a) (IntSet.cardinal b) with
  | 0 -> List.compare Int.compare (IntSet.elements a) (IntSet.elements b)
  | c -> c

let expand (t : Clause.t) =
  let products =
    List.fold_left
      (fun products clause -> absorb (distribute products clause))
      [ IntSet.empty ] t.Clause.clauses
  in
  List.sort compare_terms products

let cheapest ?(cost = fun _ -> 1.0) terms =
  match terms with
  | [] -> []
  | _ ->
      let total t = IntSet.fold (fun c acc -> acc +. cost c) t 0.0 in
      let best = List.fold_left (fun acc t -> Float.min acc (total t)) infinity terms in
      List.filter (fun t -> total t <= best +. 1e-12) terms
