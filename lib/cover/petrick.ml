module IntSet = Clause.IntSet

let dedup terms =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun t ->
      let key = IntSet.elements t in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    terms

(* All [need]-element subsets of a clause's literals, in element order
   (so that need = 1 reproduces the paper's derivation order). An
   unsatisfiable clause (|lits| < need) yields no subsets, so the whole
   expansion collapses to [] — the POS expression is identically 0. *)
let need_subsets (c : Clause.clause) =
  let rec choose k xs =
    if k = 0 then [ [] ]
    else
      match xs with
      | [] -> []
      | x :: rest -> List.map (fun s -> x :: s) (choose (k - 1) rest) @ choose k rest
  in
  List.map IntSet.of_list (choose c.Clause.need (IntSet.elements c.Clause.lits))

(* One distribution step: multiply the running sum of products by a
   clause — for multiplicity clauses, by the sum over its
   [need]-subsets (any solution picks at least one full subset). *)
let distribute products subsets =
  List.concat_map (fun p -> List.map (fun s -> IntSet.union s p) subsets) products

let expand_raw (t : Clause.t) =
  List.fold_left
    (fun products clause -> dedup (distribute products (need_subsets clause)))
    [ IntSet.empty ] t.Clause.clauses

let absorb terms =
  (* keep only minimal terms: t is dropped when some other term is a
     proper subset (or an equal earlier term) *)
  let arr = Array.of_list (dedup terms) in
  let n = Array.length arr in
  let keep = Array.make n true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && keep.(i) && keep.(j) && IntSet.subset arr.(j) arr.(i) && not (IntSet.equal arr.(i) arr.(j))
      then keep.(i) <- false
    done
  done;
  List.filteri (fun i _ -> keep.(i)) (Array.to_list arr)

let compare_terms a b =
  match Int.compare (IntSet.cardinal a) (IntSet.cardinal b) with
  | 0 -> List.compare Int.compare (IntSet.elements a) (IntSet.elements b)
  | c -> c

let expand (t : Clause.t) =
  let products =
    List.fold_left
      (fun products clause -> absorb (distribute products (need_subsets clause)))
      [ IntSet.empty ] t.Clause.clauses
  in
  List.sort compare_terms products

let cheapest ?(cost = fun _ -> 1.0) terms =
  match terms with
  | [] -> []
  | _ ->
      let total t = IntSet.fold (fun c acc -> acc +. cost c) t 0.0 in
      let best = List.fold_left (fun acc t -> Float.min acc (total t)) infinity terms in
      List.filter (fun t -> total t <= best +. 1e-12) terms
