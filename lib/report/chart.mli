(** Terminal bar charts — the renderings of the paper's Graphs 1–4
    (grouped per-fault ω-detectability bars). *)

val bars :
  ?width:int -> labels:string array -> series:(string * float array) list -> unit ->
  string
(** Horizontal grouped bars. One block per label, one bar per series,
    values expected in [0, 100] (percent). [width] (default 50) is the
    full-scale bar width. Raises [Invalid_argument] on length
    mismatch. *)

val sparkline : float array -> string
(** One-line magnitude profile (eight-level blocks), handy for showing
    a frequency response or deviation profile inline. Empty string on
    the empty array. *)
