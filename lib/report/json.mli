(** Minimal JSON tree, emitter and parser — machine-readable export of
    reports without external dependencies. Numbers are floats (ints
    print without a fractional part); strings must be valid UTF-8 and
    are escaped per RFC 8259. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Object of (string * t) list

val int : int -> t
(** Convenience: an integral {!Number}. *)

val to_string : ?indent:int -> t -> string
(** Serialize; [indent] > 0 pretty-prints (default 0: compact). *)

val of_string : string -> (t, string) result
(** Parse a JSON document. Objects keep field order; duplicate keys are
    kept as-is. *)

val member : string -> t -> t option
(** Field lookup on an [Object]; [None] otherwise. *)
