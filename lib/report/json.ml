type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Object of (string * t) list

let int i = Number (float_of_int i)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_string ?(indent = 0) value =
  let buf = Buffer.create 256 in
  let pad depth =
    if indent > 0 then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (depth * indent) ' ')
    end
  in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Number f -> Buffer.add_string buf (number_to_string f)
    | String s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            pad (depth + 1);
            emit (depth + 1) item)
          items;
        pad depth;
        Buffer.add_char buf ']'
    | Object [] -> Buffer.add_string buf "{}"
    | Object fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (key, v) ->
            if i > 0 then Buffer.add_char buf ',';
            pad (depth + 1);
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape key);
            Buffer.add_string buf (if indent > 0 then "\": " else "\":");
            emit (depth + 1) v)
          fields;
        pad depth;
        Buffer.add_char buf '}'
  in
  emit 0 value;
  Buffer.contents buf

exception Bad of string

let of_string text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub text !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string_body () =
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance (); loop ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); loop ()
          | Some '/' -> Buffer.add_char buf '/'; advance (); loop ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); loop ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); loop ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); loop ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance (); loop ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance (); loop ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub text !pos 4 in
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
              | Some code ->
                  (* encode the BMP code point as UTF-8 *)
                  if code < 0x800 then begin
                    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                  end
                  else begin
                    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                  end
              | None -> fail "bad \\u escape");
              pos := !pos + 4;
              loop ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub text start (!pos - start)) with
    | Some f -> Number f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' ->
        advance ();
        String (parse_string_body ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          items []
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Object []
        end
        else begin
          let field () =
            skip_ws ();
            expect '"';
            let key = parse_string_body () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (key, v)
          in
          let rec fields acc =
            let f = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (f :: acc)
            | Some '}' ->
                advance ();
                Object (List.rev (f :: acc))
            | _ -> fail "expected , or }"
          in
          fields []
        end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing content";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

let member key = function
  | Object fields -> List.assoc_opt key fields
  | Null | Bool _ | Number _ | String _ | List _ -> None
