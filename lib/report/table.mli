(** Fixed-width ASCII tables for terminal reports. *)

val render : ?align_left_first:bool -> header:string list -> string list list -> string
(** Render rows under a header, padding every column to its widest
    cell. The first column is left-aligned when [align_left_first]
    (default true); all other cells are right-aligned. Raises
    [Invalid_argument] when a row's width differs from the header's. *)

val render_matrix :
  row_labels:string array -> col_labels:string array -> cell:(int -> int -> string) ->
  string
(** Matrix-shaped table: one row label per line, one column label in
    the header, [cell i j] as the body. *)

val csv : header:string list -> string list list -> string
(** The same data as RFC-4180-ish CSV (quotes cells containing commas,
    quotes or newlines). *)
