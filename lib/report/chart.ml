let bar_glyphs = [| '#'; '*'; '+'; '~'; 'o'; '='; '%'; '@' |]

let bars ?(width = 50) ~labels ~series () =
  List.iter
    (fun (_, values) ->
      if Array.length values <> Array.length labels then
        invalid_arg "Chart.bars: series length mismatch")
    series;
  let buf = Buffer.create 1024 in
  let label_width =
    Array.fold_left (fun acc l -> Int.max acc (String.length l)) 0 labels
  in
  let series_width =
    List.fold_left (fun acc (name, _) -> Int.max acc (String.length name)) 0 series
  in
  Array.iteri
    (fun i label ->
      List.iteri
        (fun k (name, values) ->
          let v = Util.Floatx.clamp ~lo:0.0 ~hi:100.0 values.(i) in
          let n = int_of_float (Float.round (v /. 100.0 *. float_of_int width)) in
          Buffer.add_string buf
            (Printf.sprintf "%-*s %-*s |%s%s %5.1f\n"
               label_width
               (if k = 0 then label else "")
               series_width name
               (String.make n bar_glyphs.(k mod Array.length bar_glyphs))
               (String.make (width - n) ' ')
               values.(i)))
        series;
      if i < Array.length labels - 1 then Buffer.add_char buf '\n')
    labels;
  Buffer.contents buf

let sparkline values =
  if Array.length values = 0 then ""
  else begin
    let levels = [| " "; "_"; "."; "-"; "="; "*"; "#"; "@" |] in
    let finite = Array.of_list (List.filter Float.is_finite (Array.to_list values)) in
    if Array.length finite = 0 then String.make (Array.length values) '?'
    else begin
      let lo = Array.fold_left Float.min infinity finite in
      let hi = Array.fold_left Float.max neg_infinity finite in
      let span = if hi > lo then hi -. lo else 1.0 in
      String.concat ""
        (Array.to_list
           (Array.map
              (fun v ->
                if not (Float.is_finite v) then "?"
                else
                  let idx = int_of_float ((v -. lo) /. span *. 7.0 +. 0.5) in
                  levels.(Int.max 0 (Int.min 7 idx)))
              values))
    end
  end
