let render ?(align_left_first = true) ~header rows =
  let width = List.length header in
  List.iteri
    (fun i row ->
      if List.length row <> width then
        invalid_arg (Printf.sprintf "Table.render: row %d has wrong arity" i))
    rows;
  let all = header :: rows in
  let col_width j =
    List.fold_left (fun acc row -> Int.max acc (String.length (List.nth row j))) 0 all
  in
  let widths = List.init width col_width in
  let pad j cell =
    let w = List.nth widths j in
    if j = 0 && align_left_first then Printf.sprintf "%-*s" w cell
    else Printf.sprintf "%*s" w cell
  in
  let line row = String.concat "  " (List.mapi pad row) in
  let rule =
    String.concat "--" (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" ((line header :: rule :: List.map line rows) @ [])

let render_matrix ~row_labels ~col_labels ~cell =
  let header = "" :: Array.to_list col_labels in
  let rows =
    Array.to_list
      (Array.mapi
         (fun i label ->
           label :: List.init (Array.length col_labels) (fun j -> cell i j))
         row_labels)
  in
  render ~header rows

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let csv ~header rows =
  let line row = String.concat "," (List.map csv_escape row) in
  String.concat "\n" (line header :: List.map line rows)
