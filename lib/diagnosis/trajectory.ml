module Detect = Testability.Detect
module Matrix = Testability.Matrix
module Fastsim = Testability.Fastsim
module Grid = Testability.Grid
module Pipeline = Mcdft_core.Pipeline

type t = {
  labels : string array;
  freqs_hz : float array;
  faults : Fault.t array;
  engines : Fastsim.t array;
  nominal_mag : float array array;
  signatures : float array array;
  tolerance : float;
}

(* A singular faulty system has no finite response; clamp its deviation
   to a large constant so the point stays comparable (and maximally
   distinct from any healthy trajectory). *)
let singular_deviation = 1e3
let magnitude_floor = 1e-12

let n_measurements t = Array.length t.labels * Array.length t.freqs_hz
let faults t = Array.to_list t.faults
let labels t = Array.to_list t.labels
let signature t j = Array.copy t.signatures.(j)

let signature_into ~engines ~nominal_mag ~nf fault out =
  Array.iteri
    (fun vi e ->
      let plan = Fastsim.plan_of e fault in
      let re = Array.make nf 0.0 and im = Array.make nf 0.0 in
      let ok = Bytes.make nf '\000' in
      Fastsim.response_range_into e plan ~lo:0 ~hi:nf ~re ~im ~ok;
      for k = 0 to nf - 1 do
        let nom = nominal_mag.(vi).(k) in
        let dev =
          if Bytes.get ok k = '\001' then
            (Float.hypot re.(k) im.(k) -. nom) /. Float.max nom magnitude_floor
          else singular_deviation
        in
        out.((vi * nf) + k) <- dev
      done)
    engines

let build ?(tolerance = 0.02) grid views faults =
  Obs.Trace.span "diagnosis.build" @@ fun () ->
  if tolerance < 0.0 then invalid_arg "Trajectory.build: tolerance must be >= 0";
  let views = Array.of_list views in
  if Array.length views = 0 then invalid_arg "Trajectory.build: no views";
  let faults = Array.of_list faults in
  let freqs_hz = Grid.freqs_hz grid in
  let nf = Array.length freqs_hz in
  let engines =
    Array.map
      (fun v ->
        Fastsim.create ~source:v.Matrix.probe.Detect.source
          ~output:v.Matrix.probe.Detect.output ~freqs_hz v.Matrix.netlist)
      views
  in
  let fault_list = Array.to_list faults in
  Array.iter (fun e -> Fastsim.warm_cache e fault_list) engines;
  let nominal_mag = Array.map (fun e -> Array.map Complex.norm (Fastsim.nominal e)) engines in
  let nv = Array.length views in
  let signatures =
    Array.map
      (fun f ->
        let s = Array.make (nv * nf) 0.0 in
        signature_into ~engines ~nominal_mag ~nf f s;
        s)
      faults
  in
  Obs.Metrics.incr "diagnosis.trajectories_built" ~by:(Array.length faults);
  {
    labels = Array.map (fun v -> v.Matrix.label) views;
    freqs_hz;
    faults;
    engines;
    nominal_mag;
    signatures;
    tolerance;
  }

let of_pipeline ?tolerance ?configs (p : Pipeline.t) =
  let all_views = p.Pipeline.matrix.Matrix.views in
  let views =
    match configs with
    | None -> Array.to_list all_views
    | Some cs ->
        List.map
          (fun c ->
            if c < 0 || c >= Array.length all_views then
              invalid_arg
                (Printf.sprintf "Trajectory.of_pipeline: no test configuration C%d" c);
            all_views.(c))
          cs
  in
  build ?tolerance p.Pipeline.grid views p.Pipeline.faults

let simulate t fault =
  Obs.Trace.span "diagnosis.simulate" @@ fun () ->
  let nf = Array.length t.freqs_hz in
  let s = Array.make (n_measurements t) 0.0 in
  signature_into ~engines:t.engines ~nominal_mag:t.nominal_mag ~nf fault s;
  s

let nominal_magnitudes t =
  let nf = Array.length t.freqs_hz in
  Array.init (n_measurements t) (fun i -> t.nominal_mag.(i / nf).(i mod nf))

let deviations_of_magnitudes t mags =
  if Array.length mags <> n_measurements t then
    invalid_arg
      (Printf.sprintf
         "Trajectory.deviations_of_magnitudes: expected %d measurements, got %d"
         (n_measurements t) (Array.length mags));
  let nf = Array.length t.freqs_hz in
  Array.mapi
    (fun i m ->
      let nom = t.nominal_mag.(i / nf).(i mod nf) in
      (m -. nom) /. Float.max nom magnitude_floor)
    mags

(* RMS distance between two deviation trajectories. *)
let distance a b =
  let n = Array.length a in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt (!acc /. float_of_int (Int.max 1 n))

type verdict = {
  fault : Fault.t;
  distance : float;
  margin : float;
  confidence : float;
  ambiguous : Fault.t list;
  ranking : (Fault.t * float) list;
}

let classify ?tolerance t observed =
  Obs.Trace.span "diagnosis.classify" @@ fun () ->
  if Array.length observed <> n_measurements t then
    invalid_arg
      (Printf.sprintf "Trajectory.classify: expected %d measurements, got %d"
         (n_measurements t) (Array.length observed));
  if Array.length t.faults = 0 then invalid_arg "Trajectory.classify: no faults";
  let tol = Option.value tolerance ~default:t.tolerance in
  let ranking =
    Array.to_list (Array.mapi (fun j s -> (t.faults.(j), distance s observed)) t.signatures)
    |> List.stable_sort (fun (_, a) (_, b) -> Float.compare a b)
  in
  Obs.Metrics.incr "diagnosis.classifications";
  match ranking with
  | [] -> assert false
  | (fault, d0) :: rest ->
      let ambiguous =
        fault :: List.filter_map (fun (f, d) -> if d <= d0 +. tol then Some f else None) rest
      in
      let margin, confidence =
        match rest with
        | [] -> (infinity, 1.0)
        | (_, d1) :: _ ->
            (d1 -. d0, Float.max 0.0 (Float.min 1.0 ((d1 -. d0) /. (d1 +. d0 +. 1e-12))))
      in
      { fault; distance = d0; margin; confidence; ambiguous; ranking }

let ambiguity_sets ?tolerance t =
  let tol = Option.value tolerance ~default:t.tolerance in
  let n = Array.length t.faults in
  let parent = Array.init n Fun.id in
  let rec find i = if parent.(i) = i then i else (let r = find parent.(i) in parent.(i) <- r; r) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(Int.max ri rj) <- Int.min ri rj
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if distance t.signatures.(i) t.signatures.(j) <= tol then union i j
    done
  done;
  let groups = Hashtbl.create 16 in
  let roots = ref [] in
  for i = 0 to n - 1 do
    let r = find i in
    match Hashtbl.find_opt groups r with
    | None ->
        Hashtbl.add groups r [ i ];
        roots := r :: !roots
    | Some members -> Hashtbl.replace groups r (i :: members)
  done;
  List.rev_map
    (fun r -> List.rev_map (fun j -> t.faults.(j)) (Hashtbl.find groups r))
    !roots

let resolution ?tolerance t =
  match ambiguity_sets ?tolerance t with
  | [] -> 0.0
  | groups ->
      let singletons =
        List.fold_left (fun acc g -> if List.length g = 1 then acc + 1 else acc) 0 groups
      in
      float_of_int singletons /. float_of_int (Array.length t.faults)
