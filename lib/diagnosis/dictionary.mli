(** Dictionary-based fault diagnosis over the multi-configuration
    space.

    The paper's testability work sits in a literature centred on fault
    {e diagnosis} (its refs [7–10]); this module closes that loop. The
    fault dictionary stores, for every fault, its pass/fail signature
    across all (configuration, frequency) measurements; faults with
    identical signatures form ambiguity groups. Reconfiguration
    improves diagnosability for the same reason it improves coverage:
    different configurations separate faults that look alike at the
    functional output. *)

type dictionary = {
  configs : int list;  (** Configuration indices, measurement-major order. *)
  freqs_hz : float array;  (** Grid frequencies within each configuration. *)
  faults : Fault.t array;
  signatures : bool array array;
      (** [signatures.(j)] is fault j's pass/fail pattern over
          [configs x freqs] (configuration-major). *)
}

val build : ?configs:int list -> Mcdft_core.Pipeline.t -> dictionary
(** Build the dictionary over the given configurations (default: all
    test configurations of the pipeline). *)

val ambiguity_groups : dictionary -> Fault.t list list
(** Partition of the faults by identical signature. The all-pass
    (undetectable) faults, if any, form one group. Groups are ordered
    by first fault occurrence. *)

val resolution : dictionary -> float
(** Diagnostic resolution: (number of singleton groups among detectable
    faults) / (number of detectable faults); 1.0 means every detectable
    fault is uniquely identifiable. 0 when nothing is detectable. *)

val diagnose : dictionary -> bool array -> (Fault.t * int) list
(** Candidate faults for an observed signature, sorted by Hamming
    distance (distance 0 first — exact matches). Raises
    [Invalid_argument] on a signature length mismatch. *)

val signature_of : Mcdft_core.Pipeline.t -> dictionary -> Fault.t -> bool array
(** Simulate the signature a given fault would produce under the
    dictionary's measurement set — the "tester side" for closed-loop
    experiments. *)
