module Pipeline = Mcdft_core.Pipeline

type dictionary = {
  configs : int list;
  freqs_hz : float array;
  faults : Fault.t array;
  signatures : bool array array;
}

let probe_of (pipeline : Pipeline.t) =
  {
    Testability.Detect.source = pipeline.Pipeline.benchmark.Circuits.Benchmark.source;
    output = pipeline.Pipeline.benchmark.Circuits.Benchmark.output;
  }

let fault_signature ~grid results_per_config =
  let freqs = Testability.Grid.freqs_hz grid in
  let n_points = Array.length freqs in
  let bits = Array.make (List.length results_per_config * n_points) false in
  List.iteri
    (fun c (r : Testability.Detect.result) ->
      for k = 0 to n_points - 1 do
        bits.((c * n_points) + k) <-
          Util.Interval.Set.contains r.Testability.Detect.regions (log10 freqs.(k))
      done)
    results_per_config;
  bits

let build ?configs (pipeline : Pipeline.t) =
  let configs =
    match configs with
    | Some c -> c
    | None ->
        List.map Multiconfig.Configuration.index
          (Multiconfig.Transform.test_configurations pipeline.Pipeline.dft)
  in
  let grid = pipeline.Pipeline.grid in
  let probe = probe_of pipeline in
  let per_config =
    List.map
      (fun config_index ->
        let config =
          Multiconfig.Configuration.make
            ~n_opamps:(Multiconfig.Transform.n_opamps pipeline.Pipeline.dft)
            config_index
        in
        let view = Multiconfig.Transform.emulate pipeline.Pipeline.dft config in
        Testability.Detect.analyze ~criterion:pipeline.Pipeline.criterion probe grid view
          pipeline.Pipeline.faults)
      configs
  in
  let faults = Array.of_list pipeline.Pipeline.faults in
  let signatures =
    Array.mapi
      (fun j _ -> fault_signature ~grid (List.map (fun results -> List.nth results j) per_config))
      faults
  in
  { configs; freqs_hz = Testability.Grid.freqs_hz grid; faults; signatures }

let ambiguity_groups dict =
  let table = Hashtbl.create 16 in
  let order = ref [] in
  Array.iteri
    (fun j signature ->
      let key = Array.to_list signature in
      (match Hashtbl.find_opt table key with
      | None ->
          Hashtbl.add table key [ j ];
          order := key :: !order
      | Some members -> Hashtbl.replace table key (j :: members)))
    dict.signatures;
  List.rev_map
    (fun key -> List.rev_map (fun j -> dict.faults.(j)) (Hashtbl.find table key))
    !order

let is_detected signature = Array.exists Fun.id signature

let resolution dict =
  let detected =
    Array.to_list dict.signatures |> List.filter is_detected
  in
  match detected with
  | [] -> 0.0
  | _ ->
      let table = Hashtbl.create 16 in
      List.iter
        (fun signature ->
          let key = Array.to_list signature in
          Hashtbl.replace table key (1 + Option.value ~default:0 (Hashtbl.find_opt table key)))
        detected;
      let singletons = Hashtbl.fold (fun _ n acc -> if n = 1 then acc + 1 else acc) table 0 in
      float_of_int singletons /. float_of_int (List.length detected)

let hamming a b =
  let d = ref 0 in
  Array.iteri (fun i x -> if x <> b.(i) then incr d) a;
  !d

let diagnose dict observed =
  let expected_len =
    List.length dict.configs * Array.length dict.freqs_hz
  in
  if Array.length observed <> expected_len then
    invalid_arg "Diagnosis.Dictionary.diagnose: signature length mismatch";
  Array.to_list
    (Array.mapi (fun j signature -> (dict.faults.(j), hamming observed signature)) dict.signatures)
  |> List.sort (fun (_, a) (_, b) -> Int.compare a b)

let signature_of (pipeline : Pipeline.t) dict fault =
  let grid = pipeline.Pipeline.grid in
  let probe = probe_of pipeline in
  let per_config =
    List.map
      (fun config_index ->
        let config =
          Multiconfig.Configuration.make
            ~n_opamps:(Multiconfig.Transform.n_opamps pipeline.Pipeline.dft)
            config_index
        in
        let view = Multiconfig.Transform.emulate pipeline.Pipeline.dft config in
        Testability.Detect.analyze_fault ~criterion:pipeline.Pipeline.criterion probe grid
          view fault)
      dict.configs
  in
  fault_signature ~grid per_config
