(** Fault location by nearest response trajectory.

    Where {!Dictionary} stores binary pass/fail signatures, this module
    keeps the {e analog} shape of each fault's response: the signed
    relative magnitude deviation from nominal at every (configuration,
    frequency) measurement — the fault's {e trajectory} across the
    configuration sequence, in the spirit of the fault-trajectory
    diagnosis approach (arXiv:0710.4725). An observed response is
    classified by the nearest trajectory under RMS distance; faults
    whose trajectories collide within a tolerance envelope form
    ambiguity sets that no tester on this measurement set can separate.

    Trajectories are simulated over the planar {!Testability.Fastsim}
    plans (one engine per view, warmed once), so building a dictionary
    for a 7-view, tens-of-faults circuit costs one campaign. *)

type t
(** A precomputed trajectory dictionary: per-fault deviation
    trajectories over a fixed (view × frequency) measurement set, plus
    the warmed simulation engines for {!simulate}. *)

val build :
  ?tolerance:float ->
  Testability.Grid.t ->
  Testability.Matrix.view list ->
  Fault.t list ->
  t
(** [build grid views faults] simulates every fault in every view.
    [tolerance] (default 0.02) is the RMS deviation envelope within
    which two trajectories count as colliding — the default for
    {!classify} and {!ambiguity_sets}. Raises
    {!Mna.Ac.Singular_circuit} if a view's nominal system is singular,
    {!Fault.Unknown_element} if a fault names an element absent from
    some view, and [Invalid_argument] on an empty view list or a
    negative tolerance. *)

val of_pipeline : ?tolerance:float -> ?configs:int list -> Mcdft_core.Pipeline.t -> t
(** Build over a pipeline's test-configuration views (default: all of
    C₀ … C_{2ⁿ-2}; [configs] selects a subset by index, e.g. an
    optimized cover). *)

val n_measurements : t -> int
(** Measurements per trajectory: views × grid frequencies. *)

val faults : t -> Fault.t list
val labels : t -> string list

val signature : t -> int -> float array
(** Copy of fault [j]'s trajectory (view-major, frequency-minor). *)

val simulate : t -> Fault.t -> float array
(** The trajectory a given fault would produce on this measurement set
    — the "tester side" for closed-loop self-tests. The fault need not
    be in the dictionary. Raises {!Fault.Unknown_element} when the
    fault's element is absent. *)

val nominal_magnitudes : t -> float array
(** The fault-free [|H|] at every measurement point (view-major,
    frequency-minor) — the reference a tester compares its logged
    magnitudes against. *)

val deviations_of_magnitudes : t -> float array -> float array
(** Convert observed magnitudes [|H|] (view-major, frequency-minor, as
    a tester would log them) into the signed relative deviations
    {!classify} consumes. Raises [Invalid_argument] on a length
    mismatch. *)

val distance : float array -> float array -> float
(** RMS distance between two equal-length trajectories. *)

type verdict = {
  fault : Fault.t;  (** Nearest-trajectory fault. *)
  distance : float;  (** RMS distance to it. *)
  margin : float;  (** Distance gap to the runner-up ([infinity] if none). *)
  confidence : float;
      (** Margin-based score in [0, 1]: 0 when the two best candidates
          are equidistant, →1 as the runner-up recedes. *)
  ambiguous : Fault.t list;
      (** All faults within the tolerance envelope of the best
          distance, best first — the candidates a tester cannot
          separate on this observation. *)
  ranking : (Fault.t * float) list;  (** Every fault by distance, ascending. *)
}

val classify : ?tolerance:float -> t -> float array -> verdict
(** Locate the fault nearest to an observed deviation trajectory
    (length {!n_measurements}; see {!deviations_of_magnitudes}).
    [tolerance] overrides the dictionary's envelope. Raises
    [Invalid_argument] on a length mismatch or an empty fault
    universe. *)

val ambiguity_sets : ?tolerance:float -> t -> Fault.t list list
(** Partition of the fault universe by trajectory collision: the
    transitive closure of "RMS distance ≤ tolerance". Ordered by first
    fault occurrence; singleton sets are uniquely locatable faults. *)

val resolution : ?tolerance:float -> t -> float
(** Fraction of faults in singleton ambiguity sets — the trajectory
    analog of {!Dictionary.resolution}. *)
