type solution = Ac.solution

let solve ?sources netlist = Ac.solve ?sources netlist ~omega:0.0
let voltage sol n = (Ac.voltage sol n).Complex.re
let current sol name = (Ac.current sol name).Complex.re
