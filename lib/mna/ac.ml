module Netlist = Circuit.Netlist
exception Singular_circuit of string

type solution = { index : Index.t; x : Complex.t array }

let solve ?(sources = Assemble.Nominal) netlist ~omega =
  let index = Index.build netlist in
  let stamps = Stamps.build ~sources index netlist in
  let m = Stamps.matrix stamps ~omega in
  match
    Obs.Metrics.time "mna.solve_s" (fun () ->
        Linalg.Cmat.solve m (Stamps.rhs stamps ~omega))
  with
  | x -> { index; x }
  | exception Linalg.Cmat.Singular ->
      raise
        (Singular_circuit
           (Printf.sprintf "MNA matrix singular at omega = %g rad/s for %S" omega
              (Netlist.title netlist)))

let voltage sol n =
  match Index.node sol.index n with
  | None -> Complex.zero
  | Some i -> sol.x.(i)

let current sol name = sol.x.(Index.branch sol.index name)

let transfer ~source ~output netlist ~omega =
  let sol = solve ~sources:(Assemble.Only source) netlist ~omega in
  voltage sol output

let sweep ~source ~output netlist ~freqs_hz =
  (* The index and the split stamp planes are frequency-independent;
     build them once per sweep, form A(jω) per point with one fused
     pass into a reused off-heap buffer and factorize into a reused LU
     workspace — the per-point cost is the factorization alone, with
     zero GC-visible allocation per point. *)
  Obs.Trace.span "mna.sweep" @@ fun () ->
  let module Big = Linalg.Cmat.Big in
  let index = Index.build netlist in
  let stamps = Stamps.build ~sources:(Assemble.Only source) index netlist in
  let n = Stamps.size stamps in
  let buf = Big.create n n in
  let b = Big.Vec.create n and x = Big.Vec.create n in
  let ws = Big.lu_create n in
  let out = Index.node index output in
  Array.map
    (fun f ->
      let omega = 2.0 *. Float.pi *. f in
      Stamps.fill_big stamps ~omega buf;
      Stamps.rhs_into_big stamps ~omega b;
      match
        Obs.Metrics.time "mna.solve_s" (fun () ->
            Big.lu_factor_into ws buf;
            Big.lu_solve_into ws ~b ~x)
      with
      | () -> ( match out with None -> Complex.zero | Some i -> Big.Vec.get x i)
      | exception Linalg.Cmat.Singular ->
          raise
            (Singular_circuit
               (Printf.sprintf "MNA matrix singular at f = %g Hz for %S" f
                  (Netlist.title netlist))))
    freqs_hz

let magnitude_db z =
  let m = Complex.norm z in
  if m = 0.0 then neg_infinity else 20.0 *. log10 m
