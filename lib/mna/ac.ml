module Netlist = Circuit.Netlist
exception Singular_circuit of string

type solution = { index : Index.t; x : Complex.t array }

let solve ?(sources = Assemble.Nominal) netlist ~omega =
  let index = Index.build netlist in
  let module A = Assemble.Make ((val Field.complex ~omega : Field.S with type t = Complex.t)) in
  let { A.matrix; rhs } = A.assemble ~sources index netlist in
  let m = Linalg.Cmat.of_arrays matrix in
  match Linalg.Cmat.solve m rhs with
  | x -> { index; x }
  | exception Linalg.Cmat.Singular ->
      raise
        (Singular_circuit
           (Printf.sprintf "MNA matrix singular at omega = %g rad/s for %S" omega
              (Netlist.title netlist)))

let voltage sol n =
  match Index.node sol.index n with
  | None -> Complex.zero
  | Some i -> sol.x.(i)

let current sol name = sol.x.(Index.branch sol.index name)

let transfer ~source ~output netlist ~omega =
  let sol = solve ~sources:(Assemble.Only source) netlist ~omega in
  voltage sol output

let sweep ~source ~output netlist ~freqs_hz =
  (* The index is frequency-independent; build it once per sweep. *)
  let index = Index.build netlist in
  Array.map
    (fun f ->
      let omega = 2.0 *. Float.pi *. f in
      let module A =
        Assemble.Make ((val Field.complex ~omega : Field.S with type t = Complex.t))
      in
      let { A.matrix; rhs } = A.assemble ~sources:(Assemble.Only source) index netlist in
      let m = Linalg.Cmat.of_arrays matrix in
      match Linalg.Cmat.solve m rhs with
      | x -> (
          match Index.node index output with
          | None -> Complex.zero
          | Some i -> x.(i))
      | exception Linalg.Cmat.Singular ->
          raise
            (Singular_circuit
               (Printf.sprintf "MNA matrix singular at f = %g Hz for %S" f
                  (Netlist.title netlist))))
    freqs_hz

let magnitude_db z =
  let m = Complex.norm z in
  if m = 0.0 then neg_infinity else 20.0 *. log10 m
