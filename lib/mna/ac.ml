module Netlist = Circuit.Netlist
exception Singular_circuit of string

type solution = { index : Index.t; x : Complex.t array }

let solve ?(sources = Assemble.Nominal) netlist ~omega =
  let index = Index.build netlist in
  let stamps = Stamps.build ~sources index netlist in
  let m = Stamps.matrix stamps ~omega in
  match
    Obs.Metrics.time "mna.solve_s" (fun () ->
        Linalg.Cmat.solve m (Stamps.rhs stamps ~omega))
  with
  | x -> { index; x }
  | exception Linalg.Cmat.Singular ->
      raise
        (Singular_circuit
           (Printf.sprintf "MNA matrix singular at omega = %g rad/s for %S" omega
              (Netlist.title netlist)))

let voltage sol n =
  match Index.node sol.index n with
  | None -> Complex.zero
  | Some i -> sol.x.(i)

let current sol name = sol.x.(Index.branch sol.index name)

let transfer ~source ~output netlist ~omega =
  let sol = solve ~sources:(Assemble.Only source) netlist ~omega in
  voltage sol output

let sweep ~source ~output netlist ~freqs_hz =
  (* The index and the split stamp planes are frequency-independent;
     build them once per sweep, form A(jω) per point with one fused
     pass into a reused buffer and solve into reused planar workspaces
     — the per-point cost is the LU factorization alone. *)
  Obs.Trace.span "mna.sweep" @@ fun () ->
  let module Pvec = Linalg.Cmat.Pvec in
  let index = Index.build netlist in
  let stamps = Stamps.build ~sources:(Assemble.Only source) index netlist in
  let n = Stamps.size stamps in
  let buf = Linalg.Cmat.create n n in
  let b = Pvec.create n and x = Pvec.create n in
  let out = Index.node index output in
  Array.map
    (fun f ->
      let omega = 2.0 *. Float.pi *. f in
      Stamps.fill stamps ~omega buf;
      Stamps.rhs_into stamps ~omega b;
      match
        Obs.Metrics.time "mna.solve_s" (fun () ->
            let lu = Linalg.Cmat.lu_factor buf in
            Linalg.Cmat.lu_solve_into lu ~b ~x)
      with
      | () -> ( match out with None -> Complex.zero | Some i -> Pvec.get x i)
      | exception Linalg.Cmat.Singular ->
          raise
            (Singular_circuit
               (Printf.sprintf "MNA matrix singular at f = %g Hz for %S" f
                  (Netlist.title netlist))))
    freqs_hz

let magnitude_db z =
  let m = Complex.norm z in
  if m = 0.0 then neg_infinity else 20.0 *. log10 m
