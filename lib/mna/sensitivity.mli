module Netlist := Circuit.Netlist

(** Exact small-signal sensitivities by the adjoint (transpose) method.

    The fault-observability metric of Slamani & Kaminska — the
    foundation the paper's detectability builds on — is the sensitivity
    of the measured response T to each component value. One forward
    solve A·x = b plus one adjoint solve Aᵀ·ξ = e_out yield
    ∂T/∂p = −ξᵀ(∂A/∂p)x for {e every} component p at once, instead of
    one extra solve per component. *)

type t = {
  element : string;
  d_transfer : Complex.t;  (** ∂T/∂p at the given frequency. *)
  normalized : Complex.t;  (** (p/T)·∂T/∂p — the classical Sᵀ_p. *)
  rel_magnitude : float;
      (** ∂|T|/|T| per unit relative change of p:
          Re(normalized) in exact arithmetic. *)
}

val at_omega :
  source:string -> output:string -> Netlist.t -> omega:float -> t list
(** Sensitivities of T = V(output) (unit source) to every passive
    component, in netlist order. Raises {!Ac.Singular_circuit} when the
    circuit has no solution at [omega]. *)

val magnitude_sweep :
  source:string -> output:string -> Netlist.t -> freqs_hz:float array ->
  (string * float array) list
(** |normalized sensitivity| per passive component across a frequency
    grid — the observability profile used to choose test
    frequencies. *)
