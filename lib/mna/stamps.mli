module Netlist := Circuit.Netlist

(** Frequency-split MNA assembly: A(s) = G + sC (+ rare higher-order
    terms).

    Every stamp the assembler produces is affine in the Laplace
    variable, so the system splits into two frequency-independent real
    planes: G (conductances, controlled-source gains, unit entries) and
    C (capacitances, inductances, opamp pole terms). The split is
    computed {e once per netlist} by running the generic stamping
    functor over the polynomial field and reading off the
    s-coefficients of each entry — the numeric and symbolic back-ends
    therefore share one stamping routine and cannot drift apart.

    Forming A(jω) at a sweep point is then a single fused pass over
    the two planes ({!Linalg.Cmat.fill_parts}): no functor
    instantiation, no [array array] round-trip, no per-frequency
    restamping. Entries whose polynomial degree exceeds 1 (none of the
    current element models produce any) are kept exactly in a sparse
    overflow list and evaluated per frequency. *)

type t

val build : ?sources:Assemble.source_mode -> Index.t -> Netlist.t -> t
(** Assemble the split stamps for a netlist under the given source
    mode (default [Nominal]). Same exceptions as {!Assemble.Make}. *)

val size : t -> int
(** The MNA system dimension (nodes + group-2 branches). *)

val fill : t -> omega:float -> Linalg.Cmat.t -> unit
(** Overwrite the given [size t] square matrix with A(jω). Entry
    values match assembling with the complex field at [s = jω] exactly,
    except where several reactive stamps accumulate on one entry —
    there ω(c₁+c₂) replaces ωc₁+ωc₂, a difference of at most one ulp. *)

val matrix : t -> omega:float -> Linalg.Cmat.t
(** Freshly allocated A(jω). *)

val rhs : t -> omega:float -> Linalg.Cmat.vec
(** The excitation vector b(jω) (frequency-independent for all current
    element models, but evaluated generally). *)

val rhs_into : t -> omega:float -> Linalg.Cmat.Pvec.t -> unit
(** Allocation-free {!rhs}: overwrite the caller's planar workspace
    with b(jω). The workspace length must be [size t]. *)

val fill_big : t -> omega:float -> Linalg.Cmat.Big.t -> unit
(** {!fill} onto an off-heap matrix. Same entry values and the same
    ["mna.fills"] counter discipline — one increment per assembled
    A(jω), whichever storage receives it. *)

val rhs_into_big : t -> omega:float -> Linalg.Cmat.Big.Vec.t -> unit
(** {!rhs_into} onto an off-heap vector. *)

(** {1 Sparse stamps}

    The same split-coefficient assembly delivered straight into a CSC
    pattern over only the stamped positions. Because the callback layer
    of {!Assemble.Make} accumulates in netlist element order, each
    sparse entry holds the {e identical} polynomial the dense build
    computes for that position — the two layouts produce the same
    A(jω) entry-for-entry, with the sparse one simply omitting the
    structural zeros. *)

type sparse

val build_sparse :
  ?sources:Assemble.source_mode -> Index.t -> Netlist.t -> sparse
(** {!build} into sparse storage. Same source-mode semantics and
    exceptions, same ["mna.assemble_s"] timer. *)

val sparse_size : sparse -> int
(** The MNA system dimension. *)

val sparse_pattern : sparse -> Linalg.Csparse.pattern
(** The CSC sparsity pattern of A — fixed per netlist; value planes
    indexed by its slot order. *)

val sparse_nnz : sparse -> int

val fill_sparse :
  sparse -> omega:float -> re:Linalg.Csparse.plane -> im:Linalg.Csparse.plane -> unit
(** Overwrite caller-owned value planes (length {!sparse_nnz}, slot
    order of {!sparse_pattern}) with A(jω). Entry values match
    {!fill} bit-for-bit — same split, same ω scaling, same overflow
    evaluation — and the same ["mna.fills"] counter increment. *)

val sparse_rhs_into_big : sparse -> omega:float -> Linalg.Cmat.Big.Vec.t -> unit
(** {!rhs_into_big} from the sparse build; identical values. *)
