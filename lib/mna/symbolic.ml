module Netlist = Circuit.Netlist
exception Singular_circuit of string

module P = Linalg.Poly

(* Fraction-free Bareiss elimination.  Exact over exact coefficients
   (integers, rationals); used directly in tests and for hand-built
   matrices.  For circuit matrices — whose float entries span many
   orders of magnitude — the divisibility invariant degrades, so
   {!transfer} uses evaluation-interpolation instead. *)
let determinant matrix =
  let n = Array.length matrix in
  Array.iter
    (fun row ->
      if Array.length row <> n then invalid_arg "Symbolic.determinant: non-square")
    matrix;
  if n = 0 then P.one
  else begin
    let m = Array.map Array.copy matrix in
    let sign = ref 1 in
    let prev = ref P.one in
    let singular = ref false in
    (try
       for k = 0 to n - 2 do
         if P.is_zero m.(k).(k) then begin
           (* find a row below with a non-zero entry in column k *)
           let pivot = ref (-1) in
           for i = k + 1 to n - 1 do
             if !pivot < 0 && not (P.is_zero m.(i).(k)) then pivot := i
           done;
           if !pivot < 0 then begin
             singular := true;
             raise Exit
           end;
           let tmp = m.(k) in
           m.(k) <- m.(!pivot);
           m.(!pivot) <- tmp;
           sign := - !sign
         end;
         for i = k + 1 to n - 1 do
           for j = k + 1 to n - 1 do
             let num = P.sub (P.mul m.(k).(k) m.(i).(j)) (P.mul m.(i).(k) m.(k).(j)) in
             m.(i).(j) <- P.div_exact num !prev
           done;
           m.(i).(k) <- P.zero
         done;
         prev := m.(k).(k)
       done
     with Exit -> ());
    if !singular then P.zero
    else begin
      let d = m.(n - 1).(n - 1) in
      if !sign >= 0 then d else P.neg d
    end
  end

let system netlist ~source =
  let index = Index.build netlist in
  let module A = Assemble.Make (Field.Polynomial) in
  let { A.matrix; rhs } = A.assemble ~sources:(Assemble.Only source) index netlist in
  (index, matrix, rhs)

(* --- evaluation-interpolation determinant ------------------------------

   det(A(s)) is a polynomial of degree at most n (every matrix entry has
   degree <= 1).  Evaluate it with a stable complex LU at N = n + 1
   points on the circle |s| = r and recover the coefficients by an
   inverse DFT; dividing coefficient k by r^k undoes the radius.  The
   radius is chosen so constant and first-order entries have comparable
   magnitude, which keeps the sample values well-scaled. *)

let estimate_radius matrix =
  let m0 = ref 0.0 and m1 = ref 0.0 in
  Array.iter
    (Array.iter (fun p ->
         m0 := Float.max !m0 (Float.abs (P.coeff p 0));
         m1 := Float.max !m1 (Float.abs (P.coeff p 1))))
    matrix;
  if !m1 > 0.0 && !m0 > 0.0 then !m0 /. !m1 else 1.0

let eval_matrix matrix (s : Complex.t) =
  Linalg.Cmat.of_arrays
    (Array.map
       (Array.map (fun p ->
            let c0 = P.coeff p 0 and c1 = P.coeff p 1 in
            (* entries are affine in s; avoid the general Horner loop *)
            Complex.add
              { Complex.re = c0; im = 0.0 }
              (Complex.mul { Complex.re = c1; im = 0.0 } s)))
       matrix)

let interpolate_det matrix r =
  let n = Array.length matrix in
  let n_points = n + 1 in
  let pi = 4.0 *. atan 1.0 in
  let values =
    Array.init n_points (fun k ->
        let angle = 2.0 *. pi *. float_of_int k /. float_of_int n_points in
        let s = Complex.{ re = r *. cos angle; im = r *. sin angle } in
        Linalg.Cmat.determinant (eval_matrix matrix s))
  in
  (* inverse DFT: c_k = (1/N) sum_m d_m w^{-km}, then unscale by r^k *)
  let coeffs =
    Array.init n_points (fun k ->
        let acc = ref Complex.zero in
        for m = 0 to n_points - 1 do
          let angle = -2.0 *. pi *. float_of_int (k * m) /. float_of_int n_points in
          let w = Complex.{ re = cos angle; im = sin angle } in
          acc := Complex.add !acc (Complex.mul values.(m) w)
        done;
        let c = Complex.div !acc { Complex.re = float_of_int n_points; im = 0.0 } in
        c.Complex.re /. (r ** float_of_int k))
  in
  (* drop interpolation noise relative to the dominant coefficient,
     comparing on the r-scaled coefficients so high powers are not
     unfairly suppressed *)
  let max_scaled =
    Array.fold_left
      (fun acc (k, c) -> Float.max acc (Float.abs c *. (r ** float_of_int k)))
      0.0
      (Array.mapi (fun k c -> (k, c)) coeffs)
  in
  let cleaned =
    Array.mapi
      (fun k c ->
        if Float.abs c *. (r ** float_of_int k) < 1e-9 *. max_scaled then 0.0 else c)
      coeffs
  in
  P.of_coeffs cleaned

(* The interpolation is well conditioned when the sample circle sits
   near the geometric mean of the polynomial's root magnitudes:
   (|c_0| / |c_deg|)^(1/deg).  The matrix-entry balance point used as
   the initial guess can be orders of magnitude off for higher-order
   circuits, so refine the radius from the recovered denominator and
   re-interpolate until it stabilizes. *)
let refine_radius r p =
  let d = P.degree p in
  if d < 1 then r
  else begin
    (* use the lowest surviving coefficient: badly conditioned first
       passes wipe out the low-order ones entirely *)
    let coeffs = P.coeffs p in
    let k0 = ref (-1) in
    Array.iteri (fun k c -> if !k0 < 0 && c <> 0.0 then k0 := k) coeffs;
    let cl = Float.abs coeffs.(d) in
    if !k0 >= 0 && !k0 < d && cl > 0.0 then
      (Float.abs coeffs.(!k0) /. cl) ** (1.0 /. float_of_int (d - !k0))
    else r
  end

let converged_radius matrix r0 =
  let rec loop r i =
    let den = interpolate_det matrix r in
    let r' = refine_radius r den in
    if i >= 6 || Float.abs (log (r' /. r)) < 0.3 then (r', den)
    else loop r' (i + 1)
  in
  loop r0 0

let transfer ~source ~output netlist =
  let index, matrix, rhs = system netlist ~source in
  let out_idx =
    match Index.node index output with
    | Some i -> i
    | None -> invalid_arg "Symbolic.transfer: output node is ground"
  in
  let r0 = estimate_radius matrix in
  let r, _ = converged_radius matrix r0 in
  let den = interpolate_det matrix r in
  if P.is_zero den then
    raise
      (Singular_circuit
         (Printf.sprintf "zero system determinant for %S" (Netlist.title netlist)));
  let with_col =
    Array.mapi
      (fun i row ->
        Array.mapi (fun j v -> if j = out_idx then rhs.(i) else v) row)
      matrix
  in
  let num = interpolate_det with_col r in
  Linalg.Ratfunc.make num den

let poles ~source ~output netlist =
  Linalg.Ratfunc.poles (transfer ~source ~output netlist)

let zeros ~source ~output netlist =
  Linalg.Ratfunc.zeros (transfer ~source ~output netlist)
