module Poly = Linalg.Poly
module Cmat = Linalg.Cmat

type t = {
  n : int;
  g : float array;  (* n*n row-major, s^0 coefficients *)
  c : float array;  (* n*n row-major, s^1 coefficients *)
  extra : (int * Poly.t) list;  (* flat index -> full polynomial, degree >= 2 *)
  rhs_g : float array;
  rhs_c : float array;
  rhs_extra : (int * Poly.t) list;
}

let split_into ~g ~c ~extra k p =
  g.(k) <- Poly.coeff p 0;
  c.(k) <- Poly.coeff p 1;
  if Poly.degree p > 1 then extra := (k, p) :: !extra

let build ?(sources = Assemble.Nominal) index netlist =
  Obs.Metrics.time "mna.assemble_s" @@ fun () ->
  let module A = Assemble.Make (Field.Polynomial) in
  let { A.matrix; rhs } = A.assemble ~sources index netlist in
  let n = Index.size index in
  let g = Array.make (n * n) 0.0
  and c = Array.make (n * n) 0.0
  and extra = ref [] in
  Array.iteri
    (fun i row -> Array.iteri (fun j p -> split_into ~g ~c ~extra ((i * n) + j) p) row)
    matrix;
  let rhs_g = Array.make n 0.0 and rhs_c = Array.make n 0.0 and rhs_extra = ref [] in
  Array.iteri (fun i p -> split_into ~g:rhs_g ~c:rhs_c ~extra:rhs_extra i p) rhs;
  { n; g; c; extra = !extra; rhs_g; rhs_c; rhs_extra = !rhs_extra }

let size t = t.n

let eval_at p omega = Poly.eval p Complex.{ re = 0.0; im = omega }

let fill t ~omega m =
  if Cmat.rows m <> t.n || Cmat.cols m <> t.n then
    invalid_arg "Stamps.fill: matrix dimension mismatch";
  Obs.Metrics.incr "mna.fills";
  Cmat.fill_parts m ~re:t.g ~im_scale:omega ~im:t.c;
  List.iter
    (fun (k, p) -> Cmat.set m (k / t.n) (k mod t.n) (eval_at p omega))
    t.extra

let matrix t ~omega =
  let m = Cmat.create t.n t.n in
  fill t ~omega m;
  m

let rhs_into t ~omega (b : Cmat.Pvec.t) =
  if Cmat.Pvec.length b <> t.n then invalid_arg "Stamps.rhs_into: dimension mismatch";
  for i = 0 to t.n - 1 do
    b.Cmat.Pvec.re.(i) <- t.rhs_g.(i);
    b.Cmat.Pvec.im.(i) <- omega *. t.rhs_c.(i)
  done;
  List.iter (fun (i, p) -> Cmat.Pvec.set b i (eval_at p omega)) t.rhs_extra

let rhs t ~omega =
  let b = Cmat.Pvec.create t.n in
  rhs_into t ~omega b;
  Cmat.Pvec.to_complex b

(* Off-heap variants: identical fill discipline (and the same
   "mna.fills" accounting) with the destination planes in Bigarray
   storage. *)

let fill_big t ~omega (m : Cmat.Big.t) =
  if Cmat.Big.rows m <> t.n || Cmat.Big.cols m <> t.n then
    invalid_arg "Stamps.fill_big: matrix dimension mismatch";
  Obs.Metrics.incr "mna.fills";
  Cmat.Big.fill_parts m ~re:t.g ~im_scale:omega ~im:t.c;
  List.iter
    (fun (k, p) -> Cmat.Big.set m (k / t.n) (k mod t.n) (eval_at p omega))
    t.extra

let rhs_into_big t ~omega (b : Cmat.Big.Vec.t) =
  if Cmat.Big.Vec.length b <> t.n then
    invalid_arg "Stamps.rhs_into_big: dimension mismatch";
  for i = 0 to t.n - 1 do
    Bigarray.Array1.unsafe_set b.Cmat.Big.Vec.re i t.rhs_g.(i);
    Bigarray.Array1.unsafe_set b.Cmat.Big.Vec.im i (omega *. t.rhs_c.(i))
  done;
  List.iter (fun (i, p) -> Cmat.Big.Vec.set b i (eval_at p omega)) t.rhs_extra

(* ---- sparse stamps ----

   The same one-pass polynomial assembly, accumulated per stamped
   position instead of into an n² plane: the callback layer of
   {!Assemble.Make} delivers stamps in element order, so each stored
   entry holds the identical polynomial sum the dense build computes —
   the sparse and dense A(jω) agree entry-for-entry (zeros elsewhere).
   Splitting then mirrors {!build}: s⁰ → [sg], s¹ → [sc], anything
   higher kept exactly in a per-slot overflow list. *)

module Csparse = Linalg.Csparse

type sparse = {
  sp_n : int;
  pattern : Csparse.pattern;
  sg : float array;  (* per pattern slot, s^0 coefficients *)
  sc : float array;  (* per pattern slot, s^1 coefficients *)
  s_extra : (int * Poly.t) list;  (* slot -> full polynomial, degree >= 2 *)
  srhs_g : float array;
  srhs_c : float array;
  srhs_extra : (int * Poly.t) list;
}

let build_sparse ?(sources = Assemble.Nominal) index netlist =
  Obs.Metrics.time "mna.assemble_s" @@ fun () ->
  let module A = Assemble.Make (Field.Polynomial) in
  let n = Index.size index in
  let tbl : (int, Poly.t) Hashtbl.t = Hashtbl.create 64 in
  let rhs = Array.make n Poly.zero in
  let add_m i j v =
    match (i, j) with
    | Some i, Some j ->
        let key = (i * n) + j in
        let prev = Option.value (Hashtbl.find_opt tbl key) ~default:Poly.zero in
        Hashtbl.replace tbl key (Poly.add prev v)
    | _ -> ()
  in
  let add_b i v =
    match i with Some i -> rhs.(i) <- Poly.add rhs.(i) v | None -> ()
  in
  A.stamp_into ~sources ~add_m ~add_b index netlist;
  let entries =
    Hashtbl.fold (fun key _ acc -> (key / n, key mod n) :: acc) tbl []
    |> Array.of_list
  in
  let pattern = Csparse.pattern ~n entries in
  let nnz = Csparse.nnz pattern in
  let sg = Array.make nnz 0.0 and sc = Array.make nnz 0.0 and extra = ref [] in
  Hashtbl.iter
    (fun key p ->
      let k = Csparse.slot pattern ~row:(key / n) ~col:(key mod n) in
      split_into ~g:sg ~c:sc ~extra k p)
    tbl;
  let srhs_g = Array.make n 0.0 and srhs_c = Array.make n 0.0 and srhs_extra = ref [] in
  Array.iteri (fun i p -> split_into ~g:srhs_g ~c:srhs_c ~extra:srhs_extra i p) rhs;
  {
    sp_n = n;
    pattern;
    sg;
    sc;
    s_extra = !extra;
    srhs_g;
    srhs_c;
    srhs_extra = !srhs_extra;
  }

let sparse_size t = t.sp_n
let sparse_pattern t = t.pattern
let sparse_nnz t = Csparse.nnz t.pattern

let fill_sparse t ~omega ~(re : Csparse.plane) ~(im : Csparse.plane) =
  if Bigarray.Array1.dim re <> Array.length t.sg || Bigarray.Array1.dim im <> Array.length t.sc
  then invalid_arg "Stamps.fill_sparse: value plane length mismatch";
  Obs.Metrics.incr "mna.fills";
  for k = 0 to Array.length t.sg - 1 do
    Bigarray.Array1.unsafe_set re k (Array.unsafe_get t.sg k);
    Bigarray.Array1.unsafe_set im k (omega *. Array.unsafe_get t.sc k)
  done;
  List.iter
    (fun (k, p) ->
      let z = eval_at p omega in
      Bigarray.Array1.set re k z.Complex.re;
      Bigarray.Array1.set im k z.Complex.im)
    t.s_extra

let sparse_rhs_into_big t ~omega (b : Cmat.Big.Vec.t) =
  if Cmat.Big.Vec.length b <> t.sp_n then
    invalid_arg "Stamps.sparse_rhs_into_big: dimension mismatch";
  for i = 0 to t.sp_n - 1 do
    Bigarray.Array1.unsafe_set b.Cmat.Big.Vec.re i t.srhs_g.(i);
    Bigarray.Array1.unsafe_set b.Cmat.Big.Vec.im i (omega *. t.srhs_c.(i))
  done;
  List.iter (fun (i, p) -> Cmat.Big.Vec.set b i (eval_at p omega)) t.srhs_extra
