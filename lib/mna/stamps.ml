module Poly = Linalg.Poly
module Cmat = Linalg.Cmat

type t = {
  n : int;
  g : float array;  (* n*n row-major, s^0 coefficients *)
  c : float array;  (* n*n row-major, s^1 coefficients *)
  extra : (int * Poly.t) list;  (* flat index -> full polynomial, degree >= 2 *)
  rhs_g : float array;
  rhs_c : float array;
  rhs_extra : (int * Poly.t) list;
}

let split_into ~g ~c ~extra k p =
  g.(k) <- Poly.coeff p 0;
  c.(k) <- Poly.coeff p 1;
  if Poly.degree p > 1 then extra := (k, p) :: !extra

let build ?(sources = Assemble.Nominal) index netlist =
  Obs.Metrics.time "mna.assemble_s" @@ fun () ->
  let module A = Assemble.Make (Field.Polynomial) in
  let { A.matrix; rhs } = A.assemble ~sources index netlist in
  let n = Index.size index in
  let g = Array.make (n * n) 0.0
  and c = Array.make (n * n) 0.0
  and extra = ref [] in
  Array.iteri
    (fun i row -> Array.iteri (fun j p -> split_into ~g ~c ~extra ((i * n) + j) p) row)
    matrix;
  let rhs_g = Array.make n 0.0 and rhs_c = Array.make n 0.0 and rhs_extra = ref [] in
  Array.iteri (fun i p -> split_into ~g:rhs_g ~c:rhs_c ~extra:rhs_extra i p) rhs;
  { n; g; c; extra = !extra; rhs_g; rhs_c; rhs_extra = !rhs_extra }

let size t = t.n

let eval_at p omega = Poly.eval p Complex.{ re = 0.0; im = omega }

let fill t ~omega m =
  if Cmat.rows m <> t.n || Cmat.cols m <> t.n then
    invalid_arg "Stamps.fill: matrix dimension mismatch";
  Obs.Metrics.incr "mna.fills";
  Cmat.fill_parts m ~re:t.g ~im_scale:omega ~im:t.c;
  List.iter
    (fun (k, p) -> Cmat.set m (k / t.n) (k mod t.n) (eval_at p omega))
    t.extra

let matrix t ~omega =
  let m = Cmat.create t.n t.n in
  fill t ~omega m;
  m

let rhs_into t ~omega (b : Cmat.Pvec.t) =
  if Cmat.Pvec.length b <> t.n then invalid_arg "Stamps.rhs_into: dimension mismatch";
  for i = 0 to t.n - 1 do
    b.Cmat.Pvec.re.(i) <- t.rhs_g.(i);
    b.Cmat.Pvec.im.(i) <- omega *. t.rhs_c.(i)
  done;
  List.iter (fun (i, p) -> Cmat.Pvec.set b i (eval_at p omega)) t.rhs_extra

let rhs t ~omega =
  let b = Cmat.Pvec.create t.n in
  rhs_into t ~omega b;
  Cmat.Pvec.to_complex b

(* Off-heap variants: identical fill discipline (and the same
   "mna.fills" accounting) with the destination planes in Bigarray
   storage. *)

let fill_big t ~omega (m : Cmat.Big.t) =
  if Cmat.Big.rows m <> t.n || Cmat.Big.cols m <> t.n then
    invalid_arg "Stamps.fill_big: matrix dimension mismatch";
  Obs.Metrics.incr "mna.fills";
  Cmat.Big.fill_parts m ~re:t.g ~im_scale:omega ~im:t.c;
  List.iter
    (fun (k, p) -> Cmat.Big.set m (k / t.n) (k mod t.n) (eval_at p omega))
    t.extra

let rhs_into_big t ~omega (b : Cmat.Big.Vec.t) =
  if Cmat.Big.Vec.length b <> t.n then
    invalid_arg "Stamps.rhs_into_big: dimension mismatch";
  for i = 0 to t.n - 1 do
    Bigarray.Array1.unsafe_set b.Cmat.Big.Vec.re i t.rhs_g.(i);
    Bigarray.Array1.unsafe_set b.Cmat.Big.Vec.im i (omega *. t.rhs_c.(i))
  done;
  List.iter (fun (i, p) -> Cmat.Big.Vec.set b i (eval_at p omega)) t.rhs_extra
