module Netlist := Circuit.Netlist
(** Generic MNA stamping, parametric in the coefficient field.

    Produces the system [A x = b] for a netlist: Kirchhoff current
    equations for every non-ground node followed by one branch equation
    per group-2 element. The functor is instantiated with a complex
    field (numeric AC analysis at a fixed ω) or with the polynomial
    field (symbolic transfer functions). *)

type source_mode =
  | Nominal  (** Every independent source keeps its declared amplitude. *)
  | Only of string
      (** The named independent source is driven with unit amplitude;
          all others are zeroed. Used for transfer functions. *)
  | Zeroed
      (** Every independent source is zeroed (V sources short, I
          sources open). Used by noise analysis, where the signal
          enters through the adjoint instead. *)

module Make (F : Field.S) : sig
  type system = { matrix : F.t array array; rhs : F.t array }

  val assemble : ?sources:source_mode -> Index.t -> Netlist.t -> system
  (** Raises [Not_found] if a current-sensing element references a
      voltage source absent from the index (catch earlier with
      {!Validate.check}). *)

  val stamp_into :
    ?sources:source_mode ->
    add_m:(int option -> int option -> F.t -> unit) ->
    add_b:(int option -> F.t -> unit) ->
    Index.t ->
    Netlist.t ->
    unit
  (** The stamping rules behind {!assemble}, delivered through
      callbacks: [add_m i j v] accumulates [v] at matrix position
      [(i, j)] and [add_b i v] into the excitation row [i], with [None]
      standing for ground (callers drop those). Stamps arrive in
      netlist element order — exactly the accumulation order
      {!assemble} produces — so any storage layout built through these
      callbacks holds entry-for-entry identical sums. *)

  val row_occupancy :
    ?sources:source_mode -> Index.t -> Netlist.t -> (string * int list) list
  (** For each element (by name, in netlist order) the sorted system
      rows it stamps into — matrix rows and excitation rows alike,
      value-independent. Used to mark rows that fault injection on an
      element can perturb. *)
end
