module Netlist := Circuit.Netlist
(** Generic MNA stamping, parametric in the coefficient field.

    Produces the system [A x = b] for a netlist: Kirchhoff current
    equations for every non-ground node followed by one branch equation
    per group-2 element. The functor is instantiated with a complex
    field (numeric AC analysis at a fixed ω) or with the polynomial
    field (symbolic transfer functions). *)

type source_mode =
  | Nominal  (** Every independent source keeps its declared amplitude. *)
  | Only of string
      (** The named independent source is driven with unit amplitude;
          all others are zeroed. Used for transfer functions. *)
  | Zeroed
      (** Every independent source is zeroed (V sources short, I
          sources open). Used by noise analysis, where the signal
          enters through the adjoint instead. *)

module Make (F : Field.S) : sig
  type system = { matrix : F.t array array; rhs : F.t array }

  val assemble : ?sources:source_mode -> Index.t -> Netlist.t -> system
  (** Raises [Not_found] if a current-sensing element references a
      voltage source absent from the index (catch earlier with
      {!Validate.check}). *)
end
