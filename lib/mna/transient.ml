module Netlist = Circuit.Netlist
module Element = Circuit.Element

type waveform =
  | Dc of float
  | Step of { t0 : float; v0 : float; v1 : float }
  | Sine of { amplitude : float; freq_hz : float; phase : float }
  | Pwl of (float * float) list

let value_at w t =
  match w with
  | Dc v -> v
  | Step { t0; v0; v1 } -> if t < t0 then v0 else v1
  | Sine { amplitude; freq_hz; phase } ->
      amplitude *. sin ((2.0 *. Float.pi *. freq_hz *. t) +. phase)
  | Pwl points -> (
      match points with
      | [] -> 0.0
      | (t0, v0) :: _ when t <= t0 -> v0
      | _ ->
          let rec interp = function
            | [ (_, v) ] -> v
            | (t1, v1) :: ((t2, v2) :: _ as rest) ->
                if t <= t2 then
                  if t2 = t1 then v2 else v1 +. ((v2 -. v1) *. (t -. t1) /. (t2 -. t1))
                else interp rest
            | [] -> 0.0
          in
          interp points)

type trace = { times : float array; signals : (string * float array) list }

(* Per-element integration state, updated after each accepted step. *)
type cap_state = { mutable v_prev : float; mutable i_prev : float }
type ind_state = { mutable il_prev : float; mutable vl_prev : float }
type opamp_state = { mutable vd_prev : float; mutable vo_prev : float }

let simulate ?(waveforms = []) ~record ~t_stop ~dt netlist =
  if dt <= 0.0 || t_stop <= 0.0 then
    invalid_arg "Transient.simulate: dt and t_stop must be positive";
  let index = Index.build netlist in
  let n = Index.size index in
  let node_idx name = Index.node index name in
  let real re = Complex.{ re; im = 0.0 } in
  let matrix = Linalg.Cmat.create n n in
  let add_m i j v =
    match (i, j) with
    | Some i, Some j -> Linalg.Cmat.add_to matrix i j (real v)
    | _ -> ()
  in
  (* --- constant (companion) matrix stamps --- *)
  let caps = ref [] and inds = ref [] and opamps = ref [] in
  List.iter
    (fun e ->
      match e with
      | Element.Resistor { n1; n2; value; _ } ->
          let g = 1.0 /. value in
          add_m (node_idx n1) (node_idx n1) g;
          add_m (node_idx n2) (node_idx n2) g;
          add_m (node_idx n1) (node_idx n2) (-.g);
          add_m (node_idx n2) (node_idx n1) (-.g)
      | Element.Capacitor { name; n1; n2; value } ->
          let geq = 2.0 *. value /. dt in
          add_m (node_idx n1) (node_idx n1) geq;
          add_m (node_idx n2) (node_idx n2) geq;
          add_m (node_idx n1) (node_idx n2) (-.geq);
          add_m (node_idx n2) (node_idx n1) (-.geq);
          caps :=
            (name, n1, n2, geq, { v_prev = 0.0; i_prev = 0.0 }) :: !caps
      | Element.Inductor { name; n1; n2; value } ->
          let b = Index.branch index name in
          add_m (node_idx n1) (Some b) 1.0;
          add_m (node_idx n2) (Some b) (-1.0);
          add_m (Some b) (node_idx n1) 1.0;
          add_m (Some b) (node_idx n2) (-1.0);
          add_m (Some b) (Some b) (-.(2.0 *. value /. dt));
          inds := (name, n1, n2, b, value, { il_prev = 0.0; vl_prev = 0.0 }) :: !inds
      | Element.Vsource { name; npos; nneg; _ } ->
          let b = Index.branch index name in
          add_m (node_idx npos) (Some b) 1.0;
          add_m (node_idx nneg) (Some b) (-1.0);
          add_m (Some b) (node_idx npos) 1.0;
          add_m (Some b) (node_idx nneg) (-1.0)
      | Element.Isource _ -> ()
      | Element.Vcvs { name; npos; nneg; cpos; cneg; gain } ->
          let b = Index.branch index name in
          add_m (node_idx npos) (Some b) 1.0;
          add_m (node_idx nneg) (Some b) (-1.0);
          add_m (Some b) (node_idx npos) 1.0;
          add_m (Some b) (node_idx nneg) (-1.0);
          add_m (Some b) (node_idx cpos) (-.gain);
          add_m (Some b) (node_idx cneg) gain
      | Element.Vccs { npos; nneg; cpos; cneg; gm; _ } ->
          add_m (node_idx npos) (node_idx cpos) gm;
          add_m (node_idx npos) (node_idx cneg) (-.gm);
          add_m (node_idx nneg) (node_idx cpos) (-.gm);
          add_m (node_idx nneg) (node_idx cneg) gm
      | Element.Ccvs { name; npos; nneg; vsense; r } ->
          let b = Index.branch index name in
          let bs = Index.branch index vsense in
          add_m (node_idx npos) (Some b) 1.0;
          add_m (node_idx nneg) (Some b) (-1.0);
          add_m (Some b) (node_idx npos) 1.0;
          add_m (Some b) (node_idx nneg) (-1.0);
          add_m (Some b) (Some bs) (-.r)
      | Element.Cccs { npos; nneg; vsense; gain; _ } ->
          let bs = Index.branch index vsense in
          add_m (node_idx npos) (Some bs) gain;
          add_m (node_idx nneg) (Some bs) (-.gain)
      | Element.Opamp { name; inp; inn; out; model } -> (
          let b = Index.branch index name in
          add_m (node_idx out) (Some b) 1.0;
          match model with
          | Element.Ideal ->
              add_m (Some b) (node_idx inp) 1.0;
              add_m (Some b) (node_idx inn) (-1.0)
          | Element.Single_pole { dc_gain; pole_hz } ->
              (* tau dvo/dt = A0 vd - vo, trapezoidal:
                 (tau + h/2) vo_n - (h/2) A0 vd_n =
                 (tau - h/2) vo_prev + (h/2) A0 vd_prev *)
              let tau = 1.0 /. (2.0 *. Float.pi *. pole_hz) in
              let half = dt /. 2.0 in
              add_m (Some b) (node_idx out) (tau +. half);
              add_m (Some b) (node_idx inp) (-.(half *. dc_gain));
              add_m (Some b) (node_idx inn) (half *. dc_gain);
              opamps :=
                (name, inp, inn, out, dc_gain, tau, { vd_prev = 0.0; vo_prev = 0.0 })
                :: !opamps))
    (Netlist.elements netlist);
  let lu =
    match Linalg.Cmat.lu_factor matrix with
    | lu -> lu
    | exception Linalg.Cmat.Singular ->
        raise (Ac.Singular_circuit "Transient.simulate: singular companion system")
  in
  let n_steps = int_of_float (Float.ceil (t_stop /. dt)) in
  let times = Array.init (n_steps + 1) (fun i -> float_of_int i *. dt) in
  let recorded = List.map (fun name -> (name, Array.make (n_steps + 1) 0.0)) record in
  let waveform_of name =
    match List.assoc_opt name waveforms with
    | Some w -> w
    | None -> (
        match Netlist.find_exn netlist name with
        | Element.Vsource { value; _ } | Element.Isource { value; _ } -> Dc value
        | _ -> Dc 0.0)
  in
  (* The companion system is real: only the re plane of the reused
     planar workspaces ever carries data, and the per-step solve is
     allocation-free. *)
  let module Pvec = Linalg.Cmat.Pvec in
  let b = Pvec.create n and solution = Pvec.create n in
  let v_of name =
    match node_idx name with None -> 0.0 | Some i -> solution.Pvec.re.(i)
  in
  for step = 1 to n_steps do
    let t = float_of_int step *. dt in
    Pvec.fill_zero b;
    let add_b i v =
      match i with Some i -> b.Pvec.re.(i) <- b.Pvec.re.(i) +. v | None -> ()
    in
    (* independent sources at time t *)
    List.iter
      (fun e ->
        match e with
        | Element.Vsource { name; _ } ->
            add_b (Some (Index.branch index name)) (value_at (waveform_of name) t)
        | Element.Isource { name; npos; nneg; _ } ->
            let v = value_at (waveform_of name) t in
            add_b (node_idx npos) (-.v);
            add_b (node_idx nneg) v
        | _ -> ())
      (Netlist.elements netlist);
    (* companion history terms *)
    List.iter
      (fun (_, n1, n2, geq, st) ->
        let ieq = (geq *. st.v_prev) +. st.i_prev in
        add_b (node_idx n1) ieq;
        add_b (node_idx n2) (-.ieq))
      !caps;
    List.iter
      (fun (_, _, _, b, l, st) ->
        add_b (Some b) (-.(st.vl_prev +. (2.0 *. l /. dt *. st.il_prev))))
      !inds;
    List.iter
      (fun (name, _, _, _, a0, tau, st) ->
        let b = Index.branch index name in
        let half = dt /. 2.0 in
        add_b (Some b)
          (((tau -. half) *. st.vo_prev) +. (half *. a0 *. st.vd_prev)))
      !opamps;
    Linalg.Cmat.lu_solve_into lu ~b ~x:solution;
    (* update states *)
    List.iter
      (fun (_, n1, n2, geq, st) ->
        let v = v_of n1 -. v_of n2 in
        let i = (geq *. (v -. st.v_prev)) -. st.i_prev in
        st.v_prev <- v;
        st.i_prev <- i)
      !caps;
    List.iter
      (fun (_, n1, n2, br, _, st) ->
        st.vl_prev <- v_of n1 -. v_of n2;
        st.il_prev <- solution.Pvec.re.(br))
      !inds;
    List.iter
      (fun (_, inp, inn, out, _, _, st) ->
        st.vd_prev <- v_of inp -. v_of inn;
        st.vo_prev <- v_of out)
      !opamps;
    List.iter (fun (name, arr) -> arr.(step) <- v_of name) recorded
  done;
  { times; signals = recorded }
