module Netlist := Circuit.Netlist

(** Linear transient simulation (fixed-step trapezoidal rule).

    Reactive elements become their trapezoidal companion models, so the
    system matrix is constant over the run: it is assembled and
    LU-factored once, and every time step is a forward/back
    substitution with an updated right-hand side. Ideal opamps keep
    their nullor stamp; single-pole opamps integrate their one-pole
    state equation. Used by the examples to show configuration
    switching in the time domain, and as an independent check of the AC
    engine (steady-state sine amplitude vs. |H(jω)|). *)

type waveform =
  | Dc of float
  | Step of { t0 : float; v0 : float; v1 : float }
  | Sine of { amplitude : float; freq_hz : float; phase : float }
  | Pwl of (float * float) list
      (** Piecewise-linear (time, value) points; constant extrapolation
          outside the given range. Times must be increasing. *)

val value_at : waveform -> float -> float

type trace = {
  times : float array;
  signals : (string * float array) list;
      (** One series per recorded node, in request order. *)
}

val simulate :
  ?waveforms:(string * waveform) list ->
  record:string list ->
  t_stop:float -> dt:float ->
  Netlist.t ->
  trace
(** Simulate from t = 0 (all states zero) to [t_stop]. Independent
    sources follow their entry in [waveforms]; sources not listed hold
    their netlist value as DC. [record] lists the node voltages to
    capture. Raises {!Ac.Singular_circuit} when the companion system is
    singular, [Invalid_argument] on a non-positive step or horizon. *)
