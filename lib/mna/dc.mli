module Netlist := Circuit.Netlist
(** DC operating point (s = 0): capacitors open, inductors short.

    A thin wrapper over the AC solver at ω = 0, with real-valued
    accessors. Useful for checking bias/offset paths of the benchmark
    circuits and for sanity tests. *)

type solution

val solve : ?sources:Assemble.source_mode -> Netlist.t -> solution
val voltage : solution -> string -> float
val current : solution -> string -> float
