module Netlist := Circuit.Netlist

(** Output-referred thermal noise by the adjoint method.

    Every resistor contributes a white current noise of power spectral
    density 4kT/R; the transimpedance from a current injected across
    the resistor's terminals to the output voltage is the adjoint
    voltage difference across those terminals, so a single adjoint
    solve per frequency prices every noise source at once. Independent
    sources are zeroed (shorted/opened) during the analysis. *)

type contribution = { element : string; psd : float }
(** One resistor's output-referred noise PSD, in V²/Hz. *)

val at_omega :
  ?temperature:float -> output:string -> Netlist.t -> omega:float ->
  contribution list * float
(** Per-resistor contributions and the total output noise PSD at one
    angular frequency. [temperature] defaults to 300 K. Raises
    {!Ac.Singular_circuit} when the adjoint system is singular,
    [Invalid_argument] when [output] is ground. *)

val integrated_rms :
  ?temperature:float -> output:string -> Netlist.t -> freqs_hz:float array -> float
(** Total output noise voltage (V rms) over the given frequency grid,
    by trapezoidal integration of the PSD. The grid should cover the
    circuit's full noise bandwidth (e.g. for an RC lowpass the result
    approaches sqrt(kT/C)). *)
