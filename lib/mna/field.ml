(** Coefficient fields for MNA assembly.

    The same stamping code serves two back-ends: numeric AC analysis
    (entries in ℂ with s = jω fixed) and symbolic transfer-function
    extraction (entries are real polynomials in s). *)

module type S = sig
  type t

  val zero : t
  val one : t
  val of_float : float -> t
  val s : t
  (** The Laplace variable: jω for the numeric field, the monomial s
      for the symbolic field. *)

  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val neg : t -> t
  val is_zero : t -> bool
end

(** Numeric field at a fixed angular frequency. *)
let complex ~omega : (module S with type t = Complex.t) =
  (module struct
    type t = Complex.t

    let zero = Complex.zero
    let one = Complex.one
    let of_float re = Complex.{ re; im = 0.0 }
    let s = Complex.{ re = 0.0; im = omega }
    let add = Complex.add
    let sub = Complex.sub
    let mul = Complex.mul
    let neg = Complex.neg
    let is_zero (z : t) = z.re = 0.0 && z.im = 0.0
  end)

(** Symbolic field: real polynomials in s. *)
module Polynomial : S with type t = Linalg.Poly.t = struct
  type t = Linalg.Poly.t

  let zero = Linalg.Poly.zero
  let one = Linalg.Poly.one
  let of_float = Linalg.Poly.const
  let s = Linalg.Poly.s
  let add = Linalg.Poly.add
  let sub = Linalg.Poly.sub
  let mul = Linalg.Poly.mul
  let neg = Linalg.Poly.neg
  let is_zero = Linalg.Poly.is_zero
end
