module Netlist := Circuit.Netlist
(** Exact symbolic transfer functions H(s) = num(s)/den(s).

    The MNA system is assembled over the ring of real polynomials in s
    and solved by Cramer's rule with fraction-free (Bareiss)
    elimination: H(s) = det(A with the output column replaced by b) /
    det(A). This gives the exact rational transfer function of the
    linear circuit — the symbolic counterpart of {!Ac.sweep}, used for
    pole/zero analysis and as a cross-check oracle in tests. *)

exception Singular_circuit of string

val determinant : Linalg.Poly.t array array -> Linalg.Poly.t
(** Fraction-free determinant of a square polynomial matrix. *)

val transfer : source:string -> output:string -> Netlist.t -> Linalg.Ratfunc.t
(** Transfer function from the named source (unit amplitude) to the
    output node voltage. Raises {!Singular_circuit} when det(A) is the
    zero polynomial, [Invalid_argument] when [output] is ground or
    unknown. *)

val poles : source:string -> output:string -> Netlist.t -> Complex.t array
val zeros : source:string -> output:string -> Netlist.t -> Complex.t array
