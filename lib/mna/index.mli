module Netlist := Circuit.Netlist
module Element := Circuit.Element
(** Unknown-vector indexing for Modified Nodal Analysis.

    The MNA unknown vector stacks one voltage per non-ground node and
    one branch current per "group-2" element (independent and
    controlled voltage sources, inductors, opamp outputs). The index is
    built once per netlist and shared by the numeric and symbolic
    assemblers. *)

type t

val build : Netlist.t -> t

val size : t -> int
(** Total number of unknowns. *)

val node : t -> string -> int option
(** Index of a node voltage; [None] for ground. Raises
    [Invalid_argument] for a node absent from the netlist. *)

val branch : t -> string -> int
(** Index of the branch current of element [name]; raises [Not_found]
    when the element carries no branch-current unknown. *)

val has_branch : t -> string -> bool
val node_names : t -> string array
(** Node names in index order (indices [0 .. n_nodes-1]). *)

val n_nodes : t -> int

val needs_branch : Element.t -> bool
(** Whether this element type contributes a branch-current unknown. *)
