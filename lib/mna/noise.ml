module Netlist = Circuit.Netlist
module Element = Circuit.Element

type contribution = { element : string; psd : float }

let boltzmann = 1.380649e-23

(* Assembly goes through the frequency-split Stamps planes so a
   frequency sweep builds the stamps once (see integrated_rms). *)
let analyze index stamps ?(temperature = 300.0) ~output netlist ~omega =
  let a = Stamps.matrix stamps ~omega in
  let out_idx =
    match Index.node index output with
    | Some i -> i
    | None -> invalid_arg "Noise.at_omega: output node is ground"
  in
  let e_out = Array.make (Index.size index) Complex.zero in
  e_out.(out_idx) <- Complex.one;
  let xi =
    match Linalg.Cmat.solve (Linalg.Cmat.transpose a) e_out with
    | xi -> xi
    | exception Linalg.Cmat.Singular ->
        raise (Ac.Singular_circuit "Noise.at_omega: singular adjoint system")
  in
  let adjoint_at n =
    match Index.node index n with None -> Complex.zero | Some i -> xi.(i)
  in
  let contributions =
    List.filter_map
      (fun e ->
        match e with
        | Element.Resistor { name; n1; n2; value } ->
            (* current noise 4kT/R across (n1, n2); output PSD is
               |transimpedance|^2 times that *)
            let z = Complex.sub (adjoint_at n1) (adjoint_at n2) in
            let psd =
              4.0 *. boltzmann *. temperature /. value *. (Complex.norm z ** 2.0)
            in
            Some { element = name; psd }
        | Element.Capacitor _ | Element.Inductor _ | Element.Vsource _
        | Element.Isource _ | Element.Vcvs _ | Element.Vccs _ | Element.Ccvs _
        | Element.Cccs _ | Element.Opamp _ -> None)
      (Netlist.elements netlist)
  in
  let total = List.fold_left (fun acc c -> acc +. c.psd) 0.0 contributions in
  (contributions, total)

let at_omega ?temperature ~output netlist ~omega =
  let index = Index.build netlist in
  let stamps = Stamps.build ~sources:Assemble.Zeroed index netlist in
  analyze index stamps ?temperature ~output netlist ~omega

let integrated_rms ?temperature ~output netlist ~freqs_hz =
  let n = Array.length freqs_hz in
  if n < 2 then invalid_arg "Noise.integrated_rms: need at least two frequencies";
  (* One index + stamp build for the whole integration grid. *)
  let index = Index.build netlist in
  let stamps = Stamps.build ~sources:Assemble.Zeroed index netlist in
  let psd =
    Array.map
      (fun f ->
        snd (analyze index stamps ?temperature ~output netlist ~omega:(2.0 *. Float.pi *. f)))
      freqs_hz
  in
  let variance = ref 0.0 in
  for i = 0 to n - 2 do
    let df = freqs_hz.(i + 1) -. freqs_hz.(i) in
    variance := !variance +. ((psd.(i) +. psd.(i + 1)) /. 2.0 *. df)
  done;
  sqrt !variance
