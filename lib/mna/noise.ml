module Netlist = Circuit.Netlist
module Element = Circuit.Element

type contribution = { element : string; psd : float }

let boltzmann = 1.380649e-23

module Big = Linalg.Cmat.Big

(* Reusable per-sweep off-heap workspace: A(jω), its transpose for
   the adjoint solve, and one LU factor. *)
type ws = { wa : Big.t; wat : Big.t; wlu : Big.lu; wb : Big.Vec.t; wx : Big.Vec.t }

let make_ws n =
  { wa = Big.create n n; wat = Big.create n n;
    wlu = Big.lu_create n; wb = Big.Vec.create n; wx = Big.Vec.create n }

(* Assembly goes through the frequency-split Stamps planes so a
   frequency sweep builds the stamps once (see integrated_rms). *)
let analyze ws index stamps ?(temperature = 300.0) ~output netlist ~omega =
  let n = Index.size index in
  Stamps.fill_big stamps ~omega ws.wa;
  let out_idx =
    match Index.node index output with
    | Some i -> i
    | None -> invalid_arg "Noise.at_omega: output node is ground"
  in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Big.set ws.wat j i (Big.get ws.wa i j)
    done
  done;
  Big.Vec.fill_zero ws.wb;
  Big.Vec.set ws.wb out_idx Complex.one;
  let xi =
    match
      Big.lu_factor_into ws.wlu ws.wat;
      Big.lu_solve_into ws.wlu ~b:ws.wb ~x:ws.wx
    with
    | () -> Big.Vec.to_complex ws.wx
    | exception Linalg.Cmat.Singular ->
        raise (Ac.Singular_circuit "Noise.at_omega: singular adjoint system")
  in
  let adjoint_at n =
    match Index.node index n with None -> Complex.zero | Some i -> xi.(i)
  in
  let contributions =
    List.filter_map
      (fun e ->
        match e with
        | Element.Resistor { name; n1; n2; value } ->
            (* current noise 4kT/R across (n1, n2); output PSD is
               |transimpedance|^2 times that *)
            let z = Complex.sub (adjoint_at n1) (adjoint_at n2) in
            let psd =
              4.0 *. boltzmann *. temperature /. value *. (Complex.norm z ** 2.0)
            in
            Some { element = name; psd }
        | Element.Capacitor _ | Element.Inductor _ | Element.Vsource _
        | Element.Isource _ | Element.Vcvs _ | Element.Vccs _ | Element.Ccvs _
        | Element.Cccs _ | Element.Opamp _ -> None)
      (Netlist.elements netlist)
  in
  let total = List.fold_left (fun acc c -> acc +. c.psd) 0.0 contributions in
  (contributions, total)

let at_omega ?temperature ~output netlist ~omega =
  let index = Index.build netlist in
  let stamps = Stamps.build ~sources:Assemble.Zeroed index netlist in
  analyze (make_ws (Index.size index)) index stamps ?temperature ~output netlist ~omega

let integrated_rms ?temperature ~output netlist ~freqs_hz =
  let n = Array.length freqs_hz in
  if n < 2 then invalid_arg "Noise.integrated_rms: need at least two frequencies";
  (* One index + stamp build — and one off-heap workspace — for the
     whole integration grid. *)
  let index = Index.build netlist in
  let stamps = Stamps.build ~sources:Assemble.Zeroed index netlist in
  let ws = make_ws (Index.size index) in
  let psd =
    Array.map
      (fun f ->
        snd
          (analyze ws index stamps ?temperature ~output netlist
             ~omega:(2.0 *. Float.pi *. f)))
      freqs_hz
  in
  let variance = ref 0.0 in
  for i = 0 to n - 2 do
    let df = freqs_hz.(i + 1) -. freqs_hz.(i) in
    variance := !variance +. ((psd.(i) +. psd.(i + 1)) /. 2.0 *. df)
  done;
  sqrt !variance
