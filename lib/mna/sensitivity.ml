module Netlist = Circuit.Netlist
module Element = Circuit.Element

type t = {
  element : string;
  d_transfer : Complex.t;
  normalized : Complex.t;
  rel_magnitude : float;
}

module Big = Linalg.Cmat.Big

(* Reusable per-sweep off-heap workspace: one A(jω) buffer, its
   transpose for the adjoint system, and one LU factor — so a
   frequency sweep re-assembles and re-factorizes without allocating
   per point. *)
type ws = { wa : Big.t; wat : Big.t; wlu : Big.lu; wb : Big.Vec.t; wx : Big.Vec.t }

let make_ws n =
  { wa = Big.create n n; wat = Big.create n n;
    wlu = Big.lu_create n; wb = Big.Vec.create n; wx = Big.Vec.create n }

let transpose_into ~src ~dst n =
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Big.set dst j i (Big.get src i j)
    done
  done

(* dV_out/dp = -xi^T (dA/dp) x  with  A^T xi = e_out.  The stamp
   derivative of a two-terminal admittance y(p) between n1 and n2
   contracts to  (xi_n1 - xi_n2)(x_n1 - x_n2) * dy/dp, so each element
   needs only its own terminal values of x and xi. Assembly goes
   through the frequency-split Stamps planes (built once per netlist
   by the caller) instead of re-running the stamping functor at every
   frequency. *)
let analyze ws index stamps ~output netlist ~omega =
  let n = Index.size index in
  Stamps.fill_big stamps ~omega ws.wa;
  Stamps.rhs_into_big stamps ~omega ws.wb;
  let x =
    match
      Big.lu_factor_into ws.wlu ws.wa;
      Big.lu_solve_into ws.wlu ~b:ws.wb ~x:ws.wx
    with
    | () -> Big.Vec.to_complex ws.wx
    | exception Linalg.Cmat.Singular ->
        raise (Ac.Singular_circuit "Sensitivity.at_omega: singular system")
  in
  let out_idx =
    match Index.node index output with
    | Some i -> i
    | None -> invalid_arg "Sensitivity.at_omega: output node is ground"
  in
  transpose_into ~src:ws.wa ~dst:ws.wat n;
  Big.Vec.fill_zero ws.wb;
  Big.Vec.set ws.wb out_idx Complex.one;
  let xi =
    match
      Big.lu_factor_into ws.wlu ws.wat;
      Big.lu_solve_into ws.wlu ~b:ws.wb ~x:ws.wx
    with
    | () -> Big.Vec.to_complex ws.wx
    | exception Linalg.Cmat.Singular ->
        raise (Ac.Singular_circuit "Sensitivity.at_omega: singular adjoint system")
  in
  let value_at n =
    match Index.node index n with None -> Complex.zero | Some i -> x.(i)
  in
  let adjoint_at n =
    match Index.node index n with None -> Complex.zero | Some i -> xi.(i)
  in
  let s = Complex.{ re = 0.0; im = omega } in
  let transfer = x.(out_idx) in
  let pattern n1 n2 =
    Complex.mul
      (Complex.sub (adjoint_at n1) (adjoint_at n2))
      (Complex.sub (value_at n1) (value_at n2))
  in
  let sensitivity e =
    match e with
    | Element.Resistor { name; n1; n2; value } ->
        (* y = 1/R, dy/dR = -1/R^2; dV/dR = -pattern * dy/dR *)
        let d = Complex.div (pattern n1 n2) { Complex.re = value *. value; im = 0.0 } in
        Some (name, value, d)
    | Element.Capacitor { name; n1; n2; value } ->
        (* y = s C, dy/dC = s; dV/dC = -pattern * s *)
        let d = Complex.neg (Complex.mul s (pattern n1 n2)) in
        Some (name, value, d)
    | Element.Inductor { name; value; _ } ->
        (* branch equation entry -sL at (b,b): dV/dL = s xi_b x_b *)
        let b = Index.branch index name in
        let d = Complex.mul s (Complex.mul xi.(b) x.(b)) in
        Some (name, value, d)
    | Element.Vsource _ | Element.Isource _ | Element.Vcvs _ | Element.Vccs _
    | Element.Ccvs _ | Element.Cccs _ | Element.Opamp _ -> None
  in
  List.filter_map
    (fun e ->
      Option.map
        (fun (element, value, d_transfer) ->
          let normalized =
            if Complex.norm transfer = 0.0 then Complex.zero
            else
              Complex.div
                (Complex.mul { Complex.re = value; im = 0.0 } d_transfer)
                transfer
          in
          { element; d_transfer; normalized; rel_magnitude = normalized.Complex.re })
        (sensitivity e))
    (Netlist.elements netlist)

let at_omega ~source ~output netlist ~omega =
  let index = Index.build netlist in
  let stamps = Stamps.build ~sources:(Assemble.Only source) index netlist in
  analyze (make_ws (Index.size index)) index stamps ~output netlist ~omega

let magnitude_sweep ~source ~output netlist ~freqs_hz =
  (* One index + stamp build — and one off-heap workspace — for the
     whole sweep. *)
  let index = Index.build netlist in
  let stamps = Stamps.build ~sources:(Assemble.Only source) index netlist in
  let ws = make_ws (Index.size index) in
  let per_freq =
    Array.map
      (fun f -> analyze ws index stamps ~output netlist ~omega:(2.0 *. Float.pi *. f))
      freqs_hz
  in
  match Array.length per_freq with
  | 0 -> []
  | _ ->
      List.mapi
        (fun k (first : t) ->
          ( first.element,
            Array.map (fun results -> Complex.norm (List.nth results k).normalized) per_freq ))
        per_freq.(0)
