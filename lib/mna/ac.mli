module Netlist := Circuit.Netlist
(** Numeric AC small-signal analysis.

    Solves the MNA system over ℂ at fixed frequencies. This is the
    drop-in replacement for the HSPICE AC sweeps the paper relies on:
    linear(ized) opamp-RC networks driven by a sinusoidal source. *)

exception Singular_circuit of string
(** The MNA matrix is singular at the requested frequency — typically a
    floating node or an ill-posed ideal-opamp configuration. *)

type solution

val solve : ?sources:Assemble.source_mode -> Netlist.t -> omega:float -> solution
(** Full solve at angular frequency [omega] (rad/s). *)

val voltage : solution -> string -> Complex.t
(** Node voltage; [Complex.zero] for ground. *)

val current : solution -> string -> Complex.t
(** Branch current of a group-2 element (voltage sources, inductors,
    opamp outputs); raises [Not_found] otherwise. *)

val transfer : source:string -> output:string -> Netlist.t -> omega:float -> Complex.t
(** [transfer ~source ~output n ~omega] is V(output)/V(source-amplitude)
    with the named independent source driven at unit amplitude and all
    other independent sources zeroed. *)

val sweep :
  source:string -> output:string -> Netlist.t -> freqs_hz:float array -> Complex.t array
(** Transfer function sampled on a frequency grid (Hz). *)

val magnitude_db : Complex.t -> float
(** 20 log10 |z|; [-inf] for zero. *)
