module Netlist = Circuit.Netlist
module Element = Circuit.Element
type t = {
  node_idx : (string, int) Hashtbl.t;
  branch_idx : (string, int) Hashtbl.t;
  names : string array;
  total : int;
}

let needs_branch = function
  | Element.Vsource _ | Element.Vcvs _ | Element.Ccvs _ | Element.Inductor _
  | Element.Opamp _ -> true
  | Element.Resistor _ | Element.Capacitor _ | Element.Isource _ | Element.Vccs _
  | Element.Cccs _ -> false

let build netlist =
  let nodes = Netlist.internal_nodes netlist in
  let node_idx = Hashtbl.create 16 in
  List.iteri (fun i n -> Hashtbl.replace node_idx n i) nodes;
  let n_nodes = List.length nodes in
  let branch_idx = Hashtbl.create 16 in
  let next = ref n_nodes in
  List.iter
    (fun e ->
      if needs_branch e then begin
        Hashtbl.replace branch_idx (Element.name e) !next;
        incr next
      end)
    (Netlist.elements netlist);
  { node_idx; branch_idx; names = Array.of_list nodes; total = !next }

let size t = t.total

let node t n =
  if n = Element.ground then None
  else
    match Hashtbl.find_opt t.node_idx n with
    | Some i -> Some i
    | None -> invalid_arg (Printf.sprintf "Index.node: unknown node %S" n)

let branch t name = Hashtbl.find t.branch_idx name
let has_branch t name = Hashtbl.mem t.branch_idx name
let node_names t = Array.copy t.names
let n_nodes t = Array.length t.names
