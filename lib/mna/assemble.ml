module Netlist = Circuit.Netlist
module Element = Circuit.Element
type source_mode = Nominal | Only of string | Zeroed

module Make (F : Field.S) = struct
  type system = { matrix : F.t array array; rhs : F.t array }

  (* One element's stamps, delivered through callbacks so the same
     stamping rules serve every storage layout: the dense [array array]
     system below, the sparse COO pattern in {!Stamps}, and the
     row-occupancy instrumentation. [add_m]/[add_b] receive [None] for
     ground, exactly as the accumulating closures always did. *)
  let stamp_element ~sources ~add_m ~add_b index e =
    let node = Index.node index in
    let br name = Some (Index.branch index name) in
    let source_amplitude name declared =
      match sources with
      | Nominal -> declared
      | Only s -> if String.equal s name then 1.0 else 0.0
      | Zeroed -> 0.0
    in
    (* Conductance-style stamp between two nodes. *)
    let stamp_admittance n1 n2 y =
      let i1 = node n1 and i2 = node n2 in
      add_m i1 i1 y;
      add_m i2 i2 y;
      add_m i1 i2 (F.neg y);
      add_m i2 i1 (F.neg y)
    in
    (* Branch current [bi] flowing out of [npos] into [nneg]. *)
    let stamp_branch_kcl npos nneg bi =
      add_m (node npos) bi F.one;
      add_m (node nneg) bi (F.neg F.one)
    in
    match e with
    | Element.Resistor { n1; n2; value; _ } ->
        stamp_admittance n1 n2 (F.of_float (1.0 /. value))
    | Element.Capacitor { n1; n2; value; _ } ->
        stamp_admittance n1 n2 (F.mul F.s (F.of_float value))
    | Element.Inductor { name; n1; n2; value } ->
        let bi = br name in
        stamp_branch_kcl n1 n2 bi;
        (* branch equation: v1 - v2 - s L i = 0 *)
        add_m bi (node n1) F.one;
        add_m bi (node n2) (F.neg F.one);
        add_m bi bi (F.neg (F.mul F.s (F.of_float value)))
    | Element.Vsource { name; npos; nneg; value } ->
        let bi = br name in
        stamp_branch_kcl npos nneg bi;
        add_m bi (node npos) F.one;
        add_m bi (node nneg) (F.neg F.one);
        add_b bi (F.of_float (source_amplitude name value))
    | Element.Isource { name; npos; nneg; value } ->
        let amplitude = source_amplitude name value in
        (* positive current flows from npos through the source to nneg *)
        add_b (node npos) (F.of_float (-.amplitude));
        add_b (node nneg) (F.of_float amplitude)
    | Element.Vcvs { name; npos; nneg; cpos; cneg; gain } ->
        let bi = br name in
        stamp_branch_kcl npos nneg bi;
        (* v(npos) - v(nneg) - gain (v(cpos) - v(cneg)) = 0 *)
        add_m bi (node npos) F.one;
        add_m bi (node nneg) (F.neg F.one);
        add_m bi (node cpos) (F.of_float (-.gain));
        add_m bi (node cneg) (F.of_float gain)
    | Element.Vccs { npos; nneg; cpos; cneg; gm; _ } ->
        let g = F.of_float gm in
        add_m (node npos) (node cpos) g;
        add_m (node npos) (node cneg) (F.neg g);
        add_m (node nneg) (node cpos) (F.neg g);
        add_m (node nneg) (node cneg) g
    | Element.Ccvs { name; npos; nneg; vsense; r } ->
        let bi = br name in
        let bsense = Some (Index.branch index vsense) in
        stamp_branch_kcl npos nneg bi;
        add_m bi (node npos) F.one;
        add_m bi (node nneg) (F.neg F.one);
        add_m bi bsense (F.of_float (-.r))
    | Element.Cccs { npos; nneg; vsense; gain; _ } ->
        let bsense = Some (Index.branch index vsense) in
        add_m (node npos) bsense (F.of_float gain);
        add_m (node nneg) bsense (F.of_float (-.gain))
    | Element.Opamp { name; inp; inn; out; model } -> (
        let bi = br name in
        (* output drives [out] through the branch current *)
        add_m (node out) bi F.one;
        match model with
        | Element.Ideal ->
            (* nullor: v(inp) = v(inn) *)
            add_m bi (node inp) F.one;
            add_m bi (node inn) (F.neg F.one)
        | Element.Single_pole { dc_gain; pole_hz } ->
            (* (1 + s/wp) v(out) - A0 (v(inp) - v(inn)) = 0; the row is
               multiplied through by (1 + s/wp) to stay polynomial. *)
            let wp = 2.0 *. Float.pi *. pole_hz in
            let one_plus_s_over_wp =
              F.add F.one (F.mul F.s (F.of_float (1.0 /. wp)))
            in
            add_m bi (node out) one_plus_s_over_wp;
            add_m bi (node inp) (F.of_float (-.dc_gain));
            add_m bi (node inn) (F.of_float dc_gain))

  let stamp_into ?(sources = Nominal) ~add_m ~add_b index netlist =
    List.iter (stamp_element ~sources ~add_m ~add_b index) (Netlist.elements netlist)

  let assemble ?(sources = Nominal) index netlist =
    let n = Index.size index in
    let matrix = Array.make_matrix n n F.zero in
    let rhs = Array.make n F.zero in
    let add_m i j v =
      match (i, j) with
      | Some i, Some j -> matrix.(i).(j) <- F.add matrix.(i).(j) v
      | _ -> ()
    in
    let add_b i v =
      match i with Some i -> rhs.(i) <- F.add rhs.(i) v | None -> ()
    in
    stamp_into ~sources ~add_m ~add_b index netlist;
    { matrix; rhs }

  (* Which system rows each element stamps into (matrix rows and rhs
     rows alike), by element name. The campaign pruner uses this to
     lock the rows fault injection can touch out of its row-sign
     normalization. *)
  let row_occupancy ?(sources = Nominal) index netlist =
    List.map
      (fun e ->
        let rows = Hashtbl.create 8 in
        let touch = function Some i -> Hashtbl.replace rows i () | None -> () in
        let add_m i _j _v = touch i in
        let add_b i _v = touch i in
        stamp_element ~sources ~add_m ~add_b index e;
        ( Element.name e,
          Hashtbl.fold (fun i () acc -> i :: acc) rows [] |> List.sort compare ))
      (Netlist.elements netlist)
end
