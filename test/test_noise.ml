module Netlist = Circuit.Netlist

let rc ~r ~c () =
  Netlist.empty ~title:"rc" ()
  |> Netlist.vsource ~name:"V1" "in" "0" 1.0
  |> Netlist.resistor ~name:"R1" "in" "out" r
  |> Netlist.capacitor ~name:"C1" "out" "0" c

let boltzmann = 1.380649e-23

let test_resistor_psd_at_dc () =
  (* a bare resistor to ground seen directly: PSD = 4kTR *)
  let n =
    Netlist.empty ~title:"r" ()
    |> Netlist.isource ~name:"I1" "0" "out" 0.0
    |> Netlist.resistor ~name:"R1" "out" "0" 10_000.0
  in
  let _, total = Mna.Noise.at_omega ~output:"out" n ~omega:1.0 in
  Alcotest.(check (float 1e-25)) "4kTR" (4.0 *. boltzmann *. 300.0 *. 10_000.0) total

let test_rc_filtered_psd () =
  (* through the RC lowpass the resistor PSD is shaped by |H|^2 *)
  let r = 10_000.0 and c = 10e-9 in
  let wc = 1.0 /. (r *. c) in
  let _, at_corner = Mna.Noise.at_omega ~output:"out" (rc ~r ~c ()) ~omega:wc in
  let psd0 = 4.0 *. boltzmann *. 300.0 *. r in
  Alcotest.(check bool) "half power at the corner" true
    (Util.Floatx.approx_eq ~rel:1e-9 at_corner (psd0 /. 2.0))

let test_ktc_noise () =
  (* integrated RC output noise approaches sqrt(kT/C) *)
  let r = 10_000.0 and c = 10e-9 in
  let fc = 1.0 /. (2.0 *. Float.pi *. r *. c) in
  (* dense linear grid far beyond the corner; the integral converges
     like arctan so 300x the corner captures ~99.8% of the variance *)
  let freqs = Util.Floatx.linspace 1.0 (300.0 *. fc) 30_000 in
  let rms = Mna.Noise.integrated_rms ~output:"out" (rc ~r ~c ()) ~freqs_hz:freqs in
  let expected = sqrt (boltzmann *. 300.0 /. c) in
  Alcotest.(check bool)
    (Printf.sprintf "kT/C: got %g, expected %g" rms expected)
    true
    (Float.abs (rms -. expected) /. expected < 0.02)

let test_temperature_scaling () =
  let n = rc ~r:10_000.0 ~c:10e-9 () in
  let _, cold = Mna.Noise.at_omega ~temperature:150.0 ~output:"out" n ~omega:100.0 in
  let _, hot = Mna.Noise.at_omega ~temperature:300.0 ~output:"out" n ~omega:100.0 in
  Alcotest.(check (float 1e-9)) "psd linear in T" 2.0 (hot /. cold)

let test_contributions_sum () =
  let b = Circuits.Tow_thomas.make () in
  let contributions, total =
    Mna.Noise.at_omega ~output:"v2" b.Circuits.Benchmark.netlist
      ~omega:(2.0 *. Float.pi *. 1000.0)
  in
  Alcotest.(check int) "six resistors" 6 (List.length contributions);
  let s = List.fold_left (fun acc c -> acc +. c.Mna.Noise.psd) 0.0 contributions in
  Alcotest.(check bool) "sum = total" true (Util.Floatx.approx_eq s total);
  List.iter
    (fun c -> Alcotest.(check bool) "non-negative" true (c.Mna.Noise.psd >= 0.0))
    contributions

let suite =
  [
    Alcotest.test_case "bare resistor PSD" `Quick test_resistor_psd_at_dc;
    Alcotest.test_case "rc shaped PSD" `Quick test_rc_filtered_psd;
    Alcotest.test_case "kT/C" `Quick test_ktc_noise;
    Alcotest.test_case "temperature scaling" `Quick test_temperature_scaling;
    Alcotest.test_case "contribution sum" `Quick test_contributions_sum;
  ]
