let test_table_render () =
  let s =
    Report.Table.render ~header:[ "name"; "value" ]
      [ [ "alpha"; "1" ]; [ "b"; "22" ] ]
  in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "header + rule + 2 rows" 4 (List.length lines);
  (* all lines equal width *)
  let widths = List.map String.length lines in
  List.iter (fun w -> Alcotest.(check int) "aligned" (List.hd widths) w) widths

let test_table_arity_check () =
  Alcotest.check_raises "bad row" (Invalid_argument "Table.render: row 0 has wrong arity")
    (fun () -> ignore (Report.Table.render ~header:[ "a"; "b" ] [ [ "x" ] ]))

let test_matrix_render () =
  let s =
    Report.Table.render_matrix ~row_labels:[| "C0"; "C1" |] ~col_labels:[| "f1"; "f2" |]
      ~cell:(fun i j -> string_of_int ((10 * i) + j))
  in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec probe i = i + m <= n && (String.sub s i m = sub || probe (i + 1)) in
    probe 0
  in
  Alcotest.(check bool) "contains cells" true
    (contains "C0" && contains "C1" && contains "f2" && contains "11")

let test_csv () =
  let s = Report.Table.csv ~header:[ "a"; "b" ] [ [ "1,5"; "x\"y" ] ] in
  Alcotest.(check string) "escaping" "a,b\n\"1,5\",\"x\"\"y\"" s

let test_bars () =
  let s =
    Report.Chart.bars ~width:10 ~labels:[| "fR1" |]
      ~series:[ ("no-DFT", [| 0.0 |]); ("DFT", [| 100.0 |]) ]
      ()
  in
  Alcotest.(check bool) "full bar present" true
    (String.split_on_char '\n' s |> List.exists (fun l ->
         String.length l > 0
         && String.exists (( = ) '*') l))

let test_bars_mismatch () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Chart.bars: series length mismatch") (fun () ->
      ignore (Report.Chart.bars ~labels:[| "a" |] ~series:[ ("s", [| 1.0; 2.0 |]) ] ()))

let test_sparkline () =
  Alcotest.(check string) "empty" "" (Report.Chart.sparkline [||]);
  let s = Report.Chart.sparkline [| 0.0; 0.5; 1.0 |] in
  Alcotest.(check int) "one char per point" 3 (String.length s)

let suite =
  [
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table arity" `Quick test_table_arity_check;
    Alcotest.test_case "matrix render" `Quick test_matrix_render;
    Alcotest.test_case "csv" `Quick test_csv;
    Alcotest.test_case "bars" `Quick test_bars;
    Alcotest.test_case "bars mismatch" `Quick test_bars_mismatch;
    Alcotest.test_case "sparkline" `Quick test_sparkline;
  ]
