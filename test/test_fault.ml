module Netlist = Circuit.Netlist
module Element = Circuit.Element

let rc () =
  Netlist.empty ~title:"rc" ()
  |> Netlist.vsource ~name:"V1" "in" "0" 1.0
  |> Netlist.resistor ~name:"R1" "in" "out" 1000.0
  |> Netlist.capacitor ~name:"C1" "out" "0" 1e-6

let test_deviation_ids () =
  let f = Fault.deviation ~element:"R1" 1.2 in
  Alcotest.(check string) "id" "R1+20%" f.Fault.id;
  let g = Fault.deviation ~element:"C1" 0.8 in
  Alcotest.(check string) "id" "C1-20%" g.Fault.id

let test_deviation_faults () =
  let faults = Fault.deviation_faults (rc ()) in
  Alcotest.(check (list string)) "one per passive" [ "R1+20%"; "C1+20%" ]
    (List.map (fun f -> f.Fault.id) faults)

let test_both_deviations () =
  let faults = Fault.both_deviations ~factor:1.5 (rc ()) in
  Alcotest.(check (list string)) "pairs"
    [ "R1+50%"; "R1-50%"; "C1+50%"; "C1-50%" ]
    (List.map (fun f -> f.Fault.id) faults)

let test_catastrophic_list () =
  let faults = Fault.catastrophic_faults (rc ()) in
  Alcotest.(check (list string)) "open and short per passive"
    [ "R1-open"; "R1-short"; "C1-open"; "C1-short" ]
    (List.map (fun f -> f.Fault.id) faults)

let test_inject_deviation () =
  let n = Fault.inject (Fault.deviation ~element:"R1" 1.2) (rc ()) in
  match Netlist.find_exn n "R1" with
  | Element.Resistor { value; _ } -> Alcotest.(check (float 1e-9)) "scaled" 1200.0 value
  | _ -> Alcotest.fail "R1 missing"

let test_inject_does_not_mutate () =
  let original = rc () in
  let _faulty = Fault.inject (Fault.deviation ~element:"R1" 1.2) original in
  match Netlist.find_exn original "R1" with
  | Element.Resistor { value; _ } -> Alcotest.(check (float 0.0)) "untouched" 1000.0 value
  | _ -> Alcotest.fail "R1 missing"

let test_inject_open () =
  let n = Fault.inject { Fault.id = "C1-open"; element = "C1"; kind = Fault.Open_circuit } (rc ()) in
  match Netlist.find_exn n "C1" with
  | Element.Resistor { value; n1; n2; _ } ->
      Alcotest.(check (float 0.0)) "open resistance" Fault.open_resistance value;
      Alcotest.(check (list string)) "terminals kept" [ "out"; "0" ] [ n1; n2 ]
  | _ -> Alcotest.fail "expected resistor replacement"

let test_inject_short_changes_response () =
  let n = rc () in
  let shorted =
    Fault.inject { Fault.id = "R1-short"; element = "R1"; kind = Fault.Short_circuit } n
  in
  let h = Mna.Ac.transfer ~source:"V1" ~output:"out" shorted ~omega:(2.0 *. Float.pi *. 1e5) in
  (* with R1 shorted the lowpass no longer attenuates *)
  Alcotest.(check (float 1e-3)) "follows input" 1.0 (Complex.norm h)

let test_inject_missing () =
  Alcotest.check_raises "unknown element" (Fault.Unknown_element "R9") (fun () ->
      ignore (Fault.inject (Fault.deviation ~element:"R9" 1.2) (rc ())))

let test_inject_preserved_across_dft_views () =
  (* the multiconfig transform keeps passive names, so the same fault
     injects into every configuration view *)
  let b = Circuits.Tow_thomas.make () in
  let dft =
    Multiconfig.Transform.make ~source:"Vin" ~output:"v2" b.Circuits.Benchmark.netlist
  in
  let fault = Fault.deviation ~element:"R4" 1.2 in
  List.iter
    (fun config ->
      let view = Multiconfig.Transform.emulate dft config in
      let faulty = Fault.inject fault view in
      match Netlist.find_exn faulty "R4" with
      | Element.Resistor { value; _ } ->
          Alcotest.(check bool) "scaled in view" true (value > 1.1 *. 15000.0)
      | _ -> Alcotest.fail "R4 missing in view")
    (Multiconfig.Transform.test_configurations dft)

let qcheck_deviation_roundtrip =
  QCheck.Test.make ~name:"deviation then inverse deviation restores value" ~count:100
    QCheck.(float_range 0.1 10.0)
    (fun factor ->
      let n = rc () in
      let there = Fault.inject (Fault.deviation ~element:"R1" factor) n in
      let back = Fault.inject (Fault.deviation ~element:"R1" (1.0 /. factor)) there in
      match Circuit.Netlist.find_exn back "R1" with
      | Circuit.Element.Resistor { value; _ } -> Util.Floatx.approx_eq ~rel:1e-9 value 1000.0
      | _ -> false)

let suite =
  [
    Alcotest.test_case "deviation ids" `Quick test_deviation_ids;
    Alcotest.test_case "deviation faults" `Quick test_deviation_faults;
    Alcotest.test_case "both deviations" `Quick test_both_deviations;
    Alcotest.test_case "catastrophic list" `Quick test_catastrophic_list;
    Alcotest.test_case "inject deviation" `Quick test_inject_deviation;
    Alcotest.test_case "inject is pure" `Quick test_inject_does_not_mutate;
    Alcotest.test_case "inject open" `Quick test_inject_open;
    Alcotest.test_case "inject short response" `Quick test_inject_short_changes_response;
    Alcotest.test_case "inject missing" `Quick test_inject_missing;
    Alcotest.test_case "inject across views" `Quick test_inject_preserved_across_dft_views;
    QCheck_alcotest.to_alcotest qcheck_deviation_roundtrip;
  ]
