open Linalg

let p = Poly.of_coeffs
let check_poly msg a b = Alcotest.(check bool) msg true (Poly.equal a b)

let test_construct () =
  Alcotest.(check int) "degree zero poly" (-1) (Poly.degree Poly.zero);
  Alcotest.(check int) "degree const" 0 (Poly.degree Poly.one);
  Alcotest.(check int) "degree s" 1 (Poly.degree Poly.s);
  Alcotest.(check int) "trailing zeros trimmed" 1 (Poly.degree (p [| 1.0; 2.0; 0.0; 0.0 |]))

let test_arith () =
  let a = p [| 1.0; 2.0 |] and b = p [| 3.0; 0.0; 1.0 |] in
  check_poly "add" (p [| 4.0; 2.0; 1.0 |]) (Poly.add a b);
  check_poly "sub" (p [| -2.0; 2.0; -1.0 |]) (Poly.sub a b);
  check_poly "mul" (p [| 3.0; 6.0; 1.0; 2.0 |]) (Poly.mul a b);
  check_poly "mul zero" Poly.zero (Poly.mul a Poly.zero);
  check_poly "scale" (p [| 2.0; 4.0 |]) (Poly.scale 2.0 a)

let test_cancellation_trims () =
  let a = p [| 1.0; 1.0 |] in
  check_poly "a - a = 0" Poly.zero (Poly.sub a a);
  Alcotest.(check bool) "is_zero" true (Poly.is_zero (Poly.sub a a))

let test_div_exact () =
  let a = p [| 1.0; 2.0 |] and b = p [| 3.0; 0.0; 1.0 |] in
  let prod = Poly.mul a b in
  check_poly "(a*b)/b = a" a (Poly.div_exact prod b);
  check_poly "(a*b)/a = b" b (Poly.div_exact prod a);
  Alcotest.check_raises "division by zero"
    (Invalid_argument "Poly.div_exact: division by zero polynomial") (fun () ->
      ignore (Poly.div_exact a Poly.zero))

let test_eval () =
  let q = p [| 1.0; -3.0; 2.0 |] in
  (* 1 - 3x + 2x^2; q(2) = 3 *)
  Alcotest.(check (float 1e-12)) "real eval" 3.0 (Poly.eval_real q 2.0);
  let v = Poly.eval q Complex.{ re = 0.0; im = 1.0 } in
  (* q(i) = 1 - 3i + 2 i^2 = -1 - 3i *)
  Alcotest.(check (float 1e-12)) "re" (-1.0) v.Complex.re;
  Alcotest.(check (float 1e-12)) "im" (-3.0) v.Complex.im

let test_derivative () =
  check_poly "d/ds (1 + 2s + 3s^2)" (p [| 2.0; 6.0 |]) (Poly.derivative (p [| 1.0; 2.0; 3.0 |]));
  check_poly "d/ds const" Poly.zero (Poly.derivative Poly.one)

let test_roots_quadratic () =
  (* (s-1)(s-2) = 2 - 3s + s^2 *)
  let roots = Poly.roots (p [| 2.0; -3.0; 1.0 |]) in
  let sorted =
    List.sort compare (Array.to_list (Array.map (fun c -> c.Complex.re) roots))
  in
  match sorted with
  | [ a; b ] ->
      Alcotest.(check (float 1e-6)) "root 1" 1.0 a;
      Alcotest.(check (float 1e-6)) "root 2" 2.0 b
  | _ -> Alcotest.fail "expected two roots"

let test_roots_complex_pair () =
  (* s^2 + 1 = 0 -> +/- i *)
  let roots = Poly.roots (p [| 1.0; 0.0; 1.0 |]) in
  Alcotest.(check int) "count" 2 (Array.length roots);
  Array.iter
    (fun r ->
      Alcotest.(check (float 1e-6)) "re" 0.0 r.Complex.re;
      Alcotest.(check (float 1e-6)) "abs im" 1.0 (Float.abs r.Complex.im))
    roots

let test_roots_scaled () =
  (* roots far from unit circle: (s + 1e5)(s + 10) *)
  let q = Poly.mul (p [| 1e5; 1.0 |]) (p [| 10.0; 1.0 |]) in
  let roots = Poly.roots q in
  let res = List.sort compare (Array.to_list (Array.map (fun c -> c.Complex.re) roots)) in
  match res with
  | [ a; b ] ->
      Alcotest.(check (float 1.0)) "fast root" (-1e5) a;
      Alcotest.(check (float 1e-3)) "slow root" (-10.0) b
  | _ -> Alcotest.fail "expected two roots"

let gen_poly =
  QCheck.Gen.(
    map
      (fun coeffs -> Poly.of_coeffs (Array.of_list coeffs))
      (list_size (int_range 0 6) (float_range (-10.0) 10.0)))

let qcheck_add_comm =
  QCheck.Test.make ~name:"poly add commutes" ~count:200
    (QCheck.make QCheck.Gen.(pair gen_poly gen_poly))
    (fun (a, b) -> Poly.equal (Poly.add a b) (Poly.add b a))

let qcheck_mul_distributes =
  QCheck.Test.make ~name:"poly mul distributes over add" ~count:200
    (QCheck.make QCheck.Gen.(triple gen_poly gen_poly gen_poly))
    (fun (a, b, c) ->
      Poly.equal ~tol:1e-6
        (Poly.mul a (Poly.add b c))
        (Poly.add (Poly.mul a b) (Poly.mul a c)))

let qcheck_eval_hom =
  QCheck.Test.make ~name:"eval is a ring hom: (ab)(x) = a(x) b(x)" ~count:200
    (QCheck.make QCheck.Gen.(triple gen_poly gen_poly (float_range (-3.0) 3.0)))
    (fun (a, b, x) ->
      let lhs = Poly.eval_real (Poly.mul a b) x in
      let rhs = Poly.eval_real a x *. Poly.eval_real b x in
      Float.abs (lhs -. rhs) <= 1e-6 *. Float.max 1.0 (Float.abs rhs))

let qcheck_roots_are_roots =
  QCheck.Test.make ~name:"roots evaluate to ~0" ~count:100
    (QCheck.make
       QCheck.Gen.(list_size (int_range 2 5) (float_range (-5.0) 5.0)))
    (fun coeffs ->
      let q = Poly.of_coeffs (Array.of_list (coeffs @ [ 1.0 ])) in
      let scale =
        Array.fold_left (fun acc c -> Float.max acc (Float.abs c)) 1.0 (Poly.coeffs q)
      in
      Array.for_all
        (fun r ->
          let v = Poly.eval q r in
          let root_mag = Float.max 1.0 (Complex.norm r) in
          Complex.norm v <= 1e-4 *. scale *. (root_mag ** float_of_int (Poly.degree q)))
        (Poly.roots q))

let suite =
  [
    Alcotest.test_case "construct" `Quick test_construct;
    Alcotest.test_case "arith" `Quick test_arith;
    Alcotest.test_case "cancellation trims" `Quick test_cancellation_trims;
    Alcotest.test_case "div_exact" `Quick test_div_exact;
    Alcotest.test_case "eval" `Quick test_eval;
    Alcotest.test_case "derivative" `Quick test_derivative;
    Alcotest.test_case "roots quadratic" `Quick test_roots_quadratic;
    Alcotest.test_case "roots complex pair" `Quick test_roots_complex_pair;
    Alcotest.test_case "roots scaled" `Quick test_roots_scaled;
    QCheck_alcotest.to_alcotest qcheck_add_comm;
    QCheck_alcotest.to_alcotest qcheck_mul_distributes;
    QCheck_alcotest.to_alcotest qcheck_eval_hom;
    QCheck_alcotest.to_alcotest qcheck_roots_are_roots;
  ]
