module Netlist = Circuit.Netlist
module Element = Circuit.Element

let parse_ok text =
  match Spice.Parser.parse_string text with
  | Ok n -> n
  | Error e -> Alcotest.fail (Spice.Parser.error_to_string e)

let parse_err text =
  match Spice.Parser.parse_string text with
  | Ok _ -> Alcotest.fail "expected parse error"
  | Error e -> e

let test_basic_parse () =
  let n =
    parse_ok
      "* RC lowpass\nV1 in 0 AC 1\nR1 in out 10k\nC1 out 0 100n\n.end\n"
  in
  Alcotest.(check string) "title" "RC lowpass" (Netlist.title n);
  Alcotest.(check int) "elements" 3 (Netlist.size n);
  match Netlist.find_exn n "R1" with
  | Element.Resistor { value; _ } -> Alcotest.(check (float 1e-9)) "10k" 1e4 value
  | _ -> Alcotest.fail "R1 wrong"

let test_title_always_first_line () =
  let n = parse_ok "this is the title\nR1 a 0 1k\n" in
  Alcotest.(check string) "title" "this is the title" (Netlist.title n);
  Alcotest.(check int) "one element" 1 (Netlist.size n)

let test_continuation_and_comments () =
  let n =
    parse_ok
      "title\n* a comment\nE1 out 0\n+ in 0\n+ 2.5 ; gain of 2.5\n\nR1 out 0 1k\n"
  in
  Alcotest.(check int) "two elements" 2 (Netlist.size n);
  match Netlist.find_exn n "E1" with
  | Element.Vcvs { gain; _ } -> Alcotest.(check (float 1e-9)) "gain" 2.5 gain
  | _ -> Alcotest.fail "E1 wrong"

let test_opamp_cards () =
  let n =
    parse_ok
      "title\nXOP a b c OPAMP\nOP2 a b d OPAMP A0=2e5 FP=5\nR1 c 0 1k\nR2 d 0 1k\nR3 a 0 1k\nR4 b 0 1k\n"
  in
  (match Netlist.find_exn n "XOP" with
  | Element.Opamp { model = Element.Ideal; _ } -> ()
  | _ -> Alcotest.fail "XOP should be ideal");
  match Netlist.find_exn n "OP2" with
  | Element.Opamp { model = Element.Single_pole { dc_gain; pole_hz }; _ } ->
      Alcotest.(check (float 0.0)) "A0" 2e5 dc_gain;
      Alcotest.(check (float 0.0)) "FP" 5.0 pole_hz
  | _ -> Alcotest.fail "OP2 should be single-pole"

let test_current_sources_and_sensing () =
  let n =
    parse_ok
      "t\nV1 a 0 AC 1\nV2 b 0 0\nI1 0 a 1m\nH1 c 0 V2 5k\nF1 d 0 V2 2\nR1 a b 1k\nR2 c 0 1k\nR3 d 0 1k\n"
  in
  Alcotest.(check int) "all parsed" 8 (Netlist.size n)

let test_bare_source_defaults_to_unit () =
  let n = parse_ok "t\nV1 a 0\nR1 a 0 1k\n" in
  match Netlist.find_exn n "V1" with
  | Element.Vsource { value; _ } -> Alcotest.(check (float 0.0)) "unit" 1.0 value
  | _ -> Alcotest.fail "V1 wrong"

let test_error_reporting () =
  let e = parse_err "t\nR1 in out\n" in
  Alcotest.(check int) "line number" 2 e.Spice.Parser.line;
  let e2 = parse_err "t\nQ1 a b c 1k\n" in
  Alcotest.(check bool) "unknown card" true
    (String.length e2.Spice.Parser.message > 0);
  let e3 = parse_err "t\nR1 in out zz\n" in
  Alcotest.(check int) "bad value line" 2 e3.Spice.Parser.line;
  let e4 = parse_err "t\n.weird\n" in
  Alcotest.(check int) "bad directive line" 2 e4.Spice.Parser.line

let test_duplicate_names_rejected () =
  let e = parse_err "t\nR1 a 0 1k\nR1 b 0 2k\n" in
  Alcotest.(check int) "second definition flagged" 3 e.Spice.Parser.line

let test_roundtrip_all_benchmarks () =
  List.iter
    (fun (b : Circuits.Benchmark.t) ->
      let text = Spice.Writer.to_string b.Circuits.Benchmark.netlist in
      let reparsed = parse_ok text in
      Alcotest.(check int)
        (b.Circuits.Benchmark.name ^ " element count")
        (Netlist.size b.Circuits.Benchmark.netlist)
        (Netlist.size reparsed);
      (* responses must agree, which checks values and wiring survived *)
      let w = 2.0 *. Float.pi *. b.Circuits.Benchmark.center_hz in
      let a =
        Mna.Ac.transfer ~source:b.Circuits.Benchmark.source
          ~output:b.Circuits.Benchmark.output b.Circuits.Benchmark.netlist ~omega:w
      in
      let r =
        Mna.Ac.transfer ~source:b.Circuits.Benchmark.source
          ~output:b.Circuits.Benchmark.output reparsed ~omega:w
      in
      Alcotest.(check (float 1e-6))
        (b.Circuits.Benchmark.name ^ " response")
        (Complex.norm a) (Complex.norm r))
    (Circuits.Registry.all ())

let test_parse_file () =
  let path = Filename.temp_file "mcdft" ".cir" in
  let oc = open_out path in
  output_string oc "file title\nR1 a 0 2.2k\n.end\n";
  close_out oc;
  let n = match Spice.Parser.parse_file path with
    | Ok n -> n
    | Error e -> Alcotest.fail (Spice.Parser.error_to_string e)
  in
  Sys.remove path;
  Alcotest.(check string) "title" "file title" (Netlist.title n);
  Alcotest.(check int) "one element" 1 (Netlist.size n)

let suite =
  [
    Alcotest.test_case "basic parse" `Quick test_basic_parse;
    Alcotest.test_case "title first line" `Quick test_title_always_first_line;
    Alcotest.test_case "continuation/comments" `Quick test_continuation_and_comments;
    Alcotest.test_case "opamp cards" `Quick test_opamp_cards;
    Alcotest.test_case "current sources" `Quick test_current_sources_and_sensing;
    Alcotest.test_case "bare source" `Quick test_bare_source_defaults_to_unit;
    Alcotest.test_case "error reporting" `Quick test_error_reporting;
    Alcotest.test_case "duplicate names" `Quick test_duplicate_names_rejected;
    Alcotest.test_case "roundtrip benchmarks" `Quick test_roundtrip_all_benchmarks;
    Alcotest.test_case "parse file" `Quick test_parse_file;
  ]

(* --- subcircuits --- *)

let test_subckt_basic () =
  let n =
    parse_ok
      "t\n\
       .subckt DIV top out\n\
       R1 top out 1k\n\
       R2 out 0 1k\n\
       .ends\n\
       V1 in 0 AC 1\n\
       X1 in mid DIV\n\
       X2 mid o2 DIV\n"
  in
  (* two instances, two resistors each *)
  Alcotest.(check int) "five elements" 5 (Netlist.size n);
  Alcotest.(check bool) "prefixed names" true (Netlist.mem n "X1.R1" && Netlist.mem n "X2.R2");
  (* each DIV halves; loaded dividers give 0.4 then 0.5 of that *)
  let h = Mna.Ac.transfer ~source:"V1" ~output:"o2" n ~omega:0.0 in
  Alcotest.(check (float 1e-9)) "two loaded stages" 0.2 (Complex.norm h)

let test_subckt_with_opamp_and_nesting () =
  let text =
    "t\n\
     .subckt BUF vin vout\n\
     XOP vin vout vout OPAMP\n\
     .ends\n\
     .subckt STAGE a b\n\
     R1 a x 1k\n\
     C1 x 0 100n\n\
     XB x b BUF\n\
     .ends\n\
     V1 in 0 AC 1\n\
     XS1 in out STAGE\n"
  in
  let n = parse_ok text in
  Alcotest.(check int) "flattened" 4 (Netlist.size n);
  Alcotest.(check bool) "nested prefix" true (Netlist.mem n "XS1.XB.XOP");
  (* buffered RC: unity at DC *)
  let h = Mna.Ac.transfer ~source:"V1" ~output:"out" n ~omega:0.0 in
  Alcotest.(check (float 1e-9)) "unity dc" 1.0 (Complex.norm h)

let test_subckt_ground_is_global () =
  let n =
    parse_ok "t\n.subckt G a\nR1 a 0 1k\n.ends\nV1 in 0 AC 1\nX1 in G\n"
  in
  (* the subckt's "0" is the global ground, not "X1.0" *)
  match Netlist.find_exn n "X1.R1" with
  | Element.Resistor { n2; _ } -> Alcotest.(check string) "global ground" "0" n2
  | _ -> Alcotest.fail "wrong element"

let test_subckt_errors () =
  let e = parse_err "t\n.subckt D a b\nR1 a b 1k\n" in
  Alcotest.(check bool) "unterminated" true
    (String.length e.Spice.Parser.message > 0);
  let e2 = parse_err "t\n.subckt D a b\nR1 a b 1k\n.ends\nV1 in 0 1\nX1 in D\n" in
  Alcotest.(check int) "port mismatch line" 6 e2.Spice.Parser.line;
  let e3 =
    parse_err
      "t\n.subckt A p\nX1 p A\n.ends\nV1 in 0 1\nX1 in A\nR1 in 0 1k\n"
  in
  Alcotest.(check bool) "recursion caught" true
    (String.length e3.Spice.Parser.message > 0)

let test_subckt_faults_and_dft_flow () =
  (* the full pipeline runs on a flattened hierarchical design *)
  let text =
    "two-stage hierarchical filter\n\
     .subckt SK vin vout\n\
     R1 vin a 10k\n\
     R2 a b 10k\n\
     C1 a vout 31.8n\n\
     C2 b 0 7.96n\n\
     XOP b vout vout OPAMP\n\
     .ends\n\
     Vin in 0 AC 1\n\
     XA in mid SK\n\
     XB mid out SK\n"
  in
  let netlist = parse_ok text in
  Circuit.Validate.check_exn netlist;
  let b =
    {
      Circuits.Benchmark.name = "hier-sk";
      description = "hierarchical Sallen-Key pair";
      netlist;
      source = "Vin";
      output = "out";
      center_hz = 500.0;
    }
  in
  let t = Mcdft_core.Pipeline.run ~points_per_decade:6 b in
  let r = Mcdft_core.Pipeline.optimize t in
  Alcotest.(check int) "8 hierarchical faults" 8
    (Testability.Matrix.n_faults t.Mcdft_core.Pipeline.matrix);
  Alcotest.(check bool) "optimizer ran" true
    (r.Mcdft_core.Optimizer.max_coverage > 0.0)

let suite =
  suite
  @ [
      Alcotest.test_case "subckt basic" `Quick test_subckt_basic;
      Alcotest.test_case "subckt nesting" `Quick test_subckt_with_opamp_and_nesting;
      Alcotest.test_case "subckt global ground" `Quick test_subckt_ground_is_global;
      Alcotest.test_case "subckt errors" `Quick test_subckt_errors;
      Alcotest.test_case "subckt full flow" `Quick test_subckt_faults_and_dft_flow;
    ]
