(* Running the optimizer on the paper's published matrices must
   reproduce every number of Section 4 exactly. *)

module O = Mcdft_core.Optimizer
module PD = Mcdft_core.Paper_data
module IntSet = Cover.Clause.IntSet

let paper_report =
  lazy
    (O.optimize
       (O.input_of_matrices ~n_opamps:PD.n_opamps PD.detectability_matrix PD.omega_table))

let test_coverages () =
  let r = Lazy.force paper_report in
  Alcotest.(check (float 1e-9)) "max FC = 100%" 1.0 r.O.max_coverage;
  Alcotest.(check (float 1e-9)) "functional FC = 25%" PD.functional_coverage
    r.O.functional_coverage;
  Alcotest.(check (list int)) "no uncoverable fault" [] r.O.uncoverable

let test_omega_summaries () =
  let r = Lazy.force paper_report in
  Alcotest.(check (float 1e-9)) "graph 1: 12.5%" PD.functional_avg_omega
    r.O.functional_avg_omega;
  Alcotest.(check (float 1e-9)) "graph 2: 68.25% (paper prints 68.3)" PD.dft_avg_omega
    r.O.brute_force_avg_omega

let test_essential_configuration () =
  let r = Lazy.force paper_report in
  Alcotest.(check (list int)) "essential = {C2}" [ 2 ] r.O.essential

let test_xi_expression () =
  let r = Lazy.force paper_report in
  Alcotest.(check string) "xi as printed in the paper"
    "(C0+C2+C4+C6).(C2+C4+C6).(C1+C4+C5).(C0+C2+C4+C6).(C1+C2+C3+C4).(C1+C2+C3).(C2).(C1+C5)"
    (Format.asprintf "%a" Cover.Clause.pp r.O.xi);
  Alcotest.(check string) "reduced xi" "(C1+C4+C5).(C1+C5)"
    (Format.asprintf "%a" Cover.Clause.pp r.O.xi_reduced)

let test_raw_sop_terms () =
  let r = Lazy.force paper_report in
  match r.O.xi_terms_raw with
  | None -> Alcotest.fail "petrick expansion expected"
  | Some terms ->
      (* the paper: xi = C1C2 + C1C2C5 + C1C2C4 + C2C4C5 + C2C5 *)
      Alcotest.(check (list (list int)))
        "five terms, paper order"
        [ [ 1; 2 ]; [ 1; 2; 5 ]; [ 1; 2; 4 ]; [ 2; 4; 5 ]; [ 2; 5 ] ]
        (List.map IntSet.elements terms)

let test_minimal_config_sets () =
  let r = Lazy.force paper_report in
  Alcotest.(check (list (list int))) "{C1,C2} and {C2,C5}"
    [ [ 1; 2 ]; [ 2; 5 ] ]
    (List.map IntSet.elements r.O.min_config_sets)

let test_third_order_choice () =
  let r = Lazy.force paper_report in
  Alcotest.(check (list int)) "S_opt = {C2, C5}" PD.optimal_config_set
    r.O.choice_a.O.configs;
  Alcotest.(check (float 1e-9)) "32.5%" PD.optimal_config_avg_omega r.O.choice_a.O.avg_omega;
  (* and the rejected tie scores 30% *)
  Alcotest.(check (float 1e-9)) "rejected tie at 30%" PD.rejected_config_avg_omega
    (O.avg_omega_of r.O.input [ 1; 2 ])

let test_xi_star () =
  let r = Lazy.force paper_report in
  match r.O.xi_star with
  | None -> Alcotest.fail "xi* expected"
  | Some terms ->
      Alcotest.(check (list (list int)))
        "OP1OP2 + 4x OP1OP2OP3"
        [ [ 0; 1 ]; [ 0; 1; 2 ]; [ 0; 1; 2 ]; [ 0; 1; 2 ]; [ 0; 1; 2 ] ]
        (List.map IntSet.elements terms)

let test_partial_dft_choice () =
  let r = Lazy.force paper_report in
  Alcotest.(check (list (list int))) "unique minimal opamp set" [ PD.optimal_opamp_set ]
    (List.map IntSet.elements r.O.min_opamp_sets);
  Alcotest.(check (list int)) "OP1, OP2" PD.optimal_opamp_set r.O.choice_b.O.opamps;
  Alcotest.(check (list int)) "reachable = C0..C3 (paper Table 4)" [ 0; 1; 2; 3 ]
    r.O.choice_b.O.reachable_configs;
  Alcotest.(check (float 1e-9)) "52.5%" PD.partial_dft_avg_omega
    r.O.choice_b.O.avg_omega_reachable

let test_choice_sets_satisfy_fundamental_requirement () =
  let r = Lazy.force paper_report in
  let p = Cover.Clause.of_matrix PD.detectability_matrix in
  Alcotest.(check bool) "choice A covers" true
    (Cover.Clause.is_cover p (IntSet.of_list r.O.choice_a.O.configs));
  Alcotest.(check bool) "choice B reachable set covers" true
    (Cover.Clause.is_cover p (IntSet.of_list r.O.choice_b.O.reachable_configs))

let test_input_validation () =
  Alcotest.check_raises "row count"
    (Invalid_argument "Optimizer.input_of_matrices: expected 7 rows, got 2") (fun () ->
      ignore
        (O.input_of_matrices ~n_opamps:3
           [| [| true |]; [| false |] |]
           [| [| 1.0 |]; [| 0.0 |] |]));
  Alcotest.check_raises "omega consistency"
    (Invalid_argument
       "Optimizer.input_of_matrices: fault 0 detectable in C0 but omega = 0") (fun () ->
      ignore
        (O.input_of_matrices ~n_opamps:1 [| [| true |] |] [| [| 0.0 |] |]))

let test_bnb_path_matches_petrick () =
  (* with petrick disabled (petrick_limit = 0) the exact solver must
     find a cover of the same cardinality *)
  let input =
    O.input_of_matrices ~n_opamps:PD.n_opamps PD.detectability_matrix PD.omega_table
  in
  let via_petrick = O.optimize input in
  let via_bnb = O.optimize ~petrick_limit:0 input in
  Alcotest.(check bool) "raw terms skipped" true (via_bnb.O.xi_terms_raw = None);
  Alcotest.(check int) "same cardinality"
    (List.length via_petrick.O.choice_a.O.configs)
    (List.length via_bnb.O.choice_a.O.configs);
  Alcotest.(check (list int)) "same opamp subset" via_petrick.O.choice_b.O.opamps
    via_bnb.O.choice_b.O.opamps

let qcheck_choice_always_covers =
  QCheck.Test.make ~name:"optimizer choices always satisfy the fundamental requirement"
    ~count:60
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n_opamps = 2 + QCheck.Gen.int_bound 1 rng in
      let rows = (1 lsl n_opamps) - 1 in
      let m = 1 + QCheck.Gen.int_bound 5 rng in
      let detect = Array.init rows (fun _ -> Array.init m (fun _ -> QCheck.Gen.bool rng)) in
      let omega =
        Array.map
          (Array.map (fun d -> if d then 1.0 +. QCheck.Gen.float_bound_inclusive 99.0 rng else 0.0))
          detect
      in
      let input = O.input_of_matrices ~n_opamps detect omega in
      let r = O.optimize input in
      let p = Cover.Clause.of_matrix detect in
      Cover.Clause.is_cover p (IntSet.of_list r.O.choice_a.O.configs)
      && Cover.Clause.is_cover p (IntSet.of_list r.O.choice_b.O.reachable_configs))

let test_n_detect_on_paper_matrix () =
  let input =
    O.input_of_matrices ~n_opamps:PD.n_opamps PD.detectability_matrix PD.omega_table
  in
  let r = O.optimize ~n_detect:2 input in
  Alcotest.(check int) "report records the target" 2 r.O.n_detect;
  (* every fault must be hit by min(2, available) chosen configurations *)
  let available j =
    Array.fold_left
      (fun acc row -> if row.(j) then acc + 1 else acc)
      0 PD.detectability_matrix
  in
  let hits configs j =
    List.fold_left
      (fun acc i -> if PD.detectability_matrix.(i).(j) then acc + 1 else acc)
      0 configs
  in
  let m = Array.length PD.detectability_matrix.(0) in
  for j = 0 to m - 1 do
    let needed = Int.min 2 (available j) in
    Alcotest.(check bool)
      (Printf.sprintf "fault %d hit >= %d times by choice A" j needed)
      true
      (hits r.O.choice_a.O.configs j >= needed)
  done;
  Alcotest.(check bool) "worst over detectable faults >= 1" true
    (r.O.detection_a.O.worst >= 1);
  Alcotest.(check bool) "average >= worst" true
    (r.O.detection_a.O.average >= float_of_int r.O.detection_a.O.worst);
  (* the n=1 report is unchanged by the new machinery *)
  let r1 = O.optimize ~n_detect:1 input in
  let r0 = Lazy.force paper_report in
  Alcotest.(check (list int)) "n=1 choice A unchanged" r0.O.choice_a.O.configs
    r1.O.choice_a.O.configs;
  Alcotest.(check (list int)) "n=1 short faults empty" []
    (List.map fst r1.O.short_faults);
  Alcotest.check_raises "n_detect >= 1 enforced"
    (Invalid_argument "Optimizer.optimize: n_detect must be at least 1") (fun () ->
      ignore (O.optimize ~n_detect:0 input))

let suite =
  [
    Alcotest.test_case "coverages" `Quick test_coverages;
    Alcotest.test_case "omega summaries" `Quick test_omega_summaries;
    Alcotest.test_case "essential configuration" `Quick test_essential_configuration;
    Alcotest.test_case "xi expression" `Quick test_xi_expression;
    Alcotest.test_case "raw SOP terms" `Quick test_raw_sop_terms;
    Alcotest.test_case "minimal config sets" `Quick test_minimal_config_sets;
    Alcotest.test_case "third-order choice" `Quick test_third_order_choice;
    Alcotest.test_case "xi star" `Quick test_xi_star;
    Alcotest.test_case "partial DFT choice" `Quick test_partial_dft_choice;
    Alcotest.test_case "choices cover" `Quick test_choice_sets_satisfy_fundamental_requirement;
    Alcotest.test_case "input validation" `Quick test_input_validation;
    Alcotest.test_case "bnb path" `Quick test_bnb_path_matches_petrick;
    Alcotest.test_case "n-detect on the paper matrix" `Quick
      test_n_detect_on_paper_matrix;
    QCheck_alcotest.to_alcotest qcheck_choice_always_covers;
  ]

let test_optimize_deterministic () =
  let input =
    O.input_of_matrices ~n_opamps:PD.n_opamps PD.detectability_matrix PD.omega_table
  in
  let a = O.optimize input and b = O.optimize input in
  Alcotest.(check (list int)) "choice A stable" a.O.choice_a.O.configs
    b.O.choice_a.O.configs;
  Alcotest.(check (list int)) "choice B stable" a.O.choice_b.O.opamps
    b.O.choice_b.O.opamps

let suite = suite @ [ Alcotest.test_case "deterministic" `Quick test_optimize_deterministic ]
