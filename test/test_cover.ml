module Clause = Cover.Clause
module IntSet = Clause.IntSet

let set = IntSet.of_list
let exact_exn p = Cover.Solver.(cover_exn (exact p))
let greedy_exn p = Cover.Solver.(cover_exn (greedy p))
let brute_exn p = Cover.Solver.(cover_exn (brute_force p))

let matrix_3x4 =
  (* candidates 0..2, faults 0..3; fault 3 uncoverable *)
  [|
    [| true; false; true; false |];
    [| false; true; true; false |];
    [| true; true; false; false |];
  |]

let test_of_matrix () =
  let p = Clause.of_matrix matrix_3x4 in
  Alcotest.(check int) "clauses (uncoverable skipped)" 3 (List.length p.Clause.clauses);
  Alcotest.(check (list int)) "uncoverable" [ 3 ] (Clause.uncoverable_faults matrix_3x4)

let test_essentials () =
  let p = Clause.of_matrix [| [| true; true |]; [| false; true |] |] in
  (* fault 0 only covered by candidate 0 *)
  Alcotest.(check (list int)) "essential" [ 0 ] (IntSet.elements (Clause.essentials p))

let test_reduce () =
  let p = Clause.of_matrix matrix_3x4 in
  let reduced = Clause.reduce p ~chosen:(set [ 0 ]) in
  (* candidate 0 covers faults 0 and 2; fault 1 remains *)
  Alcotest.(check int) "one clause left" 1 (List.length reduced.Clause.clauses)

let test_is_cover () =
  let p = Clause.of_matrix matrix_3x4 in
  Alcotest.(check bool) "0,1 covers" true (Clause.is_cover p (set [ 0; 1 ]));
  Alcotest.(check bool) "0 alone does not" false (Clause.is_cover p (set [ 0 ]));
  Alcotest.(check bool) "2 alone does not" false (Clause.is_cover p (set [ 2 ]));
  let empty = Clause.of_matrix [| [||] |] in
  Alcotest.(check bool) "empty problem covered by nothing" true
    (Clause.is_cover empty IntSet.empty)

let test_pp () =
  let p = Clause.of_matrix [| [| true; false |]; [| true; true |] |] in
  Alcotest.(check string) "rendering" "(C0+C1).(C1)" (Format.asprintf "%a" Clause.pp p)

(* --- Petrick --- *)

let paper_reduced =
  (* xi_compl of the paper: (C1+C4+C5).(C1+C5) *)
  Clause.of_sets ~n_candidates:7 [ set [ 1; 4; 5 ]; set [ 1; 5 ] ]

let test_expand_raw_paper () =
  (* the paper's development keeps absorbable terms:
     C1 + C1C5 + C1C4 + C4C5 + C5 *)
  let terms = Cover.Petrick.expand_raw paper_reduced in
  let printable = List.map (fun t -> IntSet.elements t) terms in
  Alcotest.(check (list (list int)))
    "raw expansion"
    [ [ 1 ]; [ 1; 5 ]; [ 1; 4 ]; [ 4; 5 ]; [ 5 ] ]
    printable

let test_expand_absorbs () =
  let terms = Cover.Petrick.expand paper_reduced in
  let printable = List.map IntSet.elements terms in
  Alcotest.(check (list (list int))) "minimal covers" [ [ 1 ]; [ 5 ] ] printable

let test_expand_empty_problem () =
  let p = Clause.of_sets ~n_candidates:3 [] in
  Alcotest.(check int) "single empty product" 1 (List.length (Cover.Petrick.expand p));
  Alcotest.(check bool) "which is empty" true
    (IntSet.is_empty (List.hd (Cover.Petrick.expand p)))

let test_cheapest () =
  let terms = [ set [ 1 ]; set [ 4; 5 ]; set [ 5 ] ] in
  let best = Cover.Petrick.cheapest terms in
  Alcotest.(check int) "two singletons tie" 2 (List.length best);
  let cost c = if c = 5 then 10.0 else 2.0 in
  let weighted = Cover.Petrick.cheapest ~cost terms in
  Alcotest.(check (list (list int))) "weights change the pick" [ [ 1 ] ]
    (List.map IntSet.elements weighted)

(* --- solvers --- *)

let test_greedy_covers () =
  let p = Clause.of_matrix matrix_3x4 in
  Alcotest.(check bool) "valid cover" true (Clause.is_cover p (greedy_exn p))

let test_exact_paper_instance () =
  let p =
    Clause.of_matrix
      (Array.map (Array.map Fun.id) Mcdft_core.Paper_data.detectability_matrix)
  in
  let s = exact_exn p in
  Alcotest.(check bool) "covers" true (Clause.is_cover p s);
  Alcotest.(check int) "two configurations suffice" 2 (IntSet.cardinal s)

let test_exact_weighted () =
  (* candidate 0 covers everything but is expensive *)
  let p = Clause.of_matrix [| [| true; true |]; [| true; false |]; [| false; true |] |] in
  let cheap = exact_exn p in
  Alcotest.(check (list int)) "cardinality optimum" [ 0 ] (IntSet.elements cheap);
  let weighted =
    Cover.Solver.(cover_exn (exact ~cost:(fun c -> if c = 0 then 5.0 else 1.0) p))
  in
  Alcotest.(check (list int)) "weighted optimum avoids 0" [ 1; 2 ] (IntSet.elements weighted)

let random_problem rng =
  let n = 2 + QCheck.Gen.int_bound 5 rng in
  let m = 1 + QCheck.Gen.int_bound 6 rng in
  let d =
    Array.init n (fun _ -> Array.init m (fun _ -> QCheck.Gen.bool rng))
  in
  (* ensure every fault coverable to make cardinalities comparable *)
  for j = 0 to m - 1 do
    let covered = ref false in
    for i = 0 to n - 1 do
      if d.(i).(j) then covered := true
    done;
    if not !covered then d.(QCheck.Gen.int_bound (n - 1) rng).(j) <- true
  done;
  Clause.of_matrix d

let brute_force_minimum p =
  let candidates = IntSet.elements (Clause.candidates p) in
  let rec subsets = function
    | [] -> [ IntSet.empty ]
    | c :: rest ->
        let without = subsets rest in
        without @ List.map (IntSet.add c) without
  in
  List.fold_left
    (fun acc s ->
      if Clause.is_cover p s then Int.min acc (IntSet.cardinal s) else acc)
    max_int (subsets candidates)

let qcheck_exact_is_minimum =
  QCheck.Test.make ~name:"exact solver matches brute force minimum" ~count:100
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let p = random_problem rng in
      let s = exact_exn p in
      Clause.is_cover p s && IntSet.cardinal s = brute_force_minimum p)

let brute_force_min_cost ~cost p =
  let candidates = IntSet.elements (Clause.candidates p) in
  let rec subsets = function
    | [] -> [ IntSet.empty ]
    | c :: rest ->
        let without = subsets rest in
        without @ List.map (IntSet.add c) without
  in
  let cost_of s = IntSet.fold (fun c acc -> acc +. cost c) s 0.0 in
  List.fold_left
    (fun acc s ->
      if Clause.is_cover p s then Float.min acc (cost_of s) else acc)
    infinity (subsets candidates)

let qcheck_exact_weighted_is_min_cost =
  QCheck.Test.make
    ~name:"exact solver matches brute force minimum cost under random weights"
    ~count:100
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let p = random_problem rng in
      (* integral costs in 1..5 keep float sums exact, so the
         comparison needs no tolerance *)
      let weights =
        Array.init p.Clause.n_candidates (fun _ ->
            float_of_int (1 + QCheck.Gen.int_bound 4 rng))
      in
      let cost c = weights.(c) in
      let s = Cover.Solver.(cover_exn (exact ~cost p)) in
      let cost_of s = IntSet.fold (fun c acc -> acc +. cost c) s 0.0 in
      Clause.is_cover p s && cost_of s = brute_force_min_cost ~cost p)

let qcheck_greedy_valid_and_bounded =
  QCheck.Test.make ~name:"greedy covers; never better than exact" ~count:100
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let p = random_problem rng in
      let g = greedy_exn p in
      let e = exact_exn p in
      Clause.is_cover p g && IntSet.cardinal g >= IntSet.cardinal e)

let qcheck_petrick_matches_exact =
  QCheck.Test.make ~name:"petrick minimal terms match exact cardinality" ~count:60
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let p = random_problem rng in
      let terms = Cover.Petrick.expand p in
      let best = Cover.Petrick.cheapest terms in
      let e = exact_exn p in
      (* every petrick term is a cover; the cheapest have exact cardinality *)
      List.for_all (Clause.is_cover p) terms
      && List.for_all (fun t -> IntSet.cardinal t = IntSet.cardinal e) best)

(* --- mapping --- *)

let test_opamps_of_config () =
  Alcotest.(check (list int)) "C5 -> OP1 OP3" [ 0; 2 ]
    (IntSet.elements (Cover.Mapping.opamps_of_config 5));
  Alcotest.(check (list int)) "C0 -> none" []
    (IntSet.elements (Cover.Mapping.opamps_of_config 0))

let test_paper_mapping () =
  (* the paper's xi terms map to OP sets; minimum is {OP1, OP2} *)
  let xi_terms =
    [ set [ 1; 2 ]; set [ 1; 2; 5 ]; set [ 1; 2; 4 ]; set [ 2; 4; 5 ]; set [ 2; 5 ] ]
  in
  let mapped = Cover.Mapping.xi_star xi_terms in
  Alcotest.(check int) "five mapped terms" 5 (List.length mapped);
  Alcotest.(check (list int)) "first term = OP1 OP2" [ 0; 1 ]
    (IntSet.elements (List.hd mapped));
  let minimal = Cover.Mapping.minimal_opamp_sets xi_terms in
  Alcotest.(check (list (list int))) "unique minimum" [ [ 0; 1 ] ]
    (List.map IntSet.elements minimal)

let suite =
  [
    Alcotest.test_case "of_matrix" `Quick test_of_matrix;
    Alcotest.test_case "essentials" `Quick test_essentials;
    Alcotest.test_case "reduce" `Quick test_reduce;
    Alcotest.test_case "is_cover" `Quick test_is_cover;
    Alcotest.test_case "pp" `Quick test_pp;
    Alcotest.test_case "petrick raw (paper)" `Quick test_expand_raw_paper;
    Alcotest.test_case "petrick absorption" `Quick test_expand_absorbs;
    Alcotest.test_case "petrick empty" `Quick test_expand_empty_problem;
    Alcotest.test_case "cheapest" `Quick test_cheapest;
    Alcotest.test_case "greedy covers" `Quick test_greedy_covers;
    Alcotest.test_case "exact on paper matrix" `Quick test_exact_paper_instance;
    Alcotest.test_case "exact weighted" `Quick test_exact_weighted;
    Alcotest.test_case "opamps of config" `Quick test_opamps_of_config;
    Alcotest.test_case "paper mapping" `Quick test_paper_mapping;
    QCheck_alcotest.to_alcotest qcheck_exact_is_minimum;
    QCheck_alcotest.to_alcotest qcheck_exact_weighted_is_min_cost;
    QCheck_alcotest.to_alcotest qcheck_greedy_valid_and_bounded;
    QCheck_alcotest.to_alcotest qcheck_petrick_matches_exact;
  ]

let qcheck_expand_is_antichain =
  QCheck.Test.make ~name:"petrick expand yields an antichain of covers" ~count:60
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let p = random_problem rng in
      let terms = Cover.Petrick.expand p in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              IntSet.equal a b
              || not (IntSet.subset a b || IntSet.subset b a))
            terms)
        terms)

let qcheck_essentials_in_every_minimal_cover =
  QCheck.Test.make ~name:"essential candidates appear in every irredundant cover"
    ~count:60
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let p = random_problem rng in
      let essentials = Clause.essentials p in
      List.for_all
        (fun t -> IntSet.subset essentials t)
        (Cover.Petrick.expand p))

(* --- multiplicity (n-detection) covering and infeasibility --- *)

let test_infeasible_empty_clause () =
  (* an undetectable fault yields an empty clause: every solver must
     report it, never crash or return an empty cover *)
  let p = Clause.of_sets ~n_candidates:3 [ set [ 0 ]; IntSet.empty ] in
  let check_solver name solve =
    match solve p with
    | Cover.Solver.Infeasible tags ->
        Alcotest.(check (list int)) (name ^ " names the empty clause") [ 1 ] tags
    | Cover.Solver.Cover _ -> Alcotest.failf "%s returned a cover on infeasible input" name
  in
  check_solver "greedy" Cover.Solver.greedy;
  check_solver "exact" Cover.Solver.exact;
  check_solver "brute_force" Cover.Solver.brute_force;
  Alcotest.check_raises "cover_exn raises typed exception"
    (Cover.Solver.Infeasible_cover [ 1 ])
    (fun () -> ignore (Cover.Solver.(cover_exn (exact p))))

let test_of_matrix_exact_infeasible () =
  (* fault 3 of matrix_3x4 is undetectable: requiring 2 detections
     without capping is infeasible, and the tag names the fault *)
  let p = Clause.of_matrix_exact ~n:2 matrix_3x4 in
  (match Cover.Solver.exact p with
  | Cover.Solver.Infeasible tags -> Alcotest.(check (list int)) "tags" [ 3 ] tags
  | Cover.Solver.Cover _ -> Alcotest.fail "expected Infeasible");
  (* the capped builder stays feasible and reports nothing short at n=2
     (every coverable fault has 2 candidates) *)
  let capped = Clause.of_matrix ~n:2 matrix_3x4 in
  Alcotest.(check (list int)) "no infeasible clause" [] (Clause.infeasible_tags capped);
  Alcotest.(check int) "max_need" 2 (Clause.max_need capped);
  Alcotest.(check (list (pair int int)))
    "short at n=3: all coverable faults have only 2 candidates"
    [ (0, 2); (1, 2); (2, 2) ]
    (Clause.short_faults ~n:3 matrix_3x4)

let test_pp_multiplicity () =
  let p = Clause.of_matrix ~n:2 [| [| true |]; [| true |]; [| false |] |] in
  Alcotest.(check string) "need suffix" "(C0+C1)>=2" (Format.asprintf "%a" Clause.pp p)

(* the pre-multiplicity greedy, kept verbatim as the n=1 reference: the
   new solver must reproduce its picks bitwise *)
let legacy_greedy sets =
  let rec loop clauses chosen =
    match clauses with
    | [] -> chosen
    | _ ->
        let candidates =
          List.fold_left IntSet.union IntSet.empty clauses |> IntSet.elements
        in
        let gain c = List.length (List.filter (IntSet.mem c) clauses) in
        let best =
          List.fold_left
            (fun acc c ->
              match acc with
              | None -> Some c
              | Some b -> if gain c > gain b then Some c else acc)
            None candidates
        in
        let c = Option.get best in
        loop (List.filter (fun l -> not (IntSet.mem c l)) clauses) (IntSet.add c chosen)
  in
  loop sets IntSet.empty

let qcheck_n1_greedy_bitwise_legacy =
  QCheck.Test.make ~name:"n=1 greedy reduces to the legacy set-cover greedy bitwise"
    ~count:200
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let p = random_problem rng in
      let legacy = legacy_greedy (List.map (fun c -> c.Clause.lits) p.Clause.clauses) in
      IntSet.equal legacy (greedy_exn p))

let random_multiplicity_system rng =
  (* clauses may be empty or need more literals than they hold *)
  let n = 1 + QCheck.Gen.int_bound 5 rng in
  let m = 1 + QCheck.Gen.int_bound 4 rng in
  let clauses =
    List.init m (fun j ->
        let lits =
          IntSet.of_list
            (List.filter (fun _ -> QCheck.Gen.bool rng) (List.init n Fun.id))
        in
        Clause.clause ~need:(1 + QCheck.Gen.int_bound 2 rng) ~tag:j lits)
  in
  { Clause.n_candidates = n; clauses }

let qcheck_solvers_agree_on_feasibility =
  QCheck.Test.make
    ~name:"greedy/exact/brute_force agree on feasibility for random clause systems"
    ~count:300
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let p = random_multiplicity_system rng in
      let verdict = function
        | Cover.Solver.Cover s ->
            if Clause.is_cover p s then None else Some [ -1 ] (* invalid cover *)
        | Cover.Solver.Infeasible tags -> Some tags
      in
      let g = verdict (Cover.Solver.greedy p) in
      let e = verdict (Cover.Solver.exact p) in
      let b = verdict (Cover.Solver.brute_force p) in
      g = e && e = b)

let qcheck_ndetect_hits_every_clause =
  QCheck.Test.make ~name:"n-detection covers hit every clause at least need times"
    ~count:200
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 2 + QCheck.Gen.int_bound 4 rng in
      let m = 1 + QCheck.Gen.int_bound 5 rng in
      let d = Array.init n (fun _ -> Array.init m (fun _ -> QCheck.Gen.bool rng)) in
      let nd = 1 + QCheck.Gen.int_bound 2 rng in
      let p = Clause.of_matrix ~n:nd d in
      let hits cover j =
        let count = ref 0 in
        for i = 0 to n - 1 do
          if d.(i).(j) && IntSet.mem i cover then incr count
        done;
        !count
      in
      let need j =
        let avail = ref 0 in
        for i = 0 to n - 1 do
          if d.(i).(j) then incr avail
        done;
        Int.min nd !avail
      in
      let valid cover =
        Clause.is_cover p cover
        && List.for_all (fun j -> hits cover j >= need j) (List.init m Fun.id)
      in
      let g = greedy_exn p and e = exact_exn p and b = brute_exn p in
      valid g && valid e && valid b && IntSet.cardinal e = IntSet.cardinal b)

let qcheck_ndetect_exact_strict_infeasible =
  QCheck.Test.make
    ~name:"of_matrix_exact infeasible exactly when some fault has < n detecting configs"
    ~count:200
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 2 + QCheck.Gen.int_bound 4 rng in
      let m = 1 + QCheck.Gen.int_bound 5 rng in
      let d = Array.init n (fun _ -> Array.init m (fun _ -> QCheck.Gen.bool rng)) in
      let nd = 1 + QCheck.Gen.int_bound 2 rng in
      let p = Clause.of_matrix_exact ~n:nd d in
      let short =
        List.filter
          (fun j ->
            let avail = ref 0 in
            for i = 0 to n - 1 do
              if d.(i).(j) then incr avail
            done;
            !avail < nd)
          (List.init m Fun.id)
      in
      match Cover.Solver.exact p with
      | Cover.Solver.Infeasible tags -> tags = short && short <> []
      | Cover.Solver.Cover _ -> short = [])

let suite =
  suite
  @ [
      QCheck_alcotest.to_alcotest qcheck_expand_is_antichain;
      QCheck_alcotest.to_alcotest qcheck_essentials_in_every_minimal_cover;
      Alcotest.test_case "infeasible empty clause" `Quick test_infeasible_empty_clause;
      Alcotest.test_case "of_matrix_exact infeasible" `Quick
        test_of_matrix_exact_infeasible;
      Alcotest.test_case "pp multiplicity" `Quick test_pp_multiplicity;
      QCheck_alcotest.to_alcotest qcheck_n1_greedy_bitwise_legacy;
      QCheck_alcotest.to_alcotest qcheck_solvers_agree_on_feasibility;
      QCheck_alcotest.to_alcotest qcheck_ndetect_hits_every_clause;
      QCheck_alcotest.to_alcotest qcheck_ndetect_exact_strict_infeasible;
    ]
