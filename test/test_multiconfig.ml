module Netlist = Circuit.Netlist
module Configuration = Multiconfig.Configuration
module Transform = Multiconfig.Transform

(* --- configurations --- *)

let test_counts () =
  Alcotest.(check int) "all" 8 (List.length (Configuration.all ~n_opamps:3));
  Alcotest.(check int) "test configs" 7
    (List.length (Configuration.test_configurations ~n_opamps:3))

let test_bit_convention () =
  (* the paper's C5 = (1 0 1): OP1 and OP3 in follower mode *)
  let c5 = Configuration.make ~n_opamps:3 5 in
  Alcotest.(check (list int)) "followers" [ 0; 2 ] (Configuration.followers c5);
  Alcotest.(check string) "vector" "101" (Configuration.vector c5);
  (* C1 maps to OP1 (paper Table 3) *)
  let c1 = Configuration.make ~n_opamps:3 1 in
  Alcotest.(check (list int)) "C1 -> OP1" [ 0 ] (Configuration.followers c1)

let test_functional_transparent () =
  let f = Configuration.functional ~n_opamps:3 in
  Alcotest.(check bool) "functional" true (Configuration.is_functional f);
  Alcotest.(check int) "no followers" 0 (Configuration.n_followers f);
  let t = Configuration.transparent ~n_opamps:3 in
  Alcotest.(check bool) "transparent" true (Configuration.is_transparent t);
  Alcotest.(check int) "all followers" 3 (Configuration.n_followers t);
  Alcotest.(check bool) "transparent excluded" true
    (not (List.exists Configuration.is_transparent (Configuration.test_configurations ~n_opamps:3)))

let test_restriction () =
  let c5 = Configuration.make ~n_opamps:3 5 in
  Alcotest.(check bool) "needs OP1 OP3" true (Configuration.restricted_to ~subset:[ 0; 2 ] c5);
  Alcotest.(check bool) "not with OP1 OP2" false (Configuration.restricted_to ~subset:[ 0; 1 ] c5);
  (* paper 4.3: with OP1 OP2 configurable, 4 configurations are reachable *)
  let reachable = Configuration.reachable ~subset:[ 0; 1 ] ~n_opamps:3 in
  Alcotest.(check (list int)) "C0..C3" [ 0; 1; 2; 3 ] (List.map Configuration.index reachable)

let test_vector_partial () =
  let c1 = Configuration.make ~n_opamps:3 1 in
  Alcotest.(check string) "paper's C1 (10-)" "10-"
    (Configuration.vector_partial ~subset:[ 0; 1 ] c1)

let test_make_invalid () =
  Alcotest.check_raises "out of range"
    (Invalid_argument "Configuration.make: index 8 out of range for 3 opamps") (fun () ->
      ignore (Configuration.make ~n_opamps:3 8))

(* --- transform --- *)

let tow_thomas_dft () =
  let b = Circuits.Tow_thomas.make () in
  Transform.make ~source:"Vin" ~output:"v2" b.Circuits.Benchmark.netlist

let test_transform_basics () =
  let dft = tow_thomas_dft () in
  Alcotest.(check int) "3 opamps" 3 (Transform.n_opamps dft);
  Alcotest.(check string) "chain order" "OP1" (Transform.opamp_label dft 0);
  Alcotest.(check string) "chain order" "OP3" (Transform.opamp_label dft 2)

let test_functional_view_is_identity () =
  let dft = tow_thomas_dft () in
  let view = Transform.emulate dft (Configuration.functional ~n_opamps:3) in
  (* emulating C0 must not alter the response *)
  let base = dft.Transform.base in
  List.iter
    (fun f ->
      let w = 2.0 *. Float.pi *. f in
      let a = Mna.Ac.transfer ~source:"Vin" ~output:"v2" base ~omega:w in
      let b = Mna.Ac.transfer ~source:"Vin" ~output:"v2" view ~omega:w in
      Alcotest.(check (float 1e-12)) "same response" (Complex.norm a) (Complex.norm b))
    [ 10.0; 1000.0; 50_000.0 ]

let test_transparent_view_is_identity_function () =
  (* all opamps in follower mode: the circuit propagates the input to
     the primary output unchanged *)
  let dft = tow_thomas_dft () in
  let view = Transform.emulate dft (Configuration.transparent ~n_opamps:3) in
  List.iter
    (fun f ->
      let h = Mna.Ac.transfer ~source:"Vin" ~output:"v2" view ~omega:(2.0 *. Float.pi *. f) in
      Alcotest.(check (float 1e-9)) "unity" 1.0 (Complex.norm h))
    [ 1.0; 1000.0; 100_000.0 ]

let test_follower_buffers_chain_input () =
  (* with only OP1 in follower mode its output must equal the circuit
     input exactly *)
  let dft = tow_thomas_dft () in
  let view = Transform.emulate dft (Configuration.make ~n_opamps:3 1) in
  let sol = Mna.Ac.solve ~sources:(Mna.Assemble.Only "Vin") view ~omega:(2.0 *. Float.pi *. 500.0) in
  let v1 = Mna.Ac.voltage sol "v1" and vin = Mna.Ac.voltage sol "in" in
  Alcotest.(check (float 1e-12)) "buffered" (Complex.norm vin) (Complex.norm v1)

let test_all_views_solvable () =
  let dft = tow_thomas_dft () in
  List.iter
    (fun config ->
      let view = Transform.emulate dft config in
      let h = Mna.Ac.transfer ~source:"Vin" ~output:"v2" view ~omega:(2.0 *. Float.pi *. 777.0) in
      Alcotest.(check bool)
        (Printf.sprintf "%s finite" (Configuration.label config))
        true
        (Float.is_finite (Complex.norm h)))
    (Transform.configurations dft)

let test_views_differ () =
  (* different configurations implement different functions *)
  let dft = tow_thomas_dft () in
  let w = 2.0 *. Float.pi *. 100.0 in
  let response config =
    Complex.norm
      (Mna.Ac.transfer ~source:"Vin" ~output:"v2" (Transform.emulate dft config) ~omega:w)
  in
  let c0 = response (Configuration.make ~n_opamps:3 0) in
  let c2 = response (Configuration.make ~n_opamps:3 2) in
  Alcotest.(check bool) "C0 and C2 differ" true (Float.abs (c0 -. c2) > 1e-3)

let test_emulate_preserves_passives () =
  let dft = tow_thomas_dft () in
  List.iter
    (fun config ->
      let view = Transform.emulate dft config in
      Alcotest.(check int) "8 passives" 8 (List.length (Netlist.passives view)))
    (Transform.configurations dft)

let test_make_errors () =
  let b = Circuits.Tow_thomas.make () in
  let nl = b.Circuits.Benchmark.netlist in
  Alcotest.check_raises "unknown source"
    (Invalid_argument "Transform.make: no source \"VX\"") (fun () ->
      ignore (Transform.make ~source:"VX" ~output:"v2" nl));
  Alcotest.check_raises "bad chain"
    (Invalid_argument "Transform.make: chain is not a permutation of the circuit's opamps")
    (fun () -> ignore (Transform.make ~chain:[ "OP1" ] ~source:"Vin" ~output:"v2" nl))

let qcheck_followers_match_bits =
  QCheck.Test.make ~name:"followers = set bits of the index" ~count:200
    QCheck.(pair (int_range 1 10) (int_range 0 1023))
    (fun (n, i) ->
      let i = i mod (1 lsl n) in
      let c = Configuration.make ~n_opamps:n i in
      let from_bits =
        List.filter (fun k -> i land (1 lsl k) <> 0) (List.init n Fun.id)
      in
      Configuration.followers c = from_bits)

let suite =
  [
    Alcotest.test_case "configuration counts" `Quick test_counts;
    Alcotest.test_case "bit convention" `Quick test_bit_convention;
    Alcotest.test_case "functional/transparent" `Quick test_functional_transparent;
    Alcotest.test_case "restriction" `Quick test_restriction;
    Alcotest.test_case "vector partial" `Quick test_vector_partial;
    Alcotest.test_case "make invalid" `Quick test_make_invalid;
    Alcotest.test_case "transform basics" `Quick test_transform_basics;
    Alcotest.test_case "functional view identity" `Quick test_functional_view_is_identity;
    Alcotest.test_case "transparent propagates input" `Quick test_transparent_view_is_identity_function;
    Alcotest.test_case "follower buffers chain input" `Quick test_follower_buffers_chain_input;
    Alcotest.test_case "all views solvable" `Quick test_all_views_solvable;
    Alcotest.test_case "views differ" `Quick test_views_differ;
    Alcotest.test_case "passives preserved" `Quick test_emulate_preserves_passives;
    Alcotest.test_case "make errors" `Quick test_make_errors;
    QCheck_alcotest.to_alcotest qcheck_followers_match_bits;
  ]

(* --- configuration sequencing --- *)

let test_switch_cost () =
  Alcotest.(check int) "empty" 0 (Multiconfig.Sequence.switch_cost []);
  (* from C0: 0->1 (1 bit), 1->3 (1 bit), 3->2 (1 bit) *)
  Alcotest.(check int) "gray path" 3 (Multiconfig.Sequence.switch_cost [ 1; 3; 2 ]);
  (* a bad order pays more *)
  Alcotest.(check int) "bad order" 5 (Multiconfig.Sequence.switch_cost [ 3; 1; 2 ])

let test_order_improves () =
  let configs = [ 7; 1; 6; 2; 5; 3; 4 ] in
  let ordered = Multiconfig.Sequence.order configs in
  Alcotest.(check (list int)) "permutation" (List.sort compare configs)
    (List.sort compare ordered);
  Alcotest.(check bool) "never worse" true
    (Multiconfig.Sequence.switch_cost ordered
    <= Multiconfig.Sequence.switch_cost configs)

let test_order_full_space_is_gray_like () =
  (* visiting all 7 test configurations of a 3-opamp circuit can be
     done with 7 switches (a Gray walk); the heuristic should find it *)
  let ordered = Multiconfig.Sequence.order [ 1; 2; 3; 4; 5; 6; 7 ] in
  Alcotest.(check int) "7 single-bit switches" 7
    (Multiconfig.Sequence.switch_cost ordered)

let qcheck_order_is_permutation =
  QCheck.Test.make ~name:"sequence order is a cost-no-worse permutation" ~count:100
    QCheck.(list_of_size Gen.(int_range 0 10) (int_range 0 255))
    (fun configs ->
      let configs = List.sort_uniq compare configs in
      let ordered = Multiconfig.Sequence.order configs in
      List.sort compare ordered = List.sort compare configs
      && Multiconfig.Sequence.switch_cost ordered
         <= Multiconfig.Sequence.switch_cost configs)

let suite =
  suite
  @ [
      Alcotest.test_case "switch cost" `Quick test_switch_cost;
      Alcotest.test_case "order improves" `Quick test_order_improves;
      Alcotest.test_case "order full space" `Quick test_order_full_space_is_gray_like;
      QCheck_alcotest.to_alcotest qcheck_order_is_permutation;
    ]
