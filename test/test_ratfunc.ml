open Linalg

let p = Poly.of_coeffs

let test_make_normalizes () =
  (* (2 + 2s) / (2 + 2s) should evaluate to 1 everywhere *)
  let h = Ratfunc.make (p [| 2.0; 2.0 |]) (p [| 2.0; 2.0 |]) in
  Alcotest.(check (float 1e-12)) "H(j1)" 1.0 (Ratfunc.magnitude_jw h 1.0)

let test_zero_den_rejected () =
  Alcotest.check_raises "zero denominator"
    (Invalid_argument "Ratfunc.make: zero denominator") (fun () ->
      ignore (Ratfunc.make Poly.one Poly.zero))

let test_lowpass () =
  (* H = 1 / (1 + s); |H(j0)| = 1, |H(j1)| = 1/sqrt 2, phase -45 deg *)
  let h = Ratfunc.make Poly.one (p [| 1.0; 1.0 |]) in
  Alcotest.(check (float 1e-12)) "dc" 1.0 (Ratfunc.dc_gain h);
  Alcotest.(check (float 1e-9)) "corner" (1.0 /. sqrt 2.0) (Ratfunc.magnitude_jw h 1.0);
  let v = Ratfunc.eval_jw h 1.0 in
  Alcotest.(check (float 1e-9)) "phase" (-.Float.pi /. 4.0) (atan2 v.Complex.im v.Complex.re)

let test_poles_zeros () =
  (* H = s / (s^2 + 3s + 2) : zero at 0, poles at -1 and -2 *)
  let h = Ratfunc.make Poly.s (p [| 2.0; 3.0; 1.0 |]) in
  let zs = Ratfunc.zeros h in
  Alcotest.(check int) "one zero" 1 (Array.length zs);
  Alcotest.(check (float 1e-8)) "zero at origin" 0.0 (Complex.norm zs.(0));
  let ps =
    List.sort compare (Array.to_list (Array.map (fun c -> c.Complex.re) (Ratfunc.poles h)))
  in
  (match ps with
  | [ a; b ] ->
      Alcotest.(check (float 1e-6)) "pole -2" (-2.0) a;
      Alcotest.(check (float 1e-6)) "pole -1" (-1.0) b
  | _ -> Alcotest.fail "expected two poles")

let test_add_mul () =
  let a = Ratfunc.make Poly.one (p [| 1.0; 1.0 |]) in
  let b = Ratfunc.make Poly.one (p [| 2.0; 1.0 |]) in
  let sum = Ratfunc.add a b in
  let w = 0.7 in
  let expected = Complex.add (Ratfunc.eval_jw a w) (Ratfunc.eval_jw b w) in
  let got = Ratfunc.eval_jw sum w in
  Alcotest.(check (float 1e-9)) "add re" expected.Complex.re got.Complex.re;
  Alcotest.(check (float 1e-9)) "add im" expected.Complex.im got.Complex.im;
  let prod = Ratfunc.mul a b in
  let expected = Complex.mul (Ratfunc.eval_jw a w) (Ratfunc.eval_jw b w) in
  let got = Ratfunc.eval_jw prod w in
  Alcotest.(check (float 1e-9)) "mul re" expected.Complex.re got.Complex.re;
  Alcotest.(check (float 1e-9)) "mul im" expected.Complex.im got.Complex.im

let test_equal_at () =
  let a = Ratfunc.make Poly.one (p [| 1.0; 1.0 |]) in
  (* same function with a non-cancelled common factor (1 + 2s) *)
  let factor = p [| 1.0; 2.0 |] in
  let b = Ratfunc.make factor (Poly.mul (p [| 1.0; 1.0 |]) factor) in
  Alcotest.(check bool) "equal up to common factor" true (Ratfunc.equal_at a b);
  let c = Ratfunc.make (p [| 2.0 |]) (p [| 1.0; 1.0 |]) in
  Alcotest.(check bool) "different" false (Ratfunc.equal_at a c)

let suite =
  [
    Alcotest.test_case "make normalizes" `Quick test_make_normalizes;
    Alcotest.test_case "zero denominator" `Quick test_zero_den_rejected;
    Alcotest.test_case "first-order lowpass" `Quick test_lowpass;
    Alcotest.test_case "poles and zeros" `Quick test_poles_zeros;
    Alcotest.test_case "add and mul" `Quick test_add_mul;
    Alcotest.test_case "equal_at" `Quick test_equal_at;
  ]

let test_simplify_cancels_common_factor () =
  let base = Ratfunc.make Poly.one (p [| 1.0; 1.0 |]) in
  let factor = p [| 2.0; 3.0 |] in
  let padded =
    Ratfunc.make (Poly.mul Poly.one factor) (Poly.mul (p [| 1.0; 1.0 |]) factor)
  in
  let simplified = Ratfunc.simplify padded in
  Alcotest.(check int) "denominator degree drops" 1
    (Poly.degree simplified.Ratfunc.den);
  Alcotest.(check bool) "same function" true (Ratfunc.equal_at base simplified)

let test_simplify_keeps_distinct_roots () =
  (* zero at -1, poles at -2 and -3: nothing shared *)
  let h = Ratfunc.make (p [| 1.0; 1.0 |]) (p [| 6.0; 5.0; 1.0 |]) in
  let s = Ratfunc.simplify h in
  Alcotest.(check int) "nothing cancelled" 2 (Poly.degree s.Ratfunc.den);
  Alcotest.(check bool) "same function" true (Ratfunc.equal_at h s)

let test_simplify_conjugate_pairs () =
  (* common factor s^2 + 1 cancels and the surviving complex poles
     rebuild into a real-coefficient quadratic *)
  let pair = p [| 1.0; 0.0; 1.0 |] in
  let den = Poly.mul pair (p [| 4.0; 2.0; 1.0 |]) in
  let h = Ratfunc.make pair den in
  let s = Ratfunc.simplify h in
  Alcotest.(check int) "num constant" 0 (Poly.degree s.Ratfunc.num);
  Alcotest.(check int) "den quadratic" 2 (Poly.degree s.Ratfunc.den);
  Alcotest.(check bool) "same function" true (Ratfunc.equal_at h s)

let test_group_delay_first_order () =
  (* H = 1/(1 + s tau): tau_g = tau / (1 + (w tau)^2) *)
  let tau = 1e-3 in
  let h = Ratfunc.make Poly.one (p [| 1.0; tau |]) in
  List.iter
    (fun w ->
      let expected = tau /. (1.0 +. ((w *. tau) ** 2.0)) in
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "tau_g at %g" w)
        expected (Ratfunc.group_delay h w))
    [ 0.0; 100.0; 1000.0; 10_000.0 ]

let test_group_delay_matches_numeric_derivative () =
  (* biquad: compare against a central difference of the phase *)
  let h = Ratfunc.make (p [| 1.0 |]) (p [| 1.0; 0.2; 1.0 |]) in
  let phase w = Complex.arg (Ratfunc.eval_jw h w) in
  List.iter
    (fun w ->
      let dw = 1e-6 *. Float.max 1.0 w in
      let numeric = -.(phase (w +. dw) -. phase (w -. dw)) /. (2.0 *. dw) in
      Alcotest.(check (float 1e-4))
        (Printf.sprintf "at w=%g" w)
        numeric (Ratfunc.group_delay h w))
    [ 0.3; 0.9; 1.1; 3.0 ]

let suite =
  suite
  @ [
      Alcotest.test_case "simplify cancels" `Quick test_simplify_cancels_common_factor;
      Alcotest.test_case "simplify keeps distinct" `Quick test_simplify_keeps_distinct_roots;
      Alcotest.test_case "simplify conjugates" `Quick test_simplify_conjugate_pairs;
      Alcotest.test_case "group delay first order" `Quick test_group_delay_first_order;
      Alcotest.test_case "group delay numeric" `Quick test_group_delay_matches_numeric_derivative;
    ]
