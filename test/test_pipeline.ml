(* End-to-end reproduction on the simulated biquad: the paper's shape
   must hold (structure, winners, crossovers), even though absolute
   values come from our simulator rather than the authors' HSPICE
   setup.  See EXPERIMENTS.md for the side-by-side record. *)

module P = Mcdft_core.Pipeline
module O = Mcdft_core.Optimizer
module IntSet = Cover.Clause.IntSet

let pipeline = lazy (P.run (Circuits.Tow_thomas.make ()))
let report = lazy (P.optimize (Lazy.force pipeline))

let test_matrix_shape () =
  let t = Lazy.force pipeline in
  let m = t.P.matrix in
  Alcotest.(check int) "7 test configurations" 7 (Testability.Matrix.n_views m);
  Alcotest.(check int) "8 faults" 8 (Testability.Matrix.n_faults m)

let test_dft_restores_full_coverage () =
  let r = Lazy.force report in
  Alcotest.(check (float 1e-9)) "max FC = 100%" 1.0 r.O.max_coverage;
  Alcotest.(check bool) "functional FC is poor" true (r.O.functional_coverage <= 0.5)

let test_omega_improvement () =
  let r = Lazy.force report in
  Alcotest.(check bool) "DFT widens detectability regions" true
    (r.O.brute_force_avg_omega > 3.0 *. r.O.functional_avg_omega)

let test_essential_is_c2 () =
  (* OP2's follower configuration breaks both integrator loops at once,
     uniquely exposing several faults — same structure as the paper *)
  let r = Lazy.force report in
  Alcotest.(check (list int)) "essential = {C2}" [ 2 ] r.O.essential

let test_two_config_optima () =
  let r = Lazy.force report in
  Alcotest.(check int) "optimal test set has 2 configurations" 2
    (List.length r.O.choice_a.O.configs);
  Alcotest.(check bool) "both paper ties present" true
    (List.exists (fun s -> IntSet.elements s = [ 1; 2 ]) r.O.min_config_sets
    && List.exists (fun s -> IntSet.elements s = [ 2; 5 ]) r.O.min_config_sets)

let test_partial_dft_two_opamps () =
  let r = Lazy.force report in
  Alcotest.(check (list int)) "OP1 and OP2 configurable" [ 0; 1 ] r.O.choice_b.O.opamps;
  Alcotest.(check (list int)) "4 reachable configurations" [ 0; 1; 2; 3 ]
    r.O.choice_b.O.reachable_configs

let test_choices_cover () =
  let t = Lazy.force pipeline in
  let r = Lazy.force report in
  let p = Cover.Clause.of_matrix t.P.matrix.Testability.Matrix.detect in
  Alcotest.(check bool) "choice A covers" true
    (Cover.Clause.is_cover p (IntSet.of_list r.O.choice_a.O.configs));
  Alcotest.(check bool) "choice B covers" true
    (Cover.Clause.is_cover p (IntSet.of_list r.O.choice_b.O.reachable_configs))

let test_partial_vs_brute_tradeoff () =
  (* the partial DFT pays in average omega-detectability relative to the
     brute-force application, but stays above the functional circuit —
     the paper's Graph 4 shape *)
  let r = Lazy.force report in
  Alcotest.(check bool) "partial below brute force" true
    (r.O.choice_b.O.avg_omega_reachable <= r.O.brute_force_avg_omega +. 1e-9);
  Alcotest.(check bool) "partial far above functional" true
    (r.O.choice_b.O.avg_omega_reachable > r.O.functional_avg_omega)

let test_functional_results_match_matrix_row0 () =
  let t = Lazy.force pipeline in
  let results = P.functional_results t in
  List.iteri
    (fun j (res : Testability.Detect.result) ->
      Alcotest.(check bool)
        (Printf.sprintf "fault %d consistent" j)
        t.P.matrix.Testability.Matrix.detect.(0).(j)
        res.Testability.Detect.detectable)
    results

let test_fixed_criterion_mode () =
  (* the paper's literal Definition 1 at eps = 10%: still 100% max
     coverage; our biquad is fully observable at that tolerance *)
  let t =
    P.run
      ~criterion:(Testability.Detect.Fixed_tolerance 0.10)
      ~points_per_decade:10
      (Circuits.Tow_thomas.make ())
  in
  let r = P.optimize t in
  Alcotest.(check (float 1e-9)) "max FC" 1.0 r.O.max_coverage

let test_single_opamp_circuit () =
  (* smallest possible instance: 1 opamp, 2 configurations, C1 is the
     transparent one so only C0 remains as a test configuration *)
  let t = P.run ~points_per_decade:10 (Circuits.Sallen_key.lowpass ()) in
  let m = t.P.matrix in
  Alcotest.(check int) "single view" 1 (Testability.Matrix.n_views m);
  let r = P.optimize t in
  Alcotest.(check bool) "coverage within [0,1]" true
    (r.O.max_coverage >= 0.0 && r.O.max_coverage <= 1.0)

let suite =
  [
    Alcotest.test_case "matrix shape" `Quick test_matrix_shape;
    Alcotest.test_case "dft restores coverage" `Quick test_dft_restores_full_coverage;
    Alcotest.test_case "omega improvement" `Quick test_omega_improvement;
    Alcotest.test_case "essential is C2" `Quick test_essential_is_c2;
    Alcotest.test_case "two-config optima" `Quick test_two_config_optima;
    Alcotest.test_case "partial DFT: 2 opamps" `Quick test_partial_dft_two_opamps;
    Alcotest.test_case "choices cover" `Quick test_choices_cover;
    Alcotest.test_case "partial vs brute tradeoff" `Quick test_partial_vs_brute_tradeoff;
    Alcotest.test_case "functional row consistency" `Quick test_functional_results_match_matrix_row0;
    Alcotest.test_case "fixed criterion mode" `Quick test_fixed_criterion_mode;
    Alcotest.test_case "single-opamp circuit" `Quick test_single_opamp_circuit;
  ]
