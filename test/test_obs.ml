(* The observability layer's contracts:
   - disabled means no-op (the default state);
   - snapshots merge per-domain shards exactly once helpers are joined;
   - counter totals are worker-count invariant on a real campaign;
   - the metric mirror of Fastsim.stats matches the engine's own sums;
   - the trace exporter emits valid Chrome-trace JSON. *)

module Metrics = Obs.Metrics
module Trace = Obs.Trace

(* Every test leaves the global registry disabled and empty so the
   rest of the suite (and the bench harness idiom) is unaffected. *)
let with_metrics f =
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect f ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ())

let test_counter_roundtrip () =
  with_metrics (fun () ->
      Metrics.incr "obs.test.a";
      Metrics.incr ~by:4 "obs.test.a";
      Metrics.incr "obs.test.b";
      Metrics.observe "obs.test.h" 0.5;
      Metrics.observe "obs.test.h" 2.0;
      let snap = Metrics.snapshot () in
      Alcotest.(check int) "a" 5 (Metrics.counter snap "obs.test.a");
      Alcotest.(check int) "b" 1 (Metrics.counter snap "obs.test.b");
      Alcotest.(check int) "absent" 0 (Metrics.counter snap "obs.test.c");
      match List.assoc_opt "obs.test.h" snap.Metrics.histograms with
      | None -> Alcotest.fail "histogram missing from snapshot"
      | Some h ->
          Alcotest.(check int) "count" 2 h.Metrics.count;
          Alcotest.(check (float 1e-12)) "sum" 2.5 h.Metrics.sum;
          Alcotest.(check (float 1e-12)) "min" 0.5 h.Metrics.min;
          Alcotest.(check (float 1e-12)) "max" 2.0 h.Metrics.max)

let test_disabled_noop () =
  Metrics.reset ();
  Metrics.set_enabled false;
  Metrics.incr "obs.test.off";
  Metrics.observe "obs.test.off_h" 1.0;
  let snap = Metrics.snapshot () in
  Alcotest.(check int) "counter not recorded" 0
    (Metrics.counter snap "obs.test.off");
  Alcotest.(check bool) "histogram not recorded" true
    (List.assoc_opt "obs.test.off_h" snap.Metrics.histograms = None)

let test_time_records_on_raise () =
  with_metrics (fun () ->
      (try Metrics.time "obs.test.t" (fun () -> failwith "x")
       with Failure _ -> ());
      let snap = Metrics.snapshot () in
      match List.assoc_opt "obs.test.t" snap.Metrics.histograms with
      | None -> Alcotest.fail "duration dropped on raise"
      | Some h -> Alcotest.(check int) "count" 1 h.Metrics.count)

let test_snapshot_merges_domains () =
  with_metrics (fun () ->
      let helpers =
        List.init 3 (fun _ ->
            Domain.spawn (fun () -> Metrics.incr ~by:3 "obs.test.shard"))
      in
      Metrics.incr "obs.test.shard";
      List.iter Domain.join helpers;
      let snap = Metrics.snapshot () in
      Alcotest.(check int) "1 + 3×3 across four shards" 10
        (Metrics.counter snap "obs.test.shard"))

(* ISSUE acceptance: solver counters are a property of the campaign,
   not of its schedule — jobs:1 and jobs:4 must agree on every counter
   total except the scheduler's own activity counters. *)
let test_jobs_invariant_counters () =
  let b = Circuits.Tow_thomas.make () in
  let solver_counters jobs =
    with_metrics (fun () ->
        ignore (Mcdft_core.Pipeline.run ~points_per_decade:6 ~jobs b);
        let snap = Metrics.snapshot () in
        List.filter
          (fun (name, _) -> not (String.starts_with ~prefix:"parallel." name))
          snap.Metrics.counters)
  in
  let sequential = solver_counters 1 and parallel = solver_counters 4 in
  Alcotest.(check (list (pair string int)))
    "counter totals, jobs:1 vs jobs:4" sequential parallel

(* ISSUE acceptance: the emitted counters match Fastsim.stats exactly —
   same increment sites, so the sums cannot drift. *)
let test_fastsim_stats_mirror () =
  let b = Circuits.Tow_thomas.make () in
  let netlist = b.Circuits.Benchmark.netlist in
  let grid =
    Testability.Grid.around ~points_per_decade:8
      ~center_hz:b.Circuits.Benchmark.center_hz ()
  in
  with_metrics (fun () ->
      let sim =
        Testability.Fastsim.create ~source:b.Circuits.Benchmark.source
          ~output:b.Circuits.Benchmark.output
          ~freqs_hz:(Testability.Grid.freqs_hz grid)
          netlist
      in
      List.iter
        (fun fault -> ignore (Testability.Fastsim.response sim fault))
        (Fault.both_deviations netlist @ Fault.catastrophic_faults netlist);
      let smw, full = Testability.Fastsim.stats sim in
      let snap = Metrics.snapshot () in
      Alcotest.(check int) "smw_solves mirrors stats" smw
        (Metrics.counter snap "fastsim.smw_solves");
      Alcotest.(check int) "full_solves mirrors stats" full
        (Metrics.counter snap "fastsim.full_solves"))

let test_trace_spans_and_export () =
  Trace.reset ();
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.reset ())
    (fun () ->
      let r =
        Trace.span "outer" (fun () ->
            Trace.span "inner \"quoted\"" (fun () -> 41 + 1))
      in
      Alcotest.(check int) "span returns f's value" 42 r;
      Trace.begin_ "open";
      Trace.end_ ();
      Trace.end_ () (* unmatched: must be a no-op *);
      let events = Trace.events () in
      Alcotest.(check int) "three completed spans" 3 (List.length events);
      (* inner completes before outer, so outer's duration covers it *)
      let dur name =
        (List.find (fun e -> e.Trace.name = name) events).Trace.dur_us
      in
      Alcotest.(check bool) "nesting: outer ⊇ inner" true
        (dur "outer" >= dur "inner \"quoted\"");
      match Report.Json.of_string (Trace.export_chrome ()) with
      | Error msg -> Alcotest.fail ("export is not valid JSON: " ^ msg)
      | Ok doc -> (
          match Report.Json.member "traceEvents" doc with
          | Some (Report.Json.List evs) ->
              Alcotest.(check int) "traceEvents length" 3 (List.length evs)
          | _ -> Alcotest.fail "traceEvents array missing"))

(* Concurrent emitters: spans opened on different domains must land on
   different lanes (tids), keep their per-lane nesting, and still
   export one valid Chrome document. A barrier keeps all workers alive
   simultaneously so their domain ids cannot be reused. *)
let test_trace_concurrent_emitters () =
  Trace.reset ();
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.reset ())
    (fun () ->
      let workers = 4 and rounds = 5 in
      let ready = Atomic.make 0 in
      let domains =
        List.init workers (fun w ->
            Domain.spawn (fun () ->
                Atomic.incr ready;
                while Atomic.get ready < workers do Domain.cpu_relax () done;
                for k = 1 to rounds do
                  Trace.span
                    (Printf.sprintf "outer.%d.%d" w k)
                    (fun () ->
                      Trace.span (Printf.sprintf "inner.%d.%d" w k) (fun () ->
                          ignore (Sys.opaque_identity (k * k))))
                done))
      in
      List.iter Domain.join domains;
      let events = Trace.events () in
      Alcotest.(check int) "outer+inner per round per worker"
        (workers * rounds * 2)
        (List.length events);
      let tids = List.sort_uniq compare (List.map (fun e -> e.Trace.tid) events) in
      Alcotest.(check int) "one lane per live domain" workers (List.length tids);
      (* per lane: every inner span sits inside an outer span's window
         of the same lane, and lanes never mix workers *)
      List.iter
        (fun e ->
          let is_inner = String.length e.Trace.name >= 6 && String.sub e.Trace.name 0 6 = "inner." in
          if is_inner then begin
            let outer_name = "outer." ^ String.sub e.Trace.name 6 (String.length e.Trace.name - 6) in
            match List.find_opt (fun o -> o.Trace.name = outer_name) events with
            | None -> Alcotest.failf "%s has no matching outer span" e.Trace.name
            | Some o ->
                Alcotest.(check int)
                  (e.Trace.name ^ " shares its outer's lane")
                  o.Trace.tid e.Trace.tid;
                (* 0.5µs slack: clock reads share ticks at the µs
                   resolution of gettimeofday and ts+dur re-rounds *)
                Alcotest.(check bool)
                  (e.Trace.name ^ " nested in its outer's window")
                  true
                  (o.Trace.ts_us <= e.Trace.ts_us +. 0.5
                  && e.Trace.ts_us +. e.Trace.dur_us
                     <= o.Trace.ts_us +. o.Trace.dur_us +. 0.5)
          end)
        events;
      (* events are globally sorted by start time *)
      let rec sorted = function
        | a :: (b :: _ as rest) -> a.Trace.ts_us <= b.Trace.ts_us && sorted rest
        | _ -> true
      in
      Alcotest.(check bool) "events sorted by start time" true (sorted events);
      match Report.Json.of_string (Trace.export_chrome ()) with
      | Error msg -> Alcotest.fail ("export is not valid JSON: " ^ msg)
      | Ok doc -> (
          match Report.Json.member "traceEvents" doc with
          | Some (Report.Json.List evs) ->
              Alcotest.(check int) "all spans exported"
                (workers * rounds * 2)
                (List.length evs)
          | _ -> Alcotest.fail "traceEvents array missing"))

let test_trace_disabled_noop () =
  Trace.reset ();
  Trace.set_enabled false;
  ignore (Trace.span "off" (fun () -> ()));
  Alcotest.(check int) "no events recorded" 0 (List.length (Trace.events ()))

let suite =
  [
    Alcotest.test_case "counter/histogram round-trip" `Quick
      test_counter_roundtrip;
    Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
    Alcotest.test_case "time records duration on raise" `Quick
      test_time_records_on_raise;
    Alcotest.test_case "snapshot merges per-domain shards" `Quick
      test_snapshot_merges_domains;
    Alcotest.test_case "campaign counters invariant under jobs" `Slow
      test_jobs_invariant_counters;
    Alcotest.test_case "fastsim metrics mirror stats" `Quick
      test_fastsim_stats_mirror;
    Alcotest.test_case "trace spans nest and export as Chrome JSON" `Quick
      test_trace_spans_and_export;
    Alcotest.test_case "trace lanes stay nested under concurrent emitters"
      `Quick test_trace_concurrent_emitters;
    Alcotest.test_case "trace disabled is a no-op" `Quick
      test_trace_disabled_noop;
  ]
