(* Interval-certified detectability: soundness of Analysis.Certify and
   its integration into the campaign engine. The load-bearing property
   is bitwise identity — a campaign that consumes certified verdicts
   must produce exactly the matrices a fully numeric run produces. *)

open Testability
module P = Mcdft_core.Pipeline
module PF = Mcdft_core.Prefilter
module C = Analysis.Certify

let benchmark name =
  match Circuits.Registry.find name with
  | Some b -> b
  | None -> Alcotest.failf "missing benchmark %s" name

let eps = 0.10
let criterion = Detect.Fixed_tolerance eps

(* ---- the tier-1 acceptance assertion: certified campaigns are
   bitwise identical to uncertified ones, across the whole registry ---- *)

let test_registry_identity () =
  List.iter
    (fun (b : Circuits.Benchmark.t) ->
      let on = P.run ~criterion ~points_per_decade:4 ~certify:true b in
      let off = P.run ~criterion ~points_per_decade:4 ~certify:false b in
      Alcotest.(check bool)
        (b.Circuits.Benchmark.name ^ ": detect identical")
        true
        (on.P.matrix.Matrix.detect = off.P.matrix.Matrix.detect);
      Alcotest.(check bool)
        (b.Circuits.Benchmark.name ^ ": omega identical")
        true
        (on.P.matrix.Matrix.omega = off.P.matrix.Matrix.omega);
      Alcotest.(check bool)
        (b.Circuits.Benchmark.name ^ ": certification ran")
        true
        (on.P.certify <> None && off.P.certify = None))
    (Circuits.Registry.all ())

let test_prefilter_identity () =
  let b = benchmark "tow-thomas" in
  let _, on = PF.run ~criterion ~points_per_decade:10 ~certify:true b in
  let _, off = PF.run ~criterion ~points_per_decade:10 ~certify:false b in
  Alcotest.(check bool) "detect identical" true (on.Matrix.detect = off.Matrix.detect);
  Alcotest.(check bool) "omega identical" true (on.Matrix.omega = off.Matrix.omega)

(* ---- the campaign actually skips solves, and says so ---- *)

let test_solves_skipped_counter () =
  let was_enabled = Obs.Metrics.enabled () in
  Obs.Metrics.set_enabled true;
  Obs.Metrics.reset ();
  Fun.protect ~finally:(fun () ->
      Obs.Metrics.reset ();
      Obs.Metrics.set_enabled was_enabled)
  @@ fun () ->
  let t = P.run ~criterion ~points_per_decade:10 (benchmark "tow-thomas") in
  let snap = Obs.Metrics.snapshot () in
  let counter name =
    match List.assoc_opt name snap.Obs.Metrics.counters with
    | Some n -> n
    | None -> 0
  in
  Alcotest.(check bool) "solves skipped" true (counter "certify.solves_skipped" > 0);
  match t.P.certify with
  | None -> Alcotest.fail "fixed criterion should produce a certification"
  | Some c ->
      Alcotest.(check bool)
        "counter matches stats" true
        (counter "certify.solves_skipped" = c.C.stats.C.points_proved);
      Alcotest.(check bool)
        "some points proved" true
        (c.C.stats.C.points_proved > 0)

(* ---- criterion scoping: only Fixed_tolerance is certifiable ---- *)

let test_criterion_scope () =
  let b = benchmark "sallen-key-lp" in
  let envelope = P.run ~points_per_decade:6 b in
  Alcotest.(check bool) "default envelope criterion: no certification" true
    (envelope.P.certify = None);
  let fixed = P.run ~criterion ~points_per_decade:6 b in
  Alcotest.(check bool) "fixed criterion: certification present" true
    (fixed.P.certify <> None)

(* ---- verdict cube invariants ---- *)

let test_cube_invariants () =
  let b = benchmark "tow-thomas" in
  let t = P.run ~criterion ~points_per_decade:10 b in
  match t.P.certify with
  | None -> Alcotest.fail "expected a certification"
  | Some c ->
      let s = c.C.stats in
      Alcotest.(check bool) "proved <= total points" true
        (s.C.points_proved <= s.C.points);
      Alcotest.(check bool) "cells proved <= cells" true
        (s.C.cells_proved <= s.C.cells);
      let cube = C.verdict_cube c in
      Array.iteri
        (fun i row ->
          Array.iter
            (function
              | None -> ()
              | Some v ->
                  Alcotest.(check bool) "cube row length = grid" true
                    (Bytes.length v = c.C.n_points);
                  Alcotest.(check bool) "cube only on validated views" true
                    c.C.views.(i).C.validated;
                  Bytes.iter
                    (fun byte ->
                      match C.verdict_of_byte byte with
                      | C.Certified_detectable | C.Certified_undetectable
                      | C.Unknown ->
                          ())
                    v)
            row)
        cube;
      (* byte round-trip *)
      List.iter
        (fun v ->
          Alcotest.(check bool) "byte round-trip" true
            (C.verdict_of_byte (C.byte_of_verdict v) = v))
        [ C.Certified_detectable; C.Certified_undetectable; C.Unknown ]

let test_eps_validation () =
  Alcotest.check_raises "eps = 0 rejected"
    (Invalid_argument "Certify.certify: eps must be positive") (fun () ->
      ignore (C.certify ~eps:0.0 ~freqs_hz:[| 1.0 |] [] []))

(* ---- regions tile the grid and agree with the point verdicts ---- *)

let test_regions_cover_grid () =
  let b = benchmark "tow-thomas" in
  let grid = Grid.around ~points_per_decade:10 ~center_hz:1000.0 () in
  let freqs_hz = Grid.freqs_hz grid in
  let spec =
    {
      C.label = "C0";
      netlist = b.Circuits.Benchmark.netlist;
      source = b.Circuits.Benchmark.source;
      output = b.Circuits.Benchmark.output;
    }
  in
  let faults = [ Fault.deviation ~element:"R1" 1.2 ] in
  let c = C.certify ~eps ~freqs_hz [ spec ] faults in
  Array.iter
    (fun (v : C.view_result) ->
      Array.iter
        (fun (cell : C.cell) ->
          Array.iteri
            (fun k f ->
              let l = log10 f in
              (* the point verdict is the first containing leaf's, and
                 the leaves tile the whole (slightly widened) range *)
              match
                List.find_opt
                  (fun (r : C.region) -> Util.Interval.contains r.C.band l)
                  cell.C.regions
              with
              | None -> Alcotest.failf "grid point %g Hz not covered by a region" f
              | Some r ->
                  Alcotest.(check bool) "region verdict matches point byte" true
                    (C.byte_of_verdict r.C.verdict = Bytes.get cell.C.verdicts k))
            freqs_hz)
        v.C.cells)
      c.C.views

(* ---- CLI surface ---- *)

let mcdft_exe = "../bin/mcdft.exe"

let run_cli cmd =
  Sys.command (Printf.sprintf "%s %s > /dev/null 2>&1" mcdft_exe cmd)

let test_cli_certify () =
  Alcotest.(check int) "certify runs" 0 (run_cli "certify tow-thomas");
  Alcotest.(check int) "certify --json runs" 0 (run_cli "certify tow-thomas --json");
  Alcotest.(check int) "non-fixed criterion refused" 1
    (run_cli "certify tow-thomas --criterion envelope:0.04:0.02");
  Alcotest.(check int) "--no-certify accepted" 0
    (run_cli
       "matrix tow-thomas --criterion fixed:0.1 --points-per-decade 5 --no-certify")

(* ---- single parse per campaign invocation (pre-flight lint reuses
   the campaign's parse; the spice.parse counter proves it) ---- *)

let test_single_parse_per_invocation () =
  let dir = Filename.temp_file "mcdft-parse" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
  @@ fun () ->
  let cir = Filename.concat dir "tt.cir" in
  let oc = open_out cir in
  output_string oc
    (Spice.Writer.to_string (benchmark "tow-thomas").Circuits.Benchmark.netlist);
  close_out oc;
  let metrics = Filename.concat dir "metrics.json" in
  Alcotest.(check int) "matrix on a file runs" 0
    (run_cli
       (Printf.sprintf
          "matrix %s --criterion fixed:0.1 --points-per-decade 4 --metrics %s"
          (Filename.quote cir) (Filename.quote metrics)));
  let ic = open_in metrics in
  let json = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Report.Json.of_string json with
  | Error msg -> Alcotest.failf "metrics JSON unreadable: %s" msg
  | Ok j -> (
      match Option.bind (Report.Json.member "counters" j) (Report.Json.member "spice.parse") with
      | Some (Report.Json.Number n) ->
          Alcotest.(check int) "exactly one parse" 1 (int_of_float n)
      | _ -> Alcotest.fail "spice.parse counter missing from metrics")

let suite =
  [
    Alcotest.test_case "registry identity (certify on = off)" `Slow
      test_registry_identity;
    Alcotest.test_case "prefilter identity" `Quick test_prefilter_identity;
    Alcotest.test_case "solves-skipped counter" `Quick test_solves_skipped_counter;
    Alcotest.test_case "criterion scope" `Quick test_criterion_scope;
    Alcotest.test_case "verdict cube invariants" `Quick test_cube_invariants;
    Alcotest.test_case "eps validation" `Quick test_eps_validation;
    Alcotest.test_case "regions cover the grid" `Quick test_regions_cover_grid;
    Alcotest.test_case "cli certify" `Quick test_cli_certify;
    Alcotest.test_case "single parse per invocation" `Quick
      test_single_parse_per_invocation;
  ]
