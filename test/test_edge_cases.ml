(* Edge cases and small behaviours across modules that deserve pinning
   but do not warrant their own suite. *)

module Netlist = Circuit.Netlist
module Element = Circuit.Element

(* --- util --- *)

let test_quantity_suffix_priority () =
  (* "meg" must win over "m" *)
  Alcotest.(check (float 0.0)) "1m is milli" 1e-3 (Util.Quantity.parse_exn "1m");
  Alcotest.(check (float 0.0)) "1meg is mega" 1e6 (Util.Quantity.parse_exn "1meg");
  Alcotest.(check (float 1e-12)) "mil is 25.4u" 25.4e-6 (Util.Quantity.parse_exn "1mil");
  Alcotest.(check (float 0.0)) "exponent beats suffix" 1e-3
    (Util.Quantity.parse_exn "1e-3")

let test_interval_hull_overlaps () =
  let a = Util.Interval.make 0.0 1.0 and b = Util.Interval.make 2.0 3.0 in
  let h = Util.Interval.hull a b in
  Alcotest.(check (float 0.0)) "hull lo" 0.0 h.Util.Interval.lo;
  Alcotest.(check (float 0.0)) "hull hi" 3.0 h.Util.Interval.hi;
  Alcotest.(check bool) "disjoint" false (Util.Interval.overlaps a b);
  Alcotest.(check bool) "self" true (Util.Interval.overlaps a a)

(* --- linalg --- *)

let test_cmat_one_by_one () =
  let m = Linalg.Cmat.of_arrays [| [| Complex.{ re = 4.0; im = 0.0 } |] |] in
  let x = Linalg.Cmat.solve m [| Complex.{ re = 8.0; im = 0.0 } |] in
  Alcotest.(check (float 1e-12)) "scalar solve" 2.0 x.(0).Complex.re;
  Alcotest.(check (float 1e-12)) "residual" 0.0
    (Linalg.Cmat.residual_norm m x [| Complex.{ re = 8.0; im = 0.0 } |])

let test_poly_corner_cases () =
  Alcotest.(check string) "zero prints" "0" (Linalg.Poly.to_string Linalg.Poly.zero);
  Alcotest.(check bool) "normalize zero" true
    (Linalg.Poly.is_zero (Linalg.Poly.normalize Linalg.Poly.zero));
  Alcotest.(check int) "no roots of constants" 0
    (Array.length (Linalg.Poly.roots Linalg.Poly.one));
  let p = Linalg.Poly.of_coeffs [| 2.0; 0.0; 4.0 |] in
  let monic = Linalg.Poly.normalize p in
  Alcotest.(check (float 0.0)) "monic lead" 1.0
    (Linalg.Poly.coeff monic (Linalg.Poly.degree monic))

(* --- circuit --- *)

let test_element_with_value_errors () =
  let op = Element.Opamp { name = "OP"; inp = "a"; inn = "b"; out = "c"; model = Element.Ideal } in
  Alcotest.check_raises "ideal opamp has no value"
    (Invalid_argument "Element.with_value: ideal opamp has no scalar parameter")
    (fun () -> ignore (Element.with_value op 2.0));
  Alcotest.(check bool) "no value" true (Element.value op = None);
  Alcotest.(check char) "kind letter" 'X' (Element.kind_letter op)

let test_netlist_pp_contains_title () =
  let n = Netlist.empty ~title:"my circuit" () |> Netlist.resistor ~name:"R1" "a" "0" 1.0 in
  let s = Format.asprintf "%a" Netlist.pp n in
  Alcotest.(check bool) "title present" true
    (String.length s > 0 && String.sub s 0 2 = "* ")

let test_single_pole_value_is_gain () =
  let op =
    Element.Opamp
      { name = "OP"; inp = "a"; inn = "b"; out = "c";
        model = Element.Single_pole { dc_gain = 5.0; pole_hz = 10.0 } }
  in
  Alcotest.(check bool) "value is dc gain" true (Element.value op = Some 5.0);
  match Element.with_value op 7.0 with
  | Element.Opamp { model = Element.Single_pole { dc_gain; _ }; _ } ->
      Alcotest.(check (float 0.0)) "updated" 7.0 dc_gain
  | _ -> Alcotest.fail "shape changed"

(* --- mna --- *)

let test_magnitude_db () =
  Alcotest.(check (float 1e-9)) "0 dB" 0.0 (Mna.Ac.magnitude_db Complex.one);
  Alcotest.(check (float 1e-9)) "-20 dB" (-20.0)
    (Mna.Ac.magnitude_db Complex.{ re = 0.1; im = 0.0 });
  Alcotest.(check bool) "zero is -inf" true
    (Mna.Ac.magnitude_db Complex.zero = neg_infinity)

let test_dc_with_nominal_sources () =
  let n =
    Netlist.empty ()
    |> Netlist.vsource ~name:"V1" "a" "0" 2.0
    |> Netlist.resistor ~name:"R1" "a" "b" 1000.0
    |> Netlist.resistor ~name:"R2" "b" "0" 1000.0
  in
  let sol = Mna.Dc.solve n in
  Alcotest.(check (float 1e-12)) "declared amplitude used" 1.0 (Mna.Dc.voltage sol "b")

let test_symbolic_output_ground_rejected () =
  let n =
    Netlist.empty ()
    |> Netlist.vsource ~name:"V1" "a" "0" 1.0
    |> Netlist.resistor ~name:"R1" "a" "0" 1.0
  in
  Alcotest.check_raises "ground output"
    (Invalid_argument "Symbolic.transfer: output node is ground") (fun () ->
      ignore (Mna.Symbolic.transfer ~source:"V1" ~output:"0" n))

let test_transient_isource_waveform () =
  let n =
    Netlist.empty ()
    |> Netlist.isource ~name:"I1" "0" "out" 0.0
    |> Netlist.resistor ~name:"R1" "out" "0" 1000.0
  in
  let trace =
    Mna.Transient.simulate
      ~waveforms:[ ("I1", Mna.Transient.Dc 1e-3) ]
      ~record:[ "out" ] ~t_stop:1e-3 ~dt:1e-4 n
  in
  let out = List.assoc "out" trace.Mna.Transient.signals in
  Alcotest.(check (float 1e-9)) "ohm" 1.0 out.(Array.length out - 1)

(* --- cover --- *)

let test_solver_empty_problem () =
  let p = Cover.Clause.of_sets ~n_candidates:5 [] in
  Alcotest.(check bool) "exact empty" true
    (Cover.Clause.IntSet.is_empty (Cover.Solver.(cover_exn (exact p))));
  Alcotest.(check bool) "greedy empty" true
    (Cover.Clause.IntSet.is_empty (Cover.Solver.(cover_exn (greedy p))));
  Alcotest.(check (float 0.0)) "zero cost" 0.0
    (Cover.Solver.cost_of Cover.Clause.IntSet.empty)

let test_mapping_empty () =
  Alcotest.(check int) "no terms" 0 (List.length (Cover.Mapping.minimal_opamp_sets []))

(* --- spice --- *)

let test_spice_directives_and_case () =
  let n =
    match
      Spice.Parser.parse_string
        "t\n.TITLE whatever\nr1 a 0 1K\nl1 a b 1M\n.AC DEC 10 1 1e6\nC1 b 0 1U\n.END\n"
    with
    | Ok n -> n
    | Error e -> Alcotest.fail (Spice.Parser.error_to_string e)
  in
  Alcotest.(check int) "three elements" 3 (Netlist.size n);
  (match Netlist.find_exn n "l1" with
  | Element.Inductor { value; _ } ->
      Alcotest.(check (float 0.0)) "1M is milli-henry" 1e-3 value
  | _ -> Alcotest.fail "l1 wrong kind")

(* --- multiconfig --- *)

let test_sequence_trivial () =
  Alcotest.(check (list int)) "empty" [] (Multiconfig.Sequence.order []);
  Alcotest.(check (list int)) "singleton" [ 5 ] (Multiconfig.Sequence.order [ 5 ]);
  Alcotest.(check int) "cost from C0" 2 (Multiconfig.Sequence.switch_cost [ 3 ])

let test_configuration_compare () =
  let a = Multiconfig.Configuration.make ~n_opamps:3 1 in
  let b = Multiconfig.Configuration.make ~n_opamps:3 2 in
  Alcotest.(check bool) "equal self" true (Multiconfig.Configuration.equal a a);
  Alcotest.(check bool) "ordered" true (Multiconfig.Configuration.compare a b < 0);
  Alcotest.(check string) "pp" "C5(101)"
    (Format.asprintf "%a" Multiconfig.Configuration.pp
       (Multiconfig.Configuration.make ~n_opamps:3 5))

(* --- report --- *)

let test_json_member_non_object () =
  Alcotest.(check bool) "list has no members" true
    (Report.Json.member "x" (Report.Json.List []) = None)

let suite =
  [
    Alcotest.test_case "quantity suffixes" `Quick test_quantity_suffix_priority;
    Alcotest.test_case "interval hull" `Quick test_interval_hull_overlaps;
    Alcotest.test_case "cmat 1x1" `Quick test_cmat_one_by_one;
    Alcotest.test_case "poly corners" `Quick test_poly_corner_cases;
    Alcotest.test_case "element with_value" `Quick test_element_with_value_errors;
    Alcotest.test_case "netlist pp" `Quick test_netlist_pp_contains_title;
    Alcotest.test_case "single-pole value" `Quick test_single_pole_value_is_gain;
    Alcotest.test_case "magnitude db" `Quick test_magnitude_db;
    Alcotest.test_case "dc nominal sources" `Quick test_dc_with_nominal_sources;
    Alcotest.test_case "symbolic ground output" `Quick test_symbolic_output_ground_rejected;
    Alcotest.test_case "transient isource" `Quick test_transient_isource_waveform;
    Alcotest.test_case "solver empty" `Quick test_solver_empty_problem;
    Alcotest.test_case "mapping empty" `Quick test_mapping_empty;
    Alcotest.test_case "spice directives/case" `Quick test_spice_directives_and_case;
    Alcotest.test_case "sequence trivial" `Quick test_sequence_trivial;
    Alcotest.test_case "configuration compare" `Quick test_configuration_compare;
    Alcotest.test_case "json member" `Quick test_json_member_non_object;
  ]
