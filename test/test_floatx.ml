open Util

let check_float = Alcotest.(check (float 1e-12))

let test_approx_eq () =
  Alcotest.(check bool) "equal" true (Floatx.approx_eq 1.0 1.0);
  Alcotest.(check bool) "close rel" true (Floatx.approx_eq 1.0 (1.0 +. 1e-12));
  Alcotest.(check bool) "far" false (Floatx.approx_eq 1.0 1.1);
  Alcotest.(check bool) "tiny abs" true (Floatx.approx_eq 0.0 1e-15)

let test_clamp () =
  check_float "below" 0.0 (Floatx.clamp ~lo:0.0 ~hi:1.0 (-3.0));
  check_float "above" 1.0 (Floatx.clamp ~lo:0.0 ~hi:1.0 3.0);
  check_float "inside" 0.5 (Floatx.clamp ~lo:0.0 ~hi:1.0 0.5)

let test_linspace () =
  let a = Floatx.linspace 0.0 1.0 5 in
  Alcotest.(check int) "length" 5 (Array.length a);
  check_float "first" 0.0 a.(0);
  check_float "last" 1.0 a.(4);
  check_float "middle" 0.5 a.(2)

let test_logspace () =
  let a = Floatx.logspace 1.0 1000.0 4 in
  Alcotest.(check int) "length" 4 (Array.length a);
  check_float "first" 1.0 a.(0);
  Alcotest.(check (float 1e-9)) "second" 10.0 a.(1);
  Alcotest.(check (float 1e-9)) "last" 1000.0 a.(3)

let test_logspace_invalid () =
  Alcotest.check_raises "non-positive" (Invalid_argument "Floatx.logspace: bounds must be positive")
    (fun () -> ignore (Floatx.logspace 0.0 1.0 3))

let test_mean () =
  check_float "mean" 2.0 (Floatx.mean [| 1.0; 2.0; 3.0 |]);
  Alcotest.check_raises "empty" (Invalid_argument "Floatx.mean: empty array") (fun () ->
      ignore (Floatx.mean [||]))

let test_fold_range () =
  Alcotest.(check int) "sum" 10 (Floatx.fold_range 5 ~init:0 ~f:( + ));
  Alcotest.(check int) "empty" 7 (Floatx.fold_range 0 ~init:7 ~f:( + ))

let qcheck_linspace_monotone =
  QCheck.Test.make ~name:"linspace is monotone increasing" ~count:100
    QCheck.(pair (float_range (-1e6) 1e6) (int_range 2 50))
    (fun (a, n) ->
      let b = a +. 1.0 in
      let pts = Floatx.linspace a b n in
      let ok = ref true in
      for i = 0 to n - 2 do
        if pts.(i) >= pts.(i + 1) then ok := false
      done;
      !ok)

let qcheck_logspace_bounds =
  QCheck.Test.make ~name:"logspace endpoints are exact-ish" ~count:100
    QCheck.(pair (float_range 1e-6 1e6) (int_range 2 50))
    (fun (a, n) ->
      let b = a *. 100.0 in
      let pts = Floatx.logspace a b n in
      Floatx.approx_eq ~rel:1e-9 pts.(0) a && Floatx.approx_eq ~rel:1e-9 pts.(n - 1) b)

let suite =
  [
    Alcotest.test_case "approx_eq" `Quick test_approx_eq;
    Alcotest.test_case "clamp" `Quick test_clamp;
    Alcotest.test_case "linspace" `Quick test_linspace;
    Alcotest.test_case "logspace" `Quick test_logspace;
    Alcotest.test_case "logspace invalid" `Quick test_logspace_invalid;
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "fold_range" `Quick test_fold_range;
    QCheck_alcotest.to_alcotest qcheck_linspace_monotone;
    QCheck_alcotest.to_alcotest qcheck_logspace_bounds;
  ]
