module P = Mcdft_core.Pipeline
module D = Diagnosis.Dictionary
module T = Diagnosis.Trajectory
module CGen = Conformance.Gen
module Oracle = Conformance.Oracle

let pipeline = lazy (P.run ~points_per_decade:12 (Circuits.Tow_thomas.make ()))
let dict = lazy (D.build (Lazy.force pipeline))
let traj = lazy (T.of_pipeline (Lazy.force pipeline))

(* ---- binary pass/fail dictionary ---- *)

let test_dictionary_shape () =
  let d = Lazy.force dict in
  Alcotest.(check int) "7 configurations" 7 (List.length d.D.configs);
  Alcotest.(check int) "8 faults" 8 (Array.length d.D.faults);
  let expected_len = 7 * Array.length d.D.freqs_hz in
  Array.iter
    (fun s -> Alcotest.(check int) "signature length" expected_len (Array.length s))
    d.D.signatures

let test_groups_partition_faults () =
  let d = Lazy.force dict in
  let groups = D.ambiguity_groups d in
  let total = List.fold_left (fun acc g -> acc + List.length g) 0 groups in
  Alcotest.(check int) "partition" (Array.length d.D.faults) total;
  List.iter
    (fun g -> Alcotest.(check bool) "non-empty group" true (g <> []))
    groups

let test_multiconfig_improves_resolution () =
  let t = Lazy.force pipeline in
  let functional_only = D.build ~configs:[ 0 ] t in
  let all_configs = Lazy.force dict in
  Alcotest.(check bool)
    (Printf.sprintf "resolution %.2f (C0) <= %.2f (all)"
       (D.resolution functional_only) (D.resolution all_configs))
    true
    (D.resolution functional_only <= D.resolution all_configs);
  Alcotest.(check bool) "multi-config resolution is high" true
    (D.resolution all_configs >= 0.7)

let test_diagnose_identifies_injected_fault () =
  (* closed loop: simulate each fault's signature and ask the
     dictionary; the true fault must rank at distance 0 *)
  let t = Lazy.force pipeline in
  let d = Lazy.force dict in
  Array.iter
    (fun fault ->
      let observed = D.signature_of t d fault in
      match D.diagnose d observed with
      | [] -> Alcotest.fail "empty diagnosis"
      | ranked ->
          let exact = List.filter (fun (_, dist) -> dist = 0) ranked in
          Alcotest.(check bool)
            (fault.Fault.id ^ " among exact matches")
            true
            (List.exists (fun (f, _) -> f.Fault.id = fault.Fault.id) exact))
    d.D.faults

let test_diagnose_rejects_bad_length () =
  let d = Lazy.force dict in
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Diagnosis.Dictionary.diagnose: signature length mismatch")
    (fun () -> ignore (D.diagnose d [| true |]))

let test_resolution_bounds () =
  let d = Lazy.force dict in
  let r = D.resolution d in
  Alcotest.(check bool) "within [0,1]" true (r >= 0.0 && r <= 1.0)

(* ---- analog trajectory classifier ---- *)

let test_trajectory_shape () =
  let t = Lazy.force traj in
  Alcotest.(check int) "8 faults" 8 (List.length (T.faults t));
  Alcotest.(check int) "7 views" 7 (List.length (T.labels t));
  Alcotest.(check int) "signature length" (T.n_measurements t)
    (Array.length (T.signature t 0))

let test_trajectory_round_trip () =
  (* the trajectory a fault's own simulator produces must classify back
     to that fault (distance exactly 0) or to an ambiguity set
     containing it *)
  let t = Lazy.force traj in
  List.iter
    (fun (f : Fault.t) ->
      let v = T.classify t (T.simulate t f) in
      let hit =
        v.T.fault.Fault.id = f.Fault.id
        || List.exists (fun g -> g.Fault.id = f.Fault.id) v.T.ambiguous
      in
      Alcotest.(check bool) (f.Fault.id ^ " located") true hit;
      Alcotest.(check bool) "confidence within [0,1]" true
        (v.T.confidence >= 0.0 && v.T.confidence <= 1.0))
    (T.faults t)

let test_magnitude_round_trip () =
  (* reconstruct the tester-side |H| log for a fault from its deviation
     signature and the nominal magnitudes; converting back must recover
     the signature and classify to the fault *)
  let t = Lazy.force traj in
  let nom = T.nominal_magnitudes t in
  let sig0 = T.signature t 0 in
  let mags = Array.mapi (fun i s -> nom.(i) +. (s *. Float.max nom.(i) 1e-12)) sig0 in
  let recovered = T.deviations_of_magnitudes t mags in
  Array.iteri
    (fun i s ->
      Alcotest.(check (float 1e-9)) (Printf.sprintf "deviation %d" i) s recovered.(i))
    sig0;
  let v = T.classify t recovered in
  let f0 = List.hd (T.faults t) in
  Alcotest.(check bool) "classified to the reconstructed fault" true
    (v.T.fault.Fault.id = f0.Fault.id
    || List.exists (fun g -> g.Fault.id = f0.Fault.id) v.T.ambiguous)

let test_ambiguity_sets_partition () =
  let t = Lazy.force traj in
  let sets = T.ambiguity_sets t in
  let total = List.fold_left (fun acc g -> acc + List.length g) 0 sets in
  Alcotest.(check int) "partition" (List.length (T.faults t)) total;
  let r = T.resolution t in
  Alcotest.(check bool) "resolution within [0,1]" true (r >= 0.0 && r <= 1.0);
  (* an infinite tolerance collapses everything into one set *)
  Alcotest.(check int) "one set at infinite tolerance" 1
    (List.length (T.ambiguity_sets ~tolerance:infinity t))

let test_config_subset_no_better () =
  (* dropping measurements can only lose diagnostic power *)
  let p = Lazy.force pipeline in
  let t_all = Lazy.force traj in
  let t_sub = T.of_pipeline ~configs:[ 0 ] p in
  Alcotest.(check bool)
    (Printf.sprintf "resolution %.2f (C0) <= %.2f (all)" (T.resolution t_sub)
       (T.resolution t_all))
    true
    (T.resolution t_sub <= T.resolution t_all)

let test_trajectory_rejects_bad_input () =
  let t = Lazy.force traj in
  (match T.classify t [| 0.0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "classify accepted a short observation");
  (match T.deviations_of_magnitudes t [| 1.0; 2.0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "deviations_of_magnitudes accepted a short log");
  match T.of_pipeline ~configs:[ 99 ] (Lazy.force pipeline) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "of_pipeline accepted an out-of-range config"

let test_unknown_element_simulate () =
  let t = Lazy.force traj in
  match T.simulate t (Fault.deviation ~element:"RZZZ" 1.2) with
  | exception Fault.Unknown_element "RZZZ" -> ()
  | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "simulate accepted an unknown element"

(* ---- diagnosis round-trip over the conformance generators ---- *)

let qcheck_gen_family_round_trip =
  let diagnosis_oracle =
    match Oracle.find "diagnosis" with
    | Some o -> o
    | None -> failwith "diagnosis oracle not registered"
  in
  QCheck.Test.make ~count:12 ~name:"diagnosis round-trip over Gen families"
    QCheck.(pair (oneofl CGen.families) (int_bound 1000))
    (fun (family, seed) ->
      let s = CGen.generate family ~seed in
      match Oracle.run diagnosis_oracle s with
      | Oracle.Pass | Oracle.Skip _ -> true
      | Oracle.Fail m ->
          QCheck.Test.fail_reportf "%s seed %d: %s" (CGen.family_name family) seed m)

let suite =
  [
    Alcotest.test_case "dictionary shape" `Quick test_dictionary_shape;
    Alcotest.test_case "groups partition" `Quick test_groups_partition_faults;
    Alcotest.test_case "multiconfig improves resolution" `Quick test_multiconfig_improves_resolution;
    Alcotest.test_case "closed-loop diagnosis" `Quick test_diagnose_identifies_injected_fault;
    Alcotest.test_case "bad length rejected" `Quick test_diagnose_rejects_bad_length;
    Alcotest.test_case "resolution bounds" `Quick test_resolution_bounds;
    Alcotest.test_case "trajectory shape" `Quick test_trajectory_shape;
    Alcotest.test_case "trajectory round trip" `Quick test_trajectory_round_trip;
    Alcotest.test_case "magnitude round trip" `Quick test_magnitude_round_trip;
    Alcotest.test_case "ambiguity sets partition" `Quick test_ambiguity_sets_partition;
    Alcotest.test_case "config subset no better" `Quick test_config_subset_no_better;
    Alcotest.test_case "bad trajectory input rejected" `Quick
      test_trajectory_rejects_bad_input;
    Alcotest.test_case "unknown element on simulate" `Quick
      test_unknown_element_simulate;
    QCheck_alcotest.to_alcotest qcheck_gen_family_round_trip;
  ]
