module P = Mcdft_core.Pipeline
module D = Mcdft_core.Diagnosis

let pipeline = lazy (P.run ~points_per_decade:12 (Circuits.Tow_thomas.make ()))
let dict = lazy (D.build (Lazy.force pipeline))

let test_dictionary_shape () =
  let d = Lazy.force dict in
  Alcotest.(check int) "7 configurations" 7 (List.length d.D.configs);
  Alcotest.(check int) "8 faults" 8 (Array.length d.D.faults);
  let expected_len = 7 * Array.length d.D.freqs_hz in
  Array.iter
    (fun s -> Alcotest.(check int) "signature length" expected_len (Array.length s))
    d.D.signatures

let test_groups_partition_faults () =
  let d = Lazy.force dict in
  let groups = D.ambiguity_groups d in
  let total = List.fold_left (fun acc g -> acc + List.length g) 0 groups in
  Alcotest.(check int) "partition" (Array.length d.D.faults) total;
  List.iter
    (fun g -> Alcotest.(check bool) "non-empty group" true (g <> []))
    groups

let test_multiconfig_improves_resolution () =
  let t = Lazy.force pipeline in
  let functional_only = D.build ~configs:[ 0 ] t in
  let all_configs = Lazy.force dict in
  Alcotest.(check bool)
    (Printf.sprintf "resolution %.2f (C0) <= %.2f (all)"
       (D.resolution functional_only) (D.resolution all_configs))
    true
    (D.resolution functional_only <= D.resolution all_configs);
  Alcotest.(check bool) "multi-config resolution is high" true
    (D.resolution all_configs >= 0.7)

let test_diagnose_identifies_injected_fault () =
  (* closed loop: simulate each fault's signature and ask the
     dictionary; the true fault must rank at distance 0 *)
  let t = Lazy.force pipeline in
  let d = Lazy.force dict in
  Array.iter
    (fun fault ->
      let observed = D.signature_of t d fault in
      match D.diagnose d observed with
      | [] -> Alcotest.fail "empty diagnosis"
      | ranked ->
          let exact = List.filter (fun (_, dist) -> dist = 0) ranked in
          Alcotest.(check bool)
            (fault.Fault.id ^ " among exact matches")
            true
            (List.exists (fun (f, _) -> f.Fault.id = fault.Fault.id) exact))
    d.D.faults

let test_diagnose_rejects_bad_length () =
  let d = Lazy.force dict in
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Diagnosis.diagnose: signature length mismatch") (fun () ->
      ignore (D.diagnose d [| true |]))

let test_resolution_bounds () =
  let d = Lazy.force dict in
  let r = D.resolution d in
  Alcotest.(check bool) "within [0,1]" true (r >= 0.0 && r <= 1.0)

let suite =
  [
    Alcotest.test_case "dictionary shape" `Quick test_dictionary_shape;
    Alcotest.test_case "groups partition" `Quick test_groups_partition_faults;
    Alcotest.test_case "multiconfig improves resolution" `Quick test_multiconfig_improves_resolution;
    Alcotest.test_case "closed-loop diagnosis" `Quick test_diagnose_identifies_injected_fault;
    Alcotest.test_case "bad length rejected" `Quick test_diagnose_rejects_bad_length;
    Alcotest.test_case "resolution bounds" `Quick test_resolution_bounds;
  ]
