(* Properties of the coverage-directed refinement (Mcdft_core.Adaptive)
   and the tolerance-space coverage estimator (Montecarlo.coverage_run).

   The qcheck properties drive Refine.row against synthetic truth rows
   whose margins obey the slope bound the refinement assumes — a
   random Lipschitz walk in the log deviation-to-threshold ratio. On
   such rows the skip rule is provably sound, so the refined row must
   reproduce the truth byte for byte, an isolated flip can never be
   inferred from its neighbours and must appear in the solved set, and
   a starved budget must degrade to the exhaustive sweep rather than
   ever guess. The end-to-end and CLI cases then pin the same
   invariant on the real engine. *)

module A = Mcdft_core.Adaptive
module P = Mcdft_core.Pipeline

(* ---- synthetic truth rows with slope-bounded margins ---- *)

type row = {
  nf : int;
  stride : int;
  step_dec : float;
  guard : float;
  margins : float array;
}

let gen_row seed =
  let rng = Random.State.make [| seed |] in
  let nf = 2 + Random.State.int rng 120 in
  let stride = 1 + Random.State.int rng 8 in
  let step_dec = 0.01 +. Random.State.float rng 0.2 in
  let guard = 4.0 +. Random.State.float rng 12.0 in
  let margins = Array.make nf 0.0 in
  margins.(0) <- Random.State.float rng 6.0 -. 3.0;
  for i = 1 to nf - 1 do
    (* increments strictly inside the slope bound so float rounding in
       the walk cannot graze the skip test's strict inequality *)
    let slope = 0.999 *. guard *. step_dec in
    margins.(i) <- margins.(i - 1) +. (Random.State.float rng (2.0 *. slope)) -. slope
  done;
  (* keep every margin away from zero: the byte is its sign *)
  Array.iteri
    (fun i m -> if Float.abs m < 1e-9 then margins.(i) <- 1e-6)
    margins;
  { nf; stride; step_dec; guard; margins }

let byte_of r i = if r.margins.(i) > 0.0 then 'd' else 'u'

let refine ?budget ?(certified = fun _ -> '?') r =
  A.Refine.row ~nf:r.nf ~stride:r.stride ~step_dec:r.step_dec ~guard:r.guard
    ~steer_range:(fun _ _ -> 0.0)
    ~budget
    ~certified
    ~solve:(fun i -> (byte_of r i, r.margins.(i)))

let row_matches r (o : A.Refine.outcome) =
  let ok = ref true in
  for i = 0 to r.nf - 1 do
    if Bytes.get o.A.Refine.verdicts i <> byte_of r i then ok := false
  done;
  !ok

let qcheck_refined_row_exact =
  QCheck.Test.make
    ~name:"Refine.row reproduces Lipschitz truth rows; isolated flips are solved"
    ~count:500
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let r = gen_row seed in
      let o = refine r in
      if not (row_matches r o) then false
      else begin
        (* a point disagreeing with both neighbours cannot be filled
           from any interval endpoints — it must have been solved *)
        let solved_ok = ref true in
        for i = 1 to r.nf - 2 do
          if
            byte_of r i <> byte_of r (i - 1)
            && byte_of r i <> byte_of r (i + 1)
            && not (List.mem i o.A.Refine.solved)
          then solved_ok := false
        done;
        !solved_ok && not o.A.Refine.degraded
      end)

let qcheck_budget_degrades_never_guesses =
  QCheck.Test.make
    ~name:"a starved solve budget degrades to exhaustive, never a wrong byte"
    ~count:500
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let r = gen_row seed in
      let budget = 1 + (seed mod 6) in
      let o = refine ~budget r in
      row_matches r o
      && (o.A.Refine.degraded || List.length o.A.Refine.solved <= budget)
      && List.sort_uniq Int.compare o.A.Refine.solved
         = List.sort Int.compare o.A.Refine.solved)

let qcheck_certified_anchors_never_solved =
  QCheck.Test.make
    ~name:"certified anchors seed the refinement and are never re-solved"
    ~count:500
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let r = gen_row seed in
      let rng = Random.State.make [| seed + 7 |] in
      let cert = Array.init r.nf (fun _ -> Random.State.int rng 3 = 0) in
      let certified i = if cert.(i) then byte_of r i else '?' in
      let o = refine ~certified r in
      row_matches r o
      && List.for_all (fun i -> not cert.(i)) o.A.Refine.solved)

(* ---- end-to-end: adaptive pipeline = exhaustive pipeline ---- *)

let run_pipeline ?solve_budget ~adaptive ~criterion () =
  let b = Circuits.Tow_thomas.make () in
  P.run ~criterion ~points_per_decade:6 ~jobs:1 ~adaptive ?solve_budget b

let check_identical ~what criterion ?solve_budget () =
  let exhaustive = run_pipeline ~adaptive:false ~criterion () in
  let t = run_pipeline ~adaptive:true ~criterion ?solve_budget () in
  let me = exhaustive.P.matrix and ma = t.P.matrix in
  Alcotest.(check bool)
    (what ^ ": detect bitwise identical")
    true
    (ma.Testability.Matrix.detect = me.Testability.Matrix.detect);
  Alcotest.(check bool)
    (what ^ ": omega bitwise identical")
    true
    (ma.Testability.Matrix.omega = me.Testability.Matrix.omega);
  match t.P.adaptive with
  | None -> Alcotest.fail (what ^ ": adaptive run carries no stats")
  | Some s ->
      Alcotest.(check int)
        (what ^ ": points = certified + solved + skipped")
        s.A.points
        (s.A.certified + s.A.solved + s.A.skipped);
      s

let test_pipeline_identity_envelope () =
  let s = check_identical ~what:"envelope" P.default_criterion () in
  Alcotest.(check bool) "some points skipped" true (s.A.skipped > 0)

let test_pipeline_identity_fixed () =
  let s =
    check_identical ~what:"fixed" (Testability.Detect.Fixed_tolerance 0.10) ()
  in
  Alcotest.(check bool) "some points skipped" true (s.A.skipped > 0)

let test_pipeline_identity_starved_budget () =
  (* a 2-solve budget forces essentially every row to degrade; the
     matrices must still be the exhaustive ones *)
  let s =
    check_identical ~what:"budget=2" P.default_criterion ~solve_budget:2 ()
  in
  Alcotest.(check bool) "rows degraded" true (s.A.budget_exhausted > 0)

(* ---- CLI surface ---- *)

let mcdft_exe = "../bin/mcdft.exe"

let run_capture cmd file =
  let code =
    Sys.command (Printf.sprintf "%s %s > %s 2>&1" mcdft_exe cmd file)
  in
  (code, In_channel.with_open_text file In_channel.input_all)

let non_summary_lines out =
  List.filter
    (fun l -> not (String.length l >= 8 && String.sub l 0 8 = "adaptive"))
    (String.split_on_char '\n' out)

(* table-driven: the numeric tables printed with and without
   --adaptive must be byte-identical on every criterion family *)
let cli_criteria =
  [
    ("envelope", "envelope:0.04:0.02");
    ("fixed", "fixed:0.1");
    ("phase", "phase:0.1");
  ]

let test_cli_adaptive_identity () =
  List.iter
    (fun (what, crit) ->
      let args =
        Printf.sprintf "matrix tow-thomas --points-per-decade 4 --criterion %s"
          crit
      in
      let c1, on = run_capture (args ^ " --adaptive") "tmp_adaptive_on.txt" in
      let c2, off = run_capture (args ^ " --no-adaptive") "tmp_adaptive_off.txt" in
      Alcotest.(check int) (what ^ ": --adaptive exits 0") 0 c1;
      Alcotest.(check int) (what ^ ": --no-adaptive exits 0") 0 c2;
      Alcotest.(check (list string))
        (what ^ ": tables identical modulo the summary line")
        (non_summary_lines off) (non_summary_lines on);
      Sys.remove "tmp_adaptive_on.txt";
      Sys.remove "tmp_adaptive_off.txt")
    cli_criteria

let test_cli_summary_line_format () =
  let _, out =
    run_capture "matrix tow-thomas --points-per-decade 4" "tmp_adaptive_fmt.txt"
  in
  Sys.remove "tmp_adaptive_fmt.txt";
  let line =
    List.find_opt
      (fun l -> String.length l >= 8 && String.sub l 0 8 = "adaptive")
      (String.split_on_char '\n' out)
  in
  match line with
  | None -> Alcotest.fail "no adaptive summary line in matrix output"
  | Some l -> (
      match
        Scanf.sscanf l
          "adaptive refinement: solved %d of %d points (%fx fewer solves, %d \
           skipped, %d bisections"
          (fun solved points ratio skipped bisections ->
            (solved, points, ratio, skipped, bisections))
      with
      | exception Scanf.Scan_failure _ ->
          Alcotest.failf "summary line does not parse: %s" l
      | solved, points, ratio, skipped, _ ->
          Alcotest.(check bool) "solved <= points" true (solved <= points);
          Alcotest.(check int) "skipped = points - solved" (points - solved)
            skipped;
          Alcotest.(check bool) "ratio consistent" true
            (Float.abs (ratio -. (float_of_int points /. float_of_int solved))
             < 0.06))

(* ---- tolerance-space coverage sampling ---- *)

let coverage ?(samples = 64) ~jobs () =
  let b = Circuits.Tow_thomas.make () in
  let grid =
    Testability.Grid.around ~points_per_decade:4
      ~center_hz:b.Circuits.Benchmark.center_hz ()
  in
  let probe =
    {
      Testability.Detect.source = b.Circuits.Benchmark.source;
      output = b.Circuits.Benchmark.output;
    }
  in
  Testability.Montecarlo.coverage_run ~samples ~jobs ~component_tol:0.04
    ~epsilon:0.05 probe grid b.Circuits.Benchmark.netlist

let test_coverage_run_sound () =
  let c = coverage ~jobs:1 () in
  let module M = Testability.Montecarlo in
  Alcotest.(check int) "every draw lands in a stratum" c.M.samples
    (Array.fold_left ( + ) 0 c.M.stratum_samples);
  Array.iter
    (fun a ->
      Alcotest.(check bool) "acceptance is a probability" true
        (a >= 0.0 && a <= 1.0))
    c.M.stratum_accept;
  Alcotest.(check bool) "boundary radius clamped" true
    (c.M.boundary_radius >= 1.0 /. float_of_int c.M.strata
    && c.M.boundary_radius <= 1.0);
  Alcotest.(check bool) "averages are probabilities" true
    (c.M.worst_case >= 0.0 && c.M.worst_case <= 1.0
    && c.M.average_case >= 0.0 && c.M.average_case <= 1.0)

let test_coverage_run_jobs_invariant () =
  Alcotest.(check bool) "coverage stats independent of the worker count" true
    (coverage ~jobs:1 () = coverage ~jobs:4 ())

let test_coverage_run_validation () =
  let check_invalid what f =
    match f () with
    | _ -> Alcotest.fail (what ^ ": expected Invalid_argument")
    | exception Invalid_argument _ -> ()
  in
  let b = Circuits.Tow_thomas.make () in
  let grid =
    Testability.Grid.around ~points_per_decade:2
      ~center_hz:b.Circuits.Benchmark.center_hz ()
  in
  let probe =
    {
      Testability.Detect.source = b.Circuits.Benchmark.source;
      output = b.Circuits.Benchmark.output;
    }
  in
  let run ?samples ?strata ~epsilon () =
    Testability.Montecarlo.coverage_run ?samples ?strata ~component_tol:0.04
      ~epsilon probe grid b.Circuits.Benchmark.netlist
  in
  check_invalid "epsilon 0" (fun () -> run ~epsilon:0.0 ());
  check_invalid "strata 0" (fun () -> run ~strata:0 ~epsilon:0.05 ());
  check_invalid "samples < 2*strata" (fun () ->
      run ~samples:10 ~strata:8 ~epsilon:0.05 ())

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_refined_row_exact;
    QCheck_alcotest.to_alcotest qcheck_budget_degrades_never_guesses;
    QCheck_alcotest.to_alcotest qcheck_certified_anchors_never_solved;
    Alcotest.test_case "adaptive pipeline = exhaustive (envelope)" `Quick
      test_pipeline_identity_envelope;
    Alcotest.test_case "adaptive pipeline = exhaustive (fixed)" `Quick
      test_pipeline_identity_fixed;
    Alcotest.test_case "starved budget degrades, matrices intact" `Quick
      test_pipeline_identity_starved_budget;
    Alcotest.test_case "CLI --adaptive leaves every table byte-identical" `Slow
      test_cli_adaptive_identity;
    Alcotest.test_case "CLI adaptive summary line parses and adds up" `Quick
      test_cli_summary_line_format;
    Alcotest.test_case "coverage_run accounting is sound" `Quick
      test_coverage_run_sound;
    Alcotest.test_case "coverage_run is jobs-invariant" `Quick
      test_coverage_run_jobs_invariant;
    Alcotest.test_case "coverage_run validates its arguments" `Quick
      test_coverage_run_validation;
  ]
