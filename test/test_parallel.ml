(* The scheduler's failure contract: a raising body must re-raise in
   the caller — after every helper domain has been joined — and leave
   the scheduler reusable. The repeated-failure loop would exhaust the
   runtime's domain limit if a raise ever skipped the join loop and
   leaked helpers. *)

let test_sequential_raise () =
  Alcotest.check_raises "jobs:1 propagates" (Failure "boom") (fun () ->
      Util.Parallel.for_ ~jobs:1 8 (fun i -> if i = 3 then failwith "boom"))

let test_raise_under_jobs4 () =
  for _trial = 1 to 50 do
    (match Util.Parallel.for_ ~jobs:4 64 (fun i -> if i = 37 then failwith "boom") with
    | () -> Alcotest.fail "expected the worker's exception to re-raise"
    | exception Failure msg -> Alcotest.(check string) "exception payload" "boom" msg)
  done

let test_all_indices_raise () =
  (* every chunk raises on its first index; whatever the interleaving,
     exactly one exception must surface and it must be a Failure *)
  match Util.Parallel.for_ ~jobs:4 64 (fun i -> failwith (string_of_int i)) with
  | () -> Alcotest.fail "expected a Failure"
  | exception Failure _ -> ()

let test_usable_after_failures () =
  (match Util.Parallel.for_ ~jobs:4 16 (fun _ -> failwith "x") with
  | () -> Alcotest.fail "expected a Failure"
  | exception Failure _ -> ());
  let r = Util.Parallel.map ~jobs:4 100 (fun i -> i * i) in
  Alcotest.(check int) "slot 0" 0 r.(0);
  Alcotest.(check int) "slot 99" (99 * 99) r.(99)

let test_map_complete () =
  let r = Util.Parallel.map ~jobs:4 1000 (fun i -> i + 1) in
  let sum = Array.fold_left ( + ) 0 r in
  Alcotest.(check int) "sum 1..1000" (1000 * 1001 / 2) sum

(* The sequential cutoff: a tiny declared workload must run inline on
   the calling domain even under jobs:4 — observable as strictly
   ascending index order, which the work-stealing schedule does not
   guarantee (and as zero spawned domains, which we cannot observe
   directly). *)
let test_est_ns_cutoff_runs_inline () =
  let seen = ref [] in
  Util.Parallel.for_ ~jobs:4 ~est_ns:1.0 64 (fun i -> seen := i :: !seen);
  Alcotest.(check (list int))
    "tiny est_ns runs in order on the caller"
    (List.init 64 Fun.id) (List.rev !seen)

let test_est_ns_above_cutoff_completes () =
  (* a large estimate keeps the parallel path; coverage must be exact *)
  let hits = Array.make 200 0 in
  Util.Parallel.for_ ~jobs:4 ~est_ns:1e9 200 (fun i ->
      hits.(i) <- hits.(i) + 1);
  Array.iteri
    (fun i n -> if n <> 1 then Alcotest.failf "index %d ran %d times" i n)
    hits

let suite =
  [
    Alcotest.test_case "sequential raise propagates" `Quick test_sequential_raise;
    Alcotest.test_case "raise under jobs:4 re-raises after join" `Quick
      test_raise_under_jobs4;
    Alcotest.test_case "all indices raising surfaces one Failure" `Quick
      test_all_indices_raise;
    Alcotest.test_case "scheduler usable after failures" `Quick
      test_usable_after_failures;
    Alcotest.test_case "map covers every slot" `Quick test_map_complete;
    Alcotest.test_case "tiny est_ns takes the sequential cutoff" `Quick
      test_est_ns_cutoff_runs_inline;
    Alcotest.test_case "large est_ns keeps exact coverage" `Quick
      test_est_ns_above_cutoff_completes;
  ]
