open Util

let check_parse expected input () =
  match Quantity.parse input with
  | Ok v -> Alcotest.(check (float 1e-9)) input expected v
  | Error msg -> Alcotest.fail (Printf.sprintf "parse %S failed: %s" input msg)

let check_parse_fails input () =
  match Quantity.parse input with
  | Ok v -> Alcotest.fail (Printf.sprintf "parse %S unexpectedly gave %g" input v)
  | Error _ -> ()

let test_roundtrip () =
  List.iter
    (fun v ->
      let s = Quantity.to_string v in
      match Quantity.parse s with
      | Ok v' ->
          if not (Floatx.approx_eq ~rel:1e-6 v v') then
            Alcotest.fail (Printf.sprintf "roundtrip %g -> %s -> %g" v s v')
      | Error msg -> Alcotest.fail (Printf.sprintf "roundtrip %g -> %s: %s" v s msg))
    [ 4700.0; 1e-9; 2.2e-6; 1e6; 0.0; 3.3; 1e12; 15.9e-9 ]

let qcheck_roundtrip =
  QCheck.Test.make ~name:"to_string/parse roundtrip" ~count:300
    QCheck.(float_range 1e-14 1e13)
    (fun v ->
      match Quantity.parse (Quantity.to_string v) with
      | Ok v' -> Floatx.approx_eq ~rel:1e-5 v v'
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "10k" `Quick (check_parse 1e4 "10k");
    Alcotest.test_case "2.2u" `Quick (check_parse 2.2e-6 "2.2u");
    Alcotest.test_case "1meg" `Quick (check_parse 1e6 "1meg");
    Alcotest.test_case "1MEG" `Quick (check_parse 1e6 "1MEG");
    Alcotest.test_case "100n" `Quick (check_parse 1e-7 "100n");
    Alcotest.test_case "4.7p" `Quick (check_parse 4.7e-12 "4.7p");
    Alcotest.test_case "1e3" `Quick (check_parse 1e3 "1e3");
    Alcotest.test_case "1.5e-6" `Quick (check_parse 1.5e-6 "1.5e-6");
    Alcotest.test_case "unit tail 10kOhm" `Quick (check_parse 1e4 "10kOhm");
    Alcotest.test_case "bare unit 5ohm" `Quick (check_parse 5.0 "5ohm");
    Alcotest.test_case "negative -3.3" `Quick (check_parse (-3.3) "-3.3");
    Alcotest.test_case "millifarad 5m" `Quick (check_parse 5e-3 "5m");
    Alcotest.test_case "empty fails" `Quick (check_parse_fails "");
    Alcotest.test_case "letters fail" `Quick (check_parse_fails "abc");
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
  ]
