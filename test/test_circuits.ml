module Netlist = Circuit.Netlist
module Validate = Circuit.Validate

let magnitude (b : Circuits.Benchmark.t) f_hz =
  Complex.norm
    (Mna.Ac.transfer ~source:b.Circuits.Benchmark.source ~output:b.Circuits.Benchmark.output
       b.Circuits.Benchmark.netlist ~omega:(2.0 *. Float.pi *. f_hz))

let test_all_validate () =
  List.iter
    (fun (b : Circuits.Benchmark.t) ->
      match Validate.check b.Circuits.Benchmark.netlist with
      | Ok () -> ()
      | Error issues ->
          Alcotest.fail
            (Printf.sprintf "%s: %s" b.Circuits.Benchmark.name
               (String.concat "; " (List.map Validate.issue_to_string issues))))
    (Circuits.Registry.all ())

let test_all_solvable () =
  List.iter
    (fun (b : Circuits.Benchmark.t) ->
      let m = magnitude b b.Circuits.Benchmark.center_hz in
      if not (Float.is_finite m) then
        Alcotest.fail (Printf.sprintf "%s: non-finite response" b.Circuits.Benchmark.name))
    (Circuits.Registry.all ())

let test_registry_lookup () =
  Alcotest.(check bool) "tow-thomas present" true (Circuits.Registry.find "tow-thomas" <> None);
  Alcotest.(check bool) "unknown absent" true (Circuits.Registry.find "nope" = None);
  let names = Circuits.Registry.names () in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_tow_thomas_response () =
  let b = Circuits.Tow_thomas.make () in
  (* unity DC gain lowpass at 1 kHz, Q = 1 *)
  Alcotest.(check (float 1e-6)) "dc gain" 1.0 (magnitude b 0.01);
  Alcotest.(check (float 1e-3)) "f0 peak = Q" 1.0 (magnitude b 1000.0);
  let deep = magnitude b 100_000.0 in
  Alcotest.(check bool) "-80dB at 100 f0" true (deep < 1.2e-4 && deep > 0.8e-4)

let test_tow_thomas_formulas () =
  let p = Circuits.Tow_thomas.params_for ~q:2.5 ~gain:3.0 ~f0_hz:2500.0 () in
  Alcotest.(check (float 1e-6)) "f0" 2500.0 (Circuits.Tow_thomas.f0_hz p);
  Alcotest.(check (float 1e-6)) "q" 2.5 (Circuits.Tow_thomas.quality p);
  let b = Circuits.Tow_thomas.make ~params:p () in
  Alcotest.(check (float 1e-3)) "dc gain 3" 3.0 (magnitude b 0.1)

let test_tow_thomas_symbolic () =
  (* the extracted H(s) must equal the textbook expression *)
  let p = Circuits.Tow_thomas.default_params in
  let b = Circuits.Tow_thomas.make ~params:p () in
  let h =
    Mna.Symbolic.transfer ~source:b.Circuits.Benchmark.source
      ~output:b.Circuits.Benchmark.output b.Circuits.Benchmark.netlist
  in
  let w0_sq =
    p.Circuits.Tow_thomas.r6
    /. (p.Circuits.Tow_thomas.r3 *. p.Circuits.Tow_thomas.r4 *. p.Circuits.Tow_thomas.r5
       *. p.Circuits.Tow_thomas.c1 *. p.Circuits.Tow_thomas.c2)
  in
  let num =
    Linalg.Poly.const
      (1.0
      /. (p.Circuits.Tow_thomas.r1 *. p.Circuits.Tow_thomas.r4 *. p.Circuits.Tow_thomas.c1
         *. p.Circuits.Tow_thomas.c2))
  in
  let den =
    Linalg.Poly.of_coeffs
      [| w0_sq; 1.0 /. (p.Circuits.Tow_thomas.r2 *. p.Circuits.Tow_thomas.c1); 1.0 |]
  in
  let expected = Linalg.Ratfunc.make num den in
  Alcotest.(check bool) "H matches textbook form" true (Linalg.Ratfunc.equal_at h expected)

let test_sallen_key_lp () =
  let b = Circuits.Sallen_key.lowpass ~f0_hz:1000.0 ~q:1.0 () in
  Alcotest.(check (float 1e-6)) "dc gain" 1.0 (magnitude b 0.01);
  Alcotest.(check (float 1e-3)) "peak = Q at f0" 1.0 (magnitude b 1000.0);
  Alcotest.(check bool) "rolls off" true (magnitude b 20_000.0 < 0.01)

let test_sallen_key_hp () =
  let b = Circuits.Sallen_key.highpass ~f0_hz:1000.0 ~q:1.0 () in
  Alcotest.(check bool) "blocks dc" true (magnitude b 1.0 < 1e-4);
  Alcotest.(check (float 1e-3)) "passes highs" 1.0 (magnitude b 100_000.0)

let test_mfb_bandpass () =
  let b = Circuits.Mfb.bandpass ~f0_hz:1000.0 ~q:2.0 () in
  let at_f0 = magnitude b 1000.0 in
  Alcotest.(check bool) "peak at f0" true (at_f0 > magnitude b 100.0);
  Alcotest.(check bool) "peak at f0 (high side)" true (at_f0 > magnitude b 10_000.0);
  Alcotest.(check bool) "blocks dc" true (magnitude b 0.1 < 1e-3);
  (* centre frequency: the response 1 octave away must be well below peak *)
  Alcotest.(check bool) "selectivity" true (magnitude b 2000.0 < 0.8 *. at_f0)

let test_khn_taps () =
  let lp = Circuits.Khn.make ~tap:Circuits.Khn.Lowpass () in
  Alcotest.(check (float 1e-3)) "lp dc gain 1" 1.0 (magnitude lp 0.1);
  Alcotest.(check bool) "lp rolls off" true (magnitude lp 100_000.0 < 1e-3);
  let hp = Circuits.Khn.make ~tap:Circuits.Khn.Highpass () in
  Alcotest.(check bool) "hp blocks dc" true (magnitude hp 0.1 < 1e-3);
  Alcotest.(check (float 1e-3)) "hp passes highs" 1.0 (magnitude hp 100_000.0);
  let bp = Circuits.Khn.make ~tap:Circuits.Khn.Bandpass () in
  Alcotest.(check bool) "bp peaks at f0" true
    (magnitude bp 1000.0 > magnitude bp 100.0 && magnitude bp 1000.0 > magnitude bp 10_000.0)

let test_notch_null () =
  let b = Circuits.Notch.make ~f0_hz:1000.0 () in
  let at_null = magnitude b 1000.0 in
  Alcotest.(check bool) "deep null at f0" true (at_null < 1e-6);
  Alcotest.(check (float 1e-3)) "dc passes" 1.0 (magnitude b 0.1);
  Alcotest.(check (float 1e-2)) "highs pass" 1.0 (magnitude b 1_000_000.0)

let test_cascade_order () =
  let b = Circuits.Cascade.sallen_key_chain ~sections:3 () in
  Alcotest.(check int) "3 opamps" 3 (Circuits.Benchmark.opamp_count b);
  Alcotest.(check (float 1e-3)) "dc gain" 1.0 (magnitude b 0.1);
  (* 6th order: ~ -120 dB/decade; a decade above the corner the response
     is far below a single section's *)
  Alcotest.(check bool) "steep rolloff" true (magnitude b 30_000.0 < 1e-6)

let test_tt_pair () =
  let b = Circuits.Cascade.tow_thomas_pair () in
  Alcotest.(check int) "6 opamps" 6 (Circuits.Benchmark.opamp_count b);
  Alcotest.(check (float 1e-2)) "dc gain" 1.0 (magnitude b 0.1);
  Alcotest.(check bool) "4th-order rolloff" true (magnitude b 50_000.0 < 1e-5)

let test_leapfrog_shape () =
  let b = Circuits.Leapfrog.make ~cutoff_hz:1000.0 () in
  Alcotest.(check int) "8 opamps" 8 (Circuits.Benchmark.opamp_count b);
  (* doubly-terminated ladder: flat loss of 1/2 *)
  Alcotest.(check (float 1e-3)) "dc gain 0.5" 0.5 (magnitude b 0.1);
  Alcotest.(check (float 0.02)) "-3dB of 0.5 at cutoff" (0.5 /. sqrt 2.0) (magnitude b 1000.0);
  Alcotest.(check bool) "5th-order rolloff" true (magnitude b 10_000.0 < 1e-4)

let test_leapfrog_poles_are_butterworth () =
  let b = Circuits.Leapfrog.make ~cutoff_hz:1000.0 () in
  let poles =
    Mna.Symbolic.poles ~source:b.Circuits.Benchmark.source
      ~output:b.Circuits.Benchmark.output b.Circuits.Benchmark.netlist
  in
  let wc = 2.0 *. Float.pi *. 1000.0 in
  Alcotest.(check int) "five poles" 5 (Array.length poles);
  Array.iter
    (fun p ->
      Alcotest.(check bool) "stable" true (p.Complex.re < 0.0);
      (* Butterworth poles sit on the circle of radius wc *)
      Alcotest.(check (float 0.01)) "unit circle" 1.0 (Complex.norm p /. wc))
    poles

let suite =
  [
    Alcotest.test_case "all validate" `Quick test_all_validate;
    Alcotest.test_case "all solvable" `Quick test_all_solvable;
    Alcotest.test_case "registry lookup" `Quick test_registry_lookup;
    Alcotest.test_case "tow-thomas response" `Quick test_tow_thomas_response;
    Alcotest.test_case "tow-thomas formulas" `Quick test_tow_thomas_formulas;
    Alcotest.test_case "tow-thomas symbolic" `Quick test_tow_thomas_symbolic;
    Alcotest.test_case "sallen-key lp" `Quick test_sallen_key_lp;
    Alcotest.test_case "sallen-key hp" `Quick test_sallen_key_hp;
    Alcotest.test_case "mfb bandpass" `Quick test_mfb_bandpass;
    Alcotest.test_case "khn taps" `Quick test_khn_taps;
    Alcotest.test_case "notch null" `Quick test_notch_null;
    Alcotest.test_case "sk cascade" `Quick test_cascade_order;
    Alcotest.test_case "tt pair" `Quick test_tt_pair;
    Alcotest.test_case "leapfrog shape" `Quick test_leapfrog_shape;
    Alcotest.test_case "leapfrog poles" `Quick test_leapfrog_poles_are_butterworth;
  ]

(* --- newer zoo members --- *)

let test_universal_notch () =
  let b = Circuits.Universal.make ~f0_hz:1000.0 () in
  Alcotest.(check int) "4 opamps" 4 (Circuits.Benchmark.opamp_count b);
  Alcotest.(check bool) "deep null at f0" true (magnitude b 1000.0 < 1e-6);
  Alcotest.(check (float 1e-3)) "dc passes" 1.0 (magnitude b 1.0);
  Alcotest.(check (float 1e-3)) "highs pass" 1.0 (magnitude b 1_000_000.0)

let test_universal_allpass () =
  let b = Circuits.Universal.make ~response:Circuits.Universal.Allpass () in
  List.iter
    (fun f ->
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "|H| = 1 at %g Hz" f)
        1.0 (magnitude b f))
    [ 10.0; 300.0; 1000.0; 3300.0; 100_000.0 ];
  (* but the phase moves: it is not a wire *)
  let phase f =
    let h =
      Mna.Ac.transfer ~source:"Vin" ~output:"sum"
        b.Circuits.Benchmark.netlist ~omega:(2.0 *. Float.pi *. f)
    in
    atan2 h.Complex.im h.Complex.re
  in
  Alcotest.(check bool) "phase rotates" true
    (Float.abs (phase 1000.0 -. phase 10.0) > 1.0)

let test_wien_bandpass () =
  let b = Circuits.Wien.bandpass ~f0_hz:1000.0 ~gain:2.0 () in
  let at_f0 = magnitude b 1000.0 in
  Alcotest.(check bool) "peaks at f0" true
    (at_f0 > magnitude b 100.0 && at_f0 > magnitude b 10_000.0);
  (* stable: all poles in the left half plane *)
  let poles =
    Mna.Symbolic.poles ~source:"Vin" ~output:"out" b.Circuits.Benchmark.netlist
  in
  Array.iter
    (fun p -> Alcotest.(check bool) "stable" true (p.Complex.re < 0.0))
    poles

let test_wien_q_enhancement () =
  (* Q (peak sharpness) grows as the gain approaches 3 *)
  let peak_ratio gain =
    let b = Circuits.Wien.bandpass ~f0_hz:1000.0 ~gain () in
    magnitude b 1000.0 /. magnitude b 100.0
  in
  Alcotest.(check bool) "gain 2.8 sharper than gain 1.5" true
    (peak_ratio 2.8 > 2.0 *. peak_ratio 1.5);
  Alcotest.check_raises "oscillation limit"
    (Invalid_argument "Wien.bandpass: gain must stay below 3") (fun () ->
      ignore (Circuits.Wien.bandpass ~gain:3.0 ()))

let test_allpass_flat_magnitude () =
  let b = Circuits.Allpass.first_order () in
  List.iter
    (fun f -> Alcotest.(check (float 1e-9)) "unity magnitude" 1.0 (magnitude b f))
    [ 1.0; 100.0; 1000.0; 10_000.0; 1_000_000.0 ];
  (* H = (1 - sRC)/(1 + sRC): -90 degrees at f0 *)
  let h =
    Mna.Ac.transfer ~source:"Vin" ~output:"out" b.Circuits.Benchmark.netlist
      ~omega:(2.0 *. Float.pi *. 1000.0)
  in
  Alcotest.(check (float 1e-6)) "quadrature at f0" (-.Float.pi /. 2.0)
    (atan2 h.Complex.im h.Complex.re)

let test_allpass_needs_phase_criterion () =
  (* the R3 fault moves only phase: invisible to magnitude testing,
     caught by the phase criterion *)
  let b = Circuits.Allpass.first_order () in
  let probe = { Testability.Detect.source = "Vin"; output = "out" } in
  let grid = Testability.Grid.around ~points_per_decade:10 ~center_hz:1000.0 () in
  let fault = Fault.deviation ~element:"R3" 1.2 in
  let by_mag =
    Testability.Detect.analyze_fault
      ~criterion:(Testability.Detect.Fixed_tolerance 0.05)
      probe grid b.Circuits.Benchmark.netlist fault
  in
  Alcotest.(check bool) "magnitude blind" false by_mag.Testability.Detect.detectable;
  let by_phase =
    Testability.Detect.analyze_fault
      ~criterion:(Testability.Detect.Phase_fixed 0.05)
      probe grid b.Circuits.Benchmark.netlist fault
  in
  Alcotest.(check bool) "phase sees it" true by_phase.Testability.Detect.detectable

let suite =
  suite
  @ [
      Alcotest.test_case "universal notch" `Quick test_universal_notch;
      Alcotest.test_case "universal allpass" `Quick test_universal_allpass;
      Alcotest.test_case "wien bandpass" `Quick test_wien_bandpass;
      Alcotest.test_case "wien q enhancement" `Quick test_wien_q_enhancement;
      Alcotest.test_case "allpass flat magnitude" `Quick test_allpass_flat_magnitude;
      Alcotest.test_case "allpass needs phase" `Quick test_allpass_needs_phase_criterion;
    ]
