(* Csparse vs the dense planar kernels: same systems, solutions equal
   to rounding (pivot orders differ, so not bitwise), same singular
   verdicts on clear-cut inputs, and the sparse block back-solve
   bitwise-equal to the sparse scalar solve (same per-column op
   order). Circuit-level sparse-vs-dense equivalence (Fastsim backends
   on Conformance.Gen subjects) lives further down. *)

module Cmat = Linalg.Cmat
module Big = Cmat.Big
module Bvec = Big.Vec
module Csparse = Linalg.Csparse

let complex = Alcotest.testable Fmt.(Dump.pair float float |> using Complex.(fun z -> (z.re, z.im))) ( = )

let _ = complex

(* ---- random sparse test systems ---- *)

type sys = { n : int; entries : (int * int) array; vals : Complex.t array }

let sys_gen =
  QCheck2.Gen.(
    let* n = int_range 2 14 in
    let* extra = int_range 0 (2 * n) in
    let* offdiag =
      list_repeat extra (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
    in
    let value =
      let* re = float_range (-3.0) 3.0 and* im = float_range (-3.0) 3.0 in
      return Complex.{ re; im }
    in
    (* every diagonal present (dominant-ish so most draws are regular) *)
    let diag = List.init n (fun i -> (i, i)) in
    let entries =
      List.sort_uniq compare (diag @ offdiag) |> Array.of_list
    in
    let* vals =
      array_repeat (Array.length entries)
        (let* v = value in
         return v)
    in
    let vals =
      Array.mapi
        (fun k ((i, j) : int * int) ->
          if i = j then Complex.add vals.(k) { re = 4.0; im = 1.0 } else vals.(k))
        entries
    in
    return { n; entries; vals })

let dense_of { n; entries; vals } =
  let m = Big.create n n in
  Array.iteri (fun k (i, j) -> Big.set m i j vals.(k)) entries;
  m

let sparse_of { n; entries; vals } =
  let p = Csparse.pattern ~n entries in
  let re, im = Csparse.values p in
  Array.iteri
    (fun k (i, j) ->
      let s = Csparse.slot p ~row:i ~col:j in
      Bigarray.Array1.set re s vals.(k).Complex.re;
      Bigarray.Array1.set im s vals.(k).Complex.im)
    entries;
  (p, re, im)

let factored sys =
  let p, re, im = sparse_of sys in
  let sym = Csparse.analyze p ~re ~im in
  let num = Csparse.numeric sym in
  Csparse.refactor num ~re ~im;
  (p, re, im, num)

let rand_rhs rng n =
  let b = Bvec.create n in
  for i = 0 to n - 1 do
    Bvec.set b i
      {
        Complex.re = QCheck2.Gen.generate1 ~rand:rng (QCheck2.Gen.float_range (-2.0) 2.0);
        im = QCheck2.Gen.generate1 ~rand:rng (QCheck2.Gen.float_range (-2.0) 2.0);
      }
  done;
  b

let close ?(tol = 1e-8) a b =
  Cmat.norm2 (a.Complex.re -. b.Complex.re) (a.Complex.im -. b.Complex.im)
  <= tol *. Float.max 1.0 (Float.max (Complex.norm a) (Complex.norm b))

(* ---- properties ---- *)

let prop_solve =
  QCheck2.Test.make ~name:"sparse solve agrees with dense LU" ~count:300 sys_gen
    (fun sys ->
      let m = dense_of sys in
      match Big.lu_factor m with
      | exception Cmat.Singular -> QCheck2.assume_fail ()
      | lu -> (
          match factored sys with
          | exception Cmat.Singular ->
              (* near the dense threshold the two pivot strategies may
                 disagree about singularity; that envelope is tested
                 separately. Regular draws must factor on both sides. *)
              QCheck2.assume_fail ()
          | _, _, _, num ->
              let rng = Random.State.make [| 77; sys.n |] in
              let b = rand_rhs rng sys.n in
              let xd = Bvec.create sys.n and xs = Bvec.create sys.n in
              Big.lu_solve_into lu ~b ~x:xd;
              Csparse.solve_into num ~b ~x:xs;
              let ok = ref true in
              for i = 0 to sys.n - 1 do
                if not (close (Bvec.get xd i) (Bvec.get xs i)) then ok := false
              done;
              !ok))

let prop_determinant =
  QCheck2.Test.make ~name:"sparse determinant agrees with dense (incl. sign)"
    ~count:300 sys_gen (fun sys ->
      let m = dense_of sys in
      match factored sys with
      | exception Cmat.Singular -> QCheck2.assume_fail ()
      | _, _, _, num ->
          let dd = Big.determinant m in
          let ds = Csparse.determinant num in
          close ~tol:1e-7 dd ds)

let prop_block_bitwise =
  QCheck2.Test.make ~name:"sparse block back-solve bitwise-equals scalar solves"
    ~count:150 sys_gen (fun sys ->
      match factored sys with
      | exception Cmat.Singular -> QCheck2.assume_fail ()
      | _, _, _, num ->
          let k = 3 in
          let b = Big.create sys.n k and x = Big.create sys.n k in
          let rng = Random.State.make [| 13; sys.n |] in
          let cols = Array.init k (fun _ -> rand_rhs rng sys.n) in
          Array.iteri
            (fun c bc ->
              for i = 0 to sys.n - 1 do
                Big.set b i c (Bvec.get bc i)
              done)
            cols;
          Csparse.solve_block_into num ~b ~x;
          let ok = ref true in
          Array.iteri
            (fun c bc ->
              let xs = Bvec.create sys.n in
              Csparse.solve_into num ~b:bc ~x:xs;
              for i = 0 to sys.n - 1 do
                if Big.get x i c <> Bvec.get xs i then ok := false
              done)
            cols;
          !ok)

let prop_mul_vec =
  QCheck2.Test.make ~name:"sparse mul_vec agrees with dense" ~count:200 sys_gen
    (fun sys ->
      let m = dense_of sys in
      let p, re, im = sparse_of sys in
      let rng = Random.State.make [| 5; sys.n |] in
      let x = rand_rhs rng sys.n in
      let yd = Bvec.create sys.n and ys = Bvec.create sys.n in
      Big.mul_vec_into m ~x ~y:yd;
      Csparse.mul_vec_into p ~re ~im ~x ~y:ys;
      let ok = ref true in
      for i = 0 to sys.n - 1 do
        if not (close ~tol:1e-12 (Bvec.get yd i) (Bvec.get ys i)) then ok := false
      done;
      ok := !ok && Float.abs (Csparse.norm_inf p ~re ~im -. Big.norm_inf m) <= 1e-12 *. (1.0 +. Big.norm_inf m);
      !ok)

let prop_dense_into =
  QCheck2.Test.make ~name:"dense_into reproduces the dense matrix" ~count:100 sys_gen
    (fun sys ->
      let m = dense_of sys in
      let p, re, im = sparse_of sys in
      let d = Big.create sys.n sys.n in
      Csparse.dense_into p ~re ~im d;
      let ok = ref true in
      for i = 0 to sys.n - 1 do
        for j = 0 to sys.n - 1 do
          if Big.get m i j <> Big.get d i j then ok := false
        done
      done;
      !ok)

(* ---- unit cases ---- *)

let test_singular_zero_column () =
  (* column 1 entirely absent: structurally singular, both backends
     must refuse. *)
  let n = 3 in
  let entries = [| (0, 0); (1, 0); (1, 2); (2, 0); (2, 2) |] in
  let p = Csparse.pattern ~n entries in
  let re, im = Csparse.values p in
  Array.iteri
    (fun k _ -> Bigarray.Array1.set re k (1.0 +. float_of_int k))
    entries;
  (match Csparse.analyze p ~re ~im with
  | exception Cmat.Singular -> ()
  | _ -> Alcotest.fail "sparse analyze accepted a structurally singular matrix");
  let m = Big.create n n in
  Array.iteri
    (fun k (i, j) -> Big.set m i j { Complex.re = 1.0 +. float_of_int k; im = 0.0 })
    entries;
  match Big.lu_factor m with
  | exception Cmat.Singular -> ()
  | _ -> Alcotest.fail "dense LU accepted a structurally singular matrix"

let test_refactor_reuse () =
  (* One symbolic analysis serves many value sets (the per-frequency
     refactorization path): scaling the matrix scales the solution. *)
  let sys =
    {
      n = 4;
      entries = [| (0, 0); (0, 1); (1, 0); (1, 1); (1, 2); (2, 2); (2, 3); (3, 3) |];
      vals =
        Array.map
          (fun (re, im) -> Complex.{ re; im })
          [| (5., 1.); (1., 0.); (-1., 0.5); (4., 0.); (2., 0.); (6., 2.); (1., 1.); (3., 0.) |];
    }
  in
  let p, re, im = sparse_of sys in
  let sym = Csparse.analyze p ~re ~im in
  let num = Csparse.numeric sym in
  Csparse.refactor num ~re ~im;
  let b = Bvec.create sys.n in
  Bvec.set b 0 Complex.one;
  Bvec.set b 3 Complex.{ re = 0.0; im = 2.0 };
  let x1 = Bvec.create sys.n in
  Csparse.solve_into num ~b ~x:x1;
  (* scale all values by 2: solution halves *)
  for k = 0 to Csparse.nnz p - 1 do
    Bigarray.Array1.set re k (2.0 *. Bigarray.Array1.get re k);
    Bigarray.Array1.set im k (2.0 *. Bigarray.Array1.get im k)
  done;
  Csparse.refactor num ~re ~im;
  let x2 = Bvec.create sys.n in
  Csparse.solve_into num ~b ~x:x2;
  for i = 0 to sys.n - 1 do
    if not (close (Bvec.get x1 i) (Complex.mul { re = 2.0; im = 0.0 } (Bvec.get x2 i)))
    then Alcotest.fail "refactor with scaled values did not halve the solution"
  done

let test_pattern_slot () =
  let p = Csparse.pattern ~n:3 [| (2, 1); (0, 0); (1, 1); (2, 2) |] in
  Alcotest.(check int) "nnz" 4 (Csparse.nnz p);
  Alcotest.(check int) "n" 3 (Csparse.n p);
  Alcotest.(check int) "slot (2,1) after (1,1)" 2 (Csparse.slot p ~row:2 ~col:1);
  Alcotest.(check bool) "missing slot" true
    (match Csparse.slot p ~row:0 ~col:2 with
    | exception Not_found -> true
    | _ -> false);
  Alcotest.(check bool) "duplicate rejected" true
    (match Csparse.pattern ~n:2 [| (0, 0); (0, 0) |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---- circuit level: Fastsim backends and campaign pruning ---- *)

module F = Testability.Fastsim
module P = Mcdft_core.Pipeline
module Mx = Testability.Matrix

(* The registered differential oracle already embodies the comparison
   (nominal + per-fault responses within family tolerances, singular
   leniency on near-singular draws); the property just drives it over
   the quick generator families and rejects any Fail. *)
let prop_backends_agree =
  let oracle =
    match Conformance.Oracle.find "sparse-vs-dense" with
    | Some o -> o
    | None -> Alcotest.fail "sparse-vs-dense oracle not registered"
  in
  QCheck2.Test.make ~name:"fastsim sparse backend agrees with dense on generated circuits"
    ~count:40
    QCheck2.Gen.(pair (int_range 0 3) (int_range 0 300))
    (fun (fi, seed) ->
      let family = List.nth Conformance.Gen.families fi in
      let s = Conformance.Gen.generate family ~seed in
      match Conformance.Oracle.run oracle s with
      | Conformance.Oracle.Fail msg ->
          QCheck2.Test.fail_reportf "%s: %s" s.Conformance.Gen.label msg
      | Conformance.Oracle.Pass | Conformance.Oracle.Skip _ -> true)

let test_auto_crossover () =
  let netlist, output =
    Conformance.Gen.bigladder ~stages:60 (Random.State.make [| 99 |])
  in
  let freqs_hz = [| 1e3; 1e4 |] in
  let big = F.create ~backend:F.Auto ~source:"V1" ~output ~freqs_hz netlist in
  Alcotest.(check bool) "auto picks sparse on a bigladder" true (F.uses_sparse big);
  let tt = Circuits.Tow_thomas.make () in
  let small =
    F.create ~backend:F.Auto ~source:tt.Circuits.Benchmark.source
      ~output:tt.Circuits.Benchmark.output ~freqs_hz tt.Circuits.Benchmark.netlist
  in
  Alcotest.(check bool) "auto stays dense below the crossover" false
    (F.uses_sparse small);
  let forced =
    F.create ~backend:F.Sparse ~source:tt.Circuits.Benchmark.source
      ~output:tt.Circuits.Benchmark.output ~freqs_hz tt.Circuits.Benchmark.netlist
  in
  Alcotest.(check bool) "explicit Sparse overrides the heuristic" true
    (F.uses_sparse forced)

(* End-to-end: a sparse pruned campaign on a bigladder must match the
   dense one verdict-for-verdict, and pruning must replicate rows
   bitwise while reporting what it skipped (the three buffers give 7
   test views in exactly 2 value-equivalence classes). *)
let test_bigladder_campaign () =
  let netlist, output =
    Conformance.Gen.bigladder ~stages:60 (Random.State.make [| 7 |])
  in
  let b =
    {
      Circuits.Benchmark.name = "bigladder-60";
      description = "sparse campaign smoke";
      netlist;
      source = "V1";
      output;
      center_hz = 10_000.0;
    }
  in
  let faults =
    List.filteri (fun i _ -> i mod 4 = 0) (Fault.deviation_faults netlist)
  in
  let run ~backend ~prune () =
    P.run ~points_per_decade:3 ~faults ~jobs:1 ~backend ~prune b
  in
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled true;
  let sparse =
    Fun.protect
      ~finally:(fun () -> Obs.Metrics.set_enabled false)
      (run ~backend:F.Sparse ~prune:true)
  in
  let snap = Obs.Metrics.snapshot () in
  Obs.Metrics.reset ();
  let dense = run ~backend:F.Dense ~prune:true () in
  let noprune = run ~backend:F.Sparse ~prune:false () in
  Alcotest.(check int) "equivalence groups" 2 sparse.P.equivalence_groups;
  Alcotest.(check int) "pruned configs" 5 sparse.P.pruned_configs;
  Alcotest.(check int) "campaign.equivalence_groups counter" 2
    (Obs.Metrics.counter snap "campaign.equivalence_groups");
  Alcotest.(check int) "campaign.pruned_configs counter" 5
    (Obs.Metrics.counter snap "campaign.pruned_configs");
  Alcotest.(check int) "no-prune simulates every view" 0 noprune.P.pruned_configs;
  Alcotest.(check int) "no-prune group per view" 7 noprune.P.equivalence_groups;
  Alcotest.(check bool) "sparse verdicts equal dense verdicts" true
    (sparse.P.matrix.Mx.detect = dense.P.matrix.Mx.detect);
  Alcotest.(check bool) "pruned detect bitwise-equals unpruned" true
    (sparse.P.matrix.Mx.detect = noprune.P.matrix.Mx.detect);
  Alcotest.(check bool) "pruned omega bitwise-equals unpruned" true
    (sparse.P.matrix.Mx.omega = noprune.P.matrix.Mx.omega)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ("pattern-slot", `Quick, test_pattern_slot);
    ("singular-zero-column", `Quick, test_singular_zero_column);
    ("refactor-reuse", `Quick, test_refactor_reuse);
    q prop_solve;
    q prop_determinant;
    q prop_block_bitwise;
    q prop_mul_vec;
    q prop_dense_into;
    ("auto-crossover", `Quick, test_auto_crossover);
    ("bigladder-campaign", `Slow, test_bigladder_campaign);
    q prop_backends_agree;
  ]
