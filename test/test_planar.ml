(* The planar (split re/im) Cmat kernels against a boxed Complex.t
   reference implementation of the same algorithm — partial-pivoting
   Doolittle LU with the growth-aware singularity threshold. The two
   run the identical sequence of floating-point operations, so the
   equivalence checks are exact (bitwise), covering the permutation
   choice and determinant sign, not just residual-level agreement.
   Plus the PR's allocation contract: a warmed Fastsim rank-1 solve
   must not allocate per element. *)

open Linalg

let c re im = Complex.{ re; im }

(* ---- reference boxed implementation ---- *)

module Ref = struct
  exception Singular

  type lu = { d : Complex.t array array; perm : int array; sign : int }

  let lu_factor (a : Complex.t array array) =
    let n = Array.length a in
    let d = Array.map Array.copy a in
    let perm = Array.init n Fun.id in
    let sign = ref 1 in
    let scale = ref 0.0 in
    Array.iter
      (Array.iter (fun z ->
           let v = Complex.norm z in
           if v > !scale then scale := v))
      d;
    let tiny = 1e-300 +. (!scale *. float_of_int n *. 4.0 *. epsilon_float) in
    for k = 0 to n - 1 do
      let pr = ref k and pm = ref (Complex.norm d.(k).(k)) in
      for i = k + 1 to n - 1 do
        let m = Complex.norm d.(i).(k) in
        if m > !pm then begin
          pm := m;
          pr := i
        end
      done;
      if !pm <= tiny then raise Singular;
      if !pr <> k then begin
        sign := - !sign;
        let t = d.(k) in
        d.(k) <- d.(!pr);
        d.(!pr) <- t;
        let t = perm.(k) in
        perm.(k) <- perm.(!pr);
        perm.(!pr) <- t
      end;
      let piv = d.(k).(k) in
      for i = k + 1 to n - 1 do
        let f = Complex.div d.(i).(k) piv in
        d.(i).(k) <- f;
        if f.Complex.re <> 0.0 || f.Complex.im <> 0.0 then
          for j = k + 1 to n - 1 do
            d.(i).(j) <- Complex.sub d.(i).(j) (Complex.mul f d.(k).(j))
          done
      done
    done;
    { d; perm; sign = !sign }

  let lu_solve { d; perm; _ } (b : Complex.t array) =
    let n = Array.length b in
    let x = Array.init n (fun i -> b.(perm.(i))) in
    for i = 1 to n - 1 do
      let acc = ref x.(i) in
      for j = 0 to i - 1 do
        acc := Complex.sub !acc (Complex.mul d.(i).(j) x.(j))
      done;
      x.(i) <- !acc
    done;
    for i = n - 1 downto 0 do
      let acc = ref x.(i) in
      for j = i + 1 to n - 1 do
        acc := Complex.sub !acc (Complex.mul d.(i).(j) x.(j))
      done;
      x.(i) <- Complex.div !acc d.(i).(i)
    done;
    x

  let determinant a =
    match lu_factor a with
    | exception Singular -> Complex.zero
    | { d; sign; _ } ->
        let acc =
          ref (if sign >= 0 then Complex.one else c (-1.0) 0.0)
        in
        for i = 0 to Array.length a - 1 do
          acc := Complex.mul !acc d.(i).(i)
        done;
        !acc

  let mul_vec (a : Complex.t array array) (x : Complex.t array) =
    Array.init (Array.length a) (fun i ->
        let acc = ref Complex.zero in
        Array.iteri (fun k v -> acc := Complex.add !acc (Complex.mul v x.(k))) a.(i);
        !acc)
end

(* ---- generators ---- *)

let random_rows rng n =
  Array.init n (fun _ ->
      Array.init n (fun _ ->
          c
            (QCheck.Gen.float_range (-10.0) 10.0 rng)
            (QCheck.Gen.float_range (-10.0) 10.0 rng)))

let random_vec rng n =
  Array.init n (fun _ ->
      c (QCheck.Gen.float_range (-10.0) 10.0 rng) (QCheck.Gen.float_range (-10.0) 10.0 rng))

let exact_vec x y =
  Array.length x = Array.length y
  && Array.for_all2
       (fun (a : Complex.t) (b : Complex.t) ->
         a.Complex.re = b.Complex.re && a.Complex.im = b.Complex.im)
       x y

let exact_c (a : Complex.t) (b : Complex.t) =
  a.Complex.re = b.Complex.re && a.Complex.im = b.Complex.im

let n_seed = QCheck.make QCheck.Gen.(pair (int_range 1 10) (int_range 0 1000000))

(* ---- equivalence properties ---- *)

let qcheck_solve_equiv =
  QCheck.Test.make ~name:"planar lu_factor/lu_solve == boxed reference (bitwise)"
    ~count:200 n_seed (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let rows = random_rows rng n in
      let b = random_vec rng n in
      let planar =
        match Cmat.lu_solve (Cmat.lu_factor (Cmat.of_arrays rows)) b with
        | x -> Some x
        | exception Cmat.Singular -> None
      in
      let boxed =
        match Ref.lu_solve (Ref.lu_factor rows) b with
        | x -> Some x
        | exception Ref.Singular -> None
      in
      match (planar, boxed) with
      | None, None -> true
      | Some x, Some y -> exact_vec x y
      | _ -> false)

let qcheck_det_equiv =
  QCheck.Test.make
    ~name:"planar determinant == boxed reference (incl. permutation sign)" ~count:200
    n_seed (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let rows = random_rows rng n in
      exact_c (Cmat.determinant (Cmat.of_arrays rows)) (Ref.determinant rows))

let qcheck_mul_vec_equiv =
  QCheck.Test.make ~name:"planar mul_vec == boxed reference (bitwise)" ~count:200
    n_seed (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let rows = random_rows rng n in
      let x = random_vec rng n in
      exact_vec (Cmat.mul_vec (Cmat.of_arrays rows) x) (Ref.mul_vec rows x))

let qcheck_into_variants =
  QCheck.Test.make ~name:"lu_solve_into / mul_vec_into == boxed-edge variants"
    ~count:100 n_seed (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let rows = random_rows rng n in
      let b = random_vec rng n in
      let m = Cmat.of_arrays rows in
      let bp = Cmat.Pvec.of_complex b in
      let xp = Cmat.Pvec.create n and yp = Cmat.Pvec.create n in
      Cmat.mul_vec_into m ~x:bp ~y:yp;
      let mv_ok = exact_vec (Cmat.Pvec.to_complex yp) (Cmat.mul_vec m b) in
      match Cmat.lu_factor m with
      | exception Cmat.Singular -> mv_ok
      | lu ->
          Cmat.lu_solve_into lu ~b:bp ~x:xp;
          mv_ok && exact_vec (Cmat.Pvec.to_complex xp) (Cmat.lu_solve lu b))

let test_singular_agreement () =
  (* exactly dependent rows: both implementations must refuse *)
  let rows = [| [| c 1.0 2.0; c 3.0 (-1.0) |]; [| c 2.0 4.0; c 6.0 (-2.0) |] |] in
  (match Cmat.lu_factor (Cmat.of_arrays rows) with
  | exception Cmat.Singular -> ()
  | _ -> Alcotest.fail "planar accepted a singular matrix");
  (match Ref.lu_factor rows with
  | exception Ref.Singular -> ()
  | _ -> Alcotest.fail "reference accepted a singular matrix");
  Alcotest.(check bool) "determinants agree on singular" true
    (exact_c (Cmat.determinant (Cmat.of_arrays rows)) (Ref.determinant rows))

(* ---- off-heap (Bigarray) kernels ----

   Cmat.Big ports the planar kernels verbatim onto Bigarray planes, so
   every check is again bitwise: same pivots, same permutation sign,
   same Singular refusals. The block back-solve additionally promises
   column-wise bitwise equality with k scalar solves. *)

let big_of_rows rows =
  let n = Array.length rows in
  let m = Cmat.Big.create n n in
  Array.iteri (fun i r -> Array.iteri (fun j z -> Cmat.Big.set m i j z) r) rows;
  m

let qcheck_big_solve_equiv =
  QCheck.Test.make ~name:"Big lu_factor/lu_solve_into == heap planar (bitwise)"
    ~count:200 n_seed (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let rows = random_rows rng n in
      let b = random_vec rng n in
      let heap =
        match Cmat.lu_solve (Cmat.lu_factor (Cmat.of_arrays rows)) b with
        | x -> Some x
        | exception Cmat.Singular -> None
      in
      let big =
        match Cmat.Big.lu_factor (big_of_rows rows) with
        | exception Cmat.Singular -> None
        | lu ->
            let bv = Cmat.Big.Vec.of_complex b in
            let xv = Cmat.Big.Vec.create n in
            Cmat.Big.lu_solve_into lu ~b:bv ~x:xv;
            Some (Cmat.Big.Vec.to_complex xv)
      in
      match (heap, big) with
      | None, None -> true
      | Some x, Some y -> exact_vec x y
      | _ -> false)

let qcheck_big_det_equiv =
  QCheck.Test.make
    ~name:"Big determinant == heap planar (incl. permutation sign)" ~count:200
    n_seed (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let rows = random_rows rng n in
      exact_c (Cmat.Big.determinant (big_of_rows rows))
        (Cmat.determinant (Cmat.of_arrays rows)))

let qcheck_big_mul_vec_equiv =
  QCheck.Test.make ~name:"Big mul_vec_into == heap planar (bitwise)" ~count:200
    n_seed (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let rows = random_rows rng n in
      let x = random_vec rng n in
      let xv = Cmat.Big.Vec.of_complex x in
      let yv = Cmat.Big.Vec.create n in
      Cmat.Big.mul_vec_into (big_of_rows rows) ~x:xv ~y:yv;
      exact_vec (Cmat.Big.Vec.to_complex yv) (Cmat.mul_vec (Cmat.of_arrays rows) x))

let qcheck_big_block_solve =
  QCheck.Test.make
    ~name:"Big lu_solve_block_into == k scalar lu_solve_into (bitwise)" ~count:100
    (QCheck.make QCheck.Gen.(triple (int_range 1 10) (int_range 1 8) (int_range 0 1000000)))
    (fun (n, k, seed) ->
      let rng = Random.State.make [| seed |] in
      let rows = random_rows rng n in
      match Cmat.Big.lu_factor (big_of_rows rows) with
      | exception Cmat.Singular -> QCheck.assume_fail ()
      | lu ->
          let cols = Array.init k (fun _ -> random_vec rng n) in
          let b = Cmat.Big.create n k and x = Cmat.Big.create n k in
          Array.iteri
            (fun r col -> Array.iteri (fun i z -> Cmat.Big.set b i r z) col)
            cols;
          Cmat.Big.lu_solve_block_into lu ~b ~x;
          let xv = Cmat.Big.Vec.create n in
          Array.for_all
            (fun r ->
              let bv = Cmat.Big.Vec.of_complex cols.(r) in
              let sx = Cmat.Big.Vec.create n in
              Cmat.Big.lu_solve_into lu ~b:bv ~x:sx;
              Cmat.Big.col_into x ~c:r xv;
              exact_vec (Cmat.Big.Vec.to_complex xv) (Cmat.Big.Vec.to_complex sx))
            (Array.init k Fun.id))

let test_big_singular_agreement () =
  let rows = [| [| c 1.0 2.0; c 3.0 (-1.0) |]; [| c 2.0 4.0; c 6.0 (-2.0) |] |] in
  (match Cmat.Big.lu_factor (big_of_rows rows) with
  | exception Cmat.Singular -> ()
  | _ -> Alcotest.fail "Big accepted a singular matrix");
  Alcotest.(check bool) "Big determinant is zero on singular" true
    (exact_c (Cmat.Big.determinant (big_of_rows rows)) Complex.zero)

(* The headline contract of the off-heap move: a warmed block
   back-solve touches only Bigarray planes, so it allocates zero
   GC-visible words. Exact equality, not a bound — under bytecode the
   instrumented interpreter allocates on its own, so native only. *)
let test_big_block_solve_zero_alloc () =
  if Sys.backend_type = Sys.Native then begin
    let n = 8 and k = 5 in
    let rng = Random.State.make [| 7 |] in
    let rows = random_rows rng n in
    let lu = Cmat.Big.lu_factor (big_of_rows rows) in
    let b = Cmat.Big.create n k and x = Cmat.Big.create n k in
    for i = 0 to n - 1 do
      for r = 0 to k - 1 do
        Cmat.Big.set b i r
          (c (Random.State.float rng 2.0) (Random.State.float rng 2.0))
      done
    done;
    (* warm once, then measure *)
    Cmat.Big.lu_solve_block_into lu ~b ~x;
    let w0 = Gc.minor_words () in
    Cmat.Big.lu_solve_block_into lu ~b ~x;
    let w1 = Gc.minor_words () in
    ignore (Sys.opaque_identity x);
    Alcotest.(check (float 0.0))
      "warmed block back-solve allocates zero words" 0.0 (w1 -. w0)
  end

(* ---- allocation regression ----

   The campaign inner loop (a warmed rank-1 SMW solve) must be
   allocation-free in the kernels: per frequency point it may box the
   [Some] result, the output [Complex.t] and a couple of float tuples
   in the coefficient arithmetic — O(1) words, nothing proportional to
   the system size. Measured ~144 words/solve on tow-thomas (n = 7);
   the bound leaves slack for those constants while staying far below
   any per-element boxing (a single boxed solution vector is already
   3n + 2·2n words per point). *)
let max_minor_words_per_solve = 200.0

let test_allocation_per_rank1_solve () =
  let b = Circuits.Tow_thomas.make () in
  let netlist = b.Circuits.Benchmark.netlist in
  let grid =
    Testability.Grid.around ~points_per_decade:10
      ~center_hz:b.Circuits.Benchmark.center_hz ()
  in
  let freqs = Testability.Grid.freqs_hz grid in
  let sim =
    Testability.Fastsim.create ~source:b.Circuits.Benchmark.source
      ~output:b.Circuits.Benchmark.output ~freqs_hz:freqs netlist
  in
  let fault =
    match Fault.deviation_faults netlist with
    | f :: _ -> f
    | [] -> Alcotest.fail "no deviation faults on tow-thomas"
  in
  Testability.Fastsim.warm_cache sim [ fault ];
  (* first call pays one-time costs (domain-local scratch sizing) *)
  ignore (Testability.Fastsim.response sim fault);
  let smw0, full0 = Testability.Fastsim.stats sim in
  let w0 = Gc.minor_words () in
  let r = Testability.Fastsim.response sim fault in
  let w1 = Gc.minor_words () in
  ignore (Sys.opaque_identity r);
  let smw1, full1 = Testability.Fastsim.stats sim in
  Alcotest.(check int) "all points served by the rank-1 update" 0 (full1 - full0);
  let solves = smw1 - smw0 in
  Alcotest.(check bool) "some rank-1 solves happened" true (solves > 0);
  let per_solve = (w1 -. w0) /. float_of_int solves in
  if per_solve > max_minor_words_per_solve then
    Alcotest.failf "rank-1 solve allocates %.1f minor words (bound %.0f)" per_solve
      max_minor_words_per_solve

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_solve_equiv;
    QCheck_alcotest.to_alcotest qcheck_det_equiv;
    QCheck_alcotest.to_alcotest qcheck_mul_vec_equiv;
    QCheck_alcotest.to_alcotest qcheck_into_variants;
    QCheck_alcotest.to_alcotest qcheck_big_solve_equiv;
    QCheck_alcotest.to_alcotest qcheck_big_det_equiv;
    QCheck_alcotest.to_alcotest qcheck_big_mul_vec_equiv;
    QCheck_alcotest.to_alcotest qcheck_big_block_solve;
    Alcotest.test_case "singular agreement" `Quick test_singular_agreement;
    Alcotest.test_case "Big singular agreement" `Quick test_big_singular_agreement;
    Alcotest.test_case "Big block back-solve zero allocation" `Quick
      test_big_block_solve_zero_alloc;
    Alcotest.test_case "rank-1 solve allocation bound" `Quick
      test_allocation_per_rank1_solve;
  ]
