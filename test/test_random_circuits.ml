(* Property tests on randomly generated circuits: the numeric AC
   engine, the symbolic engine, the SPICE round-trip and the adjoint
   sensitivities must all agree on arbitrary RC(L) ladder networks.
   The generator lives in Conformance.Gen (the fuzzer's Ladder family)
   so these properties and the differential oracles explore the same
   topology space. *)

module Netlist = Circuit.Netlist

let random_ladder = Conformance.Gen.ladder

let gen_seed = QCheck.make QCheck.Gen.(int_bound 1_000_000)

let qcheck_validates =
  QCheck.Test.make ~name:"random ladders validate" ~count:100 gen_seed (fun seed ->
      let rng = Random.State.make [| seed |] in
      let netlist, _ = random_ladder rng in
      match Circuit.Validate.check netlist with Ok () -> true | Error _ -> false)

let qcheck_symbolic_matches_numeric =
  QCheck.Test.make ~name:"random ladders: symbolic H(s) = numeric AC" ~count:60 gen_seed
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let netlist, out = random_ladder rng in
      let h = Mna.Symbolic.transfer ~source:"V1" ~output:out netlist in
      List.for_all
        (fun f ->
          let w = 2.0 *. Float.pi *. f in
          let sym = Linalg.Ratfunc.eval_jw h w in
          let num = Mna.Ac.transfer ~source:"V1" ~output:out netlist ~omega:w in
          Complex.norm (Complex.sub sym num)
          <= 1e-5 *. Float.max 1e-6 (Complex.norm num))
        [ 10.0; 1000.0; 100_000.0 ])

let qcheck_spice_roundtrip =
  QCheck.Test.make ~name:"random ladders: SPICE write/parse preserves response"
    ~count:60 gen_seed (fun seed ->
      let rng = Random.State.make [| seed |] in
      let netlist, out = random_ladder rng in
      match Spice.Parser.parse_string (Spice.Writer.to_string netlist) with
      | Error _ -> false
      | Ok reparsed ->
          List.for_all
            (fun f ->
              let w = 2.0 *. Float.pi *. f in
              let a = Mna.Ac.transfer ~source:"V1" ~output:out netlist ~omega:w in
              let b = Mna.Ac.transfer ~source:"V1" ~output:out reparsed ~omega:w in
              (* engineering-notation formatting keeps ~6 significant digits *)
              Complex.norm (Complex.sub a b) <= 1e-4 *. Float.max 1e-6 (Complex.norm a))
            [ 100.0; 10_000.0 ])

let qcheck_adjoint_matches_fd =
  QCheck.Test.make ~name:"random ladders: adjoint = finite difference" ~count:40 gen_seed
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let netlist, out = random_ladder rng in
      let omega = 2.0 *. Float.pi *. 3000.0 in
      let sens = Mna.Sensitivity.at_omega ~source:"V1" ~output:out netlist ~omega in
      List.for_all
        (fun (s : Mna.Sensitivity.t) ->
          let name = s.Mna.Sensitivity.element in
          let h = 1e-6 in
          let perturbed factor =
            Mna.Ac.transfer ~source:"V1" ~output:out
              (Netlist.map_value ~name ~f:(fun v -> v *. factor) netlist)
              ~omega
          in
          let base =
            match Circuit.Element.value (Netlist.find_exn netlist name) with
            | Some v -> v
            | None -> 0.0
          in
          let fd =
            Complex.div
              (Complex.sub (perturbed (1.0 +. h)) (perturbed (1.0 -. h)))
              { Complex.re = 2.0 *. h *. base; im = 0.0 }
          in
          let err = Complex.norm (Complex.sub fd s.Mna.Sensitivity.d_transfer) in
          err <= 1e-3 *. Float.max 1e-9 (Complex.norm fd) || err <= 1e-12)
        sens)

let qcheck_reciprocity =
  (* passive reciprocal networks: with equal source/load conditions the
     transfer is symmetric under swapping drive and observation through
     identical test fixtures; we check a weaker, always-true invariant
     instead: |H| <= passive bound of 1 for a source-terminated RC
     divider chain with no gain elements *)
  QCheck.Test.make ~name:"random RC ladders are passive (|H| <= 1)" ~count:60 gen_seed
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let netlist, out = random_ladder rng in
      List.for_all
        (fun f ->
          let h =
            Mna.Ac.transfer ~source:"V1" ~output:out netlist
              ~omega:(2.0 *. Float.pi *. f)
          in
          Complex.norm h <= 1.0 +. 1e-9)
        [ 1.0; 50.0; 2500.0; 125_000.0 ])

let qcheck_noise_positive =
  QCheck.Test.make ~name:"random ladders: noise PSD positive and finite" ~count:40
    gen_seed (fun seed ->
      let rng = Random.State.make [| seed |] in
      let netlist, out = random_ladder rng in
      let _, total = Mna.Noise.at_omega ~output:out netlist ~omega:6283.0 in
      Float.is_finite total && total >= 0.0)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_validates;
    QCheck_alcotest.to_alcotest qcheck_symbolic_matches_numeric;
    QCheck_alcotest.to_alcotest qcheck_spice_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_adjoint_matches_fd;
    QCheck_alcotest.to_alcotest qcheck_reciprocity;
    QCheck_alcotest.to_alcotest qcheck_noise_positive;
  ]

let qcheck_transient_steady_state_matches_ac =
  QCheck.Test.make ~name:"random ladders: transient sine steady state = |H(jw)|"
    ~count:15 gen_seed (fun seed ->
      let rng = Random.State.make [| seed |] in
      let netlist, out = random_ladder rng in
      let f = 2000.0 in
      let expected =
        Complex.norm
          (Mna.Ac.transfer ~source:"V1" ~output:out netlist
             ~omega:(2.0 *. Float.pi *. f))
      in
      let trace =
        Mna.Transient.simulate
          ~waveforms:[ ("V1", Mna.Transient.Sine { amplitude = 1.0; freq_hz = f; phase = 0.0 }) ]
          ~record:[ out ]
          ~t_stop:(20.0 /. f)
          ~dt:(1.0 /. (f *. 400.0))
          netlist
      in
      let v = List.assoc out trace.Mna.Transient.signals in
      let n = Array.length v in
      let hi = ref neg_infinity and lo = ref infinity in
      for i = n - (n / 10) to n - 1 do
        hi := Float.max !hi v.(i);
        lo := Float.min !lo v.(i)
      done;
      let amplitude = (!hi -. !lo) /. 2.0 in
      (* random ladders can have settle times beyond the simulated
         window; accept 2% agreement *)
      Float.abs (amplitude -. expected) <= 0.02 *. Float.max 0.01 expected)

let suite = suite @ [ QCheck_alcotest.to_alcotest qcheck_transient_steady_state_matches_ac ]
