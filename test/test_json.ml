module J = Report.Json

let rec equal a b =
  match (a, b) with
  | J.Null, J.Null -> true
  | J.Bool x, J.Bool y -> x = y
  | J.Number x, J.Number y -> Float.abs (x -. y) <= 1e-12 *. Float.max 1.0 (Float.abs x)
  | J.String x, J.String y -> x = y
  | J.List x, J.List y -> List.length x = List.length y && List.for_all2 equal x y
  | J.Object x, J.Object y ->
      List.length x = List.length y
      && List.for_all2 (fun (k1, v1) (k2, v2) -> k1 = k2 && equal v1 v2) x y
  | _ -> false

let sample =
  J.Object
    [
      ("name", J.String "mcdft");
      ("pi", J.Number 3.14159);
      ("count", J.int 42);
      ("ok", J.Bool true);
      ("nothing", J.Null);
      ("list", J.List [ J.int 1; J.int 2; J.String "x\"y\\z" ]);
      ("nested", J.Object [ ("newline", J.String "a\nb") ]);
    ]

let test_roundtrip_compact () =
  match J.of_string (J.to_string sample) with
  | Ok parsed -> Alcotest.(check bool) "roundtrip" true (equal sample parsed)
  | Error e -> Alcotest.fail e

let test_roundtrip_pretty () =
  match J.of_string (J.to_string ~indent:2 sample) with
  | Ok parsed -> Alcotest.(check bool) "roundtrip" true (equal sample parsed)
  | Error e -> Alcotest.fail e

let test_parse_basics () =
  (match J.of_string {| {"a": [1, 2.5, -3e2], "b": "A"} |} with
  | Ok v -> (
      Alcotest.(check bool) "member a" true (J.member "a" v <> None);
      match J.member "b" v with
      | Some (J.String s) -> Alcotest.(check string) "unicode escape" "A" s
      | _ -> Alcotest.fail "b missing")
  | Error e -> Alcotest.fail e);
  (match J.of_string "[]" with
  | Ok (J.List []) -> ()
  | _ -> Alcotest.fail "empty list")

let test_parse_errors () =
  List.iter
    (fun bad ->
      match J.of_string bad with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" bad)
      | Error _ -> ())
    [ "{"; "[1,"; "\"unterminated"; "nul"; "{\"a\" 1}"; "1 2"; "" ]

let test_ints_print_clean () =
  Alcotest.(check string) "int" "42" (J.to_string (J.int 42));
  Alcotest.(check string) "negative" "-7" (J.to_string (J.int (-7)))

let test_export_report () =
  let input =
    Mcdft_core.Optimizer.input_of_matrices ~n_opamps:Mcdft_core.Paper_data.n_opamps
      Mcdft_core.Paper_data.detectability_matrix Mcdft_core.Paper_data.omega_table
  in
  let r = Mcdft_core.Optimizer.optimize input in
  let json = Mcdft_core.Export.report_to_json r in
  (* it parses back and carries the headline values *)
  match J.of_string (J.to_string ~indent:2 json) with
  | Error e -> Alcotest.fail e
  | Ok v -> (
      (match J.member "max_coverage" v with
      | Some (J.Number c) -> Alcotest.(check (float 1e-9)) "coverage" 1.0 c
      | _ -> Alcotest.fail "max_coverage missing");
      match J.member "essential_configs" v with
      | Some (J.List [ J.Number c ]) -> Alcotest.(check (float 0.0)) "C2" 2.0 c
      | _ -> Alcotest.fail "essential missing")

let suite =
  [
    Alcotest.test_case "roundtrip compact" `Quick test_roundtrip_compact;
    Alcotest.test_case "roundtrip pretty" `Quick test_roundtrip_pretty;
    Alcotest.test_case "parse basics" `Quick test_parse_basics;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "ints clean" `Quick test_ints_print_clean;
    Alcotest.test_case "export report" `Quick test_export_report;
  ]
