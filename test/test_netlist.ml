module Element = Circuit.Element
module Netlist = Circuit.Netlist
module Validate = Circuit.Validate

let divider () =
  Netlist.empty ~title:"divider" ()
  |> Netlist.vsource ~name:"V1" "in" "0" 1.0
  |> Netlist.resistor ~name:"R1" "in" "out" 1000.0
  |> Netlist.resistor ~name:"R2" "out" "0" 1000.0

let test_builder () =
  let n = divider () in
  Alcotest.(check int) "size" 3 (Netlist.size n);
  Alcotest.(check (list string)) "nodes" [ "0"; "in"; "out" ] (Netlist.nodes n);
  Alcotest.(check (list string)) "internal" [ "in"; "out" ] (Netlist.internal_nodes n);
  Alcotest.(check bool) "mem R1" true (Netlist.mem n "R1");
  Alcotest.(check bool) "mem R9" false (Netlist.mem n "R9")

let test_duplicate_name () =
  let n = divider () in
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Netlist.add: duplicate element name \"R1\"") (fun () ->
      ignore (Netlist.resistor ~name:"R1" "a" "0" 1.0 n))

let test_find () =
  let n = divider () in
  (match Netlist.find n "R2" with
  | Some (Element.Resistor { value; _ }) ->
      Alcotest.(check (float 0.0)) "value" 1000.0 value
  | _ -> Alcotest.fail "R2 not found");
  Alcotest.(check bool) "absent" true (Netlist.find n "zz" = None)

let test_map_value () =
  let n = Netlist.map_value ~name:"R1" ~f:(fun v -> v *. 1.2) (divider ()) in
  match Netlist.find_exn n "R1" with
  | Element.Resistor { value; _ } -> Alcotest.(check (float 1e-9)) "bumped" 1200.0 value
  | _ -> Alcotest.fail "R1 missing"

let test_map_value_preserves_order () =
  let n = Netlist.map_value ~name:"V1" ~f:(fun v -> v *. 2.0) (divider ()) in
  let names = List.map Element.name (Netlist.elements n) in
  Alcotest.(check (list string)) "order" [ "V1"; "R1"; "R2" ] names

let test_remove_replace () =
  let n = Netlist.remove "R2" (divider ()) in
  Alcotest.(check int) "removed" 2 (Netlist.size n);
  let n2 =
    Netlist.replace (Element.Resistor { name = "R1"; n1 = "in"; n2 = "0"; value = 5.0 })
      (divider ())
  in
  match Netlist.find_exn n2 "R1" with
  | Element.Resistor { n2 = terminal; _ } -> Alcotest.(check string) "rewired" "0" terminal
  | _ -> Alcotest.fail "R1 missing"

let test_fresh_node () =
  let n = divider () in
  Alcotest.(check string) "unused prefix" "t" (Netlist.fresh_node n ~prefix:"t");
  Alcotest.(check string) "used prefix" "in1" (Netlist.fresh_node n ~prefix:"in")

let test_passives_opamps () =
  let n =
    divider () |> Netlist.opamp ~name:"OP1" ~inp:"out" ~inn:"0" ~out:"amp"
  in
  Alcotest.(check int) "passives" 2 (List.length (Netlist.passives n));
  Alcotest.(check int) "opamps" 1 (List.length (Netlist.opamps n))

let test_validate_ok () =
  match Validate.check (divider ()) with
  | Ok () -> ()
  | Error issues ->
      Alcotest.fail (String.concat "; " (List.map Validate.issue_to_string issues))

let test_validate_no_ground () =
  let n =
    Netlist.empty () |> Netlist.resistor ~name:"R1" "a" "b" 1.0
  in
  match Validate.check n with
  | Error issues ->
      Alcotest.(check bool) "no ground" true (List.mem Validate.No_ground issues)
  | Ok () -> Alcotest.fail "expected No_ground"

let test_validate_disconnected () =
  let n =
    divider () |> Netlist.resistor ~name:"R3" "x" "y" 1.0
  in
  match Validate.check n with
  | Error [ Validate.Disconnected ns ] ->
      Alcotest.(check (list string)) "stranded" [ "x"; "y" ] (List.sort compare ns)
  | Error issues ->
      Alcotest.fail (String.concat "; " (List.map Validate.issue_to_string issues))
  | Ok () -> Alcotest.fail "expected Disconnected"

let test_validate_nonpositive () =
  let n = divider () |> Netlist.resistor ~name:"R3" "out" "0" (-5.0) in
  match Validate.check n with
  | Error issues ->
      Alcotest.(check bool) "nonpositive" true
        (List.mem (Validate.Nonpositive_value "R3") issues)
  | Ok () -> Alcotest.fail "expected Nonpositive_value"

let test_validate_missing_sense () =
  let n =
    divider ()
    |> Netlist.add (Element.Cccs { name = "F1"; npos = "out"; nneg = "0"; vsense = "VX"; gain = 2.0 })
  in
  match Validate.check n with
  | Error issues ->
      Alcotest.(check bool) "missing sense" true
        (List.mem (Validate.Missing_sense { element = "F1"; vsense = "VX" }) issues)
  | Ok () -> Alcotest.fail "expected Missing_sense"

let test_validate_self_loop () =
  let n = divider () |> Netlist.resistor ~name:"R3" "out" "out" 1.0 in
  match Validate.check n with
  | Error issues ->
      Alcotest.(check bool) "self loop" true (List.mem (Validate.Self_loop "R3") issues)
  | Ok () -> Alcotest.fail "expected Self_loop"

let test_validate_empty () =
  match Validate.check (Netlist.empty ()) with
  | Error [ Validate.Empty_netlist ] -> ()
  | _ -> Alcotest.fail "expected Empty_netlist"

let suite =
  [
    Alcotest.test_case "builder" `Quick test_builder;
    Alcotest.test_case "duplicate name" `Quick test_duplicate_name;
    Alcotest.test_case "find" `Quick test_find;
    Alcotest.test_case "map_value" `Quick test_map_value;
    Alcotest.test_case "map_value preserves order" `Quick test_map_value_preserves_order;
    Alcotest.test_case "remove/replace" `Quick test_remove_replace;
    Alcotest.test_case "fresh_node" `Quick test_fresh_node;
    Alcotest.test_case "passives/opamps" `Quick test_passives_opamps;
    Alcotest.test_case "validate ok" `Quick test_validate_ok;
    Alcotest.test_case "validate no ground" `Quick test_validate_no_ground;
    Alcotest.test_case "validate disconnected" `Quick test_validate_disconnected;
    Alcotest.test_case "validate nonpositive" `Quick test_validate_nonpositive;
    Alcotest.test_case "validate missing sense" `Quick test_validate_missing_sense;
    Alcotest.test_case "validate self loop" `Quick test_validate_self_loop;
    Alcotest.test_case "validate empty" `Quick test_validate_empty;
  ]
