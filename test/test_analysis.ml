(* The static-analysis engine: structural rank, lint findings and the
   structural-vs-numeric singularity property. *)

module Netlist = Circuit.Netlist
module Validate = Circuit.Validate
module Finding = Analysis.Finding
module Structural = Analysis.Structural
module Lint = Analysis.Lint

(* the same netlists as test/fixtures/*.cir, inline so the suite does
   not depend on data-file plumbing *)
let vloop_cir =
  "Voltage-source loop: V1 and V2 in parallel between in and ground\n\
   V1 in 0 AC 1\n\
   V2 in 0 AC 1\n\
   R1 in out 10k\n\
   R2 out 0 10k\n\
   .end\n"

let broken_chain_cir =
  "Broken test-input chain: opamps declared against signal order\n\
   Vin in 0 AC 1\n\
   R1 in m1 15.9k\n\
   C1 m1 v1 10n\n\
   R4 v1 m2 15.9k\n\
   C2 m2 v2 10n\n\
   XOP2 0 m2 v2 OPAMP\n\
   XOP1 0 m1 v1 OPAMP\n\
   .end\n"

let parse_with_lines text =
  match Spice.Parser.parse_string_with_lines text with
  | Ok r -> r
  | Error e -> Alcotest.failf "parse failed: %s" (Spice.Parser.error_to_string e)

(* ---- structural rank ---- *)

let test_structural_vloop () =
  let netlist, _ = parse_with_lines vloop_cir in
  let s = Structural.analyse netlist in
  Alcotest.(check bool) "singular" true (Structural.is_singular s);
  match s.Structural.generic with
  | None -> Alcotest.fail "expected a generic deficiency"
  | Some d ->
      Alcotest.(check int) "rank" 3 d.Structural.rank;
      Alcotest.(check int) "size" 4 d.Structural.size;
      Alcotest.(check int) "2 violator equations" 2 (List.length d.Structural.equations);
      Alcotest.(check int) "1 constrained unknown" 1 (List.length d.Structural.unknowns)

let test_structural_dc_only () =
  (* an ideal inverting integrator: solvable at every omega > 0 but the
     output voltage column vanishes from the DC pattern *)
  let netlist =
    Netlist.empty ~title:"integrator" ()
    |> Netlist.vsource ~name:"V1" "in" "0" 1.0
    |> Netlist.resistor ~name:"R1" "in" "x" 10_000.0
    |> Netlist.capacitor ~name:"C1" "x" "out" 1e-8
    |> Netlist.opamp ~name:"OP1" ~inp:"0" ~inn:"x" ~out:"out"
  in
  let s = Structural.analyse netlist in
  Alcotest.(check bool) "not singular" false (Structural.is_singular s);
  Alcotest.(check bool) "generic full rank" true (s.Structural.generic = None);
  Alcotest.(check bool) "hf full rank" true (s.Structural.hf = None);
  match s.Structural.dc with
  | None -> Alcotest.fail "expected a DC deficiency"
  | Some d -> Alcotest.(check bool) "regime" true (d.Structural.regime = Structural.Dc)

let test_structural_hf_floating () =
  let netlist =
    Netlist.empty ~title:"inductor island" ()
    |> Netlist.vsource ~name:"V1" "in" "0" 1.0
    |> Netlist.resistor ~name:"R1" "in" "a" 1_000.0
    |> Netlist.inductor ~name:"L1" "a" "x" 1e-3
    |> Netlist.inductor ~name:"L2" "x" "0" 1e-3
  in
  let s = Structural.analyse netlist in
  Alcotest.(check bool) "generic full rank" true (s.Structural.generic = None);
  Alcotest.(check (list string)) "x floats at HF" [ "x" ] s.Structural.hf_floating

(* ---- new validation checks ---- *)

let test_validate_dangling () =
  let netlist =
    Netlist.empty ()
    |> Netlist.vsource ~name:"V1" "in" "0" 1.0
    |> Netlist.resistor ~name:"R1" "in" "m" 1_000.0
    |> Netlist.resistor ~name:"R2" "m" "0" 1_000.0
    |> Netlist.resistor ~name:"R3" "m" "x" 1_000.0
  in
  (match Validate.check netlist with
  | Error [ Validate.Dangling_node { node = "x"; element = "R3" } ] -> ()
  | Error issues ->
      Alcotest.failf "unexpected issues: %s"
        (String.concat "; " (List.map Validate.issue_to_string issues))
  | Ok () -> Alcotest.fail "expected a dangling-node warning");
  (* a warning alone must not stop solver pipelines *)
  Validate.check_exn netlist

let test_validate_drive_conflict () =
  let netlist =
    Netlist.empty ()
    |> Netlist.vsource ~name:"V1" "in" "0" 1.0
    |> Netlist.vsource ~name:"V2" "o" "0" 1.0
    |> Netlist.resistor ~name:"R1" "in" "x" 1_000.0
    |> Netlist.resistor ~name:"R2" "x" "o" 1_000.0
    |> Netlist.opamp ~name:"OP1" ~inp:"0" ~inn:"x" ~out:"o"
  in
  (match Validate.check netlist with
  | Error issues ->
      Alcotest.(check bool) "conflict reported" true
        (List.exists
           (function
             | Validate.Opamp_drive_conflict { opamp = "OP1"; vsource = "V2" } -> true
             | _ -> false)
           issues)
  | Ok () -> Alcotest.fail "expected a drive conflict");
  match Validate.check_exn netlist with
  | () -> Alcotest.fail "check_exn must raise on an error-severity issue"
  | exception Invalid_argument _ -> ()

(* ---- parser line table ---- *)

let test_parser_line_table () =
  let text =
    "title line\n\
     V1 in 0 AC 1\n\
     R1 in out\n\
     + 10k\n\
     .subckt DIV a b\n\
     RA a mid 1k\n\
     RB mid b 1k\n\
     .ends\n\
     Xd out 0 DIV\n\
     .end\n"
  in
  let _, lines = parse_with_lines text in
  Alcotest.(check (option int)) "V1 line" (Some 2) (List.assoc_opt "V1" lines);
  Alcotest.(check (option int)) "continued R1 maps to opening line" (Some 3)
    (List.assoc_opt "R1" lines);
  Alcotest.(check (option int)) "flattened Xd.RA keeps its body line" (Some 6)
    (List.assoc_opt "Xd.RA" lines);
  Alcotest.(check (option int)) "flattened Xd.RB keeps its body line" (Some 7)
    (List.assoc_opt "Xd.RB" lines)

(* ---- lint golden tests ---- *)

let test_lint_vloop () =
  let netlist, lines = parse_with_lines vloop_cir in
  let src = { Lint.file = "vloop.cir"; lines } in
  let findings = Lint.run ~src netlist in
  let errors = Finding.errors findings in
  Alcotest.(check int) "one error" 1 (List.length errors);
  let e = List.hd errors in
  Alcotest.(check string) "code" "S001" e.Finding.code;
  (match e.Finding.loc with
  | Some { Finding.file = "vloop.cir"; line = 2 } -> ()
  | _ -> Alcotest.fail "expected vloop.cir:2 location");
  let rendered = Finding.to_string e in
  Alcotest.(check bool) "rendered with file:line" true
    (String.length rendered > 12 && String.sub rendered 0 12 = "vloop.cir:2:")

let test_lint_broken_chain () =
  let netlist, lines = parse_with_lines broken_chain_cir in
  let src = { Lint.file = "broken_chain.cir"; lines } in
  let findings = Lint.run ~src ~source:"Vin" ~output:"v2" netlist in
  Alcotest.(check int) "no errors" 0 (List.length (Finding.errors findings));
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "C003 names configuration C2" true
    (List.exists
       (fun f ->
         f.Finding.code = "C003"
         && f.Finding.severity = Finding.Warning
         && f.Finding.config = Some "configuration C2")
       findings);
  Alcotest.(check bool) "message mentions input and output" true
    (List.exists
       (fun f ->
         f.Finding.code = "C003" && contains f.Finding.message "v2"
         && contains f.Finding.message "in")
       findings)

let test_lint_registry_clean () =
  List.iter
    (fun (b : Circuits.Benchmark.t) ->
      let findings =
        Lint.run ~source:b.Circuits.Benchmark.source ~output:b.Circuits.Benchmark.output
          b.Circuits.Benchmark.netlist
      in
      Alcotest.(check int)
        (b.Circuits.Benchmark.name ^ " lints without errors")
        0
        (List.length (Finding.errors findings)))
    (Circuits.Registry.all ())

(* ---- detectability pre-pass ---- *)

let test_detectability_consistency () =
  let b = Option.get (Circuits.Registry.find "tow-thomas") in
  let dft =
    Multiconfig.Transform.make ~source:b.Circuits.Benchmark.source
      ~output:b.Circuits.Benchmark.output b.Circuits.Benchmark.netlist
  in
  let det = Analysis.Detectability.analyse dft in
  let plan = Mcdft_core.Prefilter.analyse dft in
  Alcotest.(check int) "skip_count = pruned_pairs"
    plan.Mcdft_core.Prefilter.pruned_pairs
    (Analysis.Detectability.skip_count det);
  Alcotest.(check int) "total_pairs agree" plan.Mcdft_core.Prefilter.total_pairs
    (Analysis.Detectability.total_pairs det);
  Alcotest.(check bool) "pruning is non-trivial" true
    (Analysis.Detectability.skip_count det > 0);
  Alcotest.(check int) "every fault detectable somewhere" 0
    (List.length (Analysis.Detectability.undetectable_everywhere det))

(* ---- structural verdict vs numeric LU ---- *)

(* A random connected soup — ladder + optional bridge + at most one
   opamp/source hazard. The generator lives in Conformance.Gen (the
   fuzzer's Soup family); see its doc for why at most ONE opamp is
   allowed in the hazard set. *)
let random_soup rng = fst (Conformance.Gen.soup rng)

let numerically_solvable netlist ~omega =
  let module F = (val Mna.Field.complex ~omega) in
  let module AC = Mna.Assemble.Make (F) in
  let index = Mna.Index.build netlist in
  let { AC.matrix; _ } = AC.assemble index netlist in
  match Linalg.Cmat.lu_factor (Linalg.Cmat.of_arrays matrix) with
  | _ -> true
  | exception Linalg.Cmat.Singular -> false

let gen_seed = QCheck.make QCheck.Gen.(int_bound 1_000_000)

let qcheck_structural_sound =
  QCheck.Test.make ~name:"structural singular => LU Singular; full rank => solvable"
    ~count:200 gen_seed (fun seed ->
      let rng = Random.State.make [| seed |] in
      let netlist = random_soup rng in
      let omega = 2.0 *. Float.pi *. (10.0 ** QCheck.Gen.float_range 1.0 5.0 rng) in
      let verdict = Structural.is_singular (Structural.analyse netlist) in
      let solvable = numerically_solvable netlist ~omega in
      if verdict then not solvable else solvable)

let suite =
  [
    Alcotest.test_case "structural: V loop" `Quick test_structural_vloop;
    Alcotest.test_case "structural: DC-only deficiency" `Quick test_structural_dc_only;
    Alcotest.test_case "structural: HF floating node" `Quick test_structural_hf_floating;
    Alcotest.test_case "validate: dangling node" `Quick test_validate_dangling;
    Alcotest.test_case "validate: opamp drive conflict" `Quick test_validate_drive_conflict;
    Alcotest.test_case "parser: line table" `Quick test_parser_line_table;
    Alcotest.test_case "lint: V loop golden" `Quick test_lint_vloop;
    Alcotest.test_case "lint: broken chain golden" `Quick test_lint_broken_chain;
    Alcotest.test_case "lint: registry circuits are clean" `Quick test_lint_registry_clean;
    Alcotest.test_case "detectability: prefilter consistency" `Quick
      test_detectability_consistency;
    QCheck_alcotest.to_alcotest qcheck_structural_sound;
  ]
