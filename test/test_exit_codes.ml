(* Table-driven check of the documented CLI exit-code contract, driven
   against the real binary and real fixtures:

     0  success
     1  invalid input (unknown benchmark, bad flag value)
     3  singular system reached the solver
     4  unknown fault element
     5  file i/o error
     6  netlist rejected by the pre-flight lint

   The distinction between 3 and 6 is load-bearing: a structurally
   detectable defect (voltage-source loop) must be caught by the lint
   before any matrix is built, while a numerically singular but
   structurally full-rank netlist (fixtures/singular_vcvs.cir) must
   sail through the lint and fail in the LU. *)

let mcdft_exe = "../bin/mcdft.exe"

let exit_code cmd =
  Sys.command (Printf.sprintf "%s %s > /dev/null 2>&1" mcdft_exe cmd)

let table =
  [
    ("list", "list", 0);
    ("tf on a benchmark", "tf tow-thomas", 0);
    ("unknown benchmark", "tf no-such-benchmark", 1);
    ( "numerically singular netlist",
      "tf fixtures/singular_vcvs.cir --output y",
      3 );
    ( "unknown fault element",
      "analyze tow-thomas --fault-element RZZZ --points-per-decade 2",
      4 );
    ( "unknown element in a diagnose self-test",
      "diagnose tow-thomas --simulate RZZZ --points-per-decade 2",
      4 );
    ( "diagnose self-test locates the fault",
      "diagnose tow-thomas --simulate R1+20% --points-per-decade 3",
      0 );
    ( "optimize accepts an n-detect target",
      "optimize tow-thomas --n-detect 2 --points-per-decade 3",
      0 );
    (* flag-value validation happens in cmdliner's conv layer, which
       owns exit 124 for CLI errors (same as --points-per-decade 0) *)
    ( "n-detect must be positive",
      "optimize tow-thomas --n-detect 0",
      124 );
    ( "missing diagnose observation file is an i/o error",
      "diagnose tow-thomas --observe no/such/log.txt --points-per-decade 2",
      5 );
    (* a path that exists but cannot be read as a netlist file; a
       *missing* .cir path falls through to benchmark lookup (exit 1) *)
    ("unreadable netlist path", "tf fixtures", 5);
    ("missing netlist path is an unknown benchmark", "tf no/such/file.cir", 1);
    ("lint-rejected netlist", "tf fixtures/vloop.cir", 6);
  ]

let test_exit_codes () =
  Alcotest.(check bool)
    "binary present at ../bin/mcdft.exe" true (Sys.file_exists mcdft_exe);
  List.iter
    (fun (what, cmd, expected) ->
      Alcotest.(check int)
        (Printf.sprintf "%s (`mcdft %s`)" what cmd)
        expected (exit_code cmd))
    table

let test_fuzz_exit_codes () =
  (* healthy campaign exits 0; a replay of a checked-in repro on the
     healthy engine exits 1 ("no longer reproduces") *)
  Alcotest.(check int) "fuzz healthy campaign" 0
    (exit_code "fuzz --seed 7 --cases 4 --shrink-dir tmp_exit_repros");
  if Sys.file_exists "tmp_exit_repros" then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat "tmp_exit_repros" f))
      (Sys.readdir "tmp_exit_repros");
    Sys.rmdir "tmp_exit_repros"
  end;
  Alcotest.(check int) "replay on healthy engine" 1
    (exit_code
       "fuzz --replay fixtures/shrunk/ladder-0--rank1-updates.expected.json");
  Alcotest.(check int) "replay of a missing repro is an i/o error" 5
    (exit_code "fuzz --replay fixtures/shrunk/nope.expected.json")

let suite =
  [
    Alcotest.test_case "documented exit codes hold against fixtures" `Quick
      test_exit_codes;
    Alcotest.test_case "fuzz subcommand exit codes" `Quick
      test_fuzz_exit_codes;
  ]
