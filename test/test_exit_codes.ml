(* Table-driven check of the documented CLI exit-code contract, driven
   against the real binary and real fixtures:

     0  success
     1  invalid input (unknown benchmark, bad flag value)
     3  singular system reached the solver
     4  unknown fault element
     5  file i/o error
     6  netlist rejected by the pre-flight lint

   The distinction between 3 and 6 is load-bearing: a structurally
   detectable defect (voltage-source loop) must be caught by the lint
   before any matrix is built, while a numerically singular but
   structurally full-rank netlist (fixtures/singular_vcvs.cir) must
   sail through the lint and fail in the LU. *)

let mcdft_exe = "../bin/mcdft.exe"

let exit_code cmd =
  Sys.command (Printf.sprintf "%s %s > /dev/null 2>&1" mcdft_exe cmd)

let table =
  [
    ("list", "list", 0);
    ("tf on a benchmark", "tf tow-thomas", 0);
    ("unknown benchmark", "tf no-such-benchmark", 1);
    ( "numerically singular netlist",
      "tf fixtures/singular_vcvs.cir --output y",
      3 );
    ( "unknown fault element",
      "analyze tow-thomas --fault-element RZZZ --points-per-decade 2",
      4 );
    ( "unknown element in a diagnose self-test",
      "diagnose tow-thomas --simulate RZZZ --points-per-decade 2",
      4 );
    ( "diagnose self-test locates the fault",
      "diagnose tow-thomas --simulate R1+20% --points-per-decade 3",
      0 );
    ( "optimize accepts an n-detect target",
      "optimize tow-thomas --n-detect 2 --points-per-decade 3",
      0 );
    (* flag-value validation happens in cmdliner's conv layer, which
       owns exit 124 for CLI errors (same as --points-per-decade 0) *)
    ( "n-detect must be positive",
      "optimize tow-thomas --n-detect 0",
      124 );
    ( "adaptive campaign on a matrix run",
      "matrix tow-thomas --adaptive --points-per-decade 3",
      0 );
    ( "exhaustive campaign on a matrix run",
      "matrix tow-thomas --no-adaptive --points-per-decade 3",
      0 );
    ( "bounded adaptive refinement",
      "matrix tow-thomas --solve-budget 5 --points-per-decade 3",
      0 );
    (* --solve-budget is validated in the command itself (cmdliner's
       conv layer would own exit 124; the value is accepted as an int
       and rejected by the same path as other semantic errors) *)
    ("solve budget must be positive", "matrix tow-thomas --solve-budget 0", 2);
    ( "missing diagnose observation file is an i/o error",
      "diagnose tow-thomas --observe no/such/log.txt --points-per-decade 2",
      5 );
    (* a path that exists but cannot be read as a netlist file; a
       *missing* .cir path falls through to benchmark lookup (exit 1) *)
    ("unreadable netlist path", "tf fixtures", 5);
    ("missing netlist path is an unknown benchmark", "tf no/such/file.cir", 1);
    ("lint-rejected netlist", "tf fixtures/vloop.cir", 6);
  ]

let test_exit_codes () =
  Alcotest.(check bool)
    "binary present at ../bin/mcdft.exe" true (Sys.file_exists mcdft_exe);
  List.iter
    (fun (what, cmd, expected) ->
      Alcotest.(check int)
        (Printf.sprintf "%s (`mcdft %s`)" what cmd)
        expected (exit_code cmd))
    table

let test_fuzz_exit_codes () =
  (* healthy campaign exits 0; a replay of a checked-in repro on the
     healthy engine exits 1 ("no longer reproduces") *)
  Alcotest.(check int) "fuzz healthy campaign" 0
    (exit_code "fuzz --seed 7 --cases 4 --shrink-dir tmp_exit_repros");
  if Sys.file_exists "tmp_exit_repros" then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat "tmp_exit_repros" f))
      (Sys.readdir "tmp_exit_repros");
    Sys.rmdir "tmp_exit_repros"
  end;
  Alcotest.(check int) "replay on healthy engine" 1
    (exit_code
       "fuzz --replay fixtures/shrunk/ladder-0--rank1-updates.expected.json");
  Alcotest.(check int) "replay of a missing repro is an i/o error" 5
    (exit_code "fuzz --replay fixtures/shrunk/nope.expected.json")

(* ---- bench efficiency gate ---- *)

let bench_exe = "../bench/main.exe"

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

(* The --baseline efficiency gate must announce when it could not arm:
   a single-core runner clamps every jobs>1 row to one effective
   worker and the gate checks nothing. PR history shows this reading
   as "efficiency checked, ok" on CI. The marker's presence must track
   Util.Parallel.effective_jobs exactly — on a multicore machine it
   must NOT appear. *)
let test_efficiency_gate_announcement () =
  let dir = "tmp_bench_gate" in
  rm_rf dir;
  Sys.mkdir dir 0o755;
  let bench = Filename.concat (Sys.getcwd ()) bench_exe in
  Alcotest.(check bool) "bench binary present" true (Sys.file_exists bench);
  let run extra log =
    Sys.command
      (Printf.sprintf "cd %s && %s campaign --smoke %s > %s 2>&1" dir bench extra
         log)
  in
  Alcotest.(check int) "baseline-producing run" 0 (run "" "run1.txt");
  let baseline =
    match
      List.find_opt
        (fun f -> Filename.check_suffix f ".json")
        (Array.to_list (Sys.readdir dir))
    with
    | Some f -> f
    | None -> Alcotest.fail "smoke campaign wrote no BENCH json"
  in
  Alcotest.(check int) "gated rerun passes against its own numbers" 0
    (run (Printf.sprintf "--baseline %s" baseline) "run2.txt");
  let out =
    In_channel.with_open_text (Filename.concat dir "run2.txt")
      In_channel.input_all
  in
  Alcotest.(check bool) "baseline verdict printed" true
    (contains ~needle:"baseline check: ok" out);
  let armed = Util.Parallel.effective_jobs 4 > 1 in
  Alcotest.(check bool)
    "UNARMED marker present exactly when the clamp leaves one worker"
    (not armed)
    (contains ~needle:"efficiency gate: UNARMED (effective_jobs=1)" out);
  rm_rf dir

let suite =
  [
    Alcotest.test_case "documented exit codes hold against fixtures" `Quick
      test_exit_codes;
    Alcotest.test_case "fuzz subcommand exit codes" `Quick
      test_fuzz_exit_codes;
    Alcotest.test_case "bench efficiency gate announces when unarmed" `Quick
      test_efficiency_gate_announcement;
  ]
