(* The fault-simulation campaign engine against its oracles:
   - split stamp assembly vs the complex-field functor assembly;
   - rank-1 (Sherman–Morrison) faulty responses vs naive
     inject-and-resolve, including catastrophic and structural faults;
   - worker-count independence of the parallel campaign. *)

open Testability
module Netlist = Circuit.Netlist

let benchmarks = Circuits.Registry.all ()

let grid_of b =
  Grid.around ~points_per_decade:4 ~center_hz:b.Circuits.Benchmark.center_hz ()

(* A passive RLC divider: the zoo is opamp-RC only, and the inductor
   branch is what exercises the engine's structural-fault fallback
   (an inductor open/short changes the MNA dimension). *)
let rlc =
  Netlist.empty ~title:"rlc divider" ()
  |> Netlist.vsource ~name:"Vin" "in" "0" 1.0
  |> Netlist.resistor ~name:"R1" "in" "out" 1_000.0
  |> Netlist.inductor ~name:"L1" "out" "0" 10e-3
  |> Netlist.capacitor ~name:"C1" "out" "0" 100e-9

let rlc_center_hz = 5_033.0 (* 1 / (2π√(LC)) *)

(* --- split assembly vs complex-field functor assembly ------------- *)

let functor_system ~source ~omega index netlist =
  let module F = (val Mna.Field.complex ~omega : Mna.Field.S with type t = Complex.t) in
  let module A = Mna.Assemble.Make (F) in
  let { A.matrix; rhs } = A.assemble ~sources:(Mna.Assemble.Only source) index netlist in
  (matrix, rhs)

let close ?(tol = 1e-12) a b =
  Complex.norm (Complex.sub a b) <= tol *. Float.max 1.0 (Complex.norm b)

let qcheck_split_assembly =
  QCheck.Test.make ~name:"split assembly matches functor assembly" ~count:60
    (QCheck.make QCheck.Gen.(pair (int_range 0 1000) (float_range 0.0 7.0)))
    (fun (pick, expo) ->
      let b = List.nth benchmarks (pick mod List.length benchmarks) in
      let netlist = b.Circuits.Benchmark.netlist
      and source = b.Circuits.Benchmark.source in
      let omega = 10.0 ** expo in
      let index = Mna.Index.build netlist in
      let stamps = Mna.Stamps.build ~sources:(Mna.Assemble.Only source) index netlist in
      let m = Mna.Stamps.matrix stamps ~omega in
      let rhs = Mna.Stamps.rhs stamps ~omega in
      let f_matrix, f_rhs = functor_system ~source ~omega index netlist in
      let n = Mna.Stamps.size stamps in
      let ok = ref (n = Array.length f_rhs) in
      for i = 0 to n - 1 do
        ok := !ok && close rhs.(i) f_rhs.(i);
        for j = 0 to n - 1 do
          ok := !ok && close (Linalg.Cmat.get m i j) f_matrix.(i).(j)
        done
      done;
      !ok)

(* --- rank-1 faulty responses vs naive inject-and-resolve ---------- *)

let naive_response ~source ~output ~freqs_hz fault netlist =
  let faulty = Fault.inject fault netlist in
  Array.map
    (fun f ->
      let omega = 2.0 *. Float.pi *. f in
      match Mna.Ac.transfer ~source ~output faulty ~omega with
      | t -> Some t
      | exception Mna.Ac.Singular_circuit _ -> None)
    freqs_hz

(* ±20 % deviations keep the faulty system as well-conditioned as the
   nominal one, and the refined rank-1 update matches a from-scratch
   resolve to machine precision — 1e-9 is generous. A catastrophic
   open/short rescales one conductance by ~10⁷, and the two paths'
   ulp-level assembly differences are amplified by the faulty system's
   condition number: agreement to ~1e-8 is all either path can claim
   against the other, so those are checked at 1e-6 (still far below
   any detection threshold). *)
let tol_for (fault : Fault.t) =
  match fault.Fault.kind with Fault.Deviation _ -> 1e-9 | _ -> 1e-6

let check_fault_equivalence ~source ~output ~freqs_hz sim fault netlist =
  let fast = Fastsim.response sim fault in
  let naive = naive_response ~source ~output ~freqs_hz fault netlist in
  Array.iteri
    (fun i fo ->
      match (fo, naive.(i)) with
      | None, None -> ()
      | Some a, Some b ->
          if not (close ~tol:(tol_for fault) a b) then
            Alcotest.fail
              (Printf.sprintf "%s at %g Hz: fast %g%+gi, naive %g%+gi"
                 (Format.asprintf "%a" Fault.pp fault)
                 freqs_hz.(i) a.Complex.re a.Complex.im b.Complex.re b.Complex.im)
      | Some _, None | None, Some _ ->
          Alcotest.fail
            (Printf.sprintf "%s at %g Hz: singularity disagreement"
               (Format.asprintf "%a" Fault.pp fault)
               freqs_hz.(i)))
    fast

let all_faults netlist =
  Fault.both_deviations netlist @ Fault.catastrophic_faults netlist

let test_fault_equivalence_zoo () =
  List.iter
    (fun b ->
      let netlist = b.Circuits.Benchmark.netlist
      and source = b.Circuits.Benchmark.source
      and output = b.Circuits.Benchmark.output in
      let freqs_hz = Grid.freqs_hz (grid_of b) in
      let sim = Fastsim.create ~source ~output ~freqs_hz netlist in
      List.iter
        (fun fault ->
          check_fault_equivalence ~source ~output ~freqs_hz sim fault netlist)
        (all_faults netlist))
    benchmarks

let test_fault_equivalence_rlc () =
  let freqs_hz =
    Grid.freqs_hz (Grid.around ~points_per_decade:4 ~center_hz:rlc_center_hz ())
  in
  let sim = Fastsim.create ~source:"Vin" ~output:"out" ~freqs_hz rlc in
  List.iter
    (fun fault ->
      check_fault_equivalence ~source:"Vin" ~output:"out" ~freqs_hz sim fault rlc)
    (all_faults rlc);
  let smw, full = Fastsim.stats sim in
  if smw = 0 then Alcotest.fail "rank-1 path never used";
  (* the four L1 catastrophic/deviation point-solves include structural
     ones, which must not be claimed by the rank-1 counter *)
  if full = 0 then Alcotest.fail "structural fallback never used"

let test_smw_actually_used () =
  let b = Circuits.Tow_thomas.make () in
  let freqs_hz = Grid.freqs_hz (grid_of b) in
  let sim =
    Fastsim.create ~source:b.Circuits.Benchmark.source
      ~output:b.Circuits.Benchmark.output ~freqs_hz b.Circuits.Benchmark.netlist
  in
  List.iter
    (fun fault -> ignore (Fastsim.response sim fault))
    (Fault.both_deviations b.Circuits.Benchmark.netlist);
  let smw, full = Fastsim.stats sim in
  Alcotest.(check bool) "rank-1 dominates" true (smw > 10 * Stdlib.max 1 full)

let test_nominal_matches_sweep () =
  List.iter
    (fun b ->
      let netlist = b.Circuits.Benchmark.netlist
      and source = b.Circuits.Benchmark.source
      and output = b.Circuits.Benchmark.output in
      let freqs_hz = Grid.freqs_hz (grid_of b) in
      let sim = Fastsim.create ~source ~output ~freqs_hz netlist in
      let sweep = Mna.Ac.sweep ~source ~output netlist ~freqs_hz in
      Array.iteri
        (fun i t ->
          if Fastsim.nominal sim |> fun n -> n.(i) <> t then
            Alcotest.fail
              (Printf.sprintf "%s: nominal differs from sweep at %g Hz"
                 b.Circuits.Benchmark.name freqs_hz.(i)))
        sweep)
    benchmarks

(* --- batched metrics flushes -------------------------------------- *)

(* The engine batches its Obs.Metrics increments into per-domain
   locals and flushes them once per scored range, so the hot loop
   never touches the shared counter table. The batching must be
   invisible at call boundaries: after any sequence of responses, the
   Obs totals equal the engine's own atomic counters exactly. *)
let test_metrics_batching_exact () =
  let b = Circuits.Tow_thomas.make () in
  let freqs_hz = Grid.freqs_hz (grid_of b) in
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ())
    (fun () ->
      let sim =
        Fastsim.create ~source:b.Circuits.Benchmark.source
          ~output:b.Circuits.Benchmark.output ~freqs_hz
          b.Circuits.Benchmark.netlist
      in
      List.iter
        (fun fault -> ignore (Fastsim.response sim fault))
        (all_faults b.Circuits.Benchmark.netlist);
      let snap = Obs.Metrics.snapshot () in
      let smw, full = Fastsim.stats sim in
      Alcotest.(check int) "smw_solves flushed exactly" smw
        (Obs.Metrics.counter snap "fastsim.smw_solves");
      Alcotest.(check int) "full_solves flushed exactly" full
        (Obs.Metrics.counter snap "fastsim.full_solves"))

(* --- worker-count independence ------------------------------------ *)

let test_pipeline_jobs_deterministic () =
  let b = Circuits.Tow_thomas.make () in
  let run jobs = Mcdft_core.Pipeline.run ~points_per_decade:6 ~jobs b in
  let t1 = run 1 and t4 = run 4 in
  Alcotest.(check bool) "detect matrices equal" true
    (t1.Mcdft_core.Pipeline.matrix.Matrix.detect
    = t4.Mcdft_core.Pipeline.matrix.Matrix.detect);
  Alcotest.(check bool) "omega matrices equal" true
    (t1.Mcdft_core.Pipeline.matrix.Matrix.omega
    = t4.Mcdft_core.Pipeline.matrix.Matrix.omega)

let test_montecarlo_jobs_deterministic () =
  let b = Circuits.Tow_thomas.make () in
  let probe =
    {
      Detect.source = b.Circuits.Benchmark.source;
      output = b.Circuits.Benchmark.output;
    }
  in
  let grid = grid_of b in
  let run jobs =
    Montecarlo.run ~seed:7 ~samples:24 ~jobs ~component_tol:0.04 probe grid
      b.Circuits.Benchmark.netlist
  in
  let s1 = run 1 and s3 = run 3 in
  Alcotest.(check bool) "max_dev equal" true (s1.Montecarlo.max_dev = s3.Montecarlo.max_dev);
  Alcotest.(check bool) "mean_dev equal" true
    (s1.Montecarlo.mean_dev = s3.Montecarlo.mean_dev);
  Alcotest.(check bool) "per-sample peaks equal" true
    (s1.Montecarlo.per_sample_peak = s3.Montecarlo.per_sample_peak)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_split_assembly;
    Alcotest.test_case "faulty responses match naive resolve (zoo)" `Quick
      test_fault_equivalence_zoo;
    Alcotest.test_case "faulty responses match naive resolve (RLC)" `Quick
      test_fault_equivalence_rlc;
    Alcotest.test_case "rank-1 path serves deviation faults" `Quick
      test_smw_actually_used;
    Alcotest.test_case "nominal equals Ac.sweep" `Quick test_nominal_matches_sweep;
    Alcotest.test_case "batched metrics equal engine stats" `Quick
      test_metrics_batching_exact;
    Alcotest.test_case "Pipeline.run independent of jobs" `Quick
      test_pipeline_jobs_deterministic;
    Alcotest.test_case "Montecarlo.run independent of jobs" `Quick
      test_montecarlo_jobs_deterministic;
  ]
