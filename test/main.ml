let () =
  Alcotest.run "mcdft"
    [
      ("floatx", Test_floatx.suite);
      ("interval", Test_interval.suite);
      ("quantity", Test_quantity.suite);
      ("cmat", Test_cmat.suite);
      ("planar", Test_planar.suite);
      ("poly", Test_poly.suite);
      ("ratfunc", Test_ratfunc.suite);
      ("netlist", Test_netlist.suite);
      ("mna", Test_mna.suite);
      ("symbolic", Test_symbolic.suite);
      ("sensitivity", Test_sensitivity.suite);
      ("transient", Test_transient.suite);
      ("noise", Test_noise.suite);
      ("circuits", Test_circuits.suite);
      ("parallel", Test_parallel.suite);
      ("obs", Test_obs.suite);
      ("fault", Test_fault.suite);
      ("testability", Test_testability.suite);
      ("fastsim", Test_fastsim.suite);
      ("multiconfig", Test_multiconfig.suite);
      ("cover", Test_cover.suite);
      ("optimizer", Test_optimizer.suite);
      ("pipeline", Test_pipeline.suite);
      ("spice", Test_spice.suite);
      ("report", Test_report.suite);
      ("extensions", Test_extensions.suite);
      ("diagnosis", Test_diagnosis.suite);
      ("random-circuits", Test_random_circuits.suite);
      ("analysis", Test_analysis.suite);
      ("influence", Test_influence.suite);
      ("json", Test_json.suite);
      ("edge-cases", Test_edge_cases.suite);
      ("conformance", Test_conformance.suite);
      ("exit-codes", Test_exit_codes.suite);
    ]
