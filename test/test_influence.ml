module Netlist = Circuit.Netlist
module Influence = Circuit.Influence
module P = Mcdft_core.Pipeline

let test_divider_all_influential () =
  let n =
    Netlist.empty ~title:"divider" ()
    |> Netlist.vsource ~name:"V1" "in" "0" 1.0
    |> Netlist.resistor ~name:"R1" "in" "out" 1000.0
    |> Netlist.resistor ~name:"R2" "out" "0" 1000.0
  in
  let a = Influence.analyse ~output:"out" n in
  Alcotest.(check (list string)) "both resistors" [ "R1"; "R2" ]
    (Influence.influential_passives a)

let test_downstream_of_ideal_source_blocked () =
  (* elements behind an ideal opamp output cannot affect that output *)
  let n =
    Netlist.empty ~title:"buffered" ()
    |> Netlist.vsource ~name:"V1" "in" "0" 1.0
    |> Netlist.resistor ~name:"R1" "in" "a" 1000.0
    |> Netlist.capacitor ~name:"C1" "a" "0" 1e-6
    |> Netlist.opamp ~name:"OP1" ~inp:"a" ~inn:"buf" ~out:"buf"
    |> Netlist.resistor ~name:"R2" "buf" "post" 1000.0
    |> Netlist.resistor ~name:"R3" "post" "0" 1000.0
  in
  (* observe the buffer output: the post-buffer divider hangs off an
     ideal source and is invisible *)
  let a = Influence.analyse ~output:"buf" n in
  Alcotest.(check (list string)) "only the front RC" [ "R1"; "C1" ]
    (Influence.influential_passives a);
  (* observe the divider instead: everything matters *)
  let a2 = Influence.analyse ~output:"post" n in
  Alcotest.(check (list string)) "all passives" [ "R1"; "C1"; "R2"; "R3" ]
    (Influence.influential_passives a2)

let test_feedback_reaches_back () =
  (* inverting amplifier: both resistors affect the output through the
     virtual ground *)
  let n =
    Netlist.empty ~title:"inverting" ()
    |> Netlist.vsource ~name:"V1" "in" "0" 1.0
    |> Netlist.resistor ~name:"R1" "in" "m" 1000.0
    |> Netlist.resistor ~name:"R2" "m" "out" 4700.0
    |> Netlist.opamp ~name:"OP1" ~inp:"0" ~inn:"m" ~out:"out"
  in
  let a = Influence.analyse ~output:"out" n in
  Alcotest.(check (list string)) "both" [ "R1"; "R2" ] (Influence.influential_passives a)

let test_unknown_element_raises () =
  let n =
    Netlist.empty () |> Netlist.vsource ~name:"V1" "a" "0" 1.0
    |> Netlist.resistor ~name:"R1" "a" "0" 1.0
  in
  let a = Influence.analyse ~output:"a" n in
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Influence.can_affect_output a "R9"))

(* Soundness against simulation: any fault that the simulator detects
   must be structurally influential — across every configuration of the
   biquad, KHN and notch circuits. *)
let test_soundness_vs_simulation () =
  List.iter
    (fun benchmark ->
      let t = P.run ~points_per_decade:8 benchmark in
      let dft = t.P.dft in
      List.iteri
        (fun row config ->
          let view = Multiconfig.Transform.emulate dft config in
          let influence =
            Circuit.Influence.analyse ~output:benchmark.Circuits.Benchmark.output view
          in
          Array.iteri
            (fun j fault ->
              if t.P.matrix.Testability.Matrix.detect.(row).(j) then
                Alcotest.(check bool)
                  (Printf.sprintf "%s %s %s detected -> influential"
                     benchmark.Circuits.Benchmark.name
                     (Multiconfig.Configuration.label config)
                     fault.Fault.id)
                  true
                  (Circuit.Influence.can_affect_output influence fault.Fault.element))
            t.P.matrix.Testability.Matrix.faults)
        (Multiconfig.Transform.test_configurations dft))
    [ Circuits.Tow_thomas.make (); Circuits.Khn.make (); Circuits.Notch.make () ]

(* --- prefilter --- *)

let test_prefilter_structure () =
  let b = Circuits.Tow_thomas.make () in
  let dft = Multiconfig.Transform.make ~source:"Vin" ~output:"v2" b.Circuits.Benchmark.netlist in
  let plan = Mcdft_core.Prefilter.analyse dft in
  Alcotest.(check int) "7 predictions" 7 (List.length plan.Mcdft_core.Prefilter.predicted);
  Alcotest.(check int) "56 pairs total" 56 plan.Mcdft_core.Prefilter.total_pairs;
  Alcotest.(check bool) "some pairs pruned" true
    (plan.Mcdft_core.Prefilter.pruned_pairs > 0);
  Alcotest.(check bool) "not everything pruned" true
    (plan.Mcdft_core.Prefilter.pruned_pairs < plan.Mcdft_core.Prefilter.total_pairs)

let test_prefilter_matrix_identical () =
  (* pair-level pruning must not change the matrix at all *)
  let b = Circuits.Tow_thomas.make () in
  let full = P.run ~points_per_decade:8 b in
  let _, pruned = Mcdft_core.Prefilter.run ~points_per_decade:8 b in
  Alcotest.(check bool) "identical detect matrix" true
    (full.P.matrix.Testability.Matrix.detect = pruned.Testability.Matrix.detect);
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j w ->
          Alcotest.(check (float 1e-12)) "identical omega" w
            pruned.Testability.Matrix.omega.(i).(j))
        row)
    full.P.matrix.Testability.Matrix.omega

let test_prefilter_prunes_many_pairs () =
  let b = Circuits.Cascade.tow_thomas_pair () in
  let dft = Multiconfig.Transform.make ~source:"Vin" ~output:"v2B" b.Circuits.Benchmark.netlist in
  let plan = Mcdft_core.Prefilter.analyse dft in
  let ratio =
    float_of_int plan.Mcdft_core.Prefilter.pruned_pairs
    /. float_of_int plan.Mcdft_core.Prefilter.total_pairs
  in
  Alcotest.(check bool)
    (Printf.sprintf "pruned %.0f%% of pairs" (100.0 *. ratio))
    true (ratio > 0.2)

let suite =
  [
    Alcotest.test_case "divider" `Quick test_divider_all_influential;
    Alcotest.test_case "ideal source blocks" `Quick test_downstream_of_ideal_source_blocked;
    Alcotest.test_case "feedback reaches back" `Quick test_feedback_reaches_back;
    Alcotest.test_case "unknown element" `Quick test_unknown_element_raises;
    Alcotest.test_case "soundness vs simulation" `Quick test_soundness_vs_simulation;
    Alcotest.test_case "prefilter structure" `Quick test_prefilter_structure;
    Alcotest.test_case "prefilter matrix identical" `Quick test_prefilter_matrix_identical;
    Alcotest.test_case "prefilter prunes pairs" `Quick test_prefilter_prunes_many_pairs;
  ]
